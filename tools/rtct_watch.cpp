// rtct_watch — watch a live rtct_netplay match over UDP as an observer.
//
// On the hosting machine:
//   rtct_netplay --site 0 ... --spectator-port 7500
// Anywhere else:
//   rtct_watch --host <host-ip>:7500 --game [core:]duel [--frames N]
//
// The watcher joins late (snapshot + live input feed), replays the match
// on its own replica, and renders it as ASCII. The ROM (or bundled game
// name) must match the host's — the join is refused otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>

#include "src/common/telemetry.h"
#include "src/core/spectate.h"
#include "src/emu/machine.h"
#include "src/emu/render_text.h"
#include "src/emu/rom_io.h"
#include "src/cores/registry.h"
#include "src/net/udp_socket.h"

namespace {
rtct::Time steady_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  using namespace rtct;

  std::string host, game = "duel", rom_file;
  int frames = 600;
  int render_every = 60;
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rtct_watch: %s needs a value\n", what);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--host") host = next("--host");
    else if (arg == "--game") game = next("--game");
    else if (arg == "--rom") rom_file = next("--rom");
    else if (arg == "--frames") frames = std::atoi(next("--frames"));
    else if (arg == "--render-every") render_every = std::atoi(next("--render-every"));
    else if (arg == "--stats") stats = true;
    else {
      std::fprintf(stderr, "usage: rtct_watch --host IP:PORT [--game NAME | --rom FILE] "
                           "[--frames N] [--render-every K] [--stats]\n");
      return arg == "-h" || arg == "--help" ? 0 : 1;
    }
  }
  const auto colon = host.find_last_of(':');
  if (host.empty() || colon == std::string::npos) {
    std::fprintf(stderr, "rtct_watch: --host IP:PORT is required\n");
    return 1;
  }

  std::unique_ptr<emu::IDeterministicGame> machine;
  if (!rom_file.empty()) {
    auto rom = emu::load_rom_file(rom_file);
    if (!rom) {
      std::fprintf(stderr, "rtct_watch: cannot load ROM '%s'\n", rom_file.c_str());
      return 1;
    }
    machine = std::make_unique<emu::ArcadeMachine>(*rom);
  } else {
    machine = cores::make_game(game);
    if (!machine) {
      std::fprintf(stderr, "rtct_watch: unknown game '%s'\n", game.c_str());
      return 1;
    }
  }

  net::UdpSocket socket("0.0.0.0", 0);
  if (!socket.valid() ||
      !socket.connect_peer(host.substr(0, colon),
                           static_cast<std::uint16_t>(
                               std::strtol(host.c_str() + colon + 1, nullptr, 10)))) {
    std::fprintf(stderr, "rtct_watch: socket: %s\n", socket.last_error().c_str());
    return 1;
  }

  core::SpectatorClient client(*machine, core::SyncConfig{});
  std::printf("watching %s (game '%s')...\n", host.c_str(), machine->content_name().c_str());

  const Time start = steady_now();
  Time last_progress = start;
  while (client.applied_frame() < frames - 1) {
    const Time t = steady_now() - start;
    if (auto m = client.make_message(t)) socket.send(core::encode_message(*m));
    socket.wait_readable(milliseconds(20));
    while (auto payload = socket.try_recv()) {
      if (auto msg = core::decode_message(*payload)) client.ingest(*msg);
    }
    while (client.step_one()) {
      last_progress = steady_now();
      const FrameNo f = client.applied_frame();
      if (stats && f % 60 == 59) {
        MetricsRegistry reg;
        client.export_metrics(reg);
        socket.export_metrics(reg);
        const auto val = [&reg](const char* name) { return reg.value(name).value_or(0); };
        std::printf("[stats] f=%-6lld pending=%-4.0f feeds=%llu stale=%llu "
                    "tx=%llu rx=%llu\n",
                    static_cast<long long>(f), val("spectator.client.pending"),
                    static_cast<unsigned long long>(val("spectator.client.feed_messages_rcvd")),
                    static_cast<unsigned long long>(val("spectator.client.stale_inputs_rcvd")),
                    static_cast<unsigned long long>(val("net.udp.datagrams_sent")),
                    static_cast<unsigned long long>(val("net.udp.datagrams_received")));
        std::fflush(stdout);
      }
      const emu::IRenderableGame* screen = machine->renderable();
      if (screen != nullptr && render_every > 0 && f % render_every == render_every - 1) {
        std::printf("\n--- frame %lld (hash %016llx) ---\n%s",
                    static_cast<long long>(f),
                    static_cast<unsigned long long>(machine->state_hash()),
                    emu::render_ascii(screen->framebuffer(), screen->fb_cols(),
                                      screen->fb_rows())
                        .c_str());
      }
    }
    const Dur idle = steady_now() - last_progress;
    if (idle > (client.joined() ? seconds(5) : seconds(10))) {
      std::fprintf(stderr, "rtct_watch: feed went quiet (match over or host gone)\n");
      break;
    }
  }

  std::printf("\nwatched through frame %lld; final replica hash %016llx\n",
              static_cast<long long>(client.applied_frame()),
              static_cast<unsigned long long>(machine->state_hash()));
  return client.joined() ? 0 : 1;
}
