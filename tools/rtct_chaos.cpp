// rtct_chaos — the chaos harness CLI: seeded fault-injection soak over the
// virtual-time testbed, plus the wire-protocol fuzzer.
//
//   rtct_chaos run --seed N [--topology T]      one chaos case; prints the
//                                               repro JSON (byte-identical
//                                               for a given seed). Exit 0 =
//                                               all invariants held, 2 = a
//                                               violation (repro printed).
//   rtct_chaos soak --seeds N [--start S]       N seeds per topology (or
//              [--topology T] [--out DIR]       one with --topology); on a
//                                               violation writes the repro
//                                               to DIR (default '.') and
//                                               keeps going. Exit 2 if any
//                                               case failed.
//   rtct_chaos replay FILE.json [--bisect]      re-run a repro document's
//                                               embedded fault script
//                                               (hand-minimization friendly:
//                                               edit the JSON, replay).
//                                               --bisect additionally runs
//                                               the divergence bisector over
//                                               the two sites' recordings
//                                               and prints the rtct.bisect.v1
//                                               report on a second line.
//   rtct_chaos fuzz [--seed N] [--iters N]      wire-decoder + ingest fuzz.
//   rtct_chaos gen-corpus DIR                   write the deterministic
//                                               regression corpus (the
//                                               tests/corpus/ files).
//
// Every mode is deterministic: a seed (or a repro file) is a complete
// reproduction token.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/fault_script.h"
#include "src/chaos/fuzz.h"
#include "src/chaos/soak.h"
#include "src/common/json.h"
#include "src/core/bisect.h"
#include "src/cores/registry.h"

namespace {

using namespace rtct::chaos;

int usage() {
  std::fprintf(stderr,
               "usage: rtct_chaos run --seed N [--topology two_site|mesh|spectator]\n"
               "       rtct_chaos soak --seeds N [--start S] [--topology T] [--out DIR]\n"
               "       rtct_chaos replay FILE.json [--bisect]\n"
               "       rtct_chaos fuzz [--seed N] [--iters N]\n"
               "       rtct_chaos gen-corpus DIR\n");
  return 1;
}

struct Args {
  std::uint64_t seed = 1;
  std::uint64_t start = 1;
  int seeds = 10;
  int iters = 50000;
  std::optional<Topology> topology;
  std::string out_dir = ".";
  bool bisect = false;
  std::vector<std::string> positional;
};

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      a->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--start") {
      const char* v = next();
      if (v == nullptr) return false;
      a->start = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return false;
      a->seeds = std::atoi(v);
    } else if (arg == "--iters") {
      const char* v = next();
      if (v == nullptr) return false;
      a->iters = std::atoi(v);
    } else if (arg == "--topology") {
      const char* v = next();
      if (v == nullptr) return false;
      a->topology = topology_from_name(v);
      if (!a->topology) return false;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      a->out_dir = v;
    } else if (arg == "--bisect") {
      a->bisect = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      a->positional.push_back(arg);
    }
  }
  return true;
}

int cmd_run(const Args& a) {
  const Topology t = a.topology.value_or(Topology::kTwoSite);
  const SoakOutcome o = run_soak_case(a.seed, t);
  std::printf("%s\n", outcome_to_json(o).c_str());
  return o.passed() ? 0 : 2;
}

int cmd_soak(const Args& a) {
  std::vector<Topology> topologies;
  if (a.topology) {
    topologies.push_back(*a.topology);
  } else {
    topologies = {Topology::kTwoSite, Topology::kMesh, Topology::kSpectator};
  }
  int failures = 0;
  int cases = 0;
  for (const Topology t : topologies) {
    for (int i = 0; i < a.seeds; ++i) {
      const std::uint64_t seed = a.start + static_cast<std::uint64_t>(i);
      const SoakOutcome o = run_soak_case(seed, t);
      ++cases;
      if (o.passed()) {
        std::printf("PASS %-9s seed %llu (%lld frames)\n",
                    std::string(topology_name(t)).c_str(),
                    static_cast<unsigned long long>(seed),
                    static_cast<long long>(o.frames_completed));
        continue;
      }
      ++failures;
      const std::string path = a.out_dir + "/chaos_repro_" +
                               std::string(topology_name(t)) + "_" +
                               std::to_string(seed) + ".json";
      std::ofstream out(path, std::ios::binary);
      out << outcome_to_json(o) << "\n";
      std::printf("FAIL %-9s seed %llu: %zu violation(s), first: %s — repro: %s\n",
                  std::string(topology_name(t)).c_str(),
                  static_cast<unsigned long long>(seed), o.violations.size(),
                  o.violations.front().detail.c_str(), path.c_str());
    }
  }
  std::printf("%d/%d chaos cases passed\n", cases - failures, cases);
  return failures == 0 ? 0 : 2;
}

int cmd_replay(const Args& a) {
  if (a.positional.empty()) return usage();
  std::ifstream in(a.positional[0], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rtct_chaos: cannot open %s\n", a.positional[0].c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = rtct::parse_json(buf.str());
  if (!doc) {
    std::fprintf(stderr, "rtct_chaos: %s is not valid JSON\n", a.positional[0].c_str());
    return 1;
  }
  // Accept either a bare script or a full repro document embedding one.
  const rtct::JsonValue* script_node = doc->find("script");
  const auto script = script_from_json(script_node != nullptr ? *script_node : *doc);
  if (!script) {
    std::fprintf(stderr, "rtct_chaos: no valid rtct.chaos.script.v1 in %s\n",
                 a.positional[0].c_str());
    return 1;
  }
  const SoakOutcome o = run_soak_case(*script);
  std::printf("%s\n", outcome_to_json(o).c_str());
  if (a.bisect) {
    if (o.replays.size() != 2) {
      std::fprintf(stderr, "rtct_chaos: --bisect needs a two-site topology (mesh records none)\n");
    } else {
      const auto factory = [&o] {
        const auto& r = o.replays[0];
        if (!r.game_name().empty()) {
          if (auto g = rtct::cores::make_game(r.game_name());
              g != nullptr && g->content_id() == r.content_id()) {
            return g;
          }
        }
        return rtct::cores::make_game_for_content(r.content_id());
      };
      const auto rep = rtct::core::bisect_replays(o.replays[0], o.replays[1], factory);
      std::printf("%s\n", rtct::core::bisect_report_to_json(rep).c_str());
    }
  }
  return o.passed() ? 0 : 2;
}

int cmd_fuzz(const Args& a) {
  FuzzStats stats;
  if (const auto fail = fuzz_wire(a.seed, a.iters, &stats)) {
    std::fprintf(stderr, "rtct_chaos: wire fuzz FAILED: %s\n", fail->c_str());
    return 2;
  }
  if (const auto fail = fuzz_ingest(a.seed, a.iters / 2)) {
    std::fprintf(stderr, "rtct_chaos: ingest fuzz FAILED: %s\n", fail->c_str());
    return 2;
  }
  std::printf("fuzz ok: %llu buffers (%llu accepted, %llu rejected), ingest %d iters\n",
              static_cast<unsigned long long>(stats.iterations),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.rejected), a.iters / 2);
  return 0;
}

int cmd_gen_corpus(const Args& a) {
  if (a.positional.empty()) return usage();
  const std::string dir = a.positional[0];
  int written = 0;
  for (const CorpusEntry& e : build_corpus()) {
    const std::string path = dir + "/" + e.name;
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "rtct_chaos: cannot write %s\n", path.c_str());
      return 1;
    }
    out.write(reinterpret_cast<const char*>(e.bytes.data()),
              static_cast<std::streamsize>(e.bytes.size()));
    ++written;
  }
  std::printf("wrote %d corpus files to %s\n", written, dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args a;
  if (!parse_args(argc, argv, &a)) return usage();
  const std::string cmd = argv[1];
  if (cmd == "run") return cmd_run(a);
  if (cmd == "soak") return cmd_soak(a);
  if (cmd == "replay") return cmd_replay(a);
  if (cmd == "fuzz") return cmd_fuzz(a);
  if (cmd == "gen-corpus" || cmd == "--gen-corpus") return cmd_gen_corpus(a);
  return usage();
}
