// rtct_netplay — the paper's system as a usable command-line application:
// share a legacy game between two machines over UDP.
//
// On machine A (becomes the master / site 0):
//   rtct_netplay --site 0 --game duel --bind 7000 --peer <B-ip>:7000
// On machine B (site 1):
//   rtct_netplay --site 1 --game duel --bind 7000 --peer <A-ip>:7000
//
// Each side runs the full stack: deterministic game replica (any core in
// the registry: --game duel, --game agent86:skirmish, ...), session handshake
// (refuses mismatched ROMs), SyncInput lockstep with 100 ms local lag over
// UDP, master/slave frame pacing, and in-protocol desync detection.
// Inputs come from a deterministic synthetic player by default (so the
// tool is self-contained and scriptable); the final state hash printed on
// both machines must match.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "src/common/telemetry.h"
#include "src/core/input_source.h"
#include "src/core/realtime.h"
#include "src/emu/machine.h"
#include "src/emu/render_text.h"
#include "src/emu/rom_io.h"
#include "src/cores/registry.h"
#include "src/net/udp_socket.h"
#include "src/relay/relay_client.h"

namespace {
void usage() {
  std::fprintf(stderr,
               "usage: rtct_netplay --site 0|1 --peer IP:PORT [--game NAME | --rom FILE]\n"
               "                    [--bind PORT] [--frames N] [--seed S] [--quiet]\n"
               "                    [--mode lockstep|rollback] [--input-delay N]\n"
               "                    [--record FILE.rpl] [--spectator-port PORT]\n"
               "                    [--stats] [--metrics-out FILE.json]\n"
               "                    [--timeline-out FILE.json]\n"
               "       rtct_netplay --relay IP:PORT (--create | --join CONN) ...\n"
               "\n"
               "--mode rollback opts into speculative execution with rollback\n"
               "(fixed --input-delay frames of perceived latency, RTT-independent);\n"
               "the session runs it only if BOTH sites pass --mode rollback, else\n"
               "it degrades to the paper's local-lag lockstep.\n"
               "\n"
               "--relay runs the session through an rtct_relayd instead of a direct\n"
               "peer: --create opens a session at the relay's lobby (the printed\n"
               "conn id is what the other side passes to --join; --create implies\n"
               "site 0, --join site 1, and --peer/--bind are not used).\n");
}

/// Strict decimal parse. atoi's silent acceptance of "7000junk", "", and
/// negative ports turned typos into a confusing bind on port 0 (or on the
/// two's-complement wraparound of a negative value) — reject instead.
bool parse_int(const char* s, long lo, long hi, long* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  if (v < lo || v > hi) return false;
  *out = v;
  return true;
}

bool parse_port(const char* s, bool allow_zero, std::uint16_t* out) {
  long v = 0;
  if (!parse_int(s, allow_zero ? 0 : 1, 65535, &v)) return false;
  *out = static_cast<std::uint16_t>(v);
  return true;
}

bool split_host_port(const std::string& s, std::string* host, std::uint16_t* port) {
  const auto colon = s.find_last_of(':');
  if (colon == std::string::npos || colon == 0) return false;
  *host = s.substr(0, colon);
  return parse_port(s.c_str() + colon + 1, /*allow_zero=*/false, port);
}
}  // namespace

int main(int argc, char** argv) {
  using namespace rtct;

  int site = -1;
  std::string game = "duel", rom_file, peer;
  std::uint16_t bind_port = 0;
  int frames = 3600;
  std::uint64_t seed = 0;
  bool quiet = false;
  bool stats = false;
  std::string mode = "lockstep";
  int input_delay = -1;
  std::string record_path, metrics_out, timeline_out;
  std::uint16_t spectator_port = 0;
  std::string relay;
  bool relay_create = false;
  long relay_join = -1;

  // Every numeric flag is parsed strictly (see parse_int): a value that is
  // not a clean in-range decimal is a usage error, not a silent zero.
  bool parse_ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rtct_netplay: %s needs a value\n", what);
        std::exit(1);
      }
      return argv[++i];
    };
    auto num = [&](const char* what, long lo, long hi) -> long {
      long v = 0;
      if (!parse_int(next(what), lo, hi, &v)) {
        std::fprintf(stderr, "rtct_netplay: bad %s '%s' (want integer in [%ld, %ld])\n",
                     what, argv[i], lo, hi);
        parse_ok = false;
      }
      return v;
    };
    if (arg == "--site") site = static_cast<int>(num("--site", 0, 1));
    else if (arg == "--game") game = next("--game");
    else if (arg == "--rom") rom_file = next("--rom");
    else if (arg == "--peer") peer = next("--peer");
    else if (arg == "--bind") {
      if (!parse_port(next("--bind"), /*allow_zero=*/true, &bind_port)) {
        std::fprintf(stderr, "rtct_netplay: bad --bind '%s' (want port 0..65535)\n", argv[i]);
        parse_ok = false;
      }
    }
    else if (arg == "--frames") frames = static_cast<int>(num("--frames", 1, 10000000));
    else if (arg == "--mode") mode = next("--mode");
    else if (arg == "--input-delay") input_delay = static_cast<int>(num("--input-delay", 0, 255));
    else if (arg == "--seed") seed = std::strtoull(next("--seed"), nullptr, 10);
    else if (arg == "--record") record_path = next("--record");
    else if (arg == "--spectator-port") {
      if (!parse_port(next("--spectator-port"), /*allow_zero=*/false, &spectator_port)) {
        std::fprintf(stderr, "rtct_netplay: bad --spectator-port '%s' (want port 1..65535)\n",
                     argv[i]);
        parse_ok = false;
      }
    }
    else if (arg == "--relay") relay = next("--relay");
    else if (arg == "--create") relay_create = true;
    else if (arg == "--join") relay_join = num("--join", 1, 0xFFFFFFFFL);
    else if (arg == "--stats") stats = true;
    else if (arg == "--metrics-out") metrics_out = next("--metrics-out");
    else if (arg == "--timeline-out") timeline_out = next("--timeline-out");
    else if (arg == "--quiet") quiet = true;
    else {
      usage();
      return arg == "-h" || arg == "--help" ? 0 : 1;
    }
  }
  if (!parse_ok) return 1;
  const bool use_relay = !relay.empty();
  if (use_relay) {
    if (relay_create == (relay_join > 0)) {
      std::fprintf(stderr, "rtct_netplay: --relay needs exactly one of --create / --join\n");
      return 1;
    }
    // The relay roles fix the sites: the creator is the master.
    site = relay_create ? 0 : 1;
  } else if ((site != 0 && site != 1) || peer.empty()) {
    usage();
    return 1;
  }

  std::unique_ptr<emu::IDeterministicGame> machine;
  if (!rom_file.empty()) {
    auto rom = emu::load_rom_file(rom_file);
    if (!rom) {
      std::fprintf(stderr, "rtct_netplay: cannot load ROM '%s'\n", rom_file.c_str());
      return 1;
    }
    machine = std::make_unique<emu::ArcadeMachine>(*rom);
  } else {
    machine = cores::make_game(game);
    if (!machine) {
      std::fprintf(stderr, "rtct_netplay: unknown game '%s'\n", game.c_str());
      return 1;
    }
  }

  core::MasherInput player(seed != 0 ? seed : 1000 + static_cast<std::uint64_t>(site));
  core::RealtimeConfig cfg;
  cfg.frames = frames;
  cfg.handshake_timeout = seconds(30);
  if (mode == "rollback") {
    cfg.sync.rollback = true;
    if (input_delay >= 0) {
      // The snapshot ring holds rollback_window states; speculation may run
      // at most window-2 frames past the confirmed watermark, so a larger
      // input delay could never be absorbed — it would stall every frame.
      const int max_delay = cfg.sync.rollback_window - 2;
      if (input_delay > max_delay) {
        std::fprintf(stderr,
                     "rtct_netplay: --input-delay %d exceeds the rollback ring window "
                     "(max %d with rollback_window=%d)\n",
                     input_delay, max_delay, cfg.sync.rollback_window);
        return 1;
      }
      cfg.sync.rollback_input_delay = input_delay;
    }
  } else if (mode != "lockstep") {
    std::fprintf(stderr, "rtct_netplay: bad --mode '%s' (want lockstep|rollback)\n",
                 mode.c_str());
    return 1;
  } else if (input_delay >= 0) {
    std::fprintf(stderr,
                 "rtct_netplay: --input-delay is only meaningful with --mode rollback\n");
    return 1;
  }

  // Transport: a direct connected socket, or a relayed endpoint speaking
  // the same protocol bytes through rtct_relayd.
  std::unique_ptr<net::UdpSocket> direct;
  std::unique_ptr<relay::RelayEndpoint> relayed;
  net::PollableTransport* transport = nullptr;
  if (use_relay) {
    std::string relay_host;
    std::uint16_t relay_port = 0;
    if (!split_host_port(relay, &relay_host, &relay_port)) {
      std::fprintf(stderr, "rtct_netplay: bad --relay '%s' (want IP:PORT)\n", relay.c_str());
      return 1;
    }
    relay::RelayLobby lobby(relay_host, relay_port, "0.0.0.0");
    if (!lobby.valid()) {
      std::fprintf(stderr, "rtct_netplay: relay lobby: %s\n", lobby.last_error().c_str());
      return 1;
    }
    const auto res = relay_create
                         ? lobby.create(machine->content_id())
                         : lobby.join(static_cast<relay::ConnId>(relay_join));
    if (!res) {
      std::fprintf(stderr, "rtct_netplay: relay handshake: %s\n", lobby.last_error().c_str());
      return 1;
    }
    relayed = lobby.into_endpoint(*res);
    transport = relayed.get();
    std::printf("site %d relayed via %s, conn id %u (peer joins with --join %u), "
                "game '%s', %d frames\n",
                site, relay.c_str(), res->conn, res->conn,
                machine->content_name().c_str(), frames);
    std::fflush(stdout);
  } else {
    std::string peer_host;
    std::uint16_t peer_port = 0;
    if (!split_host_port(peer, &peer_host, &peer_port)) {
      std::fprintf(stderr, "rtct_netplay: bad --peer '%s' (want IP:PORT)\n", peer.c_str());
      return 1;
    }
    direct = std::make_unique<net::UdpSocket>("0.0.0.0", bind_port);
    if (!direct->valid() || !direct->connect_peer(peer_host, peer_port)) {
      std::fprintf(stderr, "rtct_netplay: socket: %s\n", direct->last_error().c_str());
      return 1;
    }
    transport = direct.get();
    std::printf("site %d on udp/%u -> %s, game '%s', %d frames\n", site, direct->local_port(),
                peer.c_str(), machine->content_name().c_str(), frames);
  }

  core::RealtimeSession session(site, *machine, player, *transport, cfg);
  std::unique_ptr<net::UdpSocket> spectator_socket;
  if (spectator_port != 0) {
    spectator_socket = std::make_unique<net::UdpSocket>("0.0.0.0", spectator_port);
    if (!spectator_socket->valid()) {
      std::fprintf(stderr, "rtct_netplay: spectator socket: %s\n",
                   spectator_socket->last_error().c_str());
      return 1;
    }
    session.serve_spectators(spectator_socket.get());
    std::printf("serving spectators on udp/%u (rtct_watch --host <me>:%u)\n",
                spectator_socket->local_port(), spectator_socket->local_port());
  }
  if (stats) {
    // Live one-line HUD driven by the metrics registry: a fresh snapshot
    // roughly once a second (60 frames) — the human-facing face of the
    // same export --metrics-out serializes.
    session.set_frame_hook([&session](const emu::IDeterministicGame&,
                                      const core::FrameRecord& r) {
      if (r.frame % 60 != 59) return;
      MetricsRegistry reg;
      session.export_metrics(reg);
      const auto val = [&reg](const char* name) { return reg.value(name).value_or(0); };
      std::printf("[stats] f=%-6lld ft=%6.2fms stall=%5.2fms rtt=%6.2fms "
                  "tx=%llu rx=%llu retx=%llu overruns=%llu spect=%.0f\n",
                  static_cast<long long>(r.frame),
                  reg.histogram("timeline.frame_time_ms").mean(),
                  reg.histogram("timeline.stall_ms").mean(), val("sync.rtt_ms"),
                  static_cast<unsigned long long>(val("net.udp.datagrams_sent")),
                  static_cast<unsigned long long>(val("net.udp.datagrams_received")),
                  static_cast<unsigned long long>(val("sync.inputs_retransmitted")),
                  static_cast<unsigned long long>(val("pacer.overruns")),
                  val("spectator.host.joined"));
      std::fflush(stdout);
    });
  } else if (!quiet) {
    session.set_frame_hook([](const emu::IDeterministicGame& g, const core::FrameRecord& r) {
      if (r.frame % 300 != 150) return;
      const auto* screen = g.renderable();
      if (screen == nullptr) return;
      std::printf("\n--- frame %lld (hash %016llx) ---\n%s",
                  static_cast<long long>(r.frame),
                  static_cast<unsigned long long>(r.state_hash),
                  emu::render_ascii(screen->framebuffer(), screen->fb_cols(),
                                    screen->fb_rows())
                      .c_str());
    });
  }

  std::string error;
  const bool run_ok = session.run(&error);
  if (relayed != nullptr) relayed->leave();  // fire-and-forget lobby goodbye
  if (!run_ok) {
    std::fprintf(stderr, "rtct_netplay: session failed: %s\n", error.c_str());
    return 1;
  }

  const auto ft = session.timeline().frame_times().summarize();
  std::printf("\ncompleted %zu frames: avg %.3f ms/frame (dev %.3f ms), RTT %.3f ms, "
              "%zu stalled frames\n",
              session.timeline().size(), ft.mean, ft.mean_abs_deviation, to_ms(session.rtt()),
              session.timeline().stalled_frames());
  if (session.rollback_mode()) {
    const auto* rs = session.rollback_stats();
    std::printf("mode: rollback (negotiated): %llu rollbacks, %llu frames resimulated, "
                "max depth %d\n",
                static_cast<unsigned long long>(rs->rollbacks),
                static_cast<unsigned long long>(rs->frames_resimulated),
                rs->max_rollback_depth);
  } else if (mode == "rollback") {
    std::printf("mode: lockstep (peer did not opt into rollback)\n");
  }
  std::printf("final state hash: %016llx  (must match the peer's)\n",
              static_cast<unsigned long long>(machine->state_hash()));

  if (!metrics_out.empty()) {
    MetricsRegistry reg;
    session.export_metrics(reg);
    std::ofstream out(metrics_out, std::ios::binary | std::ios::trunc);
    out << reg.to_json() << '\n';
    if (out) {
      std::printf("metrics snapshot written to %s (rtct_trace show %s)\n",
                  metrics_out.c_str(), metrics_out.c_str());
    } else {
      std::fprintf(stderr, "rtct_netplay: failed to write '%s'\n", metrics_out.c_str());
      return 1;
    }
  }
  if (!timeline_out.empty()) {
    const std::string name = "site" + std::to_string(site) + "/" + game;
    std::ofstream out(timeline_out, std::ios::binary | std::ios::trunc);
    out << core::timeline_to_json(session.timeline(), name, cfg.sync.cfps) << '\n';
    if (out) {
      std::printf("timeline written to %s (diff against the peer's with rtct_trace)\n",
                  timeline_out.c_str());
    } else {
      std::fprintf(stderr, "rtct_netplay: failed to write '%s'\n", timeline_out.c_str());
      return 1;
    }
  }

  if (!record_path.empty()) {
    if (session.replay().save_file(record_path)) {
      std::printf("recorded %lld frames to %s (replay with: rtct_play --replay %s)\n",
                  static_cast<long long>(session.replay().frames()), record_path.c_str(),
                  record_path.c_str());
    } else {
      std::fprintf(stderr, "rtct_netplay: failed to write '%s'\n", record_path.c_str());
      return 1;
    }
  }
  return 0;
}
