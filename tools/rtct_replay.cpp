// rtct_replay — offline surgery on RTCTRPL1/RTCTRPL2 session recordings:
//
//   rtct_replay info FILE.rpl             header + keyframe table
//   rtct_replay seek FILE.rpl FRAME       random access: restore nearest
//                                         keyframe, re-simulate, print the
//                                         state digest at FRAME
//   rtct_replay rewind FILE.rpl           seek backwards through the whole
//                                         recording (TAS-style), proving
//                                         every rewind costs O(interval)
//   rtct_replay branch FILE.rpl FRAME OUT.rpl
//                                         truncate-and-fork frames [0,FRAME]
//   rtct_replay bisect A.rpl B.rpl        divergence bisection: first
//                                         divergent frame + exact 256 B
//                                         page(s), as rtct.bisect.v1 JSON
//   rtct_replay bisect A.rpl --timeline T.json
//                                         replay vs archived per-frame-hash
//                                         timeline (exact frame, no pages)
//   rtct_replay gen-fixture DIR           deterministically forge the
//                                         divergent-twin fixture pair the
//                                         test suite and CI bisect against
//
// Exit codes: 0 ok / bisect identical, 2 = bisect found a divergence,
// 1 = usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/random.h"
#include "src/core/bisect.h"
#include "src/core/metrics.h"
#include "src/core/replay.h"
#include "src/cores/registry.h"
#include "src/emu/machine.h"

namespace {

using rtct::core::BisectReport;
using rtct::core::FrameTimeline;
using rtct::core::Replay;
using rtct::FrameNo;

int usage() {
  std::fprintf(stderr,
               "usage: rtct_replay info FILE.rpl\n"
               "       rtct_replay seek FILE.rpl FRAME [--digest-version N]\n"
               "       rtct_replay rewind FILE.rpl [--step N]\n"
               "       rtct_replay branch FILE.rpl FRAME OUT.rpl\n"
               "       rtct_replay bisect A.rpl B.rpl\n"
               "       rtct_replay bisect A.rpl --timeline T.json [--digest-version N]\n"
               "       rtct_replay gen-fixture DIR\n");
  return 1;
}

std::optional<Replay> load_or_complain(const std::string& path) {
  auto r = Replay::load_file(path);
  if (!r) std::fprintf(stderr, "rtct_replay: %s: not a valid replay container\n", path.c_str());
  return r;
}

std::unique_ptr<rtct::emu::IDeterministicGame> game_for(const Replay& r) {
  // Name-first: recordings stamped with their qualified game name
  // re-instantiate the right core directly. The content id is still the
  // authority — a name whose image does not match (renamed game, edited
  // file) falls back to the full registry scan.
  if (!r.game_name().empty()) {
    if (auto game = rtct::cores::make_game(r.game_name());
        game != nullptr && game->content_id() == r.content_id()) {
      return game;
    }
  }
  auto game = rtct::cores::make_game_for_content(r.content_id());
  if (game == nullptr) {
    std::fprintf(stderr, "rtct_replay: no bundled game with content id %016llx\n",
                 static_cast<unsigned long long>(r.content_id()));
  }
  return game;
}

// ---- info -------------------------------------------------------------------

int cmd_info(const std::string& path) {
  const auto r = load_or_complain(path);
  if (!r) return 1;
  std::printf("container   RTCTRPL%d\n", r->container_version());
  std::printf("content_id  %016llx\n", static_cast<unsigned long long>(r->content_id()));
  std::printf("game        %s\n",
              r->game_name().empty() ? "(unrecorded)" : r->game_name().c_str());
  std::printf("cfps        %d\n", r->cfps());
  std::printf("buf_frames  %d\n", r->buf_frames());
  std::printf("digest_ver  %d\n", r->digest_version());
  std::printf("interval    %d\n", r->keyframe_interval());
  std::printf("frames      %lld\n", static_cast<long long>(r->frames()));
  std::printf("keyframes   %zu\n", r->keyframes().size());
  for (const auto& kf : r->keyframes()) {
    std::printf("  frame %8lld  digest %016llx  state %zu B\n", static_cast<long long>(kf.frame),
                static_cast<unsigned long long>(kf.digest), kf.state.size());
  }
  return 0;
}

// ---- seek / rewind ----------------------------------------------------------

int cmd_seek(const std::string& path, FrameNo frame, int digest_version) {
  const auto r = load_or_complain(path);
  if (!r) return 1;
  auto game = game_for(*r);
  if (game == nullptr) return 1;
  Replay::SeekStats st;
  const auto digest = r->seek(*game, frame, digest_version, &st);
  if (!digest) {
    std::fprintf(stderr, "rtct_replay: seek to frame %lld failed (out of range or corrupt keyframe)\n",
                 static_cast<long long>(frame));
    return 1;
  }
  std::printf("frame %lld  digest %016llx  (keyframe %lld, resimulated %lld)\n",
              static_cast<long long>(frame), static_cast<unsigned long long>(*digest),
              static_cast<long long>(st.keyframe), static_cast<long long>(st.resimulated));
  return 0;
}

int cmd_rewind(const std::string& path, FrameNo step) {
  const auto r = load_or_complain(path);
  if (!r) return 1;
  auto game = game_for(*r);
  if (game == nullptr) return 1;
  if (r->frames() == 0) {
    std::fprintf(stderr, "rtct_replay: empty recording\n");
    return 1;
  }
  if (step <= 0) {
    step = r->keyframe_interval() > 0 ? r->keyframe_interval() : 60;
  }
  FrameNo total_resim = 0;
  for (FrameNo f = r->frames() - 1; f >= 0; f -= step) {
    Replay::SeekStats st;
    const auto digest = r->seek(*game, f, 0, &st);
    if (!digest) {
      std::fprintf(stderr, "rtct_replay: rewind to frame %lld failed\n", static_cast<long long>(f));
      return 1;
    }
    total_resim += st.resimulated;
    std::printf("frame %8lld  digest %016llx  (keyframe %8lld, resimulated %lld)\n",
                static_cast<long long>(f), static_cast<unsigned long long>(*digest),
                static_cast<long long>(st.keyframe), static_cast<long long>(st.resimulated));
    if (f == 0) break;
  }
  std::printf("rewound %lld frames, re-simulated %lld total\n",
              static_cast<long long>(r->frames()), static_cast<long long>(total_resim));
  return 0;
}

// ---- branch -----------------------------------------------------------------

int cmd_branch(const std::string& path, FrameNo frame, const std::string& out) {
  const auto r = load_or_complain(path);
  if (!r) return 1;
  const Replay b = r->branch(frame);
  if (!b.save_file(out)) {
    std::fprintf(stderr, "rtct_replay: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s: frames [0, %lld], %zu keyframe(s)\n", out.c_str(),
              static_cast<long long>(b.frames() - 1), b.keyframes().size());
  return 0;
}

// ---- bisect -----------------------------------------------------------------

int report_and_exit(const BisectReport& rep) {
  std::printf("%s\n", rtct::core::bisect_report_to_json(rep).c_str());
  if (rep.verdict == "error") {
    std::fprintf(stderr, "rtct_replay: bisect error: %s\n", rep.error.c_str());
    return 1;
  }
  return rep.verdict == "diverged" ? 2 : 0;
}

int cmd_bisect(const std::string& path_a, const std::string& path_b) {
  const auto a = load_or_complain(path_a);
  const auto b = load_or_complain(path_b);
  if (!a || !b) return 1;
  const auto factory = [&a] { return game_for(*a); };
  return report_and_exit(rtct::core::bisect_replays(*a, *b, factory));
}

int cmd_bisect_timeline(const std::string& path_a, const std::string& path_t, int digest_version) {
  const auto a = load_or_complain(path_a);
  if (!a) return 1;
  std::ifstream in(path_t, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::optional<FrameTimeline> timeline;
  if (in) {
    if (const auto doc = rtct::parse_json(buf.str())) {
      timeline = rtct::core::timeline_from_json(*doc);
    }
  }
  if (!timeline) {
    std::fprintf(stderr, "rtct_replay: %s: not a valid timeline export\n", path_t.c_str());
    return 1;
  }
  const auto factory = [&a] { return game_for(*a); };
  return report_and_exit(
      rtct::core::bisect_replay_vs_timeline(*a, *timeline, digest_version, factory));
}

// ---- gen-fixture ------------------------------------------------------------

// Forges the committed divergent-twin fixture: two RTCTRPL2 recordings of
// the same deterministic torture-ROM session, except one embedded keyframe
// of twin B carries a single-byte RAM mutation (frame 599, page 17). The
// mutation lives in the *snapshot*, not the input log, so the bisector
// must attribute side "b" and name exactly that page. Everything is seeded
// and allocation-order-free, so the three outputs are byte-identical on
// every run — CI regenerates and diffs them.
constexpr FrameNo kFixtureFrames = 900;
constexpr int kFixtureInterval = 150;
constexpr FrameNo kFixtureMutFrame = 599;  // a keyframe frame: 150*4 - 1
constexpr int kFixtureMutPage = 17;
constexpr int kFixtureMutOffset = 5;  // byte within the page

int cmd_gen_fixture(const std::string& dir) {
  auto game = rtct::cores::make_game("ac16:torture");
  if (game == nullptr) return 1;
  rtct::core::SyncConfig cfg;
  cfg.digest_v2 = true;
  cfg.replay_keyframe_interval = kFixtureInterval;
  Replay a(game->content_id(), cfg, game->content_name());
  rtct::Rng rng(42);
  for (FrameNo f = 0; f < kFixtureFrames; ++f) {
    const auto input = static_cast<rtct::InputWord>(rng.next_u64() & 0xFFFF);
    game->step_frame(input);
    a.record(input);
    if (a.keyframe_due()) a.record_keyframe(*game);
  }

  Replay b = a;
  auto* mut = [&b]() -> rtct::core::ReplayKeyframe* {
    for (auto& kf : b.keyframes_mutable()) {
      if (kf.frame == kFixtureMutFrame) return &kf;
    }
    return nullptr;
  }();
  if (mut == nullptr) {
    std::fprintf(stderr, "rtct_replay: fixture keyframe at frame %lld missing\n",
                 static_cast<long long>(kFixtureMutFrame));
    return 1;
  }
  // The snapshot is (header | 32 KiB mutable region); flip one byte of
  // page 17 and restamp the keyframe digest so the forged snapshot is
  // internally consistent — the divergence evidence is the digest
  // disagreeing with the deterministic line, not a corrupt file.
  const std::size_t header = mut->state.size() - (0x10000 - rtct::emu::kRamBase);
  const std::size_t off =
      header + static_cast<std::size_t>(kFixtureMutPage) * rtct::emu::kPageSize + kFixtureMutOffset;
  mut->state[off] ^= 0x01;
  auto scratch = rtct::cores::make_game("ac16:torture");
  if (!scratch->load_state(mut->state)) {
    std::fprintf(stderr, "rtct_replay: forged snapshot failed to load\n");
    return 1;
  }
  mut->digest = scratch->state_digest(a.digest_version());

  const auto factory = [] { return rtct::cores::make_game("ac16:torture"); };
  const BisectReport rep = rtct::core::bisect_replays(a, b, factory);
  if (rep.verdict != "diverged") {
    std::fprintf(stderr, "rtct_replay: fixture self-check failed (verdict %s)\n",
                 rep.verdict.c_str());
    return 1;
  }

  const std::string pa = dir + "/bisect_twin_a.rpl";
  const std::string pb = dir + "/bisect_twin_b.rpl";
  const std::string pj = dir + "/bisect_expected.json";
  if (!a.save_file(pa) || !b.save_file(pb)) {
    std::fprintf(stderr, "rtct_replay: cannot write fixture replays under %s\n", dir.c_str());
    return 1;
  }
  std::ofstream out(pj, std::ios::binary | std::ios::trunc);
  out << rtct::core::bisect_report_to_json(rep) << '\n';
  if (!out) {
    std::fprintf(stderr, "rtct_replay: cannot write %s\n", pj.c_str());
    return 1;
  }
  std::printf("wrote %s %s %s\n", pa.c_str(), pb.c_str(), pj.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  int digest_version = 0;
  FrameNo step = 0;
  std::string timeline_path;
  std::vector<std::string> pos;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--digest-version" && i + 1 < args.size()) {
      digest_version = std::atoi(args[++i].c_str());
    } else if (args[i] == "--step" && i + 1 < args.size()) {
      step = std::atoll(args[++i].c_str());
    } else if (args[i] == "--timeline" && i + 1 < args.size()) {
      timeline_path = args[++i];
    } else {
      pos.push_back(args[i]);
    }
  }
  if (pos.empty()) return usage();
  const std::string& cmd = pos[0];
  if (cmd == "info" && pos.size() == 2) return cmd_info(pos[1]);
  if (cmd == "seek" && pos.size() == 3) {
    return cmd_seek(pos[1], std::atoll(pos[2].c_str()), digest_version);
  }
  if (cmd == "rewind" && pos.size() == 2) return cmd_rewind(pos[1], step);
  if (cmd == "branch" && pos.size() == 4) {
    return cmd_branch(pos[1], std::atoll(pos[2].c_str()), pos[3]);
  }
  if (cmd == "bisect" && pos.size() == 2 && !timeline_path.empty()) {
    return cmd_bisect_timeline(pos[1], timeline_path, digest_version);
  }
  if (cmd == "bisect" && pos.size() == 3) return cmd_bisect(pos[1], pos[2]);
  if (cmd == "gen-fixture" && pos.size() == 2) return cmd_gen_fixture(pos[1]);
  return usage();
}
