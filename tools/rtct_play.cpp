// rtct_play — run a game single-machine (the pre-distribution experience):
//
//   rtct_play <game-name | file.rom> [--frames N] [--seed S] [--render-every K]
//
// Game names resolve through the core registry: bare names are AC16
// ("pong" == "ac16:pong"); qualified names select another core
// ("agent86:skirmish", "native:cellwars"). Drives the machine with two
// deterministic synthetic players and renders ASCII frames. Prints the
// final state hash so two invocations with the same seed can be diffed —
// the determinism contract, demonstrated from the command line.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/core/input_source.h"
#include "src/core/replay.h"
#include "src/cores/registry.h"
#include "src/emu/machine.h"
#include "src/emu/render_text.h"
#include "src/emu/rom_io.h"

int main(int argc, char** argv) {
  using namespace rtct;

  std::string target = "pong", replay_path;
  int frames = 600;
  std::uint64_t seed = 1;
  int render_every = 120;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--frames" && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--render-every" && i + 1 < argc) {
      render_every = std::atoi(argv[++i]);
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      target = arg;
    } else {
      std::fprintf(stderr,
                   "usage: rtct_play <[core:]game|file.rom> [--frames N] [--seed S] "
                   "[--render-every K]\n  bundled games:");
      for (const auto& e : cores::list_games()) {
        std::fprintf(stderr, " %s", e.qualified().c_str());
      }
      std::fprintf(stderr, "\n");
      return arg == "-h" || arg == "--help" ? 0 : 1;
    }
  }

  // Resolve: bundled (possibly qualified) name first, then .rom file.
  std::unique_ptr<emu::IDeterministicGame> machine = cores::make_game(target);
  if (!machine) {
    auto rom = emu::load_rom_file(target);
    if (!rom) {
      std::fprintf(stderr, "rtct_play: '%s' is neither a bundled game nor a readable .rom\n",
                   target.c_str());
      return 1;
    }
    machine = std::make_unique<emu::ArcadeMachine>(*rom);
  }

  // --replay FILE: drive the machine from a recorded session instead of
  // synthetic players (and verify the recording matches this game image).
  std::optional<core::Replay> replay;
  if (!replay_path.empty()) {
    replay = core::Replay::load_file(replay_path);
    if (!replay) {
      std::fprintf(stderr, "rtct_play: cannot load replay '%s'\n", replay_path.c_str());
      return 1;
    }
    if (replay->content_id() != machine->content_id()) {
      std::fprintf(stderr, "rtct_play: replay was recorded on a different game image\n");
      return 1;
    }
    frames = static_cast<int>(replay->frames());
    std::printf("replaying %d recorded frames\n", frames);
  }

  core::MasherInput p0(seed), p1(seed ^ 0x9E3779B97F4A7C15ull);
  std::printf("running '%s' for %d frames (input seed %llu)\n",
              machine->content_name().c_str(), frames,
              static_cast<unsigned long long>(seed));

  const emu::IRenderableGame* screen = machine->renderable();
  for (int f = 0; f < frames; ++f) {
    machine->step_frame(replay ? replay->inputs()[static_cast<std::size_t>(f)]
                               : make_input(p0.input_for_frame(f), p1.input_for_frame(f)));
    if (machine->faulted()) {
      std::fprintf(stderr, "machine faulted at frame %d\n", f);
      return 1;
    }
    if (screen != nullptr && render_every > 0 && f % render_every == render_every - 1) {
      std::printf("\n--- frame %d ---\n%s", f,
                  emu::render_ascii(screen->framebuffer(), screen->fb_cols(),
                                    screen->fb_rows())
                      .c_str());
    }
  }

  std::printf("\nfinal state hash after %lld frames: %016llx\n",
              static_cast<long long>(machine->frame()),
              static_cast<unsigned long long>(machine->state_hash()));
  return 0;
}
