// rtct_trace — offline analysis of the observability exports:
//
//   rtct_trace diff A.json B.json    two "rtct.timeline.v1" files: first
//                                    state-hash divergence + Figure-1/2
//                                    statistics over the common prefix.
//                                    Exit 0 = consistent, 2 = diverged.
//   rtct_trace show FILE.json        pretty-print a "rtct.metrics.v1"
//                                    snapshot or a timeline summary.
//   rtct_trace --check FILE...       validate exports: known schema, well
//                                    formed, non-empty equal-length series.
//                                    Exit 0 = all valid (CI gate).
//
// This is the paper's evaluation pipeline turned into a tool: the authors
// shipped per-frame begin times to a time server and post-processed them
// into Figures 1 and 2; here any two archived sessions can be compared
// the same way after the fact.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/stats.h"
#include "src/core/metrics.h"

namespace {

using rtct::JsonValue;
using rtct::Summary;
using rtct::core::FrameTimeline;

int usage() {
  std::fprintf(stderr,
               "usage: rtct_trace diff A.json B.json   (timeline compare)\n"
               "       rtct_trace show FILE.json       (metrics/timeline snapshot)\n"
               "       rtct_trace --check FILE...      (validate exports)\n");
  return 1;
}

std::optional<JsonValue> load_json(const std::string& path, std::string* why) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *why = "cannot open file";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = rtct::parse_json(buf.str());
  if (!doc) {
    *why = "not valid JSON";
    return std::nullopt;
  }
  return doc;
}

const std::string* schema_of(const JsonValue& doc) {
  const JsonValue* s = doc.find("schema");
  return s != nullptr ? s->string() : nullptr;
}

void print_summary(const char* label, const Summary& s) {
  std::printf("  %-18s mean %8.3f  dev %7.3f  |avg| %7.3f  min %8.3f  max %8.3f  "
              "p95 %8.3f  (n=%zu)\n",
              label, s.mean, s.mean_abs_deviation, s.mean_abs, s.min, s.max, s.p95, s.count);
}

// ---- diff -------------------------------------------------------------------

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  std::string why;
  const auto doc_a = load_json(path_a, &why);
  if (!doc_a) {
    std::fprintf(stderr, "rtct_trace: %s: %s\n", path_a.c_str(), why.c_str());
    return 1;
  }
  const auto doc_b = load_json(path_b, &why);
  if (!doc_b) {
    std::fprintf(stderr, "rtct_trace: %s: %s\n", path_b.c_str(), why.c_str());
    return 1;
  }
  const auto tl_a = rtct::core::timeline_from_json(*doc_a);
  const auto tl_b = rtct::core::timeline_from_json(*doc_b);
  if (!tl_a || !tl_b) {
    std::fprintf(stderr, "rtct_trace: diff needs two rtct.timeline.v1 files\n");
    return 1;
  }

  const std::size_t common = std::min(tl_a->size(), tl_b->size());
  std::printf("A: %s (%zu frames)\nB: %s (%zu frames)\ncommon prefix: %zu frames\n\n",
              path_a.c_str(), tl_a->size(), path_b.c_str(), tl_b->size(), common);
  if (common == 0) {
    std::printf("nothing to compare\n");
    return 1;
  }

  std::printf("frame times (Figure 1, ms):\n");
  print_summary("A", tl_a->frame_times().summarize());
  print_summary("B", tl_b->frame_times().summarize());
  std::printf("synchrony A-B (Figure 2, ms):\n");
  print_summary("begin-time diff", rtct::core::synchrony_differences(*tl_a, *tl_b).summarize());
  std::printf("stalled frames: A %zu, B %zu\n", tl_a->stalled_frames(), tl_b->stalled_frames());

  const rtct::FrameNo div = rtct::core::first_divergence(*tl_a, *tl_b);
  if (div < 0) {
    std::printf("\nlogical consistency: IDENTICAL over the common prefix "
                "(all %zu state hashes match)\n", common);
    return 0;
  }
  const auto& ra = tl_a->records()[static_cast<std::size_t>(div)];
  const auto& rb = tl_b->records()[static_cast<std::size_t>(div)];
  std::printf("\nlogical consistency: DIVERGED at frame %lld\n"
              "  A hash %016llx\n  B hash %016llx\n",
              static_cast<long long>(div), static_cast<unsigned long long>(ra.state_hash),
              static_cast<unsigned long long>(rb.state_hash));
  return 2;
}

// ---- show -------------------------------------------------------------------

void show_metrics(const JsonValue& doc) {
  if (const JsonValue* counters = doc.find("counters"); counters && counters->object()) {
    std::printf("counters:\n");
    for (const auto& [name, v] : *counters->object()) {
      std::printf("  %-40s %12.0f\n", name.c_str(), v.number_or(0));
    }
  }
  if (const JsonValue* gauges = doc.find("gauges"); gauges && gauges->object()) {
    std::printf("gauges:\n");
    for (const auto& [name, v] : *gauges->object()) {
      std::printf("  %-40s %12.3f\n", name.c_str(), v.number_or(0));
    }
  }
  if (const JsonValue* hists = doc.find("histograms"); hists && hists->object()) {
    std::printf("histograms:\n");
    for (const auto& [name, h] : *hists->object()) {
      const auto num = [&h](const char* k) {
        const JsonValue* v = h.find(k);
        return v != nullptr ? v->number_or(0) : 0.0;
      };
      std::printf("  %-40s n=%-8.0f mean %8.3f  min %8.3f  max %8.3f\n", name.c_str(),
                  num("count"), num("mean"), num("min"), num("max"));
    }
  }
}

int cmd_show(const std::string& path) {
  std::string why;
  const auto doc = load_json(path, &why);
  if (!doc) {
    std::fprintf(stderr, "rtct_trace: %s: %s\n", path.c_str(), why.c_str());
    return 1;
  }
  const std::string* schema = schema_of(*doc);
  if (schema == nullptr) {
    std::fprintf(stderr, "rtct_trace: %s: no schema tag\n", path.c_str());
    return 1;
  }
  std::printf("%s: %s\n", path.c_str(), schema->c_str());
  if (*schema == "rtct.metrics.v1") {
    show_metrics(*doc);
    return 0;
  }
  if (*schema == "rtct.timeline.v1") {
    const auto tl = rtct::core::timeline_from_json(*doc);
    if (!tl) {
      std::fprintf(stderr, "rtct_trace: %s: malformed timeline\n", path.c_str());
      return 1;
    }
    std::printf("%zu frames, %zu stalled\n", tl->size(), tl->stalled_frames());
    print_summary("frame_time_ms", tl->frame_times().summarize());
    print_summary("stall_ms", tl->stalls().summarize());
    print_summary("compute_ms", tl->computes().summarize());
    print_summary("wait_ms", tl->waits().summarize());
    const auto b = tl->latency_breakdown();
    std::printf("latency breakdown (mean ms/frame): frame %.3f = stall %.3f + compute %.3f "
                "+ sleep %.3f + other %.3f\n",
                b.frame_ms, b.stall_ms, b.compute_ms, b.sleep_ms, b.other_ms);
    return 0;
  }
  std::fprintf(stderr, "rtct_trace: show does not handle schema '%s'\n", schema->c_str());
  return 1;
}

// ---- check ------------------------------------------------------------------

/// All members of `obj` that are arrays must be non-empty and equally long.
bool series_well_formed(const JsonValue& obj, std::string* why) {
  const auto* members = obj.object();
  if (members == nullptr) {
    *why = "series/columns is not an object";
    return false;
  }
  std::size_t len = 0;
  bool first = true;
  for (const auto& [name, v] : *members) {
    const auto* arr = v.array();
    if (arr == nullptr) {
      *why = "series '" + name + "' is not an array";
      return false;
    }
    if (arr->empty()) {
      *why = "series '" + name + "' is empty";
      return false;
    }
    if (first) {
      len = arr->size();
      first = false;
    } else if (arr->size() != len) {
      *why = "series '" + name + "' length mismatch";
      return false;
    }
  }
  if (first) {
    *why = "no series present";
    return false;
  }
  return true;
}

bool check_one(const std::string& path, std::string* why) {
  const auto doc = load_json(path, why);
  if (!doc) return false;
  const std::string* schema = schema_of(*doc);
  if (schema == nullptr) {
    *why = "no schema tag";
    return false;
  }
  if (*schema == "rtct.metrics.v1") {
    if (doc->find("counters") == nullptr || doc->find("gauges") == nullptr) {
      *why = "metrics snapshot missing counters/gauges";
      return false;
    }
    return true;
  }
  if (*schema == "rtct.timeline.v1") {
    const JsonValue* cols = doc->find("columns");
    if (cols == nullptr || !series_well_formed(*cols, why)) return false;
    if (!rtct::core::timeline_from_json(*doc)) {
      *why = "columns present but timeline does not decode";
      return false;
    }
    return true;
  }
  if (*schema == "rtct.bench.v1") {
    const JsonValue* series = doc->find("series");
    return series != nullptr && series_well_formed(*series, why);
  }
  *why = "unknown schema '" + *schema + "'";
  return false;
}

int cmd_check(const std::vector<std::string>& paths) {
  if (paths.empty()) return usage();
  bool all_ok = true;
  for (const auto& path : paths) {
    std::string why;
    if (check_one(path, &why)) {
      std::printf("%s: OK\n", path.c_str());
    } else {
      std::printf("%s: FAIL (%s)\n", path.c_str(), why.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "diff" && argc == 4) return cmd_diff(argv[2], argv[3]);
  if (cmd == "show" && argc == 3) return cmd_show(argv[2]);
  if (cmd == "--check" || cmd == "check") {
    return cmd_check(std::vector<std::string>(argv + 2, argv + argc));
  }
  return usage();
}
