// rtct_relayd — the session-multiplexing relay/lobby daemon.
//
// One process fronts thousands of concurrent netplay sessions: clients
// CREATE/JOIN sessions at the lobby port, get back a connection id and a
// shard data port, and every DATA datagram they send is forwarded to the
// other session members verbatim. The core sync protocol (lockstep or
// rollback, negotiated end-to-end in HELLO/START) passes through opaquely.
//
//   rtct_relayd --port 7100                      # lobby on udp/7100
//   rtct_netplay --relay <ip>:7100 --create      # site 0; prints conn id
//   rtct_netplay --relay <ip>:7100 --join <id>   # site 1
//
// --stats prints a periodic one-line HUD; --metrics-out snapshots the
// relay.* registry ("rtct.metrics.v1") on exit; --run-for bounds the
// daemon's lifetime for scripted tests.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "src/common/telemetry.h"
#include "src/relay/relay_server.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: rtct_relayd [--port PORT] [--bind IP] [--shards N]\n"
               "                   [--idle-timeout-ms MS] [--max-sessions N]\n"
               "                   [--run-for SECONDS] [--stats]\n"
               "                   [--metrics-out FILE.json]\n");
}

bool parse_long(const char* s, long lo, long hi, long* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < lo || v > hi) return false;
  *out = v;
  return true;
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace rtct;

  relay::RelayConfig cfg;
  cfg.bind_ip = "0.0.0.0";
  cfg.lobby_port = 7100;
  long run_for_s = 0;  // 0 = until signalled
  bool stats = false;
  std::string metrics_out;

  bool parse_ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rtct_relayd: %s needs a value\n", what);
        std::exit(1);
      }
      return argv[++i];
    };
    auto num = [&](const char* what, long lo, long hi) -> long {
      long v = 0;
      if (!parse_long(next(what), lo, hi, &v)) {
        std::fprintf(stderr, "rtct_relayd: bad %s '%s' (want integer in [%ld, %ld])\n",
                     what, argv[i], lo, hi);
        parse_ok = false;
      }
      return v;
    };
    if (arg == "--port") cfg.lobby_port = static_cast<std::uint16_t>(num("--port", 0, 65535));
    else if (arg == "--bind") cfg.bind_ip = next("--bind");
    else if (arg == "--shards") cfg.shards = static_cast<int>(num("--shards", 1, 16));
    else if (arg == "--idle-timeout-ms") {
      cfg.idle_timeout = milliseconds(num("--idle-timeout-ms", 1, 3600000));
    }
    else if (arg == "--max-sessions") {
      cfg.max_sessions = static_cast<std::size_t>(num("--max-sessions", 1, 1000000));
    }
    else if (arg == "--run-for") run_for_s = num("--run-for", 1, 86400);
    else if (arg == "--stats") stats = true;
    else if (arg == "--metrics-out") metrics_out = next("--metrics-out");
    else {
      usage();
      return arg == "-h" || arg == "--help" ? 0 : 1;
    }
  }
  if (!parse_ok) return 1;

  relay::RelayServer server(cfg);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "rtct_relayd: start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("rtct_relayd: lobby on udp/%u, %d shard(s) on", server.lobby_port(),
              server.shard_count());
  for (int i = 0; i < server.shard_count(); ++i) {
    std::printf(" udp/%u", server.shard_port(i));
  }
  std::printf(", idle timeout %lld ms, max %zu sessions\n",
              static_cast<long long>(cfg.idle_timeout / kMillisecond), cfg.max_sessions);
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  long elapsed_s = 0;
  int hud_tick = 0;
  while (g_stop == 0 && (run_for_s == 0 || elapsed_s < run_for_s)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    if (++hud_tick % 4 == 0) {
      ++elapsed_s;
      if (stats) {
        const auto s = server.stats();
        std::printf("[relayd] sessions=%zu created=%llu evicted=%llu fwd=%llu "
                    "drop{sess=%llu,sender=%llu,malformed=%llu} lobby{req=%llu,err=%llu}\n",
                    server.session_count(),
                    static_cast<unsigned long long>(s.sessions_created),
                    static_cast<unsigned long long>(s.sessions_evicted),
                    static_cast<unsigned long long>(s.datagrams_forwarded),
                    static_cast<unsigned long long>(s.dropped_unknown_session),
                    static_cast<unsigned long long>(s.dropped_unknown_sender),
                    static_cast<unsigned long long>(s.dropped_malformed),
                    static_cast<unsigned long long>(s.lobby_requests),
                    static_cast<unsigned long long>(s.lobby_errors));
        std::fflush(stdout);
      }
    }
  }

  if (!metrics_out.empty()) {
    MetricsRegistry reg;
    server.export_metrics(reg);
    std::ofstream out(metrics_out, std::ios::binary | std::ios::trunc);
    out << reg.to_json() << '\n';
    if (!out) {
      std::fprintf(stderr, "rtct_relayd: failed to write '%s'\n", metrics_out.c_str());
      server.stop();
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  }

  const auto s = server.stats();
  server.stop();
  std::printf("rtct_relayd: served %llu sessions (%llu evicted), forwarded %llu datagrams\n",
              static_cast<unsigned long long>(s.sessions_created),
              static_cast<unsigned long long>(s.sessions_evicted),
              static_cast<unsigned long long>(s.datagrams_forwarded));
  return 0;
}
