// rtct_asm — the AC16 assembler as a command-line tool.
//
//   rtct_asm game.asm [-o game.rom] [--listing] [--title NAME]
//
// Assembles AC16 source to a .rom container. With --listing, prints the
// disassembly of the produced image. Exit code 0 on success, 1 on
// assembly errors (printed with line numbers, compiler-style).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/emu/assembler.h"
#include "src/emu/disassembler.h"
#include "src/emu/rom_io.h"

namespace {
void usage() {
  std::fprintf(stderr,
               "usage: rtct_asm <source.asm> [-o out.rom] [--listing] [--title NAME]\n");
}
}  // namespace

int main(int argc, char** argv) {
  std::string source_path, out_path, title;
  bool listing = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--listing") {
      listing = true;
    } else if (arg == "--title" && i + 1 < argc) {
      title = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-' && source_path.empty()) {
      source_path = arg;
    } else {
      usage();
      return 1;
    }
  }
  if (source_path.empty()) {
    usage();
    return 1;
  }

  std::ifstream in(source_path);
  if (!in) {
    std::fprintf(stderr, "rtct_asm: cannot open '%s'\n", source_path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  if (title.empty()) {
    // Derive from the filename: "games/pong.asm" -> "pong".
    title = source_path;
    if (const auto slash = title.find_last_of('/'); slash != std::string::npos) {
      title = title.substr(slash + 1);
    }
    if (const auto dot = title.find_last_of('.'); dot != std::string::npos) {
      title = title.substr(0, dot);
    }
  }
  if (out_path.empty()) out_path = title + ".rom";

  auto result = rtct::emu::assemble(ss.str(), title);
  if (!result.ok()) {
    for (const auto& e : result.errors) {
      std::fprintf(stderr, "%s:%d: error: %s\n", source_path.c_str(), e.line,
                   e.message.c_str());
    }
    return 1;
  }

  if (!rtct::emu::save_rom_file(result.rom, out_path)) {
    std::fprintf(stderr, "rtct_asm: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  std::printf("%s: %zu bytes, entry 0x%04X, checksum %016llx -> %s\n", title.c_str(),
              result.rom.image.size(), result.rom.entry,
              static_cast<unsigned long long>(result.rom.checksum()), out_path.c_str());

  if (listing) {
    std::printf("\n%s", rtct::emu::disassemble(
                            {result.rom.image.data(), result.rom.image.size()})
                            .c_str());
  }
  return 0;
}
