// Four players, four machines — the N-site mesh extension in action.
//
// Four sites each own one nibble of the input word (the 4-way SET[k]
// partition) and play QUADTRON over a full mesh of 50 ms-RTT links; the
// example proves all four replicas ran the identical game at 60 FPS.
//
//   ./build/examples/four_player [frames] [rtt_ms] [loss%]
#include <cstdio>
#include <cstdlib>

#include "src/emu/machine.h"
#include "src/emu/render_text.h"
#include "src/testbed/mesh_experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  MeshExperimentConfig cfg;
  cfg.frames = argc > 1 ? std::atoi(argv[1]) : 900;
  const long rtt = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 50;
  cfg.net = net::NetemConfig::for_rtt(milliseconds(rtt));
  cfg.net.loss = (argc > 3 ? std::atof(argv[3]) : 0.0) / 100.0;

  std::printf("four players share QUADTRON over a full mesh (%ld ms RTT, %.1f%% loss), "
              "%d frames...\n\n",
              rtt, cfg.net.loss * 100, cfg.frames);
  const auto r = run_mesh_experiment(cfg);
  if (r.sites.empty()) {
    std::fprintf(stderr, "mesh experiment failed to start\n");
    return 1;
  }

  for (int s = 0; s < 4; ++s) {
    const auto& site = r.sites[static_cast<std::size_t>(s)];
    if (site.aborted) {
      std::fprintf(stderr, "site %d aborted: %s\n", s, site.failure_reason.c_str());
      return 1;
    }
    std::printf("site %d: %lld frames, avg %.3f ms/frame, deviation %.3f ms, "
                "%zu stalled\n",
                s, static_cast<long long>(site.frames_completed), r.avg_frame_time_ms(s),
                r.frame_time_deviation_ms(s), site.timeline.stalled_frames());
  }
  std::printf("worst pairwise synchrony: %.3f ms\n", r.worst_synchrony_ms());
  std::printf("all four replicas identical every frame: %s\n",
              r.first_divergence() == -1 ? "yes" : "NO");
  return r.converged() ? 0 : 1;
}
