// Real-socket netplay: two complete rtct sites in one process, talking
// over genuine UDP on the loopback interface — the deployment shape of the
// paper's system (each site would normally be its own machine).
//
// Each thread runs a RealtimeSession (wall-clock driver) around its own
// ArcadeMachine replica; synthetic players mash buttons. While the match
// runs, the main thread periodically renders player 0's screen. At the
// end, both replicas' state hashes are compared frame by frame.
//
//   ./build/examples/netplay_udp [game] [frames]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "src/core/input_source.h"
#include "src/core/realtime.h"
#include "src/cores/registry.h"
#include "src/emu/render_text.h"
#include "src/net/udp_socket.h"

int main(int argc, char** argv) {
  using namespace rtct;

  const std::string game = argc > 1 ? argv[1] : "duel";
  const int frames = argc > 2 ? std::atoi(argv[2]) : 480;

  auto machine0 = cores::make_game(game);
  auto machine1 = cores::make_game(game);
  if (!machine0 || !machine1) {
    std::fprintf(stderr, "unknown game '%s'\n", game.c_str());
    return 1;
  }

  // Two bound-and-connected loopback sockets.
  net::UdpSocket sock0("127.0.0.1", 0);
  net::UdpSocket sock1("127.0.0.1", 0);
  if (!sock0.valid() || !sock1.valid()) {
    std::fprintf(stderr, "socket setup failed: %s%s\n", sock0.last_error().c_str(),
                 sock1.last_error().c_str());
    return 1;
  }
  sock0.connect_peer("127.0.0.1", sock1.local_port());
  sock1.connect_peer("127.0.0.1", sock0.local_port());
  std::printf("site 0 on udp/%u  <->  site 1 on udp/%u, game '%s', %d frames\n",
              sock0.local_port(), sock1.local_port(), game.c_str(), frames);

  core::MasherInput player0(2024), player1(7331);
  core::RealtimeConfig cfg;
  cfg.frames = frames;

  core::RealtimeSession session0(0, *machine0, player0, sock0, cfg);
  core::RealtimeSession session1(1, *machine1, player1, sock1, cfg);

  // Render site 0's screen once a second (from its frame hook).
  session0.set_frame_hook([](const emu::IDeterministicGame& g, const core::FrameRecord& r) {
    if (r.frame % 60 != 30) return;
    const auto* screen = g.renderable();
    if (screen == nullptr) return;
    std::printf("\n--- frame %lld ---\n%s", static_cast<long long>(r.frame),
                emu::render_ascii(screen->framebuffer(), screen->fb_cols(),
                                  screen->fb_rows())
                    .c_str());
  });

  std::string err0, err1;
  bool ok0 = false, ok1 = false;
  std::thread t1([&] { ok1 = session1.run(&err1); });
  ok0 = session0.run(&err0);
  t1.join();

  if (!ok0 || !ok1) {
    std::fprintf(stderr, "session failed: site0='%s' site1='%s'\n", err0.c_str(), err1.c_str());
    return 1;
  }

  const FrameNo div = core::first_divergence(session0.timeline(), session1.timeline());
  const auto ft0 = session0.timeline().frame_times().summarize();
  const auto ft1 = session1.timeline().frame_times().summarize();
  std::printf("\nsite 0: avg frame time %.3f ms (dev %.3f), RTT estimate %.3f ms\n", ft0.mean,
              ft0.mean_abs_deviation, to_ms(session0.rtt()));
  std::printf("site 1: avg frame time %.3f ms (dev %.3f), RTT estimate %.3f ms\n", ft1.mean,
              ft1.mean_abs_deviation, to_ms(session1.rtt()));
  std::printf("messages: %llu sent by site 0, %llu by site 1; retransmitted inputs: %llu/%llu\n",
              static_cast<unsigned long long>(session0.stats().messages_made),
              static_cast<unsigned long long>(session1.stats().messages_made),
              static_cast<unsigned long long>(session0.stats().inputs_retransmitted),
              static_cast<unsigned long long>(session1.stats().inputs_retransmitted));
  std::printf("replica consistency: %s\n",
              div == -1 ? "identical state hashes on every frame" : "DIVERGED");
  return div == -1 ? 0 : 1;
}
