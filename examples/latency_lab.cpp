// Latency lab: explore how network conditions affect a shared game —
// the paper's §4 experiments as an interactive tool.
//
//   ./build/examples/latency_lab [game] [frames] [loss%] [jitter_ms] [adaptive]
//
// Sweeps the RTT grid, prints the Figure 1 / Figure 2 table, and reports
// the threshold RTT (the paper found ~140 ms with its overheads; with this
// library's default model parameters the same budget arithmetic lands
// slightly higher — see EXPERIMENTS.md).
//
// A truthy 5th argument switches both sites to the v2 adaptive transport:
// RTT-negotiated local lag, RTO-timed retransmission instead of go-back-N,
// and a 2-flush redundancy tail (see docs/PROTOCOL.md). At long RTTs the
// negotiated lag keeps frames smooth where the fixed paper lag stalls.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/testbed/sweep.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  ExperimentConfig base;
  base.game = argc > 1 ? argv[1] : "duel";
  base.frames = argc > 2 ? std::atoi(argv[2]) : 600;
  const double loss = (argc > 3 ? std::atof(argv[3]) : 0.0) / 100.0;
  const long jitter_ms = argc > 4 ? std::strtol(argv[4], nullptr, 10) : 0;
  const bool adaptive = argc > 5 && std::atoi(argv[5]) != 0;
  if (adaptive) {
    base.sync.adaptive_lag = true;
    base.sync.adaptive_resend = true;
    base.sync.redundant_inputs = 2;
  }

  char lag[48];
  if (adaptive) {
    std::snprintf(lag, sizeof lag, "RTT-negotiated local lag");
  } else {
    std::snprintf(lag, sizeof lag, "local lag %.0f ms", to_ms(base.sync.local_lag()));
  }
  std::printf("game=%s frames=%d loss=%.1f%% jitter=%ld ms  (%s, flush %.0f ms)\n\n",
              base.game.c_str(), base.frames, loss * 100, jitter_ms, lag,
              to_ms(base.sync.send_flush_period));

  const auto points = sweep_rtt(base, quick_rtt_sweep(), [&](ExperimentConfig& cfg, Dur) {
    cfg.net_a_to_b.loss = loss;
    cfg.net_b_to_a.loss = loss;
    cfg.net_a_to_b.jitter = milliseconds(jitter_ms);
    cfg.net_b_to_a.jitter = milliseconds(jitter_ms);
  });

  print_paper_table(points);
  const Dur threshold = find_threshold_rtt(points, base.sync.cfps);
  if (threshold >= 0) {
    std::printf("\nfull-speed threshold RTT on this grid: %.0f ms\n", to_ms(threshold));
  } else {
    std::printf("\nno swept RTT sustained full speed under these conditions\n");
  }
  std::printf("(the paper recommends one-way latencies under the local lag of %.0f ms, §3)\n",
              to_ms(base.sync.local_lag()));
  return 0;
}
