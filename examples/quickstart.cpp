// Quickstart: share a legacy game between two (simulated) computers.
//
// Runs the bundled PONG ROM as a two-site lockstep session across a
// simulated 40 ms-RTT network, then shows that (a) the game stayed at
// 60 FPS, (b) both replicas rendered the *same* final screen, and (c) the
// state hashes never diverged — the paper's logical + real-time
// consistency, end to end.
//
//   ./build/examples/quickstart [game] [rtt_ms]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/emu/machine.h"
#include "src/emu/render_text.h"
#include "src/testbed/experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;

  const std::string game = argc > 1 ? argv[1] : "pong";
  const long rtt_ms = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 40;

  testbed::ExperimentConfig cfg;
  cfg.game = game;
  cfg.frames = 900;  // 15 seconds of play at 60 FPS
  cfg.set_rtt(milliseconds(rtt_ms));

  std::printf("Sharing '%s' between two sites over a %ld ms RTT network...\n", game.c_str(),
              rtt_ms);
  const auto result = testbed::run_experiment(cfg);

  for (int s = 0; s < 2; ++s) {
    const auto& site = result.site[s];
    if (site.session_failed || site.aborted) {
      std::printf("site %d FAILED: %s\n", s, site.failure_reason.c_str());
      return 1;
    }
    std::printf("site %d: %lld frames, avg frame time %.3f ms (%.1f FPS), "
                "frame-time deviation %.3f ms, %zu stalled frames\n",
                s, static_cast<long long>(site.frames_completed), result.avg_frame_time_ms(s),
                1000.0 / result.avg_frame_time_ms(s), result.frame_time_deviation_ms(s),
                site.timeline.stalled_frames());
  }
  std::printf("inter-site synchrony: %.3f ms average\n", result.synchrony_ms());
  std::printf("replica divergence: %s\n",
              result.first_divergence() == -1 ? "none (logically consistent)" : "DIVERGED");

  std::printf("\nFinal screens (site 0 | site 1):\n%s",
              emu::render_ascii_pair(result.site[0].final_framebuffer,
                                     result.site[1].final_framebuffer, emu::kFbCols,
                                     emu::kFbRows)
                  .c_str());

  return result.converged() ? 0 : 1;
}
