// The emulator as a library: write a ROM in AC16 assembly, assemble it,
// run it deterministically, snapshot and replay it.
//
// This demonstrates the substrate contract the whole sync layer rests on
// (§3: "we assume that the original game VM is deterministic") and the
// tooling a game author would use: assembler, disassembler, save states.
//
//   ./build/examples/replay_determinism
#include <cstdio>
#include <vector>

#include "src/core/input_source.h"
#include "src/emu/assembler.h"
#include "src/emu/disassembler.h"
#include "src/emu/machine.h"
#include "src/emu/render_text.h"

namespace {
// A tiny hand-written game: player 0 steers a dot, player 1 paints trails.
constexpr const char* kDemoRom = R"asm(
.equ STATE, 0x8000
.equ FB,    0xA000
.equ X, 0
.equ Y, 2

.entry main
main:
    LDI r14, STATE
    LDW r0, r14, X      ; load position (zero-initialized => start at 0,0)
    LDW r1, r14, Y
frame:
    IN  r2, 0           ; player 0 steers
    MOV r3, r2
    ANDI r3, 4          ; left
    JZ  no_left
    SUBI r0, 1
no_left:
    MOV r3, r2
    ANDI r3, 8          ; right
    JZ  no_right
    ADDI r0, 1
no_right:
    ANDI r0, 63         ; wrap x
    MOV r3, r2
    ANDI r3, 1          ; up
    JZ  no_up
    SUBI r1, 1
no_up:
    MOV r3, r2
    ANDI r3, 2          ; down
    JZ  no_down
    ADDI r1, 1
no_down:
    CMPI r1, 48
    JC  y_ok            ; y < 48
    LDI r1, 0
y_ok:
    STW r14, r0, X
    STW r14, r1, Y

    IN  r4, 1           ; player 1 chooses the trail colour
    ANDI r4, 7
    ADDI r4, 1
    MOV r5, r1          ; plot
    SHLI r5, 6
    ADD r5, r0
    ADDI r5, FB
    STB r5, r4
    HALT
    JMP frame
)asm";
}  // namespace

int main() {
  using namespace rtct;

  // 1. Assemble.
  auto assembled = emu::assemble(kDemoRom, "trails");
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly failed:\n%s", assembled.error_text().c_str());
    return 1;
  }
  std::printf("assembled '%s': %zu bytes, checksum %016llx\n", assembled.rom.title.c_str(),
              assembled.rom.image.size(),
              static_cast<unsigned long long>(assembled.rom.checksum()));
  std::printf("\nfirst instructions:\n%s\n",
              emu::disassemble({assembled.rom.image.data(), 6 * emu::kInstrBytes}).c_str());

  // 2. Run 300 frames with deterministic synthetic players.
  emu::ArcadeMachine machine(assembled.rom);
  core::MasherInput p0(11), p1(22);
  std::vector<InputWord> script;
  for (FrameNo f = 0; f < 300; ++f) {
    script.push_back(make_input(p0.input_for_frame(f), p1.input_for_frame(f)));
  }

  for (int f = 0; f < 150; ++f) machine.step_frame(script[f]);
  const auto midpoint = machine.save_state();
  const auto hash_mid = machine.state_hash();
  for (int f = 150; f < 300; ++f) machine.step_frame(script[f]);
  const auto hash_end = machine.state_hash();

  std::printf("screen after 300 frames:\n%s",
              emu::render_ascii(machine.framebuffer(), emu::kFbCols, emu::kFbRows).c_str());

  // 3. Rewind to the snapshot and replay the same tail.
  if (!machine.load_state(midpoint)) {
    std::fprintf(stderr, "snapshot failed to load\n");
    return 1;
  }
  std::printf("\nrewound to frame 150 (hash %016llx matches: %s)\n",
              static_cast<unsigned long long>(hash_mid),
              machine.state_hash() == hash_mid ? "yes" : "NO");
  for (int f = 150; f < 300; ++f) machine.step_frame(script[f]);
  std::printf("replayed to frame 300: hash %s the original run\n",
              machine.state_hash() == hash_end ? "matches" : "DOES NOT match");

  // 4. A fresh replica fed the same inputs converges too.
  emu::ArcadeMachine replica(assembled.rom);
  for (int f = 0; f < 300; ++f) replica.step_frame(script[f]);
  std::printf("independent replica: hash %s\n",
              replica.state_hash() == hash_end ? "matches" : "DOES NOT match");

  return machine.state_hash() == hash_end && replica.state_hash() == hash_end ? 0 : 1;
}
