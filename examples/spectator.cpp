// Observers and late joiners — the extension the ICDCS paper defers to its
// journal version (§6: "how to support multiple players and observers, how
// to accommodate late comers").
//
// Two sites play invaders; partway through, three observers join at
// different times over their own (lossy) links. Each observer receives a
// machine snapshot plus the live input feed and replays the session on its
// own replica; at the end the example proves every replayed frame was
// bit-identical to the players' game.
//
//   ./build/examples/spectator [game] [frames]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/emu/machine.h"
#include "src/emu/render_text.h"
#include "src/testbed/experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;

  testbed::ExperimentConfig cfg;
  cfg.game = argc > 1 ? argv[1] : "invaders";
  cfg.frames = argc > 2 ? std::atoi(argv[2]) : 900;
  cfg.set_rtt(milliseconds(50));
  cfg.observers = 3;
  cfg.observer_join_delay = seconds(3);  // all request from t=3s; joins skew
  cfg.observer_net.loss = 0.05;          // a flaky spectator path
  cfg.observer_net.jitter = milliseconds(4);

  std::printf("two players share '%s' for %d frames; 3 observers join mid-game over a "
              "5%%-loss path...\n\n",
              cfg.game.c_str(), cfg.frames);
  const auto r = testbed::run_experiment(cfg);
  if (!r.converged()) {
    std::fprintf(stderr, "session failed: %s\n", r.site[0].failure_reason.c_str());
    return 1;
  }

  std::printf("players: %lld frames, divergence: %s\n",
              static_cast<long long>(r.site[0].frames_completed),
              r.first_divergence() == -1 ? "none" : "DIVERGED");
  for (std::size_t i = 0; i < r.observers.size(); ++i) {
    const auto& obs = r.observers[i];
    std::printf("observer %zu: joined via snapshot at frame %lld, replayed through frame %lld "
                "(%zu frames verified)\n",
                i, static_cast<long long>(obs.snapshot_frame),
                static_cast<long long>(obs.last_applied), obs.hashes.size());
  }
  std::printf("all observer frames bit-identical to the players' session: %s\n",
              r.observers_consistent() ? "yes" : "NO");

  std::printf("\nfinal screen, as every replica rendered it:\n%s",
              emu::render_ascii(r.site[0].final_framebuffer, emu::kFbCols, emu::kFbRows).c_str());
  return r.observers_consistent() ? 0 : 1;
}
