// AC16: the instruction-set architecture of rtct's from-scratch arcade VM.
//
// The paper builds on MAME emulating proprietary arcade hardware; we cannot
// ship that, so rtct_emu defines a tiny deterministic arcade machine that
// honours the same contract the sync layer relies on (§3: "the original
// game VM is deterministic... with the same initial state and same input
// sequence, the VM always produces the same sequence of output states").
//
// AC16 at a glance:
//   * 16 general 16-bit registers r0..r15 (r15 doubles as the stack pointer
//     by convention), a 16-bit PC, and Z/N/C flags.
//   * byte-addressable 64 KiB space; fixed 4-byte instructions
//     [opcode][a][b][c], imm16 = b | c<<8.
//   * IN/OUT ports for controller input, the frame counter and a tone
//     channel; HALT yields the CPU until the next video frame.
// No floating point, no host-time access, no uninitialized state: every
// source of nondeterminism the paper warns about (§5) is excluded by
// construction.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rtct::emu {

inline constexpr int kNumRegs = 16;
inline constexpr int kSpReg = 15;  ///< stack-pointer convention
inline constexpr std::size_t kInstrBytes = 4;

// Memory-map facts every interpreter backend needs (the full map lives in
// machine.h): ROM occupies 0x0000–0x7FFF and is immutable once loaded —
// CPU stores below kRamBase fault — which is what makes the predecoded
// instruction cache sound.
inline constexpr std::uint16_t kRamBase = 0x8000;

/// Dirty-page tracking granularity for the incremental (version-2) state
/// digest: the mutable 32 KiB is covered by 128 pages of 256 bytes. The
/// fast interpreter's inlined write barrier maintains the same bitmap
/// ArcadeMachine::write8 does, so it needs the geometry here.
inline constexpr std::size_t kPageSize = 256;
inline constexpr unsigned kPageShift = 8;
inline constexpr std::size_t kNumMutablePages = (0x10000 - kRamBase) / kPageSize;

enum class Op : std::uint8_t {
  kNop = 0x00,
  kHalt = 0x01,  ///< end of frame: CPU sleeps until the next vblank
  kBrk = 0x02,   ///< programming-error trap; faults the machine

  kLdi = 0x10,  ///< rd = imm16
  kMov = 0x11,  ///< rd = rs
  // Memory ops encode two registers plus an 8-bit offset in byte c.
  kLdb = 0x12,  ///< rd = zx(mem8[rs + off8])   (a=rd, b=rs, c=off8)
  kLdw = 0x13,  ///< rd = mem16[rs + off8]
  kStb = 0x14,  ///< mem8[ra + off8] = low8(rb) (a=ra, b=rb, c=off8)
  kStw = 0x15,  ///< mem16[ra + off8] = rb

  kAdd = 0x20,  ///< rd += rs (C = carry out)
  kSub = 0x21,  ///< rd -= rs (C = borrow)
  kAnd = 0x22,
  kOr = 0x23,
  kXor = 0x24,
  kShl = 0x25,  ///< rd <<= (rs & 15), C = last bit shifted out
  kShr = 0x26,  ///< logical right shift
  kMul = 0x27,  ///< rd = low16(rd * rs)
  kNeg = 0x28,  ///< rd = -rd
  kNot = 0x29,  ///< rd = ~rd

  kAddi = 0x30,  ///< rd += imm16
  kSubi = 0x31,
  kAndi = 0x32,
  kOri = 0x33,
  kXori = 0x34,
  kShli = 0x35,
  kShri = 0x36,
  kMuli = 0x37,
  kCmp = 0x38,   ///< flags from rd - rs
  kCmpi = 0x39,  ///< flags from rd - imm16

  kJmp = 0x40,  ///< pc = imm16
  kJz = 0x41,   ///< if Z
  kJnz = 0x42,  ///< if !Z
  kJc = 0x43,   ///< if C (unsigned <  after CMP)
  kJnc = 0x44,  ///< if !C (unsigned >= after CMP)
  kJn = 0x45,   ///< if N (bit15 of result)
  kJnn = 0x46,  ///< if !N

  kCall = 0x48,  ///< push pc_next, pc = imm16
  kRet = 0x49,   ///< pc = pop
  kPush = 0x4A,  ///< sp -= 2; mem16[sp] = rs
  kPop = 0x4B,   ///< rd = mem16[sp]; sp += 2

  kIn = 0x50,   ///< rd = port[imm8]  (a=rd, b=port)
  kOut = 0x51,  ///< port[imm8] = rs  (a=port, b=rs)
};

/// IO port numbers for kIn / kOut.
enum class Port : std::uint8_t {
  kPlayer0 = 0,    ///< IN: player 0 controller byte (latched at frame start)
  kPlayer1 = 1,    ///< IN: player 1 controller byte
  kFrameLo = 2,    ///< IN: frame counter low 16 bits
  kFrameHi = 3,    ///< IN: frame counter bits 16..31
  kTone = 4,       ///< OUT: tone-channel frequency (0 = silence)
  kDebug = 5,      ///< OUT: appended to the machine's debug log (tests)
};

/// A decoded instruction.
struct Instr {
  Op op = Op::kNop;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint8_t c = 0;

  [[nodiscard]] std::uint16_t imm() const {
    return static_cast<std::uint16_t>(b | (c << 8));
  }
};

/// Encodes into the fixed 4-byte form.
void encode(const Instr& ins, std::uint8_t out[4]);
/// Decodes; never fails structurally (any 4 bytes decode), validity of the
/// opcode is checked at execution time.
Instr decode(const std::uint8_t in[4]);

/// True if the byte names a defined opcode.
bool is_valid_opcode(std::uint8_t op);

/// Cycle cost of an instruction (used for the per-frame budget).
int cycle_cost(Op op);

/// Mnemonic for disassembly/diagnostics; "???" for invalid opcodes.
std::string mnemonic(Op op);

/// Decode-once cache of the immutable ROM region, built at ArcadeMachine
/// construction. ROM writes fault (the region can never change after
/// load), so every byte address whose 4-byte fetch window lies entirely
/// below kRamBase can be decoded ahead of time — the fast interpreter
/// replaces the per-instruction 4x byte fetch + decode() with one indexed
/// load. Addresses in [kLimit, kRamBase) would fetch across the ROM/RAM
/// boundary, and RAM bytes mutate at runtime, so executing there (like
/// executing from RAM itself) falls back to the byte-fetch path.
struct PredecodedRom {
  struct Entry {
    std::uint16_t imm = 0;  ///< b | c<<8, precomputed
    std::uint8_t op = 0;    ///< raw opcode byte
    std::uint8_t a = 0;
    std::uint8_t b = 0;
    std::uint8_t c = 0;
    std::uint8_t valid = 0;  ///< is_valid_opcode(op)
  };

  /// First byte address NOT covered by the cache: the last address whose
  /// whole 4-byte window stays inside ROM is kRamBase - kInstrBytes.
  static constexpr std::uint16_t kLimit =
      static_cast<std::uint16_t>(kRamBase - kInstrBytes + 1);

  /// `rom_image` is the ROM as loaded at 0x0000 (at most kRamBase bytes);
  /// bytes beyond it read as zero, exactly like the machine's memory.
  explicit PredecodedRom(std::span<const std::uint8_t> rom_image);

  std::vector<Entry> entries;  ///< kLimit entries, indexed by byte address
};

}  // namespace rtct::emu
