#include "src/emu/rom_io.h"

#include <cstdio>
#include <cstring>

#include "src/common/bytes.h"
#include "src/common/hash.h"

namespace rtct::emu {

namespace {
constexpr std::uint8_t kMagic[8] = {'R', 'T', 'C', 'T', 'R', 'O', 'M', '1'};
}

std::vector<std::uint8_t> serialize_rom(const Rom& rom) {
  ByteWriter w(rom.image.size() + 64);
  w.bytes(kMagic);
  w.u16(rom.entry);
  w.str(rom.title);
  w.u32(static_cast<std::uint32_t>(rom.image.size()));
  w.bytes(rom.image);
  const std::uint64_t crc = fnv1a64(w.data());
  w.u64(crc);
  return w.take();
}

std::optional<Rom> parse_rom(std::span<const std::uint8_t> data) {
  if (data.size() < 8 + 2 + 4 + 4 + 8) return std::nullopt;
  ByteReader r(data);
  const auto magic = r.bytes(8);
  if (std::memcmp(magic.data(), kMagic, 8) != 0) return std::nullopt;

  Rom rom;
  rom.entry = r.u16();
  rom.title = r.str();
  const std::uint32_t n = r.u32();
  if (n == 0 || n > kRomCapacity) return std::nullopt;
  const auto image = r.bytes(n);
  if (!r.ok() || r.remaining() != 8) return std::nullopt;

  const std::uint64_t expected = fnv1a64(data.subspan(0, data.size() - 8));
  if (r.u64() != expected) return std::nullopt;  // corrupt file

  rom.image.assign(image.begin(), image.end());
  return rom;
}

bool save_rom_file(const Rom& rom, const std::string& path) {
  const auto bytes = serialize_rom(rom);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

std::optional<Rom> load_rom_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> data;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.insert(data.end(), buf, buf + n);
  std::fclose(f);
  return parse_rom(data);
}

}  // namespace rtct::emu
