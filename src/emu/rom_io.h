// ROM container file format (.rom) — lets the assembler CLI, the runner
// and the netplay tool exchange game images as files, the way players of
// the paper's system exchange "the same game image" (§2).
//
// Layout (little-endian):
//   magic   "RTCTROM1"           8 bytes
//   entry   u16
//   title   u32 length + bytes
//   image   u32 length + bytes
//   crc     u64 fnv-1a of everything above
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/emu/rom.h"

namespace rtct::emu {

/// Serializes a ROM into the container format.
std::vector<std::uint8_t> serialize_rom(const Rom& rom);

/// Parses a container; nullopt on bad magic, truncation, CRC mismatch or
/// an image exceeding kRomCapacity.
std::optional<Rom> parse_rom(std::span<const std::uint8_t> data);

/// File convenience wrappers. Return false / nullopt on IO failure.
bool save_rom_file(const Rom& rom, const std::string& path);
std::optional<Rom> load_rom_file(const std::string& path);

}  // namespace rtct::emu
