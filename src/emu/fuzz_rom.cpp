#include "src/emu/fuzz_rom.h"

#include <vector>

#include "src/common/random.h"
#include "src/emu/isa.h"

namespace rtct::emu {

namespace {

constexpr Op kAluReg[] = {Op::kAdd, Op::kSub, Op::kAnd, Op::kOr,  Op::kXor,
                          Op::kShl, Op::kShr, Op::kMul, Op::kNeg, Op::kNot,
                          Op::kCmp, Op::kMov};
constexpr Op kAluImm[] = {Op::kAddi, Op::kSubi, Op::kAndi, Op::kOri, Op::kXori,
                          Op::kShli, Op::kShri, Op::kMuli, Op::kCmpi};
constexpr Op kMem[] = {Op::kLdb, Op::kLdw, Op::kStb, Op::kStw};
constexpr Op kJump[] = {Op::kJmp, Op::kJz, Op::kJnz, Op::kJc,
                        Op::kJnc, Op::kJn, Op::kJnn};

template <typename T, std::size_t N>
T pick(Rng& rng, const T (&arr)[N]) {
  return arr[static_cast<std::size_t>(rng.uniform(0, N - 1))];
}

}  // namespace

Rom make_fuzz_rom(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xC0FFEE);
  std::vector<std::uint8_t> image;

  auto emit_raw = [&image](std::uint8_t b0, std::uint8_t b1, std::uint8_t b2,
                           std::uint8_t b3) {
    image.push_back(b0);
    image.push_back(b1);
    image.push_back(b2);
    image.push_back(b3);
  };
  auto emit = [&emit_raw](Op op, std::uint8_t a, std::uint8_t b, std::uint8_t c) {
    std::uint8_t raw[4];
    encode({op, a, b, c}, raw);
    emit_raw(raw[0], raw[1], raw[2], raw[3]);
  };
  auto emit_imm = [&emit](Op op, std::uint8_t a, std::uint16_t imm) {
    emit(op, a, static_cast<std::uint8_t>(imm & 0xFF),
         static_cast<std::uint8_t>(imm >> 8));
  };
  auto reg = [&rng] { return static_cast<std::uint8_t>(rng.uniform(0, 15)); };
  auto low_reg = [&rng] { return static_cast<std::uint8_t>(rng.uniform(0, 7)); };
  auto byte = [&rng] { return static_cast<std::uint8_t>(rng.uniform(0, 255)); };

  const int body = static_cast<int>(rng.uniform(48, 256));
  const std::size_t total_bytes = static_cast<std::size_t>(8 + body + 2) * kInstrBytes;

  // Prelude: point the low registers at RAM so memory traffic mostly hits
  // real pages (an 8-bit offset then still reaches ROM via wraparound or
  // a later register clobber — the interesting cases stay reachable).
  for (std::uint8_t r = 0; r < 8; ++r) {
    const auto ram = static_cast<std::uint16_t>(
        kRamBase | (rng.next_u64() & 0x7FF0));
    emit_imm(Op::kLdi, r, ram);
  }

  // A jump target: usually instruction-aligned inside the program (loops,
  // skips), sometimes a raw 16-bit address — mid-instruction, the
  // zero-filled ROM tail, the predecode boundary, or RAM.
  auto jump_target = [&]() -> std::uint16_t {
    if (rng.bernoulli(0.10)) return static_cast<std::uint16_t>(rng.next_u64());
    const auto slot = static_cast<std::uint64_t>(
        rng.uniform(0, static_cast<std::int64_t>(total_bytes / kInstrBytes) - 1));
    return static_cast<std::uint16_t>(slot * kInstrBytes);
  };

  for (int i = 0; i < body; ++i) {
    const std::int64_t roll = rng.uniform(0, 99);
    if (roll < 25) {
      emit(pick(rng, kAluReg), reg(), reg(), byte());
    } else if (roll < 45) {
      emit_imm(pick(rng, kAluImm), reg(), static_cast<std::uint16_t>(rng.next_u64()));
    } else if (roll < 55) {
      emit_imm(Op::kLdi, reg(), static_cast<std::uint16_t>(rng.next_u64()));
    } else if (roll < 67) {
      // Memory op off a (mostly RAM-pointing) low base register. For
      // stores `a` is the address register, for loads it is `b`.
      const Op op = pick(rng, kMem);
      const bool store = op == Op::kStb || op == Op::kStw;
      emit(op, store ? low_reg() : reg(), store ? reg() : low_reg(), byte());
    } else if (roll < 77) {
      emit_imm(pick(rng, kJump), byte(), jump_target());
    } else if (roll < 82) {
      emit(rng.bernoulli(0.5) ? Op::kPush : Op::kPop, reg(), byte(), byte());
    } else if (roll < 85) {
      emit_imm(Op::kCall, byte(), jump_target());
    } else if (roll < 87) {
      emit(Op::kRet, byte(), byte(), byte());
    } else if (roll < 91) {
      const auto port = static_cast<std::uint8_t>(rng.uniform(0, 7));
      if (rng.bernoulli(0.5)) {
        emit(Op::kIn, reg(), port, byte());
      } else {
        emit(Op::kOut, port, reg(), byte());
      }
    } else if (roll < 95) {
      emit(Op::kHalt, byte(), byte(), byte());
    } else if (roll < 97) {
      emit_raw(byte(), byte(), byte(), byte());  // may be an invalid opcode
    } else {
      emit(Op::kNop, byte(), byte(), byte());
    }
  }

  // Tail: end the frame and loop, so tame seeds keep producing frames.
  emit(Op::kHalt, 0, 0, 0);
  emit_imm(Op::kJmp, 0, 0);

  Rom rom;
  rom.title = "fuzz-" + std::to_string(seed);
  rom.image = std::move(image);
  rom.entry = 0;
  return rom;
}

}  // namespace rtct::emu
