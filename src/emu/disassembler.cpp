#include "src/emu/disassembler.h"

#include <cstdio>
#include <sstream>

namespace rtct::emu {

namespace {
std::string hex16(std::uint16_t v) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04X", v);
  return buf;
}
}  // namespace

std::string disassemble_instr(const Instr& ins) {
  const std::string mn = mnemonic(ins.op);
  std::ostringstream os;
  os << mn;
  const int rd = ins.a & 0xF;
  const int rs = ins.b & 0xF;
  switch (ins.op) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kBrk:
    case Op::kRet:
      break;
    case Op::kNeg:
    case Op::kNot:
    case Op::kPush:
    case Op::kPop:
      os << " r" << rd;
      break;
    case Op::kMov:
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kMul:
    case Op::kCmp:
      os << " r" << rd << ", r" << rs;
      break;
    case Op::kLdi:
    case Op::kAddi:
    case Op::kSubi:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kShli:
    case Op::kShri:
    case Op::kMuli:
    case Op::kCmpi:
      os << " r" << rd << ", " << hex16(ins.imm());
      break;
    case Op::kLdb:
    case Op::kLdw:
    case Op::kStb:
    case Op::kStw:
      os << " r" << rd << ", r" << rs << ", " << static_cast<int>(ins.c);
      break;
    case Op::kJmp:
    case Op::kJz:
    case Op::kJnz:
    case Op::kJc:
    case Op::kJnc:
    case Op::kJn:
    case Op::kJnn:
    case Op::kCall:
      os << " " << hex16(ins.imm());
      break;
    case Op::kIn:
      os << " r" << rd << ", " << static_cast<int>(ins.b);
      break;
    case Op::kOut:
      os << " " << static_cast<int>(ins.a) << ", r" << rs;
      break;
  }
  return os.str();
}

std::string disassemble(std::span<const std::uint8_t> code, std::uint16_t base) {
  std::ostringstream os;
  for (std::size_t i = 0; i + kInstrBytes <= code.size(); i += kInstrBytes) {
    const Instr ins = decode(code.data() + i);
    os << hex16(static_cast<std::uint16_t>(base + i)) << "  ";
    if (is_valid_opcode(code[i])) {
      os << disassemble_instr(ins);
    } else {
      os << ".byte " << static_cast<int>(code[i]) << ", " << static_cast<int>(code[i + 1])
         << ", " << static_cast<int>(code[i + 2]) << ", " << static_cast<int>(code[i + 3]);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rtct::emu
