#include "src/emu/isa.h"

namespace rtct::emu {

void encode(const Instr& ins, std::uint8_t out[4]) {
  out[0] = static_cast<std::uint8_t>(ins.op);
  out[1] = ins.a;
  out[2] = ins.b;
  out[3] = ins.c;
}

Instr decode(const std::uint8_t in[4]) {
  Instr ins;
  ins.op = static_cast<Op>(in[0]);
  ins.a = in[1];
  ins.b = in[2];
  ins.c = in[3];
  return ins;
}

bool is_valid_opcode(std::uint8_t op) {
  switch (static_cast<Op>(op)) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kBrk:
    case Op::kLdi:
    case Op::kMov:
    case Op::kLdb:
    case Op::kLdw:
    case Op::kStb:
    case Op::kStw:
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kMul:
    case Op::kNeg:
    case Op::kNot:
    case Op::kAddi:
    case Op::kSubi:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kShli:
    case Op::kShri:
    case Op::kMuli:
    case Op::kCmp:
    case Op::kCmpi:
    case Op::kJmp:
    case Op::kJz:
    case Op::kJnz:
    case Op::kJc:
    case Op::kJnc:
    case Op::kJn:
    case Op::kJnn:
    case Op::kCall:
    case Op::kRet:
    case Op::kPush:
    case Op::kPop:
    case Op::kIn:
    case Op::kOut:
      return true;
  }
  return false;
}

int cycle_cost(Op op) {
  switch (op) {
    case Op::kMul:
    case Op::kMuli:
      return 4;
    case Op::kLdb:
    case Op::kLdw:
    case Op::kStb:
    case Op::kStw:
    case Op::kPush:
    case Op::kPop:
      return 2;
    case Op::kCall:
    case Op::kRet:
      return 3;
    default:
      return 1;
  }
}

PredecodedRom::PredecodedRom(std::span<const std::uint8_t> rom_image) {
  entries.resize(kLimit);
  auto at = [&rom_image](std::size_t addr) -> std::uint8_t {
    return addr < rom_image.size() ? rom_image[addr] : 0;
  };
  for (std::size_t addr = 0; addr < kLimit; ++addr) {
    Entry& e = entries[addr];
    e.op = at(addr);
    e.a = at(addr + 1);
    e.b = at(addr + 2);
    e.c = at(addr + 3);
    e.imm = static_cast<std::uint16_t>(e.b | (e.c << 8));
    e.valid = is_valid_opcode(e.op) ? 1 : 0;
  }
}

std::string mnemonic(Op op) {
  switch (op) {
    case Op::kNop: return "NOP";
    case Op::kHalt: return "HALT";
    case Op::kBrk: return "BRK";
    case Op::kLdi: return "LDI";
    case Op::kMov: return "MOV";
    case Op::kLdb: return "LDB";
    case Op::kLdw: return "LDW";
    case Op::kStb: return "STB";
    case Op::kStw: return "STW";
    case Op::kAdd: return "ADD";
    case Op::kSub: return "SUB";
    case Op::kAnd: return "AND";
    case Op::kOr: return "OR";
    case Op::kXor: return "XOR";
    case Op::kShl: return "SHL";
    case Op::kShr: return "SHR";
    case Op::kMul: return "MUL";
    case Op::kNeg: return "NEG";
    case Op::kNot: return "NOT";
    case Op::kAddi: return "ADDI";
    case Op::kSubi: return "SUBI";
    case Op::kAndi: return "ANDI";
    case Op::kOri: return "ORI";
    case Op::kXori: return "XORI";
    case Op::kShli: return "SHLI";
    case Op::kShri: return "SHRI";
    case Op::kMuli: return "MULI";
    case Op::kCmp: return "CMP";
    case Op::kCmpi: return "CMPI";
    case Op::kJmp: return "JMP";
    case Op::kJz: return "JZ";
    case Op::kJnz: return "JNZ";
    case Op::kJc: return "JC";
    case Op::kJnc: return "JNC";
    case Op::kJn: return "JN";
    case Op::kJnn: return "JNN";
    case Op::kCall: return "CALL";
    case Op::kRet: return "RET";
    case Op::kPush: return "PUSH";
    case Op::kPop: return "POP";
    case Op::kIn: return "IN";
    case Op::kOut: return "OUT";
  }
  return "???";
}

}  // namespace rtct::emu
