// ArcadeMachine: the complete emulated console (CPU + memory map + video +
// input latch + tone channel), rtct's stand-in for a MAME-emulated arcade
// board. Implements IDeterministicGame, the only surface the sync layer
// ever touches.
//
// Memory map (byte addresses):
//   0x0000–0x7FFF  ROM (writes fault the machine)
//   0x8000–0x9FFF  general RAM
//   0xA000–0xABFF  framebuffer, 64 cols x 48 rows, 1 byte = palette index
//   0xAC00–0xFFFF  general RAM (stack grows down from 0xFFFE)
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/emu/cpu.h"
#include "src/emu/game.h"
#include "src/emu/rom.h"

namespace rtct::emu {

// kRamBase, kPageSize/kPageShift/kNumMutablePages live in isa.h (both
// interpreter backends need them); the video/stack geometry is here.
inline constexpr std::uint16_t kFbBase = 0xA000;
inline constexpr int kFbCols = 64;
inline constexpr int kFbRows = 48;
inline constexpr std::size_t kFbSize = kFbCols * kFbRows;  // 3072 bytes
inline constexpr std::uint16_t kInitialSp = 0xFFFE;

/// Full-rehash cross-check for the incremental digest. When enabled, every
/// state_digest(2) additionally rehashes all 128 pages from scratch and
/// counts any disagreement with the dirty-page cache — the chaos soak runs
/// with this on and asserts the failure counter stays zero.
void set_state_digest_cross_check(bool on);
[[nodiscard]] bool state_digest_cross_check();
[[nodiscard]] std::uint64_t state_digest_cross_check_failures();
/// Bumps the shared failure counter. Exposed so other cores (agent86)
/// honour the same cross-check switch and report into the same counter.
void note_state_digest_cross_check_failure();

struct MachineConfig {
  /// Per-frame cycle budget; exceeding it faults (a ROM must HALT once per
  /// frame, like real arcade code waiting for vblank).
  int cycles_per_frame = 100000;
  /// Run frames on the original virtual-Bus byte-fetch interpreter instead
  /// of the predecoded fast path. The two backends are bit-identical in
  /// observable state (enforced by emu_differential_test and the chaos
  /// soak); the reference exists as the oracle and for A/B benching. Host
  /// configuration only: not serialized, not hashed.
  bool reference_interpreter = false;
};

class ArcadeMachine final : public IDeterministicGame,
                            public IRenderableGame,
                            private Bus {
 public:
  explicit ArcadeMachine(Rom rom, MachineConfig cfg = {});

  // IDeterministicGame
  void reset() override;
  void step_frame(InputWord input) override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] std::uint64_t state_digest(int version) const override;
  [[nodiscard]] std::vector<std::uint64_t> page_digests() const override;
  [[nodiscard]] std::uint32_t page_digest_base() const override { return kRamBase; }
  [[nodiscard]] std::vector<std::uint8_t> save_state() const override;
  void save_state_into(std::vector<std::uint8_t>& out) const override;
  bool load_state(std::span<const std::uint8_t> data) override;
  [[nodiscard]] FrameNo frame() const override { return frame_; }
  [[nodiscard]] std::uint64_t content_id() const override { return rom_.checksum(); }
  [[nodiscard]] std::string content_name() const override { return "ac16:" + rom_.title; }
  [[nodiscard]] bool faulted() const override { return cpu_.fault() != Fault::kNone; }
  [[nodiscard]] const IRenderableGame* renderable() const override { return this; }

  // IRenderableGame
  [[nodiscard]] int fb_cols() const override { return kFbCols; }
  [[nodiscard]] int fb_rows() const override { return kFbRows; }
  [[nodiscard]] std::span<const std::uint8_t> framebuffer() const override {
    return {mem_.data() + kFbBase, kFbSize};
  }

  // Introspection (rendering, tests, examples).
  [[nodiscard]] std::uint16_t tone() const { return tone_; }
  [[nodiscard]] Fault fault() const { return cpu_.fault(); }
  [[nodiscard]] const Rom& rom() const { return rom_; }
  [[nodiscard]] const Cpu& cpu() const { return cpu_; }
  [[nodiscard]] int last_frame_cycles() const { return last_frame_cycles_; }

  /// Raw memory poke, through the bus (so dirty-page tracking stays
  /// coherent; ROM-region writes are ignored exactly like CPU stores).
  /// For tests and divergence-injection tooling only — a poked replica is
  /// by construction desynced from its peers.
  void poke(std::uint16_t addr, std::uint8_t v) { (void)write8(addr, v); }

  /// Raw memory peek for tests (any address, including ROM).
  [[nodiscard]] std::uint8_t peek(std::uint16_t addr) const { return mem_[addr]; }
  [[nodiscard]] std::uint16_t peek16(std::uint16_t addr) const {
    return static_cast<std::uint16_t>(mem_[addr] |
                                      (mem_[static_cast<std::uint16_t>(addr + 1)] << 8));
  }

  /// Values written to Port::kDebug this frame-run (diagnostic only; not
  /// part of the synchronized state, not hashed, not serialized).
  [[nodiscard]] const std::vector<std::uint16_t>& debug_log() const { return debug_log_; }

 private:
  // Bus
  std::uint8_t read8(std::uint16_t addr) override { return mem_[addr]; }
  bool write8(std::uint16_t addr, std::uint8_t v) override {
    if (addr < kRamBase) return false;  // ROM region
    mem_[addr] = v;
    const auto page = static_cast<std::size_t>(addr - kRamBase) >> kPageShift;
    dirty_[page >> 6] |= 1ull << (page & 63);
    return true;
  }
  std::uint16_t in_port(std::uint8_t port) override;
  void out_port(std::uint8_t port, std::uint16_t v) override;

  static constexpr std::uint8_t kStateVersion = 1;

  void mark_all_pages_dirty() const;
  void refresh_dirty_pages() const;

  Rom rom_;
  /// Decode-once instruction cache of the (immutable) ROM region; never
  /// invalidated because CPU stores below kRamBase fault and load_state
  /// only restores RAM.
  PredecodedRom predecode_;
  MachineConfig cfg_;
  Cpu cpu_;
  std::vector<std::uint8_t> mem_;  ///< full 64 KiB address space
  InputWord input_latch_ = 0;      ///< latched at frame start
  std::uint16_t tone_ = 0;
  FrameNo frame_ = 0;
  int last_frame_cycles_ = 0;
  std::vector<std::uint16_t> debug_log_;

  // Incremental-digest cache: per-page FNV digests of the mutable region
  // plus a dirty bitmap maintained by write8. Both are refreshed lazily
  // inside the (const) digest call, hence mutable.
  mutable std::array<std::uint64_t, kNumMutablePages> page_digest_{};
  mutable std::array<std::uint64_t, kNumMutablePages / 64> dirty_{};
};

}  // namespace rtct::emu
