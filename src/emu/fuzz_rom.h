// Structure-aware random ROM generation for differential interpreter
// testing.
//
// The fast interpreter (predecoded ROM, devirtualized memory, threaded
// dispatch) is only admissible because it is bit-identical to the
// reference interpreter; the bundled games alone exercise a benign subset
// of the ISA, so the differential harness also runs machine-generated
// ROMs biased toward the edges where the two backends could plausibly
// diverge: the ROM/RAM fetch boundary, unaligned jump targets, stores
// that fault on ROM, stack traffic through wild pointers, runaway loops
// hitting the cycle budget, and the occasional invalid opcode. A fuzz ROM
// may fault — faults are part of the observable state being compared, not
// errors.
#pragma once

#include <cstdint>

#include "src/emu/rom.h"

namespace rtct::emu {

/// Deterministic: the same seed always yields the same ROM.
Rom make_fuzz_rom(std::uint64_t seed);

}  // namespace rtct::emu
