// AC16 CPU core: fetch/decode/execute interpreter.
#pragma once

#include <cstdint>

#include "src/emu/isa.h"

namespace rtct::emu {

/// Execution faults. A faulted machine stops making progress; faults are
/// programming errors in the ROM (or a runaway frame), never expected in a
/// correct game, and tests assert their absence.
enum class Fault : std::uint8_t {
  kNone = 0,
  kBadOpcode,
  kRomWrite,
  kBudgetExceeded,  ///< frame did not HALT within the cycle budget
  kBrk,             ///< explicit BRK trap
};

const char* fault_name(Fault f);

/// Name of the compiled-in fast-interpreter dispatch backend:
/// "computed-goto" (RTCT_THREADED_DISPATCH on GCC/Clang) or "switch".
const char* dispatch_backend_name();

/// Memory / IO seen by the CPU. Implemented by ArcadeMachine.
class Bus {
 public:
  virtual ~Bus() = default;
  virtual std::uint8_t read8(std::uint16_t addr) = 0;
  /// Returns false if the address is not writable (ROM) — faults the CPU.
  virtual bool write8(std::uint16_t addr, std::uint8_t v) = 0;
  virtual std::uint16_t in_port(std::uint8_t port) = 0;
  virtual void out_port(std::uint8_t port, std::uint16_t v) = 0;
};

/// Register file + flags + sequencer. Pure integer machine: all arithmetic
/// wraps mod 2^16, so behaviour is identical on every host.
class Cpu {
 public:
  void reset(std::uint16_t entry, std::uint16_t initial_sp);

  /// Resumes execution (after the previous frame's HALT) and runs until the
  /// ROM executes HALT again, a fault occurs, or `cycle_budget` cycles
  /// elapse (which raises kBudgetExceeded). Returns cycles consumed.
  ///
  /// This is the REFERENCE interpreter: every access goes through the
  /// virtual Bus and every instruction is fetched byte-by-byte and
  /// decoded. It is kept as the oracle the fast path is differentially
  /// tested against (emu_differential_test), and as the backend for
  /// tests/tools that substitute their own Bus.
  int run_frame(Bus& bus, int cycle_budget);

  /// Fast-path variant of run_frame with bit-identical observable
  /// behaviour (state, faults, cycle accounting — enforced by the
  /// differential harness, not assumed):
  ///   * instructions at pc < PredecodedRom::kLimit come from the
  ///     predecoded ROM cache (one indexed load instead of 4 virtual
  ///     fetches + decode); pc at/above the limit (execute-from-RAM, the
  ///     ROM/RAM boundary, wraparound) takes the byte-fetch path;
  ///   * memory runs through `mem` (the 64 KiB space) with an inlined
  ///     write barrier that preserves the ROM-write fault and the
  ///     dirty-page bitmap of ArcadeMachine::write8 exactly;
  ///   * `ports` is only consulted for IN/OUT (cold);
  ///   * dispatch is computed-goto on GCC/Clang when built with
  ///     RTCT_THREADED_DISPATCH (the default), else a switch.
  int run_frame_fast(std::uint8_t* mem, std::uint64_t* dirty_bitmap, Bus& ports,
                     const PredecodedRom& rom, int cycle_budget);

  [[nodiscard]] Fault fault() const { return fault_; }
  [[nodiscard]] std::uint16_t pc() const { return pc_; }
  [[nodiscard]] std::uint16_t reg(int i) const { return regs_[i]; }
  void set_reg(int i, std::uint16_t v) { regs_[i] = v; }
  [[nodiscard]] bool flag_z() const { return z_; }
  [[nodiscard]] bool flag_n() const { return n_; }
  [[nodiscard]] bool flag_c() const { return c_; }

  // State serialization hooks (ArcadeMachine save/load/hash).
  template <typename Sink>
  void visit_state(Sink&& sink) const {
    for (auto r : regs_) sink.u16(r);
    sink.u16(pc_);
    sink.u8(static_cast<std::uint8_t>((z_ ? 1 : 0) | (n_ ? 2 : 0) | (c_ ? 4 : 0)));
    sink.u8(static_cast<std::uint8_t>(fault_));
  }
  struct RawState {
    std::uint16_t regs[kNumRegs];
    std::uint16_t pc;
    std::uint8_t flags;
    std::uint8_t fault;
  };
  [[nodiscard]] RawState raw_state() const;
  void restore(const RawState& s);

 private:
  void exec(Bus& bus, const Instr& ins);
  void set_zn(std::uint16_t v) {
    z_ = v == 0;
    n_ = (v & 0x8000) != 0;
  }
  std::uint16_t read16(Bus& bus, std::uint16_t addr) {
    const std::uint16_t lo = bus.read8(addr);
    const std::uint16_t hi = bus.read8(static_cast<std::uint16_t>(addr + 1));
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  bool write16(Bus& bus, std::uint16_t addr, std::uint16_t v) {
    return bus.write8(addr, static_cast<std::uint8_t>(v & 0xFF)) &&
           bus.write8(static_cast<std::uint16_t>(addr + 1), static_cast<std::uint8_t>(v >> 8));
  }
  void push16(Bus& bus, std::uint16_t v) {
    regs_[kSpReg] = static_cast<std::uint16_t>(regs_[kSpReg] - 2);
    if (!write16(bus, regs_[kSpReg], v)) fault_ = Fault::kRomWrite;
  }
  std::uint16_t pop16(Bus& bus) {
    const std::uint16_t v = read16(bus, regs_[kSpReg]);
    regs_[kSpReg] = static_cast<std::uint16_t>(regs_[kSpReg] + 2);
    return v;
  }

  std::uint16_t regs_[kNumRegs] = {};
  std::uint16_t pc_ = 0;
  bool z_ = false, n_ = false, c_ = false;
  bool halted_ = false;
  Fault fault_ = Fault::kNone;
};

}  // namespace rtct::emu
