#include "src/emu/cpu.h"

namespace rtct::emu {

const char* fault_name(Fault f) {
  switch (f) {
    case Fault::kNone: return "none";
    case Fault::kBadOpcode: return "bad-opcode";
    case Fault::kRomWrite: return "rom-write";
    case Fault::kBudgetExceeded: return "budget-exceeded";
    case Fault::kBrk: return "brk";
  }
  return "?";
}

void Cpu::reset(std::uint16_t entry, std::uint16_t initial_sp) {
  for (auto& r : regs_) r = 0;
  regs_[kSpReg] = initial_sp;
  pc_ = entry;
  z_ = n_ = c_ = false;
  halted_ = false;
  fault_ = Fault::kNone;
}

Cpu::RawState Cpu::raw_state() const {
  RawState s{};
  for (int i = 0; i < kNumRegs; ++i) s.regs[i] = regs_[i];
  s.pc = pc_;
  s.flags = static_cast<std::uint8_t>((z_ ? 1 : 0) | (n_ ? 2 : 0) | (c_ ? 4 : 0));
  s.fault = static_cast<std::uint8_t>(fault_);
  return s;
}

void Cpu::restore(const RawState& s) {
  for (int i = 0; i < kNumRegs; ++i) regs_[i] = s.regs[i];
  pc_ = s.pc;
  z_ = (s.flags & 1) != 0;
  n_ = (s.flags & 2) != 0;
  c_ = (s.flags & 4) != 0;
  fault_ = static_cast<Fault>(s.fault);
  halted_ = false;
}

int Cpu::run_frame(Bus& bus, int cycle_budget) {
  if (fault_ != Fault::kNone) return 0;
  halted_ = false;
  int used = 0;
  while (!halted_ && fault_ == Fault::kNone) {
    std::uint8_t raw[4];
    raw[0] = bus.read8(pc_);
    raw[1] = bus.read8(static_cast<std::uint16_t>(pc_ + 1));
    raw[2] = bus.read8(static_cast<std::uint16_t>(pc_ + 2));
    raw[3] = bus.read8(static_cast<std::uint16_t>(pc_ + 3));
    if (!is_valid_opcode(raw[0])) {
      fault_ = Fault::kBadOpcode;
      break;
    }
    const Instr ins = decode(raw);
    pc_ = static_cast<std::uint16_t>(pc_ + kInstrBytes);
    exec(bus, ins);
    used += cycle_cost(ins.op);
    if (used > cycle_budget) {
      fault_ = Fault::kBudgetExceeded;
      break;
    }
  }
  return used;
}

void Cpu::exec(Bus& bus, const Instr& ins) {
  auto& rd = regs_[ins.a & 0xF];
  const std::uint16_t rs_val = regs_[ins.b & 0xF];
  const std::uint16_t imm = ins.imm();

  switch (ins.op) {
    case Op::kNop:
      break;
    case Op::kHalt:
      halted_ = true;
      break;
    case Op::kBrk:
      fault_ = Fault::kBrk;
      break;

    case Op::kLdi:
      rd = imm;
      break;
    case Op::kMov:
      rd = rs_val;
      set_zn(rd);
      break;
    case Op::kLdb:
      rd = bus.read8(static_cast<std::uint16_t>(rs_val + ins.c));
      set_zn(rd);
      break;
    case Op::kLdw:
      rd = read16(bus, static_cast<std::uint16_t>(rs_val + ins.c));
      set_zn(rd);
      break;
    case Op::kStb:
      if (!bus.write8(static_cast<std::uint16_t>(rd + ins.c),
                      static_cast<std::uint8_t>(rs_val & 0xFF))) {
        fault_ = Fault::kRomWrite;
      }
      break;
    case Op::kStw:
      if (!write16(bus, static_cast<std::uint16_t>(rd + ins.c), rs_val)) {
        fault_ = Fault::kRomWrite;
      }
      break;

    case Op::kAdd:
    case Op::kAddi: {
      const std::uint16_t operand = ins.op == Op::kAdd ? rs_val : imm;
      const std::uint32_t sum = static_cast<std::uint32_t>(rd) + operand;
      c_ = sum > 0xFFFF;
      rd = static_cast<std::uint16_t>(sum);
      set_zn(rd);
      break;
    }
    case Op::kSub:
    case Op::kSubi: {
      const std::uint16_t operand = ins.op == Op::kSub ? rs_val : imm;
      c_ = rd < operand;  // borrow
      rd = static_cast<std::uint16_t>(rd - operand);
      set_zn(rd);
      break;
    }
    case Op::kAnd:
    case Op::kAndi:
      rd = static_cast<std::uint16_t>(rd & (ins.op == Op::kAnd ? rs_val : imm));
      set_zn(rd);
      break;
    case Op::kOr:
    case Op::kOri:
      rd = static_cast<std::uint16_t>(rd | (ins.op == Op::kOr ? rs_val : imm));
      set_zn(rd);
      break;
    case Op::kXor:
    case Op::kXori:
      rd = static_cast<std::uint16_t>(rd ^ (ins.op == Op::kXor ? rs_val : imm));
      set_zn(rd);
      break;
    case Op::kShl:
    case Op::kShli: {
      const int s = (ins.op == Op::kShl ? rs_val : imm) & 15;
      if (s > 0) {
        c_ = ((rd >> (16 - s)) & 1) != 0;
        rd = static_cast<std::uint16_t>(rd << s);
      }
      set_zn(rd);
      break;
    }
    case Op::kShr:
    case Op::kShri: {
      const int s = (ins.op == Op::kShr ? rs_val : imm) & 15;
      if (s > 0) {
        c_ = ((rd >> (s - 1)) & 1) != 0;
        rd = static_cast<std::uint16_t>(rd >> s);
      }
      set_zn(rd);
      break;
    }
    case Op::kMul:
    case Op::kMuli:
      rd = static_cast<std::uint16_t>(rd * (ins.op == Op::kMul ? rs_val : imm));
      set_zn(rd);
      break;
    case Op::kNeg:
      rd = static_cast<std::uint16_t>(-rd);
      set_zn(rd);
      break;
    case Op::kNot:
      rd = static_cast<std::uint16_t>(~rd);
      set_zn(rd);
      break;

    case Op::kCmp:
    case Op::kCmpi: {
      const std::uint16_t operand = ins.op == Op::kCmp ? rs_val : imm;
      c_ = rd < operand;
      set_zn(static_cast<std::uint16_t>(rd - operand));
      break;
    }

    case Op::kJmp:
      pc_ = imm;
      break;
    case Op::kJz:
      if (z_) pc_ = imm;
      break;
    case Op::kJnz:
      if (!z_) pc_ = imm;
      break;
    case Op::kJc:
      if (c_) pc_ = imm;
      break;
    case Op::kJnc:
      if (!c_) pc_ = imm;
      break;
    case Op::kJn:
      if (n_) pc_ = imm;
      break;
    case Op::kJnn:
      if (!n_) pc_ = imm;
      break;

    case Op::kCall:
      push16(bus, pc_);
      pc_ = imm;
      break;
    case Op::kRet:
      pc_ = pop16(bus);
      break;
    case Op::kPush:
      push16(bus, regs_[ins.a & 0xF]);
      break;
    case Op::kPop:
      rd = pop16(bus);
      break;

    case Op::kIn:
      rd = bus.in_port(ins.b);
      set_zn(rd);
      break;
    case Op::kOut:
      bus.out_port(ins.a, rs_val);
      break;
  }
}

}  // namespace rtct::emu
