#include "src/emu/cpu.h"

// Threaded (computed-goto) dispatch is a GNU extension; CMake defines
// RTCT_THREADED_DISPATCH (option of the same name, default ON) and the
// portable switch backend is the fallback everywhere else.
#if defined(RTCT_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define RTCT_DISPATCH_GOTO 1
#else
#define RTCT_DISPATCH_GOTO 0
#endif

namespace rtct::emu {

const char* dispatch_backend_name() {
#if RTCT_DISPATCH_GOTO
  return "computed-goto";
#else
  return "switch";
#endif
}

const char* fault_name(Fault f) {
  switch (f) {
    case Fault::kNone: return "none";
    case Fault::kBadOpcode: return "bad-opcode";
    case Fault::kRomWrite: return "rom-write";
    case Fault::kBudgetExceeded: return "budget-exceeded";
    case Fault::kBrk: return "brk";
  }
  return "?";
}

void Cpu::reset(std::uint16_t entry, std::uint16_t initial_sp) {
  for (auto& r : regs_) r = 0;
  regs_[kSpReg] = initial_sp;
  pc_ = entry;
  z_ = n_ = c_ = false;
  halted_ = false;
  fault_ = Fault::kNone;
}

Cpu::RawState Cpu::raw_state() const {
  RawState s{};
  for (int i = 0; i < kNumRegs; ++i) s.regs[i] = regs_[i];
  s.pc = pc_;
  s.flags = static_cast<std::uint8_t>((z_ ? 1 : 0) | (n_ ? 2 : 0) | (c_ ? 4 : 0));
  s.fault = static_cast<std::uint8_t>(fault_);
  return s;
}

void Cpu::restore(const RawState& s) {
  for (int i = 0; i < kNumRegs; ++i) regs_[i] = s.regs[i];
  pc_ = s.pc;
  z_ = (s.flags & 1) != 0;
  n_ = (s.flags & 2) != 0;
  c_ = (s.flags & 4) != 0;
  fault_ = static_cast<Fault>(s.fault);
  halted_ = false;
}

int Cpu::run_frame(Bus& bus, int cycle_budget) {
  if (fault_ != Fault::kNone) return 0;
  halted_ = false;
  int used = 0;
  while (!halted_ && fault_ == Fault::kNone) {
    std::uint8_t raw[4];
    raw[0] = bus.read8(pc_);
    raw[1] = bus.read8(static_cast<std::uint16_t>(pc_ + 1));
    raw[2] = bus.read8(static_cast<std::uint16_t>(pc_ + 2));
    raw[3] = bus.read8(static_cast<std::uint16_t>(pc_ + 3));
    if (!is_valid_opcode(raw[0])) {
      fault_ = Fault::kBadOpcode;
      break;
    }
    const Instr ins = decode(raw);
    pc_ = static_cast<std::uint16_t>(pc_ + kInstrBytes);
    exec(bus, ins);
    used += cycle_cost(ins.op);
    if (used > cycle_budget) {
      fault_ = Fault::kBudgetExceeded;
      break;
    }
  }
  return used;
}

// The fast interpreter. Same observable semantics as run_frame/exec above,
// instruction for instruction — the reference implementation is the spec,
// and emu_differential_test holds the two to per-frame digest equality.
// What changes is purely mechanical cost:
//   * fetch: one load from the PredecodedRom entry table while pc is inside
//     the cacheable ROM window; the byte path (identical to run_frame's)
//     covers execute-from-RAM, the ROM/RAM boundary and 16-bit wraparound;
//   * memory: raw pointer reads and an inlined write barrier replicating
//     ArcadeMachine::write8 (ROM-write rejection + dirty-page bitmap);
//     only IN/OUT still go through the virtual Bus (cold);
//   * dispatch: computed goto (RTCT_DISPATCH_GOTO) or a switch.
//
// Semantics that are easy to get wrong, preserved deliberately (and pinned
// by tests): the cycle-budget check runs AFTER the instruction executes
// and uses `used > budget` (an instruction landing exactly on the budget
// does not fault); a budget overrun overwrites any fault the same
// instruction raised (matching run_frame's unconditional check); a bad
// opcode faults BEFORE pc advances; CALL pushes the already-advanced pc
// even when the push itself faults on a ROM address.
int Cpu::run_frame_fast(std::uint8_t* mem, std::uint64_t* dirty_bitmap, Bus& ports,
                        const PredecodedRom& rom, int cycle_budget) {
  if (fault_ != Fault::kNone) return 0;

  int used = 0;
  std::uint16_t pc = pc_;
  bool z = z_, n = n_, c = c_;
  bool halted = false;
  Fault fault = Fault::kNone;
  const PredecodedRom::Entry* const entries = rom.entries.data();

  // Fields of the instruction currently dispatched (set by RTCT_FETCH).
  std::uint8_t op = 0, ia = 0, ib = 0, ic = 0;
  std::uint16_t imm = 0;

  // The devirtualized bus.
  auto fb_write8 = [&](std::uint16_t addr, std::uint8_t v) -> bool {
    if (addr < kRamBase) return false;
    mem[addr] = v;
    const auto page = static_cast<std::size_t>(addr - kRamBase) >> kPageShift;
    dirty_bitmap[page >> 6] |= 1ull << (page & 63);
    return true;
  };
  auto fb_read16 = [&](std::uint16_t addr) -> std::uint16_t {
    return static_cast<std::uint16_t>(
        mem[addr] | (mem[static_cast<std::uint16_t>(addr + 1)] << 8));
  };
  auto fb_write16 = [&](std::uint16_t addr, std::uint16_t v) -> bool {
    return fb_write8(addr, static_cast<std::uint8_t>(v & 0xFF)) &&
           fb_write8(static_cast<std::uint16_t>(addr + 1),
                     static_cast<std::uint8_t>(v >> 8));
  };
  auto fb_push16 = [&](std::uint16_t v) {
    regs_[kSpReg] = static_cast<std::uint16_t>(regs_[kSpReg] - 2);
    if (!fb_write16(regs_[kSpReg], v)) fault = Fault::kRomWrite;
  };
  auto fb_pop16 = [&]() -> std::uint16_t {
    const std::uint16_t v = fb_read16(regs_[kSpReg]);
    regs_[kSpReg] = static_cast<std::uint16_t>(regs_[kSpReg] + 2);
    return v;
  };

#define RTCT_SETZN(v)              \
  do {                             \
    const std::uint16_t zn_ = (v); \
    z = zn_ == 0;                  \
    n = (zn_ & 0x8000) != 0;       \
  } while (0)

#define RTCT_FETCH()                                                    \
  do {                                                                  \
    if (pc < PredecodedRom::kLimit) {                                   \
      const PredecodedRom::Entry& e_ = entries[pc];                     \
      if (!e_.valid) {                                                  \
        fault = Fault::kBadOpcode;                                      \
        goto done;                                                      \
      }                                                                 \
      op = e_.op;                                                       \
      ia = e_.a;                                                        \
      ib = e_.b;                                                        \
      ic = e_.c;                                                        \
      imm = e_.imm;                                                     \
    } else {                                                            \
      const std::uint8_t f0_ = mem[pc];                                 \
      const std::uint8_t f1_ = mem[static_cast<std::uint16_t>(pc + 1)]; \
      const std::uint8_t f2_ = mem[static_cast<std::uint16_t>(pc + 2)]; \
      const std::uint8_t f3_ = mem[static_cast<std::uint16_t>(pc + 3)]; \
      if (!is_valid_opcode(f0_)) {                                      \
        fault = Fault::kBadOpcode;                                      \
        goto done;                                                      \
      }                                                                 \
      op = f0_;                                                         \
      ia = f1_;                                                         \
      ib = f2_;                                                         \
      ic = f3_;                                                         \
      imm = static_cast<std::uint16_t>(f2_ | (f3_ << 8));               \
    }                                                                   \
    pc = static_cast<std::uint16_t>(pc + kInstrBytes);                  \
  } while (0)

// RTCT_NEXT(cost): post-instruction accounting, then dispatch the next
// instruction. Replicates run_frame's loop epilogue exactly.
#if RTCT_DISPATCH_GOTO
#define RTCT_OP(name) h_##name:
#define RTCT_NEXT(cost)                             \
  do {                                              \
    used += (cost);                                 \
    if (used > cycle_budget) {                      \
      fault = Fault::kBudgetExceeded;               \
      goto done;                                    \
    }                                               \
    if (halted || fault != Fault::kNone) goto done; \
    RTCT_FETCH();                                   \
    goto* kDispatch[op];                            \
  } while (0)
#else
#define RTCT_OP(name) case Op::k##name:
#define RTCT_NEXT(cost)                             \
  do {                                              \
    used += (cost);                                 \
    if (used > cycle_budget) {                      \
      fault = Fault::kBudgetExceeded;               \
      goto done;                                    \
    }                                               \
    if (halted || fault != Fault::kNone) goto done; \
  } while (0);                                      \
  continue
#endif

#if RTCT_DISPATCH_GOTO
  // 256-entry first-level dispatch table, indexed by the raw opcode byte.
  // Invalid opcodes are filtered by RTCT_FETCH before dispatch, so the
  // h_Bad rows are a safety net, not a hot path.
#define B16 \
  &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, \
  &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad
  static const void* const kDispatch[256] = {
      /*0x00*/ &&h_Nop, &&h_Halt, &&h_Brk, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad,
      &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad,
      &&h_Bad,
      /*0x10*/ &&h_Ldi, &&h_Mov, &&h_Ldb, &&h_Ldw, &&h_Stb, &&h_Stw, &&h_Bad,
      &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad,
      &&h_Bad,
      /*0x20*/ &&h_Add, &&h_Sub, &&h_And, &&h_Or, &&h_Xor, &&h_Shl, &&h_Shr,
      &&h_Mul, &&h_Neg, &&h_Not, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad,
      &&h_Bad,
      /*0x30*/ &&h_Addi, &&h_Subi, &&h_Andi, &&h_Ori, &&h_Xori, &&h_Shli,
      &&h_Shri, &&h_Muli, &&h_Cmp, &&h_Cmpi, &&h_Bad, &&h_Bad, &&h_Bad,
      &&h_Bad, &&h_Bad, &&h_Bad,
      /*0x40*/ &&h_Jmp, &&h_Jz, &&h_Jnz, &&h_Jc, &&h_Jnc, &&h_Jn, &&h_Jnn,
      &&h_Bad, &&h_Call, &&h_Ret, &&h_Push, &&h_Pop, &&h_Bad, &&h_Bad,
      &&h_Bad, &&h_Bad,
      /*0x50*/ &&h_In, &&h_Out, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad,
      &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad, &&h_Bad,
      &&h_Bad,
      /*0x60*/ B16, /*0x70*/ B16, /*0x80*/ B16, /*0x90*/ B16, /*0xA0*/ B16,
      /*0xB0*/ B16, /*0xC0*/ B16, /*0xD0*/ B16, /*0xE0*/ B16, /*0xF0*/ B16};
#undef B16

  RTCT_FETCH();
  goto* kDispatch[op];
#else
  for (;;) {
    RTCT_FETCH();
    switch (static_cast<Op>(op)) {
#endif

  RTCT_OP(Nop) { RTCT_NEXT(1); }
  RTCT_OP(Halt) {
    halted = true;
    RTCT_NEXT(1);
  }
  RTCT_OP(Brk) {
    fault = Fault::kBrk;
    RTCT_NEXT(1);
  }

  RTCT_OP(Ldi) {
    regs_[ia & 0xF] = imm;
    RTCT_NEXT(1);
  }
  RTCT_OP(Mov) {
    const std::uint16_t v = regs_[ib & 0xF];
    regs_[ia & 0xF] = v;
    RTCT_SETZN(v);
    RTCT_NEXT(1);
  }
  RTCT_OP(Ldb) {
    const std::uint16_t v = mem[static_cast<std::uint16_t>(regs_[ib & 0xF] + ic)];
    regs_[ia & 0xF] = v;
    RTCT_SETZN(v);
    RTCT_NEXT(2);
  }
  RTCT_OP(Ldw) {
    const std::uint16_t v =
        fb_read16(static_cast<std::uint16_t>(regs_[ib & 0xF] + ic));
    regs_[ia & 0xF] = v;
    RTCT_SETZN(v);
    RTCT_NEXT(2);
  }
  RTCT_OP(Stb) {
    if (!fb_write8(static_cast<std::uint16_t>(regs_[ia & 0xF] + ic),
                   static_cast<std::uint8_t>(regs_[ib & 0xF] & 0xFF))) {
      fault = Fault::kRomWrite;
    }
    RTCT_NEXT(2);
  }
  RTCT_OP(Stw) {
    if (!fb_write16(static_cast<std::uint16_t>(regs_[ia & 0xF] + ic),
                    regs_[ib & 0xF])) {
      fault = Fault::kRomWrite;
    }
    RTCT_NEXT(2);
  }

  RTCT_OP(Add) {
    auto& rd = regs_[ia & 0xF];
    const std::uint32_t sum = static_cast<std::uint32_t>(rd) + regs_[ib & 0xF];
    c = sum > 0xFFFF;
    rd = static_cast<std::uint16_t>(sum);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Addi) {
    auto& rd = regs_[ia & 0xF];
    const std::uint32_t sum = static_cast<std::uint32_t>(rd) + imm;
    c = sum > 0xFFFF;
    rd = static_cast<std::uint16_t>(sum);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Sub) {
    auto& rd = regs_[ia & 0xF];
    const std::uint16_t operand = regs_[ib & 0xF];
    c = rd < operand;  // borrow
    rd = static_cast<std::uint16_t>(rd - operand);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Subi) {
    auto& rd = regs_[ia & 0xF];
    c = rd < imm;  // borrow
    rd = static_cast<std::uint16_t>(rd - imm);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(And) {
    auto& rd = regs_[ia & 0xF];
    rd = static_cast<std::uint16_t>(rd & regs_[ib & 0xF]);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Andi) {
    auto& rd = regs_[ia & 0xF];
    rd = static_cast<std::uint16_t>(rd & imm);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Or) {
    auto& rd = regs_[ia & 0xF];
    rd = static_cast<std::uint16_t>(rd | regs_[ib & 0xF]);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Ori) {
    auto& rd = regs_[ia & 0xF];
    rd = static_cast<std::uint16_t>(rd | imm);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Xor) {
    auto& rd = regs_[ia & 0xF];
    rd = static_cast<std::uint16_t>(rd ^ regs_[ib & 0xF]);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Xori) {
    auto& rd = regs_[ia & 0xF];
    rd = static_cast<std::uint16_t>(rd ^ imm);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Shl) {
    auto& rd = regs_[ia & 0xF];
    const int s = regs_[ib & 0xF] & 15;
    if (s > 0) {
      c = ((rd >> (16 - s)) & 1) != 0;
      rd = static_cast<std::uint16_t>(rd << s);
    }
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Shli) {
    auto& rd = regs_[ia & 0xF];
    const int s = imm & 15;
    if (s > 0) {
      c = ((rd >> (16 - s)) & 1) != 0;
      rd = static_cast<std::uint16_t>(rd << s);
    }
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Shr) {
    auto& rd = regs_[ia & 0xF];
    const int s = regs_[ib & 0xF] & 15;
    if (s > 0) {
      c = ((rd >> (s - 1)) & 1) != 0;
      rd = static_cast<std::uint16_t>(rd >> s);
    }
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Shri) {
    auto& rd = regs_[ia & 0xF];
    const int s = imm & 15;
    if (s > 0) {
      c = ((rd >> (s - 1)) & 1) != 0;
      rd = static_cast<std::uint16_t>(rd >> s);
    }
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Mul) {
    auto& rd = regs_[ia & 0xF];
    rd = static_cast<std::uint16_t>(rd * regs_[ib & 0xF]);
    RTCT_SETZN(rd);
    RTCT_NEXT(4);
  }
  RTCT_OP(Muli) {
    auto& rd = regs_[ia & 0xF];
    rd = static_cast<std::uint16_t>(rd * imm);
    RTCT_SETZN(rd);
    RTCT_NEXT(4);
  }
  RTCT_OP(Neg) {
    auto& rd = regs_[ia & 0xF];
    rd = static_cast<std::uint16_t>(-rd);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }
  RTCT_OP(Not) {
    auto& rd = regs_[ia & 0xF];
    rd = static_cast<std::uint16_t>(~rd);
    RTCT_SETZN(rd);
    RTCT_NEXT(1);
  }

  RTCT_OP(Cmp) {
    const std::uint16_t rd = regs_[ia & 0xF];
    const std::uint16_t operand = regs_[ib & 0xF];
    c = rd < operand;
    RTCT_SETZN(static_cast<std::uint16_t>(rd - operand));
    RTCT_NEXT(1);
  }
  RTCT_OP(Cmpi) {
    const std::uint16_t rd = regs_[ia & 0xF];
    c = rd < imm;
    RTCT_SETZN(static_cast<std::uint16_t>(rd - imm));
    RTCT_NEXT(1);
  }

  RTCT_OP(Jmp) {
    pc = imm;
    RTCT_NEXT(1);
  }
  RTCT_OP(Jz) {
    if (z) pc = imm;
    RTCT_NEXT(1);
  }
  RTCT_OP(Jnz) {
    if (!z) pc = imm;
    RTCT_NEXT(1);
  }
  RTCT_OP(Jc) {
    if (c) pc = imm;
    RTCT_NEXT(1);
  }
  RTCT_OP(Jnc) {
    if (!c) pc = imm;
    RTCT_NEXT(1);
  }
  RTCT_OP(Jn) {
    if (n) pc = imm;
    RTCT_NEXT(1);
  }
  RTCT_OP(Jnn) {
    if (!n) pc = imm;
    RTCT_NEXT(1);
  }

  RTCT_OP(Call) {
    fb_push16(pc);
    pc = imm;
    RTCT_NEXT(3);
  }
  RTCT_OP(Ret) {
    pc = fb_pop16();
    RTCT_NEXT(3);
  }
  RTCT_OP(Push) {
    fb_push16(regs_[ia & 0xF]);
    RTCT_NEXT(2);
  }
  RTCT_OP(Pop) {
    regs_[ia & 0xF] = fb_pop16();
    RTCT_NEXT(2);
  }

  RTCT_OP(In) {
    const std::uint16_t v = ports.in_port(ib);
    regs_[ia & 0xF] = v;
    RTCT_SETZN(v);
    RTCT_NEXT(1);
  }
  RTCT_OP(Out) {
    ports.out_port(ia, regs_[ib & 0xF]);
    RTCT_NEXT(1);
  }

#if RTCT_DISPATCH_GOTO
h_Bad:
  fault = Fault::kBadOpcode;
  goto done;
#else
    }  // switch: every case ends in continue / goto done; falling out is
  }    // impossible because RTCT_FETCH validated the opcode.
#endif

done:
  pc_ = pc;
  z_ = z;
  n_ = n;
  c_ = c;
  halted_ = halted;
  fault_ = fault;
  return used;

#undef RTCT_SETZN
#undef RTCT_FETCH
#undef RTCT_OP
#undef RTCT_NEXT
}

void Cpu::exec(Bus& bus, const Instr& ins) {
  auto& rd = regs_[ins.a & 0xF];
  const std::uint16_t rs_val = regs_[ins.b & 0xF];
  const std::uint16_t imm = ins.imm();

  switch (ins.op) {
    case Op::kNop:
      break;
    case Op::kHalt:
      halted_ = true;
      break;
    case Op::kBrk:
      fault_ = Fault::kBrk;
      break;

    case Op::kLdi:
      rd = imm;
      break;
    case Op::kMov:
      rd = rs_val;
      set_zn(rd);
      break;
    case Op::kLdb:
      rd = bus.read8(static_cast<std::uint16_t>(rs_val + ins.c));
      set_zn(rd);
      break;
    case Op::kLdw:
      rd = read16(bus, static_cast<std::uint16_t>(rs_val + ins.c));
      set_zn(rd);
      break;
    case Op::kStb:
      if (!bus.write8(static_cast<std::uint16_t>(rd + ins.c),
                      static_cast<std::uint8_t>(rs_val & 0xFF))) {
        fault_ = Fault::kRomWrite;
      }
      break;
    case Op::kStw:
      if (!write16(bus, static_cast<std::uint16_t>(rd + ins.c), rs_val)) {
        fault_ = Fault::kRomWrite;
      }
      break;

    case Op::kAdd:
    case Op::kAddi: {
      const std::uint16_t operand = ins.op == Op::kAdd ? rs_val : imm;
      const std::uint32_t sum = static_cast<std::uint32_t>(rd) + operand;
      c_ = sum > 0xFFFF;
      rd = static_cast<std::uint16_t>(sum);
      set_zn(rd);
      break;
    }
    case Op::kSub:
    case Op::kSubi: {
      const std::uint16_t operand = ins.op == Op::kSub ? rs_val : imm;
      c_ = rd < operand;  // borrow
      rd = static_cast<std::uint16_t>(rd - operand);
      set_zn(rd);
      break;
    }
    case Op::kAnd:
    case Op::kAndi:
      rd = static_cast<std::uint16_t>(rd & (ins.op == Op::kAnd ? rs_val : imm));
      set_zn(rd);
      break;
    case Op::kOr:
    case Op::kOri:
      rd = static_cast<std::uint16_t>(rd | (ins.op == Op::kOr ? rs_val : imm));
      set_zn(rd);
      break;
    case Op::kXor:
    case Op::kXori:
      rd = static_cast<std::uint16_t>(rd ^ (ins.op == Op::kXor ? rs_val : imm));
      set_zn(rd);
      break;
    case Op::kShl:
    case Op::kShli: {
      const int s = (ins.op == Op::kShl ? rs_val : imm) & 15;
      if (s > 0) {
        c_ = ((rd >> (16 - s)) & 1) != 0;
        rd = static_cast<std::uint16_t>(rd << s);
      }
      set_zn(rd);
      break;
    }
    case Op::kShr:
    case Op::kShri: {
      const int s = (ins.op == Op::kShr ? rs_val : imm) & 15;
      if (s > 0) {
        c_ = ((rd >> (s - 1)) & 1) != 0;
        rd = static_cast<std::uint16_t>(rd >> s);
      }
      set_zn(rd);
      break;
    }
    case Op::kMul:
    case Op::kMuli:
      rd = static_cast<std::uint16_t>(rd * (ins.op == Op::kMul ? rs_val : imm));
      set_zn(rd);
      break;
    case Op::kNeg:
      rd = static_cast<std::uint16_t>(-rd);
      set_zn(rd);
      break;
    case Op::kNot:
      rd = static_cast<std::uint16_t>(~rd);
      set_zn(rd);
      break;

    case Op::kCmp:
    case Op::kCmpi: {
      const std::uint16_t operand = ins.op == Op::kCmp ? rs_val : imm;
      c_ = rd < operand;
      set_zn(static_cast<std::uint16_t>(rd - operand));
      break;
    }

    case Op::kJmp:
      pc_ = imm;
      break;
    case Op::kJz:
      if (z_) pc_ = imm;
      break;
    case Op::kJnz:
      if (!z_) pc_ = imm;
      break;
    case Op::kJc:
      if (c_) pc_ = imm;
      break;
    case Op::kJnc:
      if (!c_) pc_ = imm;
      break;
    case Op::kJn:
      if (n_) pc_ = imm;
      break;
    case Op::kJnn:
      if (!n_) pc_ = imm;
      break;

    case Op::kCall:
      push16(bus, pc_);
      pc_ = imm;
      break;
    case Op::kRet:
      pc_ = pop16(bus);
      break;
    case Op::kPush:
      push16(bus, regs_[ins.a & 0xF]);
      break;
    case Op::kPop:
      rd = pop16(bus);
      break;

    case Op::kIn:
      rd = bus.in_port(ins.b);
      set_zn(rd);
      break;
    case Op::kOut:
      bus.out_port(ins.a, rs_val);
      break;
  }
}

}  // namespace rtct::emu
