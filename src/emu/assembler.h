// Two-pass AC16 assembler.
//
// The four bundled games (src/games) are written in AC16 assembly and
// assembled at startup; this keeps the "game" genuinely separate from the
// engine — the sync layer ships input words to a ROM it knows nothing
// about, exactly the paper's transparency setup.
//
// Syntax:
//   ; comment (also "#")
//   label:                          ; defines `label` = current address
//   .org  EXPR                      ; move assembly origin
//   .equ  NAME, EXPR                ; define constant (backward refs only)
//   .entry LABEL_OR_EXPR            ; set the ROM entry point (default 0)
//   .byte EXPR|"string", ...        ; emit bytes
//   .word EXPR, ...                 ; emit little-endian 16-bit words
//   .space EXPR                     ; emit zero bytes
//   MNEMONIC operands               ; see isa.h; e.g.  LDI r0, 0xA000
//
// Operands: registers r0..r15 (case-insensitive); immediate expressions
// over decimal / 0x hex / 0b binary / 'c' char literals, labels and .equ
// symbols, with + - * / %, unary -, and parentheses. Memory operands are
// written "LDB rd, rs, offset" (offset defaults to 0 when omitted).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/emu/rom.h"

namespace rtct::emu {

struct AsmError {
  int line = 0;  ///< 1-based source line
  std::string message;
};

struct AsmResult {
  Rom rom;
  std::vector<AsmError> errors;
  [[nodiscard]] bool ok() const { return errors.empty(); }
  /// All errors joined, one per line — for test failure messages.
  [[nodiscard]] std::string error_text() const;
};

/// Assembles AC16 source into a ROM image. Never throws; syntax problems
/// are reported per line in the result.
AsmResult assemble(std::string_view source, std::string title = "untitled");

}  // namespace rtct::emu
