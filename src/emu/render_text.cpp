#include "src/emu/render_text.h"

#include <algorithm>

namespace rtct::emu {

namespace {
constexpr const char* kRamp = " .:-=+*#%@";
constexpr int kRampLen = 10;

char cell(std::span<const std::uint8_t> fb, int cols, int x, int y_top) {
  // Combine two vertically adjacent pixels; brighter one wins.
  const std::uint8_t a = fb[y_top * cols + x];
  const std::uint8_t b = fb[(y_top + 1) * cols + x];
  const int v = std::max(a, b);
  return kRamp[std::min(v, kRampLen - 1)];
}
}  // namespace

std::string render_ascii(std::span<const std::uint8_t> fb, int cols, int rows) {
  std::string out;
  out.reserve(static_cast<std::size_t>((cols + 1) * rows / 2));
  for (int y = 0; y + 1 < rows; y += 2) {
    for (int x = 0; x < cols; ++x) out.push_back(cell(fb, cols, x, y));
    out.push_back('\n');
  }
  return out;
}

std::string render_ascii_pair(std::span<const std::uint8_t> left,
                              std::span<const std::uint8_t> right, int cols, int rows) {
  std::string out;
  for (int y = 0; y + 1 < rows; y += 2) {
    for (int x = 0; x < cols; ++x) out.push_back(cell(left, cols, x, y));
    out += "  |  ";
    for (int x = 0; x < cols; ++x) out.push_back(cell(right, cols, x, y));
    out.push_back('\n');
  }
  return out;
}

}  // namespace rtct::emu
