// Terminal rendering of the ArcadeMachine framebuffer — the examples'
// stand-in for the paper's "translate and present S'" step (Algorithm 1,
// line 9) on the target platform.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace rtct::emu {

/// Renders a palette-indexed framebuffer as ASCII art. Rows are paired
/// (vertical downsample by 2) so a 64x48 screen fits a terminal as 64x24.
/// Palette indices map onto a brightness ramp; 0 is blank.
std::string render_ascii(std::span<const std::uint8_t> fb, int cols, int rows);

/// Two screens side by side (e.g. both replicas), separated by a gutter.
std::string render_ascii_pair(std::span<const std::uint8_t> left,
                              std::span<const std::uint8_t> right, int cols, int rows);

}  // namespace rtct::emu
