#include "src/emu/assembler.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>

#include "src/emu/isa.h"

namespace rtct::emu {

std::string AsmResult::error_text() const {
  std::ostringstream os;
  for (const auto& e : errors) os << "line " << e.line << ": " << e.message << "\n";
  return os.str();
}

namespace {

// ---------------------------------------------------------------- tokens --

enum class Tok { kEnd, kIdent, kNumber, kString, kComma, kColon, kLParen, kRParen,
                 kPlus, kMinus, kStar, kSlash, kPercent, kDot };

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;      // identifiers / strings
  std::int64_t value = 0;  // numbers
};

class Lexer {
 public:
  explicit Lexer(std::string_view line) : s_(line) {}

  /// Tokenizes the whole line; returns false (with message) on bad input.
  bool run(std::vector<Token>& out, std::string& err) {
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] == ';' || s_[pos_] == '#') {
        out.push_back({Tok::kEnd, "", 0});
        return true;
      }
      const char ch = s_[pos_];
      if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
        out.push_back(ident());
      } else if (std::isdigit(static_cast<unsigned char>(ch))) {
        Token t;
        if (!number(t, err)) return false;
        out.push_back(t);
      } else if (ch == '\'') {
        Token t;
        if (!char_lit(t, err)) return false;
        out.push_back(t);
      } else if (ch == '"') {
        Token t;
        if (!string_lit(t, err)) return false;
        out.push_back(t);
      } else {
        Tok k;
        switch (ch) {
          case ',': k = Tok::kComma; break;
          case ':': k = Tok::kColon; break;
          case '(': k = Tok::kLParen; break;
          case ')': k = Tok::kRParen; break;
          case '+': k = Tok::kPlus; break;
          case '-': k = Tok::kMinus; break;
          case '*': k = Tok::kStar; break;
          case '/': k = Tok::kSlash; break;
          case '%': k = Tok::kPercent; break;
          case '.': k = Tok::kDot; break;
          default:
            err = std::string("unexpected character '") + ch + "'";
            return false;
        }
        ++pos_;
        out.push_back({k, "", 0});
      }
    }
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) ++pos_;
  }

  Token ident() {
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_')) {
      ++pos_;
    }
    return {Tok::kIdent, std::string(s_.substr(start, pos_ - start)), 0};
  }

  bool number(Token& t, std::string& err) {
    std::size_t start = pos_;
    int base = 10;
    if (s_[pos_] == '0' && pos_ + 1 < s_.size() && (s_[pos_ + 1] == 'x' || s_[pos_ + 1] == 'X')) {
      base = 16;
      pos_ += 2;
      start = pos_;
    } else if (s_[pos_] == '0' && pos_ + 1 < s_.size() &&
               (s_[pos_ + 1] == 'b' || s_[pos_ + 1] == 'B')) {
      base = 2;
      pos_ += 2;
      start = pos_;
    }
    std::int64_t v = 0;
    bool any = false;
    while (pos_ < s_.size()) {
      const char ch = s_[pos_];
      int digit;
      if (ch >= '0' && ch <= '9') digit = ch - '0';
      else if (ch >= 'a' && ch <= 'f') digit = ch - 'a' + 10;
      else if (ch >= 'A' && ch <= 'F') digit = ch - 'A' + 10;
      else break;
      if (digit >= base) break;
      v = v * base + digit;
      any = true;
      ++pos_;
    }
    if (!any) {
      err = "malformed number at '" + std::string(s_.substr(start)) + "'";
      return false;
    }
    t = {Tok::kNumber, "", v};
    return true;
  }

  bool char_lit(Token& t, std::string& err) {
    // 'c' or '\n' style
    ++pos_;  // opening quote
    if (pos_ >= s_.size()) {
      err = "unterminated character literal";
      return false;
    }
    char v = s_[pos_++];
    if (v == '\\') {
      if (pos_ >= s_.size()) {
        err = "unterminated escape";
        return false;
      }
      const char e = s_[pos_++];
      switch (e) {
        case 'n': v = '\n'; break;
        case 't': v = '\t'; break;
        case '0': v = '\0'; break;
        case '\\': v = '\\'; break;
        case '\'': v = '\''; break;
        default:
          err = std::string("unknown escape '\\") + e + "'";
          return false;
      }
    }
    if (pos_ >= s_.size() || s_[pos_] != '\'') {
      err = "unterminated character literal";
      return false;
    }
    ++pos_;
    t = {Tok::kNumber, "", static_cast<unsigned char>(v)};
    return true;
  }

  bool string_lit(Token& t, std::string& err) {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char v = s_[pos_++];
      if (v == '\\' && pos_ < s_.size()) {
        const char e = s_[pos_++];
        switch (e) {
          case 'n': v = '\n'; break;
          case 't': v = '\t'; break;
          case '0': v = '\0'; break;
          case '\\': v = '\\'; break;
          case '"': v = '"'; break;
          default:
            err = std::string("unknown escape '\\") + e + "'";
            return false;
        }
      }
      out.push_back(v);
    }
    if (pos_ >= s_.size()) {
      err = "unterminated string";
      return false;
    }
    ++pos_;
    t = {Tok::kString, out, 0};
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------ assembler --

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::toupper(ch)); });
  return s;
}

std::optional<int> parse_register(const std::string& ident) {
  if (ident.size() < 2 || ident.size() > 3) return std::nullopt;
  if (ident[0] != 'r' && ident[0] != 'R') return std::nullopt;
  int v = 0;
  for (std::size_t i = 1; i < ident.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(ident[i]))) return std::nullopt;
    v = v * 10 + (ident[i] - '0');
  }
  if (v < 0 || v >= kNumRegs) return std::nullopt;
  return v;
}

/// Operand shapes accepted per mnemonic.
enum class Shape {
  kNone,        // NOP HALT BRK RET
  kReg,         // NEG NOT PUSH POP
  kRegReg,      // MOV ADD ... CMP
  kRegImm,      // LDI ADDI ... CMPI
  kRegRegImm,   // LDB LDW STB STW (imm optional)
  kImm,         // JMP ... CALL
  kRegPort,     // IN rd, port
  kPortReg,     // OUT port, rs
};

struct OpInfo {
  Op op;
  Shape shape;
};

const std::map<std::string, OpInfo>& op_table() {
  static const std::map<std::string, OpInfo> table = {
      {"NOP", {Op::kNop, Shape::kNone}},    {"HALT", {Op::kHalt, Shape::kNone}},
      {"BRK", {Op::kBrk, Shape::kNone}},    {"RET", {Op::kRet, Shape::kNone}},
      {"LDI", {Op::kLdi, Shape::kRegImm}},  {"MOV", {Op::kMov, Shape::kRegReg}},
      {"LDB", {Op::kLdb, Shape::kRegRegImm}}, {"LDW", {Op::kLdw, Shape::kRegRegImm}},
      {"STB", {Op::kStb, Shape::kRegRegImm}}, {"STW", {Op::kStw, Shape::kRegRegImm}},
      {"ADD", {Op::kAdd, Shape::kRegReg}},  {"SUB", {Op::kSub, Shape::kRegReg}},
      {"AND", {Op::kAnd, Shape::kRegReg}},  {"OR", {Op::kOr, Shape::kRegReg}},
      {"XOR", {Op::kXor, Shape::kRegReg}},  {"SHL", {Op::kShl, Shape::kRegReg}},
      {"SHR", {Op::kShr, Shape::kRegReg}},  {"MUL", {Op::kMul, Shape::kRegReg}},
      {"NEG", {Op::kNeg, Shape::kReg}},     {"NOT", {Op::kNot, Shape::kReg}},
      {"ADDI", {Op::kAddi, Shape::kRegImm}}, {"SUBI", {Op::kSubi, Shape::kRegImm}},
      {"ANDI", {Op::kAndi, Shape::kRegImm}}, {"ORI", {Op::kOri, Shape::kRegImm}},
      {"XORI", {Op::kXori, Shape::kRegImm}}, {"SHLI", {Op::kShli, Shape::kRegImm}},
      {"SHRI", {Op::kShri, Shape::kRegImm}}, {"MULI", {Op::kMuli, Shape::kRegImm}},
      {"CMP", {Op::kCmp, Shape::kRegReg}},  {"CMPI", {Op::kCmpi, Shape::kRegImm}},
      {"JMP", {Op::kJmp, Shape::kImm}},     {"JZ", {Op::kJz, Shape::kImm}},
      {"JNZ", {Op::kJnz, Shape::kImm}},     {"JC", {Op::kJc, Shape::kImm}},
      {"JNC", {Op::kJnc, Shape::kImm}},     {"JN", {Op::kJn, Shape::kImm}},
      {"JNN", {Op::kJnn, Shape::kImm}},     {"CALL", {Op::kCall, Shape::kImm}},
      {"PUSH", {Op::kPush, Shape::kReg}},   {"POP", {Op::kPop, Shape::kReg}},
      {"IN", {Op::kIn, Shape::kRegPort}},   {"OUT", {Op::kOut, Shape::kPortReg}},
  };
  return table;
}

class Assembler {
 public:
  explicit Assembler(std::string_view source, std::string title) : title_(std::move(title)) {
    std::size_t start = 0;
    while (start <= source.size()) {
      const std::size_t nl = source.find('\n', start);
      const std::size_t end = nl == std::string_view::npos ? source.size() : nl;
      lines_.emplace_back(source.substr(start, end - start));
      if (nl == std::string_view::npos) break;
      start = nl + 1;
    }
  }

  AsmResult run() {
    pass(1);
    if (result_.errors.empty()) {
      image_.clear();
      pass(2);
    }
    result_.rom.title = title_;
    result_.rom.image = std::move(image_);
    result_.rom.entry = entry_;
    return std::move(result_);
  }

 private:
  void error(const std::string& msg) { result_.errors.push_back({line_no_, msg}); }

  void pass(int n) {
    pass_ = n;
    origin_ = 0;
    for (line_no_ = 1; line_no_ <= static_cast<int>(lines_.size()); ++line_no_) {
      std::vector<Token> toks;
      std::string err;
      Lexer lex(lines_[line_no_ - 1]);
      if (!lex.run(toks, err)) {
        if (pass_ == 1) error(err);
        continue;
      }
      toks_ = &toks;
      pos_ = 0;
      statement();
    }
  }

  const Token& peek() const { return (*toks_)[pos_]; }
  const Token& next() { return (*toks_)[pos_++]; }
  bool at_end() const { return peek().kind == Tok::kEnd; }

  bool expect(Tok k, const char* what) {
    if (peek().kind != k) {
      error(std::string("expected ") + what);
      return false;
    }
    ++pos_;
    return true;
  }

  void statement() {
    if (at_end()) return;
    if (peek().kind == Tok::kDot) {
      ++pos_;
      directive();
      return;
    }
    if (peek().kind != Tok::kIdent) {
      error("expected label, directive or mnemonic");
      return;
    }
    // label?
    if ((*toks_)[pos_ + 1].kind == Tok::kColon) {
      const std::string name = next().text;
      ++pos_;  // colon
      define_label(name);
      if (at_end()) return;
      statement();  // allow "label: INSTR"
      return;
    }
    instruction();
  }

  void define_label(const std::string& name) {
    if (pass_ != 1) return;
    if (symbols_.count(name) != 0) {
      error("duplicate symbol '" + name + "'");
      return;
    }
    symbols_[name] = origin_;
  }

  void directive() {
    if (peek().kind != Tok::kIdent) {
      error("expected directive name after '.'");
      return;
    }
    const std::string name = upper(next().text);
    if (name == "ORG") {
      std::int64_t v;
      if (!expr(v)) return;
      if (v < 0 || v > 0xFFFF) {
        error(".org out of range");
        return;
      }
      origin_ = static_cast<std::uint32_t>(v);
    } else if (name == "EQU") {
      if (peek().kind != Tok::kIdent) {
        error(".equ expects a name");
        return;
      }
      const std::string sym = next().text;
      if (!expect(Tok::kComma, "','")) return;
      std::int64_t v;
      if (!expr(v)) return;
      if (pass_ == 1) {
        if (symbols_.count(sym) != 0) {
          error("duplicate symbol '" + sym + "'");
          return;
        }
        symbols_[sym] = v;
      }
    } else if (name == "ENTRY") {
      std::int64_t v;
      if (!expr(v)) return;
      // Labels may be forward-declared, so only pass 2's value is final.
      if (pass_ == 2) {
        if (v < 0 || v > 0xFFFF) {
          error(".entry out of range");
          return;
        }
        entry_ = static_cast<std::uint16_t>(v);
      }
    } else if (name == "BYTE") {
      data_list(1);
    } else if (name == "WORD") {
      data_list(2);
    } else if (name == "SPACE") {
      std::int64_t v;
      if (!expr(v)) return;
      if (v < 0 || v > 0x8000) {
        error(".space size out of range");
        return;
      }
      for (std::int64_t i = 0; i < v; ++i) emit8(0);
    } else {
      error("unknown directive '." + name + "'");
    }
  }

  void data_list(int width) {
    while (true) {
      if (peek().kind == Tok::kString) {
        for (char ch : next().text) {
          if (width == 1) {
            emit8(static_cast<std::uint8_t>(ch));
          } else {
            emit16(static_cast<std::uint16_t>(static_cast<unsigned char>(ch)));
          }
        }
      } else {
        std::int64_t v;
        if (!expr(v)) return;
        if (width == 1) {
          emit8(static_cast<std::uint8_t>(v & 0xFF));
        } else {
          emit16(static_cast<std::uint16_t>(v & 0xFFFF));
        }
      }
      if (peek().kind != Tok::kComma) break;
      ++pos_;
    }
    if (!at_end()) error("trailing tokens after data list");
  }

  void instruction() {
    const std::string mn = upper(next().text);
    const auto it = op_table().find(mn);
    if (it == op_table().end()) {
      error("unknown mnemonic '" + mn + "'");
      return;
    }
    const OpInfo info = it->second;
    Instr ins;
    ins.op = info.op;

    switch (info.shape) {
      case Shape::kNone:
        break;
      case Shape::kReg: {
        int rd;
        if (!reg_operand(rd)) return;
        ins.a = static_cast<std::uint8_t>(rd);
        break;
      }
      case Shape::kRegReg: {
        int rd, rs;
        if (!reg_operand(rd) || !expect(Tok::kComma, "','") || !reg_operand(rs)) return;
        ins.a = static_cast<std::uint8_t>(rd);
        ins.b = static_cast<std::uint8_t>(rs);
        break;
      }
      case Shape::kRegImm: {
        int rd;
        std::int64_t v;
        if (!reg_operand(rd) || !expect(Tok::kComma, "','") || !expr(v)) return;
        if (!check_imm16(v)) return;
        ins.a = static_cast<std::uint8_t>(rd);
        set_imm(ins, v);
        break;
      }
      case Shape::kRegRegImm: {
        int ra, rb;
        if (!reg_operand(ra) || !expect(Tok::kComma, "','") || !reg_operand(rb)) return;
        std::int64_t v = 0;
        if (peek().kind == Tok::kComma) {
          ++pos_;
          if (!expr(v)) return;
          if (!check_imm16(v)) return;
        }
        // Encoding note: for loads a=rd b=rs; for stores a=addr-reg b=src.
        ins.a = static_cast<std::uint8_t>(ra);
        // imm shares bytes b/c with the second register: re-encode.
        ins.b = static_cast<std::uint8_t>(rb);
        // kLdb/kLdw/kStb/kStw carry the offset in a third byte? The fixed
        // 4-byte format has only a,b,c — we place low 8 bits of the offset
        // in c. Offsets are therefore limited to 0..255.
        if (v < 0 || v > 0xFF) {
          error("memory offset must be 0..255");
          return;
        }
        ins.c = static_cast<std::uint8_t>(v);
        break;
      }
      case Shape::kImm: {
        std::int64_t v;
        if (!expr(v)) return;
        if (!check_imm16(v)) return;
        set_imm(ins, v);
        break;
      }
      case Shape::kRegPort: {
        int rd;
        std::int64_t port;
        if (!reg_operand(rd) || !expect(Tok::kComma, "','") || !expr(port)) return;
        if (port < 0 || port > 255) {
          error("port must be 0..255");
          return;
        }
        ins.a = static_cast<std::uint8_t>(rd);
        ins.b = static_cast<std::uint8_t>(port);
        break;
      }
      case Shape::kPortReg: {
        std::int64_t port;
        int rs;
        if (!expr(port) || !expect(Tok::kComma, "','") || !reg_operand(rs)) return;
        if (port < 0 || port > 255) {
          error("port must be 0..255");
          return;
        }
        ins.a = static_cast<std::uint8_t>(port);
        ins.b = static_cast<std::uint8_t>(rs);
        break;
      }
    }
    if (!at_end()) {
      error("trailing tokens after instruction");
      return;
    }
    std::uint8_t enc[4];
    encode(ins, enc);
    for (auto byte : enc) emit8(byte);
  }

  static void set_imm(Instr& ins, std::int64_t v) {
    const auto u = static_cast<std::uint16_t>(v & 0xFFFF);
    ins.b = static_cast<std::uint8_t>(u & 0xFF);
    ins.c = static_cast<std::uint8_t>(u >> 8);
  }

  bool check_imm16(std::int64_t v) {
    if (v < -0x8000 || v > 0xFFFF) {
      error("immediate out of 16-bit range");
      return false;
    }
    return true;
  }

  bool reg_operand(int& out) {
    if (peek().kind == Tok::kIdent) {
      if (auto r = parse_register(peek().text)) {
        ++pos_;
        out = *r;
        return true;
      }
    }
    error("expected register (r0..r15)");
    return false;
  }

  // Expressions: term (('+'|'-') term)*; term: factor (('*'|'/'|'%') factor)*;
  // factor: number | symbol | '-' factor | '(' expr ')'.
  bool expr(std::int64_t& out) { return add_expr(out); }

  bool add_expr(std::int64_t& out) {
    if (!mul_expr(out)) return false;
    while (peek().kind == Tok::kPlus || peek().kind == Tok::kMinus) {
      const bool plus = next().kind == Tok::kPlus;
      std::int64_t rhs;
      if (!mul_expr(rhs)) return false;
      out = plus ? out + rhs : out - rhs;
    }
    return true;
  }

  bool mul_expr(std::int64_t& out) {
    if (!factor(out)) return false;
    while (peek().kind == Tok::kStar || peek().kind == Tok::kSlash ||
           peek().kind == Tok::kPercent) {
      const Tok k = next().kind;
      std::int64_t rhs;
      if (!factor(rhs)) return false;
      if ((k == Tok::kSlash || k == Tok::kPercent) && rhs == 0) {
        error("division by zero in expression");
        return false;
      }
      out = k == Tok::kStar ? out * rhs : k == Tok::kSlash ? out / rhs : out % rhs;
    }
    return true;
  }

  bool factor(std::int64_t& out) {
    if (peek().kind == Tok::kMinus) {
      ++pos_;
      if (!factor(out)) return false;
      out = -out;
      return true;
    }
    if (peek().kind == Tok::kNumber) {
      out = next().value;
      return true;
    }
    if (peek().kind == Tok::kLParen) {
      ++pos_;
      if (!expr(out)) return false;
      return expect(Tok::kRParen, "')'");
    }
    if (peek().kind == Tok::kIdent) {
      const std::string name = next().text;
      const auto it = symbols_.find(name);
      if (it == symbols_.end()) {
        // Unknown in pass 1 is fine (forward label); must resolve in pass 2.
        if (pass_ == 2) {
          error("undefined symbol '" + name + "'");
          return false;
        }
        out = 0;
        return true;
      }
      out = it->second;
      return true;
    }
    error("expected expression");
    return false;
  }

  void emit8(std::uint8_t v) {
    if (origin_ >= kRomCapacity) {
      if (pass_ == 2 && !overflowed_) {
        error("ROM overflow (32 KiB limit)");
        overflowed_ = true;
      }
      ++origin_;
      return;
    }
    if (pass_ == 2) {
      if (image_.size() <= origin_) image_.resize(origin_ + 1, 0);
      image_[origin_] = v;
    }
    ++origin_;
  }

  void emit16(std::uint16_t v) {
    emit8(static_cast<std::uint8_t>(v & 0xFF));
    emit8(static_cast<std::uint8_t>(v >> 8));
  }

  std::string title_;
  std::vector<std::string> lines_;
  AsmResult result_;
  std::map<std::string, std::int64_t> symbols_;
  std::vector<std::uint8_t> image_;
  std::uint32_t origin_ = 0;
  std::uint16_t entry_ = 0;
  int pass_ = 1;
  int line_no_ = 0;
  bool overflowed_ = false;
  const std::vector<Token>* toks_ = nullptr;
  std::size_t pos_ = 0;
};

}  // namespace

AsmResult assemble(std::string_view source, std::string title) {
  return Assembler(source, std::move(title)).run();
}

}  // namespace rtct::emu
