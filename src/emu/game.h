// The determinism contract between the emulator and the sync layer.
//
// The paper's central transparency claim (§2) is that the sync module
// treats `S' = Transition(I, S)` as a black box. This interface *is* that
// black box: the distributed VM (src/core) drives games exclusively through
// it and never learns anything about their semantics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"

namespace rtct::emu {

class IDeterministicGame {
 public:
  virtual ~IDeterministicGame() = default;

  /// Returns to the initial state S0. Two replicas that reset() and then
  /// receive the same input sequence MUST produce identical state_hash()
  /// sequences — that is the determinism assumption of §3, and the tests
  /// enforce it rather than assume it.
  virtual void reset() = 0;

  /// Executes one video frame given the full (merged, both players') input
  /// word. This is Algorithm 1's `S = Transition(I, S)`.
  virtual void step_frame(InputWord input) = 0;

  /// 64-bit fingerprint of the complete mutable state.
  [[nodiscard]] virtual std::uint64_t state_hash() const = 0;

  /// Versioned fingerprint. Version 1 is state_hash(); a game MAY implement
  /// cheaper digests under higher versions (e.g. the emulator's incremental
  /// dirty-page digest, version 2). Digests of different versions are not
  /// comparable — the session handshake negotiates one version for both
  /// replicas before any hashes are exchanged. Unknown versions fall back
  /// to the newest one the game implements (here: version 1).
  [[nodiscard]] virtual std::uint64_t state_digest(int version) const {
    (void)version;
    return state_hash();
  }

  /// Per-page digests of the mutable state, in page order — the raw
  /// material behind the version-2 digest, exposed so divergence tooling
  /// (the replay bisector) can name the exact page(s) on which two
  /// replicas differ instead of just "the hashes split". Empty means the
  /// game has no page-granular digest; tooling then falls back to diffing
  /// raw save_state() bytes. Pages are kPageSize-byte units starting at
  /// page_digest_base() in the game's address space.
  [[nodiscard]] virtual std::vector<std::uint64_t> page_digests() const { return {}; }

  /// Address of the first byte page 0 of page_digests() covers (used only
  /// to label pages in human/JSON reports).
  [[nodiscard]] virtual std::uint32_t page_digest_base() const { return 0; }

  /// Serializes the complete mutable state (versioned).
  [[nodiscard]] virtual std::vector<std::uint8_t> save_state() const = 0;

  /// save_state() into a caller-owned buffer, reusing its capacity. Hot
  /// paths (snapshot fan-out, replay recording, chaos soak) call this once
  /// per served frame; overriding it makes those paths allocation-free.
  virtual void save_state_into(std::vector<std::uint8_t>& out) const { out = save_state(); }

  /// Restores a save_state() snapshot. Returns false on a malformed or
  /// version-mismatched snapshot (state is then unspecified; reset()).
  virtual bool load_state(std::span<const std::uint8_t> data) = 0;

  /// Number of frames executed since reset().
  [[nodiscard]] virtual FrameNo frame() const = 0;

  /// Stable identity of the loaded content (e.g. ROM checksum). The
  /// session handshake refuses to pair sites whose content ids differ —
  /// the paper's "same game image" precondition (§2).
  [[nodiscard]] virtual std::uint64_t content_id() const = 0;
};

}  // namespace rtct::emu
