// The determinism contract between the emulator and the sync layer.
//
// The paper's central transparency claim (§2) is that the sync module
// treats `S' = Transition(I, S)` as a black box. This interface *is* that
// black box: the distributed VM (src/core) drives games exclusively through
// it and never learns anything about their semantics.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace rtct::emu {

/// Optional render extension: a game that can be drawn exposes a text-mode
/// framebuffer of palette indices (row-major, cols x rows bytes). The sync
/// layer never touches this — it exists so presentation tools (rtct_play,
/// rtct_watch, rtct_netplay, testbed screen capture) can render *any* core
/// without downcasting to a concrete machine type. Geometry is per-game:
/// AC16 is 64x48, agent86 is 64x32, cellwars synthesizes 32x24.
class IRenderableGame {
 public:
  virtual ~IRenderableGame() = default;

  [[nodiscard]] virtual int fb_cols() const = 0;
  [[nodiscard]] virtual int fb_rows() const = 0;

  /// fb_cols()*fb_rows() palette indices. The span is only valid until the
  /// next step_frame()/load_state() on the owning game.
  [[nodiscard]] virtual std::span<const std::uint8_t> framebuffer() const = 0;
};

class IDeterministicGame {
 public:
  virtual ~IDeterministicGame() = default;

  /// Returns to the initial state S0. Two replicas that reset() and then
  /// receive the same input sequence MUST produce identical state_hash()
  /// sequences — that is the determinism assumption of §3, and the tests
  /// enforce it rather than assume it.
  virtual void reset() = 0;

  /// Executes one video frame given the full (merged, both players') input
  /// word. This is Algorithm 1's `S = Transition(I, S)`.
  virtual void step_frame(InputWord input) = 0;

  /// 64-bit fingerprint of the complete mutable state.
  [[nodiscard]] virtual std::uint64_t state_hash() const = 0;

  /// Versioned fingerprint. Version 1 is state_hash(); a game MAY implement
  /// cheaper digests under higher versions (e.g. the emulator's incremental
  /// dirty-page digest, version 2). Digests of different versions are not
  /// comparable — the session handshake negotiates one version for both
  /// replicas before any hashes are exchanged. Unknown versions fall back
  /// to the newest one the game implements (here: version 1).
  [[nodiscard]] virtual std::uint64_t state_digest(int version) const {
    (void)version;
    return state_hash();
  }

  /// Per-page digests of the mutable state, in page order — the raw
  /// material behind the version-2 digest, exposed so divergence tooling
  /// (the replay bisector) can name the exact page(s) on which two
  /// replicas differ instead of just "the hashes split". Empty means the
  /// game has no page-granular digest; tooling then falls back to diffing
  /// raw save_state() bytes. Pages are kPageSize-byte units starting at
  /// page_digest_base() in the game's address space.
  [[nodiscard]] virtual std::vector<std::uint64_t> page_digests() const { return {}; }

  /// Address of the first byte page 0 of page_digests() covers (used only
  /// to label pages in human/JSON reports).
  [[nodiscard]] virtual std::uint32_t page_digest_base() const { return 0; }

  /// Serializes the complete mutable state (versioned).
  [[nodiscard]] virtual std::vector<std::uint8_t> save_state() const = 0;

  /// save_state() into a caller-owned buffer, reusing its capacity. Hot
  /// paths (snapshot fan-out, replay recording, chaos soak) call this once
  /// per served frame; overriding it makes those paths allocation-free.
  virtual void save_state_into(std::vector<std::uint8_t>& out) const { out = save_state(); }

  /// Restores a save_state() snapshot. Returns false on a malformed or
  /// version-mismatched snapshot (state is then unspecified; reset()).
  virtual bool load_state(std::span<const std::uint8_t> data) = 0;

  /// Number of frames executed since reset().
  [[nodiscard]] virtual FrameNo frame() const = 0;

  /// Stable identity of the loaded content (e.g. ROM checksum). The
  /// session handshake refuses to pair sites whose content ids differ —
  /// the paper's "same game image" precondition (§2). Two cores loading a
  /// game of the *same name* MUST still produce different content ids
  /// (content identity is the image, not the label).
  [[nodiscard]] virtual std::uint64_t content_id() const = 0;

  /// Qualified human-readable content label, "core:game" (e.g.
  /// "ac16:duel", "agent86:skirmish"). Advisory only — content_id() is the
  /// identity the handshake trusts; the name is recorded in replay headers
  /// so tooling can re-instantiate the right core without a content-id
  /// scan. Empty when the game has no registry name (e.g. a ROM loaded
  /// from a file).
  [[nodiscard]] virtual std::string content_name() const { return {}; }

  /// True when the game can no longer make progress (e.g. the emulated CPU
  /// hit a bad opcode or blew its cycle budget). Presentation/tooling
  /// surface this to the user; the sync layer keeps stepping regardless —
  /// a deterministic fault is still deterministic.
  [[nodiscard]] virtual bool faulted() const { return false; }

  /// Render extension, or nullptr when the game has no visual surface.
  /// Returning `this` from a subclass that also implements IRenderableGame
  /// is the expected pattern — callers never dynamic_cast.
  [[nodiscard]] virtual const IRenderableGame* renderable() const { return nullptr; }
};

}  // namespace rtct::emu
