// AC16 disassembler — debugging aid for ROM authors and round-trip tests
// for the assembler/encoder.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "src/emu/isa.h"

namespace rtct::emu {

/// Renders one decoded instruction, e.g. "LDI r0, 0xA000".
std::string disassemble_instr(const Instr& ins);

/// Disassembles `code` (multiple of 4 bytes) with addresses starting at
/// `base`, one instruction per line.
std::string disassemble(std::span<const std::uint8_t> code, std::uint16_t base = 0);

}  // namespace rtct::emu
