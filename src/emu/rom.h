// ROM image container: the "game image" both players must install (§2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/hash.h"

namespace rtct::emu {

inline constexpr std::size_t kRomCapacity = 0x8000;  ///< 32 KiB at 0x0000

struct Rom {
  std::string title;
  std::vector<std::uint8_t> image;  ///< at most kRomCapacity bytes
  std::uint16_t entry = 0;          ///< initial PC

  [[nodiscard]] bool valid() const { return !image.empty() && image.size() <= kRomCapacity; }

  /// Fingerprint used by session control to verify both sites loaded the
  /// same game image before starting (§2: "install ... the same game image").
  [[nodiscard]] std::uint64_t checksum() const {
    Fnv1a64 h;
    h.update(std::span<const std::uint8_t>(image.data(), image.size()));
    h.update_u16(entry);
    return h.digest();
  }
};

}  // namespace rtct::emu
