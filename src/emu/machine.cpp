#include "src/emu/machine.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "src/common/bytes.h"
#include "src/common/hash.h"

namespace rtct::emu {

namespace {
constexpr std::size_t kMemSize = 0x10000;
constexpr std::size_t kMutableSize = kMemSize - kRamBase;  // 32 KiB RAM+FB
constexpr std::size_t kDebugLogCap = 4096;

std::atomic<bool> g_cross_check{false};
std::atomic<std::uint64_t> g_cross_check_failures{0};
}  // namespace

void set_state_digest_cross_check(bool on) {
  g_cross_check.store(on, std::memory_order_relaxed);
  if (on) g_cross_check_failures.store(0, std::memory_order_relaxed);
}

bool state_digest_cross_check() { return g_cross_check.load(std::memory_order_relaxed); }

std::uint64_t state_digest_cross_check_failures() {
  return g_cross_check_failures.load(std::memory_order_relaxed);
}

void note_state_digest_cross_check_failure() {
  g_cross_check_failures.fetch_add(1, std::memory_order_relaxed);
}

ArcadeMachine::ArcadeMachine(Rom rom, MachineConfig cfg)
    : rom_(std::move(rom)),
      predecode_(rom_.image),
      cfg_(cfg),
      mem_(kMemSize, 0) {
  reset();
}

void ArcadeMachine::reset() {
  std::fill(mem_.begin(), mem_.end(), 0);
  std::copy(rom_.image.begin(), rom_.image.end(), mem_.begin());
  cpu_.reset(rom_.entry, kInitialSp);
  input_latch_ = 0;
  tone_ = 0;
  frame_ = 0;
  last_frame_cycles_ = 0;
  debug_log_.clear();
  mark_all_pages_dirty();
}

void ArcadeMachine::mark_all_pages_dirty() const {
  dirty_.fill(~0ull);
}

void ArcadeMachine::refresh_dirty_pages() const {
  for (std::size_t wi = 0; wi < dirty_.size(); ++wi) {
    std::uint64_t bits = dirty_[wi];
    dirty_[wi] = 0;
    while (bits != 0) {
      const auto page = wi * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      page_digest_[page] =
          fnv1a64({mem_.data() + kRamBase + page * kPageSize, kPageSize});
    }
  }
}

void ArcadeMachine::step_frame(InputWord input) {
  if (faulted()) return;  // a faulted machine stays stopped
  input_latch_ = input;
  last_frame_cycles_ =
      cfg_.reference_interpreter
          ? cpu_.run_frame(*this, cfg_.cycles_per_frame)
          : cpu_.run_frame_fast(mem_.data(), dirty_.data(), *this, predecode_,
                                cfg_.cycles_per_frame);
  ++frame_;
}

std::uint16_t ArcadeMachine::in_port(std::uint8_t port) {
  switch (static_cast<Port>(port)) {
    case Port::kPlayer0:
      return player_byte(input_latch_, 0);
    case Port::kPlayer1:
      return player_byte(input_latch_, 1);
    case Port::kFrameLo:
      return static_cast<std::uint16_t>(frame_ & 0xFFFF);
    case Port::kFrameHi:
      return static_cast<std::uint16_t>((frame_ >> 16) & 0xFFFF);
    default:
      return 0;  // undefined ports read as zero (deterministically)
  }
}

void ArcadeMachine::out_port(std::uint8_t port, std::uint16_t v) {
  switch (static_cast<Port>(port)) {
    case Port::kTone:
      tone_ = v;
      break;
    case Port::kDebug:
      if (debug_log_.size() < kDebugLogCap) debug_log_.push_back(v);
      break;
    default:
      break;  // writes to undefined ports are ignored
  }
}

std::uint64_t ArcadeMachine::state_hash() const {
  Fnv1a64 h;
  cpu_.visit_state(h);
  h.update_u16(input_latch_);
  h.update_u16(tone_);
  h.update_u64(static_cast<std::uint64_t>(frame_));
  h.update(std::span<const std::uint8_t>(mem_.data() + kRamBase, kMutableSize));
  return h.digest();
}

std::uint64_t ArcadeMachine::state_digest(int version) const {
  if (version <= 1) return state_hash();
  refresh_dirty_pages();
  Fnv1a64 h;
  h.update_u8(2);  // domain-separate the v2 digest from the v1 hash
  cpu_.visit_state(h);
  h.update_u16(input_latch_);
  h.update_u16(tone_);
  h.update_u64(static_cast<std::uint64_t>(frame_));
  for (const std::uint64_t d : page_digest_) h.update_u64(d);
  if (g_cross_check.load(std::memory_order_relaxed)) {
    for (std::size_t page = 0; page < kNumMutablePages; ++page) {
      const std::uint64_t full =
          fnv1a64({mem_.data() + kRamBase + page * kPageSize, kPageSize});
      if (full != page_digest_[page]) {
        g_cross_check_failures.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  return h.digest();
}

std::vector<std::uint64_t> ArcadeMachine::page_digests() const {
  refresh_dirty_pages();
  return {page_digest_.begin(), page_digest_.end()};
}

std::vector<std::uint8_t> ArcadeMachine::save_state() const {
  std::vector<std::uint8_t> out;
  save_state_into(out);
  return out;
}

void ArcadeMachine::save_state_into(std::vector<std::uint8_t>& out) const {
  if (out.capacity() < 64 + kMutableSize) out.reserve(64 + kMutableSize);
  ByteWriter w(std::move(out));
  w.u8(kStateVersion);
  w.u64(rom_.checksum());
  cpu_.visit_state(w);
  w.u16(input_latch_);
  w.u16(tone_);
  w.u64(static_cast<std::uint64_t>(frame_));
  w.bytes(std::span<const std::uint8_t>(mem_.data() + kRamBase, kMutableSize));
  out = w.take();
}

bool ArcadeMachine::load_state(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u8() != kStateVersion) return false;
  if (r.u64() != rom_.checksum()) return false;  // snapshot from another game

  Cpu::RawState cs{};
  for (auto& reg : cs.regs) reg = r.u16();
  cs.pc = r.u16();
  cs.flags = r.u8();
  cs.fault = r.u8();
  const std::uint16_t latch = r.u16();
  const std::uint16_t tone = r.u16();
  const auto frame = static_cast<FrameNo>(r.u64());
  const auto ram = r.bytes(kMutableSize);
  if (!r.ok() || !r.at_end()) return false;

  cpu_.restore(cs);
  input_latch_ = latch;
  tone_ = tone;
  frame_ = frame;
  std::copy(ram.begin(), ram.end(), mem_.begin() + kRamBase);
  // ROM region is already in place; debug log is diagnostic state only.
  debug_log_.clear();
  mark_all_pages_dirty();  // the snapshot bypassed write8
  return true;
}

}  // namespace rtct::emu
