// Deterministic pseudo-randomness for the network model.
//
// The Netem substitute needs jitter/loss/duplication/reorder draws that are
// reproducible across runs and platforms, so we ship our own xoshiro256**
// generator and distributions instead of relying on implementation-defined
// std::normal_distribution behaviour.
#pragma once

#include <cstdint>

#include "src/common/time.h"

namespace rtct {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (deterministic given the stream).
  double normal();

  /// Normal with the given mean/stddev, truncated at lo (e.g. jitter that
  /// must not make latency negative).
  Dur jitter(Dur mean, Dur stddev, Dur lo);

  /// Exponential with the given mean.
  double exponential(double mean);

  /// Splits off an independently-seeded child stream (for per-link RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0;
};

}  // namespace rtct
