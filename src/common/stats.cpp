#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/json.h"

namespace rtct {

Summary Series::summarize() const {
  Summary s;
  s.count = xs_.size();
  if (xs_.empty()) return s;

  double sum = 0, sum_abs = 0;
  s.min = xs_.front();
  s.max = xs_.front();
  for (double x : xs_) {
    sum += x;
    sum_abs += std::abs(x);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  const double n = static_cast<double>(xs_.size());
  s.mean = sum / n;
  s.mean_abs = sum_abs / n;

  double dev = 0, var = 0;
  for (double x : xs_) {
    const double d = x - s.mean;
    dev += std::abs(d);
    var += d * d;
  }
  s.mean_abs_deviation = dev / n;
  s.stddev = std::sqrt(var / n);

  s.p50 = percentile(xs_, 50);
  s.p95 = percentile(xs_, 95);
  s.p99 = percentile(xs_, 99);
  return s;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

void write_summary_json(JsonWriter& w, const Summary& s) {
  w.begin_object();
  w.key("count").value(static_cast<std::uint64_t>(s.count));
  w.key("mean").value(s.mean);
  w.key("mean_abs_deviation").value(s.mean_abs_deviation);
  w.key("mean_abs").value(s.mean_abs);
  w.key("stddev").value(s.stddev);
  w.key("min").value(s.min);
  w.key("max").value(s.max);
  w.key("p50").value(s.p50);
  w.key("p95").value(s.p95);
  w.key("p99").value(s.p99);
  w.end_object();
}

std::vector<double> consecutive_deltas(const std::vector<double>& xs) {
  std::vector<double> out;
  if (xs.size() < 2) return out;
  out.reserve(xs.size() - 1);
  for (std::size_t i = 1; i < xs.size(); ++i) out.push_back(xs[i] - xs[i - 1]);
  return out;
}

}  // namespace rtct
