#include "src/common/json.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace rtct {

// ---- JsonWriter -------------------------------------------------------------

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // the ':' already separates key from value
  }
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::open(char c) {
  separate();
  out_.push_back(c);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::close(char c) {
  assert(!first_.empty());
  first_.pop_back();
  out_.push_back(c);
  return *this;
}

namespace {
void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}
}  // namespace

JsonWriter& JsonWriter::key(std::string_view name) {
  separate();
  append_escaped(out_, name);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  append_escaped(out_, s);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {  // NaN/Inf are not JSON; metrics treat them as absent
    out_ += "null";
    return *this;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  out_.append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  separate();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, i);
  out_.append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  separate();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, u);
  out_.append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ += "null";
  return *this;
}

// ---- parser -----------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  const Object* obj = object();
  if (obj == nullptr) return nullptr;
  const auto it = obj->find(std::string(key));
  return it == obj->end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    auto v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (at_end()) return std::nullopt;
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return JsonValue(JsonValue::Storage(std::move(*s)));
      }
      case 't':
        return consume_literal("true") ? std::optional(JsonValue(JsonValue::Storage(true)))
                                       : std::nullopt;
      case 'f':
        return consume_literal("false") ? std::optional(JsonValue(JsonValue::Storage(false)))
                                        : std::nullopt;
      case 'n':
        return consume_literal("null") ? std::optional(JsonValue(JsonValue::Storage(nullptr)))
                                       : std::nullopt;
      default: return parse_number();
    }
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (!at_end() && ((peek() >= '0' && peek() <= '9') || peek() == '.' || peek() == 'e' ||
                         peek() == 'E' || peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    double d = 0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto res = std::from_chars(first, last, d);
    if (res.ec != std::errc() || res.ptr != last || first == last) return std::nullopt;
    return JsonValue(JsonValue::Storage(d));
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned cp = 0;
          const auto res = std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, cp, 16);
          if (res.ec != std::errc() || res.ptr != text_.data() + pos_ + 4) return std::nullopt;
          pos_ += 4;
          // Encode the BMP code point as UTF-8 (surrogate pairs are not
          // needed by any rtct schema; a lone surrogate encodes as-is).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_array(int depth) {
    if (!consume('[')) return std::nullopt;
    JsonValue::Array arr;
    skip_ws();
    if (consume(']')) return JsonValue(JsonValue::Storage(std::move(arr)));
    for (;;) {
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return JsonValue(JsonValue::Storage(std::move(arr)));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_object(int depth) {
    if (!consume('{')) return std::nullopt;
    JsonValue::Object obj;
    skip_ws();
    if (consume('}')) return JsonValue(JsonValue::Storage(std::move(obj)));
    for (;;) {
      skip_ws();
      auto k = parse_string();
      if (!k) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      obj.insert_or_assign(std::move(*k), std::move(*v));
      skip_ws();
      if (consume('}')) return JsonValue(JsonValue::Storage(std::move(obj)));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) { return Parser(text).parse(); }

}  // namespace rtct
