// Small shared vocabulary types.
#pragma once

#include <cstdint>

namespace rtct {

/// Site (player machine) identifier. The ICDCS'09 paper fixes two sites,
/// 0 = master and 1 = slave (§3.2); the type permits more for the journal
/// extensions (observers, >2 players).
using SiteId = std::int32_t;

inline constexpr SiteId kMasterSite = 0;
inline constexpr SiteId kSlaveSite = 1;
inline constexpr SiteId kNoSite = -1;  ///< the paper's SET[-1]: unowned input bits

/// Frame sequence number. Frames count from 0 and advance once per emulated
/// video frame (Algorithm 1's `Frame` variable).
using FrameNo = std::int64_t;

/// A full controller-input word for one frame: the paper models input as a
/// binary string in which each site owns a disjoint set of bits (§3).
/// We give each of two players 8 buttons: player 0 owns bits 0..7,
/// player 1 owns bits 8..15.
using InputWord = std::uint16_t;

/// Button bit layout within one player's byte.
enum Button : std::uint8_t {
  kBtnUp = 1u << 0,
  kBtnDown = 1u << 1,
  kBtnLeft = 1u << 2,
  kBtnRight = 1u << 3,
  kBtnA = 1u << 4,
  kBtnB = 1u << 5,
  kBtnStart = 1u << 6,
  kBtnSelect = 1u << 7,
};

/// Mask of the input bits a site owns (the paper's SET[k]).
constexpr InputWord site_input_mask(SiteId site) {
  return site == 0 ? InputWord{0x00FF} : site == 1 ? InputWord{0xFF00} : InputWord{0};
}

/// Extracts site k's bits from a full input word (the paper's I(SET[k])).
constexpr InputWord site_bits(InputWord i, SiteId site) {
  return static_cast<InputWord>(i & site_input_mask(site));
}

/// Merges a site's partial input into a full word, replacing that site's bits.
constexpr InputWord merge_site_bits(InputWord whole, InputWord partial, SiteId site) {
  const InputWord m = site_input_mask(site);
  return static_cast<InputWord>((whole & ~m) | (partial & m));
}

/// One player's byte extracted from the full word (for feeding the emulator).
constexpr std::uint8_t player_byte(InputWord i, int player) {
  return static_cast<std::uint8_t>(player == 0 ? (i & 0xFF) : ((i >> 8) & 0xFF));
}

constexpr InputWord make_input(std::uint8_t p0, std::uint8_t p1) {
  return static_cast<InputWord>(p0 | (static_cast<InputWord>(p1) << 8));
}

// ---- N-site partitions (journal-version multi-player extension) ------------
//
// The paper's SET[k] model generalizes directly: for N (2, 4, or 8) sites
// the 16 input bits are split into equal disjoint spans. The bundled
// 4-player game (quadtron) uses the 4-site partition: each player gets a
// nibble with Up/Down/Left/Right.

/// Bits per site in an N-site partition.
constexpr int site_bits_width(int num_sites) { return 16 / num_sites; }

/// SET[k] for an N-site session.
constexpr InputWord site_input_mask_n(SiteId site, int num_sites) {
  if (site < 0 || site >= num_sites || num_sites <= 0 || 16 % num_sites != 0) return 0;
  const int width = site_bits_width(num_sites);
  const InputWord base = static_cast<InputWord>((1u << width) - 1);
  return static_cast<InputWord>(base << (site * width));
}

constexpr InputWord site_bits_n(InputWord i, SiteId site, int num_sites) {
  return static_cast<InputWord>(i & site_input_mask_n(site, num_sites));
}

constexpr InputWord merge_site_bits_n(InputWord whole, InputWord partial, SiteId site,
                                      int num_sites) {
  const InputWord m = site_input_mask_n(site, num_sites);
  return static_cast<InputWord>((whole & ~m) | (partial & m));
}

/// Places a player's low bits into their N-site span (e.g. a 4-bit
/// direction pad into player k's nibble).
constexpr InputWord pack_player_bits_n(std::uint8_t bits, SiteId site, int num_sites) {
  const int width = site_bits_width(num_sites);
  return static_cast<InputWord>(
      (static_cast<InputWord>(bits) << (site * width)) & site_input_mask_n(site, num_sites));
}

}  // namespace rtct
