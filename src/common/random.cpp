#include "src/common/random.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace rtct {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % range);
}

bool Rng::bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = next_double();
  // Avoid log(0).
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

Dur Rng::jitter(Dur mean, Dur stddev, Dur lo) {
  const double x = static_cast<double>(mean) + normal() * static_cast<double>(stddev);
  return std::max(lo, static_cast<Dur>(x));
}

double Rng::exponential(double mean) {
  double u = next_double();
  while (u <= 1e-300) u = next_double();
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace rtct
