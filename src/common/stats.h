// Sample-series statistics matching the paper's evaluation metrics.
//
// Figure 1 reports the *average* frame time and the *average (absolute)
// deviation* of frame times (footnote 10: mean of |x_i - mean|). Figure 2
// reports the *absolute average* of inter-site differences (footnote 11:
// mean of |x_i|). Both are implemented here verbatim, plus the usual
// descriptive statistics for the extended benches.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/time.h"

namespace rtct {

/// Descriptive summary of a numeric series.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double mean_abs_deviation = 0;  ///< footnote 10: (Σ|x_i - mean|)/n
  double mean_abs = 0;            ///< footnote 11: (Σ|x_i|)/n
  double stddev = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Collects raw samples and produces a Summary. Keeps every sample (the
/// paper's experiments are 3 600 frames — tiny) so exact percentiles and
/// mean-absolute-deviation are computable.
class Series {
 public:
  void add(double x) { xs_.push_back(x); }
  void add_dur(Dur d) { xs_.push_back(to_ms(d)); }  ///< store as milliseconds

  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] const std::vector<double>& samples() const { return xs_; }

  [[nodiscard]] Summary summarize() const;

 private:
  std::vector<double> xs_;
};

/// Exact percentile (nearest-rank on a copy; fine at these sample sizes).
double percentile(std::vector<double> xs, double p);

/// Consecutive differences x[i+1]-x[i]; turns frame *start* timestamps into
/// frame *times*, exactly how §4.1.1 post-processes its recordings.
std::vector<double> consecutive_deltas(const std::vector<double>& xs);

class JsonWriter;  // src/common/json.h

/// Emits a Summary as a JSON object (the Figure-1/Figure-2 statistics plus
/// the usual descriptives) — the shared shape of every timeline and bench
/// export.
void write_summary_json(JsonWriter& w, const Summary& s);

}  // namespace rtct
