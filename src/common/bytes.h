// Bounds-checked little-endian byte serialization, used for wire messages
// and emulator save-states.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rtct {

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Adopts an existing buffer: clears it but keeps its capacity, so a
  /// caller that round-trips the vector through take() pays the allocation
  /// once instead of once per call (per-frame snapshot/wire encoding).
  explicit ByteWriter(std::vector<std::uint8_t>&& reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(std::span<const std::uint8_t> s) { buf_.insert(buf_.end(), s.begin(), s.end()); }
  /// Length-prefixed (u32) string.
  void str(std::string_view s);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder. Never throws: once any read runs
/// past the end, `ok()` turns false and every subsequent read returns zero.
/// Callers validate a whole message with a single `ok()` check at the end —
/// the right shape for parsing datagrams from an untrusted network.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  /// Reads `n` raw bytes; returns an empty span (and poisons the reader) if
  /// fewer remain.
  std::span<const std::uint8_t> bytes(std::size_t n);
  std::string str();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }

 private:
  bool take(void* out, std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace rtct
