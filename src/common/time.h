// Virtual-time representation shared by the whole library.
//
// All timing-sensitive code in rtct (the sync algorithms, the network model,
// the simulator) works on plain 64-bit nanosecond counts instead of
// std::chrono types so that values serialize directly onto the wire and the
// same arithmetic runs identically under the discrete-event simulator and
// the real-time driver.
#pragma once

#include <cstdint>
#include <string>

namespace rtct {

/// A point in time, nanoseconds since an arbitrary epoch (simulation start
/// or process start). Signed so that differences are representable directly.
using Time = std::int64_t;

/// A duration in nanoseconds. Negative durations are meaningful (e.g. the
/// paper's AdjustTimeDelta carries a *negative* lag to compensate).
using Dur = std::int64_t;

inline constexpr Dur kNanosecond = 1;
inline constexpr Dur kMicrosecond = 1000 * kNanosecond;
inline constexpr Dur kMillisecond = 1000 * kMicrosecond;
inline constexpr Dur kSecond = 1000 * kMillisecond;

constexpr Dur nanoseconds(std::int64_t n) { return n; }
constexpr Dur microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Dur milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Dur seconds(std::int64_t n) { return n * kSecond; }

/// Converts a duration to fractional milliseconds (for reporting only).
constexpr double to_ms(Dur d) { return static_cast<double>(d) / static_cast<double>(kMillisecond); }

/// Expected time per frame for a game that declares `cfps` frames/second.
/// The paper's CFPS is normally 60, giving 16.667 ms (§3.2).
constexpr Dur frame_period(int cfps) { return kSecond / cfps; }

/// Renders a duration as "12.345ms" for logs and reports.
std::string format_dur(Dur d);

}  // namespace rtct
