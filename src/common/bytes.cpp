#include "src/common/bytes.h"

namespace rtct {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v & 0xFF));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v & 0xFFFF));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool ByteReader::take(void* out, std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    std::memset(out, 0, n);
    return false;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  std::uint8_t v;
  take(&v, 1);
  return v;
}

std::uint16_t ByteReader::u16() {
  std::uint8_t b[2];
  take(b, 2);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return {};
  }
  auto s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  auto s = bytes(n);
  return std::string(s.begin(), s.end());
}

}  // namespace rtct
