// FNV-1a hashing used to fingerprint emulator state for convergence checks.
// The sync layer proves logical consistency (both replicas produced the same
// output-state sequence) by comparing these 64-bit digests per frame.
#pragma once

#include <cstdint>
#include <span>

namespace rtct {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Incremental FNV-1a-64. Cheap, deterministic, and dependency-free — we
/// are fingerprinting for *equality across replicas*, not for adversaries.
class Fnv1a64 {
 public:
  void update(std::span<const std::uint8_t> data);
  void update_u8(std::uint8_t b) { h_ = (h_ ^ b) * kFnvPrime; }
  void update_u16(std::uint16_t v) {
    update_u8(static_cast<std::uint8_t>(v & 0xFF));
    update_u8(static_cast<std::uint8_t>(v >> 8));
  }
  void update_u32(std::uint32_t v) {
    update_u16(static_cast<std::uint16_t>(v & 0xFFFF));
    update_u16(static_cast<std::uint16_t>(v >> 16));
  }
  void update_u64(std::uint64_t v) {
    update_u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
    update_u32(static_cast<std::uint32_t>(v >> 32));
  }
  [[nodiscard]] std::uint64_t digest() const { return h_; }

  // Byte-sink aliases so a Fnv1a64 satisfies the same sink shape as
  // ByteWriter (used by visit_state-style serialization hooks).
  void u8(std::uint8_t v) { update_u8(v); }
  void u16(std::uint16_t v) { update_u16(v); }
  void u32(std::uint32_t v) { update_u32(v); }
  void u64(std::uint64_t v) { update_u64(v); }

 private:
  std::uint64_t h_ = kFnvOffset;
};

/// One-shot convenience.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);

}  // namespace rtct
