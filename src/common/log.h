// Minimal leveled logging. Off by default so benches and tests stay quiet;
// examples flip the level up to narrate what the protocol is doing.
#pragma once

#include <sstream>
#include <string>

namespace rtct {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log threshold. Not thread-synchronized by design: it is set
/// once at startup before any worker threads exist.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace rtct

#define RTCT_LOG(level, expr)                                  \
  do {                                                         \
    if (static_cast<int>(level) >= static_cast<int>(::rtct::log_level())) { \
      std::ostringstream rtct_log_os;                          \
      rtct_log_os << expr;                                     \
      ::rtct::detail::log_line(level, rtct_log_os.str());      \
    }                                                          \
  } while (0)

#define RTCT_TRACE(expr) RTCT_LOG(::rtct::LogLevel::kTrace, expr)
#define RTCT_DEBUG(expr) RTCT_LOG(::rtct::LogLevel::kDebug, expr)
#define RTCT_INFO(expr) RTCT_LOG(::rtct::LogLevel::kInfo, expr)
#define RTCT_WARN(expr) RTCT_LOG(::rtct::LogLevel::kWarn, expr)
#define RTCT_ERROR(expr) RTCT_LOG(::rtct::LogLevel::kError, expr)
