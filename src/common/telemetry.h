// Counter/gauge/histogram registry — the process-local metrics surface the
// whole stack exports into (the paper's evaluation is a telemetry exercise:
// per-frame begin times shipped to a time server; this generalizes that to
// every protocol counter the reproduction keeps).
//
// Design: snapshot-style. Protocol objects keep their own cheap Stats
// structs on the hot path (no atomic, no locking, no string lookups per
// event) and export them into a MetricsRegistry on demand via their
// `export_metrics()` methods; the registry then serializes to JSON
// ("rtct.metrics.v1") or answers point lookups for the live --stats HUD.
// Instruments live behind stable dotted names (documented in README.md
// "Observability") so dashboards and the bench trajectory survive
// refactors of the structs behind them.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/json.h"

namespace rtct {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_ += d; }
  void set(std::uint64_t v) { v_ = v; }  ///< snapshot-style export
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Point-in-time measurement.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_ = 0;
};

/// Power-of-two bucketed distribution, sized for millisecond-scale
/// durations: bucket i counts samples <= 0.25 * 2^i ms (i < kBuckets-1),
/// the last bucket is the overflow. Keeps count/sum/min/max exactly; the
/// buckets give shape without retaining samples (Series keeps samples when
/// exact percentiles matter — 3 600-frame experiments are tiny; a
/// million-user ingest path is not).
class Histogram {
 public:
  static constexpr int kBuckets = 18;  ///< 0.25 ms .. 16.4 s, then +inf

  void observe(double x);
  /// Folds another histogram's samples into this one (per-shard stats
  /// aggregated at export time — the relay keeps one histogram per worker).
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }
  /// Upper bound of bucket `i` in ms (+inf for the last).
  static double bucket_bound(int i);

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Named instrument store. Instruments are created on first access and
/// live for the registry's lifetime (references stay valid — std::map
/// nodes are stable). Iteration order is lexicographic, which makes the
/// JSON output diffable.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Numeric lookup across counters and gauges (HUD / tests); nullopt when
  /// the name names neither.
  [[nodiscard]] std::optional<double> value(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Serializes the whole registry as a "rtct.metrics.v1" object.
  void write_json(JsonWriter& w) const;
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace rtct
