#include "src/common/hash.h"

namespace rtct {

void Fnv1a64::update(std::span<const std::uint8_t> data) {
  std::uint64_t h = h_;
  for (std::uint8_t b : data) h = (h ^ b) * kFnvPrime;
  h_ = h;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  Fnv1a64 h;
  h.update(data);
  return h.digest();
}

}  // namespace rtct
