#include "src/common/hash.h"

#include <bit>
#include <cstring>

namespace rtct {

void Fnv1a64::update(std::span<const std::uint8_t> data) {
  std::uint64_t h = h_;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  // FNV-1a is byte-serial by definition — each fold depends on the previous
  // one — so the folds cannot be widened without changing the digest. The
  // win here is one 8-byte load per chunk plus unrolled loop control, which
  // roughly halves the per-byte cost on the 32 KiB full-state hash. The
  // shift extraction below reads bytes in memory order only on a
  // little-endian host, so big-endian targets keep the plain loop.
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint64_t w;
      std::memcpy(&w, p, 8);
      h = (h ^ (w & 0xFF)) * kFnvPrime;
      h = (h ^ ((w >> 8) & 0xFF)) * kFnvPrime;
      h = (h ^ ((w >> 16) & 0xFF)) * kFnvPrime;
      h = (h ^ ((w >> 24) & 0xFF)) * kFnvPrime;
      h = (h ^ ((w >> 32) & 0xFF)) * kFnvPrime;
      h = (h ^ ((w >> 40) & 0xFF)) * kFnvPrime;
      h = (h ^ ((w >> 48) & 0xFF)) * kFnvPrime;
      h = (h ^ (w >> 56)) * kFnvPrime;
      p += 8;
      n -= 8;
    }
  }
  while (n--) h = (h ^ *p++) * kFnvPrime;
  h_ = h;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  Fnv1a64 h;
  h.update(data);
  return h.digest();
}

}  // namespace rtct
