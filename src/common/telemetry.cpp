#include "src/common/telemetry.h"

#include <cmath>
#include <limits>

namespace rtct {

void Histogram::observe(double x) {
  if (!std::isfinite(x)) return;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  int i = 0;
  double bound = 0.25;
  while (i < kBuckets - 1 && x > bound) {
    bound *= 2;
    ++i;
  }
  ++buckets_[static_cast<std::size_t>(i)];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
  }
}

double Histogram::bucket_bound(int i) {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return 0.25 * std::pow(2.0, i);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

std::optional<double> MetricsRegistry::value(std::string_view name) const {
  if (const auto it = counters_.find(name); it != counters_.end()) {
    return static_cast<double>(it->second.value());
  }
  if (const auto it = gauges_.find(name); it != gauges_.end()) return it->second.value();
  return std::nullopt;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("schema").value("rtct.metrics.v1");
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h.count());
    w.key("sum").value(h.sum());
    w.key("min").value(h.min());
    w.key("max").value(h.max());
    w.key("mean").value(h.mean());
    w.key("bucket_bounds_ms").begin_array();
    // The overflow bucket's +inf bound is implied by the shorter array.
    for (int i = 0; i < Histogram::kBuckets - 1; ++i) w.value(Histogram::bucket_bound(i));
    w.end_array();
    w.key("bucket_counts").begin_array();
    for (const auto n : h.buckets()) w.value(n);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

}  // namespace rtct
