// Minimal dependency-free JSON support for the observability layer: a
// streaming writer (metrics snapshots, timeline/bench exports) and a small
// recursive-descent reader (the rtct_trace CLI loads those exports back).
//
// Deliberately small: UTF-8 pass-through strings, numbers as double or
// i64/u64 on the writer side, objects parsed into std::map (key order is
// not preserved — none of our schemas depend on it).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace rtct {

/// Streaming JSON emitter producing compact (single-line) output. The
/// caller is responsible for well-formed nesting; violations (e.g. a value
/// with no pending key inside an object) are caught by assertions in
/// debug builds and produce invalid JSON rather than UB otherwise.
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Emits `"name":` — must be followed by exactly one value/container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(bool b);
  JsonWriter& null();

  [[nodiscard]] const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  JsonWriter& open(char c);
  JsonWriter& close(char c);
  void separate();  ///< emit ',' between siblings

  std::string out_;
  std::vector<bool> first_;  ///< per nesting level: no sibling emitted yet
  bool after_key_ = false;
};

/// Parsed JSON document node.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;
  using Storage = std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  JsonValue() : v_(nullptr) {}
  explicit JsonValue(Storage v) : v_(std::move(v)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  [[nodiscard]] double number_or(double fallback) const {
    const double* d = std::get_if<double>(&v_);
    return d != nullptr ? *d : fallback;
  }
  [[nodiscard]] const std::string* string() const { return std::get_if<std::string>(&v_); }
  [[nodiscard]] const Array* array() const { return std::get_if<Array>(&v_); }
  [[nodiscard]] const Object* object() const { return std::get_if<Object>(&v_); }

  /// Object member lookup; nullptr when not an object or key absent.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  Storage v_;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Returns nullopt on any syntax error.
std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace rtct
