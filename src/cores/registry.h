// The GameCore registry: pluggable deterministic cores behind one name
// scheme.
//
// A *core* is a virtual machine / simulation engine (AC16 arcade board,
// agent86 PC, native C++ games); a *game* is content a core can load. The
// registry resolves qualified names — "ac16:duel", "agent86:skirmish",
// "native:cellwars" — to fresh IDeterministicGame instances; bare names
// keep meaning "ac16:" for compatibility with every existing CLI flag,
// script and replay. Tools, the testbed and benches construct games only
// through here; the sync layer (src/core) still sees nothing but
// IDeterministicGame. That split is the paper's §2 transparency claim
// made structural: adding a core is adding a subdirectory, not touching
// the engine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/emu/game.h"

namespace rtct::cores {

inline constexpr std::string_view kDefaultCore = "ac16";

/// One pluggable simulation backend.
class GameCore {
 public:
  virtual ~GameCore() = default;

  /// Registry name ("ac16", "agent86", "native").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Names of the games this core bundles.
  [[nodiscard]] virtual std::vector<std::string_view> game_names() const = 0;

  /// Creates a fresh instance of a bundled game; nullptr when unknown.
  [[nodiscard]] virtual std::unique_ptr<emu::IDeterministicGame> make_game(
      std::string_view game) const = 0;

  /// Content id of a bundled game without constructing a machine (used for
  /// content-id scans). Default: instantiate and ask.
  [[nodiscard]] virtual std::uint64_t content_id(std::string_view game) const {
    const auto g = make_game(game);
    return g ? g->content_id() : 0;
  }
};

/// A "core:game" name split into its halves. Bare names resolve to the
/// default (AC16) core.
struct QualifiedName {
  std::string_view core;
  std::string_view game;
};
[[nodiscard]] QualifiedName split_qualified(std::string_view qualified);

/// One row of the full core/game catalogue.
struct GameEntry {
  std::string core;
  std::string game;
  std::uint64_t content_id = 0;
  [[nodiscard]] std::string qualified() const { return core + ":" + game; }
};

/// The process-wide registry. Built-in cores (ac16, agent86, native) are
/// registered on first use; register_core adds plugins on top.
class CoreRegistry {
 public:
  static CoreRegistry& instance();

  void register_core(std::unique_ptr<GameCore> core);
  [[nodiscard]] const GameCore* core(std::string_view name) const;
  [[nodiscard]] std::vector<const GameCore*> cores() const;

 private:
  CoreRegistry();
  std::vector<std::unique_ptr<GameCore>> cores_;
};

/// Resolves a (possibly qualified) game name to a fresh instance; nullptr
/// when the core or game is unknown.
std::unique_ptr<emu::IDeterministicGame> make_game(std::string_view qualified);

/// Re-instantiates whichever registered game has this content id (replay
/// and spectator tooling); nullptr when no bundled game matches.
std::unique_ptr<emu::IDeterministicGame> make_game_for_content(std::uint64_t content_id);

/// Qualified name for a content id, when some bundled game matches.
std::optional<std::string> find_content_name(std::uint64_t content_id);

/// Every (core, game) pair the registry knows, in stable order.
std::vector<GameEntry> list_games();

}  // namespace rtct::cores
