// agent86:pong — the classic, on the 64x32 agent86 screen. Intentionally
// shares its bare name with ac16:pong: the two images (and therefore
// content ids) differ, and the session handshake must refuse to pair them.
#include "src/cores/agent86/games.h"

namespace rtct::a86 {

namespace {
constexpr const char* kSource = R"asm(
; ---- agent86 pong ---------------------------------------------------------
VID     EQU 0B800h
INP     EQU 0F800h
STATE   EQU 0x0400
O_INIT  EQU 0        ; 0 until first frame ran
O_BX    EQU 2        ; ball x (0..63)
O_BY    EQU 4        ; ball y (0..31)
O_VX    EQU 6        ; ball x velocity (1 or -1)
O_VY    EQU 8
O_P0    EQU 10       ; paddle 0 top row (0..27, height 5)
O_P1    EQU 12
O_S0    EQU 14       ; scores
O_S1    EQU 16

        ORG 0x0100

frame:
        MOV SI, STATE
        MOV AX, [SI+O_INIT]
        CMP AX, 0
        JNZ run
        CALL reset_ball
        MOV AX, 13
        MOV [SI+O_P0], AX
        MOV [SI+O_P1], AX
        MOV AX, 1
        MOV [SI+O_INIT], AX
run:
        ; paddle 0 (player 0: up=1 down=2)
        MOV DI, INP
        MOVB AX, [DI]
        MOV BX, [SI+O_P0]
        MOV CX, AX
        AND CX, 1
        JZ p0_down
        CMP BX, 0
        JZ p0_down
        DEC BX
p0_down:
        MOV CX, AX
        AND CX, 2
        JZ p0_done
        CMP BX, 27
        JZ p0_done
        INC BX
p0_done:
        MOV [SI+O_P0], BX
        ; paddle 1
        MOVB AX, [DI+1]
        MOV BX, [SI+O_P1]
        MOV CX, AX
        AND CX, 1
        JZ p1_down
        CMP BX, 0
        JZ p1_down
        DEC BX
p1_down:
        MOV CX, AX
        AND CX, 2
        JZ p1_done
        CMP BX, 27
        JZ p1_done
        INC BX
p1_done:
        MOV [SI+O_P1], BX
        ; move ball
        MOV AX, [SI+O_BX]
        MOV BX, [SI+O_VX]
        ADD AX, BX
        MOV [SI+O_BX], AX
        MOV AX, [SI+O_BY]
        MOV BX, [SI+O_VY]
        ADD AX, BX
        MOV [SI+O_BY], AX
        ; top/bottom walls
        CMP AX, 0
        JNZ not_top
        MOV BX, 1
        MOV [SI+O_VY], BX
not_top:
        CMP AX, 31
        JNZ not_bot
        MOV BX, 0xFFFF
        MOV [SI+O_VY], BX
not_bot:
        ; left paddle face is column 2
        MOV AX, [SI+O_BX]
        CMP AX, 2
        JNZ no_lpad
        MOV AX, [SI+O_BY]
        MOV BX, [SI+O_P0]
        CMP AX, BX
        JC no_lpad          ; ball above paddle
        SUB AX, BX
        CMP AX, 5
        JNC no_lpad         ; ball below paddle
        MOV BX, 1
        MOV [SI+O_VX], BX
no_lpad:
        ; right paddle face is column 61
        MOV AX, [SI+O_BX]
        CMP AX, 61
        JNZ no_rpad
        MOV AX, [SI+O_BY]
        MOV BX, [SI+O_P1]
        CMP AX, BX
        JC no_rpad
        SUB AX, BX
        CMP AX, 5
        JNC no_rpad
        MOV BX, 0xFFFF
        MOV [SI+O_VX], BX
no_rpad:
        ; scoring
        MOV AX, [SI+O_BX]
        CMP AX, 0
        JNZ no_s1
        MOV AX, [SI+O_S1]
        INC AX
        MOV [SI+O_S1], AX
        CALL reset_ball
no_s1:
        MOV AX, [SI+O_BX]
        CMP AX, 63
        JNZ no_s0
        MOV AX, [SI+O_S0]
        INC AX
        MOV [SI+O_S0], AX
        CALL reset_ball
no_s0:
        CALL draw
        HLT
        JMP frame

; ---- serve: centre the ball, direction from score parity ------------------
reset_ball:
        MOV AX, 32
        MOV [SI+O_BX], AX
        MOV AX, 16
        MOV [SI+O_BY], AX
        MOV AX, [SI+O_S0]
        MOV BX, [SI+O_S1]
        ADD AX, BX
        AND AX, 1
        JZ rb_pos
        MOV AX, 0xFFFF
        JMP rb_set
rb_pos:
        MOV AX, 1
rb_set:
        MOV [SI+O_VX], AX
        MOV AX, 1
        MOV [SI+O_VY], AX
        RET

; ---- presentation ---------------------------------------------------------
draw:
        MOV DI, VID          ; clear 1024 words
        MOV CX, 1024
        MOV AX, 0
d_clr:
        MOV [DI], AX
        ADD DI, 2
        LOOP d_clr
        ; paddles (columns 1 and 62, 5 rows tall)
        MOV AX, [SI+O_P0]
        SHL AX, 6
        ADD AX, VID+1
        MOV DI, AX
        MOV BX, 10
        MOV CX, 5
d_pad0:
        MOVB [DI], BX
        ADD DI, 64
        LOOP d_pad0
        MOV AX, [SI+O_P1]
        SHL AX, 6
        ADD AX, VID+62
        MOV DI, AX
        MOV BX, 12
        MOV CX, 5
d_pad1:
        MOVB [DI], BX
        ADD DI, 64
        LOOP d_pad1
        ; ball
        MOV AX, [SI+O_BY]
        SHL AX, 6
        MOV BX, [SI+O_BX]
        ADD AX, BX
        ADD AX, VID
        MOV DI, AX
        MOV BX, 15
        MOVB [DI], BX
        ; score bars along row 0 (clamped to 30 cells)
        MOV CX, [SI+O_S0]
        CMP CX, 0
        JZ d_s0_done
        CMP CX, 30
        JC d_s0
        MOV CX, 30
d_s0:
        MOV DI, VID
        MOV BX, 6
d_s0_lp:
        MOVB [DI], BX
        INC DI
        LOOP d_s0_lp
d_s0_done:
        MOV CX, [SI+O_S1]
        CMP CX, 0
        JZ d_s1_done
        CMP CX, 30
        JC d_s1
        MOV CX, 30
d_s1:
        MOV DI, VID+63
        MOV BX, 13
d_s1_lp:
        MOVB [DI], BX
        DEC DI
        LOOP d_s1_lp
d_s1_done:
        RET

        ENTRY frame
)asm";
}  // namespace

const Program& pong_program() {
  static const Program program = detail::build_program("pong", kSource);
  return program;
}

}  // namespace rtct::a86
