// Agent86Machine: the complete second core — CPU, flat 64 KiB RAM,
// memory-mapped input block and text video — implementing the identical
// IDeterministicGame contract as AC16's ArcadeMachine. The sync layer
// (src/core) runs it without a single special case; that is the point.
//
// Determinism notes mirror AC16: pure 16-bit integer machine, all
// arithmetic wraps mod 2^16, inputs are latched into the 0xF800 block
// before the frame runs, and the per-frame cycle budget turns a runaway
// frame into a deterministic fault instead of a hang.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/cores/agent86/isa.h"
#include "src/emu/game.h"

namespace rtct::a86 {

struct MachineConfig {
  /// Per-frame cycle budget; exceeding it faults (a program must HLT once
  /// per frame, like real-mode code spinning on vsync).
  int cycles_per_frame = 50000;
};

class Agent86Machine final : public emu::IDeterministicGame, public emu::IRenderableGame {
 public:
  explicit Agent86Machine(Program program, MachineConfig cfg = {});

  // IDeterministicGame
  void reset() override;
  void step_frame(InputWord input) override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] std::uint64_t state_digest(int version) const override;
  [[nodiscard]] std::vector<std::uint64_t> page_digests() const override;
  [[nodiscard]] std::uint32_t page_digest_base() const override { return 0; }
  [[nodiscard]] std::vector<std::uint8_t> save_state() const override;
  void save_state_into(std::vector<std::uint8_t>& out) const override;
  bool load_state(std::span<const std::uint8_t> data) override;
  [[nodiscard]] FrameNo frame() const override { return frame_; }
  [[nodiscard]] std::uint64_t content_id() const override { return checksum_; }
  [[nodiscard]] std::string content_name() const override {
    return "agent86:" + program_.name;
  }
  [[nodiscard]] bool faulted() const override { return fault_ != Fault::kNone; }
  [[nodiscard]] const emu::IRenderableGame* renderable() const override { return this; }

  // IRenderableGame
  [[nodiscard]] int fb_cols() const override { return kFbCols; }
  [[nodiscard]] int fb_rows() const override { return kFbRows; }
  [[nodiscard]] std::span<const std::uint8_t> framebuffer() const override {
    return {mem_.data() + kVideoBase, kFbSize};
  }

  // Introspection (tests, tools, benches).
  [[nodiscard]] Fault fault() const { return fault_; }
  [[nodiscard]] std::uint16_t reg(Reg r) const { return regs_[r]; }
  [[nodiscard]] std::uint16_t ip() const { return ip_; }
  [[nodiscard]] std::uint16_t tone() const { return tone_; }
  [[nodiscard]] const Program& program() const { return program_; }
  [[nodiscard]] int last_frame_cycles() const { return last_frame_cycles_; }
  [[nodiscard]] const std::vector<std::uint16_t>& debug_log() const { return debug_log_; }

  /// Raw memory poke through the dirty-page tracker (tests and
  /// divergence-injection tooling only — a poked replica is desynced by
  /// construction, which is what the bisector tests want).
  void poke(std::uint16_t addr, std::uint8_t v) { write8(addr, v); }
  [[nodiscard]] std::uint8_t peek(std::uint16_t addr) const { return mem_[addr]; }
  [[nodiscard]] std::uint16_t peek16(std::uint16_t addr) const {
    return static_cast<std::uint16_t>(mem_[addr] |
                                      (mem_[static_cast<std::uint16_t>(addr + 1)] << 8));
  }

 private:
  static constexpr std::uint8_t kStateVersion = 1;

  void write8(std::uint16_t addr, std::uint8_t v) {
    mem_[addr] = v;
    const auto page = static_cast<std::size_t>(addr) >> kPageShift;
    dirty_[page >> 6] |= 1ull << (page & 63);
  }
  void write16(std::uint16_t addr, std::uint16_t v) {
    write8(addr, static_cast<std::uint8_t>(v & 0xFF));
    write8(static_cast<std::uint16_t>(addr + 1), static_cast<std::uint8_t>(v >> 8));
  }
  [[nodiscard]] std::uint16_t read16(std::uint16_t addr) const {
    return static_cast<std::uint16_t>(mem_[addr] |
                                      (mem_[static_cast<std::uint16_t>(addr + 1)] << 8));
  }

  /// Runs until HLT, a fault, or the cycle budget. Returns cycles used.
  int run_frame(int cycle_budget);

  template <typename Sink>
  void visit_cpu_state(Sink&& sink) const {
    for (const auto r : regs_) sink.u16(r);
    sink.u16(ip_);
    sink.u8(static_cast<std::uint8_t>((zf_ ? 1 : 0) | (sf_ ? 2 : 0) | (cf_ ? 4 : 0)));
    sink.u8(static_cast<std::uint8_t>(fault_));
  }

  void mark_all_pages_dirty() const;
  void refresh_dirty_pages() const;

  Program program_;
  std::uint64_t checksum_;  ///< cached Program::checksum()
  MachineConfig cfg_;
  std::vector<std::uint8_t> mem_;  ///< full flat 64 KiB
  std::uint16_t regs_[kNumRegs] = {};
  std::uint16_t ip_ = 0;
  bool zf_ = false, sf_ = false, cf_ = false;
  Fault fault_ = Fault::kNone;
  std::uint16_t tone_ = 0;
  FrameNo frame_ = 0;
  int last_frame_cycles_ = 0;
  std::vector<std::uint16_t> debug_log_;

  // Incremental-digest cache, same shape as ArcadeMachine's but covering
  // all 256 pages (there is no immutable region to exclude).
  mutable std::array<std::uint64_t, kNumPages> page_digest_{};
  mutable std::array<std::uint64_t, kNumPages / 64> dirty_{};
};

}  // namespace rtct::a86
