#include "src/cores/agent86/games.h"

#include <cstdio>
#include <cstdlib>

#include "src/cores/agent86/assembler.h"

namespace rtct::a86 {

namespace detail {

Program build_program(const std::string& name, const char* source) {
  auto result = assemble(source, name);
  if (!result.ok()) {
    std::fprintf(stderr, "agent86: bundled game '%s' failed to assemble:\n%s", name.c_str(),
                 result.error_text().c_str());
    std::abort();
  }
  return std::move(result.program);
}

}  // namespace detail

std::vector<std::string_view> game_names() { return {"skirmish", "pong", "havoc"}; }

const Program* program_by_name(std::string_view name) {
  if (name == "skirmish") return &skirmish_program();
  if (name == "pong") return &pong_program();
  if (name == "havoc") return &havoc_program();
  return nullptr;
}

std::unique_ptr<Agent86Machine> make_machine(std::string_view name, MachineConfig cfg) {
  const Program* program = program_by_name(name);
  if (program == nullptr) return nullptr;
  return std::make_unique<Agent86Machine>(*program, cfg);
}

}  // namespace rtct::a86
