// Bundled agent86 games: two-player programs written in agent86 assembly
// and assembled at startup (cached), mirroring src/games for AC16.
//
//   skirmish  two fighters: move, punch (range + cooldown), block, rounds
//   pong      deliberately shares its name with ac16:pong — same label,
//             different image, so cross-core pairing MUST be refused by
//             the content-id handshake (§2 "same game image")
//   havoc     determinism stressor: input-seeded xorshift PRNG scribbling
//             RAM and video, MUL mixing, deep CALL recursion
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/cores/agent86/isa.h"
#include "src/cores/agent86/machine.h"

namespace rtct::a86 {

/// Names of all bundled agent86 games.
std::vector<std::string_view> game_names();

/// Looks up a bundled game's assembled program; nullptr when unknown.
/// Programs are assembled once and cached for the process lifetime.
const Program* program_by_name(std::string_view name);

/// Creates a machine running a bundled game; nullptr when unknown.
std::unique_ptr<Agent86Machine> make_machine(std::string_view name, MachineConfig cfg = {});

const Program& skirmish_program();
const Program& pong_program();
const Program& havoc_program();

namespace detail {
/// Assembles a bundled source, aborting loudly on error (a bundled game
/// that does not assemble is a build defect, not a runtime condition).
Program build_program(const std::string& name, const char* source);
}  // namespace detail

}  // namespace rtct::a86
