// agent86 ISA: a compact 8086-flavored 16-bit virtual machine, the second
// deterministic core behind the GameCore registry.
//
// Where AC16 is a RISC-ish arcade board (fixed 4-byte instructions,
// immutable ROM, port-mapped IO), agent86 is deliberately the opposite
// shape — variable-length x86-style encodings, a flat fully *mutable*
// 64 KiB von Neumann memory (the program image lives in RAM and is hashed
// and serialized like any other state), and memory-mapped input/video.
// Running the identical sync stack over both is the paper's §2 game
// transparency claim demonstrated across VMs, not just across ROMs.
//
// Memory map (byte addresses, little-endian words, everything writable):
//   0x0000–0xFFFF  flat RAM; programs conventionally ORG 0x0100
//   0xB800–0xBFFF  text video, 64 cols x 32 rows, 1 byte = palette index
//   0xF800–0xF805  input block, rewritten by the machine at frame start:
//                    0xF800  player-0 button byte
//                    0xF801  player-1 button byte
//                    0xF802  frame counter low word
//                    0xF804  frame counter high word
//   stack grows down from 0xF7FE (just below the input block)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rtct::a86 {

inline constexpr std::size_t kMemSize = 0x10000;

inline constexpr std::uint16_t kVideoBase = 0xB800;
inline constexpr int kFbCols = 64;
inline constexpr int kFbRows = 32;
inline constexpr std::size_t kFbSize = kFbCols * kFbRows;  // 2048 bytes

inline constexpr std::uint16_t kInputBase = 0xF800;
inline constexpr std::uint16_t kInitialSp = 0xF7FE;
inline constexpr std::uint16_t kDefaultOrg = 0x0100;

/// Dirty-page geometry: 256 pages x 256 B cover the whole address space
/// (agent86 has no immutable region, so page 0 of page_digests() is
/// address 0x0000).
inline constexpr std::size_t kPageSize = 256;
inline constexpr int kPageShift = 8;
inline constexpr std::size_t kNumPages = kMemSize / kPageSize;  // 256

/// Register file: seven 16-bit registers. SP is architectural (PUSH/POP/
/// CALL/RET use it) but otherwise general-purpose; LOOP hardwires CX.
enum Reg : std::uint8_t { AX = 0, BX, CX, DX, SI, DI, SP, kNumRegs };

const char* reg_name(Reg r);

/// Opcode bytes. Operand encodings (instruction length includes opcode):
///   rr    one byte, (first operand << 4) | second operand
///   r     one byte, register index
///   imm   16-bit little-endian immediate
///   d8    unsigned 8-bit displacement added to the base register
///         (deviation from the 8086's signed disp8 — an unsigned byte
///         makes one base register cover a full 256 B state page)
enum Op : std::uint8_t {
  kNop = 0x00,   // 1 B
  kHlt = 0x01,   // 1 B — end of frame; execution resumes here next frame
  kInt3 = 0x02,  // 1 B — explicit trap, faults the machine

  kMovRI = 0x10,  // 4 B  MOV r, imm
  kMovRR = 0x11,  // 2 B  MOV r, r
  kLdB = 0x12,    // 3 B  MOVB r, [r+d8]   (zero-extended byte load)
  kLdW = 0x13,    // 3 B  MOV  r, [r+d8]
  kStB = 0x14,    // 3 B  MOVB [r+d8], r   (stores the low byte)
  kStW = 0x15,    // 3 B  MOV  [r+d8], r

  kAddRR = 0x20,  // 2 B
  kSubRR = 0x21,
  kAndRR = 0x22,
  kOrRR = 0x23,
  kXorRR = 0x24,
  kShlRR = 0x25,
  kShrRR = 0x26,
  kMulRR = 0x27,  // low 16 bits; CF = high word nonzero
  kNeg = 0x28,    // 2 B  [op][r]
  kNot = 0x29,
  kInc = 0x2A,
  kDec = 0x2B,

  kAddRI = 0x30,  // 4 B  [op][r][imm]
  kSubRI = 0x31,
  kAndRI = 0x32,
  kOrRI = 0x33,
  kXorRI = 0x34,
  kShlRI = 0x35,
  kShrRI = 0x36,
  kMulRI = 0x37,
  kCmpRR = 0x38,  // 2 B
  kCmpRI = 0x39,  // 4 B

  kJmp = 0x40,   // 3 B  [op][imm]
  kJz = 0x41,    // JZ/JE
  kJnz = 0x42,   // JNZ/JNE
  kJc = 0x43,    // JC/JB
  kJnc = 0x44,   // JNC/JAE
  kJs = 0x45,
  kJns = 0x46,
  kLoop = 0x47,  // DEC CX (flags untouched); jump while CX != 0
  kCall = 0x48,
  kRet = 0x49,  // 1 B
  kPush = 0x4A,  // 2 B  [op][r]
  kPop = 0x4B,

  kOut = 0x50,  // 3 B  [op][port][r] — port 0 debug log, port 1 tone
};

/// Execution faults. Same contract as AC16: a faulted machine stops making
/// progress (deterministically), and faults are bugs in the program.
enum class Fault : std::uint8_t {
  kNone = 0,
  kBadOpcode,
  kBadReg,          ///< operand byte names a register >= kNumRegs
  kTrap,            ///< INT3
  kBudgetExceeded,  ///< frame did not HLT within the cycle budget
};

const char* fault_name(Fault f);

/// Debug/tone output ports (OUT imm8, r).
inline constexpr std::uint8_t kPortDebug = 0;
inline constexpr std::uint8_t kPortTone = 1;

/// An assembled agent86 program: the byte image loaded at `org` on reset,
/// plus the entry point. The agent86 analogue of emu::Rom.
struct Program {
  std::string name;  ///< registry game name (e.g. "skirmish")
  std::vector<std::uint8_t> image;
  std::uint16_t org = kDefaultOrg;
  std::uint16_t entry = kDefaultOrg;

  /// Content identity: FNV-1a over a core-distinguishing domain tag, the
  /// load address, entry point and image bytes. The tag guarantees an
  /// agent86 game can never collide with an AC16 ROM of the same name —
  /// the session handshake must refuse cross-core pairs (§2 "same game
  /// image").
  [[nodiscard]] std::uint64_t checksum() const;
};

}  // namespace rtct::a86
