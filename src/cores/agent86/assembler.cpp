#include "src/cores/agent86/assembler.h"

#include <cctype>
#include <map>
#include <optional>

namespace rtct::a86 {

namespace {

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.';
}

std::optional<Reg> parse_reg(std::string_view tok) {
  const std::string u = upper(tok);
  if (u == "AX") return AX;
  if (u == "BX") return BX;
  if (u == "CX") return CX;
  if (u == "DX") return DX;
  if (u == "SI") return SI;
  if (u == "DI") return DI;
  if (u == "SP") return SP;
  return std::nullopt;
}

/// Parsed operand shape (values resolved lazily: `text` keeps the raw
/// expression so pass 2 can evaluate it with the full symbol table).
struct Operand {
  enum Kind { kReg, kMem, kExpr } kind = kExpr;
  Reg reg = AX;       // kReg: the register; kMem: the base register
  std::string text;   // kExpr: immediate expression; kMem: displacement ("" = 0)
};

// ---- expression evaluation (recursive descent) ----------------------------

class ExprParser {
 public:
  ExprParser(std::string_view s, const std::map<std::string, std::int64_t>& syms)
      : s_(s), syms_(syms) {}

  /// Returns nullopt and sets error() on failure.
  std::optional<std::int64_t> parse() {
    auto v = expr();
    skip_ws();
    if (v && pos_ != s_.size()) {
      err_ = "trailing characters in expression: '" + std::string(s_.substr(pos_)) + "'";
      return std::nullopt;
    }
    return v;
  }

  [[nodiscard]] const std::string& error() const { return err_; }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  std::optional<std::int64_t> expr() {
    auto lhs = term();
    if (!lhs) return std::nullopt;
    for (;;) {
      skip_ws();
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) {
        const char op = s_[pos_++];
        auto rhs = term();
        if (!rhs) return std::nullopt;
        *lhs = op == '+' ? *lhs + *rhs : *lhs - *rhs;
      } else {
        return lhs;
      }
    }
  }

  std::optional<std::int64_t> term() {
    auto lhs = factor();
    if (!lhs) return std::nullopt;
    for (;;) {
      skip_ws();
      if (pos_ < s_.size() && (s_[pos_] == '*' || s_[pos_] == '/' || s_[pos_] == '%')) {
        const char op = s_[pos_++];
        auto rhs = factor();
        if (!rhs) return std::nullopt;
        if ((op == '/' || op == '%') && *rhs == 0) {
          err_ = "division by zero";
          return std::nullopt;
        }
        *lhs = op == '*' ? *lhs * *rhs : op == '/' ? *lhs / *rhs : *lhs % *rhs;
      } else {
        return lhs;
      }
    }
  }

  std::optional<std::int64_t> factor() {
    skip_ws();
    if (pos_ >= s_.size()) {
      err_ = "expected value";
      return std::nullopt;
    }
    const char c = s_[pos_];
    if (c == '-') {
      ++pos_;
      auto v = factor();
      if (!v) return std::nullopt;
      return -*v;
    }
    if (c == '(') {
      ++pos_;
      auto v = expr();
      if (!v) return std::nullopt;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ')') {
        err_ = "missing ')'";
        return std::nullopt;
      }
      ++pos_;
      return v;
    }
    if (c == '\'') {
      if (pos_ + 2 >= s_.size() || s_[pos_ + 2] != '\'') {
        err_ = "malformed char literal";
        return std::nullopt;
      }
      const std::int64_t v = static_cast<unsigned char>(s_[pos_ + 1]);
      pos_ += 3;
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) return number();
    if (is_ident_start(c)) {
      const std::size_t start = pos_;
      while (pos_ < s_.size() && is_ident_char(s_[pos_])) ++pos_;
      const std::string name = upper(s_.substr(start, pos_ - start));
      const auto it = syms_.find(name);
      if (it == syms_.end()) {
        err_ = "undefined symbol '" + name + "'";
        return std::nullopt;
      }
      return it->second;
    }
    err_ = std::string("unexpected character '") + c + "'";
    return std::nullopt;
  }

  std::optional<std::int64_t> number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && std::isalnum(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
    std::string tok = upper(s_.substr(start, pos_ - start));
    int base = 10;
    if (tok.size() > 2 && tok[0] == '0' && tok[1] == 'X') {
      base = 16;
      tok = tok.substr(2);
    } else if (tok.size() > 2 && tok[0] == '0' && tok[1] == 'B' &&
               tok.find_first_not_of("01", 2) == std::string::npos) {
      base = 2;
      tok = tok.substr(2);
    } else if (tok.size() > 1 && tok.back() == 'H') {
      base = 16;  // 8086-style trailing-h hex (must start with a digit)
      tok.pop_back();
    }
    if (tok.empty()) {
      err_ = "malformed number";
      return std::nullopt;
    }
    std::int64_t v = 0;
    for (const char d : tok) {
      int digit;
      if (d >= '0' && d <= '9') digit = d - '0';
      else if (d >= 'A' && d <= 'F') digit = d - 'A' + 10;
      else digit = 99;
      if (digit >= base) {
        err_ = "malformed number '" + std::string(s_.substr(start, pos_ - start)) + "'";
        return std::nullopt;
      }
      v = v * base + digit;
      if (v > 0xFFFFFFFFll) {
        err_ = "number out of range";
        return std::nullopt;
      }
    }
    return v;
  }

  std::string_view s_;
  const std::map<std::string, std::int64_t>& syms_;
  std::size_t pos_ = 0;
  std::string err_;
};

// ---- statement model -------------------------------------------------------

struct Statement {
  int line = 0;
  std::string mnemonic;            // uppercased; empty for pure-label lines
  std::vector<std::string> args;   // raw operand texts (comma-split)
  std::uint32_t addr = 0;          // assigned in pass 1
  std::vector<Operand> ops;        // parsed operand shapes (instructions)
  bool bad = false;                // errored in pass 1; pass 2 skips it
};

/// Splits an operand list on commas that are not inside brackets/quotes.
std::vector<std::string> split_args(std::string_view s) {
  std::vector<std::string> out;
  int depth = 0;
  bool in_str = false, in_chr = false;
  std::string cur;
  for (const char c : s) {
    if (in_str) {
      cur += c;
      if (c == '"') in_str = false;
      continue;
    }
    if (in_chr) {
      cur += c;
      if (c == '\'') in_chr = false;
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '\'') in_chr = true;
    if (c == '[' || c == '(') ++depth;
    if (c == ']' || c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    cur += c;
  }
  if (!cur.empty()) out.push_back(cur);
  for (auto& a : out) {  // trim
    const auto b = a.find_first_not_of(" \t");
    const auto e = a.find_last_not_of(" \t");
    a = b == std::string::npos ? "" : a.substr(b, e - b + 1);
  }
  while (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

// ---- the assembler ---------------------------------------------------------

class Assembler {
 public:
  AsmResult run(std::string_view source, std::string name) {
    result_.program.name = std::move(name);
    parse_lines(source);
    pass1();
    // Pass 2 runs even after pass-1 errors (skipping the bad statements)
    // so later lines still get diagnostics; a program only ships clean.
    pass2();
    if (result_.ok()) {
      result_.program.org = static_cast<std::uint16_t>(org_);
      result_.program.entry =
          entry_.has_value() ? static_cast<std::uint16_t>(*entry_) : result_.program.org;
      result_.program.image = std::move(image_);
    }
    return std::move(result_);
  }

 private:
  void error(int line, std::string msg) { result_.errors.push_back({line, std::move(msg)}); }

  void parse_lines(std::string_view source) {
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t nl = source.find('\n', pos);
      std::string_view line =
          source.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
      pos = nl == std::string_view::npos ? source.size() + 1 : nl + 1;
      ++line_no;

      // Strip comments (respecting char/string literals).
      std::string clean;
      bool in_str = false, in_chr = false;
      for (const char c : line) {
        if (!in_str && !in_chr && (c == ';' || c == '#')) break;
        if (c == '"' && !in_chr) in_str = !in_str;
        if (c == '\'' && !in_str) in_chr = !in_chr;
        clean += c;
      }
      // Leading label(s).
      std::string_view rest = clean;
      for (;;) {
        const auto b = rest.find_first_not_of(" \t");
        if (b == std::string_view::npos) {
          rest = {};
          break;
        }
        rest = rest.substr(b);
        std::size_t i = 0;
        while (i < rest.size() && is_ident_char(rest[i])) ++i;
        if (i > 0 && i < rest.size() && rest[i] == ':' && is_ident_start(rest[0])) {
          Statement label_stmt;
          label_stmt.line = line_no;
          label_stmt.mnemonic = "";
          label_stmt.args.push_back(upper(rest.substr(0, i)));
          stmts_.push_back(std::move(label_stmt));
          rest = rest.substr(i + 1);
          continue;
        }
        break;
      }
      if (rest.empty()) continue;

      // First token = mnemonic/directive — unless the second token is EQU
      // ("NAME EQU expr", 8086 style).
      std::size_t i = 0;
      while (i < rest.size() && !std::isspace(static_cast<unsigned char>(rest[i]))) ++i;
      std::string first = upper(rest.substr(0, i));
      std::string_view tail = rest.substr(i);
      const auto tb = tail.find_first_not_of(" \t");
      tail = tb == std::string_view::npos ? std::string_view{} : tail.substr(tb);

      std::size_t j = 0;
      while (j < tail.size() && !std::isspace(static_cast<unsigned char>(tail[j]))) ++j;
      if (upper(tail.substr(0, j)) == "EQU") {
        Statement st;
        st.line = line_no;
        st.mnemonic = "EQU";
        st.args.push_back(first);
        std::string_view expr = tail.substr(j);
        const auto eb = expr.find_first_not_of(" \t");
        st.args.push_back(eb == std::string_view::npos ? "" : std::string(expr.substr(eb)));
        stmts_.push_back(std::move(st));
        continue;
      }

      Statement st;
      st.line = line_no;
      st.mnemonic = std::move(first);
      st.args = split_args(tail);
      stmts_.push_back(std::move(st));
    }
  }

  std::optional<std::int64_t> eval(int line, std::string_view text) {
    ExprParser p(text, syms_);
    auto v = p.parse();
    if (!v) error(line, p.error());
    return v;
  }

  /// Parses an operand's *shape* (pass 1 — no symbol values needed).
  std::optional<Operand> parse_operand(int line, const std::string& text) {
    Operand op;
    if (text.empty()) {
      error(line, "empty operand");
      return std::nullopt;
    }
    if (text.front() == '[') {
      if (text.back() != ']') {
        error(line, "missing ']' in memory operand");
        return std::nullopt;
      }
      std::string inner = text.substr(1, text.size() - 2);
      const auto b = inner.find_first_not_of(" \t");
      if (b == std::string::npos) {
        error(line, "empty memory operand");
        return std::nullopt;
      }
      inner = inner.substr(b);
      std::size_t i = 0;
      while (i < inner.size() && is_ident_char(inner[i])) ++i;
      const auto base = parse_reg(std::string_view(inner).substr(0, i));
      if (!base) {
        error(line, "memory operand must be [REG] or [REG+disp]");
        return std::nullopt;
      }
      op.kind = Operand::kMem;
      op.reg = *base;
      std::string_view rest = std::string_view(inner).substr(i);
      const auto rb = rest.find_first_not_of(" \t");
      if (rb != std::string_view::npos) {
        rest = rest.substr(rb);
        if (rest.front() != '+') {
          error(line, "memory displacement must be written [REG+expr]");
          return std::nullopt;
        }
        op.text = std::string(rest.substr(1));
      }
      return op;
    }
    if (const auto r = parse_reg(text)) {
      op.kind = Operand::kReg;
      op.reg = *r;
      return op;
    }
    op.kind = Operand::kExpr;
    op.text = text;
    return op;
  }

  /// Instruction size in bytes from mnemonic + operand shapes; 0 = error.
  std::size_t instr_size(const Statement& st) {
    const std::string& m = st.mnemonic;
    const auto& ops = st.ops;
    const auto shapes_are = [&](Operand::Kind a, Operand::Kind b) {
      return ops.size() == 2 && ops[0].kind == a && ops[1].kind == b;
    };
    if (m == "NOP" || m == "HLT" || m == "INT3" || m == "RET") {
      if (!ops.empty()) { error(st.line, m + " takes no operands"); return 0; }
      return 1;
    }
    if (m == "JMP" || m == "JZ" || m == "JE" || m == "JNZ" || m == "JNE" || m == "JC" ||
        m == "JB" || m == "JNC" || m == "JAE" || m == "JS" || m == "JNS" || m == "LOOP" ||
        m == "CALL") {
      if (ops.size() != 1 || ops[0].kind != Operand::kExpr) {
        error(st.line, m + " takes one address expression");
        return 0;
      }
      return 3;
    }
    if (m == "PUSH" || m == "POP" || m == "NEG" || m == "NOT" || m == "INC" || m == "DEC") {
      if (ops.size() != 1 || ops[0].kind != Operand::kReg) {
        error(st.line, m + " takes one register");
        return 0;
      }
      return 2;
    }
    if (m == "OUT") {
      if (!shapes_are(Operand::kExpr, Operand::kReg)) {
        error(st.line, "OUT takes a port number and a register");
        return 0;
      }
      return 3;
    }
    if (m == "ADD" || m == "SUB" || m == "AND" || m == "OR" || m == "XOR" || m == "SHL" ||
        m == "SHR" || m == "MUL" || m == "CMP") {
      if (shapes_are(Operand::kReg, Operand::kReg)) return 2;
      if (shapes_are(Operand::kReg, Operand::kExpr)) return 4;
      error(st.line, m + " takes REG, REG or REG, imm");
      return 0;
    }
    if (m == "MOV") {
      if (shapes_are(Operand::kReg, Operand::kExpr)) return 4;
      if (shapes_are(Operand::kReg, Operand::kReg)) return 2;
      if (shapes_are(Operand::kReg, Operand::kMem) || shapes_are(Operand::kMem, Operand::kReg))
        return 3;
      error(st.line, "MOV operands must be REG,imm / REG,REG / REG,[mem] / [mem],REG");
      return 0;
    }
    if (m == "MOVB") {
      if (shapes_are(Operand::kReg, Operand::kMem) || shapes_are(Operand::kMem, Operand::kReg))
        return 3;
      error(st.line, "MOVB operands must be REG,[mem] or [mem],REG");
      return 0;
    }
    error(st.line, "unknown mnemonic '" + m + "'");
    return 0;
  }

  void pass1() {
    std::int64_t pc = -1;  // -1 = org not pinned yet (set by first ORG or first emission)
    bool emitted = false;
    const auto pin = [&]() {
      if (pc < 0) {
        org_ = kDefaultOrg;
        pc = kDefaultOrg;
      }
    };
    bool overflow = false;
    for (auto& st : stmts_) {
      const std::size_t errs_before = result_.errors.size();
      [&] {
        if (st.mnemonic.empty()) {  // label
          pin();
          const std::string& name = st.args[0];
          if (parse_reg(name) || syms_.count(name) != 0) {
            error(st.line, "duplicate or reserved symbol '" + name + "'");
            return;
          }
          syms_[name] = pc;
          return;
        }
        if (st.mnemonic == "EQU") {
          const std::string name = upper(st.args[0]);
          if (parse_reg(name) || syms_.count(name) != 0) {
            error(st.line, "duplicate or reserved symbol '" + name + "'");
            return;
          }
          const auto v = eval(st.line, st.args[1]);
          if (v) syms_[name] = *v;
          return;
        }
        if (st.mnemonic == "ORG") {
          if (st.args.size() != 1) { error(st.line, "ORG takes one expression"); return; }
          const auto v = eval(st.line, st.args[0]);
          if (!v) return;
          if (*v < 0 || *v >= static_cast<std::int64_t>(kMemSize)) {
            error(st.line, "ORG out of range");
            return;
          }
          if (!emitted && pc < 0) {
            org_ = *v;
            pc = *v;
          } else if (*v < pc) {
            error(st.line, "ORG may not move backwards");
            return;
          } else {
            pc = *v;
          }
          st.addr = static_cast<std::uint32_t>(pc);
          return;
        }
        if (st.mnemonic == "ENTRY") {
          return;  // evaluated in pass 2 (forward label refs allowed)
        }
        pin();
        st.addr = static_cast<std::uint32_t>(pc);
        std::size_t size = 0;
        if (st.mnemonic == "DB") {
          for (const auto& a : st.args) {
            if (a.size() >= 2 && a.front() == '"' && a.back() == '"') size += a.size() - 2;
            else size += 1;
          }
          if (st.args.empty()) error(st.line, "DB needs operands");
        } else if (st.mnemonic == "DW") {
          size = st.args.size() * 2;
          if (st.args.empty()) error(st.line, "DW needs operands");
        } else if (st.mnemonic == "RESB") {
          if (st.args.size() != 1) { error(st.line, "RESB takes one expression"); return; }
          const auto v = eval(st.line, st.args[0]);
          if (!v || *v < 0 || *v > static_cast<std::int64_t>(kMemSize)) {
            if (v) error(st.line, "RESB size out of range");
            return;
          }
          size = static_cast<std::size_t>(*v);
        } else {
          bool ops_ok = true;
          for (const auto& a : st.args) {
            auto op = parse_operand(st.line, a);
            if (!op) {
              ops_ok = false;
              break;
            }
            st.ops.push_back(std::move(*op));
          }
          if (ops_ok) size = instr_size(st);
        }
        pc += static_cast<std::int64_t>(size);
        emitted = emitted || size > 0;
        if (pc > static_cast<std::int64_t>(kMemSize)) {
          error(st.line, "program exceeds 64 KiB address space");
          overflow = true;
        }
      }();
      st.bad = result_.errors.size() > errs_before;
      if (overflow) return;
    }
    if (pc < 0) {
      org_ = kDefaultOrg;
      pc = kDefaultOrg;
    }
    end_ = pc;
  }

  void emit8(std::int64_t v) { image_.push_back(static_cast<std::uint8_t>(v & 0xFF)); }
  void emit16(std::int64_t v) {
    emit8(v & 0xFF);
    emit8((v >> 8) & 0xFF);
  }

  /// Evaluates to a 16-bit value (immediates/addresses wrap like the CPU).
  std::optional<std::uint16_t> eval16(int line, std::string_view text) {
    const auto v = eval(line, text);
    if (!v) return std::nullopt;
    if (*v < -0x8000 || *v > 0xFFFF) {
      error(line, "value out of 16-bit range");
      return std::nullopt;
    }
    return static_cast<std::uint16_t>(*v & 0xFFFF);
  }

  std::optional<std::uint8_t> eval_disp(int line, const Operand& op) {
    if (op.text.empty()) return 0;
    const auto v = eval(line, op.text);
    if (!v) return std::nullopt;
    if (*v < 0 || *v > 0xFF) {
      error(line, "memory displacement must be 0..255");
      return std::nullopt;
    }
    return static_cast<std::uint8_t>(*v);
  }

  void pass2() {
    for (const auto& st : stmts_) {
      if (st.bad || st.mnemonic.empty() || st.mnemonic == "EQU") continue;
      if (st.mnemonic == "ORG") {
        const auto target = static_cast<std::size_t>(st.addr - static_cast<std::uint32_t>(org_));
        while (image_.size() < target) emit8(0);
        continue;
      }
      if (st.mnemonic == "ENTRY") {
        if (st.args.size() != 1) { error(st.line, "ENTRY takes one expression"); continue; }
        const auto v = eval16(st.line, st.args[0]);
        if (v) entry_ = *v;
        continue;
      }
      if (st.mnemonic == "DB") {
        for (const auto& a : st.args) {
          if (a.size() >= 2 && a.front() == '"' && a.back() == '"') {
            for (std::size_t i = 1; i + 1 < a.size(); ++i) emit8(a[i]);
          } else {
            const auto v = eval(st.line, a);
            if (v) emit8(*v);
            else emit8(0);
          }
        }
        continue;
      }
      if (st.mnemonic == "DW") {
        for (const auto& a : st.args) {
          const auto v = eval16(st.line, a);
          emit16(v ? *v : 0);
        }
        continue;
      }
      if (st.mnemonic == "RESB") {
        const auto v = eval(st.line, st.args[0]);
        for (std::int64_t i = 0; v && i < *v; ++i) emit8(0);
        continue;
      }
      encode(st);
    }
  }

  void encode(const Statement& st) {
    const std::string& m = st.mnemonic;
    const auto& ops = st.ops;
    const auto rr = [](Reg a, Reg b) {
      return static_cast<std::uint8_t>((a << 4) | b);
    };
    if (m == "NOP") { emit8(kNop); return; }
    if (m == "HLT") { emit8(kHlt); return; }
    if (m == "INT3") { emit8(kInt3); return; }
    if (m == "RET") { emit8(kRet); return; }

    static const std::map<std::string, Op> kJumps = {
        {"JMP", kJmp}, {"JZ", kJz},   {"JE", kJz},   {"JNZ", kJnz}, {"JNE", kJnz},
        {"JC", kJc},   {"JB", kJc},   {"JNC", kJnc}, {"JAE", kJnc}, {"JS", kJs},
        {"JNS", kJns}, {"LOOP", kLoop}, {"CALL", kCall}};
    if (const auto it = kJumps.find(m); it != kJumps.end()) {
      emit8(it->second);
      const auto v = eval16(st.line, ops[0].text);
      emit16(v ? *v : 0);
      return;
    }

    static const std::map<std::string, Op> kUnary = {
        {"PUSH", kPush}, {"POP", kPop}, {"NEG", kNeg}, {"NOT", kNot},
        {"INC", kInc},   {"DEC", kDec}};
    if (const auto it = kUnary.find(m); it != kUnary.end()) {
      emit8(it->second);
      emit8(ops[0].reg);
      return;
    }

    if (m == "OUT") {
      const auto port = eval(st.line, ops[0].text);
      if (port && (*port < 0 || *port > 0xFF)) error(st.line, "port must be 0..255");
      emit8(kOut);
      emit8(port ? *port : 0);
      emit8(ops[1].reg);
      return;
    }

    static const std::map<std::string, int> kAlu = {{"ADD", 0}, {"SUB", 1}, {"AND", 2},
                                                    {"OR", 3},  {"XOR", 4}, {"SHL", 5},
                                                    {"SHR", 6}, {"MUL", 7}};
    if (const auto it = kAlu.find(m); it != kAlu.end()) {
      if (ops[1].kind == Operand::kReg) {
        emit8(kAddRR + it->second);
        emit8(rr(ops[0].reg, ops[1].reg));
      } else {
        emit8(kAddRI + it->second);
        emit8(ops[0].reg);
        const auto v = eval16(st.line, ops[1].text);
        emit16(v ? *v : 0);
      }
      return;
    }
    if (m == "CMP") {
      if (ops[1].kind == Operand::kReg) {
        emit8(kCmpRR);
        emit8(rr(ops[0].reg, ops[1].reg));
      } else {
        emit8(kCmpRI);
        emit8(ops[0].reg);
        const auto v = eval16(st.line, ops[1].text);
        emit16(v ? *v : 0);
      }
      return;
    }

    if (m == "MOV" || m == "MOVB") {
      const bool byte = m == "MOVB";
      if (!byte && ops[0].kind == Operand::kReg && ops[1].kind == Operand::kExpr) {
        emit8(kMovRI);
        emit8(ops[0].reg);
        const auto v = eval16(st.line, ops[1].text);
        emit16(v ? *v : 0);
        return;
      }
      if (!byte && ops[0].kind == Operand::kReg && ops[1].kind == Operand::kReg) {
        emit8(kMovRR);
        emit8(rr(ops[0].reg, ops[1].reg));
        return;
      }
      if (ops[0].kind == Operand::kReg && ops[1].kind == Operand::kMem) {
        emit8(byte ? kLdB : kLdW);
        emit8(rr(ops[0].reg, ops[1].reg));
        const auto d = eval_disp(st.line, ops[1]);
        emit8(d ? *d : 0);
        return;
      }
      if (ops[0].kind == Operand::kMem && ops[1].kind == Operand::kReg) {
        emit8(byte ? kStB : kStW);
        emit8(rr(ops[0].reg, ops[1].reg));
        const auto d = eval_disp(st.line, ops[0]);
        emit8(d ? *d : 0);
        return;
      }
    }
    error(st.line, "internal: unencodable statement");  // instr_size screens shapes
  }

  AsmResult result_;
  std::vector<Statement> stmts_;
  std::map<std::string, std::int64_t> syms_;
  std::vector<std::uint8_t> image_;
  std::int64_t org_ = kDefaultOrg;
  std::int64_t end_ = 0;
  std::optional<std::uint16_t> entry_;
};

}  // namespace

std::string AsmResult::error_text() const {
  std::string out;
  for (const auto& e : errors) {
    out += "line " + std::to_string(e.line) + ": " + e.message + "\n";
  }
  return out;
}

AsmResult assemble(std::string_view source, std::string name) {
  Assembler a;
  return a.run(source, std::move(name));
}

}  // namespace rtct::a86
