// Two-pass agent86 assembler.
//
// The bundled agent86 games are written in this 8086-flavored assembly and
// assembled at startup, mirroring how the AC16 games are built — the game
// stays genuinely separate from the engine.
//
// Syntax (case-insensitive keywords, one statement per line):
//   ; comment (also "#")
//   label:                      ; defines `label` = current address
//   ORG expr                    ; move assembly origin (default 0x0100)
//   NAME EQU expr               ; define constant (backward refs only)
//   ENTRY expr                  ; set entry point (default = first ORG)
//   DB expr|"string", ...       ; emit bytes
//   DW expr, ...                ; emit little-endian words
//   RESB expr                   ; emit zero bytes
//   MNEMONIC operands           ; see isa.h
//
// Operands: registers AX BX CX DX SI DI SP; memory as [REG] / [REG+expr]
// (displacement is an unsigned byte, 0..255); immediates are expressions
// over decimal / 0x / 0b / trailing-h hex / 'c' char literals, labels and
// EQU symbols, with + - * / %, unary -, and parentheses.
// Mnemonic aliases: JE=JZ, JNE=JNZ, JB=JC, JAE=JNC.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/cores/agent86/isa.h"

namespace rtct::a86 {

struct AsmError {
  int line = 0;  ///< 1-based source line
  std::string message;
};

struct AsmResult {
  Program program;
  std::vector<AsmError> errors;
  [[nodiscard]] bool ok() const { return errors.empty(); }
  /// All errors joined, one per line — for test failure messages.
  [[nodiscard]] std::string error_text() const;
};

/// Assembles agent86 source into a Program. Never throws; syntax problems
/// are reported per line in the result.
AsmResult assemble(std::string_view source, std::string name = "untitled");

}  // namespace rtct::a86
