#include "src/cores/agent86/isa.h"

#include <span>
#include <string_view>

#include "src/common/hash.h"

namespace rtct::a86 {

const char* reg_name(Reg r) {
  switch (r) {
    case AX: return "AX";
    case BX: return "BX";
    case CX: return "CX";
    case DX: return "DX";
    case SI: return "SI";
    case DI: return "DI";
    case SP: return "SP";
    default: return "R?";
  }
}

const char* fault_name(Fault f) {
  switch (f) {
    case Fault::kNone: return "none";
    case Fault::kBadOpcode: return "bad-opcode";
    case Fault::kBadReg: return "bad-register";
    case Fault::kTrap: return "trap";
    case Fault::kBudgetExceeded: return "budget-exceeded";
  }
  return "?";
}

std::uint64_t Program::checksum() const {
  Fnv1a64 h;
  for (const char c : std::string_view("agent86")) h.update_u8(static_cast<std::uint8_t>(c));
  h.update_u16(org);
  h.update_u16(entry);
  h.update(std::span<const std::uint8_t>(image.data(), image.size()));
  return h.digest();
}

}  // namespace rtct::a86
