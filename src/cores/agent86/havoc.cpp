// agent86:havoc — the determinism stressor (agent86's "torture"). Mixes
// both players' inputs and the frame counter into a 16-bit xorshift PRNG,
// scribbles 256 pseudo-random bytes across a wandering window, splashes a
// video row, and runs an 8-deep CALL chain so the stack page churns too.
// Every byte it touches is synchronized state: any replica divergence
// (missed input, bad rollback, stale page digest) amplifies within frames.
#include "src/cores/agent86/games.h"

namespace rtct::a86 {

namespace {
constexpr const char* kSource = R"asm(
; ---- agent86 havoc --------------------------------------------------------
VID     EQU 0B800h
INP     EQU 0F800h
STATE   EQU 0x0400
O_RNG   EQU 2
O_PTR   EQU 4

        ORG 0x0100

frame:
        MOV SI, STATE
        ; fold inputs + frame number into the PRNG state
        MOV DI, INP
        MOVB AX, [DI]
        MOVB BX, [DI+1]
        SHL BX, 8
        OR AX, BX
        MOV BX, [DI+2]       ; frame counter low word
        XOR AX, BX
        MOV BX, [SI+O_RNG]
        XOR AX, BX
        ; 16-bit xorshift (7, 9, 8)
        MOV BX, AX
        SHL BX, 7
        XOR AX, BX
        MOV BX, AX
        SHR BX, 9
        XOR AX, BX
        MOV BX, AX
        SHL BX, 8
        XOR AX, BX
        MOV [SI+O_RNG], AX
        ; scribble 256 bytes over a wandering window in 0x2000..0x5FFF
        MOV DI, [SI+O_PTR]
        AND DI, 0x3FFF
        ADD DI, 0x2000
        MOV CX, 256
scrib:
        MUL AX, 31
        ADD AX, CX
        MOVB [DI], AX
        INC DI
        LOOP scrib
        ; advance the window by a prime so pages interleave across frames
        MOV DI, [SI+O_PTR]
        ADD DI, 509
        MOV [SI+O_PTR], DI
        ; splash video row (frame & 31)
        MOV DI, INP
        MOV BX, [DI+2]
        AND BX, 31
        SHL BX, 6
        ADD BX, VID
        MOV DI, BX
        MOV CX, 64
vid_lp:
        MOVB [DI], AX
        MUL AX, 13
        ADD AX, 7
        INC DI
        LOOP vid_lp
        ; 8-deep recursive mix (stack page traffic)
        MOV CX, 8
        CALL rec
        MOV BX, [SI+O_RNG]
        XOR BX, AX
        MOV [SI+O_RNG], BX
        HLT
        JMP frame

rec:
        MUL AX, 33
        ADD AX, CX
        DEC CX
        JZ rec_done
        CALL rec
rec_done:
        RET

        ENTRY frame
)asm";
}  // namespace

const Program& havoc_program() {
  static const Program program = detail::build_program("havoc", kSource);
  return program;
}

}  // namespace rtct::a86
