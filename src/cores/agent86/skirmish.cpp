// agent86:skirmish — a minimal two-player fighter: walk, punch (range 2,
// 12-frame cooldown), block, knockback, best-of rounds with HP bars.
#include "src/cores/agent86/games.h"

namespace rtct::a86 {

namespace {
constexpr const char* kSource = R"asm(
; ---- agent86 skirmish -----------------------------------------------------
VID     EQU 0B800h
INP     EQU 0F800h
STATE   EQU 0x0400
O_INIT  EQU 0
O_X0    EQU 2        ; fighter positions (1..62)
O_X1    EQU 4
O_HP0   EQU 6        ; hit points (10 per round)
O_HP1   EQU 8
O_CD0   EQU 10       ; punch cooldowns
O_CD1   EQU 12
O_SC0   EQU 14       ; rounds won
O_SC1   EQU 16

        ORG 0x0100

frame:
        MOV SI, STATE
        MOV AX, [SI+O_INIT]
        CMP AX, 0
        JNZ run
        CALL round_reset
        MOV AX, 1
        MOV [SI+O_INIT], AX
run:
        ; tick down punch cooldowns
        MOV AX, [SI+O_CD0]
        CMP AX, 0
        JZ cd0_done
        DEC AX
        MOV [SI+O_CD0], AX
cd0_done:
        MOV AX, [SI+O_CD1]
        CMP AX, 0
        JZ cd1_done
        DEC AX
        MOV [SI+O_CD1], AX
cd1_done:
        ; ---- movement (left=4 right=8) ----
        MOV DI, INP
        MOVB AX, [DI]
        MOV BX, [SI+O_X0]
        MOV CX, AX
        AND CX, 4
        JZ p0_right
        CMP BX, 1
        JZ p0_right
        DEC BX
p0_right:
        MOV CX, AX
        AND CX, 8
        JZ p0_move_done
        CMP BX, 62
        JZ p0_move_done
        INC BX
p0_move_done:
        MOV [SI+O_X0], BX
        MOVB AX, [DI+1]
        MOV BX, [SI+O_X1]
        MOV CX, AX
        AND CX, 4
        JZ p1_right
        CMP BX, 1
        JZ p1_right
        DEC BX
p1_right:
        MOV CX, AX
        AND CX, 8
        JZ p1_move_done
        CMP BX, 62
        JZ p1_move_done
        INC BX
p1_move_done:
        MOV [SI+O_X1], BX
        ; ---- player 0 punch (A=16; blocked by opponent's B=32) ----
        MOVB AX, [DI]
        AND AX, 16
        JZ p0_punch_done
        MOV AX, [SI+O_CD0]
        CMP AX, 0
        JNZ p0_punch_done
        MOV AX, 12
        MOV [SI+O_CD0], AX
        CALL fighters_dist
        CMP AX, 3
        JNC p0_punch_done    ; out of range
        MOVB AX, [DI+1]
        AND AX, 32
        JNZ p0_punch_done    ; blocked
        MOV AX, [SI+O_HP1]
        CMP AX, 0
        JZ p0_punch_done
        DEC AX
        MOV [SI+O_HP1], AX
        ; knock p1 away from p0
        MOV AX, [SI+O_X1]
        MOV BX, [SI+O_X0]
        CMP AX, BX
        JC p0_kb_left
        ADD AX, 3
        CMP AX, 62
        JC p0_kb_store
        MOV AX, 62
        JMP p0_kb_store
p0_kb_left:
        SUB AX, 3
        JNS p0_kb_clamped
        MOV AX, 1
p0_kb_clamped:
        CMP AX, 1
        JNC p0_kb_store
        MOV AX, 1
p0_kb_store:
        MOV [SI+O_X1], AX
p0_punch_done:
        ; ---- player 1 punch (mirror) ----
        MOVB AX, [DI+1]
        AND AX, 16
        JZ p1_punch_done
        MOV AX, [SI+O_CD1]
        CMP AX, 0
        JNZ p1_punch_done
        MOV AX, 12
        MOV [SI+O_CD1], AX
        CALL fighters_dist
        CMP AX, 3
        JNC p1_punch_done
        MOVB AX, [DI]
        AND AX, 32
        JNZ p1_punch_done
        MOV AX, [SI+O_HP0]
        CMP AX, 0
        JZ p1_punch_done
        DEC AX
        MOV [SI+O_HP0], AX
        MOV AX, [SI+O_X0]
        MOV BX, [SI+O_X1]
        CMP AX, BX
        JC p1_kb_left
        ADD AX, 3
        CMP AX, 62
        JC p1_kb_store
        MOV AX, 62
        JMP p1_kb_store
p1_kb_left:
        SUB AX, 3
        JNS p1_kb_clamped
        MOV AX, 1
p1_kb_clamped:
        CMP AX, 1
        JNC p1_kb_store
        MOV AX, 1
p1_kb_store:
        MOV [SI+O_X0], AX
p1_punch_done:
        ; ---- round scoring ----
        MOV AX, [SI+O_HP1]
        CMP AX, 0
        JNZ chk_hp0
        MOV AX, [SI+O_SC0]
        INC AX
        MOV [SI+O_SC0], AX
        CALL round_reset
chk_hp0:
        MOV AX, [SI+O_HP0]
        CMP AX, 0
        JNZ rounds_done
        MOV AX, [SI+O_SC1]
        INC AX
        MOV [SI+O_SC1], AX
        CALL round_reset
rounds_done:
        CALL draw
        HLT
        JMP frame

; ---- AX = |x0 - x1| -------------------------------------------------------
fighters_dist:
        MOV AX, [SI+O_X0]
        MOV BX, [SI+O_X1]
        SUB AX, BX
        JNS fd_done
        NEG AX
fd_done:
        RET

round_reset:
        MOV AX, 20
        MOV [SI+O_X0], AX
        MOV AX, 44
        MOV [SI+O_X1], AX
        MOV AX, 10
        MOV [SI+O_HP0], AX
        MOV [SI+O_HP1], AX
        MOV AX, 0
        MOV [SI+O_CD0], AX
        MOV [SI+O_CD1], AX
        RET

; ---- presentation ---------------------------------------------------------
draw:
        MOV DI, VID
        MOV CX, 1024
        MOV AX, 0
d_clr:
        MOV [DI], AX
        ADD DI, 2
        LOOP d_clr
        ; ground line, row 26
        MOV DI, VID + 1664
        MOV CX, 64
        MOV AX, 3
d_gnd:
        MOVB [DI], AX
        INC DI
        LOOP d_gnd
        ; fighter 0: head row 22, body rows 23..25
        MOV AX, [SI+O_X0]
        ADD AX, VID + 1408
        MOV DI, AX
        MOV BX, 14
        MOVB [DI], BX
        MOV BX, 10
        MOV CX, 3
d_f0:
        ADD DI, 64
        MOVB [DI], BX
        LOOP d_f0
        ; fighter 1
        MOV AX, [SI+O_X1]
        ADD AX, VID + 1408
        MOV DI, AX
        MOV BX, 15
        MOVB [DI], BX
        MOV BX, 12
        MOV CX, 3
d_f1:
        ADD DI, 64
        MOVB [DI], BX
        LOOP d_f1
        ; HP bars on row 1 (2 cells per HP)
        MOV CX, [SI+O_HP0]
        CMP CX, 0
        JZ d_hp0_done
        SHL CX, 1
        MOV DI, VID + 66
        MOV BX, 9
d_hp0:
        MOVB [DI], BX
        INC DI
        LOOP d_hp0
d_hp0_done:
        MOV CX, [SI+O_HP1]
        CMP CX, 0
        JZ d_hp1_done
        SHL CX, 1
        MOV DI, VID + 125
        MOV BX, 11
d_hp1:
        MOVB [DI], BX
        DEC DI
        LOOP d_hp1
d_hp1_done:
        ; round-win pips on row 0 (clamped to 20)
        MOV CX, [SI+O_SC0]
        CMP CX, 0
        JZ d_sc0_done
        CMP CX, 20
        JC d_sc0
        MOV CX, 20
d_sc0:
        MOV DI, VID + 2
        MOV BX, 6
d_sc0_lp:
        MOVB [DI], BX
        ADD DI, 2
        LOOP d_sc0_lp
d_sc0_done:
        MOV CX, [SI+O_SC1]
        CMP CX, 0
        JZ d_sc1_done
        CMP CX, 20
        JC d_sc1
        MOV CX, 20
d_sc1:
        MOV DI, VID + 61
        MOV BX, 13
d_sc1_lp:
        MOVB [DI], BX
        SUB DI, 2
        LOOP d_sc1_lp
d_sc1_done:
        RET

        ENTRY frame
)asm";
}  // namespace

const Program& skirmish_program() {
  static const Program program = detail::build_program("skirmish", kSource);
  return program;
}

}  // namespace rtct::a86
