#include "src/cores/agent86/machine.h"

#include <algorithm>
#include <bit>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/emu/machine.h"  // shared state-digest cross-check switch

namespace rtct::a86 {

namespace {
constexpr std::size_t kDebugLogCap = 4096;
}  // namespace

Agent86Machine::Agent86Machine(Program program, MachineConfig cfg)
    : program_(std::move(program)), checksum_(program_.checksum()), cfg_(cfg),
      mem_(kMemSize, 0) {
  reset();
}

void Agent86Machine::reset() {
  std::fill(mem_.begin(), mem_.end(), 0);
  const std::size_t limit = std::min(program_.image.size(), kMemSize - program_.org);
  std::copy_n(program_.image.begin(), limit, mem_.begin() + program_.org);
  for (auto& r : regs_) r = 0;
  regs_[SP] = kInitialSp;
  ip_ = program_.entry;
  zf_ = sf_ = cf_ = false;
  fault_ = Fault::kNone;
  tone_ = 0;
  frame_ = 0;
  last_frame_cycles_ = 0;
  debug_log_.clear();
  mark_all_pages_dirty();
}

void Agent86Machine::mark_all_pages_dirty() const { dirty_.fill(~0ull); }

void Agent86Machine::refresh_dirty_pages() const {
  for (std::size_t wi = 0; wi < dirty_.size(); ++wi) {
    std::uint64_t bits = dirty_[wi];
    dirty_[wi] = 0;
    while (bits != 0) {
      const auto page = wi * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      page_digest_[page] = fnv1a64({mem_.data() + page * kPageSize, kPageSize});
    }
  }
}

void Agent86Machine::step_frame(InputWord input) {
  if (faulted()) return;  // a faulted machine stays stopped
  // Latch the input block through the tracked writes: the CPU sees inputs
  // as plain memory, and they are synchronized state like everything else.
  write8(kInputBase + 0, player_byte(input, 0));
  write8(kInputBase + 1, player_byte(input, 1));
  write16(kInputBase + 2, static_cast<std::uint16_t>(frame_ & 0xFFFF));
  write16(kInputBase + 4, static_cast<std::uint16_t>((frame_ >> 16) & 0xFFFF));
  last_frame_cycles_ = run_frame(cfg_.cycles_per_frame);
  ++frame_;
}

int Agent86Machine::run_frame(int cycle_budget) {
  int cycles = 0;

  const auto fetch8 = [&]() -> std::uint8_t {
    const std::uint8_t v = mem_[ip_];
    ip_ = static_cast<std::uint16_t>(ip_ + 1);
    return v;
  };
  const auto fetch16 = [&]() -> std::uint16_t {
    const std::uint16_t lo = fetch8();
    return static_cast<std::uint16_t>(lo | (fetch8() << 8));
  };
  const auto set_zs = [&](std::uint16_t v) {
    zf_ = v == 0;
    sf_ = (v & 0x8000) != 0;
  };
  // Operand-register decode; a byte naming a register out of range is a
  // deterministic fault, never UB.
  const auto reg_ok = [&](std::uint8_t r) {
    if (r < kNumRegs) return true;
    fault_ = Fault::kBadReg;
    return false;
  };
  const auto push16 = [&](std::uint16_t v) {
    regs_[SP] = static_cast<std::uint16_t>(regs_[SP] - 2);
    write16(regs_[SP], v);
  };
  const auto pop16 = [&]() -> std::uint16_t {
    const std::uint16_t v = read16(regs_[SP]);
    regs_[SP] = static_cast<std::uint16_t>(regs_[SP] + 2);
    return v;
  };
  // Shared ALU bodies (register/immediate forms differ only in operand
  // fetch and cycle cost).
  const auto alu = [&](std::uint8_t op_kind, std::uint8_t dst, std::uint16_t b) {
    const std::uint16_t a = regs_[dst];
    std::uint16_t r = 0;
    switch (op_kind) {
      case 0:  // ADD
        r = static_cast<std::uint16_t>(a + b);
        cf_ = (static_cast<std::uint32_t>(a) + b) > 0xFFFF;
        break;
      case 1:  // SUB
        r = static_cast<std::uint16_t>(a - b);
        cf_ = a < b;
        break;
      case 2: r = static_cast<std::uint16_t>(a & b); cf_ = false; break;
      case 3: r = static_cast<std::uint16_t>(a | b); cf_ = false; break;
      case 4: r = static_cast<std::uint16_t>(a ^ b); cf_ = false; break;
      case 5: {  // SHL, count mod 16; count 0 leaves flags alone
        const int n = b & 15;
        if (n == 0) { set_zs(a); return; }
        cf_ = ((a >> (16 - n)) & 1) != 0;
        r = static_cast<std::uint16_t>(a << n);
        break;
      }
      case 6: {  // SHR
        const int n = b & 15;
        if (n == 0) { set_zs(a); return; }
        cf_ = ((a >> (n - 1)) & 1) != 0;
        r = static_cast<std::uint16_t>(a >> n);
        break;
      }
      case 7: {  // MUL: low 16 bits; CF flags a lost high word (8086 flavor)
        const std::uint32_t p = static_cast<std::uint32_t>(a) * b;
        r = static_cast<std::uint16_t>(p & 0xFFFF);
        cf_ = (p >> 16) != 0;
        break;
      }
      default: break;
    }
    regs_[dst] = r;
    set_zs(r);
  };

  while (cycles < cycle_budget) {
    const std::uint8_t op = fetch8();
    switch (op) {
      case kNop:
        cycles += 1;
        break;
      case kHlt:
        cycles += 1;
        return cycles;
      case kInt3:
        fault_ = Fault::kTrap;
        return cycles;

      case kMovRI: {
        const std::uint8_t r = fetch8();
        const std::uint16_t imm = fetch16();
        if (!reg_ok(r)) return cycles;
        regs_[r] = imm;  // MOV never touches flags (8086 flavor)
        cycles += 2;
        break;
      }
      case kMovRR: {
        const std::uint8_t rr = fetch8();
        const std::uint8_t d = rr >> 4, s = rr & 15;
        if (!reg_ok(d) || !reg_ok(s)) return cycles;
        regs_[d] = regs_[s];
        cycles += 1;
        break;
      }
      case kLdB:
      case kLdW: {
        const std::uint8_t rr = fetch8();
        const std::uint8_t disp = fetch8();
        const std::uint8_t d = rr >> 4, base = rr & 15;
        if (!reg_ok(d) || !reg_ok(base)) return cycles;
        const auto addr = static_cast<std::uint16_t>(regs_[base] + disp);
        regs_[d] = (op == kLdB) ? mem_[addr] : read16(addr);
        cycles += 3;
        break;
      }
      case kStB:
      case kStW: {
        const std::uint8_t rr = fetch8();
        const std::uint8_t disp = fetch8();
        const std::uint8_t base = rr >> 4, s = rr & 15;
        if (!reg_ok(base) || !reg_ok(s)) return cycles;
        const auto addr = static_cast<std::uint16_t>(regs_[base] + disp);
        if (op == kStB) {
          write8(addr, static_cast<std::uint8_t>(regs_[s] & 0xFF));
        } else {
          write16(addr, regs_[s]);
        }
        cycles += 3;
        break;
      }

      case kAddRR: case kSubRR: case kAndRR: case kOrRR:
      case kXorRR: case kShlRR: case kShrRR: case kMulRR: {
        const std::uint8_t rr = fetch8();
        const std::uint8_t d = rr >> 4, s = rr & 15;
        if (!reg_ok(d) || !reg_ok(s)) return cycles;
        alu(static_cast<std::uint8_t>(op - kAddRR), d, regs_[s]);
        cycles += (op == kMulRR) ? 4 : 1;
        break;
      }
      case kAddRI: case kSubRI: case kAndRI: case kOrRI:
      case kXorRI: case kShlRI: case kShrRI: case kMulRI: {
        const std::uint8_t r = fetch8();
        const std::uint16_t imm = fetch16();
        if (!reg_ok(r)) return cycles;
        alu(static_cast<std::uint8_t>(op - kAddRI), r, imm);
        cycles += (op == kMulRI) ? 4 : 2;
        break;
      }

      case kNeg: {
        const std::uint8_t r = fetch8();
        if (!reg_ok(r)) return cycles;
        const std::uint16_t v = static_cast<std::uint16_t>(0 - regs_[r]);
        cf_ = v != 0;  // 8086: NEG sets CF unless the operand was zero
        regs_[r] = v;
        set_zs(v);
        cycles += 1;
        break;
      }
      case kNot: {
        const std::uint8_t r = fetch8();
        if (!reg_ok(r)) return cycles;
        regs_[r] = static_cast<std::uint16_t>(~regs_[r]);  // NOT: no flags (8086)
        cycles += 1;
        break;
      }
      case kInc:
      case kDec: {
        const std::uint8_t r = fetch8();
        if (!reg_ok(r)) return cycles;
        regs_[r] = static_cast<std::uint16_t>(regs_[r] + (op == kInc ? 1 : -1));
        set_zs(regs_[r]);  // INC/DEC preserve CF (8086 flavor)
        cycles += 1;
        break;
      }

      case kCmpRR: {
        const std::uint8_t rr = fetch8();
        const std::uint8_t a = rr >> 4, b = rr & 15;
        if (!reg_ok(a) || !reg_ok(b)) return cycles;
        const std::uint16_t r = static_cast<std::uint16_t>(regs_[a] - regs_[b]);
        cf_ = regs_[a] < regs_[b];
        set_zs(r);
        cycles += 1;
        break;
      }
      case kCmpRI: {
        const std::uint8_t a = fetch8();
        const std::uint16_t imm = fetch16();
        if (!reg_ok(a)) return cycles;
        const std::uint16_t r = static_cast<std::uint16_t>(regs_[a] - imm);
        cf_ = regs_[a] < imm;
        set_zs(r);
        cycles += 2;
        break;
      }

      case kJmp: case kJz: case kJnz: case kJc:
      case kJnc: case kJs: case kJns: {
        const std::uint16_t target = fetch16();
        bool taken = true;
        switch (op) {
          case kJz: taken = zf_; break;
          case kJnz: taken = !zf_; break;
          case kJc: taken = cf_; break;
          case kJnc: taken = !cf_; break;
          case kJs: taken = sf_; break;
          case kJns: taken = !sf_; break;
          default: break;
        }
        if (taken) ip_ = target;
        cycles += 2;
        break;
      }
      case kLoop: {
        const std::uint16_t target = fetch16();
        regs_[CX] = static_cast<std::uint16_t>(regs_[CX] - 1);  // flags untouched
        if (regs_[CX] != 0) ip_ = target;
        cycles += 2;
        break;
      }
      case kCall: {
        const std::uint16_t target = fetch16();
        push16(ip_);
        ip_ = target;
        cycles += 4;
        break;
      }
      case kRet:
        ip_ = pop16();
        cycles += 4;
        break;
      case kPush: {
        const std::uint8_t r = fetch8();
        if (!reg_ok(r)) return cycles;
        push16(regs_[r]);
        cycles += 3;
        break;
      }
      case kPop: {
        const std::uint8_t r = fetch8();
        if (!reg_ok(r)) return cycles;
        regs_[r] = pop16();
        cycles += 3;
        break;
      }

      case kOut: {
        const std::uint8_t port = fetch8();
        const std::uint8_t r = fetch8();
        if (!reg_ok(r)) return cycles;
        if (port == kPortTone) {
          tone_ = regs_[r];
        } else if (port == kPortDebug && debug_log_.size() < kDebugLogCap) {
          debug_log_.push_back(regs_[r]);  // diagnostic only: not hashed
        }
        cycles += 2;
        break;
      }

      default:
        fault_ = Fault::kBadOpcode;
        return cycles;
    }
  }
  fault_ = Fault::kBudgetExceeded;
  return cycles;
}

std::uint64_t Agent86Machine::state_hash() const {
  Fnv1a64 h;
  visit_cpu_state(h);
  h.update_u16(tone_);
  h.update_u64(static_cast<std::uint64_t>(frame_));
  h.update(std::span<const std::uint8_t>(mem_.data(), kMemSize));
  return h.digest();
}

std::uint64_t Agent86Machine::state_digest(int version) const {
  if (version <= 1) return state_hash();
  refresh_dirty_pages();
  Fnv1a64 h;
  h.update_u8(2);  // domain-separate v2 from the v1 hash, like AC16
  visit_cpu_state(h);
  h.update_u16(tone_);
  h.update_u64(static_cast<std::uint64_t>(frame_));
  for (const std::uint64_t d : page_digest_) h.update_u64(d);
  if (emu::state_digest_cross_check()) {
    for (std::size_t page = 0; page < kNumPages; ++page) {
      const std::uint64_t full = fnv1a64({mem_.data() + page * kPageSize, kPageSize});
      if (full != page_digest_[page]) {
        emu::note_state_digest_cross_check_failure();
        break;
      }
    }
  }
  return h.digest();
}

std::vector<std::uint64_t> Agent86Machine::page_digests() const {
  refresh_dirty_pages();
  return {page_digest_.begin(), page_digest_.end()};
}

std::vector<std::uint8_t> Agent86Machine::save_state() const {
  std::vector<std::uint8_t> out;
  save_state_into(out);
  return out;
}

void Agent86Machine::save_state_into(std::vector<std::uint8_t>& out) const {
  if (out.capacity() < 64 + kMemSize) out.reserve(64 + kMemSize);
  ByteWriter w(std::move(out));
  w.u8(kStateVersion);
  w.u64(checksum_);
  visit_cpu_state(w);
  w.u16(tone_);
  w.u64(static_cast<std::uint64_t>(frame_));
  w.bytes(std::span<const std::uint8_t>(mem_.data(), kMemSize));
  out = w.take();
}

bool Agent86Machine::load_state(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u8() != kStateVersion) return false;
  if (r.u64() != checksum_) return false;  // snapshot from another game

  std::uint16_t regs[kNumRegs];
  for (auto& reg : regs) reg = r.u16();
  const std::uint16_t ip = r.u16();
  const std::uint8_t flags = r.u8();
  const std::uint8_t fault = r.u8();
  const std::uint16_t tone = r.u16();
  const auto frame = static_cast<FrameNo>(r.u64());
  const auto ram = r.bytes(kMemSize);
  if (!r.ok() || !r.at_end()) return false;
  if (fault > static_cast<std::uint8_t>(Fault::kBudgetExceeded)) return false;

  std::copy(std::begin(regs), std::end(regs), std::begin(regs_));
  ip_ = ip;
  zf_ = (flags & 1) != 0;
  sf_ = (flags & 2) != 0;
  cf_ = (flags & 4) != 0;
  fault_ = static_cast<Fault>(fault);
  tone_ = tone;
  frame_ = frame;
  std::copy(ram.begin(), ram.end(), mem_.begin());
  debug_log_.clear();
  mark_all_pages_dirty();  // the snapshot bypassed write8
  return true;
}

}  // namespace rtct::a86
