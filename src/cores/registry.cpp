#include "src/cores/registry.h"

#include "src/cores/agent86/games.h"
#include "src/emu/machine.h"
#include "src/games/cellwars.h"
#include "src/games/roms.h"

namespace rtct::cores {

namespace {

class Ac16Core final : public GameCore {
 public:
  [[nodiscard]] std::string_view name() const override { return "ac16"; }
  [[nodiscard]] std::vector<std::string_view> game_names() const override {
    return games::game_names();
  }
  [[nodiscard]] std::unique_ptr<emu::IDeterministicGame> make_game(
      std::string_view game) const override {
    return games::make_machine(game);
  }
  [[nodiscard]] std::uint64_t content_id(std::string_view game) const override {
    const emu::Rom* rom = games::rom_by_name(game);
    return rom != nullptr ? rom->checksum() : 0;
  }
};

class Agent86Core final : public GameCore {
 public:
  [[nodiscard]] std::string_view name() const override { return "agent86"; }
  [[nodiscard]] std::vector<std::string_view> game_names() const override {
    return a86::game_names();
  }
  [[nodiscard]] std::unique_ptr<emu::IDeterministicGame> make_game(
      std::string_view game) const override {
    return a86::make_machine(game);
  }
  [[nodiscard]] std::uint64_t content_id(std::string_view game) const override {
    const a86::Program* program = a86::program_by_name(game);
    return program != nullptr ? program->checksum() : 0;
  }
};

class NativeCore final : public GameCore {
 public:
  [[nodiscard]] std::string_view name() const override { return "native"; }
  [[nodiscard]] std::vector<std::string_view> game_names() const override {
    return {"cellwars"};
  }
  [[nodiscard]] std::unique_ptr<emu::IDeterministicGame> make_game(
      std::string_view game) const override {
    if (game == "cellwars") return games::make_cellwars();
    return nullptr;
  }
};

}  // namespace

QualifiedName split_qualified(std::string_view qualified) {
  const auto colon = qualified.find(':');
  if (colon == std::string_view::npos) return {kDefaultCore, qualified};
  return {qualified.substr(0, colon), qualified.substr(colon + 1)};
}

CoreRegistry::CoreRegistry() {
  cores_.push_back(std::make_unique<Ac16Core>());
  cores_.push_back(std::make_unique<Agent86Core>());
  cores_.push_back(std::make_unique<NativeCore>());
}

CoreRegistry& CoreRegistry::instance() {
  static CoreRegistry registry;
  return registry;
}

void CoreRegistry::register_core(std::unique_ptr<GameCore> core) {
  if (core == nullptr || this->core(core->name()) != nullptr) return;
  cores_.push_back(std::move(core));
}

const GameCore* CoreRegistry::core(std::string_view name) const {
  for (const auto& c : cores_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const GameCore*> CoreRegistry::cores() const {
  std::vector<const GameCore*> out;
  out.reserve(cores_.size());
  for (const auto& c : cores_) out.push_back(c.get());
  return out;
}

std::unique_ptr<emu::IDeterministicGame> make_game(std::string_view qualified) {
  const QualifiedName qn = split_qualified(qualified);
  const GameCore* core = CoreRegistry::instance().core(qn.core);
  if (core == nullptr) return nullptr;
  return core->make_game(qn.game);
}

std::unique_ptr<emu::IDeterministicGame> make_game_for_content(std::uint64_t content_id) {
  for (const GameCore* core : CoreRegistry::instance().cores()) {
    for (const std::string_view game : core->game_names()) {
      if (core->content_id(game) == content_id) return core->make_game(game);
    }
  }
  return nullptr;
}

std::optional<std::string> find_content_name(std::uint64_t content_id) {
  for (const GameCore* core : CoreRegistry::instance().cores()) {
    for (const std::string_view game : core->game_names()) {
      if (core->content_id(game) == content_id) {
        return std::string(core->name()) + ":" + std::string(game);
      }
    }
  }
  return std::nullopt;
}

std::vector<GameEntry> list_games() {
  std::vector<GameEntry> out;
  for (const GameCore* core : CoreRegistry::instance().cores()) {
    for (const std::string_view game : core->game_names()) {
      out.push_back({std::string(core->name()), std::string(game), core->content_id(game)});
    }
  }
  return out;
}

}  // namespace rtct::cores
