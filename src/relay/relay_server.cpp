#include "src/relay/relay_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>

namespace rtct::relay {

namespace {

Time steady_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kMaxShards = 16;
constexpr int kMaxMembersCap = 8;
constexpr std::uint16_t kDefaultListCap = 32;
/// How long a CREATE is answered idempotently for the same
/// (source address, content_id) — generously past the client's whole
/// retransmit budget (4 × 250 ms by default).
constexpr Dur kCreateDedupeWindow = seconds(5);

/// Tiny RAII epoll set over a data socket + the shared stop eventfd.
class EpollWaiter {
 public:
  EpollWaiter(int sock_fd, int stop_fd) {
    ep_ = ::epoll_create1(0);
    if (ep_ < 0) return;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = sock_fd;
    ::epoll_ctl(ep_, EPOLL_CTL_ADD, sock_fd, &ev);
    ev.data.fd = stop_fd;
    ::epoll_ctl(ep_, EPOLL_CTL_ADD, stop_fd, &ev);
  }
  ~EpollWaiter() {
    if (ep_ >= 0) ::close(ep_);
  }
  EpollWaiter(const EpollWaiter&) = delete;
  EpollWaiter& operator=(const EpollWaiter&) = delete;

  [[nodiscard]] bool ok() const { return ep_ >= 0; }

  /// Blocks until the socket is readable, the stop fd fires, or `timeout`
  /// elapses. Returns true when the *socket* has data.
  bool wait(int sock_fd, Dur timeout) {
    epoll_event evs[2];
    const int timeout_ms = static_cast<int>(timeout / kMillisecond);
    int n;
    do {
      n = ::epoll_wait(ep_, evs, 2, timeout_ms < 0 ? 0 : timeout_ms);
    } while (n < 0 && errno == EINTR);
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.fd == sock_fd) return true;
    }
    return false;
  }

 private:
  int ep_ = -1;
};

}  // namespace

RelayServer::RelayServer(RelayConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.shards = std::clamp(cfg_.shards, 1, kMaxShards);
  cfg_.default_max_members = std::clamp(cfg_.default_max_members, 2, kMaxMembersCap);
  if (cfg_.max_sessions == 0) cfg_.max_sessions = 1;
  std::random_device rd;
  conn_rng_ = rd();
  if (conn_rng_ == 0) conn_rng_ = 0x9E3779B9u;  // xorshift must not be seeded 0
}

ConnId RelayServer::allocate_conn() {
  for (;;) {
    conn_rng_ ^= conn_rng_ << 13;
    conn_rng_ ^= conn_rng_ >> 17;
    conn_rng_ ^= conn_rng_ << 5;
    const ConnId conn = conn_rng_;
    if (conn == kNoConn) continue;
    Shard& shard = shard_for(conn);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.sessions.find(conn) == shard.sessions.end()) return conn;
  }
}

RelayServer::~RelayServer() { stop(); }

bool RelayServer::start(std::string* error) {
  if (running()) return true;
  lobby_sock_ = std::make_unique<net::UdpSocket>(cfg_.bind_ip, cfg_.lobby_port);
  if (!lobby_sock_->valid()) {
    if (error) *error = "lobby socket: " + lobby_sock_->last_error();
    return false;
  }
  lobby_sock_->set_recv_buffer(1 << 20);
  shards_.clear();
  for (int i = 0; i < cfg_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->sock = std::make_unique<net::UdpSocket>(cfg_.bind_ip, 0);
    if (!shard->sock->valid()) {
      if (error) *error = "shard socket: " + shard->sock->last_error();
      shards_.clear();
      lobby_sock_.reset();
      return false;
    }
    // A shard absorbs whole-fleet bursts (every member of every pinned
    // session can send in the same frame tick); the default rcvbuf drops
    // most of such a burst before the epoll loop ever wakes.
    shard->sock->set_recv_buffer(4 << 20);
    shards_.push_back(std::move(shard));
  }
  stop_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (stop_fd_ < 0) {
    if (error) *error = std::string("eventfd: ") + std::strerror(errno);
    shards_.clear();
    lobby_sock_.reset();
    return false;
  }
  running_.store(true, std::memory_order_release);
  lobby_thread_ = std::thread([this] { lobby_loop(); });
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] { shard_loop(*s); });
  }
  return true;
}

void RelayServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started (or already stopped); still reap any join-ables from a
    // failed start sequence.
  }
  if (stop_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(stop_fd_, &one, sizeof(one));
  }
  if (lobby_thread_.joinable()) lobby_thread_.join();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  if (stop_fd_ >= 0) {
    ::close(stop_fd_);
    stop_fd_ = -1;
  }
}

std::uint16_t RelayServer::lobby_port() const {
  return lobby_sock_ != nullptr ? lobby_sock_->local_port() : 0;
}

std::uint16_t RelayServer::shard_port(int shard) const {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return 0;
  return shards_[static_cast<std::size_t>(shard)]->sock->local_port();
}

std::size_t RelayServer::session_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->sessions.size();
  }
  return n;
}

// ---- lobby ------------------------------------------------------------------

void RelayServer::lobby_loop() {
  EpollWaiter waiter(lobby_sock_->native_fd(), stop_fd_);
  if (!waiter.ok()) return;
  while (running()) {
    waiter.wait(lobby_sock_->native_fd(), cfg_.sweep_interval);
    while (auto got = lobby_sock_->recv_from()) {
      handle_lobby(got->second, got->first);
    }
  }
}

void RelayServer::send_lobby(const net::UdpAddress& to, const RelayMessage& msg) {
  encode_relay_message_into(msg, lobby_scratch_);
  lobby_sock_->send_to(to, lobby_scratch_);
}

void RelayServer::handle_lobby(const net::UdpAddress& from,
                               std::span<const std::uint8_t> bytes) {
  lobby_requests_.fetch_add(1, std::memory_order_relaxed);
  const auto msg = decode_relay_message(bytes);
  if (!msg) {
    lobby_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const Time now = steady_now();

  if (const auto* create = std::get_if<CreateMsg>(&*msg)) {
    if (create->version != kRelayProtocolVersion) {
      lobby_errors_.fetch_add(1, std::memory_order_relaxed);
      send_lobby(from, LobbyErrMsg{LobbyError::kBadVersion, kNoConn});
      return;
    }
    // CREATE retransmits (lost LOBBY_OK) must be idempotent like JOIN's:
    // echo the still-live session minted for this (address, content_id)
    // instead of burning another slot against max_sessions.
    for (auto it = recent_creates_.begin(); it != recent_creates_.end();) {
      if (now - it->second.at > kCreateDedupeWindow) {
        it = recent_creates_.erase(it);
      } else {
        ++it;
      }
    }
    const auto key = std::make_pair(from, create->content_id);
    if (const auto dup = recent_creates_.find(key); dup != recent_creates_.end()) {
      bool alive = false;
      Shard& dup_shard = shard_for(dup->second.conn);
      {
        std::lock_guard<std::mutex> lock(dup_shard.mu);
        auto sit = dup_shard.sessions.find(dup->second.conn);
        if (sit != dup_shard.sessions.end()) {
          sit->second.last_activity = now;
          alive = true;
        }
      }
      if (alive) {
        send_lobby(from, LobbyOkMsg{kRelayProtocolVersion, dup->second.conn, 0,
                                    dup->second.data_port});
        return;
      }
      recent_creates_.erase(dup);  // evicted meanwhile: mint fresh
    }
    if (session_count() >= cfg_.max_sessions) {
      lobby_errors_.fetch_add(1, std::memory_order_relaxed);
      send_lobby(from, LobbyErrMsg{LobbyError::kServerFull, kNoConn});
      return;
    }
    const ConnId conn = allocate_conn();
    Session s;
    s.conn = conn;
    s.content_id = create->content_id;
    s.max_members = static_cast<std::uint8_t>(
        create->max_members == 0
            ? cfg_.default_max_members
            : std::clamp<int>(create->max_members, 2, kMaxMembersCap));
    s.members.push_back(Member{from, now});
    s.last_activity = now;
    Shard& shard = shard_for(conn);
    const std::uint16_t data_port = shard.sock->local_port();
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.sessions.emplace(conn, std::move(s));
    }
    recent_creates_[key] = RecentCreate{conn, data_port, now};
    sessions_created_.fetch_add(1, std::memory_order_relaxed);
    send_lobby(from, LobbyOkMsg{kRelayProtocolVersion, conn, 0, data_port});
    return;
  }

  if (const auto* join = std::get_if<JoinMsg>(&*msg)) {
    if (join->version != kRelayProtocolVersion) {
      lobby_errors_.fetch_add(1, std::memory_order_relaxed);
      send_lobby(from, LobbyErrMsg{LobbyError::kBadVersion, join->conn});
      return;
    }
    Shard& shard = shard_for(join->conn);
    LobbyOkMsg ok{kRelayProtocolVersion, join->conn, 0, shard.sock->local_port()};
    LobbyError err = LobbyError::kNotFound;
    bool accepted = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.sessions.find(join->conn);
      if (it != shard.sessions.end()) {
        Session& s = it->second;
        s.last_activity = now;
        // A re-JOIN from an existing member is a retransmit (the first
        // LOBBY_OK was lost): answer idempotently with the same slot
        // instead of burning a member slot or erroring the retry.
        for (std::size_t i = 0; i < s.members.size(); ++i) {
          if (s.members[i].addr == from) {
            s.members[i].last_seen = now;
            ok.slot = static_cast<std::uint8_t>(i);
            accepted = true;
            break;
          }
        }
        if (!accepted) {
          if (s.members.size() >= s.max_members) {
            err = LobbyError::kSessionFull;
          } else {
            ok.slot = static_cast<std::uint8_t>(s.members.size());
            s.members.push_back(Member{from, now});
            accepted = true;
          }
        }
      }
    }
    if (accepted) {
      send_lobby(from, ok);
    } else {
      lobby_errors_.fetch_add(1, std::memory_order_relaxed);
      send_lobby(from, LobbyErrMsg{err, join->conn});
    }
    return;
  }

  if (const auto* list = std::get_if<ListMsg>(&*msg)) {
    if (list->version != kRelayProtocolVersion) {
      lobby_errors_.fetch_add(1, std::memory_order_relaxed);
      send_lobby(from, LobbyErrMsg{LobbyError::kBadVersion, kNoConn});
      return;
    }
    const std::size_t want =
        list->max_entries == 0
            ? kDefaultListCap
            : std::min<std::size_t>(list->max_entries, kMaxListEntries);
    // Anti-amplification: the reply never exceeds the request's size, so
    // a spoofed 5-byte LIST cannot turn the lobby into a reflector. The
    // client encoder pads its request to cover the entries it wants.
    const std::size_t budget =
        bytes.size() <= list_reply_size(0)
            ? 0
            : (bytes.size() - list_reply_size(0)) / 14;
    const std::size_t cap = std::min(want, budget);
    ListReplyMsg reply;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const auto& [conn, s] : shard->sessions) {
        if (reply.sessions.size() >= cap) break;
        reply.sessions.push_back(SessionInfo{
            conn, s.content_id, static_cast<std::uint8_t>(s.members.size()),
            s.max_members});
      }
      if (reply.sessions.size() >= cap) break;
    }
    send_lobby(from, reply);
    return;
  }

  if (const auto* leave = std::get_if<LeaveMsg>(&*msg)) {
    Shard& shard = shard_for(leave->conn);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.sessions.find(leave->conn);
    if (it == shard.sessions.end()) return;
    auto& members = it->second.members;
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&from](const Member& m) { return m.addr == from; }),
                  members.end());
    if (members.empty()) {
      shard.sessions.erase(it);
      ++shard.closed;
    } else {
      it->second.last_activity = now;
    }
    return;
  }

  // Anything else (DATA on the lobby port, server-to-client shapes) is a
  // confused or hostile client.
  lobby_errors_.fetch_add(1, std::memory_order_relaxed);
}

// ---- data shards ------------------------------------------------------------

void RelayServer::shard_loop(Shard& shard) {
  EpollWaiter waiter(shard.sock->native_fd(), stop_fd_);
  if (!waiter.ok()) return;
  Time next_sweep = steady_now() + cfg_.sweep_interval;
  while (running()) {
    waiter.wait(shard.sock->native_fd(), cfg_.sweep_interval);
    while (auto got = shard.sock->recv_from()) {
      handle_data(shard, got->second, got->first);
    }
    const Time now = steady_now();
    if (now >= next_sweep) {
      sweep_shard(shard, now);
      next_sweep = now + cfg_.sweep_interval;
    }
  }
}

void RelayServer::handle_data(Shard& shard, const net::UdpAddress& from,
                              std::span<const std::uint8_t> bytes) {
  const Time t0 = steady_now();
  if (!is_data_frame(bytes)) {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.dropped_malformed;
    return;
  }
  const ConnId conn = data_frame_conn(bytes);
  bool unknown_session = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.sessions.find(conn);
    if (it == shard.sessions.end()) {
      ++shard.dropped_unknown_session;
      unknown_session = true;
    } else {
      Session& s = it->second;
      Member* sender = nullptr;
      for (Member& m : s.members) {
        if (m.addr == from) {
          sender = &m;
          break;
        }
      }
      if (sender == nullptr) {
        // Not a member: never relayed, never answered (a reply would make
        // the relay a reflector). Counted so operators can see probes.
        ++shard.dropped_unknown_sender;
      } else {
        sender->last_seen = t0;
        s.last_activity = t0;
        ++shard.forwarded;
        // Forward verbatim: the conn id is already framed into the
        // datagram, so fan-out is sendto() of the received bytes as-is.
        for (const Member& m : s.members) {
          if (m.addr == from) continue;
          shard.sock->send_to(m.addr, bytes);
          ++shard.fanout;
        }
      }
      shard.dispatch_ns.observe(static_cast<double>(steady_now() - t0));
    }
  }
  if (unknown_session) {
    // Tell the sender its session is gone (evicted or never existed) so it
    // can stop streaming / rejoin. Same-size reply: no amplification.
    const EvictNoticeMsg notice{conn};
    std::vector<std::uint8_t> buf;
    encode_relay_message_into(RelayMessage{notice}, buf);
    shard.sock->send_to(from, buf);
  }
}

void RelayServer::sweep_shard(Shard& shard, Time now) {
  std::vector<std::pair<net::UdpAddress, ConnId>> notices;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.sessions.begin(); it != shard.sessions.end();) {
      if (now - it->second.last_activity > cfg_.idle_timeout) {
        for (const Member& m : it->second.members) {
          notices.emplace_back(m.addr, it->second.conn);
        }
        it = shard.sessions.erase(it);
        ++shard.evicted;
      } else {
        ++it;
      }
    }
  }
  std::vector<std::uint8_t> buf;
  for (const auto& [addr, conn] : notices) {
    encode_relay_message_into(RelayMessage{EvictNoticeMsg{conn}}, buf);
    shard.sock->send_to(addr, buf);
  }
}

// ---- observability ----------------------------------------------------------

RelayServer::Stats RelayServer::stats() const {
  Stats s;
  s.sessions_created = sessions_created_.load(std::memory_order_relaxed);
  s.lobby_requests = lobby_requests_.load(std::memory_order_relaxed);
  s.lobby_errors = lobby_errors_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.sessions_evicted += shard->evicted;
    s.sessions_closed += shard->closed;
    s.datagrams_forwarded += shard->forwarded;
    s.fanout_datagrams += shard->fanout;
    s.dropped_unknown_session += shard->dropped_unknown_session;
    s.dropped_unknown_sender += shard->dropped_unknown_sender;
    s.dropped_malformed += shard->dropped_malformed;
  }
  return s;
}

void RelayServer::export_metrics(MetricsRegistry& reg) const {
  const Stats s = stats();
  reg.gauge("relay.sessions").set(static_cast<double>(session_count()));
  reg.gauge("relay.shards").set(static_cast<double>(shards_.size()));
  reg.counter("relay.sessions_created").set(s.sessions_created);
  reg.counter("relay.evicted").set(s.sessions_evicted);
  reg.counter("relay.closed").set(s.sessions_closed);
  reg.counter("relay.datagrams_forwarded").set(s.datagrams_forwarded);
  reg.counter("relay.fanout_datagrams").set(s.fanout_datagrams);
  reg.counter("relay.dropped_unknown_session").set(s.dropped_unknown_session);
  reg.counter("relay.dropped_unknown_sender").set(s.dropped_unknown_sender);
  reg.counter("relay.dropped_malformed").set(s.dropped_malformed);
  reg.counter("relay.lobby.requests").set(s.lobby_requests);
  reg.counter("relay.lobby.errors").set(s.lobby_errors);
  Histogram& h = reg.histogram("relay.dispatch_ns");
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    h.merge(shard->dispatch_ns);
  }
}

}  // namespace rtct::relay
