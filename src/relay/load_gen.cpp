#include "src/relay/load_gen.h"

#include <arpa/inet.h>

#include <chrono>
#include <cstring>
#include <vector>

#include "src/chaos/fault_script.h"
#include "src/common/bytes.h"
#include "src/common/random.h"
#include "src/net/udp_socket.h"
#include "src/relay/relay_wire.h"

namespace rtct::relay {

namespace {

Time steady_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Blocking lobby round-trip on a shared (multi-session) socket. Unlike
/// RelayLobby this must tolerate relayed DATA frames arriving interleaved
/// with the reply — they are simply not decodable as lobby replies here
/// because their conn ids belong to other sessions, so we skip DATA frames
/// explicitly and keep waiting.
std::optional<LobbyOkMsg> lobby_roundtrip(net::UdpSocket& sock,
                                          const net::UdpAddress& lobby_addr,
                                          const RelayMessage& req,
                                          std::vector<std::uint8_t>& scratch) {
  encode_relay_message_into(req, scratch);
  for (int attempt = 0; attempt < 8; ++attempt) {
    sock.send_to(lobby_addr, scratch);
    if (!sock.wait_readable(milliseconds(200))) continue;
    while (auto got = sock.recv_from()) {
      if (is_data_frame(got->first)) continue;  // another session's traffic
      const auto reply = decode_relay_message(got->first);
      if (!reply) continue;
      if (const auto* ok = std::get_if<LobbyOkMsg>(&*reply)) return *ok;
      if (std::get_if<LobbyErrMsg>(&*reply) != nullptr) return std::nullopt;
    }
  }
  return std::nullopt;
}

/// True when virtual time `t` falls inside a loss-flavoured fault window.
/// Only windows that plausibly suppress traffic (loss bursts, stalls) gate
/// the send schedule; latency/reorder faults shape the path, which the
/// load generator cannot emulate client-side.
bool in_suppression_window(const chaos::FaultScript& script, Dur t, double* p) {
  for (const auto& f : script.faults) {
    if (t < f.at || t >= f.at + f.duration) continue;
    if (f.kind == chaos::FaultKind::kLossBurst) {
      *p = f.magnitude;
      return true;
    }
    if (f.kind == chaos::FaultKind::kSiteStall) {
      *p = 1.0;
      return true;
    }
  }
  return false;
}

struct SessionAddr {
  ConnId conn = kNoConn;
  net::UdpAddress data_addr{};
};

}  // namespace

LoadGenReport run_relay_load(const LoadGenConfig& cfg) {
  LoadGenReport report;

  net::UdpSocket creator(cfg.relay_ip, 0);
  net::UdpSocket joiner(cfg.relay_ip, 0);
  if (!creator.valid() || !joiner.valid()) {
    report.error = "client socket: " +
                   (creator.valid() ? joiner.last_error() : creator.last_error());
    return report;
  }
  // Each shared socket is the receive queue for EVERY session it is a
  // member of; a default-sized rcvbuf silently sheds most of a
  // 1000-session round before drain() runs.
  creator.set_recv_buffer(4 << 20);
  joiner.set_recv_buffer(4 << 20);
  const auto lobby_addr = net::make_udp_address(cfg.relay_ip, cfg.lobby_port);
  if (!lobby_addr) {
    report.error = "bad relay ip: " + cfg.relay_ip;
    return report;
  }

  // Phase 1: establish every session (CREATE from `creator`, JOIN from
  // `joiner`). Sessions land on shards round-robin by conn id.
  std::vector<std::uint8_t> scratch;
  std::vector<SessionAddr> sessions;
  sessions.reserve(static_cast<std::size_t>(cfg.sessions));
  for (int i = 0; i < cfg.sessions; ++i) {
    CreateMsg create;
    create.content_id = cfg.seed + static_cast<std::uint64_t>(i);
    const auto ok = lobby_roundtrip(creator, *lobby_addr, RelayMessage{create}, scratch);
    if (!ok) {
      report.error = "create failed at session " + std::to_string(i);
      return report;
    }
    JoinMsg join;
    join.conn = ok->conn;
    const auto joined = lobby_roundtrip(joiner, *lobby_addr, RelayMessage{join}, scratch);
    if (!joined) {
      report.error = "join failed at session " + std::to_string(i);
      return report;
    }
    SessionAddr s;
    s.conn = ok->conn;
    s.data_addr = *lobby_addr;
    s.data_addr.port = htons(ok->data_port);
    sessions.push_back(s);
  }
  report.sessions = static_cast<int>(sessions.size());

  // Phase 2: send rounds. The FaultScript maps onto the round axis: round r
  // of R corresponds to virtual time r/R of the script's session length.
  const chaos::FaultScript script =
      chaos::generate_fault_script(cfg.seed, chaos::Topology::kTwoSite);
  Rng rng(cfg.seed ^ 0x10ad10adULL);
  const int payload = cfg.payload_bytes < 16 ? 16 : cfg.payload_bytes;
  std::vector<std::uint8_t> body(static_cast<std::size_t>(payload), 0xA5);
  std::vector<std::uint8_t> frame;

  auto drain = [&](net::UdpSocket& sock) {
    while (auto got = sock.recv_from()) {
      const auto& bytes = got->first;
      if (!is_data_frame(bytes)) continue;
      const auto p = data_frame_payload(bytes);
      if (p.size() < 16) continue;
      ByteReader r(p);
      const auto sent_at = static_cast<Time>(r.u64());
      r.u64();  // round tag (diagnostic only)
      if (!r.ok()) continue;
      ++report.delivered;
      report.latency_ms.add_dur(steady_now() - sent_at);
    }
  };

  auto offer = [&](net::UdpSocket& from, const SessionAddr& s, std::uint64_t tag,
                   double drop_p) {
    if (cfg.faults && drop_p > 0 && rng.bernoulli(drop_p)) {
      ++report.suppressed;
      return;
    }
    // Rewrite the 16-byte stamp header in place; the padding after it is
    // inert. Little-endian, matching ByteReader on the receive side.
    const auto now_u = static_cast<std::uint64_t>(steady_now());
    for (int b = 0; b < 8; ++b) {
      body[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(now_u >> (8 * b));
      body[static_cast<std::size_t>(8 + b)] = static_cast<std::uint8_t>(tag >> (8 * b));
    }
    encode_data_frame_into(s.conn, body, frame);
    from.send_to(s.data_addr, frame);
    ++report.offered;
  };

  for (int round = 0; round < cfg.rounds; ++round) {
    const Dur t = script.session_length() * round / (cfg.rounds > 0 ? cfg.rounds : 1);
    double drop_p = 0;
    const bool suppressing = cfg.faults && in_suppression_window(script, t, &drop_p);
    if (!suppressing) drop_p = 0;
    const std::uint64_t tag = static_cast<std::uint64_t>(round);
    int burst = 0;
    for (const auto& s : sessions) {
      offer(creator, s, tag, drop_p);
      offer(joiner, s, tag, drop_p);
      // Pace the burst: on a single core a tight sendto loop starves the
      // relay's shard threads, so in-flight datagrams pile up in kernel
      // queues until something overflows. A short blocking wait every few
      // hundred offers cedes the CPU to the relay and drains what it has
      // already forwarded back to us.
      if (++burst >= 256) {
        burst = 0;
        creator.wait_readable(milliseconds(1));
        drain(creator);
        drain(joiner);
      }
    }
    // Drain between rounds so neither the relay's nor our receive queues
    // overflow (loopback, single core: the relay threads need the gap).
    creator.wait_readable(milliseconds(1));
    drain(creator);
    drain(joiner);
  }

  // Phase 3: final drain — keep reading until the relay has been quiet for
  // a few waits (everything in flight has either arrived or been dropped).
  for (int quiet = 0; quiet < 5;) {
    const bool a = creator.wait_readable(milliseconds(20));
    const bool b = a ? true : joiner.wait_readable(milliseconds(20));
    if (!a && !b) {
      ++quiet;
      continue;
    }
    quiet = 0;
    drain(creator);
    drain(joiner);
  }

  report.ok = true;
  return report;
}

}  // namespace rtct::relay
