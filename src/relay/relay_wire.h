// Wire messages of the rtct_relayd lobby/relay protocol.
//
// The relay layer is a *framing* around the core sync protocol, not a
// replacement: a relayed session still runs the exact HELLO/START/SYNC
// negotiation of docs/PROTOCOL.md end to end — the relay forwards DATA
// payloads opaquely, so lockstep/rollback capability bits and every future
// core extension pass through untouched. Lobby messages (CREATE / JOIN /
// LIST / LEAVE and their replies) are versioned independently of the core
// protocol (kRelayProtocolVersion).
//
// Type-byte spaces are disjoint by construction: core messages use
// 0x01..0x07, relay messages 0x40..0x48. A datagram is unambiguously one
// or the other, which lets a client drive lobby traffic and relayed sync
// traffic over a single socket.
//
// Every relayed datagram carries the session's lobby-assigned 32-bit
// connection id: DATA frames are `[0x47][conn_id u32][payload...]`, so the
// relay's dispatch is a single header peek + session-table lookup and the
// forward path re-sends the received bytes verbatim (zero rewrite,
// zero allocation).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace rtct::relay {

/// Lobby protocol version, negotiated independently of the core
/// kProtocolVersion (the relay never parses core payloads).
inline constexpr std::uint16_t kRelayProtocolVersion = 1;

/// Lobby-assigned session identifier, echoed in every relayed datagram.
/// Ids are drawn from a random sequence, not a counter — a conn id is a
/// (weak) capability, and sequential allocation would make live sessions
/// trivially guessable by an off-path sender.
using ConnId = std::uint32_t;
inline constexpr ConnId kNoConn = 0;  ///< never assigned

/// Hard cap on LIST_REPLY entries: bounds the reply datagram well under
/// one UDP/IP MTU-ish payload and stops a hostile count field from
/// driving a large allocation.
inline constexpr std::size_t kMaxListEntries = 64;

/// Encoded size of a LIST_REPLY carrying `n` entries
/// (type byte + count u16 + 14 B per entry).
[[nodiscard]] constexpr std::size_t list_reply_size(std::size_t n) {
  return 1 + 2 + 14 * n;
}

/// First byte of every relay datagram (disjoint from core MsgType 1..7).
enum class RelayMsgType : std::uint8_t {
  kCreate = 0x40,
  kJoin = 0x41,
  kList = 0x42,
  kLeave = 0x43,
  kLobbyOk = 0x44,
  kLobbyErr = 0x45,
  kListReply = 0x46,
  kData = 0x47,
  kEvictNotice = 0x48,
};

enum class LobbyError : std::uint8_t {
  kBadVersion = 1,   ///< client/relay lobby version mismatch
  kNotFound = 2,     ///< JOIN named a session that does not exist
  kSessionFull = 3,  ///< JOIN on a session at max_members
  kAlreadyJoined = 4,  ///< JOIN from an address already in the session
  kServerFull = 5,   ///< CREATE beyond the relay's session cap
};

[[nodiscard]] std::string_view lobby_error_name(LobbyError e);

/// Client -> relay: open a fresh session; the sender becomes member 0.
struct CreateMsg {
  std::uint16_t version = kRelayProtocolVersion;
  std::uint64_t content_id = 0;  ///< game-image hint, shown in LIST
  std::uint8_t max_members = 0;  ///< 0 = relay default (two-site)
};

/// Client -> relay: join an existing session by connection id.
struct JoinMsg {
  std::uint16_t version = kRelayProtocolVersion;
  ConnId conn = kNoConn;
};

/// Client -> relay: enumerate open sessions.
///
/// LIST is the one request whose reply can be much larger than the
/// request, which on spoofable UDP is a reflection/amplification vector.
/// The encoder therefore zero-pads the request up to the size of the
/// reply it is asking for, and the relay never answers with more bytes
/// than the request carried — an unpadded 5-byte LIST gets an empty
/// reply. The decoder accepts (and ignores) the trailing padding.
struct ListMsg {
  std::uint16_t version = kRelayProtocolVersion;
  std::uint16_t max_entries = 0;  ///< 0 = relay default cap
};

/// Client -> relay: drop the sender from the session.
struct LeaveMsg {
  ConnId conn = kNoConn;
};

/// Relay -> client: CREATE/JOIN succeeded. `data_port` is the shard the
/// session is pinned to — all DATA frames for this conn id go there.
struct LobbyOkMsg {
  std::uint16_t version = kRelayProtocolVersion;
  ConnId conn = kNoConn;
  std::uint8_t slot = 0;  ///< member index (0 = creator)
  std::uint16_t data_port = 0;
};

/// Relay -> client: CREATE/JOIN/LIST refused.
struct LobbyErrMsg {
  LobbyError code = LobbyError::kNotFound;
  ConnId conn = kNoConn;  ///< the request's conn id (0 for CREATE/LIST)
};

struct SessionInfo {
  ConnId conn = kNoConn;
  std::uint64_t content_id = 0;
  std::uint8_t members = 0;
  std::uint8_t max_members = 0;
};

struct ListReplyMsg {
  std::vector<SessionInfo> sessions;
};

/// Both directions: an opaque core-protocol datagram relayed within the
/// session. The payload is never decoded by the relay.
struct DataMsg {
  ConnId conn = kNoConn;
  std::vector<std::uint8_t> payload;
};

/// Relay -> member: the conn id no longer names a live session (idle
/// eviction, or DATA for an unknown id). Clients must drop these instead
/// of ingesting them as peer traffic — see session.dropped_unknown_sender.
struct EvictNoticeMsg {
  ConnId conn = kNoConn;
};

using RelayMessage = std::variant<CreateMsg, JoinMsg, ListMsg, LeaveMsg, LobbyOkMsg,
                                  LobbyErrMsg, ListReplyMsg, DataMsg, EvictNoticeMsg>;

/// Encodes into a caller-owned buffer (cleared, capacity kept) — same
/// zero-alloc steady-state contract as core::encode_message_into.
void encode_relay_message_into(const RelayMessage& msg, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> encode_relay_message(const RelayMessage& msg);

/// Encodes a DATA frame header + borrowed payload bytes without copying
/// them into a DataMsg first — the client hot path (one per sync flush).
void encode_data_frame_into(ConnId conn, std::span<const std::uint8_t> payload,
                            std::vector<std::uint8_t>& out);

/// Untrusted-bytes decode; nullopt on anything malformed (including core
/// protocol bytes — their type space is disjoint).
std::optional<RelayMessage> decode_relay_message(std::span<const std::uint8_t> data);

/// Cheap dispatch peek: true when the first byte is a relay DATA frame.
/// The relay's per-datagram hot path uses this + conn id instead of a full
/// decode (the payload is opaque anyway).
[[nodiscard]] bool is_data_frame(std::span<const std::uint8_t> data);
/// Connection id of a DATA frame (pre: is_data_frame).
[[nodiscard]] ConnId data_frame_conn(std::span<const std::uint8_t> data);
/// Payload view of a DATA frame (pre: is_data_frame).
[[nodiscard]] std::span<const std::uint8_t> data_frame_payload(
    std::span<const std::uint8_t> data);

}  // namespace rtct::relay
