#include "src/relay/relay_wire.h"

#include "src/common/bytes.h"

namespace rtct::relay {

namespace {
/// DATA header: type byte + conn id.
constexpr std::size_t kDataHeader = 1 + 4;
}  // namespace

std::string_view lobby_error_name(LobbyError e) {
  switch (e) {
    case LobbyError::kBadVersion: return "bad-version";
    case LobbyError::kNotFound: return "not-found";
    case LobbyError::kSessionFull: return "session-full";
    case LobbyError::kAlreadyJoined: return "already-joined";
    case LobbyError::kServerFull: return "server-full";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_relay_message(const RelayMessage& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(32);
  encode_relay_message_into(msg, out);
  return out;
}

void encode_data_frame_into(ConnId conn, std::span<const std::uint8_t> payload,
                            std::vector<std::uint8_t>& out) {
  ByteWriter w(std::move(out));
  w.u8(static_cast<std::uint8_t>(RelayMsgType::kData));
  w.u32(conn);
  w.bytes(payload);
  out = w.take();
}

void encode_relay_message_into(const RelayMessage& msg, std::vector<std::uint8_t>& out) {
  ByteWriter w(std::move(out));
  if (const auto* create = std::get_if<CreateMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RelayMsgType::kCreate));
    w.u16(create->version);
    w.u64(create->content_id);
    w.u8(create->max_members);
  } else if (const auto* join = std::get_if<JoinMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RelayMsgType::kJoin));
    w.u16(join->version);
    w.u32(join->conn);
  } else if (const auto* list = std::get_if<ListMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RelayMsgType::kList));
    w.u16(list->version);
    w.u16(list->max_entries);
    // Anti-amplification padding: grow the request to the size of the
    // reply it asks for, so the relay's "reply no larger than the
    // request" rule still returns the full listing to honest clients.
    const std::size_t want =
        list->max_entries == 0
            ? kMaxListEntries
            : std::min<std::size_t>(list->max_entries, kMaxListEntries);
    const std::size_t target = list_reply_size(want);
    auto buf = w.take();
    if (buf.size() < target) buf.resize(target, 0);
    out = std::move(buf);
    return;
  } else if (const auto* leave = std::get_if<LeaveMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RelayMsgType::kLeave));
    w.u32(leave->conn);
  } else if (const auto* ok = std::get_if<LobbyOkMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RelayMsgType::kLobbyOk));
    w.u16(ok->version);
    w.u32(ok->conn);
    w.u8(ok->slot);
    w.u16(ok->data_port);
  } else if (const auto* err = std::get_if<LobbyErrMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RelayMsgType::kLobbyErr));
    w.u8(static_cast<std::uint8_t>(err->code));
    w.u32(err->conn);
  } else if (const auto* reply = std::get_if<ListReplyMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RelayMsgType::kListReply));
    const std::size_t n = std::min(reply->sessions.size(), kMaxListEntries);
    w.u16(static_cast<std::uint16_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      const SessionInfo& s = reply->sessions[i];
      w.u32(s.conn);
      w.u64(s.content_id);
      w.u8(s.members);
      w.u8(s.max_members);
    }
  } else if (const auto* data = std::get_if<DataMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RelayMsgType::kData));
    w.u32(data->conn);
    w.bytes(data->payload);
  } else if (const auto* evict = std::get_if<EvictNoticeMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(RelayMsgType::kEvictNotice));
    w.u32(evict->conn);
  }
  out = w.take();
}

std::optional<RelayMessage> decode_relay_message(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const auto type = static_cast<RelayMsgType>(r.u8());
  switch (type) {
    case RelayMsgType::kCreate: {
      CreateMsg m;
      m.version = r.u16();
      m.content_id = r.u64();
      m.max_members = r.u8();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      return m;
    }
    case RelayMsgType::kJoin: {
      JoinMsg m;
      m.version = r.u16();
      m.conn = r.u32();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      return m;
    }
    case RelayMsgType::kList: {
      ListMsg m;
      m.version = r.u16();
      m.max_entries = r.u16();
      if (!r.ok()) return std::nullopt;
      // Trailing bytes are anti-amplification padding (see ListMsg), not
      // garbage: consume and ignore them.
      r.bytes(r.remaining());
      return m;
    }
    case RelayMsgType::kLeave: {
      LeaveMsg m;
      m.conn = r.u32();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      return m;
    }
    case RelayMsgType::kLobbyOk: {
      LobbyOkMsg m;
      m.version = r.u16();
      m.conn = r.u32();
      m.slot = r.u8();
      m.data_port = r.u16();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      return m;
    }
    case RelayMsgType::kLobbyErr: {
      LobbyErrMsg m;
      const std::uint8_t code = r.u8();
      m.conn = r.u32();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      if (code < static_cast<std::uint8_t>(LobbyError::kBadVersion) ||
          code > static_cast<std::uint8_t>(LobbyError::kServerFull)) {
        return std::nullopt;
      }
      m.code = static_cast<LobbyError>(code);
      return m;
    }
    case RelayMsgType::kListReply: {
      ListReplyMsg m;
      const std::uint16_t n = r.u16();
      // 14 bytes per serialized entry; bound by both the protocol cap and
      // the bytes actually present before reserving.
      if (n > kMaxListEntries || n > r.remaining() / 14) return std::nullopt;
      m.sessions.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        SessionInfo s;
        s.conn = r.u32();
        s.content_id = r.u64();
        s.members = r.u8();
        s.max_members = r.u8();
        m.sessions.push_back(s);
      }
      if (!r.ok() || !r.at_end()) return std::nullopt;
      return m;
    }
    case RelayMsgType::kData: {
      DataMsg m;
      m.conn = r.u32();
      if (!r.ok()) return std::nullopt;
      const auto body = r.bytes(r.remaining());
      m.payload.assign(body.begin(), body.end());
      if (m.conn == kNoConn) return std::nullopt;
      return m;
    }
    case RelayMsgType::kEvictNotice: {
      EvictNoticeMsg m;
      m.conn = r.u32();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      return m;
    }
  }
  return std::nullopt;
}

bool is_data_frame(std::span<const std::uint8_t> data) {
  // >=, not >: a zero-payload DATA frame (an empty core-protocol flush)
  // is exactly the header and must agree with decode_relay_message.
  return data.size() >= kDataHeader &&
         data[0] == static_cast<std::uint8_t>(RelayMsgType::kData);
}

ConnId data_frame_conn(std::span<const std::uint8_t> data) {
  ByteReader r(data.subspan(1));
  return r.u32();
}

std::span<const std::uint8_t> data_frame_payload(std::span<const std::uint8_t> data) {
  return data.subspan(kDataHeader);
}

}  // namespace rtct::relay
