// RelayServer — the session-multiplexing relay/lobby engine behind
// rtct_relayd.
//
// One process hosts thousands of concurrent two-site (or small-N) sessions
// over epoll-driven UDP event loops:
//
//  * a lobby socket answers CREATE / JOIN / LIST / LEAVE and assigns each
//    session a 32-bit connection id;
//  * sessions are pinned to one of N shard worker threads by
//    `conn_id % shards`; each shard owns a UDP data socket (its port is
//    announced in the LOBBY_OK reply) and an epoll loop that forwards DATA
//    frames between session members;
//  * the forward path re-sends the received datagram verbatim — the conn
//    id is already framed in, so dispatch is a header peek, a hash lookup
//    and a sendto per fan-out target, with zero per-datagram allocation;
//  * idle sessions (no lobby or data activity for `idle_timeout`) are
//    evicted on a periodic sweep; members get an EVICT_NOTICE, and later
//    DATA for a dead conn id is answered with the same notice so a client
//    can tell "session gone" from silence.
//
// The relay never decodes the core sync protocol: HELLO/START capability
// negotiation (lockstep vs rollback, digest versions, adaptive lag) runs
// end-to-end between the members exactly as over a direct socket.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/telemetry.h"
#include "src/common/time.h"
#include "src/net/udp_socket.h"
#include "src/relay/relay_wire.h"

namespace rtct::relay {

struct RelayConfig {
  std::string bind_ip = "127.0.0.1";
  std::uint16_t lobby_port = 0;  ///< 0 = ephemeral (tests/bench)
  int shards = 2;                ///< worker threads / data sockets, clamped 1..16
  Dur idle_timeout = seconds(30);
  Dur sweep_interval = milliseconds(500);
  std::size_t max_sessions = 8192;
  int default_max_members = 2;  ///< CREATE with max_members=0 gets this
};

class RelayServer {
 public:
  explicit RelayServer(RelayConfig cfg);
  ~RelayServer();
  RelayServer(const RelayServer&) = delete;
  RelayServer& operator=(const RelayServer&) = delete;

  /// Binds lobby + shard sockets and spawns the event-loop threads.
  bool start(std::string* error = nullptr);
  /// Signals every loop and joins the threads. Idempotent.
  void stop();
  [[nodiscard]] bool running() const { return running_.load(std::memory_order_relaxed); }

  [[nodiscard]] std::uint16_t lobby_port() const;
  [[nodiscard]] std::uint16_t shard_port(int shard) const;
  [[nodiscard]] int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Live sessions across all shards (locks each shard briefly).
  [[nodiscard]] std::size_t session_count() const;

  /// Aggregated server counters (thread-safe snapshot).
  struct Stats {
    std::uint64_t sessions_created = 0;
    std::uint64_t sessions_evicted = 0;
    std::uint64_t sessions_closed = 0;  ///< emptied by LEAVE
    std::uint64_t datagrams_forwarded = 0;  ///< accepted inbound DATA frames
    std::uint64_t fanout_datagrams = 0;     ///< outbound copies sent
    std::uint64_t dropped_unknown_session = 0;
    std::uint64_t dropped_unknown_sender = 0;
    std::uint64_t dropped_malformed = 0;
    std::uint64_t lobby_requests = 0;
    std::uint64_t lobby_errors = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Snapshots server state into the registry ("relay.*"): sessions gauge,
  /// eviction/forward/drop counters, per-datagram relay.dispatch_ns
  /// histogram merged across shards.
  void export_metrics(MetricsRegistry& reg) const;

 private:
  struct Member {
    net::UdpAddress addr;
    Time last_seen = 0;
  };
  struct Session {
    ConnId conn = kNoConn;
    std::uint64_t content_id = 0;
    std::uint8_t max_members = 2;
    std::vector<Member> members;
    Time last_activity = 0;
  };
  struct Shard {
    std::unique_ptr<net::UdpSocket> sock;
    std::thread thread;
    mutable std::mutex mu;  ///< guards sessions + the counters below
    std::unordered_map<ConnId, Session> sessions;
    std::uint64_t forwarded = 0;
    std::uint64_t fanout = 0;
    std::uint64_t dropped_unknown_session = 0;
    std::uint64_t dropped_unknown_sender = 0;
    std::uint64_t dropped_malformed = 0;
    std::uint64_t evicted = 0;
    std::uint64_t closed = 0;
    Histogram dispatch_ns;
  };

  void lobby_loop();
  void shard_loop(Shard& shard);
  /// One received lobby datagram -> zero or one reply.
  void handle_lobby(const net::UdpAddress& from, std::span<const std::uint8_t> bytes);
  /// One received data datagram on `shard` (shard.mu NOT held).
  void handle_data(Shard& shard, const net::UdpAddress& from,
                   std::span<const std::uint8_t> bytes);
  void sweep_shard(Shard& shard, Time now);
  void send_lobby(const net::UdpAddress& to, const RelayMessage& msg);
  [[nodiscard]] Shard& shard_for(ConnId conn) {
    return *shards_[conn % shards_.size()];
  }
  /// Draws a fresh, unused, non-zero conn id (lobby thread only).
  /// Randomized, not sequential: a conn id is the only credential a JOIN
  /// or DATA frame carries, so it must not be guessable from another
  /// session's id.
  [[nodiscard]] ConnId allocate_conn();

  RelayConfig cfg_;
  std::unique_ptr<net::UdpSocket> lobby_sock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread lobby_thread_;
  int stop_fd_ = -1;  ///< eventfd: written once by stop(), wakes every epoll
  std::atomic<bool> running_{false};
  std::uint32_t conn_rng_ = 1;  ///< xorshift32 state, lobby thread only

  /// Recently minted sessions by (creator address, content_id), so a
  /// retransmitted CREATE (lost LOBBY_OK) echoes the existing session
  /// instead of minting another one that counts against max_sessions
  /// until the idle sweep. Lobby thread only.
  struct RecentCreate {
    ConnId conn = kNoConn;
    std::uint16_t data_port = 0;
    Time at = 0;
  };
  std::map<std::pair<net::UdpAddress, std::uint64_t>, RecentCreate> recent_creates_;

  // Lobby-side stats (lobby thread writes, any thread reads).
  std::atomic<std::uint64_t> lobby_requests_{0};
  std::atomic<std::uint64_t> lobby_errors_{0};
  std::atomic<std::uint64_t> sessions_created_{0};

  std::vector<std::uint8_t> lobby_scratch_;  ///< lobby thread's encode buffer
};

}  // namespace rtct::relay
