// Client side of the rtct_relayd protocol.
//
// RelayLobby runs the blocking CREATE/JOIN/LIST/LEAVE handshake (with
// bounded retransmission — lobby requests are datagrams and may be lost);
// a successful CREATE/JOIN is then converted into a RelayEndpoint, a
// PollableTransport that frames every outgoing sync datagram as
// `[DATA][conn_id][payload]` and unframes inbound ones, so RealtimeSession
// runs over the relay exactly as over a direct UdpSocket.
//
// The relay identifies session members by the source address of their
// lobby handshake, so the endpoint MUST keep using the lobby's socket —
// into_endpoint() transfers ownership rather than opening a new port.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/net/udp_socket.h"
#include "src/relay/relay_wire.h"

namespace rtct::relay {

/// Outcome of a successful CREATE or JOIN.
struct LobbyResult {
  ConnId conn = kNoConn;
  std::uint8_t slot = 0;
  std::uint16_t data_port = 0;  ///< shard the session is pinned to
};

class RelayEndpoint;

/// Blocking lobby conversation over one UDP socket. Not thread-safe.
class RelayLobby {
 public:
  /// Opens a socket bound to `bind_ip` (ephemeral port) and targets the
  /// relay's lobby at `relay_ip:lobby_port`.
  RelayLobby(const std::string& relay_ip, std::uint16_t lobby_port,
             const std::string& bind_ip = "127.0.0.1");

  [[nodiscard]] bool valid() const;
  [[nodiscard]] const std::string& last_error() const { return error_; }
  /// The relay's LOBBY_ERR code when the last request was refused.
  [[nodiscard]] std::optional<LobbyError> refusal() const { return refusal_; }

  std::optional<LobbyResult> create(std::uint64_t content_id, int max_members = 0);
  std::optional<LobbyResult> join(ConnId conn);
  std::optional<std::vector<SessionInfo>> list(std::uint16_t max_entries = 0);
  /// Fire-and-forget: datagram loss means the session idles out instead.
  void leave(ConnId conn);

  /// Converts this lobby (after a successful create/join) into the data
  /// endpoint for `r`, consuming the socket. The lobby is unusable after.
  std::unique_ptr<RelayEndpoint> into_endpoint(const LobbyResult& r);

  /// Per-request reply timeout and retransmit budget.
  void set_timeout(Dur per_attempt, int attempts);

 private:
  /// Sends `req` and waits for a decodable reply, retransmitting on
  /// timeout. Returns nullopt when every attempt times out.
  std::optional<RelayMessage> request(const RelayMessage& req);

  std::unique_ptr<net::UdpSocket> sock_;
  net::UdpAddress lobby_addr_{};
  bool addr_ok_ = false;
  std::string error_;
  std::optional<LobbyError> refusal_;
  Dur per_attempt_ = milliseconds(250);
  int attempts_ = 4;
  std::vector<std::uint8_t> scratch_;
};

/// The relayed data path: a PollableTransport speaking DATA frames for one
/// connection id. Foreign frames are counted and dropped; an EVICT_NOTICE
/// for our conn id latches `evicted()` so the driver can exit cleanly
/// instead of spinning on a dead session.
class RelayEndpoint final : public net::PollableTransport {
 public:
  RelayEndpoint(std::unique_ptr<net::UdpSocket> sock, net::UdpAddress data_addr,
                net::UdpAddress lobby_addr, ConnId conn);

  void send(std::span<const std::uint8_t> payload) override;
  std::optional<net::Payload> try_recv() override;
  bool wait_readable(Dur timeout) override;
  [[nodiscard]] bool valid() const override { return sock_ != nullptr && sock_->valid(); }
  [[nodiscard]] const std::string& last_error() const override { return sock_->last_error(); }
  void export_metrics(MetricsRegistry& reg) const override;

  [[nodiscard]] ConnId conn() const { return conn_; }
  [[nodiscard]] bool evicted() const { return evicted_; }
  [[nodiscard]] std::uint64_t evict_notices() const { return evict_notices_; }
  /// Datagrams that were not DATA frames for our conn id.
  [[nodiscard]] std::uint64_t dropped_foreign() const { return dropped_foreign_; }
  /// Datagrams whose source address was not the relay (spoofed/injected;
  /// the unconnected socket gets no kernel peer filtering).
  [[nodiscard]] std::uint64_t dropped_non_relay() const { return dropped_non_relay_; }
  [[nodiscard]] net::UdpSocket& socket() { return *sock_; }

  /// Tells the lobby we are done (fire-and-forget).
  void leave();

 private:
  std::unique_ptr<net::UdpSocket> sock_;
  net::UdpAddress data_addr_{};
  net::UdpAddress lobby_addr_{};
  ConnId conn_ = kNoConn;
  bool evicted_ = false;
  std::uint64_t evict_notices_ = 0;
  std::uint64_t dropped_foreign_ = 0;
  std::uint64_t dropped_non_relay_ = 0;
  std::vector<std::uint8_t> scratch_;  ///< DATA-frame encode buffer (reused)
};

}  // namespace rtct::relay
