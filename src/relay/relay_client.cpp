#include "src/relay/relay_client.h"

#include <arpa/inet.h>

#include "src/common/telemetry.h"

namespace rtct::relay {

RelayLobby::RelayLobby(const std::string& relay_ip, std::uint16_t lobby_port,
                       const std::string& bind_ip) {
  sock_ = std::make_unique<net::UdpSocket>(bind_ip, 0);
  if (!sock_->valid()) {
    error_ = sock_->last_error();
    return;
  }
  const auto addr = net::make_udp_address(relay_ip, lobby_port);
  if (!addr) {
    error_ = "bad relay address: " + relay_ip;
    return;
  }
  lobby_addr_ = *addr;
  addr_ok_ = true;
}

bool RelayLobby::valid() const { return sock_ != nullptr && sock_->valid() && addr_ok_; }

void RelayLobby::set_timeout(Dur per_attempt, int attempts) {
  per_attempt_ = per_attempt;
  attempts_ = attempts < 1 ? 1 : attempts;
}

std::optional<RelayMessage> RelayLobby::request(const RelayMessage& req) {
  if (!valid()) return std::nullopt;
  refusal_.reset();
  encode_relay_message_into(req, scratch_);
  for (int attempt = 0; attempt < attempts_; ++attempt) {
    sock_->send_to(lobby_addr_, scratch_);
    const Dur deadline = per_attempt_;
    if (!sock_->wait_readable(deadline)) continue;
    while (auto got = sock_->recv_from()) {
      // The socket is unconnected: only the relay's lobby may answer a
      // lobby request. Anything else is spoofed or stray — drop it.
      if (!(got->second == lobby_addr_)) continue;
      auto reply = decode_relay_message(got->first);
      if (!reply) continue;
      // Only actual lobby replies terminate the request. DATA races the
      // LOBBY_OK whenever a JOIN registers us before the reply arrives
      // (the creator's HELLO fan-out), and a stray EVICT_NOTICE can
      // queue ahead of a retransmitted reply — both decode fine, and
      // returning them here would abort create/join spuriously. Keep
      // draining instead; the sync protocol retransmits anything the
      // drain discards.
      if (std::holds_alternative<LobbyOkMsg>(*reply) ||
          std::holds_alternative<LobbyErrMsg>(*reply) ||
          std::holds_alternative<ListReplyMsg>(*reply)) {
        return reply;
      }
    }
  }
  error_ = "lobby request timed out";
  return std::nullopt;
}

std::optional<LobbyResult> RelayLobby::create(std::uint64_t content_id, int max_members) {
  CreateMsg req;
  req.content_id = content_id;
  req.max_members = static_cast<std::uint8_t>(max_members < 0 ? 0 : max_members);
  const auto reply = request(RelayMessage{req});
  if (!reply) return std::nullopt;
  if (const auto* ok = std::get_if<LobbyOkMsg>(&*reply)) {
    return LobbyResult{ok->conn, ok->slot, ok->data_port};
  }
  if (const auto* err = std::get_if<LobbyErrMsg>(&*reply)) {
    refusal_ = err->code;
    error_ = std::string("create refused: ") + std::string(lobby_error_name(err->code));
  }
  return std::nullopt;
}

std::optional<LobbyResult> RelayLobby::join(ConnId conn) {
  JoinMsg req;
  req.conn = conn;
  const auto reply = request(RelayMessage{req});
  if (!reply) return std::nullopt;
  if (const auto* ok = std::get_if<LobbyOkMsg>(&*reply)) {
    return LobbyResult{ok->conn, ok->slot, ok->data_port};
  }
  if (const auto* err = std::get_if<LobbyErrMsg>(&*reply)) {
    refusal_ = err->code;
    error_ = std::string("join refused: ") + std::string(lobby_error_name(err->code));
  }
  return std::nullopt;
}

std::optional<std::vector<SessionInfo>> RelayLobby::list(std::uint16_t max_entries) {
  ListMsg req;
  req.max_entries = max_entries;
  const auto reply = request(RelayMessage{req});
  if (!reply) return std::nullopt;
  if (const auto* r = std::get_if<ListReplyMsg>(&*reply)) return r->sessions;
  if (const auto* err = std::get_if<LobbyErrMsg>(&*reply)) {
    refusal_ = err->code;
    error_ = std::string("list refused: ") + std::string(lobby_error_name(err->code));
  }
  return std::nullopt;
}

void RelayLobby::leave(ConnId conn) {
  if (!valid()) return;
  encode_relay_message_into(RelayMessage{LeaveMsg{conn}}, scratch_);
  sock_->send_to(lobby_addr_, scratch_);
}

std::unique_ptr<RelayEndpoint> RelayLobby::into_endpoint(const LobbyResult& r) {
  if (!valid()) return nullptr;
  net::UdpAddress data_addr = lobby_addr_;
  data_addr.port = htons(r.data_port);
  auto ep = std::make_unique<RelayEndpoint>(std::move(sock_), data_addr, lobby_addr_, r.conn);
  addr_ok_ = false;  // lobby is spent
  return ep;
}

// ---- RelayEndpoint ----------------------------------------------------------

RelayEndpoint::RelayEndpoint(std::unique_ptr<net::UdpSocket> sock,
                             net::UdpAddress data_addr, net::UdpAddress lobby_addr,
                             ConnId conn)
    : sock_(std::move(sock)), data_addr_(data_addr), lobby_addr_(lobby_addr), conn_(conn) {}

void RelayEndpoint::send(std::span<const std::uint8_t> payload) {
  encode_data_frame_into(conn_, payload, scratch_);
  sock_->send_to(data_addr_, scratch_);
}

std::optional<net::Payload> RelayEndpoint::try_recv() {
  while (auto got = sock_->recv_from()) {
    // The socket is unconnected (the relay addresses us by the handshake
    // source address, so we cannot connect()), which means any off-path
    // host that learns our port could inject core-protocol payloads or a
    // spoofed EVICT_NOTICE. Emulate the kernel filtering a connected
    // socket would give us: only the relay's data and lobby sockets are
    // valid senders.
    if (!(got->second == data_addr_ || got->second == lobby_addr_)) {
      ++dropped_non_relay_;
      continue;
    }
    const net::Payload& bytes = got->first;
    if (is_data_frame(bytes) && data_frame_conn(bytes) == conn_) {
      const auto payload = data_frame_payload(bytes);
      return net::Payload(payload.begin(), payload.end());
    }
    if (const auto msg = decode_relay_message(bytes)) {
      if (const auto* evict = std::get_if<EvictNoticeMsg>(&*msg);
          evict != nullptr && evict->conn == conn_) {
        // Our session died on the relay (idle eviction / restart). Latch it
        // rather than ingesting the notice as peer traffic.
        evicted_ = true;
        ++evict_notices_;
        continue;
      }
    }
    ++dropped_foreign_;
  }
  return std::nullopt;
}

bool RelayEndpoint::wait_readable(Dur timeout) { return sock_->wait_readable(timeout); }

void RelayEndpoint::export_metrics(MetricsRegistry& reg) const {
  sock_->export_metrics(reg);
  reg.counter("net.relay.evict_notices").set(evict_notices_);
  reg.counter("net.relay.dropped_foreign").set(dropped_foreign_);
  reg.counter("net.relay.dropped_non_relay").set(dropped_non_relay_);
  reg.gauge("net.relay.evicted").set(evicted_ ? 1 : 0);
}

void RelayEndpoint::leave() {
  encode_relay_message_into(RelayMessage{LeaveMsg{conn_}}, scratch_);
  sock_->send_to(lobby_addr_, scratch_);
}

}  // namespace rtct::relay
