// Synthetic relay load generator — the traffic source behind
// bench/relay_scaling and the relay soak tests.
//
// Drives N concurrent two-member sessions against a running RelayServer
// from just two client sockets: the relay keys sessions by connection id
// and members by source address, so one (creator, joiner) socket pair can
// be a member of every session at once. That keeps a 1000-session bench
// within a handful of fds while still exercising a 1000-entry session
// table and real per-datagram dispatch.
//
// Send schedules are modulated by the chaos FaultScript machinery: loss
// windows from generate_fault_script(seed, kTwoSite) suppress sends
// client-side, so the offered load is deterministically bursty rather than
// a uniform drumbeat (seeds are full repro tokens, as everywhere in the
// chaos harness).
//
// Every payload embeds the sender's steady-clock send time; the receiving
// side turns arrivals into exact one-way relay latencies (same process,
// same clock), reported as a Series alongside delivery counts.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/stats.h"

namespace rtct::relay {

struct LoadGenConfig {
  std::string relay_ip = "127.0.0.1";
  std::uint16_t lobby_port = 0;  ///< lobby of an already-running relay
  int sessions = 64;
  int rounds = 100;        ///< send rounds; each round offers one datagram
                           ///< per member per session (minus fault windows)
  int payload_bytes = 64;  ///< datagram payload size (>= 16 for the stamps)
  std::uint64_t seed = 1;  ///< FaultScript seed for the send schedule
  bool faults = true;      ///< false = uniform offered load (no chaos)
};

struct LoadGenReport {
  bool ok = false;            ///< every session was created and joined
  std::string error;
  int sessions = 0;           ///< sessions actually established
  std::uint64_t offered = 0;  ///< datagrams handed to sendto()
  std::uint64_t suppressed = 0;  ///< sends skipped by fault windows
  std::uint64_t delivered = 0;   ///< relayed datagrams received back
  Series latency_ms;          ///< per-delivery one-way relay latency
  [[nodiscard]] double delivery_ratio() const {
    return offered == 0 ? 0 : static_cast<double>(delivered) / static_cast<double>(offered);
  }
};

/// Runs the full workload (handshakes + send/drain rounds + final drain)
/// against the relay at `cfg.relay_ip:cfg.lobby_port`. Blocking.
LoadGenReport run_relay_load(const LoadGenConfig& cfg);

}  // namespace rtct::relay
