#include "src/baseline/tcp_like.h"

#include "src/common/bytes.h"

namespace rtct::baseline {

namespace {
constexpr std::uint8_t kData = 1;
constexpr std::uint8_t kAck = 2;
}  // namespace

TcpLikeEndpoint::TcpLikeEndpoint(sim::Simulator& sim, net::SimEndpoint& under, Dur rto)
    : sim_(sim), under_(under), rto_(rto), deliverable_(sim) {
  // Dedicated pump process: acks must not wait for the application to poll.
  struct Spawner {
    static sim::Task run(TcpLikeEndpoint* self) {
      for (;;) {
        if (self->under_.inbox_size() == 0) co_await self->under_.arrival_trigger().wait();
        self->pump();
      }
    }
  };
  sim_.spawn(Spawner::run(this));
}

void TcpLikeEndpoint::send(std::span<const std::uint8_t> payload) {
  const std::uint64_t seq = next_send_seq_++;
  unacked_[seq] = net::Payload(payload.begin(), payload.end());
  transmit(seq);
  arm_timer();
}

void TcpLikeEndpoint::transmit(std::uint64_t seq) {
  ByteWriter w(unacked_[seq].size() + 16);
  w.u8(kData);
  w.u64(seq);
  w.bytes(unacked_[seq]);
  under_.send(w.data());
  ++stats_.segments_sent;
}

void TcpLikeEndpoint::send_ack() {
  ByteWriter w(9);
  w.u8(kAck);
  w.u64(next_deliver_seq_);  // cumulative: "I have everything below this"
  under_.send(w.data());
  ++stats_.acks_sent;
}

void TcpLikeEndpoint::arm_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  sim_.schedule_in(rto_, [this] { on_timer(); });
}

void TcpLikeEndpoint::on_timer() {
  timer_armed_ = false;
  if (unacked_.empty()) return;
  // Go-back-N: resend the whole unacked window.
  for (const auto& [seq, payload] : unacked_) {
    (void)payload;
    transmit(seq);
    ++stats_.retransmissions;
  }
  arm_timer();
}

void TcpLikeEndpoint::pump() {
  bool delivered = false;
  while (auto raw = under_.try_recv()) {
    ByteReader r(*raw);
    const std::uint8_t kind = r.u8();
    if (kind == kData) {
      const std::uint64_t seq = r.u64();
      const auto body = r.bytes(r.remaining());
      if (!r.ok()) continue;
      if (seq < next_deliver_seq_ || reorder_buf_.count(seq) != 0) {
        ++stats_.duplicate_segments;
        send_ack();  // re-ack so the sender stops resending
        continue;
      }
      if (seq != next_deliver_seq_) ++stats_.out_of_order_buffered;
      reorder_buf_[seq] = net::Payload(body.begin(), body.end());
      while (true) {  // deliver the in-order prefix
        auto it = reorder_buf_.find(next_deliver_seq_);
        if (it == reorder_buf_.end()) break;
        app_inbox_.push_back(std::move(it->second));
        reorder_buf_.erase(it);
        ++next_deliver_seq_;
        delivered = true;
      }
      send_ack();
    } else if (kind == kAck) {
      const std::uint64_t upto = r.u64();
      if (!r.ok()) continue;
      while (!unacked_.empty() && unacked_.begin()->first < upto) {
        unacked_.erase(unacked_.begin());
      }
      if (upto > send_base_) send_base_ = upto;
    }
  }
  if (delivered) deliverable_.notify_all();
}

std::optional<net::Payload> TcpLikeEndpoint::try_recv() {
  if (app_inbox_.empty()) return std::nullopt;
  net::Payload p = std::move(app_inbox_.front());
  app_inbox_.pop_front();
  return p;
}

}  // namespace rtct::baseline
