// TcpLikeEndpoint — a reliable, strictly in-order stream transport layered
// over a lossy simulated datagram path.
//
// The paper rejects TCP for the sync channel (§3.1: "as a reliable
// transport, TCP solves those problems. However, it is problematic in
// satisfying the real time constraint") and re-implements just the needed
// reliability over UDP. This baseline exists to *measure* that claim
// (bench/ablation_transport): it delivers every payload exactly once and
// in order — so a single lost datagram head-of-line-blocks every later
// arrival until a retransmission timeout (go-back-N), which is the latency
// behaviour that breaks lockstep gaming.
//
// It is deliberately a minimal TCP analogue: cumulative acks, fixed RTO
// (no Karn/Jacobson), go-back-N. Those simplifications make it *kinder*
// than real TCP under loss (no slow start, no congestion window collapse),
// so the measured gap versus the paper's UDP scheme is a lower bound.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "src/common/time.h"
#include "src/net/sim_network.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"
#include "src/sim/trigger.h"

namespace rtct::baseline {

struct TcpLikeStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t out_of_order_buffered = 0;
  std::uint64_t duplicate_segments = 0;
  std::uint64_t acks_sent = 0;
};

class TcpLikeEndpoint final : public net::DatagramTransport {
 public:
  /// `under` is the raw (lossy) path endpoint; `rto` the fixed
  /// retransmission timeout.
  TcpLikeEndpoint(sim::Simulator& sim, net::SimEndpoint& under, Dur rto);

  /// Reliable, ordered send of one payload.
  void send(std::span<const std::uint8_t> payload) override;

  /// Next payload in send order, if the head of the stream has arrived.
  std::optional<net::Payload> try_recv() override;

  /// Notified when a payload becomes deliverable in order.
  [[nodiscard]] sim::Trigger& deliverable_trigger() { return deliverable_; }

  [[nodiscard]] const TcpLikeStats& stats() const { return stats_; }

 private:
  void pump();                        ///< drain the underlying endpoint
  void transmit(std::uint64_t seq);   ///< (re)send one stored segment
  void send_ack();
  void arm_timer();
  void on_timer();

  sim::Simulator& sim_;
  net::SimEndpoint& under_;
  Dur rto_;

  std::uint64_t next_send_seq_ = 0;
  std::uint64_t send_base_ = 0;  ///< oldest unacked seq
  std::map<std::uint64_t, net::Payload> unacked_;

  std::uint64_t next_deliver_seq_ = 0;
  std::map<std::uint64_t, net::Payload> reorder_buf_;
  std::deque<net::Payload> app_inbox_;

  bool timer_armed_ = false;
  sim::Trigger deliverable_;
  TcpLikeStats stats_;
};

}  // namespace rtct::baseline
