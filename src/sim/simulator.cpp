#include "src/sim/simulator.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace rtct::sim {

void Task::promise_type::return_void() noexcept {
  finished = true;
  if (sim != nullptr) sim->any_finished_ = true;
}

void Task::promise_type::unhandled_exception() noexcept {
  // A simulation process leaking an exception is a programming error: there
  // is no one above the event loop to handle it meaningfully.
  std::fprintf(stderr, "rtct::sim: unhandled exception escaping a Task\n");
  std::abort();
}

void SleepAwaiter::await_suspend(std::coroutine_handle<> h) {
  sim.schedule_in(d, [h] { h.resume(); });
}

Simulator::~Simulator() {
  // Drop pending events first (they may capture coroutine handles we are
  // about to destroy), then destroy any still-live coroutine frames.
  while (!queue_.empty()) queue_.pop();
  for (auto h : tasks_) h.destroy();
}

void Simulator::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::spawn(Task task) {
  auto h = task.h_;
  task.h_ = nullptr;  // the simulator now owns the frame
  h.promise().sim = this;
  tasks_.push_back(h);
  h.resume();  // run until the first suspension (or completion)
  if (any_finished_) prune_finished();
}

void Simulator::run_event(Event& ev) {
  now_ = ev.t;
  ev.fn();
  if (any_finished_) prune_finished();
}

void Simulator::prune_finished() {
  std::erase_if(tasks_, [](auto h) {
    if (!h.promise().finished) return false;
    h.destroy();
    return true;
  });
  any_finished_ = false;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast (safe: we pop
  // immediately and never touch the moved-from element again).
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  run_event(ev);
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time t) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().t <= t) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    run_event(ev);
    ++n;
  }
  now_ = t;
  return n;
}

}  // namespace rtct::sim
