// Condition-variable analogue for simulation coroutines.
//
// A site process blocked in Algorithm 2's receive loop must wake either when
// a datagram arrives (notify) or when its periodic send timer is due
// (deadline) — Trigger::wait_until models exactly that race.
#pragma once

#include <coroutine>
#include <memory>
#include <vector>

#include "src/sim/simulator.h"

namespace rtct::sim {

class Trigger {
 public:
  explicit Trigger(Simulator& sim) : sim_(sim) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  /// Wakes every coroutine currently waiting. Wakeups are scheduled at the
  /// current virtual time (not resumed inline) so a notifier never runs a
  /// waiter's code in its own stack frame.
  void notify_all();

  /// `co_await trigger.wait()` — suspends until the next notify_all().
  [[nodiscard]] auto wait() { return WaitAwaiter{*this}; }

  /// `bool notified = co_await trigger.wait_until(deadline)` — suspends
  /// until notify_all() or the virtual-time deadline, whichever first.
  /// Returns true if notified, false on timeout.
  [[nodiscard]] auto wait_until(Time deadline) { return TimedWaitAwaiter{*this, deadline, {}}; }

  [[nodiscard]] std::size_t waiter_count() const;

 private:
  struct WaitState {
    std::coroutine_handle<> h;
    bool fired = false;
    bool notified = false;
  };

  struct WaitAwaiter {
    Trigger& trig;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  struct TimedWaitAwaiter {
    Trigger& trig;
    Time deadline;
    std::shared_ptr<WaitState> state;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    [[nodiscard]] bool await_resume() const noexcept { return state->notified; }
  };

  std::shared_ptr<WaitState> add_waiter(std::coroutine_handle<> h);

  Simulator& sim_;
  std::vector<std::shared_ptr<WaitState>> waiters_;
};

}  // namespace rtct::sim
