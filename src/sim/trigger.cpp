#include "src/sim/trigger.h"

#include <algorithm>

namespace rtct::sim {

std::shared_ptr<Trigger::WaitState> Trigger::add_waiter(std::coroutine_handle<> h) {
  // Lazily drop entries already consumed by a timeout.
  std::erase_if(waiters_, [](const auto& w) { return w->fired; });
  auto state = std::make_shared<WaitState>();
  state->h = h;
  waiters_.push_back(state);
  return state;
}

void Trigger::notify_all() {
  // Swap out the list first: a resumed waiter may immediately wait again,
  // and that new registration must not receive this notification.
  std::vector<std::shared_ptr<WaitState>> pending;
  pending.swap(waiters_);
  for (auto& w : pending) {
    if (w->fired) continue;
    w->fired = true;
    w->notified = true;
    sim_.schedule_at(sim_.now(), [w] { w->h.resume(); });
  }
}

std::size_t Trigger::waiter_count() const {
  return static_cast<std::size_t>(
      std::count_if(waiters_.begin(), waiters_.end(), [](const auto& w) { return !w->fired; }));
}

void Trigger::WaitAwaiter::await_suspend(std::coroutine_handle<> h) { trig.add_waiter(h); }

void Trigger::TimedWaitAwaiter::await_suspend(std::coroutine_handle<> h) {
  state = trig.add_waiter(h);
  auto s = state;
  trig.sim_.schedule_at(deadline, [s] {
    if (s->fired) return;
    s->fired = true;
    s->notified = false;
    s->h.resume();
  });
}

}  // namespace rtct::sim
