// Discrete-event simulation kernel with C++20 coroutine processes.
//
// This substrate replaces the paper's physical testbed (two Windows PCs, a
// Gentoo Netem box and a LAN time server) with deterministic virtual time:
// every timing result in the benches is exactly reproducible, and a 3 600-
// frame experiment that takes a minute of wall clock on hardware completes
// in milliseconds.
//
// Model: a single global virtual clock and an ordered event queue. Site
// processes are coroutines that `co_await sim.sleep(dt)` or block on
// `Trigger`s (condition-variable analogue); the network model delivers
// datagrams by scheduling future events. Events at equal times run in
// schedule order (stable FIFO), so runs are bit-reproducible.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/time.h"

namespace rtct::sim {

class Simulator;

/// A detached simulation process. Obtained by calling a coroutine function
/// returning Task, then handed to Simulator::spawn(), which owns the frame
/// until the coroutine completes (or the simulator is destroyed).
class Task {
 public:
  struct promise_type {
    Simulator* sim = nullptr;
    bool finished = false;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept;
    [[noreturn]] void unhandled_exception() noexcept;
  };

  Task(Task&& o) noexcept : h_(o.h_) { o.h_ = nullptr; }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();  // spawn() was never called
  }

 private:
  friend class Simulator;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

/// Awaitable returned by Simulator::sleep().
struct SleepAwaiter {
  Simulator& sim;
  Dur d;
  [[nodiscard]] bool await_ready() const noexcept { return d <= 0; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules a callback at absolute virtual time `t` (clamped to now).
  void schedule_at(Time t, std::function<void()> fn);
  /// Schedules a callback `d` from now.
  void schedule_in(Dur d, std::function<void()> fn) { schedule_at(now_ + d, std::move(fn)); }

  /// Starts a coroutine process. The simulator owns the coroutine frame.
  void spawn(Task task);

  /// In-coroutine: suspends the caller for virtual duration `d`.
  [[nodiscard]] SleepAwaiter sleep(Dur d) { return SleepAwaiter{*this, d}; }

  /// Runs the next pending event. Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue drains. Returns the number executed.
  std::size_t run();

  /// Runs all events with time <= t, then advances the clock to t.
  std::size_t run_until(Time t);
  std::size_t run_for(Dur d) { return run_until(now_ + d); }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::size_t live_tasks() const { return tasks_.size(); }

 private:
  friend struct Task::promise_type;

  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  void run_event(Event& ev);
  void prune_finished();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::vector<std::coroutine_handle<Task::promise_type>> tasks_;
  bool any_finished_ = false;
};

}  // namespace rtct::sim
