// TRON — two light cycles leave permanent trails; touching any lit pixel
// (wall, either trail) crashes and scores for the opponent.
//
// Controls: Up/Down/Left/Right (bits 0-3) steer. Cycles advance every
// second frame. Uniquely among the bundled games, collision detection
// *reads the framebuffer back* (LDB from video memory), exercising the
// video region as ordinary addressable RAM.
#include "src/games/detail.h"
#include "src/games/roms.h"

namespace rtct::games {

namespace {
constexpr const char* kSource = R"asm(
; ---------------------------------------------------------------- TRON ----
.equ STATE, 0x8000
.equ FB,    0xA000
.equ X0,   0
.equ Y0,   2
.equ D0,   4          ; 0=up 1=down 2=left 3=right
.equ X1,   6
.equ Y1,   8
.equ D1,   10
.equ S0,   12
.equ S1,   14
.equ INIT, 16

.entry main
main:
    LDI r14, STATE
    LDW r0, r14, INIT
    CMPI r0, 0
    JNZ frame
    CALL arena_reset
    LDI r0, 1
    STW r14, r0, INIT

frame:
    IN  r0, 2             ; move on even frames only
    ANDI r0, 1
    JZ  do_move
    HALT
    JMP frame

do_move:
    ; ---- steer player 0
    IN  r0, 0
    LDW r4, r14, D0
    MOV r3, r0
    ANDI r3, 1
    JZ  p0_not_up
    LDI r4, 0
p0_not_up:
    MOV r3, r0
    ANDI r3, 2
    JZ  p0_not_down
    LDI r4, 1
p0_not_down:
    MOV r3, r0
    ANDI r3, 4
    JZ  p0_not_left
    LDI r4, 2
p0_not_left:
    MOV r3, r0
    ANDI r3, 8
    JZ  p0_not_right
    LDI r4, 3
p0_not_right:
    STW r14, r4, D0

    ; ---- steer player 1
    IN  r0, 1
    LDW r4, r14, D1
    MOV r3, r0
    ANDI r3, 1
    JZ  p1_not_up
    LDI r4, 0
p1_not_up:
    MOV r3, r0
    ANDI r3, 2
    JZ  p1_not_down
    LDI r4, 1
p1_not_down:
    MOV r3, r0
    ANDI r3, 4
    JZ  p1_not_left
    LDI r4, 2
p1_not_left:
    MOV r3, r0
    ANDI r3, 8
    JZ  p1_not_right
    LDI r4, 3
p1_not_right:
    STW r14, r4, D1

    ; ---- advance player 0 (r2=x r3=y r4=d)
    LDW r2, r14, X0
    LDW r3, r14, Y0
    LDW r4, r14, D0
    CALL advance
    ; collision probe at the new cell
    MOV r5, r3
    SHLI r5, 6
    ADD r5, r2
    ADDI r5, FB
    LDB r6, r5
    CMPI r6, 0
    JZ  p0_clear
    LDW r6, r14, S1       ; crash: point to player 1
    ADDI r6, 1
    STW r14, r6, S1
    CALL arena_reset
    JMP end_frame
p0_clear:
    LDI r6, 2             ; lay trail
    STB r5, r6
    STW r14, r2, X0
    STW r14, r3, Y0

    ; ---- advance player 1
    LDW r2, r14, X1
    LDW r3, r14, Y1
    LDW r4, r14, D1
    CALL advance
    MOV r5, r3
    SHLI r5, 6
    ADD r5, r2
    ADDI r5, FB
    LDB r6, r5
    CMPI r6, 0
    JZ  p1_clear
    LDW r6, r14, S0
    ADDI r6, 1
    STW r14, r6, S0
    CALL arena_reset
    JMP end_frame
p1_clear:
    LDI r6, 3
    STB r5, r6
    STW r14, r2, X1
    STW r14, r3, Y1

end_frame:
    LDW r2, r14, S0       ; tone tracks the score totals
    LDW r3, r14, S1
    ADD r2, r3
    OUT 4, r2
    HALT
    JMP frame

; ---- advance (r2=x r3=y r4=dir) — one step in direction ------------------
advance:
    CMPI r4, 0
    JNZ adv_not_up
    SUBI r3, 1
    RET
adv_not_up:
    CMPI r4, 1
    JNZ adv_not_down
    ADDI r3, 1
    RET
adv_not_down:
    CMPI r4, 2
    JNZ adv_not_left
    SUBI r2, 1
    RET
adv_not_left:
    ADDI r2, 1
    RET

; ---- arena_reset: clear, draw walls, respawn cycles -----------------------
arena_reset:
    LDI r4, FB
    LDI r5, 3072
    LDI r6, 0
ar_clear:
    STB r4, r6
    ADDI r4, 1
    SUBI r5, 1
    JNZ ar_clear

    LDI r4, FB            ; top + bottom walls
    LDI r5, FB + 3008
    LDI r6, 64
    LDI r7, 1
ar_rows:
    STB r4, r7
    STB r5, r7
    ADDI r4, 1
    ADDI r5, 1
    SUBI r6, 1
    JNZ ar_rows

    LDI r4, FB            ; left + right walls
    LDI r5, FB + 63
    LDI r6, 48
ar_cols:
    STB r4, r7
    STB r5, r7
    ADDI r4, 64
    ADDI r5, 64
    SUBI r6, 1
    JNZ ar_cols

    LDI r2, 10            ; player 0 spawns left, heading right
    STW r14, r2, X0
    LDI r2, 24
    STW r14, r2, Y0
    LDI r2, 3
    STW r14, r2, D0
    LDI r2, 53            ; player 1 spawns right, heading left
    STW r14, r2, X1
    LDI r2, 24
    STW r14, r2, Y1
    LDI r2, 2
    STW r14, r2, D1

    ; seed trail pixels at the spawn cells
    LDI r4, FB + 24 * 64 + 10
    LDI r6, 2
    STB r4, r6
    LDI r4, FB + 24 * 64 + 53
    LDI r6, 3
    STB r4, r6
    RET
)asm";
}  // namespace

const emu::Rom& tron_rom() {
  static const emu::Rom rom = detail::build_rom("tron", kSource);
  return rom;
}

}  // namespace rtct::games
