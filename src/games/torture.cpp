// TORTURE — a determinism stressor, not a game.
//
// Every frame it folds both players' inputs and the frame counter into a
// multiplicative PRNG seed, scatters XOR writes across a RAM page, recurses
// to an input-dependent stack depth, and splats pseudo-random framebuffer
// pixels. A single wrong, lost, duplicated or reordered input bit at either
// site diverges the state hash within one frame and keeps it diverged —
// making it the sharpest possible probe of the sync layer's logical
// consistency guarantee.
#include "src/games/detail.h"
#include "src/games/roms.h"

namespace rtct::games {

namespace {
constexpr const char* kSource = R"asm(
; ------------------------------------------------------------- TORTURE ----
.equ STATE,   0x8000
.equ SCRATCH, 0x8100
.equ FB,      0xA000
.equ SEED, 0

.entry main
main:
    LDI r14, STATE
frame:
    IN  r0, 0             ; player 0 buttons
    IN  r1, 1             ; player 1 buttons
    IN  r2, 2             ; frame counter (low)
    LDW r5, r14, SEED
    MULI r5, 31421        ; LCG step
    ADDI r5, 6927
    XOR r5, r0            ; fold in inputs
    MOV r6, r1
    SHLI r6, 8
    XOR r5, r6
    ADD r5, r2

    ; scatter 64 XOR writes across the scratch page
    LDI r7, 64
scatter:
    MOV r8, r5
    SHRI r8, 3
    MOV r9, r7
    MULI r9, 7
    ADD r8, r9
    ANDI r8, 0xFF
    ADDI r8, SCRATCH
    LDB r9, r8
    MOV r10, r5
    ADD r10, r7
    XOR r9, r10
    STB r8, r9
    MULI r5, 5            ; remix between writes
    ADDI r5, 77
    SUBI r7, 1
    JNZ scatter

    ; input-dependent recursion depth (exercises CALL/RET/PUSH/POP)
    MOV r3, r0
    ANDI r3, 7
    ADDI r3, 2
    CALL rec

    ; splat 8 pseudo-random pixels
    LDI r7, 8
pixels:
    MOV r8, r5
    ANDI r8, 2047
    ADDI r8, FB
    STB r8, r5
    MULI r5, 9
    ADDI r5, 12345
    SUBI r7, 1
    JNZ pixels

    OUT 4, r5             ; tone follows the seed
    STW r14, r5, SEED
    HALT
    JMP frame

rec:
    CMPI r3, 0
    JZ  rec_done
    PUSH r3
    SUBI r3, 1
    CALL rec
    POP r3
    XORI r5, 0x5A5A
    ADD r5, r3
rec_done:
    RET
)asm";
}  // namespace

const emu::Rom& torture_rom() {
  static const emu::Rom rom = detail::build_rom("torture", kSource);
  return rom;
}

}  // namespace rtct::games
