// The bundled "legacy game" catalogue.
//
// Each game is an AC16 assembly program, assembled on first use. They play
// the role of the paper's Street Fighter 2 image: opaque two-player ROMs
// the sync layer drives without any semantic knowledge. All four read both
// players' controller ports every frame, so replica divergence caused by a
// sync bug shows up immediately in the state hash.
//
//   pong      two paddles, a ball, scores — the archetypal two-player game
//   duel      a minimal fighting game (move / punch / block / rounds)
//   invaders  co-op fixed shooter (marching aliens, two ships, bullets)
//   tron      light-cycle duel (trail collision via framebuffer readback)
//   tanks     artillery duel (fixed-point ballistics, ROM data tables)
//   quadtron  FOUR-player light cycles (nibble-per-player inputs; the
//             demonstration game for the N-site mesh extension)
//   torture   determinism stressor: input-seeded PRNG scribbling over RAM,
//             deep CALL recursion, MUL/shift mixing — no gameplay, maximal
//             state sensitivity to any lost or reordered input bit
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "src/emu/machine.h"
#include "src/emu/rom.h"

namespace rtct::games {

const emu::Rom& pong_rom();
const emu::Rom& duel_rom();
const emu::Rom& invaders_rom();
const emu::Rom& tron_rom();
const emu::Rom& tanks_rom();
const emu::Rom& quadtron_rom();
const emu::Rom& torture_rom();

/// Names accepted by rom_by_name / make_machine.
std::vector<std::string_view> game_names();

/// Returns nullptr for an unknown name.
const emu::Rom* rom_by_name(std::string_view name);

/// Convenience: a fresh machine running the named game (nullptr if unknown).
std::unique_ptr<emu::ArcadeMachine> make_machine(std::string_view name);

/// Same, with an explicit machine configuration (cycle budget, interpreter
/// backend) — used by the differential harness and benchmarks.
std::unique_ptr<emu::ArcadeMachine> make_machine(std::string_view name,
                                                 emu::MachineConfig cfg);

/// Resolves a recorded content id (replay header, session handshake) back
/// to a fresh replica of the game that produced it — every bundled ROM
/// plus the synthetic CellWars game. Returns nullptr for an unknown id;
/// offline tooling (seek, bisect) needs this to re-simulate recordings.
std::unique_ptr<emu::IDeterministicGame> make_game_for_content(std::uint64_t content_id);

}  // namespace rtct::games
