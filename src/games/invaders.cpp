// INVADERS — a co-operative fixed shooter: 3x8 aliens march and descend,
// two ships (one per player) fire one bullet each.
//
// Controls: Left (bit2) / Right (bit3), A (bit4) fires. A cleared wave
// respawns higher score intact; an alien reaching row 30 ends the game
// (the machine keeps rendering a frozen screen).
#include "src/games/detail.h"
#include "src/games/roms.h"

namespace rtct::games {

namespace {
constexpr const char* kSource = R"asm(
; ------------------------------------------------------------ INVADERS ----
.equ STATE,  0x8000
.equ ALIENS, 0x8040     ; 24 alive-flag bytes
.equ FB,     0xA000
.equ INIT,  0
.equ AX,    2           ; march x offset (0..15)
.equ AY,    4           ; march y offset
.equ ADIR,  6           ; +1 / -1
.equ SHIP0, 8
.equ SHIP1, 10
.equ B0X,   12          ; bullet records: {x, y, active}
.equ B0Y,   14
.equ B0A,   16
.equ B1X,   18
.equ B1Y,   20
.equ B1A,   22
.equ SCORE, 24
.equ OVER,  26
.equ TICK,  28
.equ ALIVE, 30

.entry main
main:
    LDI r14, STATE
    LDI r13, ALIENS
    LDW r0, r14, INIT
    CMPI r0, 0
    JNZ frame
    CALL init_aliens
    LDI r0, 4
    STW r14, r0, AX
    STW r14, r0, AY
    LDI r0, 1
    STW r14, r0, ADIR
    LDI r0, 20
    STW r14, r0, SHIP0
    LDI r0, 40
    STW r14, r0, SHIP1
    LDI r0, 1
    STW r14, r0, INIT

frame:
    LDW r7, r14, OVER
    CMPI r7, 0
    JNZ render            ; frozen after game over

    IN  r0, 0
    IN  r1, 1

    ; ---- ship 0 movement + fire
    LDW r2, r14, SHIP0
    MOV r3, r0
    ANDI r3, 4
    JZ  s0_nl
    CMPI r2, 0
    JZ  s0_nl
    SUBI r2, 1
s0_nl:
    MOV r3, r0
    ANDI r3, 8
    JZ  s0_nr
    CMPI r2, 60
    JZ  s0_nr
    ADDI r2, 1
s0_nr:
    STW r14, r2, SHIP0
    MOV r3, r0
    ANDI r3, 16
    JZ  s0_nofire
    LDW r4, r14, B0A
    CMPI r4, 0
    JNZ s0_nofire
    ADDI r2, 1
    STW r14, r2, B0X
    LDI r4, 43
    STW r14, r4, B0Y
    LDI r4, 1
    STW r14, r4, B0A
s0_nofire:

    ; ---- ship 1 movement + fire
    LDW r2, r14, SHIP1
    MOV r3, r1
    ANDI r3, 4
    JZ  s1_nl
    CMPI r2, 0
    JZ  s1_nl
    SUBI r2, 1
s1_nl:
    MOV r3, r1
    ANDI r3, 8
    JZ  s1_nr
    CMPI r2, 60
    JZ  s1_nr
    ADDI r2, 1
s1_nr:
    STW r14, r2, SHIP1
    MOV r3, r1
    ANDI r3, 16
    JZ  s1_nofire
    LDW r4, r14, B1A
    CMPI r4, 0
    JNZ s1_nofire
    ADDI r2, 1
    STW r14, r2, B1X
    LDI r4, 43
    STW r14, r4, B1Y
    LDI r4, 1
    STW r14, r4, B1A
s1_nofire:

    ; ---- bullets fly and collide
    LDI r11, STATE + B0X
    CALL bullet_update
    LDI r11, STATE + B1X
    CALL bullet_update

    ; ---- wave cleared? respawn
    LDW r7, r14, ALIVE
    CMPI r7, 0
    JNZ wave_ok
    CALL init_aliens
    LDI r7, 4
    STW r14, r7, AY
wave_ok:

    ; ---- march every 8th frame
    LDW r7, r14, TICK
    ADDI r7, 1
    STW r14, r7, TICK
    ANDI r7, 7
    JNZ no_march
    LDW r7, r14, AX
    LDW r8, r14, ADIR
    ADD r7, r8
    STW r14, r7, AX
    CMPI r7, 0
    JZ  flip
    CMPI r7, 15
    JZ  flip
    JMP no_march
flip:
    LDW r8, r14, ADIR
    NEG r8
    STW r14, r8, ADIR
    LDW r8, r14, AY
    ADDI r8, 1
    STW r14, r8, AY
    CMPI r8, 30
    JC  no_march          ; still above the ships
    LDI r8, 1
    STW r14, r8, OVER
no_march:

render:
    LDI r4, FB
    LDI r5, 3072
    LDI r6, 0
clear:
    STB r4, r6
    ADDI r4, 1
    SUBI r5, 1
    JNZ clear

    ; aliens
    LDI r8, 0
ra_loop:
    MOV r9, r13
    ADD r9, r8
    LDB r10, r9
    CMPI r10, 0
    JZ  ra_next
    MOV r10, r8           ; x = AX + (i & 7) * 7
    ANDI r10, 7
    MULI r10, 7
    LDW r7, r14, AX
    ADD r10, r7
    MOV r9, r8            ; y = AY + (i >> 3) * 5
    SHRI r9, 3
    MULI r9, 5
    LDW r7, r14, AY
    ADD r9, r7
    SHLI r9, 6
    ADD r9, r10
    ADDI r9, FB
    LDI r10, 6
    STB r9, r10
ra_next:
    ADDI r8, 1
    CMPI r8, 24
    JC  ra_loop

    ; ships (3 px wide, row 45 = FB + 2880)
    LDW r4, r14, SHIP0
    ADDI r4, FB + 2880
    LDI r7, 2
    STB r4, r7
    STB r4, r7, 1
    STB r4, r7, 2
    LDW r4, r14, SHIP1
    ADDI r4, FB + 2880
    LDI r7, 3
    STB r4, r7
    STB r4, r7, 1
    STB r4, r7, 2

    ; bullets
    LDW r4, r14, B0A
    CMPI r4, 0
    JZ  rb0_done
    LDW r4, r14, B0Y
    SHLI r4, 6
    LDW r5, r14, B0X
    ADD r4, r5
    ADDI r4, FB
    LDI r7, 7
    STB r4, r7
rb0_done:
    LDW r4, r14, B1A
    CMPI r4, 0
    JZ  rb1_done
    LDW r4, r14, B1Y
    SHLI r4, 6
    LDW r5, r14, B1X
    ADD r4, r5
    ADDI r4, FB
    LDI r7, 7
    STB r4, r7
rb1_done:

    ; score pixel + game-over marker
    LDW r4, r14, SCORE
    LDI r5, FB
    STB r5, r4
    LDW r4, r14, OVER
    CMPI r4, 0
    JZ  no_over_mark
    LDI r5, FB + 32
    LDI r4, 9
    STB r5, r4
no_over_mark:

    LDW r4, r14, SCORE
    OUT 4, r4

    HALT
    JMP frame

; ---- bullet_update: r11 -> {x, y, active} record -----------------------
bullet_update:
    LDW r4, r11, 4        ; active?
    CMPI r4, 0
    JZ  bu_done
    LDW r3, r11, 2        ; y -= 2
    SUBI r3, 2
    STW r11, r3, 2
    CMPI r3, 2
    JNC bu_alive
    LDI r4, 0             ; left the screen
    STW r11, r4, 4
    JMP bu_done
bu_alive:
    LDW r2, r11, 0        ; bx
    LDI r8, 0
bu_loop:
    MOV r9, r13
    ADD r9, r8
    LDB r10, r9
    CMPI r10, 0
    JZ  bu_next
    MOV r10, r8           ; alien x
    ANDI r10, 7
    MULI r10, 7
    LDW r7, r14, AX
    ADD r10, r7
    MOV r7, r2
    SUB r7, r10
    CMPI r7, 3            ; within 3 columns?
    JNC bu_next
    MOV r10, r8           ; alien y
    SHRI r10, 3
    MULI r10, 5
    LDW r7, r14, AY
    ADD r10, r7
    MOV r7, r3
    SUB r7, r10
    CMPI r7, 3
    JNC bu_next
    LDI r10, 0            ; hit: kill alien, consume bullet, score
    MOV r7, r13
    ADD r7, r8
    STB r7, r10
    LDW r7, r14, SCORE
    ADDI r7, 1
    STW r14, r7, SCORE
    LDW r7, r14, ALIVE
    SUBI r7, 1
    STW r14, r7, ALIVE
    LDI r4, 0
    STW r11, r4, 4
    JMP bu_done
bu_next:
    ADDI r8, 1
    CMPI r8, 24
    JC  bu_loop
bu_done:
    RET

init_aliens:
    LDI r7, 24
    MOV r8, r13
    LDI r9, 1
ia_loop:
    STB r8, r9
    ADDI r8, 1
    SUBI r7, 1
    JNZ ia_loop
    LDI r7, 24
    STW r14, r7, ALIVE
    RET
)asm";
}  // namespace

const emu::Rom& invaders_rom() {
  static const emu::Rom rom = detail::build_rom("invaders", kSource);
  return rom;
}

}  // namespace rtct::games
