// Internal helper for the game catalogue: assemble-once ROM caching.
#pragma once

#include <string>

#include "src/emu/rom.h"

namespace rtct::games::detail {

/// Assembles `source` under `title`, aborting with the assembler's error
/// listing if it does not assemble — a bundled ROM failing to build is a
/// library defect, not a runtime condition.
/// Each game's accessor wraps this in its own function-local static (one
/// static per game — a shared helper static would alias all ROMs).
emu::Rom build_rom(const std::string& title, const char* source);

}  // namespace rtct::games::detail
