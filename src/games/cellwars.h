// CELLWARS — a native C++ game (no AC16, no emulator) implementing
// IDeterministicGame directly.
//
// Its purpose is architectural: the paper's transparency claim says the
// sync layer needs *only* a deterministic input-driven transition
// function. This game proves the rtct interface really is that narrow —
// the identical sync/pacing/session/testbed stack runs it unchanged, even
// though there is no CPU, ROM or framebuffer underneath.
//
// Rules (two players on a 32x24 grid):
//  * each player steers a cursor (Up/Down/Left/Right, wrapping);
//  * A claims the cursor cell for that player if it is empty and adjacent
//    (4-neighbourhood) to one of their cells — or anywhere on the player's
//    first claim;
//  * B detonates a 3x3 clear centred on the cursor (40-frame cooldown);
//  * every 16 frames a conversion step runs: an enemy/neutral cell
//    surrounded by 3+ cells of one colour flips to that colour
//    (synchronous, computed from the pre-step grid);
//  * score = owned cells.
// Everything is integer arithmetic driven only by (state, input) — fully
// deterministic by construction.
#pragma once

#include <cstdint>
#include <memory>

#include "src/emu/game.h"

namespace rtct::games {

class CellWarsGame final : public emu::IDeterministicGame,
                           public emu::IRenderableGame {
 public:
  static constexpr int kCols = 32;
  static constexpr int kRows = 24;

  CellWarsGame() { reset(); }

  void reset() override;
  void step_frame(InputWord input) override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] std::vector<std::uint8_t> save_state() const override;
  bool load_state(std::span<const std::uint8_t> data) override;
  [[nodiscard]] FrameNo frame() const override { return frame_; }
  [[nodiscard]] std::uint64_t content_id() const override { return 0xCE113A125ull; }
  [[nodiscard]] std::string content_name() const override { return "native:cellwars"; }
  [[nodiscard]] const emu::IRenderableGame* renderable() const override { return this; }

  // IRenderableGame: there is no real framebuffer underneath — the grid is
  // rasterized on demand (cells as dim palette tones, cursors bright).
  [[nodiscard]] int fb_cols() const override { return kCols; }
  [[nodiscard]] int fb_rows() const override { return kRows; }
  [[nodiscard]] std::span<const std::uint8_t> framebuffer() const override;

  // Introspection for tests / rendering.
  [[nodiscard]] std::uint8_t cell(int x, int y) const {
    return grid_[y * kCols + x];  // 0 = neutral, 1 = player0+1, 2 = player1+1
  }
  [[nodiscard]] int score(int player) const;
  [[nodiscard]] int cursor_x(int player) const { return cursor_x_[player]; }
  [[nodiscard]] int cursor_y(int player) const { return cursor_y_[player]; }

 private:
  void step_player(int player, std::uint8_t buttons);
  void conversion_step();
  [[nodiscard]] bool adjacent_to(int x, int y, std::uint8_t owner) const;

  static constexpr std::uint8_t kStateVersion = 1;

  std::uint8_t grid_[kCols * kRows] = {};
  int cursor_x_[2] = {};
  int cursor_y_[2] = {};
  int bomb_cooldown_[2] = {};
  bool has_claimed_[2] = {};
  FrameNo frame_ = 0;
  mutable std::uint8_t raster_[kCols * kRows] = {};  ///< framebuffer() scratch
};

/// Factory matching the testbed's game_factory signature.
std::unique_ptr<emu::IDeterministicGame> make_cellwars();

}  // namespace rtct::games
