// PONG — the archetypal two-player arcade game, in AC16 assembly.
//
// Controls (each player): Up (bit0) / Down (bit1) move the paddle.
// Player 0 defends the left edge, player 1 the right. A missed ball scores
// for the opponent and recenters. Scores are stored at STATE+12/14 and also
// drawn into the top framebuffer row so they affect video state.
#include "src/games/detail.h"
#include "src/games/roms.h"

namespace rtct::games {

namespace {
constexpr const char* kSource = R"asm(
; ---------------------------------------------------------------- PONG ----
.equ STATE, 0x8000
.equ FB,    0xA000
; state word offsets (from STATE, via r14)
.equ P0Y,  0          ; paddle 0 top row (0..40)
.equ P1Y,  2
.equ BX,   4          ; ball x (0..63)
.equ BY,   6          ; ball y (0..47)
.equ DX,   8          ; ball x velocity (+1 / -1)
.equ DY,   10
.equ S0,   12         ; player 0 score
.equ S1,   14
.equ INIT, 16

.entry main
main:
    LDI r14, STATE
    LDW r0, r14, INIT
    CMPI r0, 0
    JNZ frame
    ; one-time init
    LDI r0, 20
    STW r14, r0, P0Y
    STW r14, r0, P1Y
    LDI r0, 32
    STW r14, r0, BX
    LDI r0, 24
    STW r14, r0, BY
    LDI r0, 1
    STW r14, r0, DX
    STW r14, r0, DY
    STW r14, r0, INIT

frame:
    ; ---- player 0 paddle
    IN  r0, 0
    LDW r1, r14, P0Y
    MOV r2, r0
    ANDI r2, 1            ; Up
    JZ  p0_no_up
    CMPI r1, 0
    JZ  p0_no_up
    SUBI r1, 1
p0_no_up:
    MOV r2, r0
    ANDI r2, 2            ; Down
    JZ  p0_no_down
    CMPI r1, 40
    JZ  p0_no_down
    ADDI r1, 1
p0_no_down:
    STW r14, r1, P0Y

    ; ---- player 1 paddle
    IN  r0, 1
    LDW r1, r14, P1Y
    MOV r2, r0
    ANDI r2, 1
    JZ  p1_no_up
    CMPI r1, 0
    JZ  p1_no_up
    SUBI r1, 1
p1_no_up:
    MOV r2, r0
    ANDI r2, 2
    JZ  p1_no_down
    CMPI r1, 40
    JZ  p1_no_down
    ADDI r1, 1
p1_no_down:
    STW r14, r1, P1Y

    ; ---- ball physics (r0=x r1=y r2=dx r3=dy)
    LDW r0, r14, BX
    LDW r1, r14, BY
    LDW r2, r14, DX
    LDW r3, r14, DY
    ADD r0, r2
    ADD r1, r3
    CMPI r1, 0            ; bounce off top
    JNZ not_top
    LDI r3, 1
not_top:
    CMPI r1, 47           ; bounce off bottom
    JNZ not_bottom
    LDI r3, -1
not_bottom:

    CMPI r0, 2            ; reached player 0's column?
    JNZ not_left
    LDW r4, r14, P0Y
    MOV r5, r1
    SUB r5, r4
    CMPI r5, 8            ; 0 <= by - p0y < 8  (unsigned)
    JC  hit_left
    LDW r4, r14, S1       ; miss: point for player 1
    ADDI r4, 1
    STW r14, r4, S1
    LDI r0, 32
    LDI r1, 24
    LDI r2, 1
    JMP moved
hit_left:
    LDI r2, 1
    JMP moved
not_left:
    CMPI r0, 61           ; reached player 1's column?
    JNZ moved
    LDW r4, r14, P1Y
    MOV r5, r1
    SUB r5, r4
    CMPI r5, 8
    JC  hit_right
    LDW r4, r14, S0       ; miss: point for player 0
    ADDI r4, 1
    STW r14, r4, S0
    LDI r0, 32
    LDI r1, 24
    LDI r2, -1
    JMP moved
hit_right:
    LDI r2, -1
moved:
    STW r14, r0, BX
    STW r14, r1, BY
    STW r14, r2, DX
    STW r14, r3, DY
    OUT 4, r1             ; tone channel follows ball height

    ; ---- render
    LDI r4, FB            ; clear
    LDI r5, 3072
    LDI r6, 0
clear:
    STB r4, r6
    ADDI r4, 1
    SUBI r5, 1
    JNZ clear

    LDW r4, r14, P0Y      ; paddle 0 at x=1, colour 2
    MOV r5, r4
    SHLI r5, 6
    ADDI r5, FB + 1
    LDI r6, 8
    LDI r7, 2
pad0:
    STB r5, r7
    ADDI r5, 64
    SUBI r6, 1
    JNZ pad0

    LDW r4, r14, P1Y      ; paddle 1 at x=62, colour 3
    MOV r5, r4
    SHLI r5, 6
    ADDI r5, FB + 62
    LDI r6, 8
    LDI r7, 3
pad1:
    STB r5, r7
    ADDI r5, 64
    SUBI r6, 1
    JNZ pad1

    LDW r4, r14, BX       ; ball, colour 7
    LDW r5, r14, BY
    SHLI r5, 6
    ADD r5, r4
    ADDI r5, FB
    LDI r6, 7
    STB r5, r6

    LDW r4, r14, S0       ; scores into the corners of row 0
    LDI r5, FB
    STB r5, r4
    LDW r4, r14, S1
    LDI r5, FB + 63
    STB r5, r4

    HALT
    JMP frame
)asm";
}  // namespace

const emu::Rom& pong_rom() {
  static const emu::Rom rom = detail::build_rom("pong", kSource);
  return rom;
}

}  // namespace rtct::games
