#include "src/games/cellwars.h"

#include <algorithm>

#include "src/common/bytes.h"
#include "src/common/hash.h"

namespace rtct::games {

void CellWarsGame::reset() {
  std::fill(std::begin(grid_), std::end(grid_), 0);
  cursor_x_[0] = 4;
  cursor_y_[0] = kRows / 2;
  cursor_x_[1] = kCols - 5;
  cursor_y_[1] = kRows / 2;
  bomb_cooldown_[0] = bomb_cooldown_[1] = 0;
  has_claimed_[0] = has_claimed_[1] = false;
  frame_ = 0;
}

bool CellWarsGame::adjacent_to(int x, int y, std::uint8_t owner) const {
  const int dx[] = {1, -1, 0, 0};
  const int dy[] = {0, 0, 1, -1};
  for (int k = 0; k < 4; ++k) {
    const int nx = (x + dx[k] + kCols) % kCols;
    const int ny = (y + dy[k] + kRows) % kRows;
    if (grid_[ny * kCols + nx] == owner) return true;
  }
  return false;
}

void CellWarsGame::step_player(int player, std::uint8_t buttons) {
  int& cx = cursor_x_[player];
  int& cy = cursor_y_[player];
  if (buttons & kBtnUp) cy = (cy + kRows - 1) % kRows;
  if (buttons & kBtnDown) cy = (cy + 1) % kRows;
  if (buttons & kBtnLeft) cx = (cx + kCols - 1) % kCols;
  if (buttons & kBtnRight) cx = (cx + 1) % kCols;

  const auto owner = static_cast<std::uint8_t>(player + 1);
  std::uint8_t& here = grid_[cy * kCols + cx];
  if ((buttons & kBtnA) && here == 0 &&
      (!has_claimed_[player] || adjacent_to(cx, cy, owner))) {
    here = owner;
    has_claimed_[player] = true;
  }
  if ((buttons & kBtnB) && bomb_cooldown_[player] == 0) {
    bomb_cooldown_[player] = 40;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = (cx + dx + kCols) % kCols;
        const int ny = (cy + dy + kRows) % kRows;
        grid_[ny * kCols + nx] = 0;
      }
    }
  }
  if (bomb_cooldown_[player] > 0) --bomb_cooldown_[player];
}

void CellWarsGame::conversion_step() {
  std::uint8_t next[kCols * kRows];
  std::copy(std::begin(grid_), std::end(grid_), std::begin(next));
  for (int y = 0; y < kRows; ++y) {
    for (int x = 0; x < kCols; ++x) {
      int count[3] = {0, 0, 0};
      const int dx[] = {1, -1, 0, 0};
      const int dy[] = {0, 0, 1, -1};
      for (int k = 0; k < 4; ++k) {
        const int nx = (x + dx[k] + kCols) % kCols;
        const int ny = (y + dy[k] + kRows) % kRows;
        ++count[grid_[ny * kCols + nx]];
      }
      const std::uint8_t here = grid_[y * kCols + x];
      for (std::uint8_t owner = 1; owner <= 2; ++owner) {
        if (here != owner && count[owner] >= 3) next[y * kCols + x] = owner;
      }
    }
  }
  std::copy(std::begin(next), std::end(next), std::begin(grid_));
}

void CellWarsGame::step_frame(InputWord input) {
  // Player 0 acts first by definition; both read the same latched input,
  // so ordering is deterministic and identical on every replica.
  step_player(0, player_byte(input, 0));
  step_player(1, player_byte(input, 1));
  ++frame_;
  if (frame_ % 16 == 0) conversion_step();
}

int CellWarsGame::score(int player) const {
  const auto owner = static_cast<std::uint8_t>(player + 1);
  return static_cast<int>(
      std::count(std::begin(grid_), std::end(grid_), owner));
}

std::uint64_t CellWarsGame::state_hash() const {
  Fnv1a64 h;
  h.update(std::span<const std::uint8_t>(grid_, sizeof(grid_)));
  for (int p = 0; p < 2; ++p) {
    h.u16(static_cast<std::uint16_t>(cursor_x_[p]));
    h.u16(static_cast<std::uint16_t>(cursor_y_[p]));
    h.u16(static_cast<std::uint16_t>(bomb_cooldown_[p]));
    h.u8(has_claimed_[p] ? 1 : 0);
  }
  h.u64(static_cast<std::uint64_t>(frame_));
  return h.digest();
}

std::vector<std::uint8_t> CellWarsGame::save_state() const {
  ByteWriter w(sizeof(grid_) + 32);
  w.u8(kStateVersion);
  w.u64(content_id());
  w.bytes(std::span<const std::uint8_t>(grid_, sizeof(grid_)));
  for (int p = 0; p < 2; ++p) {
    w.u16(static_cast<std::uint16_t>(cursor_x_[p]));
    w.u16(static_cast<std::uint16_t>(cursor_y_[p]));
    w.u16(static_cast<std::uint16_t>(bomb_cooldown_[p]));
    w.u8(has_claimed_[p] ? 1 : 0);
  }
  w.u64(static_cast<std::uint64_t>(frame_));
  return w.take();
}

bool CellWarsGame::load_state(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u8() != kStateVersion) return false;
  if (r.u64() != content_id()) return false;
  const auto grid = r.bytes(sizeof(grid_));
  int cx[2], cy[2], cd[2];
  bool claimed[2];
  for (int p = 0; p < 2; ++p) {
    cx[p] = r.u16();
    cy[p] = r.u16();
    cd[p] = r.u16();
    claimed[p] = r.u8() != 0;
  }
  const auto fr = static_cast<FrameNo>(r.u64());
  if (!r.ok() || !r.at_end()) return false;
  // Validate ranges before committing (a hostile snapshot must not plant
  // out-of-bounds cursors).
  for (int p = 0; p < 2; ++p) {
    if (cx[p] < 0 || cx[p] >= kCols || cy[p] < 0 || cy[p] >= kRows) return false;
  }
  for (auto cell_value : grid) {
    if (cell_value > 2) return false;
  }
  std::copy(grid.begin(), grid.end(), std::begin(grid_));
  for (int p = 0; p < 2; ++p) {
    cursor_x_[p] = cx[p];
    cursor_y_[p] = cy[p];
    bomb_cooldown_[p] = cd[p];
    has_claimed_[p] = claimed[p];
  }
  frame_ = fr;
  return true;
}

std::span<const std::uint8_t> CellWarsGame::framebuffer() const {
  for (int i = 0; i < kCols * kRows; ++i) {
    raster_[i] = static_cast<std::uint8_t>(grid_[i] == 0 ? 0 : grid_[i] * 3);
  }
  for (int p = 0; p < 2; ++p) {
    raster_[cursor_y_[p] * kCols + cursor_x_[p]] = static_cast<std::uint8_t>(12 + p);
  }
  return {raster_, static_cast<std::size_t>(kCols * kRows)};
}

std::unique_ptr<emu::IDeterministicGame> make_cellwars() {
  return std::make_unique<CellWarsGame>();
}

}  // namespace rtct::games
