#include "src/games/roms.h"

#include <cstdio>
#include <cstdlib>

#include "src/emu/assembler.h"
#include "src/games/cellwars.h"
#include "src/games/detail.h"

namespace rtct::games {

namespace detail {

emu::Rom build_rom(const std::string& title, const char* source) {
  auto result = emu::assemble(source, title);
  if (!result.ok()) {
    std::fprintf(stderr, "rtct_games: bundled ROM '%s' failed to assemble:\n%s", title.c_str(),
                 result.error_text().c_str());
    std::abort();
  }
  return std::move(result.rom);
}

}  // namespace detail

std::vector<std::string_view> game_names() { return {"pong", "duel", "invaders", "tron", "tanks", "quadtron", "torture"}; }

const emu::Rom* rom_by_name(std::string_view name) {
  if (name == "pong") return &pong_rom();
  if (name == "duel") return &duel_rom();
  if (name == "invaders") return &invaders_rom();
  if (name == "tron") return &tron_rom();
  if (name == "tanks") return &tanks_rom();
  if (name == "quadtron") return &quadtron_rom();
  if (name == "torture") return &torture_rom();
  return nullptr;
}

std::unique_ptr<emu::ArcadeMachine> make_machine(std::string_view name) {
  return make_machine(name, emu::MachineConfig{});
}

std::unique_ptr<emu::ArcadeMachine> make_machine(std::string_view name,
                                                 emu::MachineConfig cfg) {
  const emu::Rom* rom = rom_by_name(name);
  if (rom == nullptr) return nullptr;
  return std::make_unique<emu::ArcadeMachine>(*rom, cfg);
}

std::unique_ptr<emu::IDeterministicGame> make_game_for_content(std::uint64_t content_id) {
  for (const std::string_view name : game_names()) {
    const emu::Rom* rom = rom_by_name(name);
    if (rom != nullptr && rom->checksum() == content_id) {
      return std::make_unique<emu::ArcadeMachine>(*rom);
    }
  }
  auto cellwars = make_cellwars();
  if (cellwars != nullptr && cellwars->content_id() == content_id) return cellwars;
  return nullptr;
}

}  // namespace rtct::games
