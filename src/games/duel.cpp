// DUEL — a minimal one-on-one fighting game (the bundled stand-in for the
// paper's Street Fighter 2 experiments).
//
// Controls: Left (bit2) / Right (bit3) move, A (bit4) punches, B (bit5)
// blocks. A punch lands when the fighters are within 6 columns and the
// victim is not blocking; 12-frame attack cooldown. Health starts at 99;
// reaching 0 gives the opponent a round win and resets the round.
#include "src/games/detail.h"
#include "src/games/roms.h"

namespace rtct::games {

namespace {
constexpr const char* kSource = R"asm(
; ---------------------------------------------------------------- DUEL ----
.equ STATE, 0x8000
.equ FB,    0xA000
.equ X0,   0
.equ X1,   2
.equ H0,   4
.equ H1,   6
.equ CD0,  8
.equ CD1,  10
.equ W0,   12
.equ W1,   14
.equ INIT, 16

.entry main
main:
    LDI r14, STATE
    LDW r0, r14, INIT
    CMPI r0, 0
    JNZ frame
    CALL round_reset
    LDI r0, 1
    STW r14, r0, INIT

frame:
    IN  r0, 0
    IN  r1, 1

    ; ---- player 0 movement
    LDW r2, r14, X0
    MOV r3, r0
    ANDI r3, 4
    JZ  p0_nl
    CMPI r2, 0
    JZ  p0_nl
    SUBI r2, 1
p0_nl:
    MOV r3, r0
    ANDI r3, 8
    JZ  p0_nr
    CMPI r2, 58
    JZ  p0_nr
    ADDI r2, 1
p0_nr:
    STW r14, r2, X0

    ; ---- player 1 movement
    LDW r2, r14, X1
    MOV r3, r1
    ANDI r3, 4
    JZ  p1_nl
    CMPI r2, 0
    JZ  p1_nl
    SUBI r2, 1
p1_nl:
    MOV r3, r1
    ANDI r3, 8
    JZ  p1_nr
    CMPI r2, 58
    JZ  p1_nr
    ADDI r2, 1
p1_nr:
    STW r14, r2, X1

    ; ---- distance r6 = |x0 - x1|
    LDW r2, r14, X0
    LDW r3, r14, X1
    MOV r6, r2
    SUB r6, r3
    JNN dist_ok
    NEG r6
dist_ok:

    ; ---- player 0 punch
    MOV r3, r0
    ANDI r3, 16
    JZ  p0_natk
    LDW r4, r14, CD0
    CMPI r4, 0
    JNZ p0_natk
    LDI r4, 12
    STW r14, r4, CD0
    CMPI r6, 7
    JNC p0_natk           ; out of range
    MOV r3, r1
    ANDI r3, 32           ; victim blocking?
    JNZ p0_natk
    LDW r4, r14, H1
    CMPI r4, 0
    JZ  p0_natk
    SUBI r4, 1
    STW r14, r4, H1
p0_natk:

    ; ---- player 1 punch
    MOV r3, r1
    ANDI r3, 16
    JZ  p1_natk
    LDW r4, r14, CD1
    CMPI r4, 0
    JNZ p1_natk
    LDI r4, 12
    STW r14, r4, CD1
    CMPI r6, 7
    JNC p1_natk
    MOV r3, r0
    ANDI r3, 32
    JNZ p1_natk
    LDW r4, r14, H0
    CMPI r4, 0
    JZ  p1_natk
    SUBI r4, 1
    STW r14, r4, H0
p1_natk:

    ; ---- cooldowns tick down
    LDW r4, r14, CD0
    CMPI r4, 0
    JZ  cd0_z
    SUBI r4, 1
    STW r14, r4, CD0
cd0_z:
    LDW r4, r14, CD1
    CMPI r4, 0
    JZ  cd1_z
    SUBI r4, 1
    STW r14, r4, CD1
cd1_z:

    ; ---- round over?
    LDW r4, r14, H1
    CMPI r4, 0
    JNZ no_w0
    LDW r4, r14, W0
    ADDI r4, 1
    STW r14, r4, W0
    CALL round_reset
no_w0:
    LDW r4, r14, H0
    CMPI r4, 0
    JNZ no_w1
    LDW r4, r14, W1
    ADDI r4, 1
    STW r14, r4, W1
    CALL round_reset
no_w1:

    ; ---- render
    LDI r4, FB
    LDI r5, 3072
    LDI r6, 0
clear:
    STB r4, r6
    ADDI r4, 1
    SUBI r5, 1
    JNZ clear

    LDW r2, r14, H0       ; health bars (1 pixel per 4 HP)
    SHRI r2, 2
    JZ  hb0_done
    LDI r4, FB
    LDI r7, 2
hb0:
    STB r4, r7
    ADDI r4, 1
    SUBI r2, 1
    JNZ hb0
hb0_done:
    LDW r2, r14, H1
    SHRI r2, 2
    JZ  hb1_done
    LDI r4, FB + 64
    LDI r7, 3
hb1:
    STB r4, r7
    ADDI r4, 1
    SUBI r2, 1
    JNZ hb1
hb1_done:

    LDW r4, r14, X0
    LDI r7, 4
    CALL draw_fighter
    LDW r4, r14, X1
    LDI r7, 5
    CALL draw_fighter

    LDW r2, r14, W0       ; round wins in the bottom corners
    LDI r4, FB + 3008
    STB r4, r2
    LDW r2, r14, W1
    LDI r4, FB + 3071
    STB r4, r2

    LDW r2, r14, H0
    LDW r3, r14, H1
    ADD r2, r3
    OUT 4, r2

    HALT
    JMP frame

round_reset:
    LDI r2, 15
    STW r14, r2, X0
    LDI r2, 45
    STW r14, r2, X1
    LDI r2, 99
    STW r14, r2, H0
    STW r14, r2, H1
    LDI r2, 0
    STW r14, r2, CD0
    STW r14, r2, CD1
    RET

draw_fighter:             ; r4 = x column, r7 = colour; 4x10 block, rows 30..39
    MOV r5, r4
    ADDI r5, FB + 1920
    LDI r6, 10
df_row:
    STB r5, r7
    STB r5, r7, 1
    STB r5, r7, 2
    STB r5, r7, 3
    ADDI r5, 64
    SUBI r6, 1
    JNZ df_row
    RET
)asm";
}  // namespace

const emu::Rom& duel_rom() {
  static const emu::Rom rom = detail::build_rom("duel", kSource);
  return rom;
}

}  // namespace rtct::games
