// TANKS — an artillery duel: two fixed emplacements lob shells with
// adjustable launch power; gravity is integrated in 8.8 fixed point and
// the muzzle-velocity table lives in ROM data (.word directives).
//
// Controls: Up/Down (bits 0/1) raise/lower the power setting (0..7, with
// a 6-frame repeat cooldown), A (bit 4) fires if no shell is in flight.
// A shell landing within 3 columns of the opposing tank scores for the
// shooter. No round reset — tanks are eternal, only scores move.
#include "src/games/detail.h"
#include "src/games/roms.h"

namespace rtct::games {

namespace {
constexpr const char* kSource = R"asm(
; --------------------------------------------------------------- TANKS ----
.equ STATE, 0x8000
.equ FB,    0xA000
.equ A0,   0          ; power setting (0..7)
.equ A1,   2
.equ S0,   4          ; scores
.equ S1,   6
.equ P0A,  8          ; shell records: active, x, y (8.8), vx, vy
.equ P0X,  10
.equ P0Y,  12
.equ P0VX, 14
.equ P0VY, 16
.equ P1A,  18
.equ P1X,  20
.equ P1Y,  22
.equ P1VX, 24
.equ P1VY, 26
.equ CD0,  28         ; power-adjust repeat cooldowns
.equ CD1,  30

.equ T0X,  8          ; tank columns and the ground row
.equ T1X,  55
.equ GY,   40
.equ GRAV, 16         ; 8.8 gravity per frame
.equ VY0,  120        ; 8.8 initial climb rate (flight ~15 frames)

.entry main
main:
    LDI r14, STATE
frame:
    ; ---- player 0 power setting
    IN  r0, 0
    LDW r4, r14, A0
    LDW r5, r14, CD0
    CMPI r5, 0
    JNZ p0_no_adjust
    MOV r3, r0
    ANDI r3, 1            ; up => more power
    JZ  p0_no_up
    CMPI r4, 7
    JZ  p0_no_up
    ADDI r4, 1
    LDI r5, 6
p0_no_up:
    MOV r3, r0
    ANDI r3, 2            ; down => less power
    JZ  p0_no_adjust
    CMPI r4, 0
    JZ  p0_no_adjust
    SUBI r4, 1
    LDI r5, 6
p0_no_adjust:
    STW r14, r4, A0
    CMPI r5, 0
    JZ  p0_cd_done
    SUBI r5, 1
p0_cd_done:
    STW r14, r5, CD0

    ; ---- player 0 fire
    MOV r3, r0
    ANDI r3, 16
    JZ  p0_no_fire
    LDW r3, r14, P0A
    CMPI r3, 0
    JNZ p0_no_fire
    LDI r3, 1
    STW r14, r3, P0A
    LDI r3, T0X * 256
    STW r14, r3, P0X
    LDI r3, (GY - 2) * 256
    STW r14, r3, P0Y
    LDI r5, vxtab
    LDW r6, r14, A0
    SHLI r6, 1
    ADD r5, r6
    LDW r7, r5            ; muzzle vx from the ROM table
    STW r14, r7, P0VX
    LDI r7, -VY0
    STW r14, r7, P0VY
p0_no_fire:

    ; ---- player 1 power setting
    IN  r0, 1
    LDW r4, r14, A1
    LDW r5, r14, CD1
    CMPI r5, 0
    JNZ p1_no_adjust
    MOV r3, r0
    ANDI r3, 1
    JZ  p1_no_up
    CMPI r4, 7
    JZ  p1_no_up
    ADDI r4, 1
    LDI r5, 6
p1_no_up:
    MOV r3, r0
    ANDI r3, 2
    JZ  p1_no_adjust
    CMPI r4, 0
    JZ  p1_no_adjust
    SUBI r4, 1
    LDI r5, 6
p1_no_adjust:
    STW r14, r4, A1
    CMPI r5, 0
    JZ  p1_cd_done
    SUBI r5, 1
p1_cd_done:
    STW r14, r5, CD1

    ; ---- player 1 fire (shoots leftward: vx negated)
    MOV r3, r0
    ANDI r3, 16
    JZ  p1_no_fire
    LDW r3, r14, P1A
    CMPI r3, 0
    JNZ p1_no_fire
    LDI r3, 1
    STW r14, r3, P1A
    LDI r3, T1X * 256
    STW r14, r3, P1X
    LDI r3, (GY - 2) * 256
    STW r14, r3, P1Y
    LDI r5, vxtab
    LDW r6, r14, A1
    SHLI r6, 1
    ADD r5, r6
    LDW r7, r5
    NEG r7
    STW r14, r7, P1VX
    LDI r7, -VY0
    STW r14, r7, P1VY
p1_no_fire:

    ; ---- integrate shells (r11 -> record base; r12 = target x; r13 = my score slot)
    LDI r11, STATE + P0A
    LDI r12, T1X
    LDI r13, S0
    CALL shell_update
    LDI r11, STATE + P1A
    LDI r12, T0X
    LDI r13, S1
    CALL shell_update

    ; ---- render
    LDI r4, FB
    LDI r5, 3072
    LDI r6, 0
clear:
    STB r4, r6
    ADDI r4, 1
    SUBI r5, 1
    JNZ clear

    LDI r4, FB + GY * 64  ; ground
    LDI r5, 64
    LDI r7, 1
ground:
    STB r4, r7
    ADDI r4, 1
    SUBI r5, 1
    JNZ ground

    ; tanks (3x2 blocks)
    LDI r4, FB + (GY - 2) * 64 + T0X - 1
    LDI r7, 2
    CALL draw_tank
    LDI r4, FB + (GY - 2) * 64 + T1X - 1
    LDI r7, 3
    CALL draw_tank

    ; power indicators: a pixel climbing with the setting
    LDW r4, r14, A0
    LDI r5, GY - 4
    SUB r5, r4
    SHLI r5, 6
    ADDI r5, FB + T0X
    LDI r7, 6
    STB r5, r7
    LDW r4, r14, A1
    LDI r5, GY - 4
    SUB r5, r4
    SHLI r5, 6
    ADDI r5, FB + T1X
    STB r5, r7

    ; shells
    LDI r11, STATE + P0A
    CALL draw_shell
    LDI r11, STATE + P1A
    CALL draw_shell

    ; scores in the top corners
    LDW r4, r14, S0
    LDI r5, FB
    STB r5, r4
    LDW r4, r14, S1
    LDI r5, FB + 63
    STB r5, r4

    LDW r2, r14, S0
    LDW r3, r14, S1
    ADD r2, r3
    OUT 4, r2
    HALT
    JMP frame

; ---- shell_update: r11 -> {active,x,y,vx,vy}; r12 = target x; r13 = score slot
shell_update:
    LDW r4, r11, 0
    CMPI r4, 0
    JZ  su_done
    LDW r4, r11, 2        ; x += vx
    LDW r5, r11, 6
    ADD r4, r5
    STW r11, r4, 2
    LDW r4, r11, 4        ; y += vy
    LDW r5, r11, 8
    ADD r4, r5
    STW r11, r4, 4
    ADDI r5, GRAV         ; vy += g
    STW r11, r5, 8
    ; landed? (descending and y >= ground level)
    MOV r6, r5
    ANDI r6, 0x8000
    JNZ su_done           ; still climbing
    CMPI r4, GY * 256
    JC  su_done           ; still above ground
    LDI r6, 0             ; impact: deactivate
    STW r11, r6, 0
    LDW r4, r11, 2        ; landing column
    SHRI r4, 8
    SUB r4, r12           ; |x - target| <= 3 ?
    JNN su_abs_done
    NEG r4
su_abs_done:
    CMPI r4, 4
    JNC su_done           ; miss
    MOV r6, r14           ; hit: ++score at [STATE + r13]
    ADD r6, r13
    LDW r7, r6
    ADDI r7, 1
    STW r6, r7
su_done:
    RET

; ---- draw_tank: r4 = fb addr of top-left, r7 = colour --------------------
draw_tank:
    STB r4, r7
    STB r4, r7, 1
    STB r4, r7, 2
    ADDI r4, 64
    STB r4, r7
    STB r4, r7, 1
    STB r4, r7, 2
    RET

; ---- draw_shell: r11 -> shell record ------------------------------------
draw_shell:
    LDW r4, r11, 0
    CMPI r4, 0
    JZ  ds_done
    LDW r4, r11, 2        ; column
    SHRI r4, 8
    CMPI r4, 64
    JNC ds_done           ; off screen
    LDW r5, r11, 4        ; row
    SHRI r5, 8
    CMPI r5, 48
    JNC ds_done
    SHLI r5, 6
    ADD r5, r4
    ADDI r5, FB
    LDI r7, 7
    STB r5, r7
ds_done:
    RET

; muzzle-velocity table: 8.8 horizontal speeds for power settings 0..7.
; With VY0=120 and GRAV=16 a shell flies ~15 frames, giving ranges of
; roughly 20..56 columns — bracketing the 47-column gap between the tanks.
vxtab:
.word 341, 443, 546, 648, 751, 802, 853, 956
)asm";
}  // namespace

const emu::Rom& tanks_rom() {
  static const emu::Rom rom = detail::build_rom("tanks", kSource);
  return rom;
}

}  // namespace rtct::games
