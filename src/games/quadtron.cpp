// QUADTRON — four-player light cycles, the demonstration game for the
// N-site mesh extension.
//
// Input packing: the 16-bit input word is split into four nibbles (the
// 4-site SET[k] partition); player k's nibble is Up/Down/Left/Right. The
// ROM reads ports 0 and 1 (players 0+1 and 2+3 respectively) and extracts
// its nibbles itself — the hardware interface is unchanged.
//
// Rules: cycles advance every second frame leaving permanent trails;
// touching anything lit kills the cycle in place (the round continues!);
// when at most one cycle remains, the survivor scores and the arena
// resets. Scores live at STATE+0/2/4/6.
#include "src/games/detail.h"
#include "src/games/roms.h"

namespace rtct::games {

namespace {
constexpr const char* kSource = R"asm(
; ------------------------------------------------------------ QUADTRON ----
.equ STATE, 0x8000    ; words: S0 S1 S2 S3 (0,2,4,6), INIT (8)
.equ CYC,   0x8020    ; four records, stride 8: X, Y, D, ALIVE
.equ FB,    0xA000
.equ INIT,  8

.entry main
main:
    LDI r14, STATE
    LDW r0, r14, INIT
    CMPI r0, 0
    JNZ frame
    CALL arena_reset
    LDI r0, 1
    STW r14, r0, INIT

frame:
    IN  r9, 2             ; move on even frames only
    ANDI r9, 1
    JZ  do_move
    HALT
    JMP frame

do_move:
    IN  r10, 0            ; players 0+1 nibbles
    IN  r11, 1            ; players 2+3 nibbles
    LDI r12, 0
player_loop:
    MOV r13, r12          ; r13 -> this cycle's record
    SHLI r13, 3
    ADDI r13, CYC
    LDW r4, r13, 6        ; alive?
    CMPI r4, 0
    JZ  next_player

    MOV r0, r10           ; select the player's input nibble
    MOV r1, r12
    ANDI r1, 2
    JZ  pl_port0
    MOV r0, r11
pl_port0:
    MOV r1, r12
    ANDI r1, 1
    JZ  pl_noshift
    SHRI r0, 4
pl_noshift:
    ANDI r0, 15

    LDW r4, r13, 4        ; steer
    MOV r1, r0
    ANDI r1, 1
    JZ  pl_nu
    LDI r4, 0
pl_nu:
    MOV r1, r0
    ANDI r1, 2
    JZ  pl_nd
    LDI r4, 1
pl_nd:
    MOV r1, r0
    ANDI r1, 4
    JZ  pl_nl
    LDI r4, 2
pl_nl:
    MOV r1, r0
    ANDI r1, 8
    JZ  pl_nr
    LDI r4, 3
pl_nr:
    STW r13, r4, 4

    LDW r2, r13, 0        ; advance one step
    LDW r3, r13, 2
    CALL advance
    MOV r5, r3            ; probe the target cell
    SHLI r5, 6
    ADD r5, r2
    ADDI r5, FB
    LDB r6, r5
    CMPI r6, 0
    JZ  pl_clear
    LDI r6, 0             ; crash: this cycle dies in place
    STW r13, r6, 6
    JMP next_player
pl_clear:
    MOV r6, r12           ; trail colour 2 + player index
    ADDI r6, 2
    STB r5, r6
    STW r13, r2, 0
    STW r13, r3, 2
next_player:
    ADDI r12, 1
    CMPI r12, 4
    JC  player_loop

    ; ---- count the living
    LDI r5, 0             ; count
    LDI r6, 0             ; index of (a) survivor
    LDI r12, 0
count_loop:
    MOV r13, r12
    SHLI r13, 3
    ADDI r13, CYC
    LDW r4, r13, 6
    CMPI r4, 0
    JZ  count_next
    ADDI r5, 1
    MOV r6, r12
count_next:
    ADDI r12, 1
    CMPI r12, 4
    JC  count_loop

    OUT 4, r5             ; tone = cycles still alive
    CMPI r5, 2
    JNC end_frame         ; two or more alive: keep fighting
    CMPI r5, 0
    JZ  round_done        ; mutual destruction: nobody scores
    MOV r7, r6            ; lone survivor scores
    SHLI r7, 1
    ADD r7, r14
    LDW r8, r7
    ADDI r8, 1
    STW r7, r8
round_done:
    CALL arena_reset
end_frame:
    HALT
    JMP frame

; ---- advance (r2=x r3=y r4=dir) ------------------------------------------
advance:
    CMPI r4, 0
    JNZ adv_nu
    SUBI r3, 1
    RET
adv_nu:
    CMPI r4, 1
    JNZ adv_nd
    ADDI r3, 1
    RET
adv_nd:
    CMPI r4, 2
    JNZ adv_nl
    SUBI r2, 1
    RET
adv_nl:
    ADDI r2, 1
    RET

; ---- arena_reset: clear, walls, respawn from the spawn table --------------
arena_reset:
    LDI r4, FB
    LDI r5, 3072
    LDI r6, 0
ar_clear:
    STB r4, r6
    ADDI r4, 1
    SUBI r5, 1
    JNZ ar_clear

    LDI r4, FB
    LDI r5, FB + 3008
    LDI r6, 64
    LDI r7, 1
ar_rows:
    STB r4, r7
    STB r5, r7
    ADDI r4, 1
    ADDI r5, 1
    SUBI r6, 1
    JNZ ar_rows
    LDI r4, FB
    LDI r5, FB + 63
    LDI r6, 48
ar_cols:
    STB r4, r7
    STB r5, r7
    ADDI r4, 64
    ADDI r5, 64
    SUBI r6, 1
    JNZ ar_cols

    LDI r12, 0
spawn_loop:
    MOV r13, r12
    SHLI r13, 3
    ADDI r13, CYC
    MOV r7, r12
    SHLI r7, 3            ; spawn table stride 8 (4 words, last unused)
    ADDI r7, spawns
    LDW r2, r7, 0
    LDW r3, r7, 2
    LDW r4, r7, 4
    STW r13, r2, 0
    STW r13, r3, 2
    STW r13, r4, 4
    LDI r6, 1
    STW r13, r6, 6
    MOV r5, r3            ; seed the trail pixel
    SHLI r5, 6
    ADD r5, r2
    ADDI r5, FB
    MOV r6, r12
    ADDI r6, 2
    STB r5, r6
    ADDI r12, 1
    CMPI r12, 4
    JC  spawn_loop
    RET

spawns:                   ; x, y, initial direction, (pad)
.word 10, 10, 3, 0
.word 53, 10, 2, 0
.word 10, 37, 3, 0
.word 53, 37, 2, 0
)asm";
}  // namespace

const emu::Rom& quadtron_rom() {
  static const emu::Rom rom = detail::build_rom("quadtron", kSource);
  return rom;
}

}  // namespace rtct::games
