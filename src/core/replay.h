// Session recording and deterministic replay.
//
// Because the game is deterministic and fully input-driven, a complete
// session is just (game identity, sync parameters, merged input per
// frame). Recording that is ~2 bytes/frame and replaying it reproduces the
// session bit-exactly — the standard netplay facility for sharing matches
// and debugging desyncs offline. The drivers record the *merged* inputs
// after SyncInput, so a replay file from either site of a match is
// identical.
//
// File layout (little-endian, checksummed like the .rom container):
//   magic "RTCTRPL1", u32 version, u64 content_id, u16 cfps,
//   u16 buf_frames, u32 frame count, inputs (u16 each), u64 fnv-1a crc.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/core/config.h"
#include "src/emu/game.h"

namespace rtct::core {

/// A parsed (or under-construction) replay.
class Replay {
 public:
  Replay() = default;
  Replay(std::uint64_t content_id, const SyncConfig& cfg)
      : content_id_(content_id), cfps_(cfg.cfps), buf_frames_(cfg.buf_frames) {}

  /// Appends the merged input of the next frame (call in frame order).
  void record(InputWord merged) { inputs_.push_back(merged); }

  [[nodiscard]] std::uint64_t content_id() const { return content_id_; }
  [[nodiscard]] int cfps() const { return cfps_; }
  [[nodiscard]] int buf_frames() const { return buf_frames_; }
  [[nodiscard]] const std::vector<InputWord>& inputs() const { return inputs_; }
  [[nodiscard]] FrameNo frames() const { return static_cast<FrameNo>(inputs_.size()); }

  /// Serializes to the container format.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Serializes into `out`, reusing its capacity (allocation-free once
  /// warm — the pattern every hot-path caller should prefer).
  void serialize_into(std::vector<std::uint8_t>& out) const;

  /// Parses a container; nullopt on corruption or version mismatch.
  static std::optional<Replay> parse(std::span<const std::uint8_t> data);

  /// Replays every recorded frame onto `game` (which must be freshly reset
  /// and of the matching content). Returns false on content-id mismatch.
  /// `per_frame` (optional) observes (frame, state digest) after each step;
  /// pass the digest version the original session negotiated (see
  /// SessionControl::digest_version) to compare against its timeline.
  bool apply(emu::IDeterministicGame& game,
             const std::function<void(FrameNo, std::uint64_t)>& per_frame = nullptr,
             int digest_version = 1) const;

  // File helpers.
  [[nodiscard]] bool save_file(const std::string& path) const;
  static std::optional<Replay> load_file(const std::string& path);

 private:
  std::uint64_t content_id_ = 0;
  int cfps_ = 60;
  int buf_frames_ = 6;
  std::vector<InputWord> inputs_;
};

}  // namespace rtct::core
