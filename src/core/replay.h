// Session recording and deterministic replay.
//
// Because the game is deterministic and fully input-driven, a complete
// session is just (game identity, sync parameters, merged input per
// frame). Recording that is ~2 bytes/frame and replaying it reproduces the
// session bit-exactly — the standard netplay facility for sharing matches
// and debugging desyncs offline. The drivers record the *merged* inputs
// after SyncInput, so a replay file from either site of a match is
// identical.
//
// Container versions (both little-endian, FNV-1a checksummed like the
// .rom container; see docs/PROTOCOL.md "Container formats"):
//
//   RTCTRPL1 — linear input log:
//     magic "RTCTRPL1", u32 version=1, u64 content_id, u16 cfps,
//     u16 buf_frames, u32 frame count, inputs (u16 each), u64 crc.
//
//   RTCTRPL2 — seekable: the input log plus periodic embedded keyframes
//   (full save_state snapshots with their state digest), enabling
//   TAS-grade random access (seek/rewind/branch) and divergence
//   bisection without re-simulating from frame 0:
//     magic "RTCTRPL2", u32 version=2, u64 content_id, u16 cfps,
//     u16 buf_frames, u8 digest_version, u32 keyframe_interval,
//     u32 frame count, inputs (u16 each), u32 keyframe count,
//     keyframes { u32 frame, u64 digest, u32 state_len, state bytes },
//     [game name: u8 len, len bytes], u64 crc.
//
// The game-name section (both container versions) is the qualified
// registry name the recorder ran ("ac16:duel", "agent86:skirmish") — it
// lets tooling re-instantiate the right core directly instead of scanning
// every bundled game for a matching content id. It is optional on read:
// files written before the field (remaining bytes == just the CRC at that
// point) still parse, with an empty name.
//
// A keyframe tagged `frame` holds the machine state *after* the input of
// that frame was applied — the same frame/digest convention as apply()'s
// per_frame callback and the FrameTimeline. Writers emit keyframes every
// `keyframe_interval` frames (rollback recorders: at the first confirmed
// watermark past each interval); readers accept any strictly increasing
// keyframe placement below the frame count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/core/config.h"
#include "src/emu/game.h"

namespace rtct::core {

/// An embedded snapshot: the complete machine state after `frame`'s input
/// was applied, plus its state digest (under the file's digest_version) so
/// a restore can be integrity-checked and divergence bisection can compare
/// keyframes without loading them.
struct ReplayKeyframe {
  FrameNo frame = -1;
  std::uint64_t digest = 0;
  std::vector<std::uint8_t> state;

  bool operator==(const ReplayKeyframe&) const = default;
};

/// A parsed (or under-construction) replay.
class Replay {
 public:
  Replay() = default;
  /// `game_name`, when known, is the qualified registry name of the game
  /// being recorded (IDeterministicGame::content_name()).
  Replay(std::uint64_t content_id, const SyncConfig& cfg, std::string game_name = {})
      : content_id_(content_id),
        cfps_(cfg.cfps),
        buf_frames_(cfg.buf_frames),
        digest_version_(cfg.digest_version()),
        keyframe_interval_(cfg.replay_keyframe_interval),
        game_name_(std::move(game_name)) {}

  /// Appends the merged input of the next frame (call in frame order).
  void record(InputWord merged) { inputs_.push_back(merged); }

  /// True once the recording has advanced `keyframe_interval` frames past
  /// the last keyframe (or past genesis): time to record_keyframe().
  [[nodiscard]] bool keyframe_due() const {
    if (keyframe_interval_ <= 0 || inputs_.empty()) return false;
    const FrameNo last = keyframes_.empty() ? -1 : keyframes_.back().frame;
    return frames() - 1 >= last + keyframe_interval_;
  }

  /// Embeds a keyframe of `game`, which must have stepped exactly the
  /// recorded inputs (game.frame() == frames()). Uses the zero-alloc
  /// save_state_into path; the digest is computed under the file's
  /// digest_version.
  void record_keyframe(const emu::IDeterministicGame& game);

  /// Embeds a keyframe from already-serialized state (rollback recorders:
  /// the live machine is speculative, only the confirmed snapshot is
  /// canonical). `digest` must be the digest of `state` under the file's
  /// digest_version.
  void record_keyframe_raw(FrameNo frame, std::uint64_t digest,
                           std::span<const std::uint8_t> state);

  [[nodiscard]] std::uint64_t content_id() const { return content_id_; }
  /// Qualified game name the session ran (empty for pre-field recordings).
  [[nodiscard]] const std::string& game_name() const { return game_name_; }
  [[nodiscard]] int cfps() const { return cfps_; }
  [[nodiscard]] int buf_frames() const { return buf_frames_; }
  [[nodiscard]] int digest_version() const { return digest_version_; }
  [[nodiscard]] int keyframe_interval() const { return keyframe_interval_; }
  [[nodiscard]] const std::vector<InputWord>& inputs() const { return inputs_; }
  [[nodiscard]] FrameNo frames() const { return static_cast<FrameNo>(inputs_.size()); }
  [[nodiscard]] const std::vector<ReplayKeyframe>& keyframes() const { return keyframes_; }
  /// Mutable keyframe access for divergence tooling and fixture forging
  /// (e.g. injecting a known single-byte mutation the bisector must find).
  [[nodiscard]] std::vector<ReplayKeyframe>& keyframes_mutable() { return keyframes_; }

  /// The container version serialize() will emit: 2 when the replay is
  /// seekable (an interval or embedded keyframes), else the v1 layout.
  [[nodiscard]] int container_version() const {
    return keyframe_interval_ > 0 || !keyframes_.empty() ? 2 : 1;
  }

  /// Serializes to the container format.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Serializes into `out`, reusing its capacity (allocation-free once
  /// warm — the pattern every hot-path caller should prefer).
  void serialize_into(std::vector<std::uint8_t>& out) const;

  /// Parses a container (v1 or v2); nullopt on corruption, version
  /// mismatch, or a header that disagrees with the payload length (the
  /// declared counts are validated against the remaining bytes *before*
  /// any allocation — an attacker-controlled count cannot OOM the parser).
  static std::optional<Replay> parse(std::span<const std::uint8_t> data);

  /// Replays every recorded frame onto `game` (which must be freshly reset
  /// and of the matching content). Returns false on content-id mismatch.
  /// `per_frame` (optional) observes (frame, state digest) after each step;
  /// pass the digest version the original session negotiated (see
  /// SessionControl::digest_version) to compare against its timeline.
  bool apply(emu::IDeterministicGame& game,
             const std::function<void(FrameNo, std::uint64_t)>& per_frame = nullptr,
             int digest_version = 1) const;

  /// Random access: diagnostics of one seek() call.
  struct SeekStats {
    FrameNo keyframe = -1;      ///< restore point used (-1 = reset from genesis)
    FrameNo resimulated = 0;    ///< frames re-simulated after the restore
  };

  /// Positions `game` at the state after frame `frame` was applied, by
  /// restoring the nearest keyframe at or before it (falling back to
  /// reset()) and re-simulating the remaining inputs. Returns the state
  /// digest at `frame` under `digest_version` (0 = the file's own
  /// version); nullopt on content-id mismatch, out-of-range frame, or a
  /// keyframe whose restored state no longer matches its recorded digest
  /// (embedded-snapshot corruption).
  std::optional<std::uint64_t> seek(emu::IDeterministicGame& game, FrameNo frame,
                                    int digest_version = 0,
                                    SeekStats* stats = nullptr) const;

  /// Truncate-and-fork: a new replay carrying frames [0, frame] and every
  /// keyframe inside that prefix — the repro-minimization primitive
  /// (`rtct_replay branch`). Frames past the end are clamped.
  [[nodiscard]] Replay branch(FrameNo frame) const;

  // File helpers.
  [[nodiscard]] bool save_file(const std::string& path) const;
  static std::optional<Replay> load_file(const std::string& path);

 private:
  std::uint64_t content_id_ = 0;
  int cfps_ = 60;
  int buf_frames_ = 6;
  int digest_version_ = 2;
  int keyframe_interval_ = 0;  ///< 0 = linear v1 recording (no keyframes)
  std::string game_name_;      ///< qualified name; empty = unknown/legacy
  std::vector<InputWord> inputs_;
  std::vector<ReplayKeyframe> keyframes_;
};

}  // namespace rtct::core
