// Per-frame timing/consistency records — what the paper's time server
// collected (§4: "we record the beginning time of every frame of each site
// to the time server"), plus state hashes so logical consistency can be
// *verified* rather than assumed.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/common/types.h"

namespace rtct::core {

struct FrameRecord {
  FrameNo frame = 0;
  Time begin_time = 0;        ///< when BeginFrameTiming ran (→ time server)
  Time input_ready_time = 0;  ///< when SyncInput returned
  Dur wait = 0;               ///< sleep granted by EndFrameTiming
  Dur stall = 0;              ///< time spent blocked in SyncInput's loop
  std::uint64_t state_hash = 0;  ///< game state after Transition()
};

class FrameTimeline {
 public:
  void reserve(std::size_t n) { records_.reserve(n); }
  void add(const FrameRecord& r) { records_.push_back(r); }

  [[nodiscard]] const std::vector<FrameRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Frame begin times in ms (the raw time-server log of §4.1.1).
  [[nodiscard]] std::vector<double> begin_times_ms() const;

  /// Frame times (consecutive begin-time deltas) as a Series — the paper's
  /// Figure 1 statistic base.
  [[nodiscard]] Series frame_times() const;

  /// Time spent stalled in SyncInput per frame, in ms.
  [[nodiscard]] Series stalls() const;

  /// Number of frames whose SyncInput blocked on the network for >= 1 ms.
  [[nodiscard]] std::size_t stalled_frames() const;

 private:
  std::vector<FrameRecord> records_;
};

/// Figure 2's statistic: per-frame begin-time difference (a - b, in ms)
/// over the common prefix of two timelines. Summarize().mean_abs is the
/// paper's "absolute average" (footnote 11).
Series synchrony_differences(const FrameTimeline& a, const FrameTimeline& b);

/// Logical consistency check: first frame index at which the two replicas'
/// state hashes differ, or -1 if they never diverge over the common prefix.
FrameNo first_divergence(const FrameTimeline& a, const FrameTimeline& b);

}  // namespace rtct::core
