// Per-frame timing/consistency records — what the paper's time server
// collected (§4: "we record the beginning time of every frame of each site
// to the time server"), plus state hashes so logical consistency can be
// *verified* rather than assumed.
//
// The timeline also serializes to JSON ("rtct.timeline.v1": exact-ns
// per-frame columns plus the Figure-1/Figure-2 summary statistics and the
// §4.2 latency breakdown) so sessions can be archived, diffed and plotted;
// tools/rtct_trace loads two exports back and reports first divergence and
// synchrony — the paper's whole evaluation, offline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/common/types.h"

namespace rtct {
class JsonValue;       // src/common/json.h
class MetricsRegistry;  // src/common/telemetry.h
}  // namespace rtct

namespace rtct::core {

struct FrameRecord {
  FrameNo frame = 0;
  Time begin_time = 0;        ///< when BeginFrameTiming ran (→ time server)
  Time input_ready_time = 0;  ///< when SyncInput returned
  Dur compute = 0;            ///< Transition + render cost (§4.2 "5ms" term)
  Dur wait = 0;               ///< sleep granted by EndFrameTiming
  Dur stall = 0;              ///< time spent blocked in SyncInput's loop
  std::uint64_t state_hash = 0;  ///< game state after Transition()
};

/// The §4.2 latency-budget terms, averaged per frame (ms): how a frame's
/// period divides between waiting for remote input, executing Transition,
/// and sleeping out the pacer's remainder. `other` is what is left of the
/// mean frame time after those three (loop overhead; ~0 in simulation).
struct LatencyBreakdown {
  double frame_ms = 0;    ///< mean frame time (consecutive begin deltas)
  double stall_ms = 0;    ///< input submit → ready (network wait)
  double compute_ms = 0;  ///< ready → transition done
  double sleep_ms = 0;    ///< EndFrameTiming wait actually granted
  double other_ms = 0;    ///< frame_ms − stall − compute − sleep
};

class FrameTimeline {
 public:
  void reserve(std::size_t n) { records_.reserve(n); }
  void add(const FrameRecord& r) { records_.push_back(r); }

  [[nodiscard]] const std::vector<FrameRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Rewrites one record's state hash in place. Rollback drivers record a
  /// frame's *speculative* digest when it executes and backfill the
  /// canonical confirmed digest once the frame is final, so archived
  /// timelines always compare confirmed state.
  void set_state_hash(std::size_t i, std::uint64_t hash) {
    records_[i].state_hash = hash;
  }

  /// Frame begin times in ms (the raw time-server log of §4.1.1).
  [[nodiscard]] std::vector<double> begin_times_ms() const;

  /// Frame times (consecutive begin-time deltas) as a Series — the paper's
  /// Figure 1 statistic base.
  [[nodiscard]] Series frame_times() const;

  /// Time spent stalled in SyncInput per frame, in ms.
  [[nodiscard]] Series stalls() const;
  /// Transition+render cost per frame, in ms.
  [[nodiscard]] Series computes() const;
  /// Pacer-granted sleep per frame, in ms.
  [[nodiscard]] Series waits() const;

  /// Number of frames whose SyncInput blocked on the network for >= 1 ms.
  [[nodiscard]] std::size_t stalled_frames() const;

  /// Mean per-frame split of the §4.2 latency budget.
  [[nodiscard]] LatencyBreakdown latency_breakdown() const;

  /// Exports the per-frame instruments under "timeline." names.
  void export_metrics(MetricsRegistry& reg) const;

 private:
  std::vector<FrameRecord> records_;
};

/// Figure 2's statistic: per-frame begin-time difference (a - b, in ms)
/// over the common prefix of two timelines. Summarize().mean_abs is the
/// paper's "absolute average" (footnote 11).
Series synchrony_differences(const FrameTimeline& a, const FrameTimeline& b);

/// Logical consistency check: first frame index at which the two replicas'
/// state hashes differ, or -1 if they never diverge over the common prefix.
FrameNo first_divergence(const FrameTimeline& a, const FrameTimeline& b);

/// Serializes a timeline as "rtct.timeline.v1" (see docs/PROTOCOL.md —
/// exact-ns columns, hex state hashes, Figure-1 summary block). `name`
/// labels the session/site; `cfps` gives readers the nominal frame period.
std::string timeline_to_json(const FrameTimeline& t, std::string_view name, int cfps);

/// Loads a "rtct.timeline.v1" document back. Returns nullopt when the
/// schema tag, the column set, or the column lengths are wrong.
std::optional<FrameTimeline> timeline_from_json(const JsonValue& doc);

}  // namespace rtct::core
