// SessionControl — the startup handshake (§3.2: "a simple session control
// protocol is implemented to ensure that two sites start at almost the
// same time, with at most one round-trip time deviation").
//
// Both sites broadcast HELLO periodically. The master starts the moment it
// has seen the slave's (compatible) HELLO and emits START; the slave
// starts on receiving START. A lost START is repaired because the slave
// keeps HELLOing and the master answers every HELLO with a fresh START.
// Start-time skew is therefore bounded by one one-way delay, which the
// slave's Algorithm 4 then smooths out "within only a few frames".
//
// The handshake also enforces the §2 preconditions: same game image
// (checksum), same protocol version, and same sync parameters.
#pragma once

#include <optional>
#include <string>

#include "src/common/time.h"
#include "src/common/types.h"
#include "src/core/config.h"
#include "src/core/wire.h"

namespace rtct::core {

enum class SessionState { kConnecting, kRunning, kFailed };

class SessionControl {
 public:
  SessionControl(SiteId my_site, std::uint64_t rom_checksum, SyncConfig cfg,
                 Dur hello_interval = milliseconds(50));

  /// Driver calls this on a timer; returns a message to transmit now, if
  /// any (HELLO while connecting; START when the master must [re]announce).
  std::optional<Message> poll(Time now);

  /// Feed any received session message (HelloMsg / StartMsg). SyncMsgs
  /// also imply a running peer — drivers may call note_sync_traffic().
  void ingest(const Message& msg, Time now);

  /// A sync message arrived: the peer is definitely running (covers a
  /// slave whose START was lost but whose peer is already streaming).
  void note_sync_traffic(Time now);

  [[nodiscard]] SessionState state() const { return state_; }
  [[nodiscard]] bool running() const { return state_ == SessionState::kRunning; }
  [[nodiscard]] const std::string& failure_reason() const { return failure_; }
  /// Local time at which this site entered kRunning.
  [[nodiscard]] Time start_time() const { return start_time_; }

 private:
  void fail(const std::string& why) {
    state_ = SessionState::kFailed;
    failure_ = why;
  }
  void enter_running(Time now) {
    if (state_ == SessionState::kConnecting) {
      state_ = SessionState::kRunning;
      start_time_ = now;
    }
  }
  [[nodiscard]] HelloMsg my_hello() const;
  bool hello_compatible(const HelloMsg& h);

  SiteId my_site_;
  std::uint64_t rom_checksum_;
  SyncConfig cfg_;
  Dur hello_interval_;

  SessionState state_ = SessionState::kConnecting;
  std::string failure_;
  Time start_time_ = 0;
  Time next_hello_ = 0;
  bool peer_seen_ = false;
  bool start_pending_ = false;  ///< master owes the slave a START
};

}  // namespace rtct::core
