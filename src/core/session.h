// SessionControl — the startup handshake (§3.2: "a simple session control
// protocol is implemented to ensure that two sites start at almost the
// same time, with at most one round-trip time deviation").
//
// Both sites broadcast HELLO periodically. The master starts the moment it
// has seen the slave's (compatible) HELLO and emits START; the slave
// starts on receiving START. A lost START is repaired because the slave
// keeps HELLOing and the master answers every HELLO with a fresh START.
// Start-time skew is therefore bounded by one one-way delay, which the
// slave's Algorithm 4 then smooths out "within only a few frames".
//
// The handshake also enforces the §2 preconditions: same game image
// (checksum), same protocol version, and same sync parameters.
//
// Protocol v2 additions: every HELLO carries an echoed-timestamp RTT probe
// (hello_time / echo_time / echo_hold, same scheme as SyncMsg) plus the
// sender's smoothed-RTT advert. When BOTH sites set cfg.adaptive_lag the
// master sizes the local lag from the larger of the two measurements —
// BufFrame = ceil(RTT/2 / frame_period) + margin, clamped — and announces
// the agreed value in START; drivers then apply effective_buf_frames() to
// their SyncPeer/FramePacer before frame 0. With adaptive lag off (the
// default) the fixed configured value must match exactly, as in v1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/time.h"
#include "src/common/types.h"
#include "src/core/config.h"
#include "src/core/rtt.h"
#include "src/core/wire.h"

namespace rtct {
class MetricsRegistry;  // src/common/telemetry.h
}  // namespace rtct

namespace rtct::core {

enum class SessionState { kConnecting, kRunning, kFailed };

class SessionControl {
 public:
  SessionControl(SiteId my_site, std::uint64_t rom_checksum, SyncConfig cfg,
                 Dur hello_interval = milliseconds(50));

  /// Driver calls this on a timer; returns a message to transmit now, if
  /// any (HELLO while connecting; START when the master must [re]announce).
  std::optional<Message> poll(Time now);

  /// Feed any received session message (HelloMsg / StartMsg). SyncMsgs
  /// also imply a running peer — drivers may call note_sync_traffic().
  void ingest(const Message& msg, Time now);

  /// A sync message arrived: the peer is definitely running (covers a
  /// slave whose START was lost but whose peer is already streaming).
  /// With adaptive lag enabled this shortcut is ignored until the
  /// negotiated BufFrame is known (only START carries it).
  void note_sync_traffic(Time now);

  [[nodiscard]] SessionState state() const { return state_; }
  [[nodiscard]] bool running() const { return state_ == SessionState::kRunning; }
  [[nodiscard]] const std::string& failure_reason() const { return failure_; }
  /// Local time at which this site entered kRunning.
  [[nodiscard]] Time start_time() const { return start_time_; }

  /// The local-lag depth the session must run with: the negotiated value
  /// when adaptive lag agreed on one, else the configured fixed value.
  /// Drivers apply it to SyncPeer/FramePacer once running() turns true.
  [[nodiscard]] int effective_buf_frames() const {
    return negotiated_buf_ > 0 ? negotiated_buf_ : cfg_.buf_frames;
  }
  /// True when effective_buf_frames() came from the v2 RTT negotiation.
  [[nodiscard]] bool lag_negotiated() const { return negotiated_buf_ > 0; }

  /// The state-digest version both replicas compare hashes under: 2 when
  /// both sides advertised the incremental-digest capability, else 1.
  /// Decided by the master when it starts and carried to the slave in the
  /// START flags; before the outcome is known this reports the local
  /// capability (a slave that starts on bare sync traffic without ever
  /// seeing a master message assumes a same-configured peer — any other
  /// peer inside one protocol version is a deliberate config mismatch).
  [[nodiscard]] int digest_version() const {
    return digest_version_ > 0 ? digest_version_ : cfg_.digest_version();
  }

  /// True when the handshake settled on the rollback consistency mode:
  /// both sites advertised the capability in HELLO, the master decided,
  /// and START carried the outcome (kFlagRollback). Until the outcome is
  /// known this is false — a session never runs rollback "by assumption".
  [[nodiscard]] bool rollback_mode() const { return rollback_state_ == 1; }
  /// The local input delay (frames) a rollback session runs with: the
  /// master's configured value, carried to the slave in START.buf_frames
  /// (offset by one — see kFlagRollback). Meaningful only when
  /// rollback_mode() is true.
  [[nodiscard]] int rollback_delay() const { return rollback_delay_; }

  /// Handshake-time RTT estimate from the HELLO probe (-1 = no sample).
  [[nodiscard]] Dur measured_rtt() const {
    return rtt_.has_sample() ? rtt_.srtt() : -1;
  }

  /// Snapshots handshake state into the registry ("session.*"): state as
  /// 0=connecting/1=running/2=failed, message counters, negotiated lag.
  void export_metrics(MetricsRegistry& reg) const;

 private:
  void fail(const std::string& why) {
    state_ = SessionState::kFailed;
    failure_ = why;
  }
  void enter_running(Time now) {
    if (state_ == SessionState::kConnecting) {
      state_ = SessionState::kRunning;
      start_time_ = now;
    }
  }
  [[nodiscard]] HelloMsg my_hello(Time now) const;
  bool hello_compatible(const HelloMsg& h);
  [[nodiscard]] bool adaptive_agreed() const { return cfg_.adaptive_lag && peer_adaptive_; }

  SiteId my_site_;
  std::uint64_t rom_checksum_;
  SyncConfig cfg_;
  Dur hello_interval_;

  SessionState state_ = SessionState::kConnecting;
  std::string failure_;
  Time start_time_ = 0;
  Time next_hello_ = 0;
  bool peer_seen_ = false;
  bool start_pending_ = false;  ///< master owes the slave a START

  // v2: HELLO RTT probe + adaptive-lag negotiation.
  RttEstimator rtt_;
  Time peer_hello_time_ = -1;  ///< newest hello_time seen from the peer
  Time peer_hello_rcv_ = 0;    ///< when we received it (for echo_hold)
  bool peer_adaptive_ = false;
  bool peer_digest_v2_ = false;
  bool peer_rollback_ = false;
  int digest_version_ = 0;   ///< 0 = not yet decided
  int rollback_state_ = -1;  ///< -1 undecided / 0 lockstep / 1 rollback
  int rollback_delay_ = 0;   ///< adopted local input delay (frames)
  Dur peer_adv_rtt_ = -1;
  Time first_compat_hello_ = -1;  ///< when negotiation probing started
  int negotiated_buf_ = 0;        ///< 0 = fixed policy

  // Handshake traffic counters (export_metrics).
  std::uint64_t hellos_sent_ = 0;
  std::uint64_t starts_sent_ = 0;
  std::uint64_t hellos_rcvd_ = 0;
  std::uint64_t starts_rcvd_ = 0;
};

}  // namespace rtct::core
