// RealtimeSession — the wall-clock driver: Algorithm 1 on a real thread
// over a real UDP socket.
//
// This is the deployment shape of the paper's system (two PCs, one VM
// each). It runs the exact same sans-IO protocol objects (SyncPeer,
// FramePacer, SessionControl) as the simulated testbed; only the clock
// (std::chrono::steady_clock) and the transport differ. The transport is
// any PollableTransport — a raw UdpSocket for direct peer-to-peer play, or
// a relay::RelayEndpoint when the session goes through rtct_relayd — so
// the frame loop is indifferent to the path.
//
// Single-threaded by design: the frame loop interleaves the send flush
// timer and receive polling at its own co_await-free pace — on real
// hardware the 20 ms flush and the frame loop live comfortably on one
// thread, and examples/netplay_udp runs one RealtimeSession per thread to
// get two sites in one process.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/common/types.h"
#include "src/core/config.h"
#include "src/core/flush_clock.h"
#include "src/core/input_source.h"
#include "src/core/metrics.h"
#include "src/core/pacer.h"
#include "src/core/replay.h"
#include "src/core/rollback.h"
#include "src/core/session.h"
#include "src/core/spectate.h"
#include "src/core/sync_peer.h"
#include "src/emu/game.h"
#include "src/net/udp_socket.h"

namespace rtct::core {

struct RealtimeConfig {
  SyncConfig sync;
  PacingPolicy pacing = PacingPolicy::kFull;
  int frames = 600;  ///< frames to run (examples keep this short)
  Dur handshake_timeout = seconds(10);
  /// Abort if SyncInput stalls longer than this (the paper's behaviour is
  /// to freeze forever; a library should let the caller bound that).
  Dur stall_timeout = seconds(5);
  /// After the last frame, keep serving spectators (snapshot/feed
  /// retransmissions) for up to this long so observers can finish
  /// catching up before the process exits.
  Dur spectator_drain_grace = seconds(3);
  /// Drop an observer not heard from for this long. Dead observers must
  /// not pin the hub's trim watermark (the slowest-reader bug); live ones
  /// are safe because SpectatorClient keepalive-acks every 500 ms.
  Dur spectator_idle_timeout = seconds(2);
};

class RealtimeSession {
 public:
  /// `socket` must already be bound and connected/framed to the peer (a
  /// connected UdpSocket, or a RelayEndpoint holding a live conn id).
  RealtimeSession(SiteId site, emu::IDeterministicGame& game, InputSource& input,
                  net::PollableTransport& socket, RealtimeConfig cfg);

  /// Optional per-frame callback (rendering, logging). Called after
  /// Transition with the frame's record.
  using FrameHook = std::function<void(const emu::IDeterministicGame&, const FrameRecord&)>;
  void set_frame_hook(FrameHook hook) { hook_ = std::move(hook); }

  /// Blocks through handshake + cfg.frames frames. Returns false (with
  /// `error` filled) on handshake failure, stall timeout, or stop request.
  bool run(std::string* error = nullptr);

  /// Thread-safe: makes run() return at the next frame boundary.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] const FrameTimeline& timeline() const { return timeline_; }
  [[nodiscard]] const SyncPeerStats& stats() const {
    return rollback_ ? rollback_->stats() : peer_.stats();
  }
  [[nodiscard]] Dur rtt() const { return rollback_ ? rollback_->rtt() : peer_.rtt(); }

  /// The session's merged-input recording (replayable on a fresh machine
  /// of the same ROM; identical on both sites of a match).
  [[nodiscard]] const Replay& replay() const { return replay_; }

  /// Serve spectators from an additional, *unconnected* UDP socket: any
  /// JoinRequest arriving there is answered with a snapshot and a live
  /// input feed, all observer addresses fanning out of one shared
  /// SpectatorBroadcastHub (encode-once, per-observer cursors). Call
  /// before run(); the socket must outlive the session.
  void serve_spectators(net::UdpSocket* socket) { spectator_socket_ = socket; }
  /// Distinct observer endpoints registered over the session's lifetime
  /// (NOT currently-connected: the idle reaper removes spectators that
  /// stop acking, including ones that caught up and walked away).
  [[nodiscard]] std::size_t spectators_joined() const {
    return static_cast<std::size_t>(spectator_hub_.stats().observers_added);
  }
  /// Spectator-port datagrams dropped because the sender was not a
  /// registered observer and the message was not a JoinRequest — rogue or
  /// stale traffic must not mint observer state (each phantom observer
  /// would pin the hub's trim watermark until the idle reaper caught it).
  [[nodiscard]] std::uint64_t dropped_unknown_sender() const {
    return dropped_unknown_sender_;
  }

  /// Snapshots every subsystem's state into the registry: "sync.*",
  /// "pacer.*", "session.*", "timeline.*", "net.udp.*", "spectator.hub.*"
  /// (plus the stable "spectator.host.*" aggregate names, fed from the
  /// hub), "session.flushes"/"flush_reanchors". Call between frames (from
  /// a frame hook) or after run().
  void export_metrics(MetricsRegistry& reg) const;

  /// True when the handshake settled on the rollback consistency mode
  /// (both sides opted in; see SyncConfig::rollback). Valid after run().
  [[nodiscard]] bool rollback_mode() const { return rollback_ != nullptr; }
  [[nodiscard]] const RollbackStats* rollback_stats() const {
    return rollback_ ? &rollback_->rollback_stats() : nullptr;
  }

 private:
  [[nodiscard]] Time now() const;
  void flush_if_due();
  void drain();
  void pump_spectators();
  bool handshake(std::string* error);
  /// Once running, adopt the handshake's negotiated local lag (v2
  /// adaptive mode) or construct the RollbackSession (v3 rollback mode)
  /// before the first sync ingest. Idempotent.
  void apply_negotiated_lag();
  /// The frame loop for the rollback consistency mode (run() dispatches
  /// here when the handshake settled on it).
  bool run_rollback(std::string* error);
  /// Feeds newly confirmed frames to the replay recording and the
  /// spectator hub (rollback mode: only confirmed frames are canonical).
  void record_confirmed();
  /// Post-game retransmission grace for observers still catching up.
  void drain_spectators_post_game();

  SiteId site_;
  emu::IDeterministicGame& game_;
  InputSource& input_;
  net::PollableTransport& socket_;
  RealtimeConfig cfg_;

  SyncPeer peer_;
  FramePacer pacer_;
  SessionControl session_;
  FrameTimeline timeline_;
  Replay replay_;
  FrameHook hook_;
  Time epoch_ = 0;
  FlushClock flush_clock_;  ///< catch-up scheduled send-flush cadence
  bool lag_applied_ = false;
  int digest_version_ = 1;  ///< locked in with the handshake outcome
  std::unique_ptr<RollbackSession> rollback_;  ///< non-null iff rollback mode
  FrameNo rb_recorded_ = 0;  ///< confirmed frames fed to replay/spectators
  std::atomic<bool> stop_{false};

  net::UdpSocket* spectator_socket_ = nullptr;
  SpectatorBroadcastHub spectator_hub_;
  std::map<net::UdpAddress, SpectatorBroadcastHub::ObserverId> spectator_ids_;
  std::uint64_t dropped_unknown_sender_ = 0;

  // Hot-path scratch (reused capacity; see ByteWriter's adopting ctor).
  std::vector<std::uint8_t> wire_scratch_;
  std::vector<std::uint8_t> snapshot_scratch_;
};

}  // namespace rtct::core
