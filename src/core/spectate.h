// Spectator / late-join support — the journal-version extension the ICDCS
// paper defers in §6 ("how to support ... observers, how to accommodate
// late comers").
//
// Protocol: an observer sends JoinRequest (repeatedly, over the same
// lossy-datagram substrate as everything else). The host answers with a
// full machine snapshot taken at some frame F, then streams the merged
// input of every frame it executes after F as a go-back-N InputFeed
// window; the observer acks cumulatively. Because the game VM is
// deterministic, replaying the feed from the snapshot reproduces the
// session bit-exactly — the observer's replica is provably identical
// (state hashes), merely delayed by its own path latency.
//
// Both classes are sans-IO, in the same style as SyncPeer: the embedding
// driver moves Messages between them and supplies snapshots/time.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/time.h"
#include "src/common/types.h"
#include "src/core/config.h"
#include "src/core/wire.h"
#include "src/emu/game.h"

namespace rtct {
class MetricsRegistry;  // src/common/telemetry.h
}  // namespace rtct

namespace rtct::core {

/// Feed-protocol counters, host side.
struct SpectatorHostStats {
  std::uint64_t join_requests_rcvd = 0;
  std::uint64_t snapshots_sent = 0;
  std::uint64_t feed_messages_sent = 0;
  std::uint64_t inputs_fed = 0;  ///< input entries across all feed messages
  std::uint64_t acks_rcvd = 0;
};

/// Feed-protocol counters, observer side.
struct SpectatorClientStats {
  std::uint64_t join_requests_sent = 0;
  std::uint64_t snapshots_rcvd = 0;
  std::uint64_t feed_messages_rcvd = 0;
  std::uint64_t stale_inputs_rcvd = 0;  ///< entries at/below applied_frame
  std::uint64_t acks_sent = 0;
};

/// Runs beside a playing site (typically the master). Records every
/// executed frame's merged input; serves one or more observers.
/// For presentation simplicity this implementation tracks a single
/// observer endpoint (one host instance per observer — they are cheap).
class SpectatorHost {
 public:
  SpectatorHost(std::uint64_t content_id, SyncConfig cfg)
      : content_id_(content_id), cfg_(cfg) {}

  /// Driver calls this after every Transition with the frame just
  /// executed (0-based) and its merged input word.
  void on_frame(FrameNo frame, InputWord merged);

  /// Feeds a received observer message (JoinRequest / FeedAck).
  void ingest(const Message& msg);

  /// True when a join was accepted and the driver must supply the current
  /// machine snapshot via provide_snapshot().
  [[nodiscard]] bool wants_snapshot() const { return wants_snapshot_; }

  /// `frame` is the last executed frame (machine.frame() - 1); `state` is
  /// the machine state taken at that point (save_state_into a reused
  /// scratch buffer on the hot path — the host copies what it keeps).
  void provide_snapshot(FrameNo frame, std::span<const std::uint8_t> state);

  /// Next outbound message for the observer: the snapshot until acked,
  /// then unacked feed windows. nullopt = nothing to send.
  std::optional<Message> make_message(Time now);

  [[nodiscard]] bool observer_joined() const { return snapshot_.has_value(); }
  [[nodiscard]] FrameNo acked_frame() const { return acked_frame_; }
  [[nodiscard]] std::size_t backlog_size() const { return backlog_.size(); }
  [[nodiscard]] const SpectatorHostStats& stats() const { return stats_; }

  /// Snapshots feed-serving state into the registry ("spectator.host.*").
  void export_metrics(MetricsRegistry& reg) const;

 private:
  std::uint64_t content_id_;
  SyncConfig cfg_;

  bool wants_snapshot_ = false;
  std::optional<SnapshotMsg> snapshot_;
  bool snapshot_acked_ = false;

  FrameNo backlog_base_ = 0;          ///< frame number of backlog_[0]
  std::deque<InputWord> backlog_;     ///< merged inputs after the snapshot
  /// Observer's cumulative ack. Starts below any valid ack value: a
  /// pre-game snapshot is taken at frame -1 and its ack must still count.
  FrameNo acked_frame_ = -2;
  FrameNo last_executed_ = -1;
  SpectatorHostStats stats_;
};

/// Feed-protocol counters, hub side. The bytes_encoded / bytes_sent pair is
/// the fan-out amortization measure: encode work is paid once per distinct
/// payload, send bytes once per observer, so bytes_sent / bytes_encoded ≈
/// observer count when cursors agree (see bench/spectator_scaling).
struct SpectatorHubStats {
  std::uint64_t join_requests_rcvd = 0;
  std::uint64_t snapshots_sent = 0;
  std::uint64_t feed_messages_sent = 0;
  std::uint64_t inputs_fed = 0;
  std::uint64_t acks_rcvd = 0;
  std::uint64_t snapshot_encodes = 0;  ///< snapshots actually serialized
  std::uint64_t feed_encodes = 0;      ///< feed windows actually serialized
  std::uint64_t bytes_encoded = 0;     ///< bytes produced by encode work
  std::uint64_t bytes_sent = 0;        ///< bytes handed out across observers
  std::uint64_t observers_added = 0;
  std::uint64_t observers_removed = 0;
  std::uint64_t observers_idle_removed = 0;  ///< subset removed by remove_idle
};

/// Multi-observer broadcast hub: the scaling replacement for running one
/// SpectatorHost per observer. All observers share ONE backlog ring of
/// merged inputs and ONE wire-encoded snapshot; each observer is just a
/// cumulative-ack cursor into the shared ring. Every outbound payload
/// (snapshot or feed window) is encoded exactly once and handed out as a
/// shared immutable buffer, so serving N observers costs N sends but O(1)
/// snapshot copies and O(distinct cursors) encodes per flush — per-client
/// fan-out cost is what lock-step broadcast lives or dies by.
///
/// Wire-compatible with SpectatorClient: an observer cannot tell whether a
/// hub or a dedicated host serves it. One behavioural refinement makes
/// that true: an observer that has ever acked is served exclusively from
/// the feed ring — never a (newer) snapshot, which a joined client would
/// ignore-but-ack forever — so the ring is trimmed to
/// min(snapshot frame, every acked cursor).
class SpectatorBroadcastHub {
 public:
  using ObserverId = std::uint32_t;
  /// Encoded-datagram handle: immutable, shared across observers.
  using Buffer = std::shared_ptr<const std::vector<std::uint8_t>>;

  SpectatorBroadcastHub(std::uint64_t content_id, SyncConfig cfg)
      : content_id_(content_id), cfg_(cfg) {}

  /// Registers a new observer endpoint (driver maps transport address →
  /// id). Ids are never reused, so a late datagram from a removed
  /// observer cannot be misattributed. `now` seeds the liveness clock used
  /// by remove_idle().
  ObserverId add_observer(Time now = 0);
  void remove_observer(ObserverId id);

  /// Removes every active observer not heard from within `timeout` and
  /// returns their ids (the driver drops its address mapping). This is the
  /// slowest-reader unpin: a disconnected observer's stale cursor would
  /// otherwise hold the trim watermark forever, growing the ring without
  /// bound and keeping all_caught_up() false. Safe against false positives
  /// because SpectatorClient keepalive-acks even when idle — a wrongly
  /// removed live observer re-registers on its next datagram and is
  /// re-seeded from the snapshot/feed path.
  std::vector<ObserverId> remove_idle(Time now, Dur timeout);

  /// Driver calls this after every Transition with the frame just
  /// executed (0-based) and its merged input word.
  void on_frame(FrameNo frame, InputWord merged);

  /// Feeds a received observer message (JoinRequest / FeedAck). `now`
  /// refreshes the observer's liveness clock (see remove_idle).
  void ingest(ObserverId id, const Message& msg, Time now = 0);

  /// True when the driver must supply a machine snapshot via
  /// provide_snapshot() (first join, or a joiner found the shared snapshot
  /// too stale to catch up from).
  [[nodiscard]] bool wants_snapshot() const { return wants_snapshot_; }

  /// `frame` is the last executed frame; `state` the machine state at that
  /// point. Encoded to wire bytes once, served to every pre-ack observer.
  void provide_snapshot(FrameNo frame, std::span<const std::uint8_t> state);

  /// Next outbound datagram for this observer, already wire-encoded:
  /// the shared snapshot until the observer's first ack, then its unacked
  /// feed window. nullptr = nothing to send. Observers at the same cursor
  /// receive the very same buffer.
  Buffer make_message(ObserverId id, Time now);

  [[nodiscard]] std::size_t observer_count() const { return active_count_; }
  /// Observers that have acked something (loaded a snapshot, replaying).
  [[nodiscard]] std::size_t joined_count() const;
  [[nodiscard]] std::size_t backlog_size() const { return ring_.size(); }
  /// True when every active observer has acked everything recorded —
  /// the drivers' post-game drain-loop exit condition.
  [[nodiscard]] bool all_caught_up() const;
  [[nodiscard]] bool observer_joined(ObserverId id) const;
  /// Whether the id still names a live cursor (false after remove_observer
  /// / remove_idle — the driver should re-register the endpoint).
  [[nodiscard]] bool observer_active(ObserverId id) const {
    return id < observers_.size() && observers_[id].active;
  }
  [[nodiscard]] FrameNo acked_frame(ObserverId id) const;
  [[nodiscard]] const SpectatorHubStats& stats() const { return stats_; }

  /// Snapshots hub state into the registry ("spectator.hub.*").
  void export_metrics(MetricsRegistry& reg) const;

 private:
  /// Growable ring of merged inputs for frames [base, base + size).
  class InputRing {
   public:
    [[nodiscard]] FrameNo base() const { return base_; }
    [[nodiscard]] FrameNo end() const { return base_ + static_cast<FrameNo>(count_); }
    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] InputWord at(FrameNo f) const {
      return buf_[(head_ + static_cast<std::size_t>(f - base_)) & (buf_.size() - 1)];
    }
    void clear(FrameNo new_base);
    void push_back(InputWord w);
    void pop_front();

   private:
    std::vector<InputWord> buf_;  ///< power-of-two capacity
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    FrameNo base_ = 0;
  };

  struct Observer {
    bool active = false;
    bool ack_ever = false;   ///< has acked at least once — feed-only from then on
    FrameNo acked = -2;      ///< cumulative ack cursor
    Time last_heard = 0;     ///< liveness clock for remove_idle()
  };

  struct FeedCacheEntry {
    FrameNo first = 0;
    std::size_t count = 0;
    Buffer bytes;
  };

  [[nodiscard]] bool snapshot_usable() const {
    return snapshot_wire_ != nullptr && snapshot_frame_ + 1 >= ring_.base();
  }
  [[nodiscard]] std::size_t max_backlog() const;
  void trim_ring();

  std::uint64_t content_id_;
  SyncConfig cfg_;

  bool wants_snapshot_ = false;
  FrameNo snapshot_frame_ = -1;
  Buffer snapshot_wire_;  ///< encoded once, shared by every resend

  InputRing ring_;
  FrameNo last_executed_ = -1;
  std::vector<Observer> observers_;
  std::size_t active_count_ = 0;

  std::vector<FeedCacheEntry> feed_cache_;  ///< valid until the ring mutates
  SpectatorHubStats stats_;
};

/// The observing side: owns (a reference to) its own replica machine.
class SpectatorClient {
 public:
  /// `game` must be a fresh machine of the same ROM as the host's.
  SpectatorClient(emu::IDeterministicGame& game, SyncConfig cfg)
      : game_(game), cfg_(cfg) {}

  /// Next outbound message: JoinRequest until the snapshot lands, then
  /// cumulative acks whenever progress was made — and, once joined, a
  /// keepalive re-ack every kKeepaliveInterval even without progress, so a
  /// caught-up observer stays visibly alive to the host's idle reaper
  /// (SpectatorBroadcastHub::remove_idle).
  std::optional<Message> make_message(Time now);

  /// How often a joined-but-idle client re-acks. Must be comfortably
  /// shorter than any host-side idle timeout.
  static constexpr Dur kKeepaliveInterval = milliseconds(500);

  /// Feeds a received host message (Snapshot / InputFeed).
  void ingest(const Message& msg);

  /// Applies the next input to the replica if it is available. Returns
  /// true when a frame was advanced (callers wanting per-frame hooks —
  /// rendering, hash recording — loop on this).
  bool step_one();

  /// Applies every contiguously-available input to the replica. Returns
  /// the number of frames advanced. The caller decides pacing (a UI would
  /// rate-limit to CFPS; tests drain greedily).
  int step_available();

  [[nodiscard]] bool joined() const { return joined_; }
  /// Last frame applied to the replica (-1 before the snapshot loads).
  [[nodiscard]] FrameNo applied_frame() const { return applied_frame_; }
  [[nodiscard]] const SpectatorClientStats& stats() const { return stats_; }

  /// Snapshots replay state into the registry ("spectator.client.*").
  void export_metrics(MetricsRegistry& reg) const;

 private:
  emu::IDeterministicGame& game_;
  SyncConfig cfg_;

  bool joined_ = false;
  bool ack_dirty_ = false;
  Time next_join_ = 0;
  Time next_keepalive_ = 0;
  FrameNo applied_frame_ = -1;
  FrameNo pending_base_ = 0;
  std::deque<std::optional<InputWord>> pending_;  ///< inputs after applied_frame_
  SpectatorClientStats stats_;
};

}  // namespace rtct::core
