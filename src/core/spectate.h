// Spectator / late-join support — the journal-version extension the ICDCS
// paper defers in §6 ("how to support ... observers, how to accommodate
// late comers").
//
// Protocol: an observer sends JoinRequest (repeatedly, over the same
// lossy-datagram substrate as everything else). The host answers with a
// full machine snapshot taken at some frame F, then streams the merged
// input of every frame it executes after F as a go-back-N InputFeed
// window; the observer acks cumulatively. Because the game VM is
// deterministic, replaying the feed from the snapshot reproduces the
// session bit-exactly — the observer's replica is provably identical
// (state hashes), merely delayed by its own path latency.
//
// Both classes are sans-IO, in the same style as SyncPeer: the embedding
// driver moves Messages between them and supplies snapshots/time.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "src/common/time.h"
#include "src/common/types.h"
#include "src/core/config.h"
#include "src/core/wire.h"
#include "src/emu/game.h"

namespace rtct {
class MetricsRegistry;  // src/common/telemetry.h
}  // namespace rtct

namespace rtct::core {

/// Feed-protocol counters, host side.
struct SpectatorHostStats {
  std::uint64_t join_requests_rcvd = 0;
  std::uint64_t snapshots_sent = 0;
  std::uint64_t feed_messages_sent = 0;
  std::uint64_t inputs_fed = 0;  ///< input entries across all feed messages
  std::uint64_t acks_rcvd = 0;
};

/// Feed-protocol counters, observer side.
struct SpectatorClientStats {
  std::uint64_t join_requests_sent = 0;
  std::uint64_t snapshots_rcvd = 0;
  std::uint64_t feed_messages_rcvd = 0;
  std::uint64_t stale_inputs_rcvd = 0;  ///< entries at/below applied_frame
  std::uint64_t acks_sent = 0;
};

/// Runs beside a playing site (typically the master). Records every
/// executed frame's merged input; serves one or more observers.
/// For presentation simplicity this implementation tracks a single
/// observer endpoint (one host instance per observer — they are cheap).
class SpectatorHost {
 public:
  SpectatorHost(std::uint64_t content_id, SyncConfig cfg)
      : content_id_(content_id), cfg_(cfg) {}

  /// Driver calls this after every Transition with the frame just
  /// executed (0-based) and its merged input word.
  void on_frame(FrameNo frame, InputWord merged);

  /// Feeds a received observer message (JoinRequest / FeedAck).
  void ingest(const Message& msg);

  /// True when a join was accepted and the driver must supply the current
  /// machine snapshot via provide_snapshot().
  [[nodiscard]] bool wants_snapshot() const { return wants_snapshot_; }

  /// `frame` is the last executed frame (machine.frame() - 1); `state` is
  /// machine.save_state() taken at that point.
  void provide_snapshot(FrameNo frame, std::vector<std::uint8_t> state);

  /// Next outbound message for the observer: the snapshot until acked,
  /// then unacked feed windows. nullopt = nothing to send.
  std::optional<Message> make_message(Time now);

  [[nodiscard]] bool observer_joined() const { return snapshot_.has_value(); }
  [[nodiscard]] FrameNo acked_frame() const { return acked_frame_; }
  [[nodiscard]] std::size_t backlog_size() const { return backlog_.size(); }
  [[nodiscard]] const SpectatorHostStats& stats() const { return stats_; }

  /// Snapshots feed-serving state into the registry ("spectator.host.*").
  void export_metrics(MetricsRegistry& reg) const;

 private:
  std::uint64_t content_id_;
  SyncConfig cfg_;

  bool wants_snapshot_ = false;
  std::optional<SnapshotMsg> snapshot_;
  bool snapshot_acked_ = false;

  FrameNo backlog_base_ = 0;          ///< frame number of backlog_[0]
  std::deque<InputWord> backlog_;     ///< merged inputs after the snapshot
  /// Observer's cumulative ack. Starts below any valid ack value: a
  /// pre-game snapshot is taken at frame -1 and its ack must still count.
  FrameNo acked_frame_ = -2;
  FrameNo last_executed_ = -1;
  SpectatorHostStats stats_;
};

/// The observing side: owns (a reference to) its own replica machine.
class SpectatorClient {
 public:
  /// `game` must be a fresh machine of the same ROM as the host's.
  SpectatorClient(emu::IDeterministicGame& game, SyncConfig cfg)
      : game_(game), cfg_(cfg) {}

  /// Next outbound message: JoinRequest until the snapshot lands, then
  /// cumulative acks whenever progress was made.
  std::optional<Message> make_message(Time now);

  /// Feeds a received host message (Snapshot / InputFeed).
  void ingest(const Message& msg);

  /// Applies the next input to the replica if it is available. Returns
  /// true when a frame was advanced (callers wanting per-frame hooks —
  /// rendering, hash recording — loop on this).
  bool step_one();

  /// Applies every contiguously-available input to the replica. Returns
  /// the number of frames advanced. The caller decides pacing (a UI would
  /// rate-limit to CFPS; tests drain greedily).
  int step_available();

  [[nodiscard]] bool joined() const { return joined_; }
  /// Last frame applied to the replica (-1 before the snapshot loads).
  [[nodiscard]] FrameNo applied_frame() const { return applied_frame_; }
  [[nodiscard]] const SpectatorClientStats& stats() const { return stats_; }

  /// Snapshots replay state into the registry ("spectator.client.*").
  void export_metrics(MetricsRegistry& reg) const;

 private:
  emu::IDeterministicGame& game_;
  SyncConfig cfg_;

  bool joined_ = false;
  bool ack_dirty_ = false;
  Time next_join_ = 0;
  FrameNo applied_frame_ = -1;
  FrameNo pending_base_ = 0;
  std::deque<std::optional<InputWord>> pending_;  ///< inputs after applied_frame_
  SpectatorClientStats stats_;
};

}  // namespace rtct::core
