#include "src/core/sync_peer.h"

#include <algorithm>

namespace rtct::core {

SyncPeer::SyncPeer(SiteId my_site, SyncConfig cfg)
    : my_site_(my_site), rm_site_(1 - my_site), cfg_(cfg), ibuf_(2) {
  // Paper initialization: both LastRcvFrame and LastAckFrame start at
  // BufFrame-1, which makes the exit condition trivially true for the
  // first BufFrame frames ("empty inputs are returned", §3.1).
  last_rcv_frame_[0] = cfg_.buf_frames - 1;
  last_rcv_frame_[1] = cfg_.buf_frames - 1;
  last_ack_frame_ = cfg_.buf_frames - 1;
  // The initial LastRcvFrame is part of the protocol's shared knowledge:
  // acking it would be "new info" to no one.
  ack_sent_ = cfg_.buf_frames - 1;
}

void SyncPeer::submit_local(FrameNo frame, InputWord local_input) {
  const FrameNo lag_frame = frame + cfg_.buf_frames;  // line 1: LagF
  if (last_rcv_frame_[my_site_] < lag_frame) {        // lines 2-5
    ibuf_.put(my_site_, lag_frame, local_input);
    last_rcv_frame_[my_site_] = lag_frame;
  }
}

std::optional<SyncMsg> SyncPeer::make_message(Time now) {
  const FrameNo ack = last_rcv_frame_[rm_site_];     // sd[0]
  const FrameNo first = last_ack_frame_ + 1;         // sd[1]
  const FrameNo last = last_rcv_frame_[my_site_];    // sd[2]

  const bool have_inputs = last >= first;
  const bool have_new_ack = ack > ack_sent_;
  if (!have_inputs && !have_new_ack) return std::nullopt;  // "if new info exists"

  SyncMsg msg;
  msg.site = my_site_;
  msg.ack_frame = ack;
  msg.first_frame = first;
  if (have_inputs) {
    const auto count = std::min<FrameNo>(last - first + 1, cfg_.max_inputs_per_message);
    msg.inputs.reserve(static_cast<std::size_t>(count));
    for (FrameNo f = first; f < first + count; ++f) {
      msg.inputs.push_back(ibuf_.partial(my_site_, f));
      if (f <= highest_sent_) ++stats_.inputs_retransmitted;
    }
    highest_sent_ = std::max(highest_sent_, first + count - 1);
    stats_.inputs_sent += msg.inputs.size();
  }

  msg.send_time = now;
  if (last_peer_send_time_ >= 0) {
    msg.echo_time = last_peer_send_time_;
    msg.echo_hold = now - last_peer_recv_time_;
  }
  if (latest_own_.frame >= 0) {
    msg.hash_frame = latest_own_.frame;
    msg.state_hash = latest_own_.hash;
  }

  ack_sent_ = std::max(ack_sent_, ack);
  ++stats_.messages_made;
  return msg;
}

void SyncPeer::ingest(const SyncMsg& msg, Time recv_time) {
  if (msg.site != rm_site_) {
    ++stats_.stale_messages;
    return;
  }
  ++stats_.messages_ingested;

  // Lines 13-16: merge remote partial inputs, advance LastRcvFrame[rm].
  for (std::size_t i = 0; i < msg.inputs.size(); ++i) {
    const FrameNo f = msg.first_frame + static_cast<FrameNo>(i);
    if (f < 0) continue;
    if (!ibuf_.put(rm_site_, f, msg.inputs[i])) ++stats_.duplicate_inputs_rcvd;
  }
  if (!msg.inputs.empty() && msg.last_frame() > last_rcv_frame_[rm_site_]) {
    last_rcv_frame_[rm_site_] = msg.last_frame();
    remote_advance_time_ = recv_time;  // "MasterRcvTime" for Algorithm 4
    seen_remote_ = true;
  }

  // Lines 17-19: cumulative ack from the peer.
  if (msg.ack_frame > last_ack_frame_) {
    last_ack_frame_ = msg.ack_frame;
    ibuf_.trim_below(std::min(pointer_, last_ack_frame_ + 1));
  }

  // RTT sample from echoed timestamps.
  if (msg.echo_time >= 0) {
    const Dur sample = recv_time - msg.echo_time - msg.echo_hold;
    if (sample >= 0) {
      rtt_ = rtt_ == 0 ? sample : (rtt_ * 7 + sample) / 8;  // EWMA, alpha=1/8
      ++stats_.rtt_samples;
    }
  }
  if (msg.send_time > last_peer_send_time_) {
    last_peer_send_time_ = msg.send_time;
    last_peer_recv_time_ = recv_time;
  }

  if (msg.hash_frame >= 0) check_remote_hash(msg.hash_frame, msg.state_hash);
}

void SyncPeer::note_state_hash(FrameNo frame, std::uint64_t hash) {
  if (cfg_.hash_interval <= 0) return;
  if (frame % cfg_.hash_interval != 0) return;
  const auto slot = static_cast<std::size_t>((frame / cfg_.hash_interval) % kHashWindow);
  own_hashes_[slot] = {frame, hash};
  latest_own_ = {frame, hash};
  // A remote hash may have been waiting for us to reach this frame.
  if (pending_remote_.frame == frame && desync_frame_ < 0) {
    if (pending_remote_.hash != hash) desync_frame_ = frame;
    pending_remote_ = {};
  }
}

void SyncPeer::check_remote_hash(FrameNo frame, std::uint64_t hash) {
  if (cfg_.hash_interval <= 0 || desync_frame_ >= 0) return;
  const auto slot = static_cast<std::size_t>((frame / cfg_.hash_interval) % kHashWindow);
  if (own_hashes_[slot].frame == frame) {
    if (own_hashes_[slot].hash != hash) desync_frame_ = frame;
    return;
  }
  // We have not executed that frame yet (the peer runs ahead): park the
  // newest such observation and compare when we get there.
  if (frame > pending_remote_.frame) pending_remote_ = {frame, hash};
}

bool SyncPeer::ready() const {
  // Line 21: LastRcvFrame[RmSiteNo] >= IBufPointer (and the local side,
  // which submit_local keeps ahead by construction).
  return last_rcv_frame_[rm_site_] >= pointer_ && last_rcv_frame_[my_site_] >= pointer_;
}

InputWord SyncPeer::pop() {
  // Lines 22-23. For the first BufFrame frames no entry exists and the
  // merged input is the paper's "empty input" (all zeros).
  const InputWord out = ibuf_.merged(pointer_).value_or(0);
  ++pointer_;
  ibuf_.trim_below(std::min(pointer_, last_ack_frame_ + 1));
  return out;
}

SyncPeer::RemoteObs SyncPeer::remote_obs() const {
  RemoteObs obs;
  obs.valid = seen_remote_;
  obs.last_rcv_frame = last_rcv_frame_[rm_site_];
  obs.rcv_time = remote_advance_time_;
  obs.rtt = rtt_;
  return obs;
}

}  // namespace rtct::core
