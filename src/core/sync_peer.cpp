#include "src/core/sync_peer.h"

#include <algorithm>

#include "src/common/telemetry.h"

namespace rtct::core {

void export_sync_stats(MetricsRegistry& reg, const SyncPeerStats& s) {
  reg.counter("sync.messages_made").set(s.messages_made);
  reg.counter("sync.messages_ingested").set(s.messages_ingested);
  reg.counter("sync.inputs_sent").set(s.inputs_sent);
  reg.counter("sync.inputs_retransmitted").set(s.inputs_retransmitted);
  reg.counter("sync.redundant_inputs_sent").set(s.redundant_inputs_sent);
  reg.counter("sync.duplicate_inputs_rcvd").set(s.duplicate_inputs_rcvd);
  reg.counter("sync.stale_messages").set(s.stale_messages);
  reg.counter("sync.rtt_samples").set(s.rtt_samples);
  reg.counter("sync.rto_fires").set(s.rto_fires);
}

SyncPeer::SyncPeer(SiteId my_site, SyncConfig cfg)
    : my_site_(my_site), rm_site_(1 - my_site), cfg_(cfg), ibuf_(2),
      rtt_(cfg.min_rto, cfg.max_rto) {
  // Paper initialization: both LastRcvFrame and LastAckFrame start at
  // BufFrame-1, which makes the exit condition trivially true for the
  // first BufFrame frames ("empty inputs are returned", §3.1).
  last_rcv_frame_[0] = cfg_.buf_frames - 1;
  last_rcv_frame_[1] = cfg_.buf_frames - 1;
  last_ack_frame_ = cfg_.buf_frames - 1;
  // The initial LastRcvFrame is part of the protocol's shared knowledge:
  // acking it would be "new info" to no one.
  ack_sent_ = cfg_.buf_frames - 1;
}

bool SyncPeer::set_buf_frames(int buf_frames) {
  // Legal only while the protocol is still in its constructed state: no
  // local input buffered or sent, nothing delivered, nothing received.
  // (The handshake completes before frame 0, so drivers hit this window.)
  if (pointer_ != 0 || highest_sent_ >= 0 || stats_.messages_made != 0 ||
      last_rcv_frame_[my_site_] != cfg_.buf_frames - 1 ||
      last_rcv_frame_[rm_site_] != cfg_.buf_frames - 1) {
    return false;
  }
  cfg_.buf_frames = buf_frames;
  last_rcv_frame_[0] = buf_frames - 1;
  last_rcv_frame_[1] = buf_frames - 1;
  last_ack_frame_ = buf_frames - 1;
  ack_sent_ = buf_frames - 1;
  return true;
}

Dur SyncPeer::current_rto() const {
  const Dur base = rtt_.has_sample() ? rtt_.rto() : cfg_.initial_rto;
  // The backed-off timeout honours the same ceiling as the estimator
  // (RFC 6298 §5.5): backoff must not grow a stall past max_rto.
  return std::min(base * rto_backoff_, cfg_.max_rto);
}

void SyncPeer::submit_local(FrameNo frame, InputWord local_input) {
  const FrameNo lag_frame = frame + cfg_.buf_frames;  // line 1: LagF
  if (last_rcv_frame_[my_site_] < lag_frame) {        // lines 2-5
    ibuf_.put(my_site_, lag_frame, local_input);
    last_rcv_frame_[my_site_] = lag_frame;
  }
}

std::optional<SyncMsg> SyncPeer::make_message(Time now) {
  const FrameNo ack = last_rcv_frame_[rm_site_];           // sd[0]
  const FrameNo first_unacked = last_ack_frame_ + 1;
  const FrameNo last = last_rcv_frame_[my_site_];          // sd[2]

  const bool have_unacked = last >= first_unacked;
  const bool have_new_ack = ack > ack_sent_;

  // Paper policy (default): the whole unacked window goes out every flush.
  FrameNo first = first_unacked;  // sd[1]
  bool have_inputs = have_unacked;
  bool rto_resend = false;

  if (cfg_.adaptive_resend) {
    const FrameNo pre_watermark = highest_sent_;
    if (have_unacked && rto_deadline_ >= 0 && now >= rto_deadline_) {
      rto_resend = true;
      // Retransmission timer fired: fall back to a full go-back-N resend
      // and back the timer off until the peer shows ack progress.
      ++stats_.rto_fires;
      rto_backoff_ = std::min(rto_backoff_ * 2, kMaxRtoBackoff);
      rto_deadline_ = now + current_rto();
    } else if (have_unacked) {
      // Steady state: new inputs plus a redundancy tail of every unacked
      // input first sent within the last K flushes. Measuring the tail in
      // flushes (not entries) matters: after a stall the frame loop
      // catches up and a single flush carries a whole burst of inputs —
      // if that message is lost, a newest-K-entries tail could never
      // refill the gap and the session would sit out a full RTO (and the
      // resulting catch-up burst re-exposes the same window, a cascade
      // the loss sweeps showed clearly). Re-carrying the burst whole for
      // K flushes gives one-flush repair like the paper's go-back-N, at a
      // cost bounded by the input production rate rather than by the
      // RTT-scaled window.
      const FrameNo first_new = std::max(first_unacked, highest_sent_ + 1);
      const FrameNo tail_start =
          sent_watermarks_.empty() ? first_new : sent_watermarks_.front() + 1;
      first = std::max(first_unacked, std::min(first_new, tail_start));
      have_inputs = first <= last;
    }
    // Slide the per-flush watermark history (protection = K re-sends).
    sent_watermarks_.push_back(pre_watermark);
    while (sent_watermarks_.size() >
           static_cast<std::size_t>(std::max(0, cfg_.redundant_inputs))) {
      sent_watermarks_.pop_front();
    }
  }

  if (!have_inputs && !have_new_ack) return std::nullopt;  // "if new info exists"

  SyncMsg msg;
  msg.site = my_site_;
  msg.ack_frame = ack;
  msg.first_frame = first;
  if (have_inputs) {
    const auto count = std::min<FrameNo>(last - first + 1, cfg_.max_inputs_per_message);
    msg.inputs.reserve(static_cast<std::size_t>(count));
    for (FrameNo f = first; f < first + count; ++f) {
      msg.inputs.push_back(ibuf_.partial(my_site_, f));
      if (f <= highest_sent_) {
        ++stats_.inputs_retransmitted;
        if (cfg_.adaptive_resend && !rto_resend) ++stats_.redundant_inputs_sent;
      }
    }
    highest_sent_ = std::max(highest_sent_, first + count - 1);
    stats_.inputs_sent += msg.inputs.size();
    // Arm the retransmission timer the moment unacked data is outstanding.
    if (cfg_.adaptive_resend && rto_deadline_ < 0) rto_deadline_ = now + current_rto();
  }

  msg.send_time = now;
  if (last_peer_send_time_ >= 0) {
    msg.echo_time = last_peer_send_time_;
    msg.echo_hold = now - last_peer_recv_time_;
  }
  if (latest_own_.frame >= 0) {
    msg.hash_frame = latest_own_.frame;
    msg.state_hash = latest_own_.hash;
  }

  ack_sent_ = std::max(ack_sent_, ack);
  ++stats_.messages_made;
  return msg;
}

void SyncPeer::ingest(const SyncMsg& msg, Time recv_time) {
  if (msg.site != rm_site_) {
    ++stats_.stale_messages;
    return;
  }
  ++stats_.messages_ingested;

  // Lines 13-16: merge remote partial inputs, advance LastRcvFrame[rm].
  for (std::size_t i = 0; i < msg.inputs.size(); ++i) {
    const FrameNo f = msg.first_frame + static_cast<FrameNo>(i);
    if (f < 0) continue;
    if (!ibuf_.put(rm_site_, f, msg.inputs[i])) ++stats_.duplicate_inputs_rcvd;
  }
  // LastRcvFrame is a *contiguity* watermark, so it must only advance over
  // frames actually present. Under the paper policy every message starts at
  // the peer's first unacked frame, so msg.last_frame() is always safe; in
  // adaptive mode a reordered new-inputs message can arrive with a gap
  // behind it, and blindly adopting last_frame() would declare missing
  // inputs present (and desync both replicas on an all-zero merge). Walking
  // the buffer also rolls the watermark forward over any out-of-order
  // future inputs a gap-filling retransmission just connected.
  if (!msg.inputs.empty()) {
    FrameNo advanced = last_rcv_frame_[rm_site_];
    while (ibuf_.has(rm_site_, advanced + 1)) ++advanced;
    if (advanced > last_rcv_frame_[rm_site_]) {
      last_rcv_frame_[rm_site_] = advanced;
      remote_advance_time_ = recv_time;  // "MasterRcvTime" for Algorithm 4
      seen_remote_ = true;
    }
  }

  // Lines 17-19: cumulative ack from the peer.
  if (msg.ack_frame > last_ack_frame_) {
    last_ack_frame_ = msg.ack_frame;
    ibuf_.trim_below(std::min(pointer_, last_ack_frame_ + 1));
    // Ack progress: the path is moving, so reset the retransmit backoff
    // and re-arm (or clear) the timer for whatever is still outstanding.
    if (cfg_.adaptive_resend) {
      rto_backoff_ = 1;
      rto_deadline_ = last_rcv_frame_[my_site_] > last_ack_frame_
                          ? recv_time + current_rto()
                          : -1;
    }
  }

  // RTT sample from echoed timestamps. A 0 ns sample (loopback) is a real
  // measurement: the estimator keeps has-sample state explicitly instead
  // of the old `rtt == 0` sentinel that re-seeded forever on fast links.
  if (msg.echo_time >= 0) {
    const Dur sample = recv_time - msg.echo_time - msg.echo_hold;
    if (sample >= 0) {
      rtt_.sample(sample);
      stats_.rtt_samples = rtt_.sample_count();
    }
  }
  if (msg.send_time > last_peer_send_time_) {
    last_peer_send_time_ = msg.send_time;
    last_peer_recv_time_ = recv_time;
  }

  if (msg.hash_frame >= 0) check_remote_hash(msg.hash_frame, msg.state_hash);
}

void SyncPeer::note_state_hash(FrameNo frame, std::uint64_t hash) {
  if (cfg_.hash_interval <= 0) return;
  if (frame % cfg_.hash_interval != 0) return;
  const auto slot = static_cast<std::size_t>((frame / cfg_.hash_interval) % kHashWindow);
  own_hashes_[slot] = {frame, hash};
  latest_own_ = {frame, hash};
  // A remote hash may have been waiting for us to reach this frame.
  if (pending_remote_.frame == frame && desync_frame_ < 0) {
    if (pending_remote_.hash != hash) desync_frame_ = frame;
    pending_remote_ = {};
  }
}

void SyncPeer::check_remote_hash(FrameNo frame, std::uint64_t hash) {
  if (cfg_.hash_interval <= 0 || desync_frame_ >= 0) return;
  const auto slot = static_cast<std::size_t>((frame / cfg_.hash_interval) % kHashWindow);
  if (own_hashes_[slot].frame == frame) {
    if (own_hashes_[slot].hash != hash) desync_frame_ = frame;
    return;
  }
  // We have not executed that frame yet (the peer runs ahead): park the
  // newest such observation and compare when we get there.
  if (frame > pending_remote_.frame) pending_remote_ = {frame, hash};
}

bool SyncPeer::ready() const {
  // Line 21: LastRcvFrame[RmSiteNo] >= IBufPointer (and the local side,
  // which submit_local keeps ahead by construction).
  return last_rcv_frame_[rm_site_] >= pointer_ && last_rcv_frame_[my_site_] >= pointer_;
}

InputWord SyncPeer::pop() {
  // Lines 22-23. For the first BufFrame frames no entry exists and the
  // merged input is the paper's "empty input" (all zeros).
  const InputWord out = ibuf_.merged(pointer_).value_or(0);
  ++pointer_;
  ibuf_.trim_below(std::min(pointer_, last_ack_frame_ + 1));
  return out;
}

SyncPeer::RemoteObs SyncPeer::remote_obs() const {
  RemoteObs obs;
  obs.valid = seen_remote_;
  obs.last_rcv_frame = last_rcv_frame_[rm_site_];
  obs.rcv_time = remote_advance_time_;
  obs.rtt = rtt_.srtt();
  obs.rtt_valid = rtt_.has_sample();
  return obs;
}

void SyncPeer::export_metrics(MetricsRegistry& reg) const {
  export_sync_stats(reg, stats_);
  reg.gauge("sync.pointer_frame").set(static_cast<double>(pointer_));
  reg.gauge("sync.last_rcv_frame").set(static_cast<double>(last_rcv_frame_[rm_site_]));
  reg.gauge("sync.last_ack_frame").set(static_cast<double>(last_ack_frame_));
  reg.gauge("sync.rtt_ms").set(rtt_.has_sample() ? to_ms(rtt_.srtt()) : 0.0);
  reg.gauge("sync.rto_ms").set(to_ms(current_rto()));
  reg.gauge("sync.desync_frame").set(static_cast<double>(desync_frame_));
}

}  // namespace rtct::core
