#include "src/core/mesh.h"

#include <algorithm>
#include <string>

#include "src/common/telemetry.h"

namespace rtct::core {

MeshSyncPeer::MeshSyncPeer(SiteId my_site, int num_sites, SyncConfig cfg)
    : my_site_(my_site),
      num_sites_(num_sites),
      cfg_(cfg),
      ibuf_(num_sites),
      last_rcv_(static_cast<std::size_t>(num_sites), cfg.buf_frames - 1),
      peers_(static_cast<std::size_t>(num_sites)) {
  for (auto& p : peers_) {
    p.last_ack = cfg.buf_frames - 1;
    p.ack_sent = cfg.buf_frames - 1;
  }
}

void MeshSyncPeer::submit_local(FrameNo frame, InputWord partial) {
  const FrameNo lag_frame = frame + cfg_.buf_frames;
  if (last_rcv_[my_site_] < lag_frame) {
    ibuf_.put(my_site_, lag_frame, partial);
    last_rcv_[my_site_] = lag_frame;
  }
}

FrameNo MeshSyncPeer::min_acked() const {
  FrameNo lo = last_rcv_[my_site_];
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (s == my_site_) continue;
    lo = std::min(lo, peers_[s].last_ack);
  }
  return lo;
}

std::optional<SyncMsg> MeshSyncPeer::make_message(SiteId peer, Time now) {
  if (peer < 0 || peer >= num_sites_ || peer == my_site_) return std::nullopt;
  PeerState& ps = peers_[peer];

  const FrameNo ack = last_rcv_[peer];
  const FrameNo first = ps.last_ack + 1;
  const FrameNo last = last_rcv_[my_site_];

  const bool have_inputs = last >= first;
  const bool have_new_ack = ack > ps.ack_sent;
  if (!have_inputs && !have_new_ack) return std::nullopt;

  SyncMsg msg;
  msg.site = my_site_;
  msg.ack_frame = ack;
  msg.first_frame = first;
  if (have_inputs) {
    const auto count = std::min<FrameNo>(last - first + 1, cfg_.max_inputs_per_message);
    msg.inputs.reserve(static_cast<std::size_t>(count));
    for (FrameNo f = first; f < first + count; ++f) {
      msg.inputs.push_back(ibuf_.partial(my_site_, f));
      if (f <= ps.highest_sent) ++stats_.inputs_retransmitted;
    }
    ps.highest_sent = std::max(ps.highest_sent, first + count - 1);
    stats_.inputs_sent += msg.inputs.size();
  }

  msg.send_time = now;
  if (ps.last_send_time >= 0) {
    msg.echo_time = ps.last_send_time;
    msg.echo_hold = now - ps.last_recv_time;
  }
  if (latest_own_.frame >= 0) {
    msg.hash_frame = latest_own_.frame;
    msg.state_hash = latest_own_.hash;
  }

  ps.ack_sent = std::max(ps.ack_sent, ack);
  ++stats_.messages_made;
  return msg;
}

void MeshSyncPeer::ingest(const SyncMsg& msg, Time recv_time) {
  const SiteId from = msg.site;
  if (from < 0 || from >= num_sites_ || from == my_site_) {
    ++stats_.stale_messages;
    return;
  }
  ++stats_.messages_ingested;
  PeerState& ps = peers_[from];

  for (std::size_t i = 0; i < msg.inputs.size(); ++i) {
    const FrameNo f = msg.first_frame + static_cast<FrameNo>(i);
    if (f < 0) continue;
    if (!ibuf_.put(from, f, msg.inputs[i])) ++stats_.duplicate_inputs_rcvd;
  }
  if (!msg.inputs.empty()) {
    // LastRcvFrame is a contiguity watermark: advance only over frames
    // actually present in the buffer. A reordered message whose window
    // starts above a loss-created gap must not drag the watermark past
    // frames we never received — ready() would then deliver incomplete
    // merged inputs and silently desync the replicas.
    FrameNo advanced = last_rcv_[from];
    while (ibuf_.has(from, advanced + 1)) ++advanced;
    if (advanced > last_rcv_[from]) {
      last_rcv_[from] = advanced;
      if (from == kMasterSite) {
        master_advance_time_ = recv_time;
        seen_master_ = true;
      }
    }
  }

  if (msg.ack_frame > ps.last_ack) {
    ps.last_ack = msg.ack_frame;
    ibuf_.trim_below(std::min(pointer_, min_acked() + 1));
  }

  if (msg.echo_time >= 0) {
    const Dur sample = recv_time - msg.echo_time - msg.echo_hold;
    if (sample >= 0) {
      ps.rtt.sample(sample);
      ++stats_.rtt_samples;
    }
  }
  if (msg.send_time > ps.last_send_time) {
    ps.last_send_time = msg.send_time;
    ps.last_recv_time = recv_time;
  }

  if (msg.hash_frame >= 0 && cfg_.hash_interval > 0 && desync_frame_ < 0) {
    const auto slot =
        static_cast<std::size_t>((msg.hash_frame / cfg_.hash_interval) % kHashWindow);
    if (own_hashes_[slot].frame == msg.hash_frame &&
        own_hashes_[slot].hash != msg.state_hash) {
      desync_frame_ = msg.hash_frame;
    }
  }
}

bool MeshSyncPeer::ready() const {
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (last_rcv_[s] < pointer_) return false;
  }
  return true;
}

InputWord MeshSyncPeer::pop() {
  const InputWord out = ibuf_.merged(pointer_).value_or(0);
  ++pointer_;
  ibuf_.trim_below(std::min(pointer_, min_acked() + 1));
  return out;
}

SiteId MeshSyncPeer::straggler() const {
  SiteId worst = kNoSite;
  FrameNo lo = last_rcv_[my_site_];
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (s == my_site_) continue;
    if (last_rcv_[s] < lo) {
      lo = last_rcv_[s];
      worst = s;
    }
  }
  return worst;
}

void MeshSyncPeer::note_state_hash(FrameNo frame, std::uint64_t hash) {
  if (cfg_.hash_interval <= 0 || frame % cfg_.hash_interval != 0) return;
  const auto slot = static_cast<std::size_t>((frame / cfg_.hash_interval) % kHashWindow);
  own_hashes_[slot] = {frame, hash};
  latest_own_ = {frame, hash};
}

SyncPeer::RemoteObs MeshSyncPeer::master_obs() const {
  SyncPeer::RemoteObs obs;
  obs.valid = seen_master_ && my_site_ != kMasterSite;
  obs.last_rcv_frame = last_rcv_[kMasterSite];
  obs.rcv_time = master_advance_time_;
  obs.rtt = my_site_ == kMasterSite ? 0 : peers_[kMasterSite].rtt.srtt();
  obs.rtt_valid = my_site_ != kMasterSite && peers_[kMasterSite].rtt.has_sample();
  return obs;
}

void MeshSyncPeer::export_metrics(MetricsRegistry& reg) const {
  export_sync_stats(reg, stats_);
  reg.gauge("sync.pointer_frame").set(static_cast<double>(pointer_));
  reg.gauge("sync.desync_frame").set(static_cast<double>(desync_frame_));
  reg.gauge("mesh.num_sites").set(num_sites_);
  reg.gauge("mesh.straggler_site").set(static_cast<double>(straggler()));
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (s == my_site_) continue;
    const std::string prefix = "mesh.peer." + std::to_string(s) + ".";
    reg.gauge(prefix + "last_rcv_frame").set(static_cast<double>(last_rcv_[s]));
    reg.gauge(prefix + "last_ack_frame").set(static_cast<double>(peers_[s].last_ack));
    const auto& rtt = peers_[s].rtt;
    reg.gauge(prefix + "rtt_ms").set(rtt.has_sample() ? to_ms(rtt.srtt()) : 0.0);
  }
}

}  // namespace rtct::core
