#include "src/core/bisect.h"

#include <algorithm>
#include <cstdio>

#include "src/common/hash.h"
#include "src/common/json.h"

namespace rtct::core {

namespace {

/// Page unit for the raw-blob fallback (matches the emulator's dirty-page
/// granularity, emu::kPageSize).
constexpr std::size_t kPageBytes = 256;

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Restores a keyframe and verifies it reproduces its recorded digest
/// (under the file's digest version — the version it was recorded with).
bool restore_keyframe(const Replay& r, const ReplayKeyframe& kf,
                      emu::IDeterministicGame& game) {
  if (!game.load_state(kf.state)) return false;
  return game.state_digest(r.digest_version()) == kf.digest;
}

/// Diffs two same-game states page by page. Prefers the games' native
/// page digests (exact 256 B RAM pages with real addresses); falls back to
/// chunking the raw save_state blobs when the game has none.
std::vector<PageDivergence> diff_pages(const emu::IDeterministicGame& ga,
                                       const emu::IDeterministicGame& gb) {
  std::vector<PageDivergence> out;
  const auto da = ga.page_digests();
  const auto db = gb.page_digests();
  if (!da.empty() && da.size() == db.size()) {
    const std::uint32_t base = ga.page_digest_base();
    for (std::size_t i = 0; i < da.size(); ++i) {
      if (da[i] != db[i]) {
        out.push_back({static_cast<int>(i),
                       base + static_cast<std::uint32_t>(i * kPageBytes), da[i], db[i]});
      }
    }
    return out;
  }
  const auto ba = ga.save_state();
  const auto bb = gb.save_state();
  const std::size_t pages = (std::max(ba.size(), bb.size()) + kPageBytes - 1) / kPageBytes;
  for (std::size_t i = 0; i < pages; ++i) {
    const auto chunk = [i](const std::vector<std::uint8_t>& blob) -> std::uint64_t {
      const std::size_t off = i * kPageBytes;
      if (off >= blob.size()) return 0;
      return fnv1a64({blob.data() + off, std::min(kPageBytes, blob.size() - off)});
    };
    const std::uint64_t ha = chunk(ba);
    const std::uint64_t hb = chunk(bb);
    if (ha != hb) {
      out.push_back({static_cast<int>(i), static_cast<std::uint32_t>(i * kPageBytes), ha, hb});
    }
  }
  return out;
}

struct KeyframePair {
  const ReplayKeyframe* a;
  const ReplayKeyframe* b;
};

/// Keyframes both replays embedded at the same frame, below `limit`.
std::vector<KeyframePair> common_keyframes(const Replay& a, const Replay& b, FrameNo limit) {
  std::vector<KeyframePair> out;
  auto ia = a.keyframes().begin();
  auto ib = b.keyframes().begin();
  while (ia != a.keyframes().end() && ib != b.keyframes().end()) {
    if (ia->frame >= limit || ib->frame >= limit) break;
    if (ia->frame < ib->frame) {
      ++ia;
    } else if (ib->frame < ia->frame) {
      ++ib;
    } else {
      out.push_back({&*ia, &*ib});
      ++ia;
      ++ib;
    }
  }
  return out;
}

BisectReport error_report(BisectReport r, std::string why) {
  r.verdict = "error";
  r.error = std::move(why);
  return r;
}

}  // namespace

BisectReport bisect_replays(const Replay& a, const Replay& b, const GameFactory& factory) {
  BisectReport r;
  r.frames_a = a.frames();
  r.frames_b = b.frames();
  if (a.content_id() != b.content_id()) {
    return error_report(std::move(r), "content ids differ");
  }
  r.content_id = a.content_id();
  if (a.digest_version() != b.digest_version()) {
    return error_report(std::move(r), "recorded digest versions differ");
  }
  r.digest_version = a.digest_version();
  const FrameNo common = std::min(a.frames(), b.frames());
  r.common_frames = common;

  for (FrameNo f = 0; f < common; ++f) {
    if (a.inputs()[static_cast<std::size_t>(f)] != b.inputs()[static_cast<std::size_t>(f)]) {
      r.first_input_divergence = f;
      break;
    }
  }

  // Scan the embedded keyframe digests for the first divergent pair. The
  // digests are already materialized, so this is one u64 compare per
  // keyframe — exact even when a forged snapshot makes divergence
  // non-monotone (a later keyframe can agree again). Only the
  // re-simulation below is expensive, and it stays bracketed to the one
  // gap in front of the first divergent keyframe.
  const auto kfs = common_keyframes(a, b, common);
  const auto div_it = std::find_if(
      kfs.begin(), kfs.end(),
      [](const KeyframePair& p) { return p.a->digest != p.b->digest; });
  const bool kf_diverged = div_it != kfs.end();
  const FrameNo kf_div_frame = kf_diverged ? div_it->a->frame : -1;

  if (!kf_diverged && r.first_input_divergence < 0) {
    r.verdict = "identical";
    return r;
  }

  auto game_a = factory != nullptr ? factory() : nullptr;
  auto game_b = factory != nullptr ? factory() : nullptr;
  if (game_a == nullptr || game_b == nullptr ||
      game_a->content_id() != a.content_id()) {
    return error_report(std::move(r), "no game replica for this content id");
  }

  // The restore point: the last keyframe pair that still agrees and lies
  // strictly before the earliest divergence evidence.
  const FrameNo evidence = r.first_input_divergence >= 0 && (!kf_diverged || r.first_input_divergence <= kf_div_frame)
                               ? r.first_input_divergence
                               : kf_div_frame;
  const KeyframePair* start = nullptr;
  for (auto it = kfs.begin(); it != div_it; ++it) {
    if (it->a->frame < evidence) start = &*it;
  }
  const FrameNo start_frame = start != nullptr ? start->a->frame : -1;
  r.keyframe_used = start_frame;

  if (start != nullptr) {
    if (!restore_keyframe(a, *start->a, *game_a) || !restore_keyframe(b, *start->b, *game_b)) {
      return error_report(std::move(r), "agreeing keyframe failed to restore");
    }
  } else {
    game_a->reset();
    game_b->reset();
  }

  if (r.first_input_divergence >= 0 && (!kf_diverged || r.first_input_divergence <= kf_div_frame)) {
    // The input logs themselves split: single-step both recordings with
    // their own inputs to the first frame whose states differ (exact —
    // per-frame evidence exists on both sides here).
    for (FrameNo f = start_frame + 1; f < common; ++f) {
      game_a->step_frame(a.inputs()[static_cast<std::size_t>(f)]);
      game_b->step_frame(b.inputs()[static_cast<std::size_t>(f)]);
      ++r.resimulated_frames;
      const std::uint64_t da = game_a->state_digest(r.digest_version);
      const std::uint64_t db = game_b->state_digest(r.digest_version);
      if (da != db) {
        r.verdict = "diverged";
        r.first_divergent_frame = f;
        r.digest_a = da;
        r.digest_b = db;
        r.diverged_side = "input";
        r.pages = diff_pages(*game_a, *game_b);
        return r;
      }
    }
    // The differing input bit never reached the state (e.g. an unused
    // button): logically identical over the common prefix.
    r.verdict = "identical";
    return r;
  }

  // Inputs agree; the embedded keyframes split at kf_div_frame. Re-simulate
  // the deterministic line from the restore point and judge which
  // recording left it. (By determinism the divergence cannot predate the
  // last agreeing keyframe, so this names the frame to within the
  // keyframe bracket — and exactly, when the injected fault lives in the
  // keyframe itself, the forged-snapshot case.)
  for (FrameNo f = start_frame + 1; f <= kf_div_frame; ++f) {
    game_a->step_frame(a.inputs()[static_cast<std::size_t>(f)]);
    ++r.resimulated_frames;
  }
  const std::uint64_t truth = game_a->state_digest(r.digest_version);
  r.verdict = "diverged";
  r.first_divergent_frame = kf_div_frame;
  r.digest_a = div_it->a->digest;
  r.digest_b = div_it->b->digest;
  const bool a_on_line = div_it->a->digest == truth;
  const bool b_on_line = div_it->b->digest == truth;
  r.diverged_side = !a_on_line && !b_on_line ? "both" : a_on_line ? "b" : "a";

  // Name the pages: load both embedded states at the divergent keyframe.
  // load_state alone (no digest verify): one side is corrupt by premise.
  if (game_a->load_state(div_it->a->state) && game_b->load_state(div_it->b->state)) {
    r.pages = diff_pages(*game_a, *game_b);
  }
  return r;
}

BisectReport bisect_replay_vs_timeline(const Replay& a, const FrameTimeline& timeline,
                                       int digest_version, const GameFactory& factory) {
  BisectReport r;
  r.frames_a = a.frames();
  r.frames_b = static_cast<FrameNo>(timeline.size());
  r.content_id = a.content_id();
  if (digest_version == 0) digest_version = a.digest_version();
  r.digest_version = digest_version;
  const FrameNo common = std::min(r.frames_a, r.frames_b);
  r.common_frames = common;

  const auto& recs = timeline.records();
  const auto hash_at = [&recs](FrameNo f) {
    return recs[static_cast<std::size_t>(f)].state_hash;
  };

  auto game = factory != nullptr ? factory() : nullptr;
  if (game == nullptr || game->content_id() != a.content_id()) {
    return error_report(std::move(r), "no game replica for this content id");
  }

  // Embedded digests are comparable against the timeline's hashes only
  // when the versions agree; otherwise keyframes can still restore (they
  // verify under the file's own version) but carry no agree/disagree
  // evidence of their own.
  const bool comparable = digest_version == a.digest_version();
  std::vector<const ReplayKeyframe*> kfs;
  if (comparable) {
    for (const ReplayKeyframe& kf : a.keyframes()) {
      if (kf.frame < common) kfs.push_back(&kf);
    }
  }

  // Re-simulates frames (start->frame, bound) against the timeline after
  // restoring `start` (genesis when null). Returns the first frame whose
  // digest leaves the archived line, or -1.
  bool restore_failed = false;
  const auto scan_gap = [&](const ReplayKeyframe* start, FrameNo bound) -> FrameNo {
    FrameNo at = -1;
    if (start != nullptr) {
      if (!restore_keyframe(a, *start, *game)) {
        restore_failed = true;
        return -1;
      }
      at = start->frame;
    } else {
      game->reset();
    }
    r.keyframe_used = at;
    for (FrameNo f = at + 1; f < bound; ++f) {
      game->step_frame(a.inputs()[static_cast<std::size_t>(f)]);
      ++r.resimulated_frames;
      const std::uint64_t da = game->state_digest(digest_version);
      if (da != hash_at(f)) {
        r.digest_a = da;
        r.digest_b = hash_at(f);
        return f;
      }
    }
    return -1;
  };

  const auto div_it = std::find_if(kfs.begin(), kfs.end(), [&](const ReplayKeyframe* kf) {
    return kf->digest != hash_at(kf->frame);
  });

  FrameNo found = -1;
  if (div_it != kfs.end()) {
    // Fast path: a keyframe's embedded digest disagrees with the archive,
    // bracketing the divergence to the one gap in front of it — one
    // interval of re-simulation names the exact frame.
    const ReplayKeyframe* start = div_it == kfs.begin() ? nullptr : *(div_it - 1);
    found = scan_gap(start, (*div_it)->frame + 1);
  } else {
    // Every keyframe agrees (or none are comparable): a monotone desync
    // is excluded, but per-frame archive evidence can still disagree
    // inside a gap (a tampered or bit-rotted hash). Audit every gap,
    // restoring each verified keyframe so stepping resumes past its
    // already-checked frame.
    const ReplayKeyframe* start = nullptr;
    for (std::size_t i = 0; i <= kfs.size() && found < 0 && !restore_failed; ++i) {
      const FrameNo bound = i < kfs.size() ? kfs[i]->frame : common;
      found = scan_gap(start, bound);
      if (i < kfs.size()) start = kfs[i];
    }
  }
  if (restore_failed) {
    return error_report(std::move(r), "keyframe failed to restore");
  }
  if (found >= 0) {
    // The re-simulated replay IS the deterministic line here; the
    // timeline ("b") is the side that left it. A timeline carries no
    // state, so no pages can be named.
    r.verdict = "diverged";
    r.first_divergent_frame = found;
    r.diverged_side = "b";
    return r;
  }
  if (div_it != kfs.end()) {
    // The re-simulated line matched every archived hash up to and
    // including the disagreeing keyframe's frame: the replay's embedded
    // snapshot itself left the line ("a" is the corrupt side).
    r.verdict = "diverged";
    r.first_divergent_frame = (*div_it)->frame;
    r.digest_a = (*div_it)->digest;
    r.digest_b = hash_at((*div_it)->frame);
    r.diverged_side = "a";
    return r;
  }
  r.verdict = "identical";
  return r;
}

std::string bisect_report_to_json(const BisectReport& r) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("rtct.bisect.v1");
  w.key("verdict").value(r.verdict);
  w.key("error").value(r.error);
  w.key("content_id").value(hex64(r.content_id));
  w.key("digest_version").value(r.digest_version);
  w.key("frames_a").value(static_cast<std::int64_t>(r.frames_a));
  w.key("frames_b").value(static_cast<std::int64_t>(r.frames_b));
  w.key("common_frames").value(static_cast<std::int64_t>(r.common_frames));
  w.key("first_input_divergence").value(static_cast<std::int64_t>(r.first_input_divergence));
  w.key("first_divergent_frame").value(static_cast<std::int64_t>(r.first_divergent_frame));
  w.key("digest_a").value(hex64(r.digest_a));
  w.key("digest_b").value(hex64(r.digest_b));
  w.key("diverged_side").value(r.diverged_side);
  w.key("keyframe_used").value(static_cast<std::int64_t>(r.keyframe_used));
  w.key("resimulated_frames").value(static_cast<std::int64_t>(r.resimulated_frames));
  w.key("pages").begin_array();
  for (const PageDivergence& p : r.pages) {
    w.begin_object();
    w.key("page").value(p.page);
    w.key("addr").value(static_cast<std::int64_t>(p.addr));
    w.key("digest_a").value(hex64(p.digest_a));
    w.key("digest_b").value(hex64(p.digest_b));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace rtct::core
