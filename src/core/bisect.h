// Divergence bisection over RTCTRPL2 replays — the offline half of desync
// debugging ("lock-step simulation is child's play": input-log determinism
// plus state hashing makes divergences mechanically findable).
//
// Two replicas of a deterministic session can only disagree if (a) their
// merged input logs differ, or (b) one of them left the deterministic line
// (a real desync: memory corruption, nondeterministic emulation, a forged
// snapshot). The bisector binary-searches the embedded keyframe digests to
// bracket the divergence, then single-steps a re-simulation to the first
// divergent frame, and finally uses the emulator's 256 B page digests to
// name the exact page(s) on which the states differ. The report is the
// deterministic `rtct.bisect.v1` JSON document: same inputs, byte-identical
// output, so CI can diff it verbatim.
//
// The bisector is consistency-mode agnostic: lockstep recordings carry
// every frame; rollback recordings carry only *confirmed* frames (the
// recorders never emit speculative state), so a rollback replay bisects
// over confirmed frames by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/core/metrics.h"
#include "src/core/replay.h"
#include "src/emu/game.h"

namespace rtct::core {

/// Makes a fresh replica of the recorded game (reset to genesis).
using GameFactory = std::function<std::unique_ptr<emu::IDeterministicGame>()>;

/// One page on which the two states differ at the divergent frame.
struct PageDivergence {
  int page = 0;               ///< page index (256 B units)
  std::uint32_t addr = 0;     ///< address of the page's first byte
  std::uint64_t digest_a = 0;
  std::uint64_t digest_b = 0;

  bool operator==(const PageDivergence&) const = default;
};

struct BisectReport {
  /// "identical" (over the common prefix), "diverged", or "error".
  std::string verdict = "error";
  std::string error;  ///< populated iff verdict == "error"

  std::uint64_t content_id = 0;
  int digest_version = 0;
  FrameNo frames_a = 0;
  FrameNo frames_b = 0;
  FrameNo common_frames = 0;

  /// First frame whose *merged inputs* differ (-1 = input logs agree over
  /// the common prefix). Input divergence means the sync layer, not the
  /// VM, broke the session.
  FrameNo first_input_divergence = -1;

  /// First frame whose states verifiably differ (-1 when identical). With
  /// per-frame evidence (divergent inputs, or a timeline) this is exact;
  /// with agreeing inputs it is the first divergent keyframe — and by
  /// determinism the divergence cannot predate the preceding agreeing
  /// keyframe, so the bracket is tight to one interval.
  FrameNo first_divergent_frame = -1;
  std::uint64_t digest_a = 0;  ///< the two digests at that frame
  std::uint64_t digest_b = 0;

  /// Which recording left the deterministic re-simulation line at the
  /// divergent frame: "a", "b", "both", or "input" (the input logs
  /// themselves split, so there is no single deterministic line).
  std::string diverged_side;

  /// Pages on which the two states differ at first_divergent_frame
  /// (populated when both sides' states are available there). `addr` is
  /// game-address-space when the game exposes page_digests(), else the
  /// byte offset into the raw save_state blob (page_digest_base 0).
  std::vector<PageDivergence> pages;

  /// Seek mechanics: restore point and frames re-simulated (diagnostics,
  /// and the evidence that bisection beat linear replay).
  FrameNo keyframe_used = -1;
  FrameNo resimulated_frames = 0;
};

/// Bisects two recordings of (nominally) the same session. The factory
/// must produce the game both replays recorded (content ids must match).
BisectReport bisect_replays(const Replay& a, const Replay& b, const GameFactory& factory);

/// Bisects a replay against an archived per-frame hash timeline (an
/// `rtct_trace` "rtct.timeline.v1" export, hashes under `digest_version`).
/// Per-frame evidence makes the divergent frame exact; pages cannot be
/// named (a timeline carries no state). Side "b" is the timeline.
BisectReport bisect_replay_vs_timeline(const Replay& a, const FrameTimeline& timeline,
                                       int digest_version, const GameFactory& factory);

/// The canonical, deterministic JSON form ("rtct.bisect.v1").
std::string bisect_report_to_json(const BisectReport& r);

}  // namespace rtct::core
