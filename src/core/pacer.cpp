#include "src/core/pacer.h"

#include "src/common/telemetry.h"

namespace rtct::core {

void FramePacer::begin_frame(Time now, FrameNo current_frame, const SyncPeer::RemoteObs& obs) {
  frame_start_ = now;  // line 2

  Dur sync_adjust = 0;
  // Lines 5-8 (slave only). Rate sync is additionally gated on a real RTT
  // sample: before one exists, `obs.rtt` would read 0 and `master_sent`
  // below would be overestimated by RTT/2, so the slave would chase a
  // master estimate that is half a round trip stale during startup.
  if (policy_ == PacingPolicy::kFull && my_site_ != kMasterSite && obs.valid &&
      obs.rtt_valid) {
    const Dur tpf = cfg_.frame_period();
    // MasterFrame = LastRcvFrame[0] - BufFrame: the received frame number
    // already includes the local-lag offset (line 6).
    const FrameNo master_frame = obs.last_rcv_frame - cfg_.buf_frames;
    // t = MasterRcvTime - RTT/2 estimates when the master *sent* that
    // frame's input; extrapolate its frame at local-now and diff (line 7).
    const Time master_sent = obs.rcv_time - obs.rtt / 2;
    const Dur raw = (current_frame - master_frame) * tpf - (now - master_sent);
    // Smoothed application (see SyncConfig::rate_sync_gain): ignore noise
    // inside the deadband, correct a fraction of real skew per frame.
    if (raw > cfg_.rate_sync_deadband || raw < -cfg_.rate_sync_deadband) {
      sync_adjust = static_cast<Dur>(static_cast<double>(raw) * cfg_.rate_sync_gain);
    }
  }
  last_sync_adjust_ = sync_adjust;
  adjust_ += sync_adjust;  // line 9
}

Dur FramePacer::end_frame(Time now) {
  ++frames_;
  if (policy_ == PacingPolicy::kNaive) {
    // §3.2's strawman: block until the end of the nominal frame slot and
    // carry nothing forward. Works on one host, oscillates over a network.
    adjust_ = 0;
    const Time frame_end = frame_start_ + cfg_.frame_period();
    if (frame_end < now) {
      ++overruns_;
      return 0;
    }
    total_wait_ += frame_end - now;
    return frame_end - now;
  }
  // Line 1: when this frame *should* end.
  const Time frame_end = frame_start_ + cfg_.frame_period() + adjust_;
  if (frame_end < now) {  // lines 3-4: overran — carry the deficit forward
    adjust_ = frame_end - now;
    ++overruns_;
    return 0;
  }
  adjust_ = 0;  // lines 6-7: on time — absorb the remainder by waiting
  total_wait_ += frame_end - now;
  return frame_end - now;
}

void FramePacer::export_metrics(MetricsRegistry& reg) const {
  reg.counter("pacer.frames").set(frames_);
  reg.counter("pacer.overruns").set(overruns_);
  reg.gauge("pacer.adjust_ms").set(to_ms(adjust_));
  reg.gauge("pacer.last_sync_adjust_ms").set(to_ms(last_sync_adjust_));
  reg.gauge("pacer.total_wait_ms").set(to_ms(total_wait_));
}

}  // namespace rtct::core
