#include "src/core/metrics.h"

#include <algorithm>

namespace rtct::core {

std::vector<double> FrameTimeline::begin_times_ms() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(to_ms(r.begin_time));
  return out;
}

Series FrameTimeline::frame_times() const {
  Series s;
  for (std::size_t i = 1; i < records_.size(); ++i) {
    s.add_dur(records_[i].begin_time - records_[i - 1].begin_time);
  }
  return s;
}

Series FrameTimeline::stalls() const {
  Series s;
  for (const auto& r : records_) s.add_dur(r.stall);
  return s;
}

std::size_t FrameTimeline::stalled_frames() const {
  // Threshold at 1 ms: under a real-time clock even an instantly-ready
  // SyncInput measures a few microseconds, which is not a stall.
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [](const FrameRecord& r) { return r.stall >= kMillisecond; }));
}

Series synchrony_differences(const FrameTimeline& a, const FrameTimeline& b) {
  Series s;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    s.add_dur(a.records()[i].begin_time - b.records()[i].begin_time);
  }
  return s;
}

FrameNo first_divergence(const FrameTimeline& a, const FrameTimeline& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.records()[i].state_hash != b.records()[i].state_hash) {
      return static_cast<FrameNo>(i);
    }
  }
  return -1;
}

}  // namespace rtct::core
