#include "src/core/metrics.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "src/common/json.h"
#include "src/common/telemetry.h"

namespace rtct::core {

std::vector<double> FrameTimeline::begin_times_ms() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(to_ms(r.begin_time));
  return out;
}

Series FrameTimeline::frame_times() const {
  Series s;
  for (std::size_t i = 1; i < records_.size(); ++i) {
    s.add_dur(records_[i].begin_time - records_[i - 1].begin_time);
  }
  return s;
}

Series FrameTimeline::stalls() const {
  Series s;
  for (const auto& r : records_) s.add_dur(r.stall);
  return s;
}

Series FrameTimeline::computes() const {
  Series s;
  for (const auto& r : records_) s.add_dur(r.compute);
  return s;
}

Series FrameTimeline::waits() const {
  Series s;
  for (const auto& r : records_) s.add_dur(r.wait);
  return s;
}

std::size_t FrameTimeline::stalled_frames() const {
  // Threshold at 1 ms: under a real-time clock even an instantly-ready
  // SyncInput measures a few microseconds, which is not a stall.
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [](const FrameRecord& r) { return r.stall >= kMillisecond; }));
}

LatencyBreakdown FrameTimeline::latency_breakdown() const {
  LatencyBreakdown b;
  if (records_.empty()) return b;
  b.frame_ms = frame_times().summarize().mean;
  b.stall_ms = stalls().summarize().mean;
  b.compute_ms = computes().summarize().mean;
  b.sleep_ms = waits().summarize().mean;
  b.other_ms = b.frame_ms - b.stall_ms - b.compute_ms - b.sleep_ms;
  return b;
}

void FrameTimeline::export_metrics(MetricsRegistry& reg) const {
  reg.counter("timeline.frames").set(records_.size());
  reg.counter("timeline.stalled_frames").set(stalled_frames());
  auto fill = [&reg](std::string_view name, const Series& s) {
    Histogram& h = reg.histogram(name);
    for (double x : s.samples()) h.observe(x);
  };
  fill("timeline.frame_time_ms", frame_times());
  fill("timeline.stall_ms", stalls());
  fill("timeline.compute_ms", computes());
  fill("timeline.wait_ms", waits());
}

Series synchrony_differences(const FrameTimeline& a, const FrameTimeline& b) {
  Series s;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    s.add_dur(a.records()[i].begin_time - b.records()[i].begin_time);
  }
  return s;
}

FrameNo first_divergence(const FrameTimeline& a, const FrameTimeline& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.records()[i].state_hash != b.records()[i].state_hash) {
      return static_cast<FrameNo>(i);
    }
  }
  return -1;
}

namespace {

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

std::optional<std::uint64_t> hash_from_hex(const std::string& s) {
  std::uint64_t h = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), h, 16);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return h;
}

}  // namespace

std::string timeline_to_json(const FrameTimeline& t, std::string_view name, int cfps) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("rtct.timeline.v1");
  w.key("name").value(name);
  w.key("cfps").value(cfps);
  w.key("frames").value(static_cast<std::uint64_t>(t.size()));

  // Column-oriented per-frame records: exact int64 nanoseconds (doubles hold
  // them losslessly far beyond any session length) and 16-hex state hashes.
  w.key("columns").begin_object();
  auto ns_column = [&w, &t](const char* key, auto proj) {
    w.key(key).begin_array();
    for (const auto& r : t.records()) w.value(static_cast<std::int64_t>(proj(r)));
    w.end_array();
  };
  ns_column("frame", [](const FrameRecord& r) { return r.frame; });
  ns_column("begin_ns", [](const FrameRecord& r) { return r.begin_time; });
  ns_column("ready_ns", [](const FrameRecord& r) { return r.input_ready_time; });
  ns_column("stall_ns", [](const FrameRecord& r) { return r.stall; });
  ns_column("compute_ns", [](const FrameRecord& r) { return r.compute; });
  ns_column("wait_ns", [](const FrameRecord& r) { return r.wait; });
  w.key("state_hash").begin_array();
  for (const auto& r : t.records()) w.value(hash_hex(r.state_hash));
  w.end_array();
  w.end_object();

  // The Figure-1 statistics and the §4.2 budget split, precomputed so the
  // export is plottable without re-deriving anything.
  w.key("summary").begin_object();
  w.key("frame_time_ms");
  write_summary_json(w, t.frame_times().summarize());
  w.key("stall_ms");
  write_summary_json(w, t.stalls().summarize());
  w.key("compute_ms");
  write_summary_json(w, t.computes().summarize());
  w.key("wait_ms");
  write_summary_json(w, t.waits().summarize());
  w.key("stalled_frames").value(static_cast<std::uint64_t>(t.stalled_frames()));
  const LatencyBreakdown b = t.latency_breakdown();
  w.key("latency_breakdown_ms").begin_object();
  w.key("frame").value(b.frame_ms);
  w.key("stall").value(b.stall_ms);
  w.key("compute").value(b.compute_ms);
  w.key("sleep").value(b.sleep_ms);
  w.key("other").value(b.other_ms);
  w.end_object();
  w.end_object();

  w.end_object();
  return w.take();
}

std::optional<FrameTimeline> timeline_from_json(const JsonValue& doc) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->string() == nullptr ||
      *schema->string() != "rtct.timeline.v1") {
    return std::nullopt;
  }
  const JsonValue* cols = doc.find("columns");
  if (cols == nullptr || !cols->is_object()) return std::nullopt;

  auto column = [cols](const char* key) -> const JsonValue::Array* {
    const JsonValue* c = cols->find(key);
    return c != nullptr ? c->array() : nullptr;
  };
  const auto* frame = column("frame");
  const auto* begin = column("begin_ns");
  const auto* ready = column("ready_ns");
  const auto* stall = column("stall_ns");
  const auto* compute = column("compute_ns");
  const auto* wait = column("wait_ns");
  const auto* hash = column("state_hash");
  if (frame == nullptr || begin == nullptr || ready == nullptr || stall == nullptr ||
      compute == nullptr || wait == nullptr || hash == nullptr) {
    return std::nullopt;
  }
  const std::size_t n = frame->size();
  if (begin->size() != n || ready->size() != n || stall->size() != n ||
      compute->size() != n || wait->size() != n || hash->size() != n) {
    return std::nullopt;
  }

  FrameTimeline t;
  t.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FrameRecord r;
    r.frame = static_cast<FrameNo>((*frame)[i].number_or(0));
    r.begin_time = static_cast<Time>((*begin)[i].number_or(0));
    r.input_ready_time = static_cast<Time>((*ready)[i].number_or(0));
    r.stall = static_cast<Dur>((*stall)[i].number_or(0));
    r.compute = static_cast<Dur>((*compute)[i].number_or(0));
    r.wait = static_cast<Dur>((*wait)[i].number_or(0));
    const std::string* hex = (*hash)[i].string();
    if (hex == nullptr) return std::nullopt;
    const auto h = hash_from_hex(*hex);
    if (!h) return std::nullopt;
    r.state_hash = *h;
    t.add(r);
  }
  return t;
}

}  // namespace rtct::core
