// Wire messages of the sync protocol.
//
// SyncMsg carries exactly the paper's sd[0..3...] fields (Algorithm 2,
// lines 7-11) — a cumulative ack plus the contiguous window of local
// partial inputs the peer has not acknowledged — extended with three
// timestamp fields that implement the RTT estimation Algorithm 4 needs
// (the paper measures RTT but does not spell out how; we use the standard
// echo + hold-time scheme, e.g. TCP RFC 7323 style).
//
// All encoding is explicit little-endian through ByteWriter/ByteReader;
// decode() treats input as untrusted network bytes and returns nullopt on
// anything malformed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "src/common/time.h"
#include "src/common/types.h"

namespace rtct::core {

/// HelloMsg/StartMsg::flags bits (capability negotiation).
inline constexpr std::uint8_t kHelloFlagAdaptiveLag = 1u << 0;
/// In HELLO: "I can compare incremental (version-2) state digests". In
/// START: "this session compares version-2 digests" — set by the master
/// only when both sides advertised it.
inline constexpr std::uint8_t kFlagStateDigestV2 = 1u << 1;
/// In HELLO: "I am willing to run the rollback consistency mode". In
/// START: "this session runs rollback" — set by the master only when both
/// sides advertised it; START.buf_frames then carries the agreed local
/// input delay + 1 (offset by one so the field's 0 keeps its lockstep
/// meaning of "use your configured value").
inline constexpr std::uint8_t kFlagRollback = 1u << 2;

/// Session handshake: "I am here, running this game image with these
/// parameters" (§2 rendezvous + same-image requirement). v2 extends it
/// with an echoed-timestamp RTT probe (same scheme as SyncMsg) and the
/// sender's measured-RTT advert, feeding the adaptive-lag negotiation.
struct HelloMsg {
  SiteId site = 0;
  std::uint32_t protocol_version = 0;
  std::uint64_t rom_checksum = 0;
  std::uint16_t cfps = 0;
  std::uint16_t buf_frames = 0;

  // v2: RTT probe + adaptive negotiation.
  Time hello_time = 0;   ///< sender's clock when this HELLO was sent
  Time echo_time = -1;   ///< newest hello_time seen from the peer (-1 none)
  Dur echo_hold = 0;     ///< how long that echo was held before now
  Dur adv_rtt = -1;      ///< sender's smoothed RTT estimate (-1 unmeasured)
  std::uint8_t flags = 0;        ///< kHelloFlag* capability bits
  std::uint16_t redundancy = 0;  ///< sender's redundant-input tail K (FYI)
};

/// Master's go signal; the slave starts on receipt, giving at most one
/// one-way delay of start skew (§3.2). v2: when the sites negotiated an
/// RTT-adaptive local lag, `buf_frames` carries the agreed value (0 means
/// "use the configured fixed value").
/// (v3 adds `flags`, fixing the negotiated capabilities — a slave may
/// learn the outcome from START alone when every master HELLO was lost.)
struct StartMsg {
  SiteId site = 0;
  std::uint16_t buf_frames = 0;
  std::uint8_t flags = 0;  ///< kFlag* bits the session runs with
};

/// One flush of the sync module (Algorithm 2 lines 7-11).
struct SyncMsg {
  SiteId site = 0;        ///< sender
  FrameNo ack_frame = 0;  ///< sd[0]: LastRcvFrame[RmSiteNo] — cumulative ack
  FrameNo first_frame = 0;  ///< sd[1]: first input frame in `inputs`
  /// Partial inputs for frames first_frame .. first_frame+inputs.size()-1
  /// (sd[3...]; sd[2] is implied by the vector length).
  std::vector<InputWord> inputs;

  // RTT estimation (supports Algorithm 4's RTT/2 term).
  Time send_time = 0;   ///< sender's clock when this message was sent
  Time echo_time = -1;  ///< most recent send_time received from the peer
  Dur echo_hold = 0;    ///< how long the sender held that echo before now

  // Desync detection: the sender's state hash after executing hash_frame
  // (-1 = none attached). Receivers compare against their own hash for the
  // same frame — a mismatch proves the determinism assumption broke.
  FrameNo hash_frame = -1;
  std::uint64_t state_hash = 0;

  [[nodiscard]] FrameNo last_frame() const {
    return first_frame + static_cast<FrameNo>(inputs.size()) - 1;
  }
};

// ---- spectator / late-join extension ---------------------------------------
// The ICDCS paper's §6 defers "how to support multiple players and
// observers, how to accommodate late comers" to the journal version; these
// messages implement the observer/late-joiner part: a joining client gets
// a full machine snapshot and then a reliable feed of every merged input
// the session executes, letting it replay the game in lockstep.

/// Observer -> host: "let me watch". Repeated until a snapshot arrives.
struct JoinRequestMsg {
  std::uint64_t content_id = 0;  ///< must match the host's game image
};

/// Host -> observer: full machine state after executing `frame`.
struct SnapshotMsg {
  FrameNo frame = 0;
  std::vector<std::uint8_t> state;
};

/// Host -> observer: merged inputs for frames first_frame.. (go-back-N
/// window, resent until acked — same reliability scheme as SyncMsg).
struct InputFeedMsg {
  FrameNo first_frame = 0;
  std::vector<InputWord> inputs;
  [[nodiscard]] FrameNo last_frame() const {
    return first_frame + static_cast<FrameNo>(inputs.size()) - 1;
  }
};

/// Observer -> host: cumulative ack of snapshot + feed.
struct FeedAckMsg {
  FrameNo frame = 0;  ///< everything up to and including this is applied
};

using Message = std::variant<HelloMsg, StartMsg, SyncMsg, JoinRequestMsg, SnapshotMsg,
                             InputFeedMsg, FeedAckMsg>;

std::vector<std::uint8_t> encode_message(const Message& msg);
/// Same encoding into a caller-owned buffer (cleared, capacity kept) so
/// per-flush encoding on the hot path reuses one scratch vector.
void encode_message_into(const Message& msg, std::vector<std::uint8_t>& out);
/// Encodes a SnapshotMsg directly from borrowed state bytes — byte-for-byte
/// identical to encode_message(SnapshotMsg{frame, state}) without copying
/// the state into a message struct first (snapshots are the largest thing
/// on the wire; the broadcast hub encodes each one exactly once).
void encode_snapshot_into(FrameNo frame, std::span<const std::uint8_t> state,
                          std::vector<std::uint8_t>& out);
std::optional<Message> decode_message(std::span<const std::uint8_t> data);

}  // namespace rtct::core
