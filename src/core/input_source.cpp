#include "src/core/input_source.h"

namespace rtct::core {

std::vector<std::uint8_t> materialize_script(InputSource& src, FrameNo frames) {
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(frames));
  for (FrameNo f = 0; f < frames; ++f) out.push_back(src.input_for_frame(f));
  return out;
}

}  // namespace rtct::core
