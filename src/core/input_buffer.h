// IBuf — Algorithm 2's input buffer.
//
// Maps frame numbers to per-site partial inputs. The paper assumes "a
// buffer of unlimited size ... for simplicity in presentation"; this
// implementation grows on demand but reclaims delivered entries, so memory
// stays proportional to the in-flight window (local lag + network skew).
// Duplicate arrivals (from retransmission) are absorbed idempotently —
// "only one copy of them will be kept in the buffer" (§3.1).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "src/common/types.h"

namespace rtct::core {

class InputBuffer {
 public:
  /// Two-site by default, like the paper; pass 4 or 8 for the mesh
  /// extension (num_sites must divide 16 — each site owns an equal,
  /// disjoint span of the input word).
  explicit InputBuffer(int num_sites = 2)
      : num_sites_(num_sites < 1 ? 1 : (num_sites > kMaxSites ? kMaxSites : num_sites)) {}

  static constexpr int kMaxSites = 8;

  /// Widest window (frames above `base()`) a put may open. Legitimate
  /// traffic never runs more than local-lag + retransmission-window ahead
  /// of the trim point (tens of frames); a forged first_frame that passes
  /// the wire-level range check must not force an unbounded deque
  /// allocation here. 2^16 frames ≈ 18 minutes at 60 FPS — far beyond any
  /// real skew, cheap to reject.
  static constexpr FrameNo kMaxFrameWindow = 1 << 16;

  /// Records site `site`'s partial input for `frame`. Returns true if the
  /// slot was empty (false = duplicate, ignored). Frames below the trim
  /// point are stale retransmissions and count as duplicates; frames more
  /// than kMaxFrameWindow above it are hostile or corrupt and are ignored
  /// the same way.
  bool put(SiteId site, FrameNo frame, InputWord partial);

  [[nodiscard]] bool has(SiteId site, FrameNo frame) const;

  /// Site's stored partial input (0 if absent — matching the paper's
  /// all-zero initialization, which is also what the first BufFrame
  /// "empty input" frames deliver).
  [[nodiscard]] InputWord partial(SiteId site, FrameNo frame) const;

  /// The merged input word for `frame` if every site's partial input has
  /// arrived; nullopt otherwise.
  [[nodiscard]] std::optional<InputWord> merged(FrameNo frame) const;

  /// Frames below `frame` have been delivered to the game and can be
  /// reclaimed.
  void trim_below(FrameNo frame);

  [[nodiscard]] FrameNo base() const { return base_; }
  [[nodiscard]] std::size_t entries_in_memory() const { return entries_.size(); }

 private:
  struct Entry {
    InputWord partial[kMaxSites] = {};
    bool filled[kMaxSites] = {};
  };

  Entry* entry_at(FrameNo frame, bool create);
  [[nodiscard]] const Entry* entry_at(FrameNo frame) const;

  int num_sites_;
  FrameNo base_ = 0;  ///< frame number of entries_[0]
  std::deque<Entry> entries_;
};

}  // namespace rtct::core
