// Local input sources: where a site's controller bytes come from.
//
// In the real system this is a human on a gamepad; experiments use
// deterministic synthetic players so runs are reproducible and replicas
// can be checked against a single-machine reference execution.
#pragma once

#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"

namespace rtct::core {

class InputSource {
 public:
  virtual ~InputSource() = default;
  /// The local player's button byte for local frame `frame`. Must be a
  /// pure function of (source state, frame) — called exactly once per
  /// frame, in order.
  virtual std::uint8_t input_for_frame(FrameNo frame) = 0;
};

/// Always-idle player.
class IdleInput final : public InputSource {
 public:
  std::uint8_t input_for_frame(FrameNo) override { return 0; }
};

/// Replays a fixed script (zero after it ends). The exact input sequence
/// is then known to tests for reference-run comparison.
class ScriptedInput final : public InputSource {
 public:
  explicit ScriptedInput(std::vector<std::uint8_t> script) : script_(std::move(script)) {}
  std::uint8_t input_for_frame(FrameNo frame) override {
    const auto i = static_cast<std::size_t>(frame);
    return i < script_.size() ? script_[i] : 0;
  }

 private:
  std::vector<std::uint8_t> script_;
};

/// A deterministic "button masher": picks a random button byte and holds
/// it for `hold_frames` (humans hold buttons across many 60ths of a
/// second). Same seed => same input sequence, on any platform.
class MasherInput final : public InputSource {
 public:
  explicit MasherInput(std::uint64_t seed, int hold_frames = 6)
      : rng_(seed), hold_frames_(hold_frames < 1 ? 1 : hold_frames) {}

  std::uint8_t input_for_frame(FrameNo frame) override {
    if (frame >= next_change_) {
      current_ = static_cast<std::uint8_t>(rng_.next_u64() & 0xFF);
      next_change_ = frame + hold_frames_;
    }
    return current_;
  }

 private:
  Rng rng_;
  int hold_frames_;
  std::uint8_t current_ = 0;
  FrameNo next_change_ = 0;
};

/// Pre-computes the full input sequence a source would produce — used to
/// build single-machine reference runs.
std::vector<std::uint8_t> materialize_script(InputSource& src, FrameNo frames);

}  // namespace rtct::core
