#include "src/core/rollback.h"

#include <algorithm>

#include "src/common/telemetry.h"

namespace rtct::core {

RollbackSession::RollbackSession(SiteId my_site, emu::IDeterministicGame& game,
                                 SyncConfig cfg)
    : my_site_(my_site),
      rm_site_(my_site == 0 ? SiteId{1} : SiteId{0}),
      game_(game),
      cfg_(cfg),
      delay_(std::max(0, cfg.rollback_input_delay)),
      // The ring must hold the restore target plus the whole speculation
      // span; anything smaller than delay + a few frames of slack would
      // stall immediately, so clamp rather than trust the config blindly.
      window_(std::max(cfg.rollback_window, delay_ + 4)),
      ibuf_(2) {
  ring_.resize(static_cast<std::size_t>(window_));
  game_.save_state_into(genesis_);
  // The paper's all-zero initialization: with an input delay of d, frames
  // [0, d) run with empty partial inputs at *both* sites, so both are known
  // in advance and neither side ever sends them.
  for (FrameNo f = 0; f < delay_; ++f) {
    ibuf_.put(my_site_, f, 0);
    ibuf_.put(rm_site_, f, 0);
  }
  local_top_ = delay_ - 1;
  remote_contig_ = delay_ - 1;
  last_ack_frame_ = delay_ - 1;  // the peer pre-filled the same zeros
}

void RollbackSession::execute_frame(FrameNo f) {
  const InputWord local = ibuf_.partial(my_site_, f);
  const bool have_remote = ibuf_.has(rm_site_, f);
  const InputWord remote = have_remote ? remote_partial(f) : predicted_remote(f);
  const InputWord merged = static_cast<InputWord>(local | remote);
  game_.step_frame(merged);
  Slot& s = slot(f);
  s.frame = f;
  game_.save_state_into(s.state);  // reuses the slot's buffer in steady state
  s.digest = game_.state_digest(cfg_.digest_version());
  s.merged = merged;
  s.remote_used = remote;
  s.remote_actual = have_remote;
}

RollbackSession::FrameOutcome RollbackSession::advance_frame(InputWord local_input) {
  const FrameNo f = executed_;
  ibuf_.put(my_site_, f + delay_, site_bits(local_input, my_site_));
  local_top_ = f + delay_;
  reconcile();
  execute_frame(f);
  ++executed_;
  ++rstats_.frames_executed;
  const Slot& s = slot(f);
  if (!s.remote_actual) ++rstats_.predicted_frames;
  advance_confirmed();
  return FrameOutcome{f, s.digest, !s.remote_actual};
}

void RollbackSession::reconcile() {
  // Verify predictions in frame order: the first frame whose actual remote
  // input disagrees with what was used invalidates everything after it.
  FrameNo bad = -1;
  for (FrameNo f = confirmed_; f < executed_; ++f) {
    Slot& s = slot(f);
    if (s.remote_actual) continue;
    if (!ibuf_.has(rm_site_, f)) continue;
    if (remote_partial(f) == s.remote_used) {
      // Prediction was right: the frame executed with the real input and
      // stands as-is (the common case — inputs are runs of equal words).
      s.remote_actual = true;
    } else {
      bad = f;
      break;
    }
  }
  if (bad >= 0) rollback_and_resim(bad);
  advance_confirmed();
}

void RollbackSession::rollback_and_resim(FrameNo from) {
  const FrameNo top = executed_;
  ++rstats_.rollbacks;
  rstats_.max_rollback_depth =
      std::max(rstats_.max_rollback_depth, static_cast<int>(top - from));
  restore_state_after(from - 1);
  for (FrameNo f = from; f < top; ++f) {
    const InputWord prev_used = slot(f).remote_used;
    execute_frame(f);
    if (slot(f).remote_used != prev_used) ++rstats_.mispredicted_frames;
    ++rstats_.frames_resimulated;
  }
}

void RollbackSession::restore_state_after(FrameNo f) {
  const bool ok =
      f < 0 ? game_.load_state(genesis_) : game_.load_state(slot(f).state);
  if (!ok && desync_frame_ < 0) {
    // A snapshot the machine itself produced refused to load back — state
    // corruption. Surface it through the desync channel so drivers abort
    // the session instead of silently diverging.
    desync_frame_ = f < 0 ? 0 : f;
  }
}

void RollbackSession::advance_confirmed() {
  bool advanced = false;
  while (confirmed_ < executed_ && slot(confirmed_).remote_actual) {
    const Slot& s = slot(confirmed_);
    confirmed_digests_.push_back(s.digest);
    confirmed_inputs_.push_back(s.merged);
    if (cfg_.hash_interval > 0 &&
        confirmed_ % cfg_.hash_interval == cfg_.hash_interval - 1) {
      latest_own_ = HashRecord{confirmed_, s.digest};
    }
    if (pending_remote_.frame == confirmed_ && desync_frame_ < 0 &&
        pending_remote_.hash != s.digest) {
      desync_frame_ = confirmed_;
    }
    ++confirmed_;
    advanced = true;
  }
  if (advanced) {
    // Reclaim delivered entries, but keep every local input the peer has
    // not yet acked — it is still subject to go-back-N resend.
    ibuf_.trim_below(std::min(confirmed_, last_ack_frame_ + 1));
  }
}

std::optional<SyncMsg> RollbackSession::make_message(Time now) {
  const FrameNo first = last_ack_frame_ + 1;
  const bool inputs_pending = local_top_ >= first;
  const bool ack_news = remote_contig_ > ack_sent_;
  const bool hash_news = latest_own_.frame > hash_sent_;
  if (!inputs_pending && !ack_news && !hash_news) return std::nullopt;

  SyncMsg m;
  m.site = my_site_;
  m.ack_frame = remote_contig_;
  m.first_frame = first;
  if (inputs_pending) {
    const FrameNo last = std::min(
        local_top_, first + static_cast<FrameNo>(cfg_.max_inputs_per_message) - 1);
    m.inputs.reserve(static_cast<std::size_t>(last - first + 1));
    for (FrameNo f = first; f <= last; ++f) {
      m.inputs.push_back(ibuf_.partial(my_site_, f));
    }
    stats_.inputs_sent += m.inputs.size();
    if (highest_sent_ >= first) {
      stats_.inputs_retransmitted +=
          static_cast<std::uint64_t>(std::min(last, highest_sent_) - first + 1);
    }
    highest_sent_ = std::max(highest_sent_, last);
  }
  m.send_time = now;
  if (last_peer_send_time_ >= 0) {
    m.echo_time = last_peer_send_time_;
    m.echo_hold = now - last_peer_recv_time_;
  }
  if (latest_own_.frame >= 0) {
    m.hash_frame = latest_own_.frame;
    m.state_hash = latest_own_.hash;
    hash_sent_ = latest_own_.frame;
  }
  ack_sent_ = std::max(ack_sent_, remote_contig_);
  ++stats_.messages_made;
  return m;
}

void RollbackSession::ingest(const SyncMsg& msg, Time recv_time) {
  if (msg.site == my_site_) {
    ++stats_.stale_messages;
    return;
  }
  ++stats_.messages_ingested;

  // RTT estimation: echoed timestamp minus the peer's hold time.
  if (msg.echo_time >= 0) {
    const Dur sample = recv_time - msg.echo_time - msg.echo_hold;
    if (sample >= 0) {
      rtt_.sample(sample);
      ++stats_.rtt_samples;
    }
  }
  if (msg.send_time > last_peer_send_time_) {
    last_peer_send_time_ = msg.send_time;
    last_peer_recv_time_ = recv_time;
  }

  last_ack_frame_ = std::max(last_ack_frame_, msg.ack_frame);

  for (std::size_t i = 0; i < msg.inputs.size(); ++i) {
    const FrameNo f = msg.first_frame + static_cast<FrameNo>(i);
    if (!ibuf_.put(rm_site_, f, site_bits(msg.inputs[i], rm_site_))) {
      ++stats_.duplicate_inputs_rcvd;
    }
  }
  bool advanced = false;
  while (ibuf_.has(rm_site_, remote_contig_ + 1)) {
    ++remote_contig_;
    advanced = true;
  }
  if (advanced) {
    seen_remote_ = true;
    remote_advance_time_ = recv_time;
  }

  if (msg.hash_frame >= 0) check_remote_hash(msg.hash_frame, msg.state_hash);
}

void RollbackSession::check_remote_hash(FrameNo frame, std::uint64_t hash) {
  if (desync_frame_ >= 0) return;
  if (frame < confirmed_) {
    if (frame >= 0 && frame < static_cast<FrameNo>(confirmed_digests_.size()) &&
        confirmed_digests_[static_cast<std::size_t>(frame)] != hash) {
      desync_frame_ = frame;
    }
  } else if (frame > pending_remote_.frame) {
    // Not confirmed yet: park it (newest wins — a stale parked hash for a
    // frame we already compared is harmless) and compare on confirmation.
    pending_remote_ = HashRecord{frame, hash};
  }
}

SyncPeer::RemoteObs RollbackSession::remote_obs() const {
  SyncPeer::RemoteObs o;
  o.valid = seen_remote_;
  o.last_rcv_frame = remote_contig_;
  o.rcv_time = remote_advance_time_;
  o.rtt = rtt_.srtt();
  o.rtt_valid = rtt_.has_sample();
  return o;
}

void RollbackSession::export_metrics(MetricsRegistry& reg) const {
  export_sync_stats(reg, stats_);
  reg.counter("rollback.frames_executed").set(rstats_.frames_executed);
  reg.counter("rollback.frames_resimulated").set(rstats_.frames_resimulated);
  reg.counter("rollback.rollbacks").set(rstats_.rollbacks);
  reg.counter("rollback.predicted_frames").set(rstats_.predicted_frames);
  reg.counter("rollback.mispredicted_frames").set(rstats_.mispredicted_frames);
  reg.gauge("rollback.max_depth").set(rstats_.max_rollback_depth);
  reg.gauge("rollback.input_delay").set(delay_);
  reg.gauge("rollback.confirmed_frame").set(static_cast<double>(confirmed_));
  reg.gauge("rollback.executed_frame").set(static_cast<double>(executed_));
}

}  // namespace rtct::core
