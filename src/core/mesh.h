// MeshSyncPeer — Algorithm 2 generalized to N sites (the journal-version
// "multiple players" extension the ICDCS paper defers in §6).
//
// Topology: full mesh. Each site unicasts its own partial inputs to every
// other site using exactly the two-site message format (SyncMsg already
// names its sender); per peer it keeps the same state the paper's
// algorithm keeps for its single peer:
//
//   LastRcvFrame[i]  — highest contiguous frame of site i's inputs held
//   LastAckFrame[i]  — highest of MY frames that peer i has acked
//
// The exit condition generalizes to min_i LastRcvFrame[i] >= IBufPointer:
// a frame executes only when EVERY site's partial input for it is present,
// so the lockstep guarantee (identical merged input at all N replicas) is
// preserved. Reliability is the same per-peer go-back-N window resend.
//
// Real-time consistency: site 0 stays the single master; every other site
// runs Algorithm 4 against its freshest observation of site 0, which keeps
// the whole mesh rate-locked to one reference clock (star-shaped control
// over a mesh-shaped data plane).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/time.h"
#include "src/common/types.h"
#include "src/core/config.h"
#include "src/core/input_buffer.h"
#include "src/core/rtt.h"
#include "src/core/sync_peer.h"
#include "src/core/wire.h"

namespace rtct::core {

class MeshSyncPeer {
 public:
  /// `num_sites` must divide 16 (2, 4, 8): each site owns an equal span of
  /// the input word (SET[k] = site_input_mask_n).
  MeshSyncPeer(SiteId my_site, int num_sites, SyncConfig cfg);

  /// Buffers the local partial input for frame + BufFrame (lines 1-5).
  void submit_local(FrameNo frame, InputWord partial);

  /// Outbound message for one specific peer; nullopt when that peer needs
  /// nothing. Call for each peer on every flush tick.
  std::optional<SyncMsg> make_message(SiteId peer, Time now);

  /// Merges a message from whichever site sent it (msg.site).
  void ingest(const SyncMsg& msg, Time recv_time);

  /// All N sites' inputs present for the pointer frame?
  [[nodiscard]] bool ready() const;
  InputWord pop();

  /// Slowest site holding the session back right now (for diagnostics):
  /// the site with the smallest LastRcvFrame, excluding ourselves.
  [[nodiscard]] SiteId straggler() const;

  // Desync detection (same scheme as SyncPeer; hashes go to every peer).
  void note_state_hash(FrameNo frame, std::uint64_t hash);
  [[nodiscard]] bool desync_detected() const { return desync_frame_ >= 0; }
  [[nodiscard]] FrameNo desync_frame() const { return desync_frame_; }

  // Observability.
  [[nodiscard]] FrameNo pointer() const { return pointer_; }
  [[nodiscard]] FrameNo last_rcv_frame(SiteId site) const { return last_rcv_[site]; }
  [[nodiscard]] Dur rtt(SiteId peer) const { return peers_[peer].rtt.srtt(); }
  [[nodiscard]] SyncPeer::RemoteObs master_obs() const;
  [[nodiscard]] const SyncPeerStats& stats() const { return stats_; }
  [[nodiscard]] int num_sites() const { return num_sites_; }
  [[nodiscard]] SiteId site() const { return my_site_; }

  /// Snapshots counters into the registry: the shared "sync.*" names plus
  /// mesh topology gauges ("mesh.*", per-peer "mesh.peer.<i>.*").
  void export_metrics(MetricsRegistry& reg) const;

 private:
  struct PeerState {
    FrameNo last_ack = 0;   ///< their cumulative ack of my inputs
    FrameNo ack_sent = 0;   ///< highest ack I ever sent them
    FrameNo highest_sent = -1;
    Time last_send_time = -1;  ///< their newest send_time (for echoes)
    Time last_recv_time = 0;
    RttEstimator rtt;  ///< explicit has-sample state (no zero sentinel)
  };

  FrameNo min_acked() const;  ///< lowest ack across peers (window trim)

  SiteId my_site_;
  int num_sites_;
  SyncConfig cfg_;
  InputBuffer ibuf_;
  std::vector<FrameNo> last_rcv_;   ///< per site, including self
  std::vector<PeerState> peers_;    ///< indexed by site (self unused)
  FrameNo pointer_ = 0;

  // Master observation for Algorithm 4 (slaves only).
  Time master_advance_time_ = 0;
  bool seen_master_ = false;

  // Desync detection (same ring scheme as SyncPeer).
  static constexpr int kHashWindow = 32;
  struct HashRecord {
    FrameNo frame = -1;
    std::uint64_t hash = 0;
  };
  HashRecord own_hashes_[kHashWindow];
  HashRecord latest_own_;
  FrameNo desync_frame_ = -1;

  SyncPeerStats stats_;
};

}  // namespace rtct::core
