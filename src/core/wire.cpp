#include "src/core/wire.h"

#include "src/common/bytes.h"

namespace rtct::core {

namespace {

enum class MsgType : std::uint8_t {
  kHello = 1,
  kStart = 2,
  kSync = 3,
  kJoinRequest = 4,
  kSnapshot = 5,
  kInputFeed = 6,
  kFeedAck = 7,
};

constexpr std::size_t kMaxWireInputs = 4096;    // decode hard cap (anti-abuse)
constexpr std::size_t kMaxSnapshot = 1 << 20;   // 1 MiB snapshot cap

// Frame numbers arriving off the wire are bounded to [floor, 2^48): 2^48
// frames is ~148k years at 60 FPS, so nothing legitimate ever exceeds it,
// and the headroom guarantees `first_frame + inputs.size()` style
// arithmetic downstream can never overflow int64. The floor is -1 where
// the protocol uses -1 as a sentinel (pre-game snapshot / "nothing yet"
// acks), 0 for input windows. See docs/PROTOCOL.md "Decoder rejection
// rules".
constexpr FrameNo kMaxWireFrame = FrameNo{1} << 48;

constexpr bool frame_in_range(FrameNo f, FrameNo floor = 0) {
  return f >= floor && f < kMaxWireFrame;
}

// Timestamps/durations are sender-relative nanoseconds; the wire contract
// is non-negative (or the -1 "unset" sentinel where noted). A negative
// echo_hold would manufacture inflated RTT samples downstream.
constexpr bool time_in_range(Time t, Time floor = 0) { return t >= floor; }

}  // namespace

std::vector<std::uint8_t> encode_message(const Message& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(64);
  encode_message_into(msg, out);
  return out;
}

void encode_snapshot_into(FrameNo frame, std::span<const std::uint8_t> state,
                          std::vector<std::uint8_t>& out) {
  ByteWriter w(std::move(out));
  w.u8(static_cast<std::uint8_t>(MsgType::kSnapshot));
  w.i64(frame);
  w.u32(static_cast<std::uint32_t>(state.size()));
  w.bytes(state);
  out = w.take();
}

void encode_message_into(const Message& msg, std::vector<std::uint8_t>& out) {
  ByteWriter w(std::move(out));
  if (const auto* hello = std::get_if<HelloMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kHello));
    w.i32(hello->site);
    w.u32(hello->protocol_version);
    w.u64(hello->rom_checksum);
    w.u16(hello->cfps);
    w.u16(hello->buf_frames);
    w.i64(hello->hello_time);
    w.i64(hello->echo_time);
    w.i64(hello->echo_hold);
    w.i64(hello->adv_rtt);
    w.u8(hello->flags);
    w.u16(hello->redundancy);
  } else if (const auto* start = std::get_if<StartMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kStart));
    w.i32(start->site);
    w.u16(start->buf_frames);
    w.u8(start->flags);
  } else if (const auto* sync = std::get_if<SyncMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kSync));
    w.i32(sync->site);
    w.i64(sync->ack_frame);
    w.i64(sync->first_frame);
    w.u32(static_cast<std::uint32_t>(sync->inputs.size()));
    for (InputWord i : sync->inputs) w.u16(i);
    w.i64(sync->send_time);
    w.i64(sync->echo_time);
    w.i64(sync->echo_hold);
    w.i64(sync->hash_frame);
    w.u64(sync->state_hash);
  } else if (const auto* join = std::get_if<JoinRequestMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kJoinRequest));
    w.u64(join->content_id);
  } else if (const auto* snap = std::get_if<SnapshotMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kSnapshot));
    w.i64(snap->frame);
    w.u32(static_cast<std::uint32_t>(snap->state.size()));
    w.bytes(snap->state);
  } else if (const auto* feed = std::get_if<InputFeedMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kInputFeed));
    w.i64(feed->first_frame);
    w.u32(static_cast<std::uint32_t>(feed->inputs.size()));
    for (InputWord i : feed->inputs) w.u16(i);
  } else if (const auto* ack = std::get_if<FeedAckMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kFeedAck));
    w.i64(ack->frame);
  }
  out = w.take();
}

std::optional<Message> decode_message(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const auto type = static_cast<MsgType>(r.u8());
  switch (type) {
    case MsgType::kHello: {
      HelloMsg m;
      m.site = r.i32();
      m.protocol_version = r.u32();
      m.rom_checksum = r.u64();
      m.cfps = r.u16();
      m.buf_frames = r.u16();
      m.hello_time = r.i64();
      m.echo_time = r.i64();
      m.echo_hold = r.i64();
      m.adv_rtt = r.i64();
      m.flags = r.u8();
      m.redundancy = r.u16();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      if (!time_in_range(m.hello_time) || !time_in_range(m.echo_time, -1) ||
          !time_in_range(m.echo_hold) || !time_in_range(m.adv_rtt, -1)) {
        return std::nullopt;
      }
      return m;
    }
    case MsgType::kStart: {
      StartMsg m;
      m.site = r.i32();
      m.buf_frames = r.u16();
      m.flags = r.u8();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      return m;
    }
    case MsgType::kSync: {
      SyncMsg m;
      m.site = r.i32();
      m.ack_frame = r.i64();
      m.first_frame = r.i64();
      const std::uint32_t n = r.u32();
      // Bound the claimed count by both the protocol cap and the bytes the
      // reader actually holds (2 per input) BEFORE reserving: a 16-byte
      // forged datagram claiming n = 4096 must not cost an 8 KiB
      // allocation per packet.
      if (n > kMaxWireInputs || n > r.remaining() / 2) return std::nullopt;
      m.inputs.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) m.inputs.push_back(r.u16());
      m.send_time = r.i64();
      m.echo_time = r.i64();
      m.echo_hold = r.i64();
      m.hash_frame = r.i64();
      m.state_hash = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      if (!frame_in_range(m.first_frame) || !frame_in_range(m.ack_frame, -1) ||
          !frame_in_range(m.hash_frame, -1) || !time_in_range(m.send_time) ||
          !time_in_range(m.echo_time, -1) || !time_in_range(m.echo_hold)) {
        return std::nullopt;
      }
      return m;
    }
    case MsgType::kJoinRequest: {
      JoinRequestMsg m;
      m.content_id = r.u64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      return m;
    }
    case MsgType::kSnapshot: {
      SnapshotMsg m;
      m.frame = r.i64();
      const std::uint32_t n = r.u32();
      if (n > kMaxSnapshot || n > r.remaining()) return std::nullopt;
      const auto body = r.bytes(n);
      if (!r.ok() || !r.at_end()) return std::nullopt;
      // No producer ever snapshots before frame 0 executed (the drivers
      // gate on machine.frame() > 0), so a pre-frame-0 snapshot on the
      // wire is hostile by construction.
      if (!frame_in_range(m.frame, 0)) return std::nullopt;
      m.state.assign(body.begin(), body.end());
      return m;
    }
    case MsgType::kInputFeed: {
      InputFeedMsg m;
      m.first_frame = r.i64();
      const std::uint32_t n = r.u32();
      if (n > kMaxWireInputs || n > r.remaining() / 2) return std::nullopt;
      m.inputs.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) m.inputs.push_back(r.u16());
      if (!r.ok() || !r.at_end()) return std::nullopt;
      if (!frame_in_range(m.first_frame)) return std::nullopt;
      return m;
    }
    case MsgType::kFeedAck: {
      FeedAckMsg m;
      m.frame = r.i64();
      if (!r.ok() || !r.at_end()) return std::nullopt;
      if (!frame_in_range(m.frame, -1)) return std::nullopt;  // -1 acks the
      return m;                                               // pre-game snapshot
    }
  }
  return std::nullopt;
}

}  // namespace rtct::core
