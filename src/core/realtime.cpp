#include "src/core/realtime.h"

#include <chrono>
#include <iterator>
#include <thread>

#include "src/common/telemetry.h"
#include "src/core/wire.h"

namespace rtct::core {

namespace {
Time steady_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RealtimeSession::RealtimeSession(SiteId site, emu::IDeterministicGame& game, InputSource& input,
                                 net::PollableTransport& socket, RealtimeConfig cfg)
    : site_(site),
      game_(game),
      input_(input),
      socket_(socket),
      cfg_(cfg),
      peer_(site, cfg.sync),
      pacer_(site, cfg.sync, cfg.pacing),
      session_(site, game.content_id(), cfg.sync),
      replay_(game.content_id(), cfg.sync),
      flush_clock_(cfg.sync.send_flush_period),
      digest_version_(cfg.sync.digest_version()),
      spectator_hub_(game.content_id(), cfg.sync) {
  epoch_ = steady_now();
}

Time RealtimeSession::now() const { return steady_now() - epoch_; }

void RealtimeSession::drain() {
  while (auto payload = socket_.try_recv()) {
    const auto msg = decode_message(*payload);
    if (!msg) continue;
    if (const auto* sync = std::get_if<SyncMsg>(&*msg)) {
      session_.note_sync_traffic(now());
      // Drop sync traffic until the handshake settles: the negotiated lag
      // must be applied before the first ingest (the peer's reliability
      // layer re-delivers anything dropped here).
      if (session_.running()) {
        apply_negotiated_lag();
        if (rollback_ != nullptr) {
          rollback_->ingest(*sync, now());
        } else {
          peer_.ingest(*sync, now());
        }
      }
    } else {
      session_.ingest(*msg, now());
      // A HELLO at the running master queues a START answer; poll for it
      // here because the frame loop never polls the session. Without this
      // a slave that must wait for START (rollback / adaptive lag) and
      // missed the handshake-time one would never be started.
      if (auto reply = session_.poll(now())) {
        encode_message_into(*reply, wire_scratch_);
        socket_.send(wire_scratch_);
      }
    }
  }
}

void RealtimeSession::apply_negotiated_lag() {
  if (lag_applied_) return;
  lag_applied_ = true;
  digest_version_ = session_.digest_version();
  if (session_.rollback_mode()) {
    // The handshake settled on rollback: build the speculation engine with
    // the *negotiated* parameters (the master's input delay travels in
    // START) and snapshot the pre-frame-0 state as its genesis.
    SyncConfig eff = cfg_.sync;
    eff.digest_v2 = digest_version_ == 2;
    eff.rollback_input_delay = session_.rollback_delay();
    rollback_ = std::make_unique<RollbackSession>(site_, game_, eff);
    replay_ = Replay(game_.content_id(), eff, game_.content_name());
    return;
  }
  const int buf = session_.effective_buf_frames();
  if (buf != cfg_.sync.buf_frames) {
    peer_.set_buf_frames(buf);
    pacer_.set_buf_frames(buf);
  }
  // Rebuild the recording with the *effective* config regardless: the
  // negotiated digest version stamps the replay's keyframe digests.
  SyncConfig eff = cfg_.sync;
  eff.buf_frames = buf;
  eff.digest_v2 = digest_version_ == 2;
  replay_ = Replay(game_.content_id(), eff, game_.content_name());
}

void RealtimeSession::flush_if_due() {
  // Catch-up scheduling (FlushClock): `next += period` keeps the flush
  // cadence anchored instead of drifting later by the caller's check
  // latency every period, which under-delivered the redundancy tail.
  const Time t = now();
  if (!flush_clock_.due(t)) return;
  if (auto msg = rollback_ != nullptr ? rollback_->make_message(t)
                                      : peer_.make_message(t)) {
    encode_message_into(Message{*msg}, wire_scratch_);
    socket_.send(wire_scratch_);
  }
  pump_spectators();
}

void RealtimeSession::pump_spectators() {
  if (spectator_socket_ == nullptr) return;
  const Time t = now();
  while (auto got = spectator_socket_->recv_from()) {
    const auto msg = decode_message(got->first);
    if (!msg) continue;
    auto it = spectator_ids_.find(got->second);
    if (it == spectator_ids_.end()) {
      // Only a JoinRequest mints observer state. Any other message from an
      // unregistered address — a rogue HELLO probing the port, a reaped
      // observer's stale FeedAck, a relay EvictNotice re-send — is counted
      // and dropped; registering it would hand a phantom observer a cursor
      // that pins the hub's trim watermark.
      if (std::get_if<JoinRequestMsg>(&*msg) == nullptr) {
        ++dropped_unknown_sender_;
        continue;
      }
      it = spectator_ids_.emplace(got->second, spectator_hub_.add_observer(t)).first;
    }
    spectator_hub_.ingest(it->second, *msg, t);
  }
  // Reap observers that went silent: their stale cursors must not pin the
  // hub's trim watermark (live clients keepalive-ack well inside the
  // timeout). Dropping the address mapping too means a late riser simply
  // re-registers under a fresh id and is re-seeded.
  for (const auto removed_id : spectator_hub_.remove_idle(t, cfg_.spectator_idle_timeout)) {
    for (auto it = spectator_ids_.begin(); it != spectator_ids_.end();) {
      it = it->second == removed_id ? spectator_ids_.erase(it) : std::next(it);
    }
  }
  // Serve the snapshot only once frame 0 has executed. An observer who
  // joins during the handshake would otherwise get a snapshot labeled
  // frame -1, captured while the session can still renegotiate its lag
  // and before the first Transition — a frame this site never executed
  // or recorded. The join request stays pending; the next pump after
  // frame 0 answers it.
  if (spectator_hub_.wants_snapshot()) {
    if (rollback_ != nullptr) {
      // Rollback: the live machine state is speculative — seed observers
      // from the newest *confirmed* snapshot so their replica matches the
      // confirmed feed exactly.
      if (rollback_->confirmed_frames() > 0) {
        spectator_hub_.provide_snapshot(rollback_->confirmed_frames() - 1,
                                        rollback_->confirmed_state());
      }
    } else if (game_.frame() > 0) {
      // Called from the frame loop between Transitions: consistent state.
      game_.save_state_into(snapshot_scratch_);
      spectator_hub_.provide_snapshot(game_.frame() - 1, snapshot_scratch_);
    }
  }
  for (const auto& [addr, id] : spectator_ids_) {
    if (auto buf = spectator_hub_.make_message(id, t)) {
      spectator_socket_->send_to(addr, *buf);
    }
  }
}

bool RealtimeSession::handshake(std::string* error) {
  const Time deadline = now() + cfg_.handshake_timeout;
  while (!session_.running()) {
    if (stop_.load(std::memory_order_relaxed)) {
      if (error) *error = "stopped during handshake";
      return false;
    }
    if (session_.state() == SessionState::kFailed) {
      if (error) *error = session_.failure_reason();
      return false;
    }
    if (now() > deadline) {
      if (error) *error = "handshake timeout: no compatible peer responded";
      return false;
    }
    if (auto m = session_.poll(now())) {
      encode_message_into(*m, wire_scratch_);
      socket_.send(wire_scratch_);
    }
    // Answer observers that show up before the match starts (their
    // snapshot is deferred until frame 0 has executed, but join requests
    // must not be dropped on the floor).
    pump_spectators();
    socket_.wait_readable(milliseconds(5));
    drain();
  }
  // The ingest that flipped us to running may have queued a START (the
  // master answers the slave's HELLO with one) after this loop's poll
  // already ran; flush it now so the slave is not left waiting a full
  // HELLO round-trip for the mode/lag verdict.
  if (auto m = session_.poll(now())) {
    encode_message_into(*m, wire_scratch_);
    socket_.send(wire_scratch_);
  }
  return true;
}

bool RealtimeSession::run(std::string* error) {
  if (!socket_.valid()) {
    if (error) *error = "socket invalid: " + socket_.last_error();
    return false;
  }
  if (!handshake(error)) return false;
  apply_negotiated_lag();
  if (rollback_ != nullptr) return run_rollback(error);

  for (FrameNo frame = 0; frame < cfg_.frames; ++frame) {
    if (stop_.load(std::memory_order_relaxed)) {
      if (error) *error = "stopped";
      return false;
    }

    FrameRecord rec;
    rec.frame = frame;
    pacer_.begin_frame(now(), frame, peer_.remote_obs());  // step 5
    rec.begin_time = pacer_.current_frame_start();

    const InputWord local = site_ == 0 ? make_input(input_.input_for_frame(frame), 0)
                                       : make_input(0, input_.input_for_frame(frame));
    peer_.submit_local(frame, local);

    // SyncInput's blocking loop: flush on schedule, wake on datagrams.
    const Time sync_start = now();
    while (!peer_.ready()) {
      if (now() - sync_start > cfg_.stall_timeout) {
        if (error) *error = "stall timeout: peer or network failed";
        return false;
      }
      flush_if_due();
      const Dur until_flush = flush_clock_.next() - now();
      socket_.wait_readable(std::min<Dur>(std::max<Dur>(until_flush, 0), milliseconds(5)));
      drain();
    }
    rec.stall = now() - sync_start;
    rec.input_ready_time = now();

    const InputWord merged = peer_.pop();
    game_.step_frame(merged);  // step 8
    replay_.record(merged);
    if (replay_.keyframe_due()) replay_.record_keyframe(game_);
    spectator_hub_.on_frame(frame, merged);
    rec.state_hash = game_.state_digest(digest_version_);
    peer_.note_state_hash(frame, rec.state_hash);
    if (peer_.desync_detected()) {
      if (error) {
        *error = "desync detected at frame " + std::to_string(peer_.desync_frame()) +
                 ": replicas diverged (non-deterministic game?)";
      }
      return false;
    }
    if (hook_) hook_(game_, rec);
    rec.compute = now() - rec.input_ready_time;

    const Dur wait = pacer_.end_frame(now());  // step 10
    rec.wait = wait;
    timeline_.add(rec);

    // Sleep out the remainder, keeping the flush timer and receiver live.
    // poll() only has millisecond resolution and tends to overshoot, so
    // block for all but the last ~1.5 ms and spin-poll the rest — the
    // standard netplay pacing trick to hold 60 FPS on a real kernel.
    const Time resume_at = now() + wait;
    while (now() < resume_at) {
      flush_if_due();
      const Dur remain = resume_at - now();
      if (remain > milliseconds(3)) {
        socket_.wait_readable(remain - milliseconds(2));
      } else {
        socket_.wait_readable(0);  // nonblocking readability check
      }
      drain();
    }
    flush_if_due();
  }

  drain_spectators_post_game();
  return true;
}

void RealtimeSession::drain_spectators_post_game() {
  // Post-game spectator drain: without this, an observer mid-catch-up is
  // orphaned the moment our frame loop ends (its lost feed datagrams would
  // never be retransmitted).
  if (spectator_socket_ == nullptr) return;
  const Time grace_end = now() + cfg_.spectator_drain_grace;
  while (now() < grace_end && !stop_.load(std::memory_order_relaxed)) {
    pump_spectators();
    if (spectator_hub_.all_caught_up()) break;  // nobody waiting
    spectator_socket_->wait_readable(milliseconds(10));
  }
}

void RealtimeSession::record_confirmed() {
  for (; rb_recorded_ < rollback_->confirmed_frames(); ++rb_recorded_) {
    const InputWord merged = rollback_->confirmed_input(rb_recorded_);
    replay_.record(merged);
    spectator_hub_.on_frame(rb_recorded_, merged);
  }
  // Keyframes come from the confirmed snapshot only (the live machine is
  // speculative), so a rollback recording bisects over confirmed frames.
  if (rb_recorded_ > 0 && replay_.keyframe_due()) {
    replay_.record_keyframe_raw(rb_recorded_ - 1, rollback_->confirmed_digest(rb_recorded_ - 1),
                                rollback_->confirmed_state());
  }
}

bool RealtimeSession::run_rollback(std::string* error) {
  RollbackSession& rb = *rollback_;
  for (FrameNo frame = 0; frame < cfg_.frames; ++frame) {
    if (stop_.load(std::memory_order_relaxed)) {
      if (error) *error = "stopped";
      return false;
    }

    FrameRecord rec;
    rec.frame = frame;
    pacer_.begin_frame(now(), frame, rb.remote_obs());
    rec.begin_time = pacer_.current_frame_start();

    const InputWord local = site_ == 0 ? make_input(input_.input_for_frame(frame), 0)
                                       : make_input(0, input_.input_for_frame(frame));

    // Rollback's stall condition is not "remote input missing" — that is
    // predicted around — but "speculation hit the snapshot-ring bound":
    // the confirmed watermark fell window-2 frames behind, so advancing
    // once more would evict the restore target.
    const Time sync_start = now();
    while (!rb.can_advance()) {
      if (now() - sync_start > cfg_.stall_timeout) {
        if (error) *error = "stall timeout: peer or network failed";
        return false;
      }
      flush_if_due();
      const Dur until_flush = flush_clock_.next() - now();
      socket_.wait_readable(std::min<Dur>(std::max<Dur>(until_flush, 0), milliseconds(5)));
      drain();
      rb.reconcile();
    }
    rec.stall = now() - sync_start;
    rec.input_ready_time = now();

    const auto out = rb.advance_frame(local);
    // Speculative digest for now; backfilled with the canonical confirmed
    // digest after the confirmation drain below.
    rec.state_hash = out.digest;
    record_confirmed();
    if (rb.desync_detected()) {
      if (error) {
        *error = "desync detected at frame " + std::to_string(rb.desync_frame()) +
                 ": replicas diverged (non-deterministic game?)";
      }
      return false;
    }
    if (hook_) hook_(game_, rec);
    rec.compute = now() - rec.input_ready_time;

    const Dur wait = pacer_.end_frame(now());
    rec.wait = wait;
    timeline_.add(rec);

    // Sleep out the remainder (same pacing trick as the lockstep loop).
    const Time resume_at = now() + wait;
    while (now() < resume_at) {
      flush_if_due();
      const Dur remain = resume_at - now();
      if (remain > milliseconds(3)) {
        socket_.wait_readable(remain - milliseconds(2));
      } else {
        socket_.wait_readable(0);  // nonblocking readability check
      }
      drain();
      rb.reconcile();
    }
    flush_if_due();
  }

  // Confirmation drain: every executed frame must be confirmed against the
  // peer's actual inputs before the timelines/replay are canonical.
  const Time confirm_deadline = now() + cfg_.stall_timeout;
  while (rb.confirmed_frames() < cfg_.frames) {
    if (stop_.load(std::memory_order_relaxed) || now() > confirm_deadline) {
      if (error) *error = "rollback confirmation drain timed out";
      return false;
    }
    flush_if_due();
    socket_.wait_readable(milliseconds(2));
    drain();
    rb.reconcile();
    record_confirmed();
  }
  record_confirmed();
  if (rb.desync_detected()) {
    if (error) {
      *error = "desync detected at frame " + std::to_string(rb.desync_frame()) +
               ": replicas diverged (non-deterministic game?)";
    }
    return false;
  }
  // Backfill the timeline with confirmed digests: archived timelines (and
  // rtct_trace comparisons) always describe the canonical history.
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    timeline_.set_state_hash(i, rb.confirmed_digest(static_cast<FrameNo>(i)));
  }
  // Lame duck: the peer cannot finish confirming its own tail without our
  // inputs — keep flushing until it acked everything (bounded).
  const Time lame_end = now() + cfg_.spectator_drain_grace;
  while (!rb.fully_acked() && now() < lame_end &&
         !stop_.load(std::memory_order_relaxed)) {
    flush_if_due();
    socket_.wait_readable(milliseconds(5));
    drain();
  }
  drain_spectators_post_game();
  return true;
}

void RealtimeSession::export_metrics(MetricsRegistry& reg) const {
  if (rollback_ != nullptr) {
    rollback_->export_metrics(reg);
  } else {
    peer_.export_metrics(reg);
  }
  pacer_.export_metrics(reg);
  session_.export_metrics(reg);
  timeline_.export_metrics(reg);
  socket_.export_metrics(reg);
  reg.counter("session.flushes").set(flush_clock_.fires());
  reg.counter("session.flush_reanchors").set(flush_clock_.reanchors());
  reg.counter("session.dropped_unknown_sender").set(dropped_unknown_sender_);
  reg.gauge("spectator.host.count").set(static_cast<double>(spectator_ids_.size()));
  spectator_hub_.export_metrics(reg);
  // The stable per-observer-host aggregate names stay populated (fed from
  // the hub, identical semantics: counters sum across observers).
  const SpectatorHubStats& s = spectator_hub_.stats();
  reg.counter("spectator.host.join_requests_rcvd").set(s.join_requests_rcvd);
  reg.counter("spectator.host.snapshots_sent").set(s.snapshots_sent);
  reg.counter("spectator.host.feed_messages_sent").set(s.feed_messages_sent);
  reg.counter("spectator.host.inputs_fed").set(s.inputs_fed);
  reg.counter("spectator.host.acks_rcvd").set(s.acks_rcvd);
  reg.gauge("spectator.host.joined").set(static_cast<double>(spectator_hub_.joined_count()));
  reg.gauge("spectator.host.backlog").set(static_cast<double>(spectator_hub_.backlog_size()));
}

}  // namespace rtct::core
