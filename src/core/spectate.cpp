#include "src/core/spectate.h"

#include <algorithm>
#include <limits>

#include "src/common/telemetry.h"

namespace rtct::core {

// ---- SpectatorHost ----------------------------------------------------------

void SpectatorHost::on_frame(FrameNo frame, InputWord merged) {
  last_executed_ = frame;
  if (!snapshot_.has_value()) return;  // nobody watching yet
  const FrameNo expected = backlog_base_ + static_cast<FrameNo>(backlog_.size());
  if (frame == expected) {
    backlog_.push_back(merged);
  }
  // frame < expected: duplicate driver call, ignore. frame > expected can
  // not happen for a driver that reports every executed frame in order.
}

void SpectatorHost::ingest(const Message& msg) {
  if (const auto* join = std::get_if<JoinRequestMsg>(&msg)) {
    if (join->content_id != content_id_) return;  // wrong game, not ours
    ++stats_.join_requests_rcvd;
    if (!snapshot_.has_value()) wants_snapshot_ = true;
    // A re-request while we already hold a snapshot just means our
    // snapshot datagram was lost; make_message keeps resending it.
    return;
  }
  if (const auto* ack = std::get_if<FeedAckMsg>(&msg)) {
    ++stats_.acks_rcvd;
    if (ack->frame <= acked_frame_) return;
    acked_frame_ = ack->frame;
    if (snapshot_.has_value() && acked_frame_ >= snapshot_->frame) snapshot_acked_ = true;
    while (!backlog_.empty() && backlog_base_ <= acked_frame_) {
      backlog_.pop_front();
      ++backlog_base_;
    }
  }
}

void SpectatorHost::provide_snapshot(FrameNo frame, std::span<const std::uint8_t> state) {
  if (!snapshot_.has_value()) snapshot_.emplace();
  snapshot_->frame = frame;
  snapshot_->state.assign(state.begin(), state.end());  // reuses capacity
  snapshot_acked_ = false;
  wants_snapshot_ = false;
  backlog_base_ = frame + 1;
  backlog_.clear();
}

std::optional<Message> SpectatorHost::make_message(Time /*now*/) {
  if (!snapshot_.has_value()) return std::nullopt;
  if (!snapshot_acked_) {
    ++stats_.snapshots_sent;
    return Message{*snapshot_};  // resend until acked
  }

  if (backlog_.empty()) return std::nullopt;
  InputFeedMsg feed;
  feed.first_frame = backlog_base_;
  const auto count =
      std::min<std::size_t>(backlog_.size(), static_cast<std::size_t>(cfg_.max_inputs_per_message));
  feed.inputs.assign(backlog_.begin(), backlog_.begin() + static_cast<std::ptrdiff_t>(count));
  ++stats_.feed_messages_sent;
  stats_.inputs_fed += feed.inputs.size();
  return Message{feed};
}

void SpectatorHost::export_metrics(MetricsRegistry& reg) const {
  reg.counter("spectator.host.join_requests_rcvd").set(stats_.join_requests_rcvd);
  reg.counter("spectator.host.snapshots_sent").set(stats_.snapshots_sent);
  reg.counter("spectator.host.feed_messages_sent").set(stats_.feed_messages_sent);
  reg.counter("spectator.host.inputs_fed").set(stats_.inputs_fed);
  reg.counter("spectator.host.acks_rcvd").set(stats_.acks_rcvd);
  reg.gauge("spectator.host.joined").set(observer_joined() ? 1 : 0);
  reg.gauge("spectator.host.acked_frame").set(static_cast<double>(acked_frame_));
  reg.gauge("spectator.host.backlog").set(static_cast<double>(backlog_.size()));
}

// ---- SpectatorBroadcastHub --------------------------------------------------

void SpectatorBroadcastHub::InputRing::clear(FrameNo new_base) {
  head_ = 0;
  count_ = 0;
  base_ = new_base;
}

void SpectatorBroadcastHub::InputRing::push_back(InputWord w) {
  if (count_ == buf_.size()) {
    std::vector<InputWord> next(buf_.empty() ? 256 : buf_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    }
    buf_ = std::move(next);
    head_ = 0;
  }
  buf_[(head_ + count_) & (buf_.size() - 1)] = w;
  ++count_;
}

void SpectatorBroadcastHub::InputRing::pop_front() {
  head_ = (head_ + 1) & (buf_.size() - 1);
  --count_;
  ++base_;
}

std::size_t SpectatorBroadcastHub::max_backlog() const {
  // Cap on feed kept only for catch-up: a joiner further behind than this
  // is given a fresh snapshot instead of a marathon of feed windows.
  return static_cast<std::size_t>(std::max(4 * cfg_.max_inputs_per_message, 512));
}

SpectatorBroadcastHub::ObserverId SpectatorBroadcastHub::add_observer(Time now) {
  observers_.push_back(Observer{.active = true, .last_heard = now});
  ++active_count_;
  ++stats_.observers_added;
  return static_cast<ObserverId>(observers_.size() - 1);
}

void SpectatorBroadcastHub::remove_observer(ObserverId id) {
  if (id >= observers_.size() || !observers_[id].active) return;
  observers_[id].active = false;
  --active_count_;
  ++stats_.observers_removed;
  trim_ring();  // its cursor no longer pins the ring
}

void SpectatorBroadcastHub::on_frame(FrameNo frame, InputWord merged) {
  last_executed_ = frame;
  if (snapshot_wire_ == nullptr) return;  // nobody ever joined yet
  if (frame == ring_.end()) {
    ring_.push_back(merged);
    feed_cache_.clear();  // existing windows may extend now
  }
  // frame < end: duplicate driver call, ignore. frame > end cannot happen
  // for a driver that reports every executed frame in order.
  trim_ring();
}

std::vector<SpectatorBroadcastHub::ObserverId> SpectatorBroadcastHub::remove_idle(
    Time now, Dur timeout) {
  std::vector<ObserverId> removed;
  for (std::size_t i = 0; i < observers_.size(); ++i) {
    Observer& o = observers_[i];
    if (!o.active || now - o.last_heard <= timeout) continue;
    o.active = false;
    --active_count_;
    ++stats_.observers_removed;
    ++stats_.observers_idle_removed;
    removed.push_back(static_cast<ObserverId>(i));
  }
  // One re-derivation after the batch: a dead cursor that was the slowest
  // reader no longer pins the trim watermark.
  if (!removed.empty()) trim_ring();
  return removed;
}

void SpectatorBroadcastHub::ingest(ObserverId id, const Message& msg, Time now) {
  if (id >= observers_.size() || !observers_[id].active) return;
  Observer& obs = observers_[id];
  obs.last_heard = now;  // any datagram proves the endpoint is alive
  if (const auto* join = std::get_if<JoinRequestMsg>(&msg)) {
    if (join->content_id != content_id_) return;  // wrong game, not ours
    ++stats_.join_requests_rcvd;
    // A fresh snapshot is needed when none exists (or idle trimming
    // retired it), or when this joiner would have to replay more than a
    // full backlog of feed to catch up from the shared one.
    const FrameNo behind = ring_.end() - snapshot_frame_ - 1;
    if (!snapshot_usable() ||
        (!obs.ack_ever && behind > static_cast<FrameNo>(max_backlog()))) {
      wants_snapshot_ = true;
    }
    return;
  }
  if (const auto* ack = std::get_if<FeedAckMsg>(&msg)) {
    ++stats_.acks_rcvd;
    if (obs.ack_ever && ack->frame <= obs.acked) return;
    // The first ack pins this observer to the feed path permanently: a
    // joined SpectatorClient ignores (but re-acks) every later snapshot,
    // so serving it one would never advance it.
    obs.ack_ever = true;
    obs.acked = std::max(obs.acked, ack->frame);
    trim_ring();
  }
}

void SpectatorBroadcastHub::trim_ring() {
  // Frames at or below every cursor's floor can never be served again. The
  // snapshot frame itself is a floor: never-acked observers and future
  // joiners replay from snapshot_frame_ + 1.
  constexpr FrameNo kInf = std::numeric_limits<FrameNo>::max();
  FrameNo floor = snapshot_usable() ? snapshot_frame_ : kInf;
  for (const Observer& o : observers_) {
    if (o.active && o.ack_ever) floor = std::min(floor, o.acked);
  }
  while (ring_.size() > 0 && ring_.base() <= floor) ring_.pop_front();

  // Bound what is kept only for future joiners: when the ring outgrows the
  // backlog cap and no active cursor pins it, retire the snapshot (the
  // next join triggers a fresh one) instead of holding an unbounded tail.
  if (ring_.size() > max_backlog()) {
    FrameNo ack_floor = kInf;
    for (const Observer& o : observers_) {
      if (!o.active) continue;
      ack_floor = std::min(ack_floor, o.ack_ever ? o.acked : snapshot_frame_);
    }
    FrameNo new_base = ring_.end() - static_cast<FrameNo>(max_backlog());
    if (ack_floor != kInf && ack_floor + 1 < new_base) new_base = ack_floor + 1;
    while (ring_.size() > 0 && ring_.base() < new_base) ring_.pop_front();
  }
}

void SpectatorBroadcastHub::provide_snapshot(FrameNo frame,
                                             std::span<const std::uint8_t> state) {
  auto buf = std::make_shared<std::vector<std::uint8_t>>();
  encode_snapshot_into(frame, state, *buf);
  ++stats_.snapshot_encodes;
  stats_.bytes_encoded += buf->size();
  const bool first = snapshot_wire_ == nullptr;
  snapshot_wire_ = Buffer(std::move(buf));
  snapshot_frame_ = frame;
  wants_snapshot_ = false;
  // First snapshot starts the shared ring; a refresh keeps it (acked
  // observers are still replaying out of it) unless recording lapsed.
  if (first || ring_.end() <= frame) ring_.clear(frame + 1);
  feed_cache_.clear();
  trim_ring();
}

SpectatorBroadcastHub::Buffer SpectatorBroadcastHub::make_message(ObserverId id,
                                                                  Time /*now*/) {
  if (id >= observers_.size() || !observers_[id].active) return nullptr;
  if (snapshot_wire_ == nullptr) return nullptr;
  Observer& obs = observers_[id];

  // Pre-ack observers get the shared snapshot. A cursor below the ring
  // base (possible only through a forged/rogue ack) is also re-seeded with
  // the snapshot: the client re-acks its real position and recovers.
  if (!obs.ack_ever || obs.acked + 1 < ring_.base()) {
    if (!snapshot_usable()) return nullptr;  // waiting for a fresh one
    ++stats_.snapshots_sent;
    stats_.bytes_sent += snapshot_wire_->size();
    return snapshot_wire_;
  }

  const FrameNo next = obs.acked + 1;
  if (next >= ring_.end()) return nullptr;  // caught up
  const auto count = std::min<std::size_t>(
      static_cast<std::size_t>(ring_.end() - next),
      static_cast<std::size_t>(cfg_.max_inputs_per_message));

  Buffer bytes;
  for (const FeedCacheEntry& e : feed_cache_) {
    if (e.first == next && e.count == count) {
      bytes = e.bytes;
      break;
    }
  }
  if (bytes == nullptr) {
    InputFeedMsg feed;
    feed.first_frame = next;
    feed.inputs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      feed.inputs.push_back(ring_.at(next + static_cast<FrameNo>(i)));
    }
    auto encoded = std::make_shared<std::vector<std::uint8_t>>();
    encode_message_into(Message{std::move(feed)}, *encoded);
    bytes = Buffer(std::move(encoded));
    feed_cache_.push_back(FeedCacheEntry{next, count, bytes});
    ++stats_.feed_encodes;
    stats_.bytes_encoded += bytes->size();
  }
  ++stats_.feed_messages_sent;
  stats_.inputs_fed += count;
  stats_.bytes_sent += bytes->size();
  return bytes;
}

bool SpectatorBroadcastHub::all_caught_up() const {
  for (const Observer& o : observers_) {
    if (!o.active) continue;
    if (!o.ack_ever || o.acked < ring_.end() - 1) return false;
  }
  return true;
}

std::size_t SpectatorBroadcastHub::joined_count() const {
  std::size_t n = 0;
  for (const Observer& o : observers_) n += (o.active && o.ack_ever) ? 1 : 0;
  return n;
}

bool SpectatorBroadcastHub::observer_joined(ObserverId id) const {
  return id < observers_.size() && observers_[id].active && observers_[id].ack_ever;
}

FrameNo SpectatorBroadcastHub::acked_frame(ObserverId id) const {
  return id < observers_.size() ? observers_[id].acked : -2;
}

void SpectatorBroadcastHub::export_metrics(MetricsRegistry& reg) const {
  reg.counter("spectator.hub.join_requests_rcvd").set(stats_.join_requests_rcvd);
  reg.counter("spectator.hub.snapshots_sent").set(stats_.snapshots_sent);
  reg.counter("spectator.hub.feed_messages_sent").set(stats_.feed_messages_sent);
  reg.counter("spectator.hub.inputs_fed").set(stats_.inputs_fed);
  reg.counter("spectator.hub.acks_rcvd").set(stats_.acks_rcvd);
  reg.counter("spectator.hub.snapshot_encodes").set(stats_.snapshot_encodes);
  reg.counter("spectator.hub.feed_encodes").set(stats_.feed_encodes);
  reg.counter("spectator.hub.bytes_encoded").set(stats_.bytes_encoded);
  reg.counter("spectator.hub.bytes_sent").set(stats_.bytes_sent);
  reg.counter("spectator.hub.observers_added").set(stats_.observers_added);
  reg.counter("spectator.hub.observers_removed").set(stats_.observers_removed);
  reg.counter("spectator.hub.observers_idle_removed").set(stats_.observers_idle_removed);
  reg.gauge("spectator.hub.observers").set(static_cast<double>(active_count_));
  reg.gauge("spectator.hub.joined").set(static_cast<double>(joined_count()));
  reg.gauge("spectator.hub.backlog").set(static_cast<double>(ring_.size()));
  reg.gauge("spectator.hub.snapshot_frame").set(static_cast<double>(snapshot_frame_));
}

// ---- SpectatorClient ---------------------------------------------------------

std::optional<Message> SpectatorClient::make_message(Time now) {
  if (!joined_) {
    if (now < next_join_) return std::nullopt;
    next_join_ = now + milliseconds(50);
    ++stats_.join_requests_sent;
    return Message{JoinRequestMsg{game_.content_id()}};
  }
  if (ack_dirty_ || now >= next_keepalive_) {
    // Keepalive: a caught-up observer re-acks its position periodically so
    // the host's idle reaper (remove_idle) never mistakes "quiet because
    // caught up" for "gone".
    ack_dirty_ = false;
    next_keepalive_ = now + kKeepaliveInterval;
    ++stats_.acks_sent;
    return Message{FeedAckMsg{applied_frame_}};
  }
  return std::nullopt;
}

void SpectatorClient::ingest(const Message& msg) {
  if (const auto* snap = std::get_if<SnapshotMsg>(&msg)) {
    ++stats_.snapshots_rcvd;
    if (joined_) {
      // Duplicate snapshot (our ack was lost): just re-ack.
      ack_dirty_ = true;
      return;
    }
    // The wire decoder already rejects pre-frame-0 snapshots; this guards
    // the in-process path too — an observer must never adopt state from
    // before the session's first frame.
    if (snap->frame < 0) return;
    if (!game_.load_state(snap->state)) return;  // corrupt — keep requesting
    joined_ = true;
    applied_frame_ = snap->frame;
    pending_base_ = snap->frame + 1;
    pending_.clear();
    ack_dirty_ = true;
    return;
  }
  if (const auto* feed = std::get_if<InputFeedMsg>(&msg)) {
    if (!joined_) return;  // retransmission will come after the snapshot
    ++stats_.feed_messages_rcvd;
    for (std::size_t i = 0; i < feed->inputs.size(); ++i) {
      const FrameNo f = feed->first_frame + static_cast<FrameNo>(i);
      const FrameNo idx = f - pending_base_;
      if (idx < 0) {
        ++stats_.stale_inputs_rcvd;
        ack_dirty_ = true;  // stale retransmission: re-ack so the host trims
        continue;
      }
      if (static_cast<std::size_t>(idx) >= pending_.size()) {
        pending_.resize(static_cast<std::size_t>(idx) + 1);
      }
      pending_[static_cast<std::size_t>(idx)] = feed->inputs[i];
    }
  }
}

bool SpectatorClient::step_one() {
  if (pending_.empty() || !pending_.front().has_value()) return false;
  game_.step_frame(*pending_.front());
  pending_.pop_front();
  ++pending_base_;
  ++applied_frame_;
  ack_dirty_ = true;
  return true;
}

int SpectatorClient::step_available() {
  int advanced = 0;
  while (step_one()) ++advanced;
  return advanced;
}

void SpectatorClient::export_metrics(MetricsRegistry& reg) const {
  reg.counter("spectator.client.join_requests_sent").set(stats_.join_requests_sent);
  reg.counter("spectator.client.snapshots_rcvd").set(stats_.snapshots_rcvd);
  reg.counter("spectator.client.feed_messages_rcvd").set(stats_.feed_messages_rcvd);
  reg.counter("spectator.client.stale_inputs_rcvd").set(stats_.stale_inputs_rcvd);
  reg.counter("spectator.client.acks_sent").set(stats_.acks_sent);
  reg.gauge("spectator.client.joined").set(joined_ ? 1 : 0);
  reg.gauge("spectator.client.applied_frame").set(static_cast<double>(applied_frame_));
  reg.gauge("spectator.client.pending").set(static_cast<double>(pending_.size()));
}

}  // namespace rtct::core
