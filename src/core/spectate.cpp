#include "src/core/spectate.h"

#include <algorithm>

#include "src/common/telemetry.h"

namespace rtct::core {

// ---- SpectatorHost ----------------------------------------------------------

void SpectatorHost::on_frame(FrameNo frame, InputWord merged) {
  last_executed_ = frame;
  if (!snapshot_.has_value()) return;  // nobody watching yet
  const FrameNo expected = backlog_base_ + static_cast<FrameNo>(backlog_.size());
  if (frame == expected) {
    backlog_.push_back(merged);
  }
  // frame < expected: duplicate driver call, ignore. frame > expected can
  // not happen for a driver that reports every executed frame in order.
}

void SpectatorHost::ingest(const Message& msg) {
  if (const auto* join = std::get_if<JoinRequestMsg>(&msg)) {
    if (join->content_id != content_id_) return;  // wrong game, not ours
    ++stats_.join_requests_rcvd;
    if (!snapshot_.has_value()) wants_snapshot_ = true;
    // A re-request while we already hold a snapshot just means our
    // snapshot datagram was lost; make_message keeps resending it.
    return;
  }
  if (const auto* ack = std::get_if<FeedAckMsg>(&msg)) {
    ++stats_.acks_rcvd;
    if (ack->frame <= acked_frame_) return;
    acked_frame_ = ack->frame;
    if (snapshot_.has_value() && acked_frame_ >= snapshot_->frame) snapshot_acked_ = true;
    while (!backlog_.empty() && backlog_base_ <= acked_frame_) {
      backlog_.pop_front();
      ++backlog_base_;
    }
  }
}

void SpectatorHost::provide_snapshot(FrameNo frame, std::vector<std::uint8_t> state) {
  SnapshotMsg snap;
  snap.frame = frame;
  snap.state = std::move(state);
  snapshot_ = std::move(snap);
  snapshot_acked_ = false;
  wants_snapshot_ = false;
  backlog_base_ = frame + 1;
  backlog_.clear();
}

std::optional<Message> SpectatorHost::make_message(Time /*now*/) {
  if (!snapshot_.has_value()) return std::nullopt;
  if (!snapshot_acked_) {
    ++stats_.snapshots_sent;
    return Message{*snapshot_};  // resend until acked
  }

  if (backlog_.empty()) return std::nullopt;
  InputFeedMsg feed;
  feed.first_frame = backlog_base_;
  const auto count =
      std::min<std::size_t>(backlog_.size(), static_cast<std::size_t>(cfg_.max_inputs_per_message));
  feed.inputs.assign(backlog_.begin(), backlog_.begin() + static_cast<std::ptrdiff_t>(count));
  ++stats_.feed_messages_sent;
  stats_.inputs_fed += feed.inputs.size();
  return Message{feed};
}

void SpectatorHost::export_metrics(MetricsRegistry& reg) const {
  reg.counter("spectator.host.join_requests_rcvd").set(stats_.join_requests_rcvd);
  reg.counter("spectator.host.snapshots_sent").set(stats_.snapshots_sent);
  reg.counter("spectator.host.feed_messages_sent").set(stats_.feed_messages_sent);
  reg.counter("spectator.host.inputs_fed").set(stats_.inputs_fed);
  reg.counter("spectator.host.acks_rcvd").set(stats_.acks_rcvd);
  reg.gauge("spectator.host.joined").set(observer_joined() ? 1 : 0);
  reg.gauge("spectator.host.acked_frame").set(static_cast<double>(acked_frame_));
  reg.gauge("spectator.host.backlog").set(static_cast<double>(backlog_.size()));
}

// ---- SpectatorClient ---------------------------------------------------------

std::optional<Message> SpectatorClient::make_message(Time now) {
  if (!joined_) {
    if (now < next_join_) return std::nullopt;
    next_join_ = now + milliseconds(50);
    ++stats_.join_requests_sent;
    return Message{JoinRequestMsg{game_.content_id()}};
  }
  if (ack_dirty_) {
    ack_dirty_ = false;
    ++stats_.acks_sent;
    return Message{FeedAckMsg{applied_frame_}};
  }
  return std::nullopt;
}

void SpectatorClient::ingest(const Message& msg) {
  if (const auto* snap = std::get_if<SnapshotMsg>(&msg)) {
    ++stats_.snapshots_rcvd;
    if (joined_) {
      // Duplicate snapshot (our ack was lost): just re-ack.
      ack_dirty_ = true;
      return;
    }
    // The wire decoder already rejects pre-frame-0 snapshots; this guards
    // the in-process path too — an observer must never adopt state from
    // before the session's first frame.
    if (snap->frame < 0) return;
    if (!game_.load_state(snap->state)) return;  // corrupt — keep requesting
    joined_ = true;
    applied_frame_ = snap->frame;
    pending_base_ = snap->frame + 1;
    pending_.clear();
    ack_dirty_ = true;
    return;
  }
  if (const auto* feed = std::get_if<InputFeedMsg>(&msg)) {
    if (!joined_) return;  // retransmission will come after the snapshot
    ++stats_.feed_messages_rcvd;
    for (std::size_t i = 0; i < feed->inputs.size(); ++i) {
      const FrameNo f = feed->first_frame + static_cast<FrameNo>(i);
      const FrameNo idx = f - pending_base_;
      if (idx < 0) {
        ++stats_.stale_inputs_rcvd;
        ack_dirty_ = true;  // stale retransmission: re-ack so the host trims
        continue;
      }
      if (static_cast<std::size_t>(idx) >= pending_.size()) {
        pending_.resize(static_cast<std::size_t>(idx) + 1);
      }
      pending_[static_cast<std::size_t>(idx)] = feed->inputs[i];
    }
  }
}

bool SpectatorClient::step_one() {
  if (pending_.empty() || !pending_.front().has_value()) return false;
  game_.step_frame(*pending_.front());
  pending_.pop_front();
  ++pending_base_;
  ++applied_frame_;
  ack_dirty_ = true;
  return true;
}

int SpectatorClient::step_available() {
  int advanced = 0;
  while (step_one()) ++advanced;
  return advanced;
}

void SpectatorClient::export_metrics(MetricsRegistry& reg) const {
  reg.counter("spectator.client.join_requests_sent").set(stats_.join_requests_sent);
  reg.counter("spectator.client.snapshots_rcvd").set(stats_.snapshots_rcvd);
  reg.counter("spectator.client.feed_messages_rcvd").set(stats_.feed_messages_rcvd);
  reg.counter("spectator.client.stale_inputs_rcvd").set(stats_.stale_inputs_rcvd);
  reg.counter("spectator.client.acks_sent").set(stats_.acks_sent);
  reg.gauge("spectator.client.joined").set(joined_ ? 1 : 0);
  reg.gauge("spectator.client.applied_frame").set(static_cast<double>(applied_frame_));
  reg.gauge("spectator.client.pending").set(static_cast<double>(pending_.size()));
}

}  // namespace rtct::core
