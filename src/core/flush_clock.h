// Periodic-deadline scheduler for the send-flush loop.
//
// The naive `next = now + period` on every fire drifts: each firing is late
// by however long the caller took to get around to checking, and the error
// accumulates — a 16 ms flush period observed every ~1 ms fires ~6% less
// often than configured, starving the redundancy tail. The fix is catch-up
// scheduling (`next += period`), anchored to the original cadence. The one
// hazard of pure catch-up is a long stall (debugger, OS preemption): the
// clock would then fire back-to-back until it caught up, bursting packets.
// So after a stall longer than one full period we re-anchor instead.
#pragma once

#include <cstdint>

#include "src/common/time.h"

namespace rtct::core {

class FlushClock {
 public:
  explicit FlushClock(Dur period) : period_(period) {}

  /// True when a flush is due; advances the schedule. Fires at most once
  /// per call. The first call always fires and anchors the cadence.
  bool due(Time now) {
    if (next_ == kNever) {
      next_ = now + period_;
      ++fires_;
      return true;
    }
    if (now < next_) return false;
    next_ += period_;
    if (now > next_) {
      // Stalled for more than a whole period: re-anchor rather than
      // burst-firing to catch up. A stall of *exactly* one period keeps
      // the catch-up schedule (now == next_): the next call fires once
      // immediately and the cadence is preserved with no burst.
      next_ = now + period_;
      ++reanchors_;
    }
    ++fires_;
    return true;
  }

  [[nodiscard]] Dur period() const { return period_; }
  [[nodiscard]] Time next() const { return next_; }
  [[nodiscard]] std::uint64_t fires() const { return fires_; }
  [[nodiscard]] std::uint64_t reanchors() const { return reanchors_; }

 private:
  static constexpr Time kNever = INT64_MIN;

  Dur period_;
  Time next_ = kNever;
  std::uint64_t fires_ = 0;
  std::uint64_t reanchors_ = 0;
};

}  // namespace rtct::core
