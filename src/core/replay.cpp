#include "src/core/replay.h"

#include <cstdio>
#include <cstring>

#include "src/common/bytes.h"
#include "src/common/hash.h"

namespace rtct::core {

namespace {
constexpr std::uint8_t kMagic[8] = {'R', 'T', 'C', 'T', 'R', 'P', 'L', '1'};
constexpr std::uint32_t kReplayVersion = 1;
constexpr std::uint32_t kMaxReplayFrames = 1u << 24;  // ~77 hours at 60 FPS
}  // namespace

std::vector<std::uint8_t> Replay::serialize() const {
  std::vector<std::uint8_t> out;
  serialize_into(out);
  return out;
}

void Replay::serialize_into(std::vector<std::uint8_t>& out) const {
  out.reserve(inputs_.size() * 2 + 64);
  ByteWriter w(std::move(out));
  // Byte-wise append: GCC 12's -Wstringop-overflow misfires on an 8-byte
  // insert into a freshly-reserved vector here.
  for (std::uint8_t b : kMagic) w.u8(b);
  w.u32(kReplayVersion);
  w.u64(content_id_);
  w.u16(static_cast<std::uint16_t>(cfps_));
  w.u16(static_cast<std::uint16_t>(buf_frames_));
  w.u32(static_cast<std::uint32_t>(inputs_.size()));
  for (InputWord i : inputs_) w.u16(i);
  w.u64(fnv1a64(w.data()));
  out = w.take();
}

std::optional<Replay> Replay::parse(std::span<const std::uint8_t> data) {
  if (data.size() < 8 + 4 + 8 + 2 + 2 + 4 + 8) return std::nullopt;
  ByteReader r(data);
  const auto magic = r.bytes(8);
  if (std::memcmp(magic.data(), kMagic, 8) != 0) return std::nullopt;
  if (r.u32() != kReplayVersion) return std::nullopt;

  Replay out;
  out.content_id_ = r.u64();
  out.cfps_ = r.u16();
  out.buf_frames_ = r.u16();
  const std::uint32_t n = r.u32();
  if (n > kMaxReplayFrames) return std::nullopt;
  out.inputs_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.inputs_.push_back(r.u16());
  if (!r.ok() || r.remaining() != 8) return std::nullopt;
  if (r.u64() != fnv1a64(data.subspan(0, data.size() - 8))) return std::nullopt;
  return out;
}

bool Replay::apply(emu::IDeterministicGame& game,
                   const std::function<void(FrameNo, std::uint64_t)>& per_frame,
                   int digest_version) const {
  if (game.content_id() != content_id_) return false;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    game.step_frame(inputs_[i]);
    if (per_frame) per_frame(static_cast<FrameNo>(i), game.state_digest(digest_version));
  }
  return true;
}

bool Replay::save_file(const std::string& path) const {
  const auto bytes = serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

std::optional<Replay> Replay::load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> data;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.insert(data.end(), buf, buf + n);
  std::fclose(f);
  return parse(data);
}

}  // namespace rtct::core
