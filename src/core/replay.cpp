#include "src/core/replay.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/common/bytes.h"
#include "src/common/hash.h"

namespace rtct::core {

namespace {
constexpr std::uint8_t kMagicV1[8] = {'R', 'T', 'C', 'T', 'R', 'P', 'L', '1'};
constexpr std::uint8_t kMagicV2[8] = {'R', 'T', 'C', 'T', 'R', 'P', 'L', '2'};
constexpr std::uint32_t kMaxReplayFrames = 1u << 24;  // ~77 hours at 60 FPS
/// Cap on one embedded snapshot; matches the wire SNAPSHOT size cap (the
/// AC16 machine state is ~33 KiB, so this is generous headroom, not a
/// limit any honest writer approaches).
constexpr std::uint32_t kMaxKeyframeState = 1u << 20;
constexpr std::size_t kCrcLen = 8;
}  // namespace

void Replay::record_keyframe(const emu::IDeterministicGame& game) {
  ReplayKeyframe kf;
  kf.frame = frames() - 1;
  kf.digest = game.state_digest(digest_version_);
  game.save_state_into(kf.state);
  keyframes_.push_back(std::move(kf));
}

void Replay::record_keyframe_raw(FrameNo frame, std::uint64_t digest,
                                 std::span<const std::uint8_t> state) {
  ReplayKeyframe kf;
  kf.frame = frame;
  kf.digest = digest;
  kf.state.assign(state.begin(), state.end());
  keyframes_.push_back(std::move(kf));
}

std::vector<std::uint8_t> Replay::serialize() const {
  std::vector<std::uint8_t> out;
  serialize_into(out);
  return out;
}

void Replay::serialize_into(std::vector<std::uint8_t>& out) const {
  std::size_t kf_bytes = 0;
  for (const ReplayKeyframe& kf : keyframes_) kf_bytes += 16 + kf.state.size();
  out.reserve(inputs_.size() * 2 + kf_bytes + game_name_.size() + 64);
  const bool v2 = container_version() == 2;
  ByteWriter w(std::move(out));
  // Byte-wise append: GCC 12's -Wstringop-overflow misfires on an 8-byte
  // insert into a freshly-reserved vector here.
  for (std::uint8_t b : v2 ? kMagicV2 : kMagicV1) w.u8(b);
  w.u32(v2 ? 2 : 1);
  w.u64(content_id_);
  w.u16(static_cast<std::uint16_t>(cfps_));
  w.u16(static_cast<std::uint16_t>(buf_frames_));
  if (v2) {
    w.u8(static_cast<std::uint8_t>(digest_version_));
    w.u32(static_cast<std::uint32_t>(keyframe_interval_));
  }
  w.u32(static_cast<std::uint32_t>(inputs_.size()));
  for (InputWord i : inputs_) w.u16(i);
  if (v2) {
    w.u32(static_cast<std::uint32_t>(keyframes_.size()));
    for (const ReplayKeyframe& kf : keyframes_) {
      w.u32(static_cast<std::uint32_t>(kf.frame));
      w.u64(kf.digest);
      w.u32(static_cast<std::uint32_t>(kf.state.size()));
      w.bytes(kf.state);
    }
  }
  // Optional trailing section: the qualified game name. Omitted when
  // unknown, so a name-less Replay round-trips byte-identically with the
  // pre-field layout.
  if (!game_name_.empty() && game_name_.size() <= 255) {
    w.u8(static_cast<std::uint8_t>(game_name_.size()));
    for (char c : game_name_) w.u8(static_cast<std::uint8_t>(c));
  }
  w.u64(fnv1a64(w.data()));
  out = w.take();
}

std::optional<Replay> Replay::parse(std::span<const std::uint8_t> data) {
  if (data.size() < 8 + 4 + 8 + 2 + 2 + 4 + kCrcLen) return std::nullopt;
  ByteReader r(data);
  const auto magic = r.bytes(8);
  const bool v2 = std::memcmp(magic.data(), kMagicV2, 8) == 0;
  if (!v2 && std::memcmp(magic.data(), kMagicV1, 8) != 0) return std::nullopt;
  // The magic and the version field must agree — a v1/v2 cross-graft is a
  // corrupt or forged file, not a negotiable one.
  if (r.u32() != (v2 ? 2u : 1u)) return std::nullopt;
  // Verify the checksum up front: everything after this point trusts the
  // declared counts only against the *remaining length*, and the trailer
  // makes any in-body bit flip a clean rejection.
  if (fnv1a64(data.subspan(0, data.size() - kCrcLen)) !=
      [&] {
        std::uint64_t crc = 0;
        std::memcpy(&crc, data.data() + data.size() - kCrcLen, kCrcLen);
        return crc;
      }()) {
    return std::nullopt;
  }

  Replay out;
  out.content_id_ = r.u64();
  out.cfps_ = r.u16();
  out.buf_frames_ = r.u16();
  out.digest_version_ = 1;
  out.keyframe_interval_ = 0;
  if (v2) {
    const std::uint8_t dv = r.u8();
    if (dv != 1 && dv != 2) return std::nullopt;
    out.digest_version_ = dv;
    const std::uint32_t interval = r.u32();
    // v2 without an interval is a contradiction (a writer with no
    // keyframe policy emits v1); interval=0 would also break the seek
    // cost contract, so it is rejected outright.
    if (interval == 0 || interval > kMaxReplayFrames) return std::nullopt;
    out.keyframe_interval_ = static_cast<int>(interval);
  }
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxReplayFrames) return std::nullopt;
  // OOM guard: the declared frame count must fit the payload that is
  // actually present — checked BEFORE the reserve, so a forged count
  // cannot make the parser allocate gigabytes. v1 payloads must match
  // exactly; v2 still has the keyframe table to account for.
  const std::size_t inputs_bytes = std::size_t{n} * 2;
  if (v2) {
    if (r.remaining() < inputs_bytes + 4 + kCrcLen) return std::nullopt;
  } else {
    // v1 may carry the optional game-name trailer after the inputs.
    if (r.remaining() < inputs_bytes + kCrcLen) return std::nullopt;
  }
  out.inputs_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.inputs_.push_back(r.u16());

  if (v2) {
    const std::uint32_t kn = r.u32();
    // Same guard for the keyframe table: 16 bytes of fixed fields per
    // entry must be present before anything is reserved.
    if (!r.ok() || kn > kMaxReplayFrames ||
        r.remaining() < std::size_t{kn} * 16 + kCrcLen) {
      return std::nullopt;
    }
    out.keyframes_.reserve(kn);
    FrameNo prev = -1;
    for (std::uint32_t i = 0; i < kn; ++i) {
      ReplayKeyframe kf;
      kf.frame = r.u32();
      kf.digest = r.u64();
      const std::uint32_t len = r.u32();
      if (!r.ok() || len > kMaxKeyframeState || r.remaining() < len + kCrcLen) {
        return std::nullopt;
      }
      // Keyframes must be strictly increasing and inside the recording —
      // a keyframe past the frame count can never be reached by seek and
      // marks a truncated/forged input table.
      if (kf.frame <= prev || kf.frame >= static_cast<FrameNo>(n)) return std::nullopt;
      prev = kf.frame;
      const auto state = r.bytes(len);
      kf.state.assign(state.begin(), state.end());
      out.keyframes_.push_back(std::move(kf));
    }
  }
  // Optional game-name trailer: absent in pre-field recordings (only the
  // CRC remains), else exactly u8 len + len bytes before the CRC.
  if (r.ok() && r.remaining() > kCrcLen) {
    const std::uint8_t name_len = r.u8();
    if (name_len == 0 || r.remaining() != name_len + kCrcLen) return std::nullopt;
    const auto name = r.bytes(name_len);
    out.game_name_.assign(name.begin(), name.end());
  }
  if (!r.ok() || r.remaining() != kCrcLen) return std::nullopt;
  (void)r.u64();  // checksum — already verified above
  return out;
}

bool Replay::apply(emu::IDeterministicGame& game,
                   const std::function<void(FrameNo, std::uint64_t)>& per_frame,
                   int digest_version) const {
  if (game.content_id() != content_id_) return false;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    game.step_frame(inputs_[i]);
    if (per_frame) per_frame(static_cast<FrameNo>(i), game.state_digest(digest_version));
  }
  return true;
}

std::optional<std::uint64_t> Replay::seek(emu::IDeterministicGame& game, FrameNo frame,
                                          int digest_version, SeekStats* stats) const {
  if (game.content_id() != content_id_) return std::nullopt;
  if (frame < 0 || frame >= frames()) return std::nullopt;
  if (digest_version == 0) digest_version = digest_version_;

  // Nearest keyframe at or before the target (keyframes_ is sorted).
  const auto it = std::upper_bound(
      keyframes_.begin(), keyframes_.end(), frame,
      [](FrameNo f, const ReplayKeyframe& kf) { return f < kf.frame; });
  const ReplayKeyframe* kf = it == keyframes_.begin() ? nullptr : &*(it - 1);

  FrameNo at;  // frame the machine now sits on (-1 = genesis)
  if (kf != nullptr) {
    if (!game.load_state(kf->state)) return std::nullopt;
    // Integrity check: the restored state must reproduce the digest the
    // recorder embedded — catches keyframe corruption that a fixed-up
    // checksum would otherwise smuggle past parse().
    if (game.state_digest(digest_version_) != kf->digest) return std::nullopt;
    at = kf->frame;
  } else {
    game.reset();
    at = -1;
  }
  if (stats != nullptr) {
    stats->keyframe = kf != nullptr ? kf->frame : -1;
    stats->resimulated = frame - at;
  }
  for (FrameNo f = at + 1; f <= frame; ++f) {
    game.step_frame(inputs_[static_cast<std::size_t>(f)]);
  }
  return game.state_digest(digest_version);
}

Replay Replay::branch(FrameNo frame) const {
  Replay out;
  out.content_id_ = content_id_;
  out.cfps_ = cfps_;
  out.buf_frames_ = buf_frames_;
  out.digest_version_ = digest_version_;
  out.keyframe_interval_ = keyframe_interval_;
  out.game_name_ = game_name_;
  const FrameNo keep = std::min<FrameNo>(frame, frames() - 1);
  if (keep < 0) return out;
  out.inputs_.assign(inputs_.begin(), inputs_.begin() + static_cast<std::ptrdiff_t>(keep) + 1);
  for (const ReplayKeyframe& kf : keyframes_) {
    if (kf.frame <= keep) out.keyframes_.push_back(kf);
  }
  return out;
}

bool Replay::save_file(const std::string& path) const {
  const auto bytes = serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

std::optional<Replay> Replay::load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> data;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.insert(data.end(), buf, buf + n);
  std::fclose(f);
  return parse(data);
}

}  // namespace rtct::core
