#include "src/core/session.h"

#include <sstream>

namespace rtct::core {

SessionControl::SessionControl(SiteId my_site, std::uint64_t rom_checksum, SyncConfig cfg,
                               Dur hello_interval)
    : my_site_(my_site), rom_checksum_(rom_checksum), cfg_(cfg),
      hello_interval_(hello_interval) {}

HelloMsg SessionControl::my_hello() const {
  HelloMsg h;
  h.site = my_site_;
  h.protocol_version = kProtocolVersion;
  h.rom_checksum = rom_checksum_;
  h.cfps = static_cast<std::uint16_t>(cfg_.cfps);
  h.buf_frames = static_cast<std::uint16_t>(cfg_.buf_frames);
  return h;
}

bool SessionControl::hello_compatible(const HelloMsg& h) {
  std::ostringstream why;
  if (h.protocol_version != kProtocolVersion) {
    why << "protocol version mismatch: peer " << h.protocol_version << " vs " << kProtocolVersion;
  } else if (h.rom_checksum != rom_checksum_) {
    why << "game image mismatch: the sites loaded different ROMs";
  } else if (h.cfps != static_cast<std::uint16_t>(cfg_.cfps) ||
             h.buf_frames != static_cast<std::uint16_t>(cfg_.buf_frames)) {
    why << "sync parameter mismatch (cfps/buf_frames)";
  } else {
    return true;
  }
  fail(why.str());
  return false;
}

std::optional<Message> SessionControl::poll(Time now) {
  if (state_ == SessionState::kFailed) return std::nullopt;

  if (start_pending_) {  // master answers every HELLO with a START
    start_pending_ = false;
    return Message{StartMsg{my_site_}};
  }
  if (state_ == SessionState::kConnecting && now >= next_hello_) {
    next_hello_ = now + hello_interval_;
    return Message{my_hello()};
  }
  return std::nullopt;
}

void SessionControl::ingest(const Message& msg, Time now) {
  if (state_ == SessionState::kFailed) return;

  if (const auto* hello = std::get_if<HelloMsg>(&msg)) {
    if (hello->site == my_site_) return;  // self-echo, ignore
    if (!hello_compatible(*hello)) return;
    peer_seen_ = true;
    if (my_site_ == kMasterSite) {
      // Master: announce the start (and re-announce on every later HELLO —
      // the slave only re-HELLOs if it missed the START).
      start_pending_ = true;
      enter_running(now);
    }
    return;
  }
  if (const auto* start = std::get_if<StartMsg>(&msg)) {
    if (start->site == my_site_) return;
    if (my_site_ != kMasterSite) enter_running(now);
    return;
  }
}

void SessionControl::note_sync_traffic(Time now) {
  if (my_site_ != kMasterSite) enter_running(now);
}

}  // namespace rtct::core
