#include "src/core/session.h"

#include <algorithm>
#include <sstream>

#include "src/common/telemetry.h"

namespace rtct::core {

namespace {
/// How long the master keeps HELLO-probing for an RTT sample before giving
/// up and starting with the configured fixed lag (adaptive mode only).
/// Expressed in hello intervals so slow rendezvous keeps proportions.
constexpr int kAdaptiveProbeHellos = 10;
}  // namespace

SessionControl::SessionControl(SiteId my_site, std::uint64_t rom_checksum, SyncConfig cfg,
                               Dur hello_interval)
    : my_site_(my_site), rom_checksum_(rom_checksum), cfg_(cfg),
      hello_interval_(hello_interval),
      rollback_delay_(cfg_.rollback_input_delay) {}

HelloMsg SessionControl::my_hello(Time now) const {
  HelloMsg h;
  h.site = my_site_;
  h.protocol_version = kProtocolVersion;
  h.rom_checksum = rom_checksum_;
  h.cfps = static_cast<std::uint16_t>(cfg_.cfps);
  h.buf_frames = static_cast<std::uint16_t>(cfg_.buf_frames);
  h.hello_time = now;
  if (peer_hello_time_ >= 0) {
    h.echo_time = peer_hello_time_;
    h.echo_hold = now - peer_hello_rcv_;
  }
  h.adv_rtt = measured_rtt();
  if (cfg_.adaptive_lag) h.flags |= kHelloFlagAdaptiveLag;
  if (cfg_.digest_v2) h.flags |= kFlagStateDigestV2;
  if (cfg_.rollback) h.flags |= kFlagRollback;
  h.redundancy = static_cast<std::uint16_t>(std::max(0, cfg_.redundant_inputs));
  return h;
}

bool SessionControl::hello_compatible(const HelloMsg& h) {
  const bool both_adaptive = cfg_.adaptive_lag && (h.flags & kHelloFlagAdaptiveLag) != 0;
  std::ostringstream why;
  if (h.protocol_version != kProtocolVersion) {
    why << "protocol version mismatch: peer " << h.protocol_version << " vs " << kProtocolVersion;
  } else if (h.rom_checksum != rom_checksum_) {
    why << "game image mismatch: the sites loaded different ROMs";
  } else if (h.cfps != static_cast<std::uint16_t>(cfg_.cfps)) {
    why << "sync parameter mismatch (cfps)";
  } else if (!both_adaptive && h.buf_frames != static_cast<std::uint16_t>(cfg_.buf_frames)) {
    // Fixed policy: the lag must match exactly, as in v1. When both sites
    // opted into adaptive lag the master negotiates it instead.
    why << "sync parameter mismatch (buf_frames)";
  } else {
    return true;
  }
  fail(why.str());
  return false;
}

std::optional<Message> SessionControl::poll(Time now) {
  if (state_ == SessionState::kFailed) return std::nullopt;

  if (start_pending_) {  // master answers every HELLO with a START
    start_pending_ = false;
    StartMsg s;
    s.site = my_site_;
    if (rollback_state_ == 1) {
      // Under rollback buf_frames carries the agreed local input delay,
      // offset by one so 0 keeps its "use configured" lockstep meaning.
      s.flags |= kFlagRollback;
      s.buf_frames = static_cast<std::uint16_t>(rollback_delay_ + 1);
    } else {
      s.buf_frames = static_cast<std::uint16_t>(negotiated_buf_);
    }
    if (digest_version_ == 2) s.flags |= kFlagStateDigestV2;
    ++starts_sent_;
    return Message{s};
  }
  if (state_ == SessionState::kConnecting && now >= next_hello_) {
    next_hello_ = now + hello_interval_;
    ++hellos_sent_;
    return Message{my_hello(now)};
  }
  return std::nullopt;
}

void SessionControl::ingest(const Message& msg, Time now) {
  if (state_ == SessionState::kFailed) return;

  if (const auto* hello = std::get_if<HelloMsg>(&msg)) {
    if (hello->site == my_site_) return;  // self-echo, ignore
    ++hellos_rcvd_;
    if (!hello_compatible(*hello)) return;
    peer_seen_ = true;
    peer_adaptive_ = (hello->flags & kHelloFlagAdaptiveLag) != 0;
    peer_digest_v2_ = (hello->flags & kFlagStateDigestV2) != 0;
    peer_rollback_ = (hello->flags & kFlagRollback) != 0;
    peer_adv_rtt_ = std::max(peer_adv_rtt_, hello->adv_rtt);
    if (first_compat_hello_ < 0) first_compat_hello_ = now;

    // RTT probe: the peer echoed one of our hello_times.
    if (hello->echo_time >= 0) {
      const Dur sample = now - hello->echo_time - hello->echo_hold;
      if (sample >= 0) rtt_.sample(sample);
    }
    if (hello->hello_time > peer_hello_time_) {
      peer_hello_time_ = hello->hello_time;
      peer_hello_rcv_ = now;
    }

    if (my_site_ == kMasterSite) {
      if (adaptive_agreed() && negotiated_buf_ == 0) {
        const Dur best = std::max(measured_rtt(), peer_adv_rtt_);
        if (best < 0) {
          // No measurement yet from either side. Keep HELLO-probing (the
          // next HELLO exchange yields an echo) for a bounded time, then
          // fall back to the configured fixed lag rather than stalling.
          if (now - first_compat_hello_ < kAdaptiveProbeHellos * hello_interval_) return;
          negotiated_buf_ = cfg_.buf_frames;
        } else {
          negotiated_buf_ = cfg_.buf_frames_for_rtt(best);
        }
      }
      // Master: fix the digest version (both sides must have advertised the
      // capability), then announce the start (and re-announce on every
      // later HELLO — the slave only re-HELLOs if it missed the START).
      if (digest_version_ == 0) {
        digest_version_ = (cfg_.digest_v2 && peer_digest_v2_) ? 2 : 1;
      }
      // Rollback mode, like the digest version, is the master's call iff
      // both sides advertised it; a mixed pair degrades to lockstep.
      if (rollback_state_ < 0) {
        rollback_state_ = (cfg_.rollback && peer_rollback_) ? 1 : 0;
      }
      start_pending_ = true;
      enter_running(now);
    }
    return;
  }
  if (const auto* start = std::get_if<StartMsg>(&msg)) {
    if (start->site == my_site_) return;
    ++starts_rcvd_;
    if (my_site_ != kMasterSite) {
      if ((start->flags & kFlagRollback) != 0 && cfg_.rollback) {
        rollback_state_ = 1;
        if (start->buf_frames > 0) rollback_delay_ = start->buf_frames - 1;
      } else {
        rollback_state_ = 0;
        // Under rollback the field carries the input delay, not a lag —
        // only adopt it as negotiated lockstep lag when the flag is clear.
        if ((start->flags & kFlagRollback) == 0 && start->buf_frames > 0) {
          negotiated_buf_ = start->buf_frames;
        }
      }
      digest_version_ =
          ((start->flags & kFlagStateDigestV2) != 0 && cfg_.digest_v2) ? 2 : 1;
      enter_running(now);
    }
    return;
  }
}

void SessionControl::note_sync_traffic(Time now) {
  // With adaptive lag the negotiated BufFrame travels only in START; a
  // slave must not start on bare sync traffic or it would run the wrong
  // lag depth and break the merged-input agreement. The master keeps
  // answering its HELLOs with fresh STARTs, so this stays live.
  if (cfg_.adaptive_lag && negotiated_buf_ == 0) return;
  // Rollback-vs-lockstep (and the delay depth) travels only in START: a
  // rollback-configured slave must not guess the mode from bare sync
  // traffic — against a legacy peer the master decided lockstep, and
  // speculatively running rollback with a self-chosen delay would break
  // the merged-input agreement. It keeps HELLOing; the master answers
  // every HELLO with a fresh START.
  if (cfg_.rollback && rollback_state_ < 0) return;
  if (my_site_ != kMasterSite) {
    // Starting without ever seeing a master HELLO/START: fix the digest
    // version from what we know — the peer's advertised capability if any
    // HELLO got through, else our own (see digest_version() in the header).
    if (digest_version_ == 0) {
      digest_version_ =
          (cfg_.digest_v2 && (peer_seen_ ? peer_digest_v2_ : true)) ? 2 : 1;
    }
    enter_running(now);
  }
}

void SessionControl::export_metrics(MetricsRegistry& reg) const {
  reg.gauge("session.state").set(static_cast<double>(static_cast<int>(state_)));
  reg.gauge("session.buf_frames").set(effective_buf_frames());
  reg.gauge("session.lag_negotiated").set(lag_negotiated() ? 1 : 0);
  reg.gauge("session.digest_version").set(digest_version());
  reg.gauge("session.rollback").set(rollback_mode() ? 1 : 0);
  reg.gauge("session.rollback_delay").set(rollback_mode() ? rollback_delay_ : 0);
  reg.gauge("session.measured_rtt_ms")
      .set(rtt_.has_sample() ? to_ms(rtt_.srtt()) : 0.0);
  reg.counter("session.hellos_sent").set(hellos_sent_);
  reg.counter("session.hellos_rcvd").set(hellos_rcvd_);
  reg.counter("session.starts_sent").set(starts_sent_);
  reg.counter("session.starts_rcvd").set(starts_rcvd_);
}

}  // namespace rtct::core
