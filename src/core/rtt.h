// RttEstimator — Jacobson/Karels smoothed round-trip estimation (SRTT +
// RTTVAR, RFC 6298 style) with a derived retransmission timeout.
//
// Replaces the seed's bare EWMA, which used `rtt == 0` as its "no sample
// yet" sentinel — a latent bug: on a loopback/zero-delay link every valid
// 0 ns sample looked like "unseeded" and re-seeded the filter forever,
// and callers could not distinguish "unmeasured" from "measured as ~0".
// Here the has-sample state is explicit, so a 0 ns RTT is a first-class
// measurement and consumers (Algorithm 4's rate sync, the adaptive
// retransmission timer, the lag negotiation) can gate on `has_sample()`.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "src/common/time.h"

namespace rtct::core {

class RttEstimator {
 public:
  /// `min_rto`/`max_rto` clamp the derived retransmission timeout.
  explicit RttEstimator(Dur min_rto = milliseconds(10), Dur max_rto = seconds(2))
      : min_rto_(min_rto), max_rto_(max_rto) {}

  /// Feeds one round-trip measurement (>= 0). First sample seeds
  /// SRTT = sample, RTTVAR = sample / 2 (RFC 6298 §2.2); later samples run
  /// the standard gains RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − sample|,
  /// SRTT = 7/8·SRTT + 1/8·sample.
  void sample(Dur rtt) {
    if (rtt < 0) return;
    if (count_ == 0) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
    } else {
      const Dur err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
      rttvar_ = (rttvar_ * 3 + err) / 4;
      srtt_ = (srtt_ * 7 + rtt) / 8;
    }
    ++count_;
  }

  [[nodiscard]] bool has_sample() const { return count_ > 0; }
  [[nodiscard]] std::uint64_t sample_count() const { return count_; }

  /// Smoothed RTT; 0 until the first sample (check has_sample()).
  [[nodiscard]] Dur srtt() const { return srtt_; }
  [[nodiscard]] Dur rttvar() const { return rttvar_; }

  /// SRTT + 4·RTTVAR clamped to [min_rto, max_rto]. Meaningless before the
  /// first sample; callers use their configured initial RTO until then.
  [[nodiscard]] Dur rto() const {
    const Dur raw = srtt_ + 4 * rttvar_;
    return raw < min_rto_ ? min_rto_ : raw > max_rto_ ? max_rto_ : raw;
  }

 private:
  Dur min_rto_;
  Dur max_rto_;
  Dur srtt_ = 0;
  Dur rttvar_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace rtct::core
