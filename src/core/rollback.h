// RollbackSession — speculative execution with rollback, the second
// consistency mode next to the paper's local-lag lockstep.
//
// The paper's Algorithm 2 stalls whenever a remote input is late: frame F
// cannot execute until both partial inputs for F have arrived, so every
// network hiccup becomes a frame-time spike ("Lock-step simulation is
// child's play" documents exactly this failure mode). Rollback decouples
// the frame clock from the network:
//
//   * the local input is delayed only `rollback_input_delay` frames — a
//     small fixed perceived latency, independent of RTT;
//   * the remote input for a not-yet-received frame is *predicted* by
//     holding its last known value (arcade inputs are runs of identical
//     words, so hold-last is right most of the time);
//   * every executed frame's machine state is snapshotted into a fixed
//     ring (save_state_into reuses each slot's buffer — zero allocation
//     in steady state, ~1 µs per snapshot after PR 4);
//   * when an actual remote input arrives and disagrees with what was
//     used, the session restores the snapshot *before* the first
//     mispredicted frame and re-simulates forward with the corrected
//     inputs (using actuals where known, hold-last elsewhere).
//
// A frame becomes *confirmed* once it has executed with the actual remote
// input; confirmed frames are final — their merged inputs and v2 digests
// are the session's canonical history (what replays record, spectators
// see, and the desync tripwire compares). Speculation depth is bounded by
// the ring: execution may run at most `rollback_window - 2` frames past
// the confirmed watermark, which keeps the restore target resident.
//
// Wire compatibility: RollbackSession speaks plain SYNC messages — the
// same cumulative-ack + go-back-N input windows as SyncPeer, the same RTT
// probe, the same hash tripwire. Only the *consumption policy* differs,
// which is why the mode can be negotiated per session (HELLO capability
// bit + START flag, see kFlagRollback) with no wire change.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/common/time.h"
#include "src/common/types.h"
#include "src/core/config.h"
#include "src/core/input_buffer.h"
#include "src/core/rtt.h"
#include "src/core/sync_peer.h"
#include "src/core/wire.h"
#include "src/emu/game.h"

namespace rtct {
class MetricsRegistry;  // src/common/telemetry.h
}  // namespace rtct

namespace rtct::core {

/// Rollback-specific counters (the shared transport counters live in
/// SyncPeerStats; these measure the speculation machinery itself).
struct RollbackStats {
  std::uint64_t frames_executed = 0;     ///< first-time speculative executions
  std::uint64_t frames_resimulated = 0;  ///< re-executions after a rollback
  std::uint64_t rollbacks = 0;           ///< restore events
  std::uint64_t predicted_frames = 0;    ///< executed with a predicted remote input
  std::uint64_t mispredicted_frames = 0; ///< prediction later proved wrong
  int max_rollback_depth = 0;            ///< deepest single restore, in frames
};

class RollbackSession {
 public:
  /// `cfg` must be the *effective* session config: the driver constructs
  /// this after the handshake, with `rollback_input_delay` set to
  /// SessionControl::rollback_delay() and `digest_v2` reflecting the
  /// negotiated digest version. Captures the game's current state as the
  /// pre-frame-0 restore point, so construct before executing any frame.
  RollbackSession(SiteId my_site, emu::IDeterministicGame& game, SyncConfig cfg);

  struct FrameOutcome {
    FrameNo frame = -1;
    std::uint64_t digest = 0;  ///< speculative digest after this frame
    bool predicted = false;    ///< remote input was predicted, not actual
  };

  /// False when speculation has reached the ring bound (executing one more
  /// frame would evict the restore target); the driver must then drain the
  /// network and reconcile() until the confirmed watermark advances.
  [[nodiscard]] bool can_advance() const {
    return executed_ - confirmed_ < static_cast<FrameNo>(window_) - 1;
  }

  /// One frame of Algorithm-1 work under rollback: submits the local
  /// input for frame `current_frame() + delay`, reconciles any newly
  /// arrived remote inputs (rolling back if a prediction proved wrong),
  /// then executes the next frame speculatively and snapshots it.
  /// Pre: can_advance().
  FrameOutcome advance_frame(InputWord local_input);

  /// Applies newly arrived remote inputs without executing a new frame:
  /// verifies predictions, rolls back and re-simulates on the first
  /// mismatch, and advances the confirmed watermark. Called by drivers
  /// after draining datagrams (advance_frame also calls it).
  void reconcile();

  // ---- transport (same SYNC wire traffic as SyncPeer) --------------------
  /// Outbound flush: cumulative ack + unacked local-input window + RTT
  /// echo + the newest *confirmed* state hash. nullopt when the peer
  /// needs nothing from us.
  std::optional<SyncMsg> make_message(Time now);
  /// Merges a received SYNC message. Never touches the game — restoration
  /// happens inside reconcile()/advance_frame() on the frame loop.
  void ingest(const SyncMsg& msg, Time recv_time);

  // ---- progress ----------------------------------------------------------
  /// Next frame to execute (== frames executed so far, speculative ones
  /// included).
  [[nodiscard]] FrameNo current_frame() const { return executed_; }
  /// Frames confirmed final: [0, confirmed_frames()).
  [[nodiscard]] FrameNo confirmed_frames() const { return confirmed_; }
  /// Canonical digest / merged input of a confirmed frame.
  [[nodiscard]] std::uint64_t confirmed_digest(FrameNo f) const {
    return confirmed_digests_[static_cast<std::size_t>(f)];
  }
  [[nodiscard]] InputWord confirmed_input(FrameNo f) const {
    return confirmed_inputs_[static_cast<std::size_t>(f)];
  }
  /// Machine state after the newest confirmed frame. Late-joining
  /// spectators must be seeded from this — the live machine state is
  /// speculative and may yet be rolled back. Pre: confirmed_frames() > 0.
  /// (The slot is always resident: can_advance() caps speculation at
  /// window - 2 frames past the watermark.)
  [[nodiscard]] std::span<const std::uint8_t> confirmed_state() const {
    return slot(confirmed_ - 1).state;
  }
  /// True when the peer has acked every local input we ever buffered —
  /// the lame-duck exit condition (the peer needs our inputs to finish
  /// confirming its own tail).
  [[nodiscard]] bool fully_acked() const { return last_ack_frame_ >= local_top_; }

  // ---- desync detection (same contract as SyncPeer) ----------------------
  [[nodiscard]] bool desync_detected() const { return desync_frame_ >= 0; }
  [[nodiscard]] FrameNo desync_frame() const { return desync_frame_; }

  // ---- observability ------------------------------------------------------
  /// Remote-progress observation for Algorithm 4's pacer, shaped exactly
  /// like SyncPeer's (the confirmed remote watermark stands in for
  /// LastRcvFrame).
  [[nodiscard]] SyncPeer::RemoteObs remote_obs() const;
  [[nodiscard]] Dur rtt() const { return rtt_.srtt(); }
  [[nodiscard]] bool has_rtt_sample() const { return rtt_.has_sample(); }
  [[nodiscard]] int input_delay() const { return delay_; }
  [[nodiscard]] const SyncPeerStats& stats() const { return stats_; }
  [[nodiscard]] const RollbackStats& rollback_stats() const { return rstats_; }
  /// Exports the shared "sync.*" transport counters plus "rollback.*".
  void export_metrics(MetricsRegistry& reg) const;

 private:
  struct Slot {
    FrameNo frame = -1;
    std::vector<std::uint8_t> state;  ///< machine state after `frame`
    std::uint64_t digest = 0;
    InputWord merged = 0;       ///< full input word the frame executed with
    InputWord remote_used = 0;  ///< the remote partial inside `merged`
    bool remote_actual = false; ///< remote_used is the real input, not a guess
  };

  Slot& slot(FrameNo f) { return ring_[static_cast<std::size_t>(f % window_)]; }
  [[nodiscard]] const Slot& slot(FrameNo f) const {
    return ring_[static_cast<std::size_t>(f % window_)];
  }
  [[nodiscard]] InputWord remote_partial(FrameNo f) const {
    return site_bits(ibuf_.partial(rm_site_, f), rm_site_);
  }
  /// Hold-last prediction: whatever we believe frame f-1's remote input
  /// was (actual when known, the previous prediction otherwise — the
  /// chain bottoms out at the last confirmed value / the all-zero init).
  [[nodiscard]] InputWord predicted_remote(FrameNo f) const {
    return f == 0 ? InputWord{0} : slot(f - 1).remote_used;
  }

  void execute_frame(FrameNo f);            ///< step + snapshot into slot(f)
  void rollback_and_resim(FrameNo from);    ///< restore before `from`, re-run
  void restore_state_after(FrameNo f);      ///< f == -1 restores genesis
  void advance_confirmed();                 ///< promote actual-input frames
  void check_remote_hash(FrameNo frame, std::uint64_t hash);

  SiteId my_site_;
  SiteId rm_site_;
  emu::IDeterministicGame& game_;
  SyncConfig cfg_;
  int delay_;    ///< local input delay in frames
  int window_;   ///< snapshot ring capacity

  InputBuffer ibuf_;
  std::vector<Slot> ring_;
  std::vector<std::uint8_t> genesis_;  ///< state before frame 0

  FrameNo executed_ = 0;   ///< next frame to execute
  FrameNo confirmed_ = 0;  ///< next frame to confirm
  FrameNo local_top_ = -1;     ///< highest local input frame buffered
  FrameNo remote_contig_ = -1; ///< highest contiguous actual remote frame

  // Transport state (mirrors SyncPeer).
  FrameNo last_ack_frame_ = -1;  ///< highest local frame the peer acked
  FrameNo ack_sent_ = -1;        ///< highest ack we ever put on the wire
  FrameNo highest_sent_ = -1;    ///< highest local input frame ever sent
  Time last_peer_send_time_ = -1;
  Time last_peer_recv_time_ = 0;
  RttEstimator rtt_;
  Time remote_advance_time_ = 0;
  bool seen_remote_ = false;

  // Desync tripwire over *confirmed* digests only.
  std::vector<std::uint64_t> confirmed_digests_;
  std::vector<InputWord> confirmed_inputs_;
  struct HashRecord {
    FrameNo frame = -1;
    std::uint64_t hash = 0;
  };
  HashRecord latest_own_;      ///< newest confirmed interval hash (to send)
  HashRecord pending_remote_;  ///< peer hash for a frame we've not confirmed
  FrameNo hash_sent_ = -1;
  FrameNo desync_frame_ = -1;

  SyncPeerStats stats_;
  RollbackStats rstats_;
};

}  // namespace rtct::core
