// SyncPeer — the logical-consistency algorithm (paper Algorithm 2,
// SyncInput) as a sans-IO state machine.
//
// The paper presents SyncInput as a blocking function containing a
// send/receive loop. Factoring the state out of that loop gives four pure
// operations a driver composes:
//
//   submit_local(F, I)  — lines 1-5: buffer local input for frame F+BufFrame
//   make_message(now)   — lines 7-11: the outbound sd[] message (cumulative
//                         ack + unacked contiguous input window); nullopt
//                         when the peer needs nothing from us
//   ingest(msg, now)    — lines 12-20: merge a received rc[] message
//   ready()/pop()       — lines 21-23: the exit condition and delivery
//
// The blocking loop itself lives in the drivers (simulated coroutine /
// real-time thread), which interleave make_message on the flush timer and
// ingest on datagram arrival until ready() — identical protocol behaviour
// in both runtimes, and every branch unit-testable without IO.
//
// Reliability over UDP (§3.1): in the paper's policy (the default) inputs
// are re-sent in every message until cumulatively acked (go-back-N),
// duplicates are absorbed by the InputBuffer, and disorder is harmless
// because each input is addressed by absolute frame number.
//
// With cfg.adaptive_resend the transport instead behaves like a modern
// reliable-datagram layer: messages carry only new inputs plus a
// redundancy tail re-carrying every unacked input first sent within the
// last `redundant_inputs` flushes, and the full unacked window is resent
// only when the per-peer retransmission timer (SRTT + 4·RTTVAR with
// exponential backoff, see RttEstimator) fires.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "src/common/time.h"
#include "src/common/types.h"
#include "src/core/config.h"
#include "src/core/input_buffer.h"
#include "src/core/rtt.h"
#include "src/core/wire.h"

namespace rtct {
class MetricsRegistry;  // src/common/telemetry.h
}  // namespace rtct

namespace rtct::core {

/// Counters for instrumentation and the loss-robustness benches.
struct SyncPeerStats {
  std::uint64_t messages_made = 0;
  std::uint64_t messages_ingested = 0;
  std::uint64_t inputs_sent = 0;          ///< input entries across all messages
  std::uint64_t inputs_retransmitted = 0; ///< entries sent more than once
  std::uint64_t duplicate_inputs_rcvd = 0;
  std::uint64_t stale_messages = 0;       ///< wrong-site or malformed drops
  std::uint64_t rtt_samples = 0;          ///< RttEstimator::sample_count()
  std::uint64_t rto_fires = 0;            ///< adaptive retransmit-timer expiries
  std::uint64_t redundant_inputs_sent = 0;  ///< K-tail entries (adaptive mode)
};

/// Snapshots a SyncPeerStats into the registry under the stable "sync.*"
/// counter names (shared between SyncPeer and MeshSyncPeer so two-site and
/// mesh sessions export identically; see README.md "Observability").
void export_sync_stats(MetricsRegistry& reg, const SyncPeerStats& s);

class SyncPeer {
 public:
  SyncPeer(SiteId my_site, SyncConfig cfg);

  /// Re-initializes the local-lag depth to a handshake-negotiated value
  /// (v2 adaptive lag). Only legal before any input was submitted, popped
  /// or sent — i.e. between SessionControl reaching kRunning and frame 0.
  /// Returns false (and changes nothing) if the protocol already moved.
  bool set_buf_frames(int buf_frames);

  // ---- Algorithm 2, lines 1-5 ------------------------------------------
  /// Buffers the local partial input for display frame `frame + BufFrame`.
  /// Call exactly once per local frame, in order.
  void submit_local(FrameNo frame, InputWord local_input);

  // ---- Algorithm 2, lines 7-11 -----------------------------------------
  /// Builds the next outbound message: cumulative ack + all local inputs
  /// the peer has not acknowledged (capped at max_inputs_per_message).
  /// Returns nullopt when there is nothing useful to say (everything
  /// acked AND our ack is already known to the peer).
  std::optional<SyncMsg> make_message(Time now);

  // ---- Algorithm 2, lines 12-20 ----------------------------------------
  /// Merges a received sync message; `recv_time` is the local receive
  /// timestamp (feeds MasterRcvTime and the RTT estimator).
  void ingest(const SyncMsg& msg, Time recv_time);

  // ---- Algorithm 2, lines 21-23 ----------------------------------------
  /// Exit condition of the receive loop: the input for the current
  /// pointer frame is complete at both sites.
  [[nodiscard]] bool ready() const;
  /// Delivers IBuf[IBufPointer] and advances the pointer. Pre: ready().
  InputWord pop();

  // ---- desync detection ---------------------------------------------------
  /// Driver reports the game-state hash after executing each frame. Every
  /// hash_interval-th hash is attached to outgoing messages and compared
  /// against the peer's — a replica-divergence tripwire (the paper assumes
  /// determinism; production netplay verifies it).
  void note_state_hash(FrameNo frame, std::uint64_t hash);

  /// True once any exchanged hash disagreed. Logical consistency is then
  /// provably broken (non-deterministic game or memory corruption); the
  /// embedding application should stop the session.
  [[nodiscard]] bool desync_detected() const { return desync_frame_ >= 0; }
  /// Frame of the first detected mismatch, or -1.
  [[nodiscard]] FrameNo desync_frame() const { return desync_frame_; }

  // ---- observability ------------------------------------------------------
  [[nodiscard]] FrameNo pointer() const { return pointer_; }
  [[nodiscard]] FrameNo last_rcv_frame(SiteId site) const {
    return last_rcv_frame_[site & 1];
  }
  [[nodiscard]] FrameNo last_ack_frame() const { return last_ack_frame_; }

  /// Smoothed round-trip time; 0 until the first sample (§3.2's RTT).
  /// `has_rtt_sample()` distinguishes "unmeasured" from "measured ~0"
  /// (a loopback link legitimately reports 0 ns).
  [[nodiscard]] Dur rtt() const { return rtt_.srtt(); }
  [[nodiscard]] bool has_rtt_sample() const { return rtt_.has_sample(); }
  [[nodiscard]] const RttEstimator& rtt_estimator() const { return rtt_; }
  /// Current retransmission timeout (backoff applied; adaptive mode).
  [[nodiscard]] Dur current_rto() const;

  /// Observation of the remote site's progress for Algorithm 4:
  /// LastRcvFrame[remote] and the local arrival time of the message that
  /// advanced it ("MasterRcvTime"). `rtt` is only meaningful when
  /// `rtt_valid`; consumers must not treat 0 as "no delay" otherwise.
  struct RemoteObs {
    bool valid = false;
    FrameNo last_rcv_frame = 0;
    Time rcv_time = 0;
    Dur rtt = 0;
    bool rtt_valid = false;
  };
  [[nodiscard]] RemoteObs remote_obs() const;

  [[nodiscard]] const SyncPeerStats& stats() const { return stats_; }
  [[nodiscard]] const SyncConfig& config() const { return cfg_; }
  [[nodiscard]] SiteId site() const { return my_site_; }

  /// Snapshots counters and protocol gauges into the registry ("sync.*").
  void export_metrics(MetricsRegistry& reg) const;

 private:
  SiteId my_site_;
  SiteId rm_site_;
  SyncConfig cfg_;
  InputBuffer ibuf_;

  FrameNo pointer_ = 0;  ///< IBufPointer
  /// LastRcvFrame[2]: highest contiguous frame filled per site.
  FrameNo last_rcv_frame_[2];
  /// LastAckFrame[RmSiteNo]: highest local frame the peer has acked.
  FrameNo last_ack_frame_;
  /// Highest ack value we have ever put on the wire (to detect "new info").
  FrameNo ack_sent_ = -1;
  /// Highest local input frame ever sent (to count retransmissions).
  FrameNo highest_sent_ = -1;

  // RTT estimation (echoed timestamps).
  Time last_peer_send_time_ = -1;  ///< newest send_time seen from the peer
  Time last_peer_recv_time_ = 0;   ///< when we received it (for echo_hold)
  RttEstimator rtt_;

  // Adaptive retransmission timer (cfg_.adaptive_resend only). Armed while
  // unacked inputs are outstanding; an expiry triggers a full go-back-N
  // window resend and doubles the backoff until the next ack progress.
  Time rto_deadline_ = -1;
  int rto_backoff_ = 1;
  static constexpr int kMaxRtoBackoff = 16;
  /// Pre-flush `highest_sent_` for each of the last K flushes: the
  /// redundancy tail starts just above the oldest entry, so every input
  /// is re-carried for K flushes after its first send (burst-safe).
  std::deque<FrameNo> sent_watermarks_;

  // Algorithm 4 inputs.
  Time remote_advance_time_ = 0;
  bool seen_remote_ = false;

  // Desync detection state.
  struct HashRecord {
    FrameNo frame = -1;
    std::uint64_t hash = 0;
  };
  static constexpr int kHashWindow = 32;
  HashRecord own_hashes_[kHashWindow];   ///< ring keyed by interval index
  HashRecord latest_own_;                ///< newest interval hash (to send)
  HashRecord pending_remote_;            ///< peer hash we have not reached yet
  FrameNo desync_frame_ = -1;

  void check_remote_hash(FrameNo frame, std::uint64_t hash);

  SyncPeerStats stats_;
};

}  // namespace rtct::core
