// Tunables of the synchronization layer, with the paper's values as
// defaults (§3–§4.2).
#pragma once

#include "src/common/time.h"

namespace rtct::core {

struct SyncConfig {
  /// CFPS — frames the game is expected to deliver per second (§3.2,
  /// "game-specific but normally 60").
  int cfps = 60;

  /// BufFrame — the local-lag value in frames (§3, Algorithm 2). 6 frames
  /// at 60 FPS ≈ the recommended 100 ms local lag.
  int buf_frames = 6;

  /// Outbound messages are buffered and flushed on this period; the paper
  /// sends "one message every 20ms", costing 10 ms average (20 ms worst)
  /// extra input latency (§4.2).
  Dur send_flush_period = milliseconds(20);

  /// Mean extra delay between a flush firing and bytes hitting the wire,
  /// modelling the paper's producer/consumer thread handoff ("assuming the
  /// thread time slice is 10ms, there is a 5ms average delay", §4.2).
  Dur send_dispatch_delay = milliseconds(5);

  /// Cap on input entries per sync message. Bounds datagram size during
  /// long loss bursts (go-back-N resend window).
  int max_inputs_per_message = 128;

  /// Smoothing of Algorithm 4's slave correction. The paper's pseudocode
  /// applies the raw SyncAdjustTimeDelta every frame, but the estimate of
  /// the master's progress jitters with the send-batching phase (±10 ms
  /// for a 20 ms flush period); applied raw, that jitter would show up
  /// directly as slave frame-time deviation — contradicting the paper's
  /// own Figure 1 (deviation ≈ 0 below 90 ms RTT), so their implementation
  /// necessarily smooths too ("the slave site can smooth out the deviation
  /// within only a few frames", §3.2). We fold in a fraction per frame
  /// (geometric convergence) and ignore corrections inside a deadband.
  /// Set gain=1, deadband=0 to run the literal pseudocode.
  double rate_sync_gain = 0.15;
  Dur rate_sync_deadband = milliseconds(4);

  /// Attach the local state hash to outgoing sync messages every N frames
  /// (0 disables). Desync detection: the paper *assumes* VM determinism
  /// (§3); exchanging hashes verifies it continuously at ~16 bytes per
  /// interval of bandwidth.
  int hash_interval = 60;

  /// Incremental state-digest capability (v3 handshake). When both sites
  /// advertise it the session compares version-2 digests — the emulator's
  /// O(dirty pages) dirty-page digest — instead of rehashing the full
  /// 64 KiB mutable state (version 1) every hash interval; either side
  /// opting out downgrades both to version 1. On by default, unlike the
  /// adaptive-transport knobs below: it changes only the fingerprint
  /// function, never any timing the Figure 1/2 reproductions depend on.
  bool digest_v2 = true;

  /// Embed a full save-state keyframe into the session recording every N
  /// frames (0 disables, producing the linear RTCTRPL1 container). Purely
  /// local — never negotiated, never on the wire; it only sizes the
  /// seek/bisect granularity of the RTCTRPL2 replay file this site writes
  /// (~33 KiB per keyframe for the AC16 machine, so 600 ≈ 3.3 KiB/s of
  /// recording overhead at 60 FPS).
  int replay_keyframe_interval = 600;

  // ---- rollback consistency mode (off by default: lockstep is the
  // paper's algorithm and the reference policy) ----------------------------

  /// Opt into speculative execution with rollback instead of local-lag
  /// lockstep. Negotiated in the v3 handshake (HELLO capability bit +
  /// START flag): the session runs rollback iff *both* sites opt in,
  /// otherwise it degrades cleanly to lockstep. Under rollback the site
  /// delays its own input by `rollback_input_delay` frames (not
  /// `buf_frames`), predicts the remote input by holding its last known
  /// value, executes speculatively, and on misprediction restores the
  /// last confirmed snapshot and re-simulates.
  bool rollback = false;
  /// Local input delay in frames under rollback — the perceived input
  /// latency, fixed and independent of RTT (that is the whole point).
  int rollback_input_delay = 2;
  /// Snapshot ring capacity in frames; bounds how far execution may run
  /// ahead of the confirmed watermark (speculation depth <= window - 2).
  int rollback_window = 32;

  // ---- adaptive sync transport (all off by default: the paper's fixed-
  // parameter behaviour is the reference policy and the Figure 1/2
  // reproductions depend on it) -------------------------------------------

  /// RTT-negotiated local lag: during the v2 handshake the sites exchange
  /// measured RTT and the master picks BufFrame =
  /// ceil(RTT/2 / frame_period) + adaptive_lag_margin, clamped to
  /// [min_buf_frames, max_buf_frames], announced in START. Requires both
  /// sites to opt in; otherwise the fixed `buf_frames` must match exactly.
  bool adaptive_lag = false;
  int adaptive_lag_margin = 2;
  int min_buf_frames = 2;
  int max_buf_frames = 30;

  /// RTO-driven retransmission instead of the paper's blind go-back-N
  /// (which re-sends the whole unacked window every flush): messages carry
  /// only new inputs plus a `redundant_inputs` tail, and the full window is
  /// resent only when the per-peer retransmission timer (SRTT + 4·RTTVAR,
  /// exponential backoff) fires.
  bool adaptive_resend = false;
  /// K: how many already-sent-but-unacked inputs each message re-carries
  /// even when the retransmit timer has not fired, so a single lost
  /// datagram is usually repaired by the next flush instead of a full RTO.
  int redundant_inputs = 0;
  /// Retransmission timeout before any RTT sample exists.
  Dur initial_rto = milliseconds(100);
  /// Clamp on the estimator-derived RTO (before backoff).
  Dur min_rto = milliseconds(10);
  Dur max_rto = seconds(2);

  /// The state-digest version this site is capable of comparing.
  [[nodiscard]] int digest_version() const { return digest_v2 ? 2 : 1; }

  [[nodiscard]] Dur frame_period() const { return rtct::frame_period(cfps); }
  /// The local-lag duration: how long a player waits to see her own input.
  [[nodiscard]] Dur local_lag() const { return buf_frames * frame_period(); }

  /// The adaptive-lag policy: BufFrame sized to cover one-way delay plus a
  /// margin for the flush/dispatch overheads (§4.2's budget arithmetic).
  [[nodiscard]] int buf_frames_for_rtt(Dur rtt) const {
    const Dur tpf = frame_period();
    const Dur one_way = rtt < 0 ? 0 : rtt / 2;
    const auto needed = static_cast<int>((one_way + tpf - 1) / tpf) + adaptive_lag_margin;
    return needed < min_buf_frames ? min_buf_frames
           : needed > max_buf_frames ? max_buf_frames
                                     : needed;
  }
};

/// Wire protocol version (checked in the session handshake). v2 added the
/// RTT advert / adaptive-lag negotiation fields to HELLO and START; v3
/// added the START flags byte carrying the negotiated state-digest
/// version. Older peers are rejected (START changed shape in v3, and the
/// v2 lag semantics were already incompatible with v1).
inline constexpr std::uint32_t kProtocolVersion = 3;

}  // namespace rtct::core
