#include "src/core/input_buffer.h"

namespace rtct::core {

InputBuffer::Entry* InputBuffer::entry_at(FrameNo frame, bool create) {
  if (frame < base_ || frame - base_ > kMaxFrameWindow) return nullptr;
  const auto idx = static_cast<std::size_t>(frame - base_);
  if (idx >= entries_.size()) {
    if (!create) return nullptr;
    entries_.resize(idx + 1);
  }
  return &entries_[idx];
}

const InputBuffer::Entry* InputBuffer::entry_at(FrameNo frame) const {
  if (frame < base_) return nullptr;
  const auto idx = static_cast<std::size_t>(frame - base_);
  return idx < entries_.size() ? &entries_[idx] : nullptr;
}

bool InputBuffer::put(SiteId site, FrameNo frame, InputWord partial) {
  if (site < 0 || site >= num_sites_) return false;
  Entry* e = entry_at(frame, /*create=*/true);
  if (e == nullptr || e->filled[site]) return false;  // stale or duplicate
  e->filled[site] = true;
  e->partial[site] = site_bits_n(partial, site, num_sites_);
  return true;
}

bool InputBuffer::has(SiteId site, FrameNo frame) const {
  if (site < 0 || site >= num_sites_) return false;
  const Entry* e = entry_at(frame);
  return e != nullptr && e->filled[site];
}

InputWord InputBuffer::partial(SiteId site, FrameNo frame) const {
  if (site < 0 || site >= num_sites_) return 0;
  const Entry* e = entry_at(frame);
  return (e != nullptr && e->filled[site]) ? e->partial[site] : 0;
}

std::optional<InputWord> InputBuffer::merged(FrameNo frame) const {
  const Entry* e = entry_at(frame);
  if (e == nullptr) return std::nullopt;
  InputWord out = 0;
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (!e->filled[s]) return std::nullopt;
    out = merge_site_bits_n(out, e->partial[s], s, num_sites_);
  }
  return out;
}

void InputBuffer::trim_below(FrameNo frame) {
  while (base_ < frame && !entries_.empty()) {
    entries_.pop_front();
    ++base_;
  }
  if (entries_.empty() && base_ < frame) base_ = frame;
}

}  // namespace rtct::core
