// FramePacer — the real-time-consistency algorithms (paper Algorithms 3
// and 4, BeginFrameTiming / EndFrameTiming).
//
// Two mechanisms compose:
//
//  * Lag compensation (Algorithm 3): a frame that overran its 1/CFPS slot
//    (because SyncInput stalled on the network) leaves a *negative*
//    AdjustTimeDelta that shortens the following frames until the schedule
//    is caught up; an on-time frame waits out its remainder.
//
//  * Master/slave rate sync (Algorithm 4): only the slave (site 1)
//    estimates the master's current frame — from the freshest
//    LastRcvFrame[0], its arrival time, and RTT/2 — and folds the frame
//    difference into AdjustTimeDelta. Whichever site started earlier, the
//    *slave* absorbs the skew; without this, the earlier site oscillates
//    (shown by bench/ablation_pacing).
#pragma once

#include "src/common/time.h"
#include "src/common/types.h"
#include "src/core/config.h"
#include "src/core/sync_peer.h"

namespace rtct::core {

/// Ablation switch for bench/ablation_pacing (§3.2's design discussion):
///   kFull           — Algorithms 3 + 4 (the paper's system)
///   kCompensateOnly — Algorithm 3 only: lag compensation, no master/slave
///                     rate sync ("the earlier site is always penalized")
///   kNaive          — "consume what is left in the current frame time by
///                     waiting": no compensation at all (§3.2's strawman)
enum class PacingPolicy { kFull, kCompensateOnly, kNaive };

class FramePacer {
 public:
  FramePacer(SiteId my_site, SyncConfig cfg, PacingPolicy policy = PacingPolicy::kFull)
      : my_site_(my_site), cfg_(cfg), policy_(policy) {}

  /// Adopts a handshake-negotiated local-lag depth (v2 adaptive lag); must
  /// mirror the SyncPeer it paces, before frame 0.
  void set_buf_frames(int buf_frames) { cfg_.buf_frames = buf_frames; }

  /// Algorithm 4 (BeginFrameTiming). `current_frame` is Algorithm 1's
  /// Frame; `obs` is the slave's freshest view of the master (ignored on
  /// the master, where SyncAdjustTimeDelta is defined to be zero).
  void begin_frame(Time now, FrameNo current_frame, const SyncPeer::RemoteObs& obs);

  /// Algorithm 3 (EndFrameTiming). Returns how long the caller should
  /// sleep before the next frame (0 when the frame overran and the deficit
  /// was pushed into AdjustTimeDelta instead).
  [[nodiscard]] Dur end_frame(Time now);

  [[nodiscard]] Dur adjust_time_delta() const { return adjust_; }
  [[nodiscard]] Dur last_sync_adjust() const { return last_sync_adjust_; }
  [[nodiscard]] Time current_frame_start() const { return frame_start_; }

  [[nodiscard]] PacingPolicy policy() const { return policy_; }

  /// Frames paced (end_frame calls), frames that overran their slot, and
  /// total sleep granted — the pacer's contribution to the §4.2 budget.
  [[nodiscard]] std::uint64_t frames() const { return frames_; }
  [[nodiscard]] std::uint64_t overruns() const { return overruns_; }
  [[nodiscard]] Dur total_wait() const { return total_wait_; }

  /// Snapshots pacing state into the registry ("pacer.*").
  void export_metrics(MetricsRegistry& reg) const;

 private:
  SiteId my_site_;
  SyncConfig cfg_;
  PacingPolicy policy_;
  Time frame_start_ = 0;      ///< CurrFrameStart
  Dur adjust_ = 0;            ///< AdjustTimeDelta
  Dur last_sync_adjust_ = 0;  ///< most recent SyncAdjustTimeDelta (telemetry)
  std::uint64_t frames_ = 0;
  std::uint64_t overruns_ = 0;  ///< frames whose slot ended in the past
  Dur total_wait_ = 0;          ///< sum of sleeps granted by end_frame
};

}  // namespace rtct::core
