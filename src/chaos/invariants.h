// Machine-readable invariants over completed chaos sessions.
//
// The soak engine does not eyeball plots: every run is reduced to a list
// of Violations, each naming the invariant, the first frame it broke at,
// and a human-readable detail string. An empty list is the pass
// condition. The invariant set encodes what lockstep *guarantees* no
// matter how hostile the path was:
//
//   completion        both/all sites ran every frame, no watchdog abort
//   state-hash        replicas (and observers) agree frame by frame
//   watermark         each site's timeline is gapless: frames 0..N-1 in
//                     order (the observable face of the LastRcvFrame
//                     watermark staying contiguous)
//   frame-lead        no site outran a peer by more than BufFrame frames:
//                     input for frame f cannot be ready before the peer
//                     began frame f - BufFrame (causality of Algorithm 2)
//   pacer-convergence once faults clear, frame times re-lock to the CFPS
//                     period (Algorithm 4 actually converges)
//   telemetry         link/peer counters are mutually consistent (offered
//                     = delivered + dropped - duplicated, ingested never
//                     exceeds delivered, no stale-message drops)
//   spectator         observers never see a pre-frame-0 snapshot and every
//                     replayed frame hashes identically to the players'
//   rollback-twin     (rollback mode) each site's confirmed history equals
//                     a straight-line replay of the same merged inputs,
//                     digest for digest — mispredict/restore/re-simulate
//                     must leave no trace; frame-lead is skipped instead
//                     (speculation legitimately outruns the peer)
#pragma once

#include <string>
#include <vector>

#include "src/testbed/experiment.h"
#include "src/testbed/mesh_experiment.h"

namespace rtct::chaos {

struct Violation {
  std::string invariant;  ///< stable identifier, e.g. "state-hash"
  FrameNo frame = -1;     ///< first offending frame (-1 = not frame-scoped)
  std::string detail;
};

std::vector<Violation> check_two_site(const testbed::ExperimentConfig& cfg,
                                      const testbed::ExperimentResult& r);

/// `pacing_reference` (optional): a fault-free run of the same script.
/// When given, the pacer invariant asks "did the session return to the
/// clean system's pace once faults cleared?" instead of holding the mesh
/// to the nominal period — with N sites and higher RTT even a clean mesh
/// legitimately paces above CFPS (the paper's Figure-1 regime boundary).
std::vector<Violation> check_mesh(const testbed::MeshExperimentConfig& cfg,
                                  const testbed::MeshExperimentResult& r,
                                  const testbed::MeshExperimentResult* pacing_reference = nullptr);

}  // namespace rtct::chaos
