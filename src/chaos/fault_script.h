// Seeded fault schedules for the chaos harness.
//
// A FaultScript is the complete, self-contained description of one
// adversarial session: topology, session length, baseline path shape, and
// a list of timed faults. Scripts are *generated* from a single 64-bit
// seed (every parameter is drawn from one Rng stream, so a seed is a full
// repro token), *serialized* to JSON ("rtct.chaos.script.v1") so a failing
// case can be archived, hand-minimized and replayed, and *lowered* onto
// the existing testbed configs (src/chaos/soak.h) — the chaos layer adds
// no new simulation machinery, only adversarial composition of what the
// testbed already models.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace rtct {
class JsonValue;   // src/common/json.h
class JsonWriter;  // src/common/json.h
}  // namespace rtct

namespace rtct::chaos {

/// Which session shape the script drives.
enum class Topology {
  kTwoSite,    ///< the paper's §4 two-player setup
  kMesh,       ///< N-site full mesh (journal extension)
  kSpectator,  ///< two players + late-joining/leaving observers
};

[[nodiscard]] std::string_view topology_name(Topology t);
std::optional<Topology> topology_from_name(std::string_view name);

/// One timed adversity. `kind` selects how the generic fields are read:
///   kLossBurst     magnitude = drop probability
///   kReorderStorm  magnitude = reorder probability, extra = hold-back
///   kDuplication   magnitude = duplication probability
///   kLatencySpike  magnitude = one-way delay multiplier, extra = jitter
///   kAsymFlip      site = direction degraded first (0 = a->b); the other
///                  direction takes over halfway through `duration`
///   kConfigFlap    rapid alternation degraded/base every duration/4,
///                  magnitude = delay multiplier of the degraded shape
///   kSiteStall     site's frame loop freezes for `duration` (two-site
///                  and spectator topologies only)
enum class FaultKind {
  kLossBurst,
  kReorderStorm,
  kDuplication,
  kLatencySpike,
  kAsymFlip,
  kConfigFlap,
  kSiteStall,
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind k);
std::optional<FaultKind> fault_kind_from_name(std::string_view name);

struct Fault {
  FaultKind kind = FaultKind::kLossBurst;
  Dur at = 0;        ///< virtual time the fault starts
  Dur duration = 0;  ///< how long until the path is restored
  int site = 0;      ///< stalled site / first flipped direction
  double magnitude = 0;
  Dur extra = 0;
};

struct FaultScript {
  std::uint64_t seed = 0;
  Topology topology = Topology::kTwoSite;
  int frames = 420;
  int num_sites = 2;   ///< mesh only (2, 4 or 8)
  int observers = 0;   ///< spectator only
  Dur base_rtt = milliseconds(40);
  double base_loss = 0;       ///< background random loss on every path
  Dur boot_skew = 0;          ///< site 1 boots this much after site 0
  bool adaptive_transport = false;  ///< v2 adaptive lag + RTO resend path
  /// Run the session in the rollback consistency mode (two-site and
  /// spectator topologies): same fault schedule, speculative execution
  /// instead of lockstep. Not drawn by the generator — the rollback soak
  /// flips it on existing scripts so both modes face identical adversity.
  bool rollback = false;
  std::vector<Fault> faults;
  /// Spectator churn (spectator topology): per-observer join delay (0 =
  /// join during the session handshake) and watch duration (0 = stays).
  std::vector<Dur> observer_join_delays;
  std::vector<Dur> observer_leave_after;

  [[nodiscard]] Dur session_length() const {
    return frames * frame_period(60);
  }
};

/// Derives a complete adversarial script from (seed, topology). Pure: the
/// same pair always yields the same script, on every platform. Fault
/// windows are clamped so the final ~2.5 s of the session are fault-free —
/// the invariant set requires the pacer to re-converge once conditions
/// clear, which needs a clean tail to measure.
FaultScript generate_fault_script(std::uint64_t seed, Topology topology);

/// "rtct.chaos.script.v1". The seed is serialized as a decimal *string*:
/// JSON numbers round-trip through double (53-bit mantissa) and would
/// silently corrupt high seeds.
std::string script_to_json(const FaultScript& script);
/// Emits the script object into an in-progress document (the repro format
/// embeds the script under its "script" key).
void write_script(JsonWriter& w, const FaultScript& script);
std::optional<FaultScript> script_from_json(const JsonValue& doc);

}  // namespace rtct::chaos
