// The chaos soak engine: lowers a FaultScript onto the testbed, runs the
// session on the virtual clock, and reduces the outcome to a pass/fail
// verdict plus a repro document.
//
// Everything is deterministic end to end: the script is derived from the
// seed, the simulation is virtual-time, and the repro JSON contains no
// wall-clock material — the same seed always produces byte-identical
// output, which is itself one of the soak test's assertions.
#pragma once

#include <string>
#include <vector>

#include "src/chaos/fault_script.h"
#include "src/chaos/invariants.h"
#include "src/testbed/experiment.h"
#include "src/testbed/mesh_experiment.h"

namespace rtct::chaos {

/// Lowers a script onto the two-site harness (two_site and spectator
/// topologies). Faults become timed NetemConfig swaps / stall events; the
/// session runs the native CellWars game so hundreds of seeds stay cheap.
testbed::ExperimentConfig lower_two_site(const FaultScript& script);

/// Lowers a mesh script: every fault degrades and restores the whole mesh.
testbed::MeshExperimentConfig lower_mesh(const FaultScript& script);

struct SoakOutcome {
  FaultScript script;
  std::vector<Violation> violations;
  FrameNo first_divergence = -1;
  /// Frames site 0 actually completed (diagnostic).
  FrameNo frames_completed = 0;
  /// Per-site session artifacts (two_site/spectator topologies only): the
  /// RTCTRPL2 recordings and per-frame-hash timelines, so a failed case
  /// can be handed straight to the divergence bisector
  /// (`rtct_chaos replay FILE --bisect`). Not part of the repro JSON —
  /// outcome_to_json stays byte-identical per seed.
  std::vector<core::Replay> replays;
  std::vector<core::FrameTimeline> timelines;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

/// Runs one complete chaos case: lower, simulate, check invariants.
SoakOutcome run_soak_case(const FaultScript& script);

/// Convenience: generate-then-run.
SoakOutcome run_soak_case(std::uint64_t seed, Topology topology);

/// The minimized repro document ("rtct.chaos.repro.v1"): the full fault
/// script (hand-editable — replay parses it back rather than regenerating
/// from the seed), every violation, and the first divergent frame. One
/// command replays it: `rtct_chaos replay <file>`.
std::string outcome_to_json(const SoakOutcome& outcome);

}  // namespace rtct::chaos
