#include "src/chaos/fuzz.h"

#include <cstring>
#include <limits>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/core/replay.h"
#include "src/core/session.h"
#include "src/core/spectate.h"
#include "src/core/sync_peer.h"
#include "src/core/wire.h"
#include "src/games/cellwars.h"

namespace rtct::chaos {

namespace {

using core::FeedAckMsg;
using core::HelloMsg;
using core::InputFeedMsg;
using core::JoinRequestMsg;
using core::Message;
using core::SnapshotMsg;
using core::StartMsg;
using core::SyncMsg;

// Mirror of wire.cpp's decode bounds (documented in docs/PROTOCOL.md):
// anything decode accepts must satisfy these, so the fuzzer checks them
// independently rather than trusting the implementation it is testing.
constexpr FrameNo kMaxWireFrame = FrameNo{1} << 48;
constexpr std::size_t kMaxWireInputs = 4096;
constexpr std::size_t kMaxSnapshot = 1 << 20;

bool frame_ok(FrameNo f, FrameNo floor) { return f >= floor && f < kMaxWireFrame; }
bool time_ok(Time t, Time floor) { return t >= floor; }

/// Checks an accepted message against the documented field ranges.
std::optional<std::string> validate_accepted(const Message& m) {
  if (const auto* h = std::get_if<HelloMsg>(&m)) {
    if (!time_ok(h->hello_time, 0) || !time_ok(h->echo_time, -1) ||
        !time_ok(h->echo_hold, 0) || !time_ok(h->adv_rtt, -1)) {
      return "accepted HELLO with out-of-range timestamps";
    }
  } else if (const auto* s = std::get_if<SyncMsg>(&m)) {
    if (!frame_ok(s->first_frame, 0) || !frame_ok(s->ack_frame, -1) ||
        !frame_ok(s->hash_frame, -1)) {
      return "accepted SYNC with out-of-range frames";
    }
    if (!time_ok(s->send_time, 0) || !time_ok(s->echo_time, -1) ||
        !time_ok(s->echo_hold, 0)) {
      return "accepted SYNC with out-of-range timestamps";
    }
    if (s->inputs.size() > kMaxWireInputs) return "accepted SYNC over the input cap";
  } else if (const auto* snap = std::get_if<SnapshotMsg>(&m)) {
    if (!frame_ok(snap->frame, 0)) return "accepted SNAPSHOT with out-of-range frame";
    if (snap->state.size() > kMaxSnapshot) return "accepted SNAPSHOT over the size cap";
  } else if (const auto* f = std::get_if<InputFeedMsg>(&m)) {
    if (!frame_ok(f->first_frame, 0)) return "accepted FEED with out-of-range frame";
    if (f->inputs.size() > kMaxWireInputs) return "accepted FEED over the input cap";
  } else if (const auto* a = std::get_if<FeedAckMsg>(&m)) {
    if (!frame_ok(a->frame, -1)) return "accepted ACK with out-of-range frame";
  }
  return std::nullopt;
}

/// Edge-biased 64-bit value: boundaries of the decode ranges plus noise.
std::int64_t interesting_i64(Rng& rng) {
  switch (rng.uniform(0, 8)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return -1;
    case 3: return -2;
    case 4: return (std::int64_t{1} << 48) - 1;
    case 5: return std::int64_t{1} << 48;
    case 6: return std::numeric_limits<std::int64_t>::max();
    case 7: return std::numeric_limits<std::int64_t>::min();
    default: return static_cast<std::int64_t>(rng.next_u64());
  }
}

/// A random message with edge-biased fields, encoded. Most are hostile
/// (fields outside the accepted ranges) — the decoder must reject them.
std::vector<std::uint8_t> random_encoded(Rng& rng) {
  Message m;
  switch (rng.uniform(0, 6)) {
    case 0: {
      HelloMsg h;
      h.site = static_cast<SiteId>(rng.uniform(-1, 2));
      h.protocol_version = static_cast<std::uint32_t>(rng.uniform(0, 3));
      h.rom_checksum = rng.next_u64();
      h.cfps = static_cast<std::uint16_t>(rng.uniform(0, 240));
      h.buf_frames = static_cast<std::uint16_t>(rng.uniform(0, 64));
      h.hello_time = interesting_i64(rng);
      h.echo_time = interesting_i64(rng);
      h.echo_hold = interesting_i64(rng);
      h.adv_rtt = interesting_i64(rng);
      h.flags = static_cast<std::uint8_t>(rng.uniform(0, 255));
      h.redundancy = static_cast<std::uint16_t>(rng.uniform(0, 16));
      m = h;
      break;
    }
    case 1: {
      StartMsg s;
      s.site = static_cast<SiteId>(rng.uniform(-1, 2));
      s.buf_frames = static_cast<std::uint16_t>(rng.uniform(0, 64));
      m = s;
      break;
    }
    case 2: {
      SyncMsg s;
      s.site = static_cast<SiteId>(rng.uniform(-2, 3));
      s.ack_frame = interesting_i64(rng);
      s.first_frame = interesting_i64(rng);
      const auto n = static_cast<std::size_t>(
          rng.bernoulli(0.05) ? rng.uniform(0, 4096) : rng.uniform(0, 12));
      for (std::size_t i = 0; i < n; ++i) {
        s.inputs.push_back(static_cast<InputWord>(rng.next_u64()));
      }
      s.send_time = interesting_i64(rng);
      s.echo_time = interesting_i64(rng);
      s.echo_hold = interesting_i64(rng);
      s.hash_frame = interesting_i64(rng);
      s.state_hash = rng.next_u64();
      m = s;
      break;
    }
    case 3: {
      JoinRequestMsg j;
      j.content_id = rng.bernoulli(0.5) ? 0xCE113A125ull : rng.next_u64();
      m = j;
      break;
    }
    case 4: {
      SnapshotMsg s;
      s.frame = interesting_i64(rng);
      const auto n = static_cast<std::size_t>(
          rng.bernoulli(0.05) ? rng.uniform(0, 4096) : rng.uniform(0, 80));
      s.state.resize(n);
      for (auto& b : s.state) b = static_cast<std::uint8_t>(rng.next_u64());
      m = s;
      break;
    }
    case 5: {
      InputFeedMsg f;
      f.first_frame = interesting_i64(rng);
      const auto n = static_cast<std::size_t>(rng.uniform(0, 12));
      for (std::size_t i = 0; i < n; ++i) {
        f.inputs.push_back(static_cast<InputWord>(rng.next_u64()));
      }
      m = f;
      break;
    }
    default: {
      FeedAckMsg a;
      a.frame = interesting_i64(rng);
      m = a;
      break;
    }
  }
  return core::encode_message(m);
}

/// Mutates a buffer in place: truncation, extension, byte flips, or a
/// count-field rewrite (the classic length-confusion attack).
void mutate(Rng& rng, std::vector<std::uint8_t>* buf) {
  switch (rng.uniform(0, 4)) {
    case 0:  // truncate
      if (!buf->empty()) {
        buf->resize(static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(buf->size()) - 1)));
      }
      break;
    case 1: {  // extend with noise
      const auto extra = static_cast<std::size_t>(rng.uniform(1, 16));
      for (std::size_t i = 0; i < extra; ++i) {
        buf->push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
      break;
    }
    case 2: {  // flip a few bytes
      const auto flips = static_cast<std::size_t>(rng.uniform(1, 8));
      for (std::size_t i = 0; i < flips && !buf->empty(); ++i) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(buf->size()) - 1));
        (*buf)[pos] = static_cast<std::uint8_t>(rng.next_u64());
      }
      break;
    }
    case 3: {  // overwrite 4 bytes with an inflated u32 (count confusion)
      if (buf->size() >= 5) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform(1, static_cast<std::int64_t>(buf->size()) - 4));
        const std::uint32_t v =
            rng.bernoulli(0.5) ? 0xFFFFFFFFu : static_cast<std::uint32_t>(rng.uniform(0, 1 << 21));
        std::memcpy(buf->data() + pos, &v, 4);
      }
      break;
    }
    default:
      break;
  }
}

void append_raw(ByteWriter& w, const std::vector<std::uint8_t>& extra) {
  for (std::uint8_t b : extra) w.u8(b);
}

// ---- replay-container fuzz material ----------------------------------------

/// Deterministic fake snapshot bytes — parse() never interprets them, so
/// the corpus stays platform- and emulator-independent.
std::vector<std::uint8_t> synthetic_state(std::size_t len, std::uint8_t tag) {
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = static_cast<std::uint8_t>((i * 7 + tag) & 0xFF);
  }
  return out;
}

/// The canonical small recording the hostile corpus shapes are carved
/// from: 10 inputs; with keyframes, two of them (frames 3 and 7, 40 B of
/// synthetic state each).
core::Replay sample_replay(bool v2, std::string game_name = {}) {
  core::SyncConfig cfg;
  cfg.digest_v2 = true;
  cfg.replay_keyframe_interval = v2 ? 4 : 0;
  core::Replay r(0x1234'5678'9abc'def0ull, cfg, std::move(game_name));
  for (int i = 0; i < 10; ++i) r.record(static_cast<InputWord>(i * 3 + 1));
  if (v2) {
    r.record_keyframe_raw(3, 0x0101010101010101ull, synthetic_state(40, 0x11));
    r.record_keyframe_raw(7, 0x0202020202020202ull, synthetic_state(40, 0x22));
  }
  return r;
}

// Byte offsets into sample_replay(true).serialize() — see the container
// layout in src/core/replay.h (10 inputs, 2 keyframes of 40 B):
//   8 version | 24 digest_version | 25 interval | 29 frame count |
//   33 inputs | 53 keyframe count | 57 kf0.frame | 61 kf0.digest |
//   69 kf0.len | 73 kf0.state | 113 kf1.frame
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffDigestVer = 24;
constexpr std::size_t kOffInterval = 25;
constexpr std::size_t kOffFrameCountV2 = 29;
constexpr std::size_t kOffFrameCountV1 = 24;
constexpr std::size_t kOffKf0Frame = 57;
constexpr std::size_t kOffKf0Digest = 61;
constexpr std::size_t kOffKf0Len = 69;
constexpr std::size_t kOffKf0State = 73;
constexpr std::size_t kOffKf1Frame = 113;

void put_u32(std::vector<std::uint8_t>* buf, std::size_t off, std::uint32_t v) {
  std::memcpy(buf->data() + off, &v, 4);
}

/// Re-stamps the trailing FNV-1a checksum so a deliberately malformed body
/// reaches the structural checks instead of bouncing off the CRC.
void fix_crc(std::vector<std::uint8_t>* buf) {
  if (buf->size() < 8) return;
  const std::uint64_t crc = fnv1a64({buf->data(), buf->size() - 8});
  std::memcpy(buf->data() + buf->size() - 8, &crc, 8);
}

}  // namespace

std::optional<std::string> check_decoder(std::span<const std::uint8_t> bytes) {
  const auto decoded = core::decode_message(bytes);
  if (!decoded) return std::nullopt;  // rejection is correct for hostile input
  if (auto bad = validate_accepted(*decoded)) return bad;
  // Canonical round-trip: an accepted message re-encodes to bytes that
  // decode to the same message (encode ∘ decode idempotent past one hop).
  const auto once = core::encode_message(*decoded);
  const auto again = core::decode_message(once);
  if (!again) return "re-encoded accepted message no longer decodes";
  if (core::encode_message(*again) != once) {
    return "decode/encode round-trip is not canonical";
  }
  return std::nullopt;
}

std::vector<CorpusEntry> build_corpus() {
  std::vector<CorpusEntry> out;
  const auto add = [&out](std::string name, std::vector<std::uint8_t> bytes,
                          bool expect_reject) {
    out.push_back({std::move(name) + ".bin", std::move(bytes), expect_reject});
  };
  const auto valid = [&add](std::string name, const Message& m) {
    add(std::move(name), core::encode_message(m), false);
  };

  // --- valid edge cases: every type, every sentinel --------------------
  HelloMsg hello;
  hello.site = 1;
  hello.protocol_version = 2;
  hello.rom_checksum = 0x1234'5678'9abc'def0ull;
  hello.cfps = 60;
  hello.buf_frames = 6;
  hello.hello_time = 123456789;
  hello.echo_time = -1;  // "no echo yet" sentinel
  hello.adv_rtt = -1;    // "unmeasured" sentinel
  valid("hello_valid", hello);

  valid("start_valid", StartMsg{0, 6});

  SyncMsg sync;
  sync.site = 1;
  sync.ack_frame = -1;  // nothing received yet
  sync.first_frame = 0;
  sync.inputs = {1, 2, 3, 0xFFFF};
  sync.send_time = 1'000'000;
  sync.echo_time = -1;
  sync.hash_frame = -1;
  valid("sync_first_flush", sync);
  sync.ack_frame = 41;
  sync.first_frame = 42;
  sync.send_time = 2'000'000'000;
  sync.echo_time = 1'999'000'000;
  sync.echo_hold = 5'000'000;
  sync.hash_frame = 40;
  sync.state_hash = 0xfeedface;
  valid("sync_steady_state", sync);
  sync.inputs.clear();
  valid("sync_ack_only", sync);
  sync.first_frame = kMaxWireFrame - 1;
  sync.ack_frame = kMaxWireFrame - 1;
  sync.hash_frame = kMaxWireFrame - 1;
  sync.inputs = {7};
  valid("sync_max_frame", sync);

  valid("join_valid", JoinRequestMsg{0xCE113A125ull});
  valid("snapshot_frame_zero", SnapshotMsg{0, {0x01, 0x02, 0x03}});
  valid("snapshot_empty_state", SnapshotMsg{10, {}});
  valid("feed_valid", InputFeedMsg{0, {9, 8, 7}});
  valid("feedack_pregame", FeedAckMsg{-1});
  valid("feedack_valid", FeedAckMsg{599});

  // --- hostile shapes the decoder must reject --------------------------
  add("empty", {}, true);
  add("unknown_type_0", {0x00}, true);
  add("unknown_type_8", {0x08, 0x01, 0x02}, true);
  add("unknown_type_255", {0xFF}, true);

  const auto truncations = [&add](const std::string& base, const Message& m) {
    const auto full = core::encode_message(m);
    add(base + "_trunc_1", {full.begin(), full.begin() + 1}, true);
    add(base + "_trunc_half",
        {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(full.size() / 2)}, true);
    add(base + "_trunc_tail", {full.begin(), full.end() - 1}, true);
    auto trailing = full;
    trailing.push_back(0x00);
    add(base + "_trailing_garbage", std::move(trailing), true);
  };
  truncations("hello", hello);
  truncations("sync", sync);
  truncations("snapshot", SnapshotMsg{3, {1, 2, 3, 4}});
  truncations("feed", InputFeedMsg{5, {1, 2}});

  {
    // SYNC claiming 4096 inputs but carrying 2: length confusion.
    ByteWriter w(64);
    w.u8(3); w.i32(1); w.i64(0); w.i64(0); w.u32(4096); w.u16(1); w.u16(2);
    add("sync_count_oversized", w.take(), true);
  }
  {
    // SYNC claiming 2^32-1 inputs: must reject before reserving.
    ByteWriter w(64);
    w.u8(3); w.i32(1); w.i64(0); w.i64(0); w.u32(0xFFFFFFFFu);
    add("sync_count_huge", w.take(), true);
  }
  {
    // SNAPSHOT claiming 2 MiB with a 4-byte body.
    ByteWriter w(64);
    w.u8(5); w.i64(0); w.u32(2u << 20); w.u32(0xdeadbeef);
    add("snapshot_len_oversized", w.take(), true);
  }
  {
    // FEED claiming the exact cap with no body.
    ByteWriter w(64);
    w.u8(6); w.i64(0); w.u32(4096);
    add("feed_count_oversized", w.take(), true);
  }

  // Out-of-range fields in otherwise well-formed encodings.
  SyncMsg bad = sync;
  bad.first_frame = kMaxWireFrame;
  add("sync_frame_past_cap", core::encode_message(Message{bad}), true);
  bad = sync;
  bad.first_frame = -1;
  add("sync_negative_first_frame", core::encode_message(Message{bad}), true);
  bad = sync;
  bad.ack_frame = -2;
  add("sync_ack_below_sentinel", core::encode_message(Message{bad}), true);
  bad = sync;
  bad.send_time = -5;
  add("sync_negative_send_time", core::encode_message(Message{bad}), true);
  bad = sync;
  bad.echo_hold = std::numeric_limits<Dur>::min();
  add("sync_negative_echo_hold", core::encode_message(Message{bad}), true);
  bad = sync;
  bad.hash_frame = std::numeric_limits<FrameNo>::max();
  add("sync_hash_frame_intmax", core::encode_message(Message{bad}), true);

  HelloMsg bad_hello = hello;
  bad_hello.hello_time = -1;
  add("hello_negative_time", core::encode_message(Message{bad_hello}), true);
  bad_hello = hello;
  bad_hello.echo_hold = -1'000'000;
  add("hello_negative_hold", core::encode_message(Message{bad_hello}), true);

  add("snapshot_frame_pregame", core::encode_message(Message{SnapshotMsg{-1, {1}}}), true);
  add("snapshot_frame_below_sentinel", core::encode_message(Message{SnapshotMsg{-2, {1}}}), true);
  add("feed_negative_frame", core::encode_message(Message{InputFeedMsg{-1, {1}}}), true);
  add("feed_huge_frame",
      core::encode_message(Message{InputFeedMsg{std::numeric_limits<FrameNo>::max() - 3, {1, 2}}}),
      true);
  add("feedack_below_sentinel", core::encode_message(Message{FeedAckMsg{-2}}), true);

  {
    // A SYNC whose input window *ends* past the frame cap (first_frame
    // in range, first_frame + n out of it) — in range per-field, only the
    // window arithmetic overflows. Decode accepts it (per-field rules);
    // ingest must still be safe. Kept in the corpus as a decoder
    // round-trip case.
    ByteWriter w(64);
    w.u8(3); w.i32(1); w.i64(0); w.i64((FrameNo{1} << 48) - 2); w.u32(4);
    w.u16(1); w.u16(2); w.u16(3); w.u16(4);
    w.i64(1); w.i64(-1); w.i64(0); w.i64(-1); w.u64(0);
    add("sync_window_spans_cap", w.take(), false);
  }
  {
    // Raw noise that happens to start with a valid type byte.
    ByteWriter w(64);
    w.u8(3);
    append_raw(w, {0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22});
    add("sync_noise_body", w.take(), true);
  }

  // --- replay containers (Replay::parse is its own trust boundary: a
  // shared .rpl file is attacker-controlled input) ----------------------
  const auto add_replay = [&out](std::string name, std::vector<std::uint8_t> bytes,
                                 bool expect_reject) {
    out.push_back({std::move(name) + ".rpl", std::move(bytes), expect_reject,
                   CorpusEntry::Kind::kReplay});
  };
  const std::vector<std::uint8_t> v1 = sample_replay(false).serialize();
  const std::vector<std::uint8_t> v2 = sample_replay(true).serialize();
  add_replay("rpl1_valid", v1, false);
  add_replay("rpl2_valid", v2, false);

  // Truncated mid-snapshot: the byte stream ends inside kf0's state.
  add_replay("rpl2_trunc_mid_snapshot",
             {v2.begin(), v2.begin() + static_cast<std::ptrdiff_t>(kOffKf0State + 20)}, true);

  {
    // Keyframe digest flipped without re-stamping the CRC: the checksum
    // is the first line of defence for in-body corruption.
    auto b = v2;
    b[kOffKf0Digest] ^= 0xFF;
    add_replay("rpl2_corrupt_keyframe_digest", std::move(b), true);
  }
  {
    // interval=0 in a v2 header is a contradiction (CRC fixed up so the
    // structural check itself must fire).
    auto b = v2;
    put_u32(&b, kOffInterval, 0);
    fix_crc(&b);
    add_replay("rpl2_interval_zero", std::move(b), true);
  }
  {
    // Keyframe tagged past the recording's end: unreachable by seek.
    auto b = v2;
    put_u32(&b, kOffKf0Frame, 100);  // frame count is 10
    fix_crc(&b);
    add_replay("rpl2_keyframe_past_end", std::move(b), true);
  }
  {
    // Keyframes out of order (7 then 3): violates strict monotonicity.
    auto b = v2;
    put_u32(&b, kOffKf0Frame, 7);
    put_u32(&b, kOffKf1Frame, 3);
    fix_crc(&b);
    add_replay("rpl2_keyframes_unsorted", std::move(b), true);
  }
  {
    // The OOM-guard regression (both container versions): a forged frame
    // count of 16M over a 20-byte payload must be rejected *before* any
    // allocation happens.
    auto b = v2;
    put_u32(&b, kOffFrameCountV2, 0x00FFFFFFu);
    fix_crc(&b);
    add_replay("rpl2_count_oversized", std::move(b), true);
    auto c = v1;
    put_u32(&c, kOffFrameCountV1, 0x00FFFFFFu);
    fix_crc(&c);
    add_replay("rpl1_count_oversized", std::move(c), true);
  }
  {
    // Magic/version cross-grafts: both directions must be rejected.
    auto b = v1;
    put_u32(&b, kOffVersion, 2);
    fix_crc(&b);
    add_replay("rpl1_magic_v2_version", std::move(b), true);
    auto c = v2;
    put_u32(&c, kOffVersion, 1);
    fix_crc(&c);
    add_replay("rpl2_magic_v1_version", std::move(c), true);
  }
  {
    // digest_version outside {1,2}: a reader that guessed would compare
    // incomparable hashes.
    auto b = v2;
    b[kOffDigestVer] = 7;
    fix_crc(&b);
    add_replay("rpl2_digest_version_bad", std::move(b), true);
  }
  {
    // Keyframe state length of 2 MiB (over the 1 MiB cap, and over the
    // actual payload): must bounce without reserving.
    auto b = v2;
    put_u32(&b, kOffKf0Len, 2u << 20);
    fix_crc(&b);
    add_replay("rpl2_state_len_oversized", std::move(b), true);
  }

  // --- the optional game-name trailer -----------------------------------
  const std::vector<std::uint8_t> v2n = sample_replay(true, "agent86:sample").serialize();
  add_replay("rpl2_named_valid", v2n, false);
  add_replay("rpl1_named_valid", sample_replay(false, "ac16:sample").serialize(), false);
  {
    // Name length byte claiming more bytes than are present: the trailer
    // must account exactly for what remains before the CRC.
    auto b = v2n;
    b[b.size() - 8 - 1 - 14] = 200;  // len byte of the 14-char name
    fix_crc(&b);
    add_replay("rpl2_name_len_overrun", std::move(b), true);
  }
  {
    // A zero-length name trailer is a contradiction (writers omit the
    // section entirely when the name is unknown).
    auto b = v2;
    b.insert(b.end() - 8, 0x00);
    fix_crc(&b);
    add_replay("rpl2_name_len_zero", std::move(b), true);
  }
  return out;
}

std::optional<std::string> check_replay_container(std::span<const std::uint8_t> bytes,
                                                  bool expect_reject) {
  const auto parsed = core::Replay::parse(bytes);
  if (expect_reject) {
    if (parsed) return "hostile replay container was accepted";
    return std::nullopt;
  }
  if (!parsed) return "valid replay container was rejected";
  // Canonical round-trip, the container analogue of the wire check.
  const auto once = parsed->serialize();
  const auto again = core::Replay::parse(once);
  if (!again) return "re-serialized replay no longer parses";
  if (again->serialize() != once) return "replay parse/serialize round-trip is not canonical";
  return std::nullopt;
}

std::optional<std::string> fuzz_replay(std::uint64_t seed, int iterations, FuzzStats* stats) {
  Rng rng(seed);
  FuzzStats local;
  for (int i = 0; i < iterations; ++i) {
    ++local.iterations;
    std::vector<std::uint8_t> buf;
    if (rng.bernoulli(0.1)) {
      // Pure noise (rarely even reaches the CRC check).
      buf.resize(static_cast<std::size_t>(rng.uniform(0, 96)));
      for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    } else {
      // A structurally valid container with randomized shape...
      const bool v2 = rng.bernoulli(0.7);
      core::SyncConfig cfg;
      cfg.digest_v2 = rng.bernoulli(0.5);
      cfg.replay_keyframe_interval = v2 ? static_cast<int>(rng.uniform(1, 8)) : 0;
      core::Replay r(rng.next_u64(), cfg);
      const auto frames = static_cast<int>(rng.uniform(0, 24));
      for (int f = 0; f < frames; ++f) r.record(static_cast<InputWord>(rng.next_u64()));
      if (v2 && frames > 0) {
        FrameNo kf = rng.uniform(0, frames - 1);
        while (kf < frames) {
          r.record_keyframe_raw(kf, rng.next_u64(),
                                synthetic_state(static_cast<std::size_t>(rng.uniform(0, 64)),
                                                static_cast<std::uint8_t>(rng.next_u64())));
          kf += rng.uniform(1, 8);
        }
      }
      buf = r.serialize();
      // ...then mutated; half the mutants get a fresh CRC so the
      // structural validation behind the checksum is actually reached.
      if (rng.bernoulli(0.7)) {
        mutate(rng, &buf);
        if (rng.bernoulli(0.5)) fix_crc(&buf);
      }
    }
    const auto parsed = core::Replay::parse(buf);
    if (parsed) {
      ++local.accepted;
      const auto once = parsed->serialize();
      const auto again = core::Replay::parse(once);
      if (!again || again->serialize() != once) {
        if (stats != nullptr) *stats = local;
        return "iteration " + std::to_string(i) + " (seed " + std::to_string(seed) +
               "): accepted replay container does not round-trip canonically";
      }
    } else {
      ++local.rejected;
    }
  }
  if (stats != nullptr) *stats = local;
  return std::nullopt;
}

std::optional<std::string> fuzz_wire(std::uint64_t seed, int iterations, FuzzStats* stats) {
  Rng rng(seed);
  FuzzStats local;
  for (int i = 0; i < iterations; ++i) {
    ++local.iterations;
    std::vector<std::uint8_t> buf;
    if (rng.bernoulli(0.15)) {
      // Pure noise.
      buf.resize(static_cast<std::size_t>(rng.uniform(0, 64)));
      for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    } else {
      buf = random_encoded(rng);
      if (rng.bernoulli(0.7)) mutate(rng, &buf);
    }
    if (core::decode_message(buf)) {
      ++local.accepted;
    } else {
      ++local.rejected;
    }
    if (auto fail = check_decoder(buf)) {
      if (stats != nullptr) *stats = local;
      return "iteration " + std::to_string(i) + " (seed " + std::to_string(seed) +
             "): " + *fail;
    }
  }
  if (stats != nullptr) *stats = local;
  return std::nullopt;
}

std::optional<std::string> fuzz_ingest(std::uint64_t seed, int iterations) {
  Rng rng(seed);
  core::SyncConfig cfg;
  cfg.buf_frames = 4;
  core::SyncPeer peer(0, cfg);
  core::SessionControl session(0, /*rom_checksum=*/1, cfg);
  core::SpectatorHost host(/*content_id=*/7, cfg);
  games::CellWarsGame replica;
  core::SpectatorClient client(replica, cfg);

  FrameNo local_frame = 0;
  Time now = 0;
  for (int i = 0; i < iterations; ++i) {
    now += 1'000'000;  // 1 ms per iteration keeps timestamps sane
    auto buf = random_encoded(rng);
    if (rng.bernoulli(0.7)) mutate(rng, &buf);
    const auto decoded = core::decode_message(buf);
    if (decoded) {
      // The decoder accepted it, so every state machine must survive it —
      // this is exactly the deployed trust boundary.
      session.ingest(*decoded, now);
      host.ingest(*decoded);
      client.ingest(*decoded);
      if (const auto* sync = std::get_if<SyncMsg>(&*decoded)) {
        peer.ingest(*sync, now);
      }
    }
    // Drive the machines forward so ingested state is consumed, not just
    // stored: local frames advance, ready inputs pop, messages flush.
    peer.submit_local(local_frame, static_cast<InputWord>(rng.next_u64()));
    ++local_frame;
    while (peer.ready()) peer.pop();
    (void)peer.make_message(now);
    if (host.wants_snapshot()) {
      static constexpr std::uint8_t kTinyState[] = {0x01, 0x02};
      host.provide_snapshot(static_cast<FrameNo>(i), kTinyState);
    }
    host.on_frame(static_cast<FrameNo>(i), static_cast<InputWord>(rng.next_u64()));
    (void)host.make_message(now);
    (void)client.make_message(now);
    (void)client.step_available();
  }
  return std::nullopt;  // sanitizers are the oracle here
}

}  // namespace rtct::chaos
