#include "src/chaos/fuzz.h"

#include <cstring>
#include <limits>

#include "src/common/bytes.h"
#include "src/common/random.h"
#include "src/core/session.h"
#include "src/core/spectate.h"
#include "src/core/sync_peer.h"
#include "src/core/wire.h"
#include "src/games/cellwars.h"

namespace rtct::chaos {

namespace {

using core::FeedAckMsg;
using core::HelloMsg;
using core::InputFeedMsg;
using core::JoinRequestMsg;
using core::Message;
using core::SnapshotMsg;
using core::StartMsg;
using core::SyncMsg;

// Mirror of wire.cpp's decode bounds (documented in docs/PROTOCOL.md):
// anything decode accepts must satisfy these, so the fuzzer checks them
// independently rather than trusting the implementation it is testing.
constexpr FrameNo kMaxWireFrame = FrameNo{1} << 48;
constexpr std::size_t kMaxWireInputs = 4096;
constexpr std::size_t kMaxSnapshot = 1 << 20;

bool frame_ok(FrameNo f, FrameNo floor) { return f >= floor && f < kMaxWireFrame; }
bool time_ok(Time t, Time floor) { return t >= floor; }

/// Checks an accepted message against the documented field ranges.
std::optional<std::string> validate_accepted(const Message& m) {
  if (const auto* h = std::get_if<HelloMsg>(&m)) {
    if (!time_ok(h->hello_time, 0) || !time_ok(h->echo_time, -1) ||
        !time_ok(h->echo_hold, 0) || !time_ok(h->adv_rtt, -1)) {
      return "accepted HELLO with out-of-range timestamps";
    }
  } else if (const auto* s = std::get_if<SyncMsg>(&m)) {
    if (!frame_ok(s->first_frame, 0) || !frame_ok(s->ack_frame, -1) ||
        !frame_ok(s->hash_frame, -1)) {
      return "accepted SYNC with out-of-range frames";
    }
    if (!time_ok(s->send_time, 0) || !time_ok(s->echo_time, -1) ||
        !time_ok(s->echo_hold, 0)) {
      return "accepted SYNC with out-of-range timestamps";
    }
    if (s->inputs.size() > kMaxWireInputs) return "accepted SYNC over the input cap";
  } else if (const auto* snap = std::get_if<SnapshotMsg>(&m)) {
    if (!frame_ok(snap->frame, 0)) return "accepted SNAPSHOT with out-of-range frame";
    if (snap->state.size() > kMaxSnapshot) return "accepted SNAPSHOT over the size cap";
  } else if (const auto* f = std::get_if<InputFeedMsg>(&m)) {
    if (!frame_ok(f->first_frame, 0)) return "accepted FEED with out-of-range frame";
    if (f->inputs.size() > kMaxWireInputs) return "accepted FEED over the input cap";
  } else if (const auto* a = std::get_if<FeedAckMsg>(&m)) {
    if (!frame_ok(a->frame, -1)) return "accepted ACK with out-of-range frame";
  }
  return std::nullopt;
}

/// Edge-biased 64-bit value: boundaries of the decode ranges plus noise.
std::int64_t interesting_i64(Rng& rng) {
  switch (rng.uniform(0, 8)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return -1;
    case 3: return -2;
    case 4: return (std::int64_t{1} << 48) - 1;
    case 5: return std::int64_t{1} << 48;
    case 6: return std::numeric_limits<std::int64_t>::max();
    case 7: return std::numeric_limits<std::int64_t>::min();
    default: return static_cast<std::int64_t>(rng.next_u64());
  }
}

/// A random message with edge-biased fields, encoded. Most are hostile
/// (fields outside the accepted ranges) — the decoder must reject them.
std::vector<std::uint8_t> random_encoded(Rng& rng) {
  Message m;
  switch (rng.uniform(0, 6)) {
    case 0: {
      HelloMsg h;
      h.site = static_cast<SiteId>(rng.uniform(-1, 2));
      h.protocol_version = static_cast<std::uint32_t>(rng.uniform(0, 3));
      h.rom_checksum = rng.next_u64();
      h.cfps = static_cast<std::uint16_t>(rng.uniform(0, 240));
      h.buf_frames = static_cast<std::uint16_t>(rng.uniform(0, 64));
      h.hello_time = interesting_i64(rng);
      h.echo_time = interesting_i64(rng);
      h.echo_hold = interesting_i64(rng);
      h.adv_rtt = interesting_i64(rng);
      h.flags = static_cast<std::uint8_t>(rng.uniform(0, 255));
      h.redundancy = static_cast<std::uint16_t>(rng.uniform(0, 16));
      m = h;
      break;
    }
    case 1: {
      StartMsg s;
      s.site = static_cast<SiteId>(rng.uniform(-1, 2));
      s.buf_frames = static_cast<std::uint16_t>(rng.uniform(0, 64));
      m = s;
      break;
    }
    case 2: {
      SyncMsg s;
      s.site = static_cast<SiteId>(rng.uniform(-2, 3));
      s.ack_frame = interesting_i64(rng);
      s.first_frame = interesting_i64(rng);
      const auto n = static_cast<std::size_t>(
          rng.bernoulli(0.05) ? rng.uniform(0, 4096) : rng.uniform(0, 12));
      for (std::size_t i = 0; i < n; ++i) {
        s.inputs.push_back(static_cast<InputWord>(rng.next_u64()));
      }
      s.send_time = interesting_i64(rng);
      s.echo_time = interesting_i64(rng);
      s.echo_hold = interesting_i64(rng);
      s.hash_frame = interesting_i64(rng);
      s.state_hash = rng.next_u64();
      m = s;
      break;
    }
    case 3: {
      JoinRequestMsg j;
      j.content_id = rng.bernoulli(0.5) ? 0xCE113A125ull : rng.next_u64();
      m = j;
      break;
    }
    case 4: {
      SnapshotMsg s;
      s.frame = interesting_i64(rng);
      const auto n = static_cast<std::size_t>(
          rng.bernoulli(0.05) ? rng.uniform(0, 4096) : rng.uniform(0, 80));
      s.state.resize(n);
      for (auto& b : s.state) b = static_cast<std::uint8_t>(rng.next_u64());
      m = s;
      break;
    }
    case 5: {
      InputFeedMsg f;
      f.first_frame = interesting_i64(rng);
      const auto n = static_cast<std::size_t>(rng.uniform(0, 12));
      for (std::size_t i = 0; i < n; ++i) {
        f.inputs.push_back(static_cast<InputWord>(rng.next_u64()));
      }
      m = f;
      break;
    }
    default: {
      FeedAckMsg a;
      a.frame = interesting_i64(rng);
      m = a;
      break;
    }
  }
  return core::encode_message(m);
}

/// Mutates a buffer in place: truncation, extension, byte flips, or a
/// count-field rewrite (the classic length-confusion attack).
void mutate(Rng& rng, std::vector<std::uint8_t>* buf) {
  switch (rng.uniform(0, 4)) {
    case 0:  // truncate
      if (!buf->empty()) {
        buf->resize(static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(buf->size()) - 1)));
      }
      break;
    case 1: {  // extend with noise
      const auto extra = static_cast<std::size_t>(rng.uniform(1, 16));
      for (std::size_t i = 0; i < extra; ++i) {
        buf->push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
      break;
    }
    case 2: {  // flip a few bytes
      const auto flips = static_cast<std::size_t>(rng.uniform(1, 8));
      for (std::size_t i = 0; i < flips && !buf->empty(); ++i) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(buf->size()) - 1));
        (*buf)[pos] = static_cast<std::uint8_t>(rng.next_u64());
      }
      break;
    }
    case 3: {  // overwrite 4 bytes with an inflated u32 (count confusion)
      if (buf->size() >= 5) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform(1, static_cast<std::int64_t>(buf->size()) - 4));
        const std::uint32_t v =
            rng.bernoulli(0.5) ? 0xFFFFFFFFu : static_cast<std::uint32_t>(rng.uniform(0, 1 << 21));
        std::memcpy(buf->data() + pos, &v, 4);
      }
      break;
    }
    default:
      break;
  }
}

void append_raw(ByteWriter& w, const std::vector<std::uint8_t>& extra) {
  for (std::uint8_t b : extra) w.u8(b);
}

}  // namespace

std::optional<std::string> check_decoder(std::span<const std::uint8_t> bytes) {
  const auto decoded = core::decode_message(bytes);
  if (!decoded) return std::nullopt;  // rejection is correct for hostile input
  if (auto bad = validate_accepted(*decoded)) return bad;
  // Canonical round-trip: an accepted message re-encodes to bytes that
  // decode to the same message (encode ∘ decode idempotent past one hop).
  const auto once = core::encode_message(*decoded);
  const auto again = core::decode_message(once);
  if (!again) return "re-encoded accepted message no longer decodes";
  if (core::encode_message(*again) != once) {
    return "decode/encode round-trip is not canonical";
  }
  return std::nullopt;
}

std::vector<CorpusEntry> build_corpus() {
  std::vector<CorpusEntry> out;
  const auto add = [&out](std::string name, std::vector<std::uint8_t> bytes,
                          bool expect_reject) {
    out.push_back({std::move(name) + ".bin", std::move(bytes), expect_reject});
  };
  const auto valid = [&add](std::string name, const Message& m) {
    add(std::move(name), core::encode_message(m), false);
  };

  // --- valid edge cases: every type, every sentinel --------------------
  HelloMsg hello;
  hello.site = 1;
  hello.protocol_version = 2;
  hello.rom_checksum = 0x1234'5678'9abc'def0ull;
  hello.cfps = 60;
  hello.buf_frames = 6;
  hello.hello_time = 123456789;
  hello.echo_time = -1;  // "no echo yet" sentinel
  hello.adv_rtt = -1;    // "unmeasured" sentinel
  valid("hello_valid", hello);

  valid("start_valid", StartMsg{0, 6});

  SyncMsg sync;
  sync.site = 1;
  sync.ack_frame = -1;  // nothing received yet
  sync.first_frame = 0;
  sync.inputs = {1, 2, 3, 0xFFFF};
  sync.send_time = 1'000'000;
  sync.echo_time = -1;
  sync.hash_frame = -1;
  valid("sync_first_flush", sync);
  sync.ack_frame = 41;
  sync.first_frame = 42;
  sync.send_time = 2'000'000'000;
  sync.echo_time = 1'999'000'000;
  sync.echo_hold = 5'000'000;
  sync.hash_frame = 40;
  sync.state_hash = 0xfeedface;
  valid("sync_steady_state", sync);
  sync.inputs.clear();
  valid("sync_ack_only", sync);
  sync.first_frame = kMaxWireFrame - 1;
  sync.ack_frame = kMaxWireFrame - 1;
  sync.hash_frame = kMaxWireFrame - 1;
  sync.inputs = {7};
  valid("sync_max_frame", sync);

  valid("join_valid", JoinRequestMsg{0xCE113A125ull});
  valid("snapshot_frame_zero", SnapshotMsg{0, {0x01, 0x02, 0x03}});
  valid("snapshot_empty_state", SnapshotMsg{10, {}});
  valid("feed_valid", InputFeedMsg{0, {9, 8, 7}});
  valid("feedack_pregame", FeedAckMsg{-1});
  valid("feedack_valid", FeedAckMsg{599});

  // --- hostile shapes the decoder must reject --------------------------
  add("empty", {}, true);
  add("unknown_type_0", {0x00}, true);
  add("unknown_type_8", {0x08, 0x01, 0x02}, true);
  add("unknown_type_255", {0xFF}, true);

  const auto truncations = [&add](const std::string& base, const Message& m) {
    const auto full = core::encode_message(m);
    add(base + "_trunc_1", {full.begin(), full.begin() + 1}, true);
    add(base + "_trunc_half",
        {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(full.size() / 2)}, true);
    add(base + "_trunc_tail", {full.begin(), full.end() - 1}, true);
    auto trailing = full;
    trailing.push_back(0x00);
    add(base + "_trailing_garbage", std::move(trailing), true);
  };
  truncations("hello", hello);
  truncations("sync", sync);
  truncations("snapshot", SnapshotMsg{3, {1, 2, 3, 4}});
  truncations("feed", InputFeedMsg{5, {1, 2}});

  {
    // SYNC claiming 4096 inputs but carrying 2: length confusion.
    ByteWriter w(64);
    w.u8(3); w.i32(1); w.i64(0); w.i64(0); w.u32(4096); w.u16(1); w.u16(2);
    add("sync_count_oversized", w.take(), true);
  }
  {
    // SYNC claiming 2^32-1 inputs: must reject before reserving.
    ByteWriter w(64);
    w.u8(3); w.i32(1); w.i64(0); w.i64(0); w.u32(0xFFFFFFFFu);
    add("sync_count_huge", w.take(), true);
  }
  {
    // SNAPSHOT claiming 2 MiB with a 4-byte body.
    ByteWriter w(64);
    w.u8(5); w.i64(0); w.u32(2u << 20); w.u32(0xdeadbeef);
    add("snapshot_len_oversized", w.take(), true);
  }
  {
    // FEED claiming the exact cap with no body.
    ByteWriter w(64);
    w.u8(6); w.i64(0); w.u32(4096);
    add("feed_count_oversized", w.take(), true);
  }

  // Out-of-range fields in otherwise well-formed encodings.
  SyncMsg bad = sync;
  bad.first_frame = kMaxWireFrame;
  add("sync_frame_past_cap", core::encode_message(Message{bad}), true);
  bad = sync;
  bad.first_frame = -1;
  add("sync_negative_first_frame", core::encode_message(Message{bad}), true);
  bad = sync;
  bad.ack_frame = -2;
  add("sync_ack_below_sentinel", core::encode_message(Message{bad}), true);
  bad = sync;
  bad.send_time = -5;
  add("sync_negative_send_time", core::encode_message(Message{bad}), true);
  bad = sync;
  bad.echo_hold = std::numeric_limits<Dur>::min();
  add("sync_negative_echo_hold", core::encode_message(Message{bad}), true);
  bad = sync;
  bad.hash_frame = std::numeric_limits<FrameNo>::max();
  add("sync_hash_frame_intmax", core::encode_message(Message{bad}), true);

  HelloMsg bad_hello = hello;
  bad_hello.hello_time = -1;
  add("hello_negative_time", core::encode_message(Message{bad_hello}), true);
  bad_hello = hello;
  bad_hello.echo_hold = -1'000'000;
  add("hello_negative_hold", core::encode_message(Message{bad_hello}), true);

  add("snapshot_frame_pregame", core::encode_message(Message{SnapshotMsg{-1, {1}}}), true);
  add("snapshot_frame_below_sentinel", core::encode_message(Message{SnapshotMsg{-2, {1}}}), true);
  add("feed_negative_frame", core::encode_message(Message{InputFeedMsg{-1, {1}}}), true);
  add("feed_huge_frame",
      core::encode_message(Message{InputFeedMsg{std::numeric_limits<FrameNo>::max() - 3, {1, 2}}}),
      true);
  add("feedack_below_sentinel", core::encode_message(Message{FeedAckMsg{-2}}), true);

  {
    // A SYNC whose input window *ends* past the frame cap (first_frame
    // in range, first_frame + n out of it) — in range per-field, only the
    // window arithmetic overflows. Decode accepts it (per-field rules);
    // ingest must still be safe. Kept in the corpus as a decoder
    // round-trip case.
    ByteWriter w(64);
    w.u8(3); w.i32(1); w.i64(0); w.i64((FrameNo{1} << 48) - 2); w.u32(4);
    w.u16(1); w.u16(2); w.u16(3); w.u16(4);
    w.i64(1); w.i64(-1); w.i64(0); w.i64(-1); w.u64(0);
    add("sync_window_spans_cap", w.take(), false);
  }
  {
    // Raw noise that happens to start with a valid type byte.
    ByteWriter w(64);
    w.u8(3);
    append_raw(w, {0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22});
    add("sync_noise_body", w.take(), true);
  }
  return out;
}

std::optional<std::string> fuzz_wire(std::uint64_t seed, int iterations, FuzzStats* stats) {
  Rng rng(seed);
  FuzzStats local;
  for (int i = 0; i < iterations; ++i) {
    ++local.iterations;
    std::vector<std::uint8_t> buf;
    if (rng.bernoulli(0.15)) {
      // Pure noise.
      buf.resize(static_cast<std::size_t>(rng.uniform(0, 64)));
      for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    } else {
      buf = random_encoded(rng);
      if (rng.bernoulli(0.7)) mutate(rng, &buf);
    }
    if (core::decode_message(buf)) {
      ++local.accepted;
    } else {
      ++local.rejected;
    }
    if (auto fail = check_decoder(buf)) {
      if (stats != nullptr) *stats = local;
      return "iteration " + std::to_string(i) + " (seed " + std::to_string(seed) +
             "): " + *fail;
    }
  }
  if (stats != nullptr) *stats = local;
  return std::nullopt;
}

std::optional<std::string> fuzz_ingest(std::uint64_t seed, int iterations) {
  Rng rng(seed);
  core::SyncConfig cfg;
  cfg.buf_frames = 4;
  core::SyncPeer peer(0, cfg);
  core::SessionControl session(0, /*rom_checksum=*/1, cfg);
  core::SpectatorHost host(/*content_id=*/7, cfg);
  games::CellWarsGame replica;
  core::SpectatorClient client(replica, cfg);

  FrameNo local_frame = 0;
  Time now = 0;
  for (int i = 0; i < iterations; ++i) {
    now += 1'000'000;  // 1 ms per iteration keeps timestamps sane
    auto buf = random_encoded(rng);
    if (rng.bernoulli(0.7)) mutate(rng, &buf);
    const auto decoded = core::decode_message(buf);
    if (decoded) {
      // The decoder accepted it, so every state machine must survive it —
      // this is exactly the deployed trust boundary.
      session.ingest(*decoded, now);
      host.ingest(*decoded);
      client.ingest(*decoded);
      if (const auto* sync = std::get_if<SyncMsg>(&*decoded)) {
        peer.ingest(*sync, now);
      }
    }
    // Drive the machines forward so ingested state is consumed, not just
    // stored: local frames advance, ready inputs pop, messages flush.
    peer.submit_local(local_frame, static_cast<InputWord>(rng.next_u64()));
    ++local_frame;
    while (peer.ready()) peer.pop();
    (void)peer.make_message(now);
    if (host.wants_snapshot()) {
      static constexpr std::uint8_t kTinyState[] = {0x01, 0x02};
      host.provide_snapshot(static_cast<FrameNo>(i), kTinyState);
    }
    host.on_frame(static_cast<FrameNo>(i), static_cast<InputWord>(rng.next_u64()));
    (void)host.make_message(now);
    (void)client.make_message(now);
    (void)client.step_available();
  }
  return std::nullopt;  // sanitizers are the oracle here
}

}  // namespace rtct::chaos
