#include "src/chaos/soak.h"

#include "src/common/json.h"
#include "src/games/cellwars.h"

namespace rtct::chaos {

namespace {

net::NetemConfig base_path(const FaultScript& s) {
  net::NetemConfig c = net::NetemConfig::for_rtt(s.base_rtt);
  c.jitter = milliseconds(2);
  c.loss = s.base_loss;
  return c;
}

/// The degraded shape a fault applies while active.
net::NetemConfig degraded_path(const FaultScript& s, const Fault& f) {
  net::NetemConfig d = base_path(s);
  switch (f.kind) {
    case FaultKind::kLossBurst:
      d.loss = f.magnitude;
      break;
    case FaultKind::kReorderStorm:
      d.reorder = f.magnitude;
      d.reorder_extra = f.extra;
      break;
    case FaultKind::kDuplication:
      d.duplicate = f.magnitude;
      break;
    case FaultKind::kLatencySpike:
      d.delay = static_cast<Dur>(static_cast<double>(d.delay) * f.magnitude);
      d.jitter = f.extra;
      break;
    case FaultKind::kAsymFlip:
      d.loss = f.magnitude;
      break;
    case FaultKind::kConfigFlap:
      d.delay = static_cast<Dur>(static_cast<double>(d.delay) * f.magnitude);
      break;
    case FaultKind::kSiteStall:
      break;  // no path change
  }
  return d;
}

void common_sync(const FaultScript& s, core::SyncConfig* sync) {
  sync->hash_interval = 30;  // tighter desync tripwire than the default
  // Dense keyframes: chaos cases are short, and a failed case should hand
  // the bisector a tight (≤150-frame) bracket around the divergence.
  sync->replay_keyframe_interval = 150;
  if (s.adaptive_transport) {
    sync->adaptive_lag = true;
    sync->adaptive_resend = true;
    sync->redundant_inputs = 2;
  }
  // Both sites opt in, so the v3 handshake settles on rollback and the
  // identical fault schedule exercises the speculation/restore path.
  if (s.rollback) sync->rollback = true;
}

}  // namespace

testbed::ExperimentConfig lower_two_site(const FaultScript& s) {
  testbed::ExperimentConfig cfg;
  // Native game: a full two-site session costs ~10 ms of host CPU, which
  // is what lets the soak run hundreds of seeds inside tier-1 budgets.
  cfg.game_factory = games::make_cellwars;
  cfg.frames = s.frames;
  common_sync(s, &cfg.sync);
  const net::NetemConfig base = base_path(s);
  cfg.net_a_to_b = base;
  cfg.net_b_to_a = base;
  cfg.site_boot_delay[1] = s.boot_skew;
  cfg.input_seed[0] = s.seed + 1;
  cfg.input_seed[1] = s.seed + 2;
  cfg.net_seed = s.seed + 3;
  cfg.observers = s.observers;
  cfg.observer_join_delays = s.observer_join_delays;
  cfg.observer_leave_after = s.observer_leave_after;

  using Dir = testbed::ExperimentConfig::NetEvent::Dir;
  for (const Fault& f : s.faults) {
    const net::NetemConfig d = degraded_path(s, f);
    switch (f.kind) {
      case FaultKind::kSiteStall:
        cfg.stall_events.push_back({f.at, f.duration, f.site});
        break;
      case FaultKind::kAsymFlip: {
        // Degrade one direction, then hand the degradation to the other
        // mid-fault: the path asymmetry itself flips.
        const Dir first = f.site == 0 ? Dir::kAToB : Dir::kBToA;
        const Dir second = f.site == 0 ? Dir::kBToA : Dir::kAToB;
        cfg.net_events.push_back({f.at, d, first});
        cfg.net_events.push_back({f.at + f.duration / 2, base, first});
        cfg.net_events.push_back({f.at + f.duration / 2, d, second});
        cfg.net_events.push_back({f.at + f.duration, base, second});
        break;
      }
      case FaultKind::kConfigFlap: {
        // Rapid alternation: four reconfigurations across the window, the
        // kind of thrash a flapping route or an aggressive ABR would cause.
        const Dur step = f.duration / 4;
        for (int k = 0; k < 4; ++k) {
          cfg.net_events.push_back({f.at + k * step, k % 2 == 0 ? d : base, Dir::kBoth});
        }
        cfg.net_events.push_back({f.at + f.duration, base, Dir::kBoth});
        break;
      }
      default:
        cfg.net_events.push_back({f.at, d, Dir::kBoth});
        cfg.net_events.push_back({f.at + f.duration, base, Dir::kBoth});
        break;
    }
  }
  return cfg;
}

testbed::MeshExperimentConfig lower_mesh(const FaultScript& s) {
  testbed::MeshExperimentConfig cfg;
  cfg.game_factory = games::make_cellwars;
  cfg.num_sites = s.num_sites;
  cfg.frames = s.frames;
  cfg.sync.hash_interval = 30;  // mesh has no handshake: keep fixed lag
  cfg.net = base_path(s);
  cfg.boot_stagger = s.boot_skew;
  cfg.input_seed_base = s.seed + 11;
  cfg.net_seed = s.seed + 3;
  const net::NetemConfig base = base_path(s);
  for (const Fault& f : s.faults) {
    const net::NetemConfig d = degraded_path(s, f);
    if (f.kind == FaultKind::kConfigFlap) {
      const Dur step = f.duration / 4;
      for (int k = 0; k < 4; ++k) {
        cfg.net_events.push_back({f.at + k * step, k % 2 == 0 ? d : base});
      }
      cfg.net_events.push_back({f.at + f.duration, base});
    } else {
      cfg.net_events.push_back({f.at, d});
      cfg.net_events.push_back({f.at + f.duration, base});
    }
  }
  return cfg;
}

SoakOutcome run_soak_case(const FaultScript& script) {
  SoakOutcome o;
  o.script = script;
  if (script.topology == Topology::kMesh) {
    const testbed::MeshExperimentConfig cfg = lower_mesh(script);
    const testbed::MeshExperimentResult r = run_mesh_experiment(cfg);
    // Fault-free twin: the pacing baseline this script's mesh actually
    // holds, against which post-fault re-convergence is judged.
    FaultScript clean = script;
    clean.faults.clear();
    const testbed::MeshExperimentResult ref = run_mesh_experiment(lower_mesh(clean));
    o.violations = check_mesh(cfg, r, &ref);
    o.first_divergence = r.first_divergence();
    o.frames_completed = r.sites.empty() ? 0 : r.sites[0].frames_completed;
  } else {
    const testbed::ExperimentConfig cfg = lower_two_site(script);
    const testbed::ExperimentResult r = run_experiment(cfg);
    o.violations = check_two_site(cfg, r);
    o.first_divergence = r.first_divergence();
    o.frames_completed = r.site[0].frames_completed;
    o.replays = {r.site[0].replay, r.site[1].replay};
    o.timelines = {r.site[0].timeline, r.site[1].timeline};
  }
  return o;
}

SoakOutcome run_soak_case(std::uint64_t seed, Topology topology) {
  return run_soak_case(generate_fault_script(seed, topology));
}

std::string outcome_to_json(const SoakOutcome& o) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("rtct.chaos.repro.v1");
  w.key("pass").value(o.passed());
  w.key("first_divergence").value(static_cast<std::int64_t>(o.first_divergence));
  w.key("frames_completed").value(static_cast<std::int64_t>(o.frames_completed));
  w.key("violations").begin_array();
  for (const Violation& v : o.violations) {
    w.begin_object();
    w.key("invariant").value(v.invariant);
    w.key("frame").value(static_cast<std::int64_t>(v.frame));
    w.key("detail").value(v.detail);
    w.end_object();
  }
  w.end_array();
  w.key("script");
  write_script(w, o.script);
  w.end_object();
  return w.take();
}

}  // namespace rtct::chaos
