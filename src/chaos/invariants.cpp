#include "src/chaos/invariants.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace rtct::chaos {

namespace {

std::string fmt_ms(Time t) {
  return std::to_string(static_cast<double>(t) / 1e6) + " ms";
}

void check_completion(const char* who, bool aborted, bool failed,
                      const std::string& reason, FrameNo completed,
                      FrameNo expected, std::vector<Violation>* out) {
  if (aborted) {
    out->push_back({"completion", -1,
                    std::string(who) + " aborted (watchdog): " + reason});
  } else if (failed) {
    out->push_back({"completion", -1, std::string(who) + " session failed: " + reason});
  } else if (completed != expected) {
    out->push_back({"completion", completed,
                    std::string(who) + " completed " + std::to_string(completed) +
                        "/" + std::to_string(expected) + " frames"});
  }
}

void check_watermark(const char* who, const core::FrameTimeline& t,
                     std::vector<Violation>* out) {
  const auto& recs = t.records();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (recs[i].frame != static_cast<FrameNo>(i)) {
      out->push_back({"watermark", static_cast<FrameNo>(i),
                      std::string(who) + " timeline gap: record " + std::to_string(i) +
                          " holds frame " + std::to_string(recs[i].frame)});
      return;
    }
  }
}

// Causality bound on frame lead: site A's input for display frame f
// includes site B's partial, which B submits during its frame f - buf.
// SyncInput at A therefore cannot return for frame f before B *began*
// frame f - buf. Exact in virtual time — any violation means a site
// executed a frame without a peer input that could have reached it.
void check_frame_lead(const char* who_a, const core::FrameTimeline& a,
                      const core::FrameTimeline& b, int buf_frames,
                      std::vector<Violation>* out) {
  const auto& ra = a.records();
  const auto& rb = b.records();
  const auto n = std::min(ra.size(), rb.size());
  for (std::size_t f = buf_frames; f < n; ++f) {
    const auto& behind = rb[f - buf_frames];
    if (ra[f].input_ready_time < behind.begin_time) {
      out->push_back({"frame-lead", static_cast<FrameNo>(f),
                      std::string(who_a) + " had frame " + std::to_string(f) +
                          " input ready at " + fmt_ms(ra[f].input_ready_time) +
                          ", before peer began frame " +
                          std::to_string(f - buf_frames) + " at " +
                          fmt_ms(behind.begin_time)});
      return;
    }
  }
}

struct TailPace {
  bool valid = false;
  std::size_t first = 0;  ///< index of the first tail frame
  double mean = 0;        ///< mean tail frame time, ns
  double dev = 0;         ///< mean |frame time - period| over the tail, ns
};

TailPace tail_pace(const core::FrameTimeline& t, Dur period,
                   std::size_t max_tail) {
  TailPace p;
  const auto& recs = t.records();
  const std::size_t tail = std::min(max_tail, recs.size() / 3);
  if (tail < 8) return p;  // too short a session to judge convergence
  p.valid = true;
  p.first = recs.size() - tail;
  for (std::size_t i = p.first; i + 1 < recs.size(); ++i) {
    const auto ft = static_cast<double>(recs[i + 1].begin_time - recs[i].begin_time);
    p.mean += ft;
    p.dev += std::abs(ft - static_cast<double>(period));
  }
  p.mean /= static_cast<double>(tail - 1);
  p.dev /= static_cast<double>(tail - 1);
  return p;
}

// After the (script-guaranteed) fault-free tail, frame times must re-lock
// to the CFPS period: Algorithm 4's AdjustTimeDelta has converged when the
// tail mean sits on the period and deviation collapses. Applies to the
// two-site shapes, whose scripts stay inside the paper's CFPS-holding
// regime (Figure 1: below ~90 ms RTT the deviation is near zero).
void check_pacer_tail(const char* who, const core::FrameTimeline& t, Dur period,
                      std::vector<Violation>* out) {
  // One second of frames: the two-site script margin guarantees >= 3 s of
  // clean runway before this window.
  const TailPace tp = tail_pace(t, period, 60);
  if (!tp.valid) return;
  const auto p = static_cast<double>(period);
  if (tp.mean < 0.75 * p || tp.mean > 1.3 * p) {
    out->push_back({"pacer-convergence", static_cast<FrameNo>(tp.first),
                    std::string(who) + " tail mean frame time " + fmt_ms(static_cast<Time>(tp.mean)) +
                        " vs period " + fmt_ms(period)});
  } else if (tp.dev > 0.4 * p) {
    out->push_back({"pacer-convergence", static_cast<FrameNo>(tp.first),
                    std::string(who) + " tail frame-time deviation " +
                        fmt_ms(static_cast<Time>(tp.dev)) + " (period " + fmt_ms(period) + ")"});
  }
}

// Mesh variant: "converged" is defined against a fault-free twin of the
// same script rather than the nominal period, and only the tail *mean* is
// asserted. CFPS is a throughput promise: an N-site mesh under ambient
// loss holds the period exactly on average while pacing in a stall/burst
// cycle whose deviation is bistable — a fault can flip a smooth mesh into
// a cycle that takes tens of seconds to damp (see EXPERIMENTS.md CHAOS).
// Asserting the twin's smoothness would therefore fail runs whose
// throughput fully recovered; deviation is characterized, not asserted.
void check_pacer_vs_reference(const char* who, const core::FrameTimeline& t,
                              const core::FrameTimeline& ref, Dur period,
                              std::vector<Violation>* out) {
  // Two seconds of frames, so one stall/burst episode cannot dominate the
  // window mean.
  const TailPace tp = tail_pace(t, period, 120);
  const TailPace rp = tail_pace(ref, period, 120);
  if (!tp.valid || !rp.valid) return;
  const auto p = static_cast<double>(period);
  const double mean_band = 0.3 * rp.mean + 0.15 * p;
  if (std::abs(tp.mean - rp.mean) > mean_band) {
    out->push_back({"pacer-convergence", static_cast<FrameNo>(tp.first),
                    std::string(who) + " tail mean frame time " + fmt_ms(static_cast<Time>(tp.mean)) +
                        " vs fault-free reference " + fmt_ms(static_cast<Time>(rp.mean))});
  }
}

void check_link_stats(const char* who, const net::LinkStats& s,
                      std::vector<Violation>* out) {
  // The Netem model decides a packet's complete fate at offer time, so
  // these hold exactly at any point, in-flight packets included.
  if (s.packets_delivered !=
      s.packets_offered - s.dropped_loss - s.dropped_queue + s.duplicated) {
    out->push_back({"telemetry", -1,
                    std::string(who) + " link counters inconsistent: offered " +
                        std::to_string(s.packets_offered) + ", delivered " +
                        std::to_string(s.packets_delivered) + ", loss " +
                        std::to_string(s.dropped_loss) + ", queue " +
                        std::to_string(s.dropped_queue) + ", dup " +
                        std::to_string(s.duplicated)});
  }
  if (s.dropped_loss + s.dropped_queue > s.packets_offered ||
      s.reordered > s.packets_delivered) {
    out->push_back({"telemetry", -1,
                    std::string(who) + " link counters out of range"});
  }
}

}  // namespace

std::vector<Violation> check_two_site(const testbed::ExperimentConfig& cfg,
                                      const testbed::ExperimentResult& r) {
  std::vector<Violation> v;
  const char* names[2] = {"site0", "site1"};
  for (int i = 0; i < 2; ++i) {
    check_completion(names[i], r.site[i].aborted, r.site[i].session_failed,
                     r.site[i].failure_reason, r.site[i].frames_completed,
                     cfg.frames, &v);
    check_watermark(names[i], r.site[i].timeline, &v);
    if (r.site[i].desync_frame != -1) {
      v.push_back({"state-hash", r.site[i].desync_frame,
                   std::string(names[i]) + " in-protocol desync tripwire fired"});
    }
  }
  if (const FrameNo div = r.first_divergence(); div != -1) {
    v.push_back({"state-hash", div, "site timelines diverge"});
  }

  const Dur period = cfg.sync.frame_period();
  if (!cfg.sync.rollback) {
    // The Algorithm-2 causality bound only holds under lockstep: rollback
    // decouples execution from input arrival by design (a site may
    // legitimately speculate ahead of anything the peer has sent).
    const int buf01 =
        r.site[0].buf_frames > 0 ? r.site[0].buf_frames : cfg.sync.buf_frames;
    check_frame_lead("site0", r.site[0].timeline, r.site[1].timeline, buf01, &v);
    check_frame_lead("site1", r.site[1].timeline, r.site[0].timeline, buf01, &v);
  }
  check_pacer_tail("site0", r.site[0].timeline, period, &v);
  check_pacer_tail("site1", r.site[1].timeline, period, &v);

  // Rollback's replacement guarantee: after every rollback and
  // re-simulation, the *confirmed* history must be exactly what a
  // straight-line (never-mispredicted) execution of the same merged
  // inputs produces. Replay each site's confirmed recording on a fresh
  // fault-free twin and compare digests frame by frame against the
  // site's canonical timeline.
  if (cfg.sync.rollback && cfg.game_factory) {
    for (int i = 0; i < 2; ++i) {
      const auto& recs = r.site[i].timeline.records();
      if (recs.empty()) continue;
      auto twin = cfg.game_factory();
      bool reported = false;
      const bool applied = r.site[i].replay.apply(
          *twin,
          [&](FrameNo f, std::uint64_t digest) {
            if (reported || static_cast<std::size_t>(f) >= recs.size()) return;
            if (recs[static_cast<std::size_t>(f)].state_hash != digest) {
              v.push_back({"rollback-twin", f,
                           std::string(names[i]) +
                               " confirmed digest differs from straight-line twin at frame " +
                               std::to_string(f)});
              reported = true;
            }
          },
          cfg.sync.digest_version());
      if (!applied) {
        v.push_back({"rollback-twin", -1,
                     std::string(names[i]) + " replay refused to apply to its twin"});
      }
    }
  }

  check_link_stats("site0->site1", r.site[0].tx_stats, &v);
  check_link_stats("site1->site0", r.site[1].tx_stats, &v);
  for (int i = 0; i < 2; ++i) {
    if (r.site[1 - i].sync_stats.messages_ingested > r.site[i].tx_stats.packets_delivered) {
      v.push_back({"telemetry", -1,
                   std::string(names[1 - i]) + " ingested more messages (" +
                       std::to_string(r.site[1 - i].sync_stats.messages_ingested) +
                       ") than the path delivered (" +
                       std::to_string(r.site[i].tx_stats.packets_delivered) + ")"});
    }
    if (r.site[i].sync_stats.stale_messages != 0) {
      v.push_back({"telemetry", -1,
                   std::string(names[i]) + " dropped " +
                       std::to_string(r.site[i].sync_stats.stale_messages) +
                       " stale/malformed messages on a clean protocol stream"});
    }
  }

  // Spectators: never a pre-game snapshot; every replayed frame hashes
  // identically to the players; non-churned observers reach the end.
  const auto& host_recs = r.site[0].timeline.records();
  for (std::size_t o = 0; o < r.observers.size(); ++o) {
    const auto& obs = r.observers[o];
    const std::string who = "observer" + std::to_string(o);
    if (!obs.joined && !obs.left) {
      v.push_back({"spectator", -1, who + " never joined"});
      continue;
    }
    if (obs.joined && obs.snapshot_frame < 0) {
      v.push_back({"spectator", obs.snapshot_frame,
                   who + " was served a pre-frame-0 snapshot"});
    }
    for (const auto& [frame, hash] : obs.hashes) {
      if (frame < 0 || static_cast<std::size_t>(frame) >= host_recs.size()) {
        v.push_back({"spectator", frame, who + " replayed a frame the host never ran"});
        break;
      }
      if (host_recs[static_cast<std::size_t>(frame)].state_hash != hash) {
        v.push_back({"spectator", frame, who + " replica hash diverged from site0"});
        break;
      }
    }
    if (obs.joined && !obs.left &&
        obs.last_applied < r.site[0].frames_completed - 5) {
      v.push_back({"spectator", obs.last_applied,
                   who + " stopped replaying at frame " + std::to_string(obs.last_applied) +
                       " of " + std::to_string(r.site[0].frames_completed)});
    }
  }
  return v;
}

std::vector<Violation> check_mesh(const testbed::MeshExperimentConfig& cfg,
                                  const testbed::MeshExperimentResult& r,
                                  const testbed::MeshExperimentResult* pacing_reference) {
  std::vector<Violation> v;
  const Dur period = cfg.sync.frame_period();
  for (std::size_t i = 0; i < r.sites.size(); ++i) {
    const std::string who = "site" + std::to_string(i);
    check_completion(who.c_str(), r.sites[i].aborted, false,
                     r.sites[i].failure_reason, r.sites[i].frames_completed,
                     cfg.frames, &v);
    check_watermark(who.c_str(), r.sites[i].timeline, &v);
    if (pacing_reference != nullptr && i < pacing_reference->sites.size() &&
        !pacing_reference->sites[i].aborted) {
      check_pacer_vs_reference(who.c_str(), r.sites[i].timeline,
                               pacing_reference->sites[i].timeline, period, &v);
    } else {
      check_pacer_tail(who.c_str(), r.sites[i].timeline, period, &v);
    }
    if (r.sites[i].sync_stats.stale_messages != 0) {
      v.push_back({"telemetry", -1,
                   who + " dropped " + std::to_string(r.sites[i].sync_stats.stale_messages) +
                       " stale/malformed messages on a clean protocol stream"});
    }
  }
  if (const FrameNo div = r.first_divergence(); div != -1) {
    v.push_back({"state-hash", div, "mesh site timelines diverge"});
  }
  for (std::size_t i = 0; i < r.sites.size(); ++i) {
    for (std::size_t j = 0; j < r.sites.size(); ++j) {
      if (i == j) continue;
      const std::string who = "site" + std::to_string(i);
      check_frame_lead(who.c_str(), r.sites[i].timeline, r.sites[j].timeline,
                       cfg.sync.buf_frames, &v);
    }
  }
  return v;
}

}  // namespace rtct::chaos
