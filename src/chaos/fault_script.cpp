#include "src/chaos/fault_script.h"

#include <charconv>

#include "src/common/json.h"
#include "src/common/random.h"

namespace rtct::chaos {

namespace {

// Distinct Rng streams per topology so one seed exercises three different
// schedules rather than the same schedule on three shapes.
constexpr std::uint64_t topology_salt(Topology t) {
  switch (t) {
    case Topology::kTwoSite: return 0x2517e5171ull;
    case Topology::kMesh: return 0x3e5851735ull;
    case Topology::kSpectator: return 0x5bec7a70full;
  }
  return 0;
}

Dur uniform_dur(Rng& rng, Dur lo, Dur hi) {
  return rng.uniform(lo, hi);
}

}  // namespace

std::string_view topology_name(Topology t) {
  switch (t) {
    case Topology::kTwoSite: return "two_site";
    case Topology::kMesh: return "mesh";
    case Topology::kSpectator: return "spectator";
  }
  return "?";
}

std::optional<Topology> topology_from_name(std::string_view name) {
  if (name == "two_site") return Topology::kTwoSite;
  if (name == "mesh") return Topology::kMesh;
  if (name == "spectator") return Topology::kSpectator;
  return std::nullopt;
}

std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kLossBurst: return "loss_burst";
    case FaultKind::kReorderStorm: return "reorder_storm";
    case FaultKind::kDuplication: return "duplication";
    case FaultKind::kLatencySpike: return "latency_spike";
    case FaultKind::kAsymFlip: return "asym_flip";
    case FaultKind::kConfigFlap: return "config_flap";
    case FaultKind::kSiteStall: return "site_stall";
  }
  return "?";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  for (int k = 0; k <= static_cast<int>(FaultKind::kSiteStall); ++k) {
    if (fault_kind_name(static_cast<FaultKind>(k)) == name) {
      return static_cast<FaultKind>(k);
    }
  }
  return std::nullopt;
}

FaultScript generate_fault_script(std::uint64_t seed, Topology topology) {
  Rng rng(seed ^ topology_salt(topology));
  FaultScript s;
  s.seed = seed;
  s.topology = topology;
  // The two-site shapes sweep the paper's full CFPS-holding range. The
  // mesh stays at RTT <= 40 ms: past that an N-site mesh is bistable — a
  // fault can flip it into a stall/burst limit cycle that takes tens of
  // seconds to damp (or never does at 8 sites), so "pacer re-converges
  // after faults clear" is only the system's promise in the low-RTT
  // regime (the paper's Figure-1 boundary). See EXPERIMENTS.md CHAOS.
  s.base_rtt = milliseconds(
      rng.uniform(20, topology == Topology::kMesh ? 40 : 120));
  s.base_loss = static_cast<double>(rng.uniform(0, 20)) / 1000.0;  // 0-2%
  s.boot_skew = milliseconds(rng.uniform(0, 60));
  s.adaptive_transport = rng.bernoulli(0.5);

  switch (topology) {
    case Topology::kTwoSite:
      // 10 s: at ~90 ms RTT a stacked stall/flip pile-up needs ~3.5 s to
      // re-smooth, and the pacer tail wants clean runway beyond that.
      s.frames = 600;
      break;
    case Topology::kMesh: {
      // 20 s sessions: measured mesh re-convergence after a fault burst
      // takes 10-15 s (the N-site stall/burst coupling damps slowly), so
      // the pacer invariant needs a long fault-free runway before the tail.
      s.frames = 1200;
      const int choices[] = {2, 4, 8};
      s.num_sites = choices[rng.uniform(0, 2)];
      break;
    }
    case Topology::kSpectator: {
      s.frames = 600;
      s.observers = static_cast<int>(rng.uniform(2, 3));
      for (int i = 0; i < s.observers; ++i) {
        // The first observer joins during the handshake half the time —
        // the deferred-snapshot gate (never serve pre-frame-0 state) is
        // exactly the race this exercises.
        const bool handshake_join = i == 0 && rng.bernoulli(0.5);
        s.observer_join_delays.push_back(
            handshake_join ? 0 : uniform_dur(rng, milliseconds(200), milliseconds(3000)));
        s.observer_leave_after.push_back(
            rng.bernoulli(0.5) ? uniform_dur(rng, milliseconds(500), milliseconds(3000)) : 0);
      }
      break;
    }
  }

  // Fault windows live in [0.5 s, end - margin]: the session must open
  // cleanly enough to handshake and must end with a fault-free tail for
  // the pacer-convergence invariant. The mesh gets a wider margin (and
  // shorter outages below) because N-site go-back-N recovery after a
  // burst takes several times the outage length.
  const Dur lo = milliseconds(500);
  const Dur margin =
      topology == Topology::kMesh ? milliseconds(12000) : milliseconds(5000);
  const Dur hi = s.session_length() - margin;
  const Dur max_fault =
      topology == Topology::kMesh ? milliseconds(400) : milliseconds(700);
  const int n_faults = static_cast<int>(rng.uniform(2, 5));
  for (int i = 0; i < n_faults; ++i) {
    Fault f;
    // Mesh links are reconfigured mesh-wide, so direction- and
    // site-specific kinds only exist on the two-site shapes.
    const int max_kind = topology == Topology::kMesh
                             ? static_cast<int>(FaultKind::kConfigFlap)
                             : static_cast<int>(FaultKind::kSiteStall);
    f.kind = static_cast<FaultKind>(rng.uniform(0, max_kind));
    if (topology == Topology::kMesh && f.kind == FaultKind::kAsymFlip) {
      f.kind = FaultKind::kLossBurst;
    }
    f.at = uniform_dur(rng, lo, hi);
    f.duration = uniform_dur(rng, milliseconds(100), max_fault);
    if (f.at + f.duration > hi) f.duration = hi - f.at;
    f.site = static_cast<int>(rng.uniform(0, 1));
    switch (f.kind) {
      case FaultKind::kLossBurst:
        f.magnitude = 0.3 + 0.6 * rng.next_double();
        break;
      case FaultKind::kReorderStorm:
        f.magnitude = 0.3 + 0.4 * rng.next_double();
        f.extra = milliseconds(rng.uniform(20, 80));
        break;
      case FaultKind::kDuplication:
        f.magnitude = 0.3 + 0.5 * rng.next_double();
        break;
      case FaultKind::kLatencySpike:
        f.magnitude = static_cast<double>(rng.uniform(2, 6));
        f.extra = milliseconds(rng.uniform(5, 20));
        break;
      case FaultKind::kAsymFlip:
        f.magnitude = 0.4 + 0.5 * rng.next_double();  // loss on the flipped path
        break;
      case FaultKind::kConfigFlap:
        f.magnitude = static_cast<double>(rng.uniform(2, 5));
        break;
      case FaultKind::kSiteStall:
        f.duration = uniform_dur(rng, milliseconds(100), milliseconds(500));
        break;
    }
    s.faults.push_back(f);
  }
  return s;
}

std::string script_to_json(const FaultScript& s) {
  JsonWriter w;
  write_script(w, s);
  return w.take();
}

void write_script(JsonWriter& w, const FaultScript& s) {
  w.begin_object();
  w.key("schema").value("rtct.chaos.script.v1");
  w.key("seed").value(std::to_string(s.seed));
  w.key("topology").value(topology_name(s.topology));
  w.key("frames").value(s.frames);
  w.key("num_sites").value(s.num_sites);
  w.key("observers").value(s.observers);
  w.key("base_rtt_ns").value(static_cast<std::int64_t>(s.base_rtt));
  w.key("base_loss").value(s.base_loss);
  w.key("boot_skew_ns").value(static_cast<std::int64_t>(s.boot_skew));
  w.key("adaptive_transport").value(s.adaptive_transport);
  w.key("rollback").value(s.rollback);
  w.key("faults").begin_array();
  for (const Fault& f : s.faults) {
    w.begin_object();
    w.key("kind").value(fault_kind_name(f.kind));
    w.key("at_ns").value(static_cast<std::int64_t>(f.at));
    w.key("duration_ns").value(static_cast<std::int64_t>(f.duration));
    w.key("site").value(f.site);
    w.key("magnitude").value(f.magnitude);
    w.key("extra_ns").value(static_cast<std::int64_t>(f.extra));
    w.end_object();
  }
  w.end_array();
  w.key("observer_join_delays_ns").begin_array();
  for (Dur d : s.observer_join_delays) w.value(static_cast<std::int64_t>(d));
  w.end_array();
  w.key("observer_leave_after_ns").begin_array();
  for (Dur d : s.observer_leave_after) w.value(static_cast<std::int64_t>(d));
  w.end_array();
  w.end_object();
}

namespace {

bool read_i64(const JsonValue& obj, std::string_view key, std::int64_t* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = static_cast<std::int64_t>(v->number_or(0));
  return true;
}

bool read_durs(const JsonValue& obj, std::string_view key, std::vector<Dur>* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_array()) return false;
  for (const JsonValue& e : *v->array()) {
    if (!e.is_number()) return false;
    out->push_back(static_cast<Dur>(e.number_or(0)));
  }
  return true;
}

}  // namespace

std::optional<FaultScript> script_from_json(const JsonValue& doc) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->string() == nullptr ||
      *schema->string() != "rtct.chaos.script.v1") {
    return std::nullopt;
  }
  FaultScript s;
  const JsonValue* seed = doc.find("seed");
  if (seed == nullptr || seed->string() == nullptr) return std::nullopt;
  {
    const std::string& str = *seed->string();
    const auto res = std::from_chars(str.data(), str.data() + str.size(), s.seed);
    if (res.ec != std::errc() || res.ptr != str.data() + str.size()) return std::nullopt;
  }
  const JsonValue* topo = doc.find("topology");
  if (topo == nullptr || topo->string() == nullptr) return std::nullopt;
  const auto t = topology_from_name(*topo->string());
  if (!t) return std::nullopt;
  s.topology = *t;

  std::int64_t i = 0;
  if (!read_i64(doc, "frames", &i) || i < 1) return std::nullopt;
  s.frames = static_cast<int>(i);
  if (!read_i64(doc, "num_sites", &i)) return std::nullopt;
  s.num_sites = static_cast<int>(i);
  if (!read_i64(doc, "observers", &i)) return std::nullopt;
  s.observers = static_cast<int>(i);
  if (!read_i64(doc, "base_rtt_ns", &i)) return std::nullopt;
  s.base_rtt = i;
  const JsonValue* loss = doc.find("base_loss");
  if (loss == nullptr || !loss->is_number()) return std::nullopt;
  s.base_loss = loss->number_or(0);
  if (!read_i64(doc, "boot_skew_ns", &i)) return std::nullopt;
  s.boot_skew = i;
  const JsonValue* adaptive = doc.find("adaptive_transport");
  if (adaptive != nullptr) {
    const bool* b = std::get_if<bool>(&adaptive->v_);
    if (b == nullptr) return std::nullopt;
    s.adaptive_transport = *b;
  }
  // Optional-with-default, like adaptive_transport: archived v1 scripts
  // predate the field and mean lockstep.
  const JsonValue* rollback = doc.find("rollback");
  if (rollback != nullptr) {
    const bool* b = std::get_if<bool>(&rollback->v_);
    if (b == nullptr) return std::nullopt;
    s.rollback = *b;
  }

  const JsonValue* faults = doc.find("faults");
  if (faults == nullptr || !faults->is_array()) return std::nullopt;
  for (const JsonValue& fv : *faults->array()) {
    if (!fv.is_object()) return std::nullopt;
    Fault f;
    const JsonValue* kind = fv.find("kind");
    if (kind == nullptr || kind->string() == nullptr) return std::nullopt;
    const auto k = fault_kind_from_name(*kind->string());
    if (!k) return std::nullopt;
    f.kind = *k;
    if (!read_i64(fv, "at_ns", &i)) return std::nullopt;
    f.at = i;
    if (!read_i64(fv, "duration_ns", &i)) return std::nullopt;
    f.duration = i;
    if (!read_i64(fv, "site", &i)) return std::nullopt;
    f.site = static_cast<int>(i);
    const JsonValue* mag = fv.find("magnitude");
    if (mag == nullptr || !mag->is_number()) return std::nullopt;
    f.magnitude = mag->number_or(0);
    if (!read_i64(fv, "extra_ns", &i)) return std::nullopt;
    f.extra = i;
    s.faults.push_back(f);
  }
  if (!read_durs(doc, "observer_join_delays_ns", &s.observer_join_delays)) return std::nullopt;
  if (!read_durs(doc, "observer_leave_after_ns", &s.observer_leave_after)) return std::nullopt;
  return s;
}

}  // namespace rtct::chaos
