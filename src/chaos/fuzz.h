// Structure-aware fuzzing of the wire decoders and the sans-IO protocol
// state machines behind them.
//
// Three layers, composed the way the deployed stack is:
//   1. decode_message must never read past the span, crash, or accept a
//      message violating the documented field ranges (docs/PROTOCOL.md
//      "Decoder rejection rules");
//   2. anything decode *does* accept must re-encode canonically (decode ∘
//      encode is the identity on accepted messages);
//   3. accepted messages must be safe to feed into SyncPeer /
//      SessionControl / SpectatorHost / SpectatorClient — the decoder is
//      the trust boundary, so the state machines are fuzzed only through
//      it, exactly as in production.
// All randomness comes from one seeded Rng; every failure is reproducible
// from (seed, iteration). The deterministic corpus (build_corpus) is
// checked into tests/corpus/ and replayed as a regression suite under the
// sanitize preset.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rtct::chaos {

struct FuzzStats {
  std::uint64_t iterations = 0;
  std::uint64_t accepted = 0;  ///< buffers decode accepted
  std::uint64_t rejected = 0;
};

/// One self-describing regression input. `expect_reject` records the
/// contract at generation time; replay fails if a once-rejected input is
/// ever accepted again (a hardening regression).
struct CorpusEntry {
  /// Which decoder the entry targets: the wire message decoder or the
  /// RTCTRPL1/RTCTRPL2 replay-container parser.
  enum class Kind { kWire, kReplay };

  std::string name;  ///< stable file name, e.g. "sync_count_oversized.bin"
  std::vector<std::uint8_t> bytes;
  bool expect_reject = false;
  Kind kind = Kind::kWire;
};

/// The deterministic regression corpus: valid edge-case encodings of
/// every message type plus the hostile shapes the decoders must reject
/// (truncations, oversized counts, out-of-range frames/times, trailing
/// garbage). Same output on every platform and run.
std::vector<CorpusEntry> build_corpus();

/// Runs one buffer through decode + canonical-re-encode + field-range
/// validation. Returns a failure description, or nullopt if the decoder
/// behaved (rejection is correct behaviour for hostile input).
std::optional<std::string> check_decoder(std::span<const std::uint8_t> bytes);

/// Same contract for the replay-container parser (Replay::parse): a
/// kReplay corpus entry must keep its generation-time accept/reject
/// verdict, and anything accepted must re-serialize canonically.
std::optional<std::string> check_replay_container(std::span<const std::uint8_t> bytes,
                                                  bool expect_reject);

/// Random-structure fuzz of Replay::parse: seeded RTCTRPL1/RTCTRPL2
/// containers mutated by truncation/extension/byte-flips — half of the
/// mutants get their CRC trailer re-stamped so the structural validation
/// *past* the checksum is exercised too. Returns the first failure.
std::optional<std::string> fuzz_replay(std::uint64_t seed, int iterations,
                                       FuzzStats* stats = nullptr);

/// Random-structure fuzz of the decoders: `iterations` buffers derived
/// from `seed` (valid encodings with edge-biased fields, then mutated by
/// truncation/extension/byte-flips, plus raw noise). Returns the first
/// failure, or nullopt.
std::optional<std::string> fuzz_wire(std::uint64_t seed, int iterations,
                                     FuzzStats* stats = nullptr);

/// Fuzzes the protocol state machines through the decoder trust boundary:
/// mutated buffers that survive decoding are fed into a driven SyncPeer,
/// SessionControl, SpectatorHost and SpectatorClient. Sanitizers (ASan/
/// UBSan) turn any memory or overflow bug into a failure; this function
/// additionally drives the peers forward so ingested state is exercised,
/// not just stored. Returns the first failure, or nullopt.
std::optional<std::string> fuzz_ingest(std::uint64_t seed, int iterations);

}  // namespace rtct::chaos
