// RTT sweep helpers shared by the figure-reproduction benches.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/testbed/experiment.h"

namespace rtct::testbed {

/// The paper's sweep grid (§4.1.1): RTT 0→200 ms in 10 ms steps, then
/// 250→400 ms in 50 ms steps.
std::vector<Dur> paper_rtt_sweep();

/// A smaller grid for unit tests and smoke runs.
std::vector<Dur> quick_rtt_sweep();

struct SweepPoint {
  Dur rtt = 0;
  ExperimentResult result;
};

/// Runs `base` once per RTT value (symmetric path). `mutate` may further
/// adjust the config per point (e.g. add loss).
std::vector<SweepPoint> sweep_rtt(
    ExperimentConfig base, const std::vector<Dur>& rtts,
    const std::function<void(ExperimentConfig&, Dur)>& mutate = nullptr);

/// Prints the Figure 1 + Figure 2 table: one row per RTT with average
/// frame time, frame-time deviation (both sites) and inter-site synchrony.
void print_paper_table(const std::vector<SweepPoint>& points);

/// Locates the paper's "threshold RTT": the largest swept RTT at which the
/// game still runs at full speed (avg frame time within `tolerance_ms` of
/// nominal 1000/cfps). Returns -1 if none qualifies.
Dur find_threshold_rtt(const std::vector<SweepPoint>& points, int cfps,
                       double tolerance_ms = 1.0);

/// Serializes a sweep as "rtct.bench.v1": parallel series keyed by RTT
/// (the Figure-1 statistics per site, Figure-2 synchrony, stall counts,
/// consistency flags) plus the derived threshold RTT and free-form `meta`
/// key/value annotations (frame counts, config knobs).
std::string sweep_to_json(const std::string& name, const std::vector<SweepPoint>& points,
                          int cfps, const std::map<std::string, std::string>& meta = {});

/// Writes sweep_to_json() to `path` ("BENCH_<name>.json" by convention).
/// Returns false when the file cannot be written.
bool write_bench_json(const std::string& path, const std::string& name,
                      const std::vector<SweepPoint>& points, int cfps,
                      const std::map<std::string, std::string>& meta = {});

}  // namespace rtct::testbed
