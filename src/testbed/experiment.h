// Two-site experiment harness — the paper's §4 testbed in virtual time.
//
// Physical setup being modelled: two gaming PCs bridged through a Netem
// box, plus a LAN time server recording each site's frame begin times.
// Here both sites run as coroutine processes on one discrete-event
// simulator; the "time server" is the (exact) global virtual clock.
//
// Each site runs three processes, mirroring the paper's threaded
// implementation (§4.2):
//   * the frame loop  — Algorithm 1 with the three sync steps;
//   * a sender        — flushes SyncPeer messages every send_flush_period
//                       (the 20 ms outbound buffering) after an extra
//                       send_dispatch_delay (the ~5 ms thread handoff);
//   * a receiver      — ingests datagrams the moment they arrive.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/common/types.h"
#include "src/emu/game.h"
#include "src/core/config.h"
#include "src/core/metrics.h"
#include "src/core/pacer.h"
#include "src/core/replay.h"
#include "src/core/rollback.h"
#include "src/core/sync_peer.h"
#include "src/net/netem.h"

namespace rtct::testbed {

struct ExperimentConfig {
  /// Which bundled game both sites load, resolved through the core
  /// registry (cores::make_game): bare names mean AC16 ("duel" ==
  /// "ac16:duel"), qualified names select another core ("agent86:pong",
  /// "native:cellwars").
  std::string game = "duel";
  /// When set, overrides `game`: produces each site's replica. Any
  /// IDeterministicGame works — including native C++ games with no
  /// emulator underneath (see games::make_cellwars), which is the
  /// transparency claim made concrete.
  std::function<std::unique_ptr<emu::IDeterministicGame>()> game_factory;
  int frames = 3600;          ///< per the paper: one minute at 60 FPS

  core::SyncConfig sync;                   ///< BufFrame, flush period, ...
  core::PacingPolicy pacing[2] = {core::PacingPolicy::kFull, core::PacingPolicy::kFull};

  net::NetemConfig net_a_to_b;  ///< site0 -> site1 path
  net::NetemConfig net_b_to_a;  ///< site1 -> site0 path

  /// Boot-time offsets: the paper's "two sites cannot begin at exactly the
  /// same time" (§3.2). The handshake bounds the *start* skew regardless.
  Dur site_boot_delay[2] = {0, 0};

  /// Virtual CPU cost of Transition + render per frame (must be < 1/CFPS).
  Dur frame_compute_time = milliseconds(2);

  /// Seeds for the two synthetic players (MasherInput).
  std::uint64_t input_seed[2] = {101, 202};
  /// Frames a masher holds each random button byte.
  int input_hold_frames = 6;

  /// Network RNG seed.
  std::uint64_t net_seed = 1;

  /// Transport under the sync protocol: the paper's UDP (+ the protocol's
  /// own reliability) or the TCP-like in-order baseline of §3.1's
  /// discussion (bench/ablation_transport).
  enum class Transport { kUdp, kTcpLike };
  Transport transport = Transport::kUdp;
  /// TCP-like retransmission timeout; 0 = auto (2 × one-way delay + 20 ms).
  Dur tcp_rto = 0;

  /// Scheduled mid-run link reconfigurations (virtual time): model a path
  /// that degrades and recovers during the match. `dir` selects which
  /// direction(s) the new shape applies to (asymmetric-path flips set one
  /// direction at a time).
  struct NetEvent {
    Dur at = 0;
    net::NetemConfig config;
    enum class Dir { kBoth, kAToB, kBToA };
    Dir dir = Dir::kBoth;
  };
  std::vector<NetEvent> net_events;

  /// Scheduled site freezes (virtual time): the site's frame loop stops
  /// dead for `duration` at the first frame boundary at or after `at` — a
  /// GC pause, an OS preemption, a swapped-out peer. The site's sender and
  /// receiver processes keep running (the network threads survive a render
  /// hiccup); lockstep must absorb the stall and re-converge.
  struct StallEvent {
    Dur at = 0;
    Dur duration = 0;
    int site = 0;
  };
  std::vector<StallEvent> stall_events;

  /// Late-joining observers (journal-version extension): each observer
  /// connects to site 0 over its own link, requests a snapshot at its join
  /// time, and replays the input feed on its own replica.
  int observers = 0;
  /// When each observer boots and starts join-requesting.
  Dur observer_join_delay = milliseconds(800);
  /// Per-observer override of `observer_join_delay` (observer i uses entry
  /// i; missing entries fall back to the uniform value). A delay of 0
  /// joins during the session handshake — the deferred-snapshot gate must
  /// still never serve a pre-frame-0 snapshot.
  std::vector<Dur> observer_join_delays;
  /// Per-observer watch duration measured from its join delay: after this
  /// the observer leaves (stops requesting/acking mid-feed). 0 or missing
  /// = watches to the end. Models spectator churn.
  std::vector<Dur> observer_leave_after;
  /// Path between site 0 and each observer (symmetric).
  net::NetemConfig observer_net = net::NetemConfig::for_rtt(milliseconds(40));

  /// Abort a site that is still running at this virtual time (network/peer
  /// failure => Algorithm 2 freezes forever by design; the experiment must
  /// still terminate). Default: scaled from `frames`.
  Dur watchdog = 0;

  /// Convenience: symmetric path with the given RTT (each direction RTT/2).
  void set_rtt(Dur rtt) {
    net_a_to_b = net::NetemConfig::for_rtt(rtt);
    net_b_to_a = net::NetemConfig::for_rtt(rtt);
  }

  [[nodiscard]] Dur effective_watchdog() const {
    if (watchdog > 0) return watchdog;
    return seconds(10) + frames * sync.frame_period() * 5;
  }
};

struct SiteResult {
  core::FrameTimeline timeline;
  core::SyncPeerStats sync_stats;
  net::LinkStats tx_stats;      ///< this site's outgoing path counters
  /// Local-lag depth the session actually ran with (differs from the
  /// configured value when the v2 adaptive-lag negotiation picked one).
  int buf_frames = 0;
  FrameNo frames_completed = 0;
  bool aborted = false;         ///< watchdog fired (peer/network failure)
  bool session_failed = false;
  std::string failure_reason;
  /// Frame at which the in-protocol hash exchange flagged divergence
  /// (-1 = never; must always be -1 for a deterministic game).
  FrameNo desync_frame = -1;
  /// The site's screen after its last frame (fb_cols x fb_rows palette
  /// indices, via IRenderableGame) — lets callers *see* that both replicas
  /// rendered the same game. Empty when the game is not renderable.
  std::vector<std::uint8_t> final_framebuffer;
  int fb_cols = 0;  ///< framebuffer width (0 when not renderable)
  int fb_rows = 0;  ///< framebuffer height (0 when not renderable)
  /// Merged-input recording of the session as this site executed it
  /// (identical across sites; replayable via core::Replay::apply). Under
  /// rollback this holds only *confirmed* frames — the canonical history.
  core::Replay replay;
  /// True when the handshake settled on the rollback consistency mode.
  bool rollback_mode = false;
  /// Speculation counters (meaningful only when rollback_mode).
  core::RollbackStats rollback_stats;
};

struct ObserverResult {
  bool joined = false;
  bool left = false;            ///< stopped watching before the session ended
  FrameNo snapshot_frame = -1;  ///< session frame the snapshot was taken at
  FrameNo last_applied = -1;    ///< last session frame replayed
  /// (frame, state hash) for every replayed frame — comparable 1:1 with
  /// the playing sites' timelines.
  std::vector<std::pair<FrameNo, std::uint64_t>> hashes;
};

struct ExperimentResult {
  SiteResult site[2];
  std::vector<ObserverResult> observers;

  /// True when every observer joined, caught up to (nearly) the end of the
  /// session, and every replayed frame's hash matches site 0's. Observers
  /// that left mid-session (churn) are only held to hash consistency over
  /// the frames they did replay.
  [[nodiscard]] bool observers_consistent() const;

  /// Both sites ran to completion with converged state hashes.
  [[nodiscard]] bool converged() const;
  /// First diverged frame (-1 = never) — must be -1 in every experiment.
  [[nodiscard]] FrameNo first_divergence() const;

  // Paper metrics.
  /// Figure 1, left axis: average frame time of a site, ms.
  [[nodiscard]] double avg_frame_time_ms(int site_idx) const;
  /// Figure 1, right axis: average absolute deviation of frame times, ms.
  [[nodiscard]] double frame_time_deviation_ms(int site_idx) const;
  /// Figure 2: absolute average of per-frame inter-site differences, ms.
  [[nodiscard]] double synchrony_ms() const;
};

/// Runs one complete two-site experiment. Deterministic for a given config.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

}  // namespace rtct::testbed
