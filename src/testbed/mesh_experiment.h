// N-site mesh experiment harness — the journal-version "multiple players"
// extension, run on the same virtual-time substrate as the two-site
// testbed of §4.
//
// N sites (2, 4 or 8 — each owning an equal span of the input word) are
// joined by a full mesh of independently-seeded Netem links. There is no
// handshake: lockstep itself is the rendezvous — no site can execute frame
// BufFrame until every other site's input for it has arrived, so staggered
// boots are absorbed exactly like the paper's start deviation, with
// Algorithm 4 rate-locking every slave to site 0.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/core/config.h"
#include "src/core/metrics.h"
#include "src/core/sync_peer.h"
#include "src/emu/game.h"
#include "src/net/netem.h"

namespace rtct::testbed {

struct MeshExperimentConfig {
  std::string game = "quadtron";
  /// When set, overrides `game`: produces each site's replica. Any
  /// IDeterministicGame works (same transparency contract as the two-site
  /// harness) — the chaos soak runs native games here for speed.
  std::function<std::unique_ptr<emu::IDeterministicGame>()> game_factory;
  int num_sites = 4;  ///< must divide 16 (2, 4, 8)
  int frames = 600;

  core::SyncConfig sync;
  net::NetemConfig net;  ///< applied to every link direction

  /// Scheduled mid-run reconfigurations, applied to every link direction
  /// at once (the chaos harness degrades and restores the whole mesh).
  struct NetEvent {
    Dur at = 0;
    net::NetemConfig config;
  };
  std::vector<NetEvent> net_events;
  /// Site i boots at i * boot_stagger (tests the rendezvous-by-lockstep).
  Dur boot_stagger = milliseconds(20);
  Dur frame_compute_time = milliseconds(2);
  std::uint64_t input_seed_base = 500;
  int input_hold_frames = 6;
  std::uint64_t net_seed = 1;
  Dur watchdog = 0;

  [[nodiscard]] Dur effective_watchdog() const {
    if (watchdog > 0) return watchdog;
    return seconds(10) + frames * sync.frame_period() * 5;
  }
};

struct MeshSiteResult {
  core::FrameTimeline timeline;
  core::SyncPeerStats sync_stats;
  FrameNo frames_completed = 0;
  bool aborted = false;
  std::string failure_reason;
};

struct MeshExperimentResult {
  std::vector<MeshSiteResult> sites;

  [[nodiscard]] bool converged() const;
  /// First frame at which any site's hash differs from site 0's (-1 never).
  [[nodiscard]] FrameNo first_divergence() const;
  [[nodiscard]] double avg_frame_time_ms(int site) const;
  [[nodiscard]] double frame_time_deviation_ms(int site) const;
  /// Worst pairwise mean-absolute begin-time difference.
  [[nodiscard]] double worst_synchrony_ms() const;
};

MeshExperimentResult run_mesh_experiment(const MeshExperimentConfig& cfg);

}  // namespace rtct::testbed
