#include "src/testbed/mesh_experiment.h"

#include <algorithm>

#include "src/core/input_source.h"
#include "src/core/mesh.h"
#include "src/core/pacer.h"
#include "src/core/wire.h"
#include "src/cores/registry.h"
#include "src/net/sim_network.h"
#include "src/sim/simulator.h"
#include "src/sim/trigger.h"

namespace rtct::testbed {

namespace {

struct MeshFlags {
  std::vector<bool> done;
  [[nodiscard]] bool all_done() const {
    return std::all_of(done.begin(), done.end(), [](bool d) { return d; });
  }
};

/// One mesh participant: machine + MeshSyncPeer + per-peer endpoints.
class MeshSite {
 public:
  MeshSite(sim::Simulator& sim, const MeshExperimentConfig& cfg, SiteId site,
           std::unique_ptr<emu::IDeterministicGame> game)
      : sim_(sim),
        cfg_(cfg),
        site_(site),
        game_holder_(std::move(game)),
        game_(*game_holder_),
        peer_(site, cfg.num_sites, cfg.sync),
        pacer_(site, cfg.sync),
        input_(cfg.input_seed_base + static_cast<std::uint64_t>(site), cfg.input_hold_frames),
        state_changed_(sim) {
    endpoints_.resize(static_cast<std::size_t>(cfg.num_sites), nullptr);
    result_.timeline.reserve(static_cast<std::size_t>(cfg.frames));
  }

  /// Wires the duplex endpoint that reaches `peer_site`.
  void connect(SiteId peer_site, net::SimEndpoint& ep) { endpoints_[peer_site] = &ep; }

  void launch(MeshFlags& flags) {
    sim_.spawn(run_main(&flags));
    sim_.spawn(run_sender(&flags));
    for (SiteId s = 0; s < cfg_.num_sites; ++s) {
      if (endpoints_[s] != nullptr) sim_.spawn(run_receiver(endpoints_[s]));
    }
  }

  MeshSiteResult take_result() {
    result_.sync_stats = peer_.stats();
    result_.frames_completed = static_cast<FrameNo>(result_.timeline.size());
    return std::move(result_);
  }

 private:
  void drain(net::SimEndpoint* ep) {
    bool any = false;
    while (auto payload = ep->try_recv()) {
      any = true;
      const auto msg = core::decode_message(*payload);
      if (!msg) continue;
      if (const auto* sync = std::get_if<core::SyncMsg>(&*msg)) {
        peer_.ingest(*sync, sim_.now());
      }
    }
    if (any) state_changed_.notify_all();
  }

  sim::Task run_receiver(net::SimEndpoint* ep) {
    for (;;) {
      drain(ep);
      co_await ep->arrival_trigger().wait();
    }
  }

  sim::Task run_sender(MeshFlags* flags) {
    while (!flags->all_done()) {
      const Time now = sim_.now();
      bool dispatched = false;
      for (SiteId s = 0; s < cfg_.num_sites; ++s) {
        if (endpoints_[s] == nullptr) continue;
        if (auto msg = peer_.make_message(s, now)) {
          if (!dispatched && cfg_.sync.send_dispatch_delay > 0) {
            co_await sim_.sleep(cfg_.sync.send_dispatch_delay);
            dispatched = true;  // one thread handoff per flush, not per peer
          }
          core::encode_message_into(core::Message{*msg}, wire_scratch_);
          endpoints_[s]->send(wire_scratch_);
        }
      }
      co_await sim_.sleep(cfg_.sync.send_flush_period);
    }
  }

  sim::Task run_main(MeshFlags* flags) {
    if (site_ > 0 && cfg_.boot_stagger > 0) {
      co_await sim_.sleep(site_ * cfg_.boot_stagger);
    }
    const Dur deadline = cfg_.effective_watchdog();

    for (FrameNo frame = 0; frame < cfg_.frames; ++frame) {
      core::FrameRecord rec;
      rec.frame = frame;
      pacer_.begin_frame(sim_.now(), frame, peer_.master_obs());
      rec.begin_time = sim_.now();

      const InputWord partial = pack_player_bits_n(
          static_cast<std::uint8_t>(input_.input_for_frame(frame) & 0xF), site_,
          cfg_.num_sites);
      peer_.submit_local(frame, partial);

      const Time sync_start = sim_.now();
      while (!peer_.ready()) {
        if (sim_.now() > deadline) {
          result_.aborted = true;
          result_.failure_reason = "mesh SyncInput watchdog expired";
          flags->done[site_] = true;
          co_return;
        }
        (void)co_await state_changed_.wait_until(sim_.now() + milliseconds(5));
      }
      rec.stall = sim_.now() - sync_start;
      rec.input_ready_time = sim_.now();

      game_.step_frame(peer_.pop());
      // The mesh has no HELLO/START handshake (shared config by
      // construction), so the digest version comes straight from config.
      rec.state_hash = game_.state_digest(cfg_.sync.digest_version());
      peer_.note_state_hash(frame, rec.state_hash);

      co_await sim_.sleep(cfg_.frame_compute_time);
      const Dur wait = pacer_.end_frame(sim_.now());
      rec.wait = wait;
      result_.timeline.add(rec);
      if (wait > 0) co_await sim_.sleep(wait);
    }
    flags->done[site_] = true;
  }

  sim::Simulator& sim_;
  const MeshExperimentConfig& cfg_;
  SiteId site_;
  std::unique_ptr<emu::IDeterministicGame> game_holder_;
  emu::IDeterministicGame& game_;
  core::MeshSyncPeer peer_;
  core::FramePacer pacer_;
  core::MasherInput input_;
  sim::Trigger state_changed_;
  std::vector<net::SimEndpoint*> endpoints_;
  std::vector<std::uint8_t> wire_scratch_;  ///< reused encode buffer
  MeshSiteResult result_;
};

}  // namespace

bool MeshExperimentResult::converged() const {
  if (sites.empty()) return false;
  for (const auto& s : sites) {
    if (s.aborted || s.frames_completed != sites[0].frames_completed) return false;
  }
  return first_divergence() == -1;
}

FrameNo MeshExperimentResult::first_divergence() const {
  for (std::size_t i = 1; i < sites.size(); ++i) {
    const FrameNo d = core::first_divergence(sites[0].timeline, sites[i].timeline);
    if (d != -1) return d;
  }
  return -1;
}

double MeshExperimentResult::avg_frame_time_ms(int site) const {
  return sites[static_cast<std::size_t>(site)].timeline.frame_times().summarize().mean;
}

double MeshExperimentResult::frame_time_deviation_ms(int site) const {
  return sites[static_cast<std::size_t>(site)]
      .timeline.frame_times()
      .summarize()
      .mean_abs_deviation;
}

double MeshExperimentResult::worst_synchrony_ms() const {
  double worst = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      worst = std::max(worst, core::synchrony_differences(sites[i].timeline,
                                                          sites[j].timeline)
                                  .summarize()
                                  .mean_abs);
    }
  }
  return worst;
}

MeshExperimentResult run_mesh_experiment(const MeshExperimentConfig& cfg) {
  MeshExperimentResult out;
  if (16 % cfg.num_sites != 0 || cfg.num_sites < 2 || cfg.num_sites > 8) {
    return out;  // empty result: converged() == false
  }
  auto factory = cfg.game_factory;
  if (!factory) {
    if (cores::make_game(cfg.game) == nullptr) return out;
    factory = [name = cfg.game] { return cores::make_game(name); };
  }

  sim::Simulator sim;

  std::vector<std::unique_ptr<MeshSite>> sites;
  for (SiteId s = 0; s < cfg.num_sites; ++s) {
    sites.push_back(std::make_unique<MeshSite>(sim, cfg, s, factory()));
  }

  // Full mesh of duplex links, one per unordered pair.
  std::vector<std::unique_ptr<net::SimDuplexLink>> links;
  std::uint64_t link_seed = cfg.net_seed;
  for (SiteId i = 0; i < cfg.num_sites; ++i) {
    for (SiteId j = i + 1; j < cfg.num_sites; ++j) {
      links.push_back(std::make_unique<net::SimDuplexLink>(sim, cfg.net, ++link_seed));
      sites[i]->connect(j, links.back()->a());
      sites[j]->connect(i, links.back()->b());
    }
  }

  for (const auto& ev : cfg.net_events) {
    sim.schedule_at(ev.at, [&links, ev] {
      for (auto& l : links) {
        l->a().set_tx_config(ev.config);
        l->b().set_tx_config(ev.config);
      }
    });
  }

  MeshFlags flags;
  flags.done.assign(static_cast<std::size_t>(cfg.num_sites), false);
  for (auto& site : sites) site->launch(flags);
  sim.run();

  for (auto& site : sites) out.sites.push_back(site->take_result());
  return out;
}

}  // namespace rtct::testbed
