#include "src/testbed/sweep.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "src/common/json.h"

namespace rtct::testbed {

std::vector<Dur> paper_rtt_sweep() {
  std::vector<Dur> rtts;
  for (int ms = 0; ms <= 200; ms += 10) rtts.push_back(milliseconds(ms));
  for (int ms = 250; ms <= 400; ms += 50) rtts.push_back(milliseconds(ms));
  return rtts;
}

std::vector<Dur> quick_rtt_sweep() {
  return {milliseconds(0), milliseconds(40), milliseconds(80),  milliseconds(120),
          milliseconds(140), milliseconds(160), milliseconds(200), milliseconds(300)};
}

std::vector<SweepPoint> sweep_rtt(ExperimentConfig base, const std::vector<Dur>& rtts,
                                  const std::function<void(ExperimentConfig&, Dur)>& mutate) {
  std::vector<SweepPoint> out;
  out.reserve(rtts.size());
  for (Dur rtt : rtts) {
    ExperimentConfig cfg = base;
    cfg.set_rtt(rtt);
    if (mutate) mutate(cfg, rtt);
    out.push_back({rtt, run_experiment(cfg)});
  }
  return out;
}

void print_paper_table(const std::vector<SweepPoint>& points) {
  std::printf("%8s | %12s %12s | %12s %12s | %10s | %s\n", "RTT(ms)", "avgFT0(ms)", "avgFT1(ms)",
              "devFT0(ms)", "devFT1(ms)", "sync(ms)", "consistent");
  std::printf("---------+---------------------------+---------------------------+------------+"
              "-----------\n");
  for (const auto& p : points) {
    const auto& r = p.result;
    std::printf("%8.0f | %12.3f %12.3f | %12.3f %12.3f | %10.3f | %s\n", to_ms(p.rtt),
                r.avg_frame_time_ms(0), r.avg_frame_time_ms(1), r.frame_time_deviation_ms(0),
                r.frame_time_deviation_ms(1), r.synchrony_ms(),
                r.converged() ? "yes" : "NO");
  }
}

Dur find_threshold_rtt(const std::vector<SweepPoint>& points, int cfps, double tolerance_ms) {
  // Walk the grid in ascending RTT and stop at the first point that falls
  // below full speed; the threshold is the last full-speed point before it
  // (the paper's "we identify the threshold RTT as around 140ms").
  std::vector<const SweepPoint*> sorted;
  sorted.reserve(points.size());
  for (const auto& p : points) sorted.push_back(&p);
  std::sort(sorted.begin(), sorted.end(),
            [](const SweepPoint* a, const SweepPoint* b) { return a->rtt < b->rtt; });

  const double nominal = 1000.0 / cfps;
  Dur threshold = -1;
  for (const SweepPoint* p : sorted) {
    const double worst =
        std::max(p->result.avg_frame_time_ms(0), p->result.avg_frame_time_ms(1));
    if (worst > nominal + tolerance_ms) break;
    threshold = p->rtt;
  }
  return threshold;
}

std::string sweep_to_json(const std::string& name, const std::vector<SweepPoint>& points,
                          int cfps, const std::map<std::string, std::string>& meta) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("rtct.bench.v1");
  w.key("name").value(name);
  w.key("cfps").value(cfps);
  w.key("points").value(static_cast<std::uint64_t>(points.size()));
  w.key("meta").begin_object();
  for (const auto& [k, v] : meta) w.key(k).value(v);
  w.end_object();

  // Parallel series, one entry per sweep point, keyed by rtt_ms — the
  // columnar layout plotters want and rtct_trace --check validates.
  w.key("series").begin_object();
  auto series = [&w, &points](const char* key, auto proj) {
    w.key(key).begin_array();
    for (const auto& p : points) w.value(proj(p));
    w.end_array();
  };
  series("rtt_ms", [](const SweepPoint& p) { return to_ms(p.rtt); });
  series("avg_frame_time_ms_site0",
         [](const SweepPoint& p) { return p.result.avg_frame_time_ms(0); });
  series("avg_frame_time_ms_site1",
         [](const SweepPoint& p) { return p.result.avg_frame_time_ms(1); });
  series("frame_time_deviation_ms_site0",
         [](const SweepPoint& p) { return p.result.frame_time_deviation_ms(0); });
  series("frame_time_deviation_ms_site1",
         [](const SweepPoint& p) { return p.result.frame_time_deviation_ms(1); });
  series("synchrony_ms", [](const SweepPoint& p) { return p.result.synchrony_ms(); });
  series("stalled_frames_site0", [](const SweepPoint& p) {
    return static_cast<std::uint64_t>(p.result.site[0].timeline.stalled_frames());
  });
  series("stalled_frames_site1", [](const SweepPoint& p) {
    return static_cast<std::uint64_t>(p.result.site[1].timeline.stalled_frames());
  });
  series("consistent", [](const SweepPoint& p) { return p.result.converged(); });
  w.end_object();

  const Dur threshold = find_threshold_rtt(points, cfps);
  w.key("threshold_rtt_ms").value(threshold < 0 ? -1.0 : to_ms(threshold));
  w.end_object();
  return w.take();
}

bool write_bench_json(const std::string& path, const std::string& name,
                      const std::vector<SweepPoint>& points, int cfps,
                      const std::map<std::string, std::string>& meta) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << sweep_to_json(name, points, cfps, meta) << '\n';
  return static_cast<bool>(out);
}

}  // namespace rtct::testbed
