#include "src/testbed/experiment.h"

#include <algorithm>
#include <memory>

#include "src/common/log.h"
#include "src/core/input_source.h"
#include "src/core/rollback.h"
#include "src/core/session.h"
#include "src/core/spectate.h"
#include "src/core/wire.h"
#include "src/cores/registry.h"
#include "src/baseline/tcp_like.h"
#include "src/net/sim_network.h"
#include "src/sim/simulator.h"
#include "src/sim/trigger.h"

namespace rtct::testbed {

namespace {

using core::Message;
using core::SyncMsg;

struct SharedFlags {
  bool done[2] = {false, false};
  [[nodiscard]] bool all_done() const { return done[0] && done[1]; }
};

/// One simulated gaming PC: machine + sync module + three processes.
class SimSite {
  /// Drop observers not heard from for this long (SpectatorClient
  /// keepalive-acks every 500 ms, so live ones always stay well inside).
  static constexpr Dur kObserverIdleTimeout = seconds(2);
  /// Transport toward one observer; the protocol state for ALL observers
  /// lives in the shared SpectatorBroadcastHub (one backlog ring, one
  /// encoded snapshot, per-observer ack cursors).
  struct ObserverPort {
    net::DatagramTransport* transport;
    sim::Trigger* arrival;
    core::SpectatorBroadcastHub::ObserverId id;
  };

 public:
  SimSite(sim::Simulator& sim, net::DatagramTransport& transport, sim::Trigger& arrival,
          const ExperimentConfig& cfg, SiteId site,
          std::unique_ptr<emu::IDeterministicGame> game)
      : sim_(sim),
        transport_(transport),
        arrival_(arrival),
        cfg_(cfg),
        site_(site),
        game_holder_(std::move(game)),
        game_(*game_holder_),
        peer_(site, cfg.sync),
        pacer_(site, cfg.sync, cfg.pacing[site]),
        session_(site, game_.content_id(), cfg.sync),
        spectator_hub_(game_.content_id(), cfg.sync),
        input_(cfg.input_seed[site], cfg.input_hold_frames),
        state_changed_(sim) {
    digest_version_ = cfg.sync.digest_version();
    result_.timeline.reserve(static_cast<std::size_t>(cfg.frames));
    result_.replay = core::Replay(game_.content_id(), cfg.sync, game_.content_name());
  }

  void launch(SharedFlags& flags) {
    sim_.spawn(run_main(&flags));
    sim_.spawn(run_sender(&flags));
    sim_.spawn(run_receiver());
    for (auto& port : observer_ports_) sim_.spawn(run_observer_receiver(port.get()));
  }

  /// Registers a spectator feed toward one observer (host side).
  void add_observer_port(net::DatagramTransport& transport, sim::Trigger& arrival) {
    auto port = std::make_unique<ObserverPort>(
        ObserverPort{&transport, &arrival, spectator_hub_.add_observer()});
    observer_ports_.push_back(std::move(port));
  }

  [[nodiscard]] const SiteResult& result() const { return result_; }
  SiteResult take_result(const net::LinkStats& tx_stats) {
    result_.sync_stats = rollback_ ? rollback_->stats() : peer_.stats();
    result_.tx_stats = tx_stats;
    if (result_.buf_frames == 0) result_.buf_frames = cfg_.sync.buf_frames;
    result_.frames_completed = static_cast<FrameNo>(result_.timeline.size());
    result_.desync_frame = rollback_ ? rollback_->desync_frame() : peer_.desync_frame();
    result_.rollback_mode = rollback_ != nullptr;
    if (rollback_) result_.rollback_stats = rollback_->rollback_stats();
    if (const auto* r = game_.renderable()) {
      const auto fb = r->framebuffer();
      result_.final_framebuffer.assign(fb.begin(), fb.end());
      result_.fb_cols = r->fb_cols();
      result_.fb_rows = r->fb_rows();
    }
    return std::move(result_);
  }

 private:
  void send(const Message& msg) {
    core::encode_message_into(msg, wire_scratch_);
    transport_.send(wire_scratch_);
  }

  void drain_and_dispatch() {
    bool any = false;
    while (auto payload = transport_.try_recv()) {
      any = true;
      const auto msg = core::decode_message(*payload);
      if (!msg) continue;  // malformed datagram: drop, UDP-style
      if (const auto* sync = std::get_if<SyncMsg>(&*msg)) {
        session_.note_sync_traffic(sim_.now());
        // Sync traffic arriving before the handshake settled (e.g. the
        // peer is already running but our START is in flight) is dropped:
        // the negotiated lag must be locked in before the first ingest.
        // Reliability above re-delivers whatever was in the message.
        if (session_.running()) {
          apply_negotiated_lag();
          if (rollback_ != nullptr) {
            rollback_->ingest(*sync, sim_.now());
          } else {
            peer_.ingest(*sync, sim_.now());
          }
        }
      } else {
        session_.ingest(*msg, sim_.now());
      }
    }
    if (any) state_changed_.notify_all();
  }

  /// Locks the handshake-negotiated local lag into the sync/pacing state.
  /// Idempotent; must run after running() turns true and before the first
  /// submit/ingest/flush. With the fixed paper policy it is a no-op.
  void apply_negotiated_lag() {
    if (lag_applied_) return;
    lag_applied_ = true;
    digest_version_ = session_.digest_version();
    if (session_.rollback_mode()) {
      // v3: both sites opted into rollback. The RollbackSession replaces
      // SyncPeer as the consistency engine; construct it with the
      // *effective* config (negotiated digest version + input delay)
      // before any frame executes, so it captures the genesis state.
      core::SyncConfig eff = cfg_.sync;
      eff.digest_v2 = digest_version_ == 2;
      eff.rollback_input_delay = session_.rollback_delay();
      rollback_ = std::make_unique<core::RollbackSession>(site_, game_, eff);
      result_.buf_frames = rollback_->input_delay();
      result_.replay = core::Replay(game_.content_id(), eff, game_.content_name());
      return;
    }
    const int buf = session_.effective_buf_frames();
    result_.buf_frames = buf;
    if (buf != cfg_.sync.buf_frames) {
      peer_.set_buf_frames(buf);
      pacer_.set_buf_frames(buf);
    }
    // Rebuild the recording with the *effective* config regardless: the
    // negotiated digest version stamps the replay's keyframe digests.
    core::SyncConfig eff = cfg_.sync;
    eff.buf_frames = buf;
    eff.digest_v2 = digest_version_ == 2;
    result_.replay = core::Replay(game_.content_id(), eff, game_.content_name());
  }

  void finish(SharedFlags* flags) { flags->done[site_] = true; }

  /// Rollback mode: feeds frames newly promoted to *confirmed* into the
  /// replay recording and the spectator hub — only confirmed frames are
  /// part of the session's canonical history.
  void record_confirmed() {
    const FrameNo confirmed = rollback_->confirmed_frames();
    for (; rb_recorded_ < confirmed; ++rb_recorded_) {
      const InputWord merged = rollback_->confirmed_input(rb_recorded_);
      result_.replay.record(merged);
      spectator_hub_.on_frame(rb_recorded_, merged);
    }
    // Keyframes come from the confirmed snapshot only (the live machine is
    // speculative), so a rollback recording bisects over confirmed frames.
    if (rb_recorded_ > 0 && result_.replay.keyframe_due()) {
      result_.replay.record_keyframe_raw(rb_recorded_ - 1,
                                         rollback_->confirmed_digest(rb_recorded_ - 1),
                                         rollback_->confirmed_state());
    }
  }

  sim::Task run_receiver() {
    // Drain-first so nothing that arrived before this process started is
    // missed; every later delivery fires the arrival trigger.
    for (;;) {
      drain_and_dispatch();
      co_await arrival_.wait();
    }
  }

  sim::Task run_sender(SharedFlags* flags) {
    while (!flags->all_done()) {
      const Time now = sim_.now();
      // Session messages (handshake) go out unbatched: the game has not
      // started, so there is no interactivity to protect.
      if (auto m = session_.poll(now)) send(*m);

      if (session_.running()) {
        apply_negotiated_lag();
        auto msg = rollback_ != nullptr ? rollback_->make_message(now)
                                        : peer_.make_message(now);
        if (msg) {
          // The producer/consumer thread handoff of §4.2 (~5 ms mean).
          if (cfg_.sync.send_dispatch_delay > 0) {
            co_await sim_.sleep(cfg_.sync.send_dispatch_delay);
          }
          send(Message{*msg});
        }
      }
      pump_observer_ports();
      co_await sim_.sleep(cfg_.sync.send_flush_period);
    }
    // Grace period: keep serving observers (snapshot/feed retransmits)
    // briefly after the match so late joiners can finish catching up.
    for (int tick = 0; tick < 100 && !observer_ports_.empty(); ++tick) {
      pump_observer_ports();
      co_await sim_.sleep(cfg_.sync.send_flush_period);
    }
  }

  void pump_observer_ports() {
    if (observer_ports_.empty()) return;
    const Time now = sim_.now();
    // Reap observers that stopped talking (churned leavers): a dead
    // cursor must not pin the hub's trim watermark. A live observer
    // wrongly reaped re-registers on its next datagram (see
    // run_observer_receiver) — and keepalive acks make that rare.
    (void)spectator_hub_.remove_idle(now, kObserverIdleTimeout);
    // Same gate as RealtimeSession::pump_spectators: never serve a
    // "frame -1" snapshot — defer joins until frame 0 has executed.
    if (spectator_hub_.wants_snapshot()) {
      if (rollback_ != nullptr) {
        // Rollback: only *confirmed* state is canonical — the live
        // machine is speculative and may yet be rolled back.
        if (rollback_->confirmed_frames() > 0) {
          spectator_hub_.provide_snapshot(rollback_->confirmed_frames() - 1,
                                          rollback_->confirmed_state());
        }
      } else if (game_.frame() > 0) {
        // Coroutines only interleave at co_await points, so the machine is
        // always between frames here — a consistent snapshot.
        game_.save_state_into(snapshot_scratch_);
        spectator_hub_.provide_snapshot(game_.frame() - 1, snapshot_scratch_);
      }
    }
    for (auto& port : observer_ports_) {
      if (auto buf = spectator_hub_.make_message(port->id, now)) {
        port->transport->send(*buf);
      }
    }
  }

  sim::Task run_observer_receiver(ObserverPort* port) {
    for (;;) {
      while (auto payload = port->transport->try_recv()) {
        if (auto msg = core::decode_message(*payload)) {
          // An endpoint the idle reaper dropped re-registers under a
          // fresh id (cursor state restarts from the snapshot path).
          if (!spectator_hub_.observer_active(port->id)) {
            port->id = spectator_hub_.add_observer(sim_.now());
          }
          spectator_hub_.ingest(port->id, *msg, sim_.now());
        }
      }
      co_await port->arrival->wait();
    }
  }

  /// Serves any stall event whose start time has passed (in `at` order).
  /// Returns the total freeze applied so run_main can co_await it.
  [[nodiscard]] Dur pending_stall() {
    Dur freeze = 0;
    while (next_stall_ < stalls_.size() && sim_.now() + freeze >= stalls_[next_stall_].at) {
      freeze += stalls_[next_stall_].duration;
      ++next_stall_;
    }
    return freeze;
  }

  sim::Task run_main(SharedFlags* flags) {
    if (cfg_.site_boot_delay[site_] > 0) co_await sim_.sleep(cfg_.site_boot_delay[site_]);
    for (const auto& ev : cfg_.stall_events) {
      if (ev.site == site_ && ev.duration > 0) stalls_.push_back(ev);
    }
    std::sort(stalls_.begin(), stalls_.end(),
              [](const auto& a, const auto& b) { return a.at < b.at; });
    const Dur deadline = cfg_.effective_watchdog();

    // ---- session handshake -------------------------------------------
    while (!session_.running()) {
      if (session_.state() == core::SessionState::kFailed) {
        result_.session_failed = true;
        result_.failure_reason = session_.failure_reason();
        finish(flags);
        co_return;
      }
      if (sim_.now() > deadline) {
        result_.aborted = true;
        result_.failure_reason = "handshake watchdog expired";
        finish(flags);
        co_return;
      }
      (void)co_await state_changed_.wait_until(sim_.now() + milliseconds(5));
    }
    apply_negotiated_lag();

    // ---- rollback consistency mode ------------------------------------
    if (rollback_ != nullptr) {
      auto& rb = *rollback_;
      for (FrameNo frame = 0; frame < cfg_.frames; ++frame) {
        if (const Dur freeze = pending_stall(); freeze > 0) co_await sim_.sleep(freeze);
        core::FrameRecord rec;
        rec.frame = frame;

        pacer_.begin_frame(sim_.now(), frame, rb.remote_obs());
        rec.begin_time = sim_.now();

        const InputWord local =
            site_ == 0 ? make_input(input_.input_for_frame(frame), 0)
                       : make_input(0, input_.input_for_frame(frame));

        // Rollback never stalls on a *late* remote input — it predicts.
        // The only wait is the ring bound: speculation may not outrun the
        // confirmed watermark by more than window - 2 frames.
        const Time sync_start = sim_.now();
        while (!rb.can_advance()) {
          if (sim_.now() > deadline) {
            result_.aborted = true;
            result_.failure_reason =
                "rollback speculation watchdog expired (peer or network gone)";
            finish(flags);
            co_return;
          }
          (void)co_await state_changed_.wait_until(sim_.now() + milliseconds(5));
          rb.reconcile();
        }
        rec.stall = sim_.now() - sync_start;
        rec.input_ready_time = sim_.now();

        const auto out = rb.advance_frame(local);
        // Speculative digest for now; the canonical confirmed digests are
        // backfilled over the timeline after the run.
        rec.state_hash = out.digest;
        record_confirmed();

        rec.compute = cfg_.frame_compute_time;
        co_await sim_.sleep(cfg_.frame_compute_time);

        const Dur wait = pacer_.end_frame(sim_.now());
        rec.wait = wait;
        result_.timeline.add(rec);
        if (wait > 0) co_await sim_.sleep(wait);
      }

      // Confirmation drain: every frame has executed; hold the site alive
      // until the tail is confirmed (the receiver keeps ingesting, the
      // sender keeps flushing acks/retransmits while the peer finishes).
      while (rb.confirmed_frames() < cfg_.frames) {
        if (sim_.now() > deadline) {
          result_.aborted = true;
          result_.failure_reason = "rollback confirmation drain timed out";
          finish(flags);
          co_return;
        }
        rb.reconcile();
        record_confirmed();
        if (rb.confirmed_frames() >= cfg_.frames) break;
        (void)co_await state_changed_.wait_until(sim_.now() + milliseconds(5));
      }
      record_confirmed();
      // Canonical history: replace each frame's speculative digest with
      // the confirmed one (what the desync tripwire and replays compare).
      for (std::size_t i = 0; i < result_.timeline.size(); ++i) {
        result_.timeline.set_state_hash(i, rb.confirmed_digest(static_cast<FrameNo>(i)));
      }
      finish(flags);
      co_return;
    }

    // ---- Algorithm 1: the distributed VM frame loop -------------------
    for (FrameNo frame = 0; frame < cfg_.frames; ++frame) {
      if (const Dur freeze = pending_stall(); freeze > 0) co_await sim_.sleep(freeze);
      core::FrameRecord rec;
      rec.frame = frame;

      pacer_.begin_frame(sim_.now(), frame, peer_.remote_obs());  // step 5
      rec.begin_time = sim_.now();

      const InputWord local =
          site_ == 0 ? make_input(input_.input_for_frame(frame), 0)
                     : make_input(0, input_.input_for_frame(frame));
      peer_.submit_local(frame, local);  // step 7, lines 1-5

      const Time sync_start = sim_.now();  // step 7, the blocking loop
      while (!peer_.ready()) {
        if (sim_.now() > deadline) {
          result_.aborted = true;
          result_.failure_reason = "SyncInput watchdog expired (peer or network gone)";
          finish(flags);
          co_return;
        }
        (void)co_await state_changed_.wait_until(sim_.now() + milliseconds(5));
      }
      rec.stall = sim_.now() - sync_start;
      rec.input_ready_time = sim_.now();

      const InputWord merged = peer_.pop();
      game_.step_frame(merged);  // step 8: Transition(I, S)
      result_.replay.record(merged);
      if (result_.replay.keyframe_due()) result_.replay.record_keyframe(game_);
      rec.state_hash = game_.state_digest(digest_version_);
      peer_.note_state_hash(frame, rec.state_hash);  // desync tripwire
      spectator_hub_.on_frame(frame, merged);

      // Emulation + render cost of this frame.
      rec.compute = cfg_.frame_compute_time;
      co_await sim_.sleep(cfg_.frame_compute_time);

      const Dur wait = pacer_.end_frame(sim_.now());  // step 10
      rec.wait = wait;
      result_.timeline.add(rec);
      if (wait > 0) co_await sim_.sleep(wait);
    }
    finish(flags);
  }

  sim::Simulator& sim_;
  net::DatagramTransport& transport_;
  sim::Trigger& arrival_;
  const ExperimentConfig& cfg_;
  SiteId site_;
  bool lag_applied_ = false;
  int digest_version_ = 1;  ///< locked in with the handshake outcome
  std::vector<ExperimentConfig::StallEvent> stalls_;  ///< this site's, by `at`
  std::size_t next_stall_ = 0;
  std::vector<std::unique_ptr<ObserverPort>> observer_ports_;
  std::vector<std::uint8_t> wire_scratch_;      ///< reused encode buffer
  std::vector<std::uint8_t> snapshot_scratch_;  ///< reused save_state buffer
  std::unique_ptr<emu::IDeterministicGame> game_holder_;
  emu::IDeterministicGame& game_;
  core::SyncPeer peer_;
  core::FramePacer pacer_;
  core::SessionControl session_;
  std::unique_ptr<core::RollbackSession> rollback_;  ///< non-null iff rollback mode
  FrameNo rb_recorded_ = 0;  ///< confirmed frames fed to replay/spectators
  core::SpectatorBroadcastHub spectator_hub_;
  core::MasherInput input_;
  sim::Trigger state_changed_;
  SiteResult result_;
};

/// A late-joining observer: its own replica machine + SpectatorClient,
/// talking to site 0 over its own simulated link.
class SimObserver {
 public:
  SimObserver(sim::Simulator& sim, net::SimEndpoint& ep, const ExperimentConfig& cfg,
              int index, std::unique_ptr<emu::IDeterministicGame> game)
      : sim_(sim), ep_(ep), cfg_(cfg), index_(index), game_holder_(std::move(game)),
        game_(*game_holder_), client_(game_, cfg.sync) {}

  void launch(SharedFlags& flags) { sim_.spawn(run(&flags)); }

  ObserverResult take_result() { return std::move(result_); }

 private:
  [[nodiscard]] Dur join_delay() const {
    const auto i = static_cast<std::size_t>(index_);
    return i < cfg_.observer_join_delays.size() ? cfg_.observer_join_delays[i]
                                                : cfg_.observer_join_delay;
  }
  [[nodiscard]] Dur leave_after() const {
    const auto i = static_cast<std::size_t>(index_);
    return i < cfg_.observer_leave_after.size() ? cfg_.observer_leave_after[i] : 0;
  }

  sim::Task run(SharedFlags* flags) {
    co_await sim_.sleep(join_delay());
    const Time watch_start = sim_.now();
    const Dur watch_for = leave_after();
    Time done_at = -1;
    for (;;) {
      const Time now = sim_.now();
      if (watch_for > 0 && now - watch_start >= watch_for) {
        result_.left = true;  // churn: walk away mid-feed, no goodbye
        break;
      }
      if (flags->all_done()) {
        if (done_at < 0) done_at = now;
        if (now - done_at > seconds(1)) break;  // grace to finish catching up
      }
      if (auto m = client_.make_message(now)) {
        core::encode_message_into(*m, wire_scratch_);
        ep_.send(wire_scratch_);
      }
      while (auto payload = ep_.try_recv()) {
        if (auto msg = core::decode_message(*payload)) {
          const bool was_joined = client_.joined();
          client_.ingest(*msg);
          if (!was_joined && client_.joined()) {
            result_.joined = true;
            result_.snapshot_frame = client_.applied_frame();
          }
        }
      }
      while (client_.step_one()) {
        result_.hashes.emplace_back(client_.applied_frame(),
                                    game_.state_digest(cfg_.sync.digest_version()));
      }
      result_.last_applied = client_.applied_frame();
      (void)co_await ep_.arrival_trigger().wait_until(now + cfg_.sync.send_flush_period);
    }
  }

  sim::Simulator& sim_;
  net::SimEndpoint& ep_;
  const ExperimentConfig& cfg_;
  int index_;
  std::unique_ptr<emu::IDeterministicGame> game_holder_;
  emu::IDeterministicGame& game_;
  core::SpectatorClient client_;
  std::vector<std::uint8_t> wire_scratch_;  ///< reused encode buffer
  ObserverResult result_;
};

}  // namespace

bool ExperimentResult::converged() const {
  for (const auto& s : site) {
    if (s.aborted || s.session_failed) return false;
  }
  return site[0].frames_completed == site[1].frames_completed && first_divergence() == -1;
}

FrameNo ExperimentResult::first_divergence() const {
  return core::first_divergence(site[0].timeline, site[1].timeline);
}

double ExperimentResult::avg_frame_time_ms(int site_idx) const {
  return site[site_idx].timeline.frame_times().summarize().mean;
}

double ExperimentResult::frame_time_deviation_ms(int site_idx) const {
  return site[site_idx].timeline.frame_times().summarize().mean_abs_deviation;
}

double ExperimentResult::synchrony_ms() const {
  return core::synchrony_differences(site[0].timeline, site[1].timeline)
      .summarize()
      .mean_abs;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  ExperimentResult out;
  auto factory = cfg.game_factory;
  if (!factory) {
    if (cores::make_game(cfg.game) == nullptr) {
      for (auto& s : out.site) {
        s.session_failed = true;
        s.failure_reason = "unknown game '" + cfg.game + "'";
      }
      return out;
    }
    factory = [name = cfg.game] { return cores::make_game(name); };
  }

  sim::Simulator sim;
  net::SimDuplexLink link(sim, cfg.net_a_to_b, cfg.net_b_to_a, cfg.net_seed);

  // Optional TCP-like reliable in-order layer (ablation_transport).
  std::unique_ptr<baseline::TcpLikeEndpoint> tcp_a;
  std::unique_ptr<baseline::TcpLikeEndpoint> tcp_b;
  net::DatagramTransport* transport[2] = {&link.a(), &link.b()};
  sim::Trigger* arrival[2] = {&link.a().arrival_trigger(), &link.b().arrival_trigger()};
  if (cfg.transport == ExperimentConfig::Transport::kTcpLike) {
    Dur rto = cfg.tcp_rto;
    if (rto <= 0) {
      rto = 2 * std::max(cfg.net_a_to_b.delay, cfg.net_b_to_a.delay) + milliseconds(20);
    }
    tcp_a = std::make_unique<baseline::TcpLikeEndpoint>(sim, link.a(), rto);
    tcp_b = std::make_unique<baseline::TcpLikeEndpoint>(sim, link.b(), rto);
    transport[0] = tcp_a.get();
    transport[1] = tcp_b.get();
    arrival[0] = &tcp_a->deliverable_trigger();
    arrival[1] = &tcp_b->deliverable_trigger();
  }

  SharedFlags flags;
  SimSite site0(sim, *transport[0], *arrival[0], cfg, 0, factory());
  SimSite site1(sim, *transport[1], *arrival[1], cfg, 1, factory());

  // Late-join observers, each on its own link to site 0.
  std::vector<std::unique_ptr<net::SimDuplexLink>> observer_links;
  std::vector<std::unique_ptr<SimObserver>> observers;
  for (int i = 0; i < cfg.observers; ++i) {
    observer_links.push_back(std::make_unique<net::SimDuplexLink>(
        sim, cfg.observer_net, cfg.net_seed + 1000 + static_cast<std::uint64_t>(i)));
    auto& obs_link = *observer_links.back();
    site0.add_observer_port(obs_link.a(), obs_link.a().arrival_trigger());
    observers.push_back(std::make_unique<SimObserver>(sim, obs_link.b(), cfg, i, factory()));
  }

  using Dir = ExperimentConfig::NetEvent::Dir;
  for (const auto& ev : cfg.net_events) {
    sim.schedule_at(ev.at, [&link, ev] {
      if (ev.dir != Dir::kBToA) link.a().set_tx_config(ev.config);
      if (ev.dir != Dir::kAToB) link.b().set_tx_config(ev.config);
    });
  }

  site0.launch(flags);
  site1.launch(flags);
  for (auto& obs : observers) obs->launch(flags);
  sim.run();

  out.site[0] = site0.take_result(link.a().tx_stats());
  out.site[1] = site1.take_result(link.b().tx_stats());
  for (auto& obs : observers) out.observers.push_back(obs->take_result());
  return out;
}

bool ExperimentResult::observers_consistent() const {
  for (const auto& obs : observers) {
    if (!obs.joined) return false;
    // Caught up to within a handful of frames of the session's end —
    // unless it left mid-session, in which case only the frames it did
    // replay are held to consistency below.
    if (!obs.left && obs.last_applied < site[0].frames_completed - 5) return false;
    for (const auto& [frame, hash] : obs.hashes) {
      if (frame < 0 || frame >= static_cast<FrameNo>(site[0].timeline.size())) return false;
      if (site[0].timeline.records()[static_cast<std::size_t>(frame)].state_hash != hash) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rtct::testbed
