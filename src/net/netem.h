// Network-emulation model: the in-simulator equivalent of the Linux Netem
// qdisc the paper placed between its two gaming PCs (§4).
//
// Each unidirectional link applies, in order: queue admission (tail drop),
// rate-based serialization delay, random loss, duplication, base delay +
// gaussian jitter, and probabilistic reorder hold-back. All randomness is
// drawn from a per-link deterministic RNG so experiments are reproducible.
#pragma once

#include <cstdint>
#include <string_view>

#include "src/common/random.h"
#include "src/common/time.h"

namespace rtct {
class MetricsRegistry;  // src/common/telemetry.h
}  // namespace rtct

namespace rtct::net {

struct NetemConfig {
  Dur delay = 0;            ///< one-way propagation delay (Netem "delay")
  Dur jitter = 0;           ///< stddev of gaussian jitter added to `delay`
  double loss = 0;          ///< drop probability in [0,1] (Netem "loss")
  double duplicate = 0;     ///< duplication probability (Netem "duplicate")
  double reorder = 0;       ///< probability a packet is held back extra
  Dur reorder_extra = 0;    ///< hold-back added to reordered packets
  std::int64_t rate_bps = 0;  ///< link rate, 0 = infinite (Netem "rate")
  std::size_t queue_limit = 0;  ///< max in-flight packets, 0 = unlimited ("limit")

  /// Symmetric-path helper: one direction of a link whose round-trip time
  /// is `rtt` (the paper sweeps RTT, each direction contributing RTT/2).
  static NetemConfig for_rtt(Dur rtt) {
    NetemConfig c;
    c.delay = rtt / 2;
    return c;
  }
};

/// Counters exposed by each link direction.
struct LinkStats {
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_delivered = 0;  ///< includes duplicates
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_queue = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t bytes_offered = 0;
};

/// Snapshots LinkStats into the registry under `prefix` + counter name
/// (e.g. prefix "net.link.a_to_b." → "net.link.a_to_b.dropped_loss"). The
/// prefix names the direction so both halves of a duplex link export
/// side by side.
void export_link_metrics(MetricsRegistry& reg, std::string_view prefix,
                         const LinkStats& s);

/// Pure decision logic for one link direction: given "now", computes when
/// (and whether, and how many times) a packet arrives. IO-free so it can be
/// unit-tested exhaustively and reused by both the simulated and any future
/// real-socket shaping layer.
class NetemModel {
 public:
  NetemModel(NetemConfig cfg, Rng rng) : cfg_(cfg), rng_(rng) {}

  struct Verdict {
    bool delivered = false;
    Time arrival = 0;        ///< valid when delivered
    bool duplicate = false;  ///< a second copy arrives at `dup_arrival`
    Time dup_arrival = 0;
  };

  /// Decides the fate of a packet of `size` bytes offered at time `now`.
  Verdict offer(Time now, std::size_t size);

  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] const NetemConfig& config() const { return cfg_; }

  /// Swaps link conditions mid-run (real networks are not static; the
  /// dynamic-conditions experiments degrade and restore a path live).
  /// Stats and in-flight accounting carry over.
  void set_config(const NetemConfig& cfg) { cfg_ = cfg; }
  /// Number of packets currently "on the wire" (offered, not yet arrived).
  /// Maintained by the caller via on_arrival(); used for queue_limit.
  void on_arrival() {
    if (in_flight_ > 0) --in_flight_;
  }

 private:
  Time departure_time(Time now, std::size_t size);
  Time one_way_delay();

  NetemConfig cfg_;
  Rng rng_;
  LinkStats stats_;
  Time next_free_ = 0;  ///< when the serializer becomes idle (rate limiting)
  std::size_t in_flight_ = 0;
};

}  // namespace rtct::net
