#include "src/net/udp_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/telemetry.h"

namespace rtct::net {

namespace {
constexpr std::size_t kMaxDatagram = 64 * 1024;
}

std::string UdpAddress::to_string() const {
  char buf[32];
  const auto* b = reinterpret_cast<const std::uint8_t*>(&ip);
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", b[0], b[1], b[2], b[3], ntohs(port));
  return buf;
}

UdpSocket::UdpSocket(const std::string& bind_ip, std::uint16_t bind_port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    fail("socket");
    return;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(bind_port);
  if (::inet_pton(AF_INET, bind_ip.c_str(), &addr.sin_addr) != 1) {
    fail("inet_pton(" + bind_ip + ")");
    return;
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    fail("bind");
    return;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    local_port_ = ntohs(bound.sin_port);
  }

  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    fail("fcntl(O_NONBLOCK)");
    return;
  }
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpSocket::fail(const std::string& what) {
  error_ = what + ": " + std::strerror(errno);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool UdpSocket::connect_peer(const std::string& ip, std::uint16_t port) {
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    error_ = "inet_pton(" + ip + ") failed";
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    return false;
  }
  return true;
}

void UdpSocket::send(std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return;
  // UDP semantics: a failed or EWOULDBLOCK send is simply a lost datagram;
  // the sync protocol's retransmission absorbs it.
  const ssize_t n = ::send(fd_, payload.data(), payload.size(), 0);
  if (n >= 0) ++sent_;
}

std::optional<Payload> UdpSocket::try_recv() {
  if (fd_ < 0) return std::nullopt;
  Payload buf(kMaxDatagram);
  const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
  if (n < 0) return std::nullopt;
  buf.resize(static_cast<std::size_t>(n));
  ++received_;
  return buf;
}

void UdpSocket::send_to(const UdpAddress& to, std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = to.port;
  addr.sin_addr.s_addr = to.ip;
  const ssize_t n = ::sendto(fd_, payload.data(), payload.size(), 0,
                             reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (n >= 0) ++sent_;
}

std::optional<std::pair<Payload, UdpAddress>> UdpSocket::recv_from() {
  if (fd_ < 0) return std::nullopt;
  Payload buf(kMaxDatagram);
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  const ssize_t n =
      ::recvfrom(fd_, buf.data(), buf.size(), 0, reinterpret_cast<sockaddr*>(&addr), &len);
  if (n < 0) return std::nullopt;
  buf.resize(static_cast<std::size_t>(n));
  ++received_;
  UdpAddress from;
  from.ip = addr.sin_addr.s_addr;
  from.port = addr.sin_port;
  return std::make_pair(std::move(buf), from);
}

bool UdpSocket::wait_readable(Dur timeout) {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms = static_cast<int>(timeout / kMillisecond);
  const int r = ::poll(&pfd, 1, timeout_ms < 0 ? 0 : timeout_ms);
  return r > 0 && (pfd.revents & POLLIN) != 0;
}

void UdpSocket::export_metrics(MetricsRegistry& reg) const {
  reg.counter("net.udp.datagrams_sent").set(sent_);
  reg.counter("net.udp.datagrams_received").set(received_);
}

}  // namespace rtct::net
