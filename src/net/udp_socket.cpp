#include "src/net/udp_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/telemetry.h"
#include "src/net/udp_syscalls.h"

namespace rtct::net {

namespace {
constexpr std::size_t kMaxDatagram = 64 * 1024;

const UdpSyscalls kRealSyscalls{::send, ::sendto, ::recv, ::recvfrom};
const UdpSyscalls* g_syscalls = &kRealSyscalls;

/// Soft send failure: the datagram is lost but the socket is fine. ENOBUFS
/// is what loopback reports when the receive queue overflows under burst
/// load (the relay bench drives exactly that).
bool soft_send_errno(int e) { return e == EAGAIN || e == EWOULDBLOCK || e == ENOBUFS; }

/// Soft recv failure: nothing to read, or a previous send to an unbound
/// peer bounced an ICMP error back onto a connected socket (loopback races
/// during session startup produce this; the handshake retries cover it).
bool soft_recv_errno(int e) {
  return e == EAGAIN || e == EWOULDBLOCK || e == ECONNREFUSED;
}
}  // namespace

const UdpSyscalls& udp_syscalls() { return *g_syscalls; }

void set_udp_syscalls_for_test(const UdpSyscalls* table) {
  g_syscalls = table != nullptr ? table : &kRealSyscalls;
}

std::string UdpAddress::to_string() const {
  char buf[32];
  const auto* b = reinterpret_cast<const std::uint8_t*>(&ip);
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", b[0], b[1], b[2], b[3], ntohs(port));
  return buf;
}

std::optional<UdpAddress> make_udp_address(const std::string& ip, std::uint16_t port) {
  in_addr parsed{};
  if (::inet_pton(AF_INET, ip.c_str(), &parsed) != 1) return std::nullopt;
  UdpAddress a;
  a.ip = parsed.s_addr;
  a.port = htons(port);
  return a;
}

UdpSocket::UdpSocket(const std::string& bind_ip, std::uint16_t bind_port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    fail("socket");
    return;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(bind_port);
  if (::inet_pton(AF_INET, bind_ip.c_str(), &addr.sin_addr) != 1) {
    fail("inet_pton(" + bind_ip + ")");
    return;
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    fail("bind");
    return;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    local_port_ = ntohs(bound.sin_port);
  }

  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    fail("fcntl(O_NONBLOCK)");
    return;
  }
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpSocket::fail(const std::string& what) {
  // Build the message before close() — close may clobber errno. Every
  // constructor failure path funnels here, so a failed socket can never
  // leak its fd (relayd's lobby churns through many sockets in tests).
  error_ = what + ": " + std::strerror(errno);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool UdpSocket::connect_peer(const std::string& ip, std::uint16_t port) {
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    error_ = "inet_pton(" + ip + ") failed";
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool UdpSocket::set_recv_buffer(int bytes) {
  if (fd_ < 0 || bytes <= 0) return false;
  // SO_RCVBUFFORCE ignores rmem_max but needs CAP_NET_ADMIN; fall back to
  // the capped SO_RCVBUF so unprivileged runs still get the maximum the
  // kernel allows instead of an error.
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUFFORCE, &bytes, sizeof(bytes)) == 0) {
    return true;
  }
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) == 0;
}

void UdpSocket::send(std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return;
  // UDP semantics: a failed or EWOULDBLOCK send is simply a lost datagram;
  // the sync protocol's retransmission absorbs it. A signal landing
  // mid-call must NOT lose the datagram, though — retry on EINTR.
  ssize_t n;
  do {
    n = g_syscalls->send(fd_, payload.data(), payload.size(), 0);
    if (n < 0 && errno == EINTR) ++eintr_retries_;
  } while (n < 0 && errno == EINTR);
  if (n >= 0) {
    ++sent_;
  } else if (soft_send_errno(errno)) {
    ++send_soft_drops_;
  } else {
    ++send_errors_;
  }
}

std::optional<Payload> UdpSocket::try_recv() {
  if (fd_ < 0) return std::nullopt;
  Payload buf(kMaxDatagram);
  ssize_t n;
  do {
    n = g_syscalls->recv(fd_, buf.data(), buf.size(), 0);
    if (n < 0 && errno == EINTR) ++eintr_retries_;
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (!soft_recv_errno(errno)) ++recv_errors_;
    return std::nullopt;
  }
  buf.resize(static_cast<std::size_t>(n));
  ++received_;
  return buf;
}

void UdpSocket::send_to(const UdpAddress& to, std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = to.port;
  addr.sin_addr.s_addr = to.ip;
  ssize_t n;
  do {
    n = g_syscalls->sendto(fd_, payload.data(), payload.size(), 0,
                           reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (n < 0 && errno == EINTR) ++eintr_retries_;
  } while (n < 0 && errno == EINTR);
  if (n >= 0) {
    ++sent_;
  } else if (soft_send_errno(errno)) {
    ++send_soft_drops_;
  } else {
    ++send_errors_;
  }
}

std::optional<std::pair<Payload, UdpAddress>> UdpSocket::recv_from() {
  if (fd_ < 0) return std::nullopt;
  Payload buf(kMaxDatagram);
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  ssize_t n;
  do {
    len = sizeof(addr);
    n = g_syscalls->recvfrom(fd_, buf.data(), buf.size(), 0,
                             reinterpret_cast<sockaddr*>(&addr), &len);
    if (n < 0 && errno == EINTR) ++eintr_retries_;
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (!soft_recv_errno(errno)) ++recv_errors_;
    return std::nullopt;
  }
  buf.resize(static_cast<std::size_t>(n));
  ++received_;
  UdpAddress from;
  from.ip = addr.sin_addr.s_addr;
  from.port = addr.sin_port;
  return std::make_pair(std::move(buf), from);
}

bool UdpSocket::wait_readable(Dur timeout) {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms = static_cast<int>(timeout / kMillisecond);
  int r;
  do {
    r = ::poll(&pfd, 1, timeout_ms < 0 ? 0 : timeout_ms);
    if (r < 0 && errno == EINTR) ++eintr_retries_;
  } while (r < 0 && errno == EINTR);
  return r > 0 && (pfd.revents & POLLIN) != 0;
}

void UdpSocket::export_metrics(MetricsRegistry& reg) const {
  reg.counter("net.udp.datagrams_sent").set(sent_);
  reg.counter("net.udp.datagrams_received").set(received_);
  reg.counter("net.udp.send_soft_drops").set(send_soft_drops_);
  reg.counter("net.udp.send_errors").set(send_errors_);
  reg.counter("net.udp.recv_errors").set(recv_errors_);
  reg.counter("net.udp.eintr_retries").set(eintr_retries_);
}

}  // namespace rtct::net
