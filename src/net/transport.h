// Point-to-point datagram transport abstraction.
//
// The sync protocol (src/core) is sans-IO: it only ever asks a transport to
// ship an opaque datagram to "the peer" and to hand back whatever datagrams
// have arrived. Two implementations exist — SimEndpoint (virtual time +
// Netem model) and UdpSocket (real Berkeley sockets) — and the identical
// protocol bytes flow through both.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace rtct::net {

using Payload = std::vector<std::uint8_t>;

class DatagramTransport {
 public:
  virtual ~DatagramTransport() = default;

  /// Fire-and-forget datagram to the connected peer. May be dropped,
  /// duplicated, delayed or reordered by the path — exactly UDP semantics.
  virtual void send(std::span<const std::uint8_t> payload) = 0;

  /// Pops the next arrived datagram, or nullopt if none is pending.
  virtual std::optional<Payload> try_recv() = 0;
};

}  // namespace rtct::net
