// Point-to-point datagram transport abstraction.
//
// The sync protocol (src/core) is sans-IO: it only ever asks a transport to
// ship an opaque datagram to "the peer" and to hand back whatever datagrams
// have arrived. Two implementations exist — SimEndpoint (virtual time +
// Netem model) and UdpSocket (real Berkeley sockets) — and the identical
// protocol bytes flow through both.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace rtct {
class MetricsRegistry;  // src/common/telemetry.h
}  // namespace rtct

namespace rtct::net {

using Payload = std::vector<std::uint8_t>;

class DatagramTransport {
 public:
  virtual ~DatagramTransport() = default;

  /// Fire-and-forget datagram to the connected peer. May be dropped,
  /// duplicated, delayed or reordered by the path — exactly UDP semantics.
  virtual void send(std::span<const std::uint8_t> payload) = 0;

  /// Pops the next arrived datagram, or nullopt if none is pending.
  virtual std::optional<Payload> try_recv() = 0;
};

/// A DatagramTransport the wall-clock driver (RealtimeSession) can block
/// on. Implemented by the raw UdpSocket (direct peer-to-peer) and by
/// RelayEndpoint (the same protocol bytes framed through rtct_relayd), so
/// the frame loop is indifferent to whether a relay sits on the path.
class PollableTransport : public DatagramTransport {
 public:
  /// Blocks up to `timeout` for a datagram to become readable.
  virtual bool wait_readable(Dur timeout) = 0;

  [[nodiscard]] virtual bool valid() const = 0;
  [[nodiscard]] virtual const std::string& last_error() const = 0;

  /// Snapshots transport counters into the registry.
  virtual void export_metrics(MetricsRegistry& reg) const = 0;
};

}  // namespace rtct::net
