#include "src/net/netem.h"

#include <algorithm>
#include <string>

#include "src/common/telemetry.h"

namespace rtct::net {

Time NetemModel::departure_time(Time now, std::size_t size) {
  if (cfg_.rate_bps <= 0) return now;
  const Dur serialization =
      static_cast<Dur>(static_cast<__int128>(size) * 8 * kSecond / cfg_.rate_bps);
  const Time start = std::max(now, next_free_);
  next_free_ = start + serialization;
  return next_free_;
}

Dur NetemModel::one_way_delay() {
  if (cfg_.jitter <= 0) return cfg_.delay;
  return rng_.jitter(cfg_.delay, cfg_.jitter, 0);
}

NetemModel::Verdict NetemModel::offer(Time now, std::size_t size) {
  Verdict v;
  ++stats_.packets_offered;
  stats_.bytes_offered += size;

  if (cfg_.queue_limit > 0 && in_flight_ >= cfg_.queue_limit) {
    ++stats_.dropped_queue;
    return v;
  }
  if (rng_.bernoulli(cfg_.loss)) {
    ++stats_.dropped_loss;
    return v;
  }

  const Time departed = departure_time(now, size);
  Dur extra = 0;
  if (cfg_.reorder > 0 && rng_.bernoulli(cfg_.reorder)) {
    extra = cfg_.reorder_extra;
    ++stats_.reordered;
  }

  v.delivered = true;
  v.arrival = departed + one_way_delay() + extra;
  ++stats_.packets_delivered;
  ++in_flight_;

  if (cfg_.duplicate > 0 && rng_.bernoulli(cfg_.duplicate)) {
    v.duplicate = true;
    v.dup_arrival = departed + one_way_delay();
    ++stats_.duplicated;
    ++stats_.packets_delivered;
    ++in_flight_;
  }
  return v;
}

void export_link_metrics(MetricsRegistry& reg, std::string_view prefix,
                         const LinkStats& s) {
  const std::string p(prefix);
  reg.counter(p + "packets_offered").set(s.packets_offered);
  reg.counter(p + "packets_delivered").set(s.packets_delivered);
  reg.counter(p + "dropped_loss").set(s.dropped_loss);
  reg.counter(p + "dropped_queue").set(s.dropped_queue);
  reg.counter(p + "duplicated").set(s.duplicated);
  reg.counter(p + "reordered").set(s.reordered);
  reg.counter(p + "bytes_offered").set(s.bytes_offered);
}

}  // namespace rtct::net
