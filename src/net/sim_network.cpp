#include "src/net/sim_network.h"

#include <utility>

namespace rtct::net {

void SimEndpoint::send(std::span<const std::uint8_t> payload) {
  const auto verdict = tx_->offer(sim_.now(), payload.size());
  if (!verdict.delivered) return;

  Payload copy(payload.begin(), payload.end());
  SimEndpoint* peer = peer_;
  NetemModel* tx = tx_.get();
  sim_.schedule_at(verdict.arrival, [peer, tx, copy] {
    tx->on_arrival();
    peer->deliver(copy);
  });
  if (verdict.duplicate) {
    sim_.schedule_at(verdict.dup_arrival, [peer, tx, copy] {
      tx->on_arrival();
      peer->deliver(copy);
    });
  }
}

void SimEndpoint::deliver(Payload payload) {
  inbox_.push_back(std::move(payload));
  trigger_.notify_all();
}

std::optional<Payload> SimEndpoint::try_recv() {
  if (inbox_.empty()) return std::nullopt;
  Payload p = std::move(inbox_.front());
  inbox_.pop_front();
  return p;
}

SimDuplexLink::SimDuplexLink(sim::Simulator& sim, NetemConfig a_to_b, NetemConfig b_to_a,
                             std::uint64_t seed) {
  Rng root(seed);
  a_ = std::unique_ptr<SimEndpoint>(new SimEndpoint(sim, a_to_b, root.fork()));
  b_ = std::unique_ptr<SimEndpoint>(new SimEndpoint(sim, b_to_a, root.fork()));
  a_->peer_ = b_.get();
  b_->peer_ = a_.get();
}

}  // namespace rtct::net
