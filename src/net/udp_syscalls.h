// Injectable socket-syscall table for UdpSocket.
//
// Production code never touches this: the default table calls the real
// Berkeley syscalls. Tests install a fake to force the failure modes a
// loopback socket will not produce on demand — EINTR mid-call, EAGAIN on
// send, hard errors — so the retry/telemetry paths have regression
// coverage (tests/udp_fault_test.cpp).
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

namespace rtct::net {

struct UdpSyscalls {
  ssize_t (*send)(int fd, const void* buf, size_t len, int flags);
  ssize_t (*sendto)(int fd, const void* buf, size_t len, int flags,
                    const sockaddr* addr, socklen_t addrlen);
  ssize_t (*recv)(int fd, void* buf, size_t len, int flags);
  ssize_t (*recvfrom)(int fd, void* buf, size_t len, int flags, sockaddr* addr,
                      socklen_t* addrlen);
};

/// The table UdpSocket routes through (defaults to the real syscalls).
[[nodiscard]] const UdpSyscalls& udp_syscalls();

/// Installs a fake table; nullptr restores the real syscalls. Test-only —
/// not thread-safe against in-flight socket calls.
void set_udp_syscalls_for_test(const UdpSyscalls* table);

}  // namespace rtct::net
