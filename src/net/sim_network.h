// Simulated point-to-point network: two DatagramTransport endpoints joined
// by a pair of independently-configured Netem directions, all running on a
// rtct::sim::Simulator virtual clock. This is the testbed stand-in for the
// paper's "two PCs bridged through a Netem box" (§4).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "src/net/netem.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"
#include "src/sim/trigger.h"

namespace rtct::net {

class SimDuplexLink;

/// One end of a simulated duplex link.
class SimEndpoint final : public DatagramTransport {
 public:
  void send(std::span<const std::uint8_t> payload) override;
  std::optional<Payload> try_recv() override;

  /// Notified (virtual-time) whenever a datagram lands in the inbox. The
  /// simulated site driver waits on this instead of busy-polling.
  [[nodiscard]] sim::Trigger& arrival_trigger() { return trigger_; }

  /// Stats of this endpoint's *outgoing* direction.
  [[nodiscard]] const LinkStats& tx_stats() const { return tx_->stats(); }

  /// Reconfigures this endpoint's outgoing direction mid-simulation.
  void set_tx_config(const NetemConfig& cfg) { tx_->set_config(cfg); }
  [[nodiscard]] std::size_t inbox_size() const { return inbox_.size(); }

 private:
  friend class SimDuplexLink;
  SimEndpoint(sim::Simulator& sim, NetemConfig cfg, Rng rng)
      : sim_(sim), tx_(std::make_unique<NetemModel>(cfg, rng)), trigger_(sim) {}

  void deliver(Payload payload);

  sim::Simulator& sim_;
  SimEndpoint* peer_ = nullptr;
  std::unique_ptr<NetemModel> tx_;
  std::deque<Payload> inbox_;
  sim::Trigger trigger_;
};

/// Owns both endpoints. Keep it alive until the simulation finishes: in-
/// flight datagrams hold no back-reference, but endpoints must exist when
/// their delivery events fire.
class SimDuplexLink {
 public:
  /// `a_to_b` / `b_to_a` shape the two directions independently (asymmetric
  /// paths are one of the extended experiments). `seed` derives both
  /// directions' RNG streams.
  SimDuplexLink(sim::Simulator& sim, NetemConfig a_to_b, NetemConfig b_to_a,
                std::uint64_t seed = 1);

  /// Symmetric convenience: both directions get `cfg`.
  SimDuplexLink(sim::Simulator& sim, NetemConfig cfg, std::uint64_t seed = 1)
      : SimDuplexLink(sim, cfg, cfg, seed) {}

  [[nodiscard]] SimEndpoint& a() { return *a_; }
  [[nodiscard]] SimEndpoint& b() { return *b_; }

 private:
  std::unique_ptr<SimEndpoint> a_;
  std::unique_ptr<SimEndpoint> b_;
};

}  // namespace rtct::net
