// Real UDP transport (Berkeley sockets) for running two rtct sites as
// actual networked processes/threads — the deployment configuration of the
// paper's system. The netplay_udp example drives two sites over loopback
// through this transport; the protocol bytes are identical to SimEndpoint's.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "src/common/time.h"
#include "src/net/transport.h"

namespace rtct {
class MetricsRegistry;  // src/common/telemetry.h
}  // namespace rtct

namespace rtct::net {

/// A peer address for unconnected (server-style) sockets.
struct UdpAddress {
  std::uint32_t ip = 0;  ///< network byte order
  std::uint16_t port = 0;
  bool operator==(const UdpAddress&) const = default;
  /// "a.b.c.d:port" for logs.
  [[nodiscard]] std::string to_string() const;
  /// Stable key for std::map.
  bool operator<(const UdpAddress& o) const {
    return ip != o.ip ? ip < o.ip : port < o.port;
  }
};

/// Builds a UdpAddress from a dotted-quad string + host-order port;
/// nullopt when `ip` does not parse.
std::optional<UdpAddress> make_udp_address(const std::string& ip, std::uint16_t port);

/// A bound UDP socket. Two usage modes:
///  * connected (connect_peer + send/try_recv) — the point-to-point
///    DatagramTransport the sync drivers use;
///  * unconnected (send_to/recv_from) — server-style, used by the
///    spectator host to serve many observers from one port.
class UdpSocket final : public PollableTransport {
 public:
  /// Binds to `bind_ip:bind_port` (port 0 = ephemeral). Returns an unusable
  /// socket (`valid() == false`, fd closed) on failure; `last_error()`
  /// explains.
  UdpSocket(const std::string& bind_ip, std::uint16_t bind_port);
  ~UdpSocket() override;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Fixes the peer address; send()/try_recv() only talk to that peer.
  bool connect_peer(const std::string& ip, std::uint16_t port);

  /// Requests a larger kernel receive queue (SO_RCVBUFFORCE when permitted,
  /// SO_RCVBUF otherwise — the latter is silently capped by rmem_max).
  /// Burst absorbers (relay shards, the load generator's shared client
  /// sockets) call this; point-to-point sessions don't need it. Returns
  /// false only when the setsockopt itself fails.
  bool set_recv_buffer(int bytes);

  void send(std::span<const std::uint8_t> payload) override;
  std::optional<Payload> try_recv() override;

  /// Unconnected mode: datagram to an explicit peer.
  void send_to(const UdpAddress& to, std::span<const std::uint8_t> payload);
  /// Unconnected mode: next datagram + its sender, or nullopt.
  std::optional<std::pair<Payload, UdpAddress>> recv_from();

  /// Blocks up to `timeout` for the socket to become readable.
  /// Returns true if readable.
  bool wait_readable(Dur timeout) override;

  [[nodiscard]] bool valid() const override { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] const std::string& last_error() const override { return error_; }
  [[nodiscard]] int native_fd() const { return fd_; }  ///< for epoll registration

  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_received() const { return received_; }
  /// Sends that failed softly (EAGAIN/EWOULDBLOCK/ENOBUFS: kernel queue
  /// full, the datagram is simply lost — UDP semantics, protocol
  /// retransmission absorbs it).
  [[nodiscard]] std::uint64_t send_soft_drops() const { return send_soft_drops_; }
  /// Sends/receives that failed hard (anything else) — these indicate a
  /// real socket problem and are split from soft drops in telemetry.
  [[nodiscard]] std::uint64_t send_errors() const { return send_errors_; }
  [[nodiscard]] std::uint64_t recv_errors() const { return recv_errors_; }
  /// Syscalls retried after an EINTR interruption.
  [[nodiscard]] std::uint64_t eintr_retries() const { return eintr_retries_; }

  /// Snapshots socket counters into the registry ("net.udp.*").
  void export_metrics(MetricsRegistry& reg) const override;

 private:
  void fail(const std::string& what);

  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::string error_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t send_soft_drops_ = 0;
  std::uint64_t send_errors_ = 0;
  std::uint64_t recv_errors_ = 0;
  std::uint64_t eintr_retries_ = 0;
};

}  // namespace rtct::net
