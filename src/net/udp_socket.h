// Real UDP transport (Berkeley sockets) for running two rtct sites as
// actual networked processes/threads — the deployment configuration of the
// paper's system. The netplay_udp example drives two sites over loopback
// through this transport; the protocol bytes are identical to SimEndpoint's.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "src/common/time.h"
#include "src/net/transport.h"

namespace rtct {
class MetricsRegistry;  // src/common/telemetry.h
}  // namespace rtct

namespace rtct::net {

/// A peer address for unconnected (server-style) sockets.
struct UdpAddress {
  std::uint32_t ip = 0;  ///< network byte order
  std::uint16_t port = 0;
  bool operator==(const UdpAddress&) const = default;
  /// "a.b.c.d:port" for logs.
  [[nodiscard]] std::string to_string() const;
  /// Stable key for std::map.
  bool operator<(const UdpAddress& o) const {
    return ip != o.ip ? ip < o.ip : port < o.port;
  }
};

/// A bound UDP socket. Two usage modes:
///  * connected (connect_peer + send/try_recv) — the point-to-point
///    DatagramTransport the sync drivers use;
///  * unconnected (send_to/recv_from) — server-style, used by the
///    spectator host to serve many observers from one port.
class UdpSocket final : public DatagramTransport {
 public:
  /// Binds to `bind_ip:bind_port` (port 0 = ephemeral). Returns an unusable
  /// socket (`valid() == false`) on failure; `last_error()` explains.
  UdpSocket(const std::string& bind_ip, std::uint16_t bind_port);
  ~UdpSocket() override;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Fixes the peer address; send()/try_recv() only talk to that peer.
  bool connect_peer(const std::string& ip, std::uint16_t port);

  void send(std::span<const std::uint8_t> payload) override;
  std::optional<Payload> try_recv() override;

  /// Unconnected mode: datagram to an explicit peer.
  void send_to(const UdpAddress& to, std::span<const std::uint8_t> payload);
  /// Unconnected mode: next datagram + its sender, or nullopt.
  std::optional<std::pair<Payload, UdpAddress>> recv_from();

  /// Blocks up to `timeout` for the socket to become readable.
  /// Returns true if readable.
  bool wait_readable(Dur timeout);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] const std::string& last_error() const { return error_; }

  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_received() const { return received_; }

  /// Snapshots socket counters into the registry ("net.udp.*").
  void export_metrics(MetricsRegistry& reg) const;

 private:
  void fail(const std::string& what);

  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::string error_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace rtct::net
