#!/usr/bin/env bash
# Full local gate: everything CI would hold a change to.
#
#   1. build the sanitize preset (ASan+UBSan, RelWithDebInfo);
#   2. run the complete test suite under the sanitizers (includes the
#      chaos soak and the fuzz corpus; use `ctest -LE slow` manually if
#      you only want the quick tier);
#   3. re-run the fuzz label explicitly — decoder fuzzing is the suite
#      the sanitizers exist for, so its result is surfaced on its own;
#   4. produce a bench export and validate it with `rtct_trace --check`,
#      so the observability schema cannot silently rot.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> configure + build (sanitize preset)"
cmake --preset sanitize
cmake --build --preset sanitize -j "$(nproc)"

echo "==> full test suite under ASan/UBSan"
ctest --preset sanitize -j "$(nproc)" "$@"

echo "==> fuzz label (decoder corpus + random fuzz)"
ctest --preset sanitize -L fuzz --output-on-failure

echo "==> bench export + schema check"
out="build-asan/BENCH_check_sweep.json"
./build-asan/bench/sync_sweep 120 --json "$out"
./build-asan/tools/rtct_trace --check "$out"

echo "==> emulator hot-path bench (digest v2 speedup gate)"
out="build-asan/BENCH_emu_perf.json"
./build-asan/bench/emu_perf --json "$out"
./build-asan/tools/rtct_trace --check "$out"

echo "==> portable-dispatch leg (RTCT_THREADED_DISPATCH=OFF: switch backend)"
# The fast interpreter ships two dispatch backends; CI keeps the portable
# switch one honest with a dedicated build running the CPU + differential
# suites. Correctness only — the perf gates run on computed-goto builds
# (the sanitized full suite above, and plain ctest for absolute numbers).
cmake -B build-portable -S . -DRTCT_THREADED_DISPATCH=OFF >/dev/null
cmake --build build-portable -j "$(nproc)" --target \
      cpu_test cpu_property_test machine_test games_test emu_differential_test \
      cores_test agent86_test agent86_determinism_test
ctest --test-dir build-portable \
      -R "cpu_test|cpu_property_test|machine_test|games_test|emu_differential_test|cores_test|agent86_test|agent86_determinism_test" \
      --output-on-failure

echo "==> rollback latency bench (lockstep-vs-rollback acceptance gate)"
out="build-asan/BENCH_rollback_latency.json"
./build-asan/bench/rollback_latency 600 --json "$out"
./build-asan/tools/rtct_trace --check "$out"

echo "==> spectator fan-out bench (encode-once scaling gate)"
out="build-asan/BENCH_spectator_scaling.json"
./build-asan/bench/spectator_scaling 240 --json "$out"
./build-asan/tools/rtct_trace --check "$out"

echo "==> relay scaling bench (1000-session multiplexing gate)"
out="build-asan/BENCH_relay_scaling.json"
./build-asan/bench/relay_scaling 20 --json "$out"
./build-asan/tools/rtct_trace --check "$out"

echo "==> replay seek bench (keyframe random-access gate)"
out="build-asan/BENCH_replay_seek.json"
./build-asan/bench/replay_seek 1200 --seeks 16 --json "$out"
./build-asan/tools/rtct_trace --check "$out"

echo "==> bisect fixture gate (committed twin pair, byte-for-byte)"
sh tests/replay_bisect_test.sh ./build-asan/tools/rtct_replay tests/fixtures

echo "==> relay + CLI regression tests (also covered by the full suite run)"
ctest --preset sanitize -R "relay_test|relay_soak_test|udp_fault_test|cli_netplay_test" \
      --output-on-failure

echo "==> all checks passed"
