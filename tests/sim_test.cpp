// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/trigger.h"

namespace rtct::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(30));
}

TEST(SimulatorTest, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.schedule_at(milliseconds(10), [] {});
  sim.run();
  Time ran_at = -1;
  sim.schedule_at(milliseconds(3), [&] { ran_at = sim.now(); });  // in the past
  sim.run();
  EXPECT_EQ(ran_at, milliseconds(10));
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(milliseconds(100)), 0u);
  EXPECT_EQ(sim.now(), milliseconds(100));
}

TEST(SimulatorTest, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(milliseconds(10), [&] { ++ran; });
  sim.schedule_at(milliseconds(50), [&] { ++ran; });
  sim.run_until(milliseconds(20));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_in(milliseconds(1), chain);
  };
  sim.schedule_in(milliseconds(1), chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

// ---- coroutine tasks --------------------------------------------------------

Task counting_task(Simulator& sim, std::vector<Time>& wakeups, int n, Dur step) {
  for (int i = 0; i < n; ++i) {
    co_await sim.sleep(step);
    wakeups.push_back(sim.now());
  }
}

TEST(TaskTest, SleepAdvancesVirtualTime) {
  Simulator sim;
  std::vector<Time> wakeups;
  sim.spawn(counting_task(sim, wakeups, 3, milliseconds(10)));
  sim.run();
  ASSERT_EQ(wakeups.size(), 3u);
  EXPECT_EQ(wakeups[0], milliseconds(10));
  EXPECT_EQ(wakeups[2], milliseconds(30));
  EXPECT_EQ(sim.live_tasks(), 0u);  // finished tasks are reclaimed
}

TEST(TaskTest, ZeroSleepDoesNotSuspend) {
  Simulator sim;
  bool done = false;
  struct Fn {
    static Task run(Simulator& s, bool& flag) {
      co_await s.sleep(0);
      flag = true;
    }
  };
  sim.spawn(Fn::run(sim, done));
  // Completed synchronously during spawn (await_ready short-circuits).
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.live_tasks(), 0u);
}

TEST(TaskTest, ManyInterleavedTasksKeepOrder) {
  Simulator sim;
  std::vector<int> log;
  struct Fn {
    static Task run(Simulator& s, std::vector<int>& out, int id, Dur period) {
      for (int i = 0; i < 3; ++i) {
        co_await s.sleep(period);
        out.push_back(id);
      }
    }
  };
  sim.spawn(Fn::run(sim, log, 1, milliseconds(10)));  // wakes 10,20,30
  sim.spawn(Fn::run(sim, log, 2, milliseconds(15)));  // wakes 15,30,45
  sim.run();
  // At the t=30 tie, task 2 scheduled its wakeup at t=15 — before task 1
  // did at t=20 — so FIFO ordering runs task 2 first.
  EXPECT_EQ(log, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(TaskTest, UnfinishedTaskIsReclaimedAtTeardown) {
  // A task suspended forever must not leak (ASan would catch it).
  auto sim = std::make_unique<Simulator>();
  struct Fn {
    static Task run(Simulator& s) {
      co_await s.sleep(seconds(999));
      ADD_FAILURE() << "should never resume";
    }
  };
  sim->spawn(Fn::run(*sim));
  sim->run_until(milliseconds(1));
  EXPECT_EQ(sim->live_tasks(), 1u);
  sim.reset();  // must destroy the suspended coroutine cleanly
}

// ---- triggers ---------------------------------------------------------------

TEST(TriggerTest, NotifyWakesAllWaiters) {
  Simulator sim;
  Trigger trig(sim);
  int woken = 0;
  struct Fn {
    static Task run(Simulator&, Trigger& t, int& count) {
      co_await t.wait();
      ++count;
    }
  };
  sim.spawn(Fn::run(sim, trig, woken));
  sim.spawn(Fn::run(sim, trig, woken));
  sim.run();
  EXPECT_EQ(woken, 0);  // nothing notified yet
  EXPECT_EQ(trig.waiter_count(), 2u);
  trig.notify_all();
  sim.run();
  EXPECT_EQ(woken, 2);
}

TEST(TriggerTest, NotifyBeforeWaitIsNotSticky) {
  // Like a condition variable: a notify with no waiters is lost, so
  // callers must check their predicate before waiting.
  Simulator sim;
  Trigger trig(sim);
  trig.notify_all();
  bool woke = false;
  struct Fn {
    static Task run(Simulator& s, Trigger& t, bool& flag) {
      const bool notified = co_await t.wait_until(s.now() + milliseconds(10));
      flag = notified;
    }
  };
  sim.spawn(Fn::run(sim, trig, woke));
  sim.run();
  EXPECT_FALSE(woke);  // timed out, did not see the pre-wait notify
  EXPECT_EQ(sim.now(), milliseconds(10));
}

TEST(TriggerTest, WaitUntilReportsNotifyVsTimeout) {
  Simulator sim;
  Trigger trig(sim);
  std::vector<bool> results;
  struct Fn {
    static Task run(Simulator& s, Trigger& t, std::vector<bool>& out, Dur timeout) {
      out.push_back(co_await t.wait_until(s.now() + timeout));
    }
  };
  sim.spawn(Fn::run(sim, trig, results, milliseconds(5)));    // will time out
  sim.spawn(Fn::run(sim, trig, results, milliseconds(100)));  // will be notified
  sim.schedule_at(milliseconds(20), [&] { trig.notify_all(); });
  sim.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0]);
  EXPECT_TRUE(results[1]);
}

TEST(TriggerTest, TimedOutWaiterNotWokenLater) {
  Simulator sim;
  Trigger trig(sim);
  int wakes = 0;
  struct Fn {
    static Task run(Simulator& s, Trigger& t, int& count) {
      (void)co_await t.wait_until(s.now() + milliseconds(5));
      ++count;
      // Do NOT re-register; a later notify must not touch this coroutine.
      co_await s.sleep(milliseconds(100));
    }
  };
  sim.spawn(Fn::run(sim, trig, wakes));
  sim.schedule_at(milliseconds(50), [&] { trig.notify_all(); });
  sim.run();
  EXPECT_EQ(wakes, 1);
}

TEST(TriggerTest, RewaitAfterNotifyReceivesNextNotify) {
  Simulator sim;
  Trigger trig(sim);
  int wakes = 0;
  struct Fn {
    static Task run(Simulator&, Trigger& t, int& count) {
      co_await t.wait();
      ++count;
      co_await t.wait();
      ++count;
    }
  };
  sim.spawn(Fn::run(sim, trig, wakes));
  sim.schedule_at(milliseconds(1), [&] { trig.notify_all(); });
  sim.schedule_at(milliseconds(2), [&] { trig.notify_all(); });
  sim.run();
  EXPECT_EQ(wakes, 2);
}

TEST(TriggerTest, NotifierDoesNotRunWaiterInline) {
  Simulator sim;
  Trigger trig(sim);
  bool waiter_ran = false;
  struct Fn {
    static Task run(Simulator&, Trigger& t, bool& flag) {
      co_await t.wait();
      flag = true;
    }
  };
  sim.spawn(Fn::run(sim, trig, waiter_ran));
  bool observed_during_notify = true;
  sim.schedule_at(milliseconds(1), [&] {
    trig.notify_all();
    observed_during_notify = waiter_ran;  // must still be false here
  });
  sim.run();
  EXPECT_FALSE(observed_during_notify);
  EXPECT_TRUE(waiter_ran);
}

}  // namespace
}  // namespace rtct::sim
