// Tests for the spectator / late-join extension (journal-version feature).
//
// A "session" machine plays torture (maximally divergence-sensitive) while
// a SpectatorHost records its merged inputs; a SpectatorClient joins late
// across a hand-rolled lossy channel and must converge to bit-identical
// state.
#include <gtest/gtest.h>

#include <deque>

#include "src/common/random.h"
#include "src/core/spectate.h"
#include "src/games/roms.h"

namespace rtct::core {
namespace {

struct Rig {
  std::unique_ptr<emu::ArcadeMachine> session = games::make_machine("torture");
  std::unique_ptr<emu::ArcadeMachine> replica = games::make_machine("torture");
  SpectatorHost host{session->content_id(), SyncConfig{}};
  SpectatorClient client{*replica, SyncConfig{}};
  Rng rng{77};
  FrameNo frame = 0;

  InputWord play_one_frame() {
    const auto input = static_cast<InputWord>(rng.next_u64() & 0xFFFF);
    session->step_frame(input);
    host.on_frame(frame, input);
    ++frame;
    return input;
  }

  void serve_snapshot_if_needed() {
    // Same gate as the production drivers: never snapshot before the
    // session has executed frame 0.
    if (host.wants_snapshot() && session->frame() > 0) {
      host.provide_snapshot(session->frame() - 1, session->save_state());
    }
  }

  /// One message in each direction, with optional loss.
  void exchange(Time now, bool drop_host_to_client = false, bool drop_client_to_host = false) {
    if (auto m = client.make_message(now); m && !drop_client_to_host) host.ingest(*m);
    serve_snapshot_if_needed();
    if (auto m = host.make_message(now); m && !drop_host_to_client) client.ingest(*m);
    client.step_available();
  }
};

TEST(SpectateTest, LateJoinerConvergesOnPerfectChannel) {
  Rig rig;
  for (int i = 0; i < 100; ++i) rig.play_one_frame();  // session well underway

  Time now = 0;
  rig.exchange(now);  // join request -> snapshot taken and delivered
  EXPECT_TRUE(rig.client.joined());
  EXPECT_EQ(rig.client.applied_frame(), 99);
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());

  // Keep playing; feed flows every "flush".
  for (int i = 0; i < 50; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now);
  }
  EXPECT_EQ(rig.client.applied_frame(), rig.frame - 1);
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, JoinBeforeFirstFrameDefersUntilFrameZero) {
  // Pre-frame-0 snapshots are banned (wire and client both reject them):
  // a join that lands before the session's first frame stays pending and
  // is answered right after frame 0 executes.
  Rig rig;
  rig.exchange(0);
  EXPECT_FALSE(rig.client.joined());
  for (int i = 0; i < 30; ++i) {
    rig.play_one_frame();
    rig.exchange(milliseconds(60 * (i + 1)));
  }
  EXPECT_TRUE(rig.client.joined());
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, SnapshotLossIsRepairedByResend) {
  Rig rig;
  for (int i = 0; i < 20; ++i) rig.play_one_frame();
  rig.exchange(0, /*drop_host_to_client=*/true);  // snapshot lost
  EXPECT_FALSE(rig.client.joined());
  rig.exchange(milliseconds(60));  // host still holds it; resend succeeds
  EXPECT_TRUE(rig.client.joined());
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, FeedLossIsRepairedByGoBackN) {
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.play_one_frame();
  Time now = 0;
  rig.exchange(now);
  ASSERT_TRUE(rig.client.joined());

  // Drop several consecutive feed messages, then let one through.
  for (int i = 0; i < 5; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now, /*drop_host_to_client=*/true);
  }
  EXPECT_LT(rig.client.applied_frame(), rig.frame - 1);
  now += milliseconds(20);
  rig.exchange(now);  // the full unacked window arrives at once
  EXPECT_EQ(rig.client.applied_frame(), rig.frame - 1);
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, AckLossOnlyCausesDuplicates) {
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.play_one_frame();
  Time now = 0;
  rig.exchange(now);
  ASSERT_TRUE(rig.client.joined());
  for (int i = 0; i < 10; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now, false, /*drop_client_to_host=*/i % 2 == 0);
  }
  EXPECT_EQ(rig.client.applied_frame(), rig.frame - 1);
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, BacklogTrimsOnAck) {
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.play_one_frame();
  Time now = 0;
  rig.exchange(now);
  for (int i = 0; i < 20; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now);
    now += milliseconds(20);
    rig.exchange(now);  // second round lets the ack land
  }
  EXPECT_LE(rig.host.backlog_size(), 2u);  // everything acked and trimmed
}

TEST(SpectateTest, WrongGameJoinIgnored) {
  Rig rig;
  rig.host.ingest(Message{JoinRequestMsg{rig.session->content_id() + 1}});
  EXPECT_FALSE(rig.host.wants_snapshot());
}

TEST(SpectateTest, CorruptSnapshotRejectedAndRetried) {
  Rig rig;
  for (int i = 0; i < 5; ++i) rig.play_one_frame();
  // Deliver a truncated snapshot by hand.
  auto state = rig.session->save_state();
  state.resize(state.size() / 2);
  SnapshotMsg bad;
  bad.frame = rig.frame - 1;
  bad.state = state;
  rig.client.ingest(Message{bad});
  EXPECT_FALSE(rig.client.joined());
  // The genuine exchange still succeeds afterwards.
  rig.exchange(milliseconds(60));
  EXPECT_TRUE(rig.client.joined());
}

TEST(SpectateTest, HostlessClientKeepsRequesting) {
  auto replica = games::make_machine("pong");
  SpectatorClient client(*replica, SyncConfig{});
  EXPECT_TRUE(client.make_message(0).has_value());
  EXPECT_FALSE(client.make_message(milliseconds(10)).has_value());  // rate-limited
  EXPECT_TRUE(client.make_message(milliseconds(60)).has_value());
  EXPECT_FALSE(client.joined());
}

TEST(SpectateTest, JoinDuringHandshakeNeverYieldsPreFrameZeroSnapshot) {
  // An observer whose join request lands before the session executed a
  // single frame (the handshake race) must be deferred, not served a
  // frame -1 snapshot; once frame 0 exists it joins at snapshot frame 0.
  Rig rig;
  Time now = 0;
  rig.exchange(now);  // join arrives pre-frame-0
  EXPECT_TRUE(rig.host.wants_snapshot());
  EXPECT_FALSE(rig.host.observer_joined());
  EXPECT_FALSE(rig.client.joined());

  rig.play_one_frame();
  now += milliseconds(60);
  rig.exchange(now);
  ASSERT_TRUE(rig.client.joined());
  EXPECT_EQ(rig.client.applied_frame(), 0);
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, ClientRejectsPreFrameZeroSnapshot) {
  // Defense in depth below the wire decoder: even an in-process snapshot
  // claiming a pre-session frame must not be adopted.
  Rig rig;
  rig.play_one_frame();
  SnapshotMsg bad;
  bad.frame = -1;
  bad.state = rig.session->save_state();
  rig.client.ingest(Message{bad});
  EXPECT_FALSE(rig.client.joined());
  // And the wire layer refuses to even decode one.
  EXPECT_FALSE(decode_message(encode_message(Message{bad})).has_value());
}

TEST(SpectateTest, ChurnRejoinAfterLeaveConverges) {
  // Leave/rejoin churn: a second observer lifecycle on a fresh host port
  // (one host instance per observer, as the drivers do) must converge
  // mid-session just like the first.
  Rig rig;
  Time now = 0;
  for (int i = 0; i < 50; ++i) rig.play_one_frame();
  rig.exchange(now);
  ASSERT_TRUE(rig.client.joined());  // first observer lifecycle ends here

  auto replica2 = games::make_machine("torture");
  SpectatorHost host2(rig.session->content_id(), SyncConfig{});
  SpectatorClient client2(*replica2, SyncConfig{});
  for (int i = 0; i < 25; ++i) {
    const auto input = rig.play_one_frame();
    host2.on_frame(rig.frame - 1, input);
  }
  for (int round = 0; round < 40 && client2.applied_frame() < rig.frame - 1;
       ++round) {
    now += milliseconds(60);
    if (auto m = client2.make_message(now)) host2.ingest(*m);
    if (host2.wants_snapshot() && rig.session->frame() > 0) {
      host2.provide_snapshot(rig.session->frame() - 1, rig.session->save_state());
    }
    if (auto m = host2.make_message(now)) client2.ingest(*m);
    client2.step_available();
  }
  ASSERT_TRUE(client2.joined());
  EXPECT_GE(client2.applied_frame(), 0);
  EXPECT_EQ(replica2->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, RandomizedLossyChannelProperty) {
  for (std::uint64_t seed : {3u, 17u, 99u}) {
    Rig rig;
    Rng net(seed);
    Time now = 0;
    for (int i = 0; i < 30; ++i) rig.play_one_frame();
    for (int round = 0; round < 400 && rig.client.applied_frame() < rig.frame - 1; ++round) {
      if (round % 3 == 0) rig.play_one_frame();
      now += milliseconds(20);
      rig.exchange(now, net.bernoulli(0.3), net.bernoulli(0.3));
    }
    ASSERT_EQ(rig.client.applied_frame(), rig.frame - 1) << "seed " << seed;
    ASSERT_EQ(rig.replica->state_hash(), rig.session->state_hash()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rtct::core
