// Tests for the spectator / late-join extension (journal-version feature).
//
// A "session" machine plays torture (maximally divergence-sensitive) while
// a SpectatorHost records its merged inputs; a SpectatorClient joins late
// across a hand-rolled lossy channel and must converge to bit-identical
// state.
#include <gtest/gtest.h>

#include <deque>

#include "src/common/random.h"
#include "src/core/spectate.h"
#include "src/games/roms.h"

namespace rtct::core {
namespace {

struct Rig {
  std::unique_ptr<emu::ArcadeMachine> session = games::make_machine("torture");
  std::unique_ptr<emu::ArcadeMachine> replica = games::make_machine("torture");
  SpectatorHost host{session->content_id(), SyncConfig{}};
  SpectatorClient client{*replica, SyncConfig{}};
  Rng rng{77};
  FrameNo frame = 0;

  InputWord play_one_frame() {
    const auto input = static_cast<InputWord>(rng.next_u64() & 0xFFFF);
    session->step_frame(input);
    host.on_frame(frame, input);
    ++frame;
    return input;
  }

  void serve_snapshot_if_needed() {
    // Same gate as the production drivers: never snapshot before the
    // session has executed frame 0.
    if (host.wants_snapshot() && session->frame() > 0) {
      host.provide_snapshot(session->frame() - 1, session->save_state());
    }
  }

  /// One message in each direction, with optional loss.
  void exchange(Time now, bool drop_host_to_client = false, bool drop_client_to_host = false) {
    if (auto m = client.make_message(now); m && !drop_client_to_host) host.ingest(*m);
    serve_snapshot_if_needed();
    if (auto m = host.make_message(now); m && !drop_host_to_client) client.ingest(*m);
    client.step_available();
  }
};

TEST(SpectateTest, LateJoinerConvergesOnPerfectChannel) {
  Rig rig;
  for (int i = 0; i < 100; ++i) rig.play_one_frame();  // session well underway

  Time now = 0;
  rig.exchange(now);  // join request -> snapshot taken and delivered
  EXPECT_TRUE(rig.client.joined());
  EXPECT_EQ(rig.client.applied_frame(), 99);
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());

  // Keep playing; feed flows every "flush".
  for (int i = 0; i < 50; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now);
  }
  EXPECT_EQ(rig.client.applied_frame(), rig.frame - 1);
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, JoinBeforeFirstFrameDefersUntilFrameZero) {
  // Pre-frame-0 snapshots are banned (wire and client both reject them):
  // a join that lands before the session's first frame stays pending and
  // is answered right after frame 0 executes.
  Rig rig;
  rig.exchange(0);
  EXPECT_FALSE(rig.client.joined());
  for (int i = 0; i < 30; ++i) {
    rig.play_one_frame();
    rig.exchange(milliseconds(60 * (i + 1)));
  }
  EXPECT_TRUE(rig.client.joined());
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, SnapshotLossIsRepairedByResend) {
  Rig rig;
  for (int i = 0; i < 20; ++i) rig.play_one_frame();
  rig.exchange(0, /*drop_host_to_client=*/true);  // snapshot lost
  EXPECT_FALSE(rig.client.joined());
  rig.exchange(milliseconds(60));  // host still holds it; resend succeeds
  EXPECT_TRUE(rig.client.joined());
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, FeedLossIsRepairedByGoBackN) {
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.play_one_frame();
  Time now = 0;
  rig.exchange(now);
  ASSERT_TRUE(rig.client.joined());

  // Drop several consecutive feed messages, then let one through.
  for (int i = 0; i < 5; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now, /*drop_host_to_client=*/true);
  }
  EXPECT_LT(rig.client.applied_frame(), rig.frame - 1);
  now += milliseconds(20);
  rig.exchange(now);  // the full unacked window arrives at once
  EXPECT_EQ(rig.client.applied_frame(), rig.frame - 1);
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, AckLossOnlyCausesDuplicates) {
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.play_one_frame();
  Time now = 0;
  rig.exchange(now);
  ASSERT_TRUE(rig.client.joined());
  for (int i = 0; i < 10; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now, false, /*drop_client_to_host=*/i % 2 == 0);
  }
  EXPECT_EQ(rig.client.applied_frame(), rig.frame - 1);
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, BacklogTrimsOnAck) {
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.play_one_frame();
  Time now = 0;
  rig.exchange(now);
  for (int i = 0; i < 20; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now);
    now += milliseconds(20);
    rig.exchange(now);  // second round lets the ack land
  }
  EXPECT_LE(rig.host.backlog_size(), 2u);  // everything acked and trimmed
}

TEST(SpectateTest, WrongGameJoinIgnored) {
  Rig rig;
  rig.host.ingest(Message{JoinRequestMsg{rig.session->content_id() + 1}});
  EXPECT_FALSE(rig.host.wants_snapshot());
}

TEST(SpectateTest, CorruptSnapshotRejectedAndRetried) {
  Rig rig;
  for (int i = 0; i < 5; ++i) rig.play_one_frame();
  // Deliver a truncated snapshot by hand.
  auto state = rig.session->save_state();
  state.resize(state.size() / 2);
  SnapshotMsg bad;
  bad.frame = rig.frame - 1;
  bad.state = state;
  rig.client.ingest(Message{bad});
  EXPECT_FALSE(rig.client.joined());
  // The genuine exchange still succeeds afterwards.
  rig.exchange(milliseconds(60));
  EXPECT_TRUE(rig.client.joined());
}

TEST(SpectateTest, HostlessClientKeepsRequesting) {
  auto replica = games::make_machine("pong");
  SpectatorClient client(*replica, SyncConfig{});
  EXPECT_TRUE(client.make_message(0).has_value());
  EXPECT_FALSE(client.make_message(milliseconds(10)).has_value());  // rate-limited
  EXPECT_TRUE(client.make_message(milliseconds(60)).has_value());
  EXPECT_FALSE(client.joined());
}

TEST(SpectateTest, JoinDuringHandshakeNeverYieldsPreFrameZeroSnapshot) {
  // An observer whose join request lands before the session executed a
  // single frame (the handshake race) must be deferred, not served a
  // frame -1 snapshot; once frame 0 exists it joins at snapshot frame 0.
  Rig rig;
  Time now = 0;
  rig.exchange(now);  // join arrives pre-frame-0
  EXPECT_TRUE(rig.host.wants_snapshot());
  EXPECT_FALSE(rig.host.observer_joined());
  EXPECT_FALSE(rig.client.joined());

  rig.play_one_frame();
  now += milliseconds(60);
  rig.exchange(now);
  ASSERT_TRUE(rig.client.joined());
  EXPECT_EQ(rig.client.applied_frame(), 0);
  EXPECT_EQ(rig.replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, ClientRejectsPreFrameZeroSnapshot) {
  // Defense in depth below the wire decoder: even an in-process snapshot
  // claiming a pre-session frame must not be adopted.
  Rig rig;
  rig.play_one_frame();
  SnapshotMsg bad;
  bad.frame = -1;
  bad.state = rig.session->save_state();
  rig.client.ingest(Message{bad});
  EXPECT_FALSE(rig.client.joined());
  // And the wire layer refuses to even decode one.
  EXPECT_FALSE(decode_message(encode_message(Message{bad})).has_value());
}

TEST(SpectateTest, ChurnRejoinAfterLeaveConverges) {
  // Leave/rejoin churn: a second observer lifecycle on a fresh host port
  // (one host instance per observer, as the drivers do) must converge
  // mid-session just like the first.
  Rig rig;
  Time now = 0;
  for (int i = 0; i < 50; ++i) rig.play_one_frame();
  rig.exchange(now);
  ASSERT_TRUE(rig.client.joined());  // first observer lifecycle ends here

  auto replica2 = games::make_machine("torture");
  SpectatorHost host2(rig.session->content_id(), SyncConfig{});
  SpectatorClient client2(*replica2, SyncConfig{});
  for (int i = 0; i < 25; ++i) {
    const auto input = rig.play_one_frame();
    host2.on_frame(rig.frame - 1, input);
  }
  for (int round = 0; round < 40 && client2.applied_frame() < rig.frame - 1;
       ++round) {
    now += milliseconds(60);
    if (auto m = client2.make_message(now)) host2.ingest(*m);
    if (host2.wants_snapshot() && rig.session->frame() > 0) {
      host2.provide_snapshot(rig.session->frame() - 1, rig.session->save_state());
    }
    if (auto m = host2.make_message(now)) client2.ingest(*m);
    client2.step_available();
  }
  ASSERT_TRUE(client2.joined());
  EXPECT_GE(client2.applied_frame(), 0);
  EXPECT_EQ(replica2->state_hash(), rig.session->state_hash());
}

TEST(SpectateTest, RandomizedLossyChannelProperty) {
  for (std::uint64_t seed : {3u, 17u, 99u}) {
    Rig rig;
    Rng net(seed);
    Time now = 0;
    for (int i = 0; i < 30; ++i) rig.play_one_frame();
    for (int round = 0; round < 400 && rig.client.applied_frame() < rig.frame - 1; ++round) {
      if (round % 3 == 0) rig.play_one_frame();
      now += milliseconds(20);
      rig.exchange(now, net.bernoulli(0.3), net.bernoulli(0.3));
    }
    ASSERT_EQ(rig.client.applied_frame(), rig.frame - 1) << "seed " << seed;
    ASSERT_EQ(rig.replica->state_hash(), rig.session->state_hash()) << "seed " << seed;
  }
}

// ---- SpectatorBroadcastHub -------------------------------------------------

/// N unmodified SpectatorClients against ONE hub — the fan-out replacement
/// for one-host-per-observer. Clients must not be able to tell.
struct HubRig {
  std::unique_ptr<emu::ArcadeMachine> session = games::make_machine("torture");
  SpectatorBroadcastHub hub{session->content_id(), SyncConfig{}};
  struct Obs {
    std::unique_ptr<emu::ArcadeMachine> replica;
    std::unique_ptr<SpectatorClient> client;
    SpectatorBroadcastHub::ObserverId id = 0;
  };
  std::vector<Obs> obs;
  Rng rng{77};
  FrameNo frame = 0;
  std::vector<std::uint8_t> scratch;

  SpectatorBroadcastHub::ObserverId add_observer() {
    Obs o;
    o.replica = games::make_machine("torture");
    o.client = std::make_unique<SpectatorClient>(*o.replica, SyncConfig{});
    o.id = hub.add_observer();
    const auto id = o.id;
    obs.push_back(std::move(o));
    return id;
  }

  InputWord play_one_frame() {
    const auto input = static_cast<InputWord>(rng.next_u64() & 0xFFFF);
    session->step_frame(input);
    hub.on_frame(frame, input);
    ++frame;
    return input;
  }

  void serve_snapshot_if_needed() {
    if (hub.wants_snapshot() && session->frame() > 0) {
      session->save_state_into(scratch);
      hub.provide_snapshot(session->frame() - 1, scratch);
    }
  }

  /// One message in each direction per observer, with per-observer loss.
  void exchange(Time now, double loss = 0.0, Rng* net = nullptr) {
    for (auto& o : obs) {
      if (auto m = o.client->make_message(now)) {
        if (net == nullptr || !net->bernoulli(loss)) hub.ingest(o.id, *m);
      }
    }
    serve_snapshot_if_needed();
    for (auto& o : obs) {
      if (auto buf = hub.make_message(o.id, now)) {
        if (net == nullptr || !net->bernoulli(loss)) {
          if (auto msg = decode_message(*buf)) o.client->ingest(*msg);
        }
      }
      o.client->step_available();
    }
  }

  [[nodiscard]] bool all_at_head() const {
    for (const auto& o : obs) {
      if (o.client->applied_frame() != frame - 1) return false;
    }
    return true;
  }
};

TEST(SpectateHubTest, StaggeredObserversAllConvergeEncodeOnce) {
  HubRig rig;
  Time now = 0;
  rig.add_observer();
  for (int i = 0; i < 40; ++i) rig.play_one_frame();
  rig.exchange(now);
  rig.add_observer();  // joins 40 frames late
  rig.add_observer();
  for (int i = 0; i < 60; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now);
  }
  now += milliseconds(20);
  rig.exchange(now);  // deliver the final round of acks
  EXPECT_EQ(rig.hub.observer_count(), 3u);
  EXPECT_EQ(rig.hub.joined_count(), 3u);
  ASSERT_TRUE(rig.all_at_head());
  EXPECT_TRUE(rig.hub.all_caught_up());
  for (const auto& o : rig.obs) {
    EXPECT_EQ(o.replica->state_hash(), rig.session->state_hash());
    EXPECT_TRUE(rig.hub.observer_joined(o.id));
    EXPECT_EQ(rig.hub.acked_frame(o.id), rig.frame - 1);
  }
  // The scaling property: every feed flush served 3 observers at (mostly)
  // identical cursors from ONE encode. Strictly fewer encodes than sends
  // proves the shared-buffer path is actually taken.
  const SpectatorHubStats& s = rig.hub.stats();
  EXPECT_GT(s.feed_messages_sent, 0u);
  EXPECT_LT(s.feed_encodes, s.feed_messages_sent);
  EXPECT_LT(s.bytes_encoded, s.bytes_sent);
  EXPECT_EQ(s.snapshot_encodes, 1u);  // one snapshot, shared by all three
}

TEST(SpectateHubTest, ObserverChurnJoinLeaveRejoin) {
  HubRig rig;
  Time now = 0;
  rig.add_observer();
  rig.add_observer();
  for (int i = 0; i < 30; ++i) rig.play_one_frame();
  for (int i = 0; i < 10; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now);
  }
  ASSERT_TRUE(rig.all_at_head());

  // Observer 0 walks away without a goodbye (the driver notices and
  // removes it); the survivors keep converging, the hub stops serving it.
  rig.hub.remove_observer(rig.obs[0].id);
  const auto removed = rig.obs[0].id;
  rig.obs.erase(rig.obs.begin());
  EXPECT_EQ(rig.hub.observer_count(), 1u);
  EXPECT_EQ(rig.hub.make_message(removed, now), nullptr);

  rig.add_observer();  // rejoin as a brand-new id mid-session
  for (int i = 0; i < 30; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now);
  }
  ASSERT_TRUE(rig.all_at_head());
  for (const auto& o : rig.obs) {
    EXPECT_EQ(o.replica->state_hash(), rig.session->state_hash());
  }
  EXPECT_EQ(rig.hub.stats().observers_removed, 1u);
}

TEST(SpectateHubTest, HandshakeRacingJoinDeferredUntilFrameZero) {
  // The realtime handshake race through the hub: a join before frame 0
  // must pend (no frame -1 snapshot), then be answered after frame 0.
  HubRig rig;
  rig.add_observer();
  rig.exchange(0);
  EXPECT_TRUE(rig.hub.wants_snapshot());
  EXPECT_EQ(rig.hub.joined_count(), 0u);
  EXPECT_FALSE(rig.obs[0].client->joined());

  Time now = 0;
  for (int i = 0; i < 5; ++i) {
    rig.play_one_frame();
    now += milliseconds(60);
    rig.exchange(now);
  }
  ASSERT_TRUE(rig.obs[0].client->joined());
  EXPECT_EQ(rig.obs[0].replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateHubTest, LateJoinerAfterDeepBacklogGetsFreshSnapshot) {
  // Run far past the backlog cap with one live observer, then join a new
  // one: the shared snapshot has been retired with the trimmed ring, so
  // the hub must request a FRESH snapshot rather than serve a stale one
  // whose continuation frames are gone.
  HubRig rig;
  Time now = 0;
  rig.add_observer();
  for (int i = 0; i < 5; ++i) rig.play_one_frame();
  rig.exchange(now);
  ASSERT_TRUE(rig.obs[0].client->joined());
  for (int i = 0; i < 700; ++i) {  // > max_backlog() with prompt acks
    rig.play_one_frame();
    if (i % 3 == 0) {
      now += milliseconds(20);
      rig.exchange(now);
    }
  }
  const auto snapshots_before = rig.hub.stats().snapshot_encodes;
  rig.add_observer();
  for (int i = 0; i < 40; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now);
  }
  EXPECT_GT(rig.hub.stats().snapshot_encodes, snapshots_before);
  ASSERT_TRUE(rig.all_at_head());
  for (const auto& o : rig.obs) {
    EXPECT_EQ(o.replica->state_hash(), rig.session->state_hash());
  }
}

TEST(SpectateHubTest, WrongGameJoinIgnored) {
  HubRig rig;
  const auto id = rig.add_observer();
  rig.hub.ingest(id, Message{JoinRequestMsg{rig.session->content_id() + 1}});
  EXPECT_FALSE(rig.hub.wants_snapshot());
}

// ---- idle-reaping regressions ----------------------------------------------
// The pinned-slowest-reader bug: an observer that vanished without a
// goodbye kept its stale ack cursor in the trim watermark, growing the
// ring without bound and holding all_caught_up() false forever. The fix
// is two-sided — clients keepalive-ack on a 500 ms clock even with no
// progress, and the hub reaps observers silent past a timeout.

TEST(SpectateTest, ClientKeepalivesWhileIdle) {
  // A fully caught-up client with nothing new to ack must still emit an
  // ack every kKeepaliveInterval — that is what makes hub idle-reaping
  // safe against false positives.
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.play_one_frame();
  Time now = 0;
  rig.exchange(now);
  ASSERT_TRUE(rig.client.joined());
  ASSERT_EQ(rig.client.applied_frame(), rig.frame - 1);
  // Drain any owed ack, then go idle: no feed traffic at all.
  while (rig.client.make_message(now).has_value()) {}
  int keepalives = 0;
  for (int i = 1; i <= 20; ++i) {  // 2 s of idleness, polled every 100 ms
    now += milliseconds(100);
    if (rig.client.make_message(now).has_value()) ++keepalives;
  }
  EXPECT_EQ(keepalives, 4) << "expected one keepalive per 500 ms of idle time";
}

TEST(SpectateHubTest, IdleReaperUnpinsSlowestReaderTrim) {
  HubRig rig;
  Time now = 0;
  rig.add_observer();
  rig.add_observer();
  for (int i = 0; i < 10; ++i) rig.play_one_frame();
  for (int i = 0; i < 6; ++i) {
    now += milliseconds(20);
    rig.exchange(now);
  }
  ASSERT_TRUE(rig.all_at_head());

  // Observer 0 vanishes: its datagrams stop cold, but the driver never
  // learns (no goodbye). Keep playing; only observer 1 stays live. The
  // dead cursor pins the ring past the 512-frame backlog cap, and the
  // drivers' drain predicate (all_caught_up) can never turn true — the
  // original unbounded-growth bug.
  const auto gone = rig.obs[0].id;
  const auto live = rig.obs[1].id;
  for (int i = 0; i < 600; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    if (auto m = rig.obs[1].client->make_message(now)) rig.hub.ingest(live, *m, now);
    if (auto buf = rig.hub.make_message(live, now)) {
      if (auto msg = decode_message(*buf)) rig.obs[1].client->ingest(*msg);
    }
    rig.obs[1].client->step_available();
  }
  EXPECT_GT(rig.hub.backlog_size(), 550u) << "pinned cursor must defeat the cap";
  EXPECT_FALSE(rig.hub.all_caught_up());

  // The reaper fires (observer 0 was last heard ~12 s ago); the next ack
  // from the live observer re-trims, bounding the ring by the backlog cap
  // again and unsticking the drain predicate.
  const auto removed = rig.hub.remove_idle(now, seconds(2));
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], gone);
  EXPECT_FALSE(rig.hub.observer_active(gone));
  EXPECT_EQ(rig.hub.stats().observers_idle_removed, 1u);
  now += milliseconds(20);
  if (auto m = rig.obs[1].client->make_message(now)) rig.hub.ingest(live, *m, now);
  EXPECT_LE(rig.hub.backlog_size(), 512u);
  EXPECT_TRUE(rig.hub.all_caught_up());

  // And the reaper never touches the observer that kept acking.
  EXPECT_TRUE(rig.hub.observer_active(live));
  EXPECT_EQ(rig.obs[1].replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateHubTest, LiveObserverSurvivesReaperViaKeepalives) {
  // No frames at all for several seconds (a stalled session): a healthy
  // client produces pure keepalive acks, and those alone must keep it off
  // the reaper's list.
  HubRig rig;
  Time now = 0;
  rig.add_observer();
  for (int i = 0; i < 5; ++i) rig.play_one_frame();
  for (int i = 0; i < 4; ++i) {
    now += milliseconds(20);
    rig.exchange(now);
  }
  ASSERT_TRUE(rig.all_at_head());
  const auto id = rig.obs[0].id;
  for (int i = 0; i < 50; ++i) {  // 5 s of stall, no frames, no feed
    now += milliseconds(100);
    if (auto m = rig.obs[0].client->make_message(now)) rig.hub.ingest(id, *m, now);
    EXPECT_TRUE(rig.hub.remove_idle(now, seconds(2)).empty())
        << "keepalive-acking observer reaped at t=" << i;
  }
  EXPECT_TRUE(rig.hub.observer_active(id));
}

TEST(SpectateHubTest, WrongfulRemovalSelfHealsByReregistration) {
  // The documented false-positive story: if a live observer is reaped
  // anyway (timeout shorter than its network outage), its next datagram
  // gets a fresh id from the driver and the snapshot/feed path re-seeds
  // it to the head — no permanent eviction.
  HubRig rig;
  Time now = 0;
  rig.add_observer();
  for (int i = 0; i < 20; ++i) rig.play_one_frame();
  for (int i = 0; i < 4; ++i) {
    now += milliseconds(20);
    rig.exchange(now);
  }
  ASSERT_TRUE(rig.all_at_head());

  // Outage longer than the timeout: the hub reaps the observer.
  now += seconds(5);
  ASSERT_EQ(rig.hub.remove_idle(now, seconds(2)).size(), 1u);
  ASSERT_FALSE(rig.hub.observer_active(rig.obs[0].id));

  // The client comes back; the driver re-registers the endpoint exactly
  // as the production receive loops do (observer_active gate -> new id).
  rig.obs[0].id = rig.hub.add_observer(now);
  for (int i = 0; i < 30; ++i) {
    rig.play_one_frame();
    now += milliseconds(20);
    rig.exchange(now);
  }
  ASSERT_TRUE(rig.all_at_head());
  EXPECT_EQ(rig.obs[0].replica->state_hash(), rig.session->state_hash());
}

TEST(SpectateHubTest, RandomizedLossyChannelProperty) {
  for (std::uint64_t seed : {5u, 23u, 111u}) {
    HubRig rig;
    Rng net(seed);
    Time now = 0;
    for (int i = 0; i < 4; ++i) rig.add_observer();
    for (int i = 0; i < 30; ++i) rig.play_one_frame();
    for (int round = 0; round < 600 && !rig.all_at_head(); ++round) {
      if (round % 3 == 0) rig.play_one_frame();
      now += milliseconds(20);
      rig.exchange(now, 0.3, &net);
    }
    ASSERT_TRUE(rig.all_at_head()) << "seed " << seed;
    for (const auto& o : rig.obs) {
      ASSERT_EQ(o.replica->state_hash(), rig.session->state_hash()) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rtct::core
