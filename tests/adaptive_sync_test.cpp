// Loss x duplication x reorder sweep of SyncPeer pairs over NetemModel.
//
// The sync_peer unit tests drive single branches; this suite runs whole
// 120-frame sessions through the same link model the testbed uses (§4's
// Netem box) across a grid of impairments, in BOTH transport policies:
// the paper's every-flush go-back-N and the adaptive RTO + redundancy
// mode. For every cell it asserts the three things that must survive any
// packet mangling:
//   (a) no desync — both replicas deliver identical merged inputs, equal
//       to the submitted scripts shifted by the local lag;
//   (b) bounded stall — the pointer never stops progressing for longer
//       than the retransmission machinery can explain;
//   (c) sane stats — counters consistent with what the link reports.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/common/random.h"
#include "src/core/sync_peer.h"
#include "src/core/wire.h"
#include "src/net/netem.h"

namespace rtct::core {
namespace {

using SweepTuple = std::tuple<double, double, double, bool>;

class AdaptiveSyncSweepTest : public ::testing::TestWithParam<SweepTuple> {};

std::string sweep_name(const ::testing::TestParamInfo<SweepTuple>& info) {
  const double loss = std::get<0>(info.param);
  const double dup = std::get<1>(info.param);
  const double reorder = std::get<2>(info.param);
  const bool adaptive = std::get<3>(info.param);
  return "loss" + std::to_string(static_cast<int>(loss * 100)) + "_dup" +
         std::to_string(static_cast<int>(dup * 100)) + "_reorder" +
         std::to_string(static_cast<int>(reorder * 100)) +
         (adaptive ? "_adaptive" : "_paper");
}

INSTANTIATE_TEST_SUITE_P(
    LossDupReorder, AdaptiveSyncSweepTest,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.3),   // loss
                       ::testing::Values(0.0, 0.2),        // duplication
                       ::testing::Values(0.0, 0.25),       // reorder
                       ::testing::Bool()),                 // adaptive transport
    sweep_name);

TEST_P(AdaptiveSyncSweepTest, LockstepSurvivesAndProgresses) {
  const auto [loss, dup, reorder, adaptive] = GetParam();

  SyncConfig cfg;
  if (adaptive) {
    cfg.adaptive_resend = true;
    cfg.redundant_inputs = 2;
  }

  net::NetemConfig link;
  link.delay = milliseconds(30);  // RTT 60 ms
  link.loss = loss;
  link.duplicate = dup;
  link.reorder = reorder;
  link.reorder_extra = milliseconds(25);

  const std::uint64_t seed =
      1 + static_cast<std::uint64_t>(loss * 100) * 7 +
      static_cast<std::uint64_t>(dup * 100) * 131 +
      static_cast<std::uint64_t>(reorder * 100) * 1009 + (adaptive ? 1u : 0u);
  Rng rng(seed);
  net::NetemModel links[2] = {net::NetemModel(link, rng.fork()),
                              net::NetemModel(link, rng.fork())};

  SyncPeer peers[2] = {SyncPeer(0, cfg), SyncPeer(1, cfg)};

  constexpr FrameNo kFrames = 120;
  std::vector<std::uint8_t> script[2];
  for (int s = 0; s < 2; ++s) {
    for (FrameNo f = 0; f < kFrames; ++f) {
      script[s].push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
  }

  struct Pkt {
    Time at;
    SyncMsg msg;
  };
  std::vector<Pkt> inflight[2];  // indexed by RECEIVING site

  std::vector<InputWord> delivered[2];
  FrameNo submitted[2] = {0, 0};
  Time next_flush[2] = {0, 0};
  Time last_progress[2] = {0, 0};
  Dur max_stall = 0;
  Time now = 0;
  const Time deadline = seconds(120);

  while ((delivered[0].size() < kFrames || delivered[1].size() < kFrames) &&
         now < deadline) {
    now += milliseconds(1);
    for (int s = 0; s < 2; ++s) {
      auto& peer = peers[s];

      for (auto it = inflight[s].begin(); it != inflight[s].end();) {
        if (it->at <= now) {
          links[1 - s].on_arrival();
          peer.ingest(it->msg, now);
          it = inflight[s].erase(it);
        } else {
          ++it;
        }
      }

      // Frame loop emulation: submit when the pointer caught up, pop when
      // ready (the real drivers pace this; the protocol must not care).
      if (submitted[s] < kFrames && peer.pointer() == submitted[s]) {
        peer.submit_local(submitted[s],
                          s == 0 ? make_input(script[0][submitted[s]], 0)
                                 : make_input(0, script[1][submitted[s]]));
        ++submitted[s];
      }
      if (delivered[s].size() < kFrames && peer.ready() && peer.pointer() < submitted[s]) {
        delivered[s].push_back(peer.pop());
        last_progress[s] = now;
      } else if (delivered[s].size() < kFrames) {
        max_stall = std::max(max_stall, now - last_progress[s]);
      }

      if (now >= next_flush[s]) {
        next_flush[s] = now + cfg.send_flush_period;
        if (auto m = peer.make_message(now)) {
          const auto size = encode_message(Message{*m}).size();
          const auto verdict = links[s].offer(now, size);
          if (verdict.delivered) {
            inflight[1 - s].push_back({verdict.arrival, *m});
            if (verdict.duplicate) inflight[1 - s].push_back({verdict.dup_arrival, *m});
          }
        }
      }
    }
  }

  // (a) No desync: both sessions finished with the identical merged input
  // stream, equal to the scripts shifted by the local lag.
  ASSERT_EQ(delivered[0].size(), static_cast<std::size_t>(kFrames))
      << "site 0 deadlocked (seed " << seed << ")";
  ASSERT_EQ(delivered[1].size(), static_cast<std::size_t>(kFrames))
      << "site 1 deadlocked (seed " << seed << ")";
  for (FrameNo f = 0; f < kFrames; ++f) {
    ASSERT_EQ(delivered[0][f], delivered[1][f]) << "divergence at frame " << f;
    const InputWord expect =
        f < cfg.buf_frames
            ? 0
            : make_input(script[0][f - cfg.buf_frames], script[1][f - cfg.buf_frames]);
    ASSERT_EQ(delivered[0][f], expect) << "wrong input at frame " << f;
  }
  for (int s = 0; s < 2; ++s) {
    EXPECT_FALSE(peers[s].desync_detected());
  }

  // (b) Bounded stall: even at 30% loss a gap is repaired within a couple
  // of (backed-off) retransmission timeouts; max_rto caps each wait at 2 s.
  EXPECT_LT(max_stall, seconds(10)) << "pointer stalled too long";

  // (c) Stats consistent with the link's account of the session.
  for (int s = 0; s < 2; ++s) {
    const auto& st = peers[s].stats();
    const auto& tx = links[s].stats();          // this site's outgoing link
    const auto& peer_st = peers[1 - s].stats();
    EXPECT_EQ(st.stale_messages, 0u);
    EXPECT_EQ(st.messages_made, tx.packets_offered);
    // Copies still in flight when both sites finished were never ingested.
    EXPECT_EQ(peer_st.messages_ingested + inflight[1 - s].size(), tx.packets_delivered);
    EXPECT_GE(st.inputs_sent, static_cast<std::uint64_t>(kFrames));
    EXPECT_GT(st.rtt_samples, 0u);
    EXPECT_EQ(st.rtt_samples, peers[s].rtt_estimator().sample_count());
    EXPECT_TRUE(peers[s].has_rtt_sample());
    // RTT through a 30 ms-each-way link can never read below 60 ms.
    EXPECT_GE(peers[s].rtt(), milliseconds(60));
    if (!adaptive) {
      EXPECT_EQ(st.rto_fires, 0u);
      EXPECT_EQ(st.redundant_inputs_sent, 0u);
    } else if (loss == 0.0 && reorder == 0.0) {
      // Clean in-order link: acks return in ~RTT + flush < initial RTO.
      EXPECT_EQ(st.rto_fires, 0u);
    }
    if (loss == 0.0 && dup == 0.0) {
      EXPECT_EQ(tx.dropped_loss, 0u);
      EXPECT_EQ(tx.duplicated, 0u);
    }
  }
}

}  // namespace
}  // namespace rtct::core
