// Unit tests for the two-pass AC16 assembler: syntax, directives,
// expressions, labels, and error reporting.
#include <gtest/gtest.h>

#include "src/emu/assembler.h"
#include "src/emu/isa.h"

namespace rtct::emu {
namespace {

Instr instr_at(const Rom& rom, std::size_t index) {
  return decode(rom.image.data() + index * kInstrBytes);
}

TEST(AssemblerTest, EmptyAndCommentOnlySourceIsValidButEmpty) {
  auto r = assemble("; nothing here\n# or here\n\n   \n");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.rom.image.empty());
}

TEST(AssemblerTest, EncodesSimpleProgram) {
  auto r = assemble("    LDI r3, 0x1234\n    HALT\n");
  ASSERT_TRUE(r.ok()) << r.error_text();
  ASSERT_EQ(r.rom.image.size(), 8u);
  const Instr i0 = instr_at(r.rom, 0);
  EXPECT_EQ(i0.op, Op::kLdi);
  EXPECT_EQ(i0.a, 3);
  EXPECT_EQ(i0.imm(), 0x1234);
  EXPECT_EQ(instr_at(r.rom, 1).op, Op::kHalt);
}

TEST(AssemblerTest, MnemonicsAndRegistersAreCaseInsensitive) {
  auto r = assemble("    ldi R5, 10\n    hAlT\n");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(instr_at(r.rom, 0).op, Op::kLdi);
  EXPECT_EQ(instr_at(r.rom, 0).a, 5);
}

TEST(AssemblerTest, ForwardLabelResolves) {
  auto r = assemble(R"(
    JMP target
    NOP
target:
    HALT
)");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(instr_at(r.rom, 0).imm(), 8);  // two instructions in = byte 8
}

TEST(AssemblerTest, LabelOnSameLineAsInstruction) {
  auto r = assemble("start: LDI r0, 1\n    JMP start\n");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(instr_at(r.rom, 1).imm(), 0);
}

TEST(AssemblerTest, EquAndExpressions) {
  auto r = assemble(R"(
.equ BASE, 0x1000
.equ SIZE, 16
    LDI r0, BASE + SIZE * 2 - 1
    LDI r1, (BASE + SIZE) * 2
    LDI r2, BASE / 16 % 7
    LDI r3, -4
)");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(instr_at(r.rom, 0).imm(), 0x1000 + 31);
  EXPECT_EQ(instr_at(r.rom, 1).imm(), (0x1000 + 16) * 2);
  EXPECT_EQ(instr_at(r.rom, 2).imm(), (0x1000 / 16) % 7);
  EXPECT_EQ(instr_at(r.rom, 3).imm(), 0xFFFC);
}

TEST(AssemblerTest, NumberBases) {
  auto r = assemble("    LDI r0, 0x10\n    LDI r1, 0b101\n    LDI r2, 42\n    LDI r3, 'A'\n");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(instr_at(r.rom, 0).imm(), 16);
  EXPECT_EQ(instr_at(r.rom, 1).imm(), 5);
  EXPECT_EQ(instr_at(r.rom, 2).imm(), 42);
  EXPECT_EQ(instr_at(r.rom, 3).imm(), 'A');
}

TEST(AssemblerTest, ByteWordStringSpaceDirectives) {
  auto r = assemble(R"(
.byte 1, 2, 0xFF
.word 0x1234, 7
.byte "AB", 0
.space 3
.byte 9
)");
  ASSERT_TRUE(r.ok()) << r.error_text();
  const auto& img = r.rom.image;
  ASSERT_EQ(img.size(), 3 + 4 + 3 + 3 + 1u);
  EXPECT_EQ(img[0], 1);
  EXPECT_EQ(img[2], 0xFF);
  EXPECT_EQ(img[3], 0x34);  // little-endian word
  EXPECT_EQ(img[4], 0x12);
  EXPECT_EQ(img[7], 'A');
  EXPECT_EQ(img[9], 0);
  EXPECT_EQ(img[10], 0);  // .space zeros
  EXPECT_EQ(img[13], 9);
}

TEST(AssemblerTest, OrgMovesOrigin) {
  auto r = assemble(".org 0x100\nentry_here:\n    HALT\n.entry entry_here\n");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.rom.entry, 0x100);
  ASSERT_GE(r.rom.image.size(), 0x104u);
  EXPECT_EQ(r.rom.image[0x100], static_cast<std::uint8_t>(Op::kHalt));
}

TEST(AssemblerTest, EntryDefaultsToZero) {
  auto r = assemble("    NOP\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.rom.entry, 0);
}

TEST(AssemblerTest, MemoryOperandsWithAndWithoutOffset) {
  auto r = assemble("    LDB r1, r2\n    LDW r3, r4, 10\n    STW r5, r6, 255\n");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(instr_at(r.rom, 0).c, 0);
  EXPECT_EQ(instr_at(r.rom, 1).c, 10);
  EXPECT_EQ(instr_at(r.rom, 2).c, 255);
}

TEST(AssemblerTest, InOutOperands) {
  auto r = assemble("    IN r3, 2\n    OUT 4, r7\n");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(instr_at(r.rom, 0).a, 3);
  EXPECT_EQ(instr_at(r.rom, 0).b, 2);
  EXPECT_EQ(instr_at(r.rom, 1).a, 4);
  EXPECT_EQ(instr_at(r.rom, 1).b, 7);
}

// ---- errors ------------------------------------------------------------------

TEST(AssemblerErrors, UnknownMnemonicReportsLine) {
  auto r = assemble("    NOP\n    FROB r1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors[0].line, 2);
  EXPECT_NE(r.errors[0].message.find("FROB"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedSymbol) {
  auto r = assemble("    JMP nowhere\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("nowhere"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
  auto r = assemble("dup:\n    NOP\ndup:\n    NOP\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("duplicate"), std::string::npos);
}

TEST(AssemblerErrors, ImmediateOutOfRange) {
  auto r = assemble("    LDI r0, 0x10000\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("range"), std::string::npos);
}

TEST(AssemblerErrors, MemoryOffsetOutOfRange) {
  auto r = assemble("    LDB r0, r1, 256\n");
  ASSERT_FALSE(r.ok());
}

TEST(AssemblerErrors, MissingOperand) {
  auto r = assemble("    MOV r1\n");
  ASSERT_FALSE(r.ok());
}

TEST(AssemblerErrors, TrailingGarbage) {
  auto r = assemble("    NOP r1\n");
  ASSERT_FALSE(r.ok());
}

TEST(AssemblerErrors, BadRegisterName) {
  auto r = assemble("    MOV r1, r16\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("register"), std::string::npos);
}

TEST(AssemblerErrors, DivisionByZeroInExpression) {
  auto r = assemble("    LDI r0, 5 / 0\n");
  ASSERT_FALSE(r.ok());
}

TEST(AssemblerErrors, UnterminatedString) {
  auto r = assemble(".byte \"oops\n");
  ASSERT_FALSE(r.ok());
}

TEST(AssemblerErrors, MultipleErrorsAllReported) {
  auto r = assemble("    FROB\n    NOP\n    BLORT\n");
  ASSERT_EQ(r.errors.size(), 2u);
  EXPECT_EQ(r.errors[0].line, 1);
  EXPECT_EQ(r.errors[1].line, 3);
  EXPECT_FALSE(r.error_text().empty());
}

TEST(AssemblerErrors, RomOverflowDetected) {
  auto r = assemble(".org 0x7FFE\n.word 1, 2, 3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("overflow"), std::string::npos);
}

TEST(AssemblerErrors, UnknownDirective) {
  auto r = assemble(".bogus 1\n");
  ASSERT_FALSE(r.ok());
}

}  // namespace
}  // namespace rtct::emu
