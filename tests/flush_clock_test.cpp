// FlushClock catch-up boundary regressions.
//
// The rule: catch-up scheduling (`next += period`) preserves the anchored
// cadence against late checks; only a stall of *more than* one full period
// re-anchors. The boundary case — a check arriving exactly one period late
// — must stay on the catch-up schedule: the clock owes exactly one
// immediate make-up fire and the original gridline, with no re-anchor and
// no burst. (An earlier `now >= next_` comparison re-anchored at exactly
// one period, silently losing the make-up fire.)
#include <gtest/gtest.h>

#include "src/core/flush_clock.h"

namespace rtct::core {
namespace {

TEST(FlushClockTest, AnchorsOnFirstCallThenHoldsCadence) {
  FlushClock c(milliseconds(20));
  EXPECT_TRUE(c.due(0));  // first call fires and anchors
  EXPECT_FALSE(c.due(milliseconds(10)));
  EXPECT_FALSE(c.due(milliseconds(19)));
  EXPECT_TRUE(c.due(milliseconds(20)));
  EXPECT_EQ(c.next(), milliseconds(40));
  EXPECT_EQ(c.reanchors(), 0u);
}

TEST(FlushClockTest, LateCheckCatchesUpToTheGridline) {
  FlushClock c(milliseconds(20));
  ASSERT_TRUE(c.due(0));
  // Observed 1 ms late: the fire happens, and the next deadline stays on
  // the 40 ms gridline (not 41 + 20) — this is what prevents drift.
  EXPECT_TRUE(c.due(milliseconds(21)));
  EXPECT_EQ(c.next(), milliseconds(40));
  EXPECT_EQ(c.reanchors(), 0u);
}

TEST(FlushClockTest, ExactlyOnePeriodStallKeepsCatchUpCadence) {
  FlushClock c(milliseconds(20));
  ASSERT_TRUE(c.due(0));  // next = 20
  // Checked exactly one period late (now == 40 == next + period). Catch-up
  // must be kept: this fire is on the 20 ms deadline, the next deadline is
  // 40 — i.e. one immediate make-up fire is owed.
  ASSERT_TRUE(c.due(milliseconds(40)));
  EXPECT_EQ(c.reanchors(), 0u) << "exactly-one-period stall must not re-anchor";
  EXPECT_EQ(c.next(), milliseconds(40));
  // The make-up fire arrives at the very next check, restoring the
  // original cadence (20/40/60/...) with no lost firing.
  EXPECT_TRUE(c.due(milliseconds(41)));
  EXPECT_EQ(c.next(), milliseconds(60));
  EXPECT_EQ(c.reanchors(), 0u);
  EXPECT_EQ(c.fires(), 3u);  // anchor + stalled fire + make-up fire
  EXPECT_FALSE(c.due(milliseconds(59)));
  EXPECT_TRUE(c.due(milliseconds(60)));
}

TEST(FlushClockTest, StallBeyondOnePeriodReanchorsWithoutBurst) {
  FlushClock c(milliseconds(20));
  ASSERT_TRUE(c.due(0));                  // next = 20
  ASSERT_TRUE(c.due(milliseconds(100)));  // 4 periods late
  EXPECT_EQ(c.reanchors(), 1u);
  EXPECT_EQ(c.next(), milliseconds(120));
  // No burst: the four missed firings are forgiven, not replayed.
  EXPECT_FALSE(c.due(milliseconds(101)));
  EXPECT_FALSE(c.due(milliseconds(119)));
  EXPECT_TRUE(c.due(milliseconds(120)));
  EXPECT_EQ(c.fires(), 3u);
}

TEST(FlushClockTest, RestoreInducedClockJumpBehavesLikeAStall) {
  // A state-restore / debugger-shaped forward jump in the driver's clock
  // must cost exactly one fire and a clean re-anchor at the new timebase —
  // never a catch-up burst proportional to the jump.
  FlushClock c(milliseconds(20));
  ASSERT_TRUE(c.due(0));
  for (int i = 1; i <= 5; ++i) ASSERT_TRUE(c.due(i * milliseconds(20)));
  const auto fires_before = c.fires();
  ASSERT_TRUE(c.due(seconds(10)));
  EXPECT_EQ(c.fires(), fires_before + 1);
  EXPECT_EQ(c.reanchors(), 1u);
  EXPECT_EQ(c.next(), seconds(10) + milliseconds(20));
  EXPECT_FALSE(c.due(seconds(10) + milliseconds(19)));
  EXPECT_TRUE(c.due(seconds(10) + milliseconds(20)));
}

TEST(FlushClockTest, SteadyLateObserverStillDeliversConfiguredRate) {
  // The drift catch-up exists to prevent: a caller that polls every 1 ms
  // (so every fire is observed slightly late) must still average exactly
  // one fire per period.
  FlushClock c(milliseconds(20));
  std::uint64_t fired = 0;
  for (Time now = 0; now <= seconds(2); now += milliseconds(1)) {
    if (c.due(now)) ++fired;
  }
  EXPECT_EQ(fired, 101u);  // the anchoring fire + 100 periods in 2 s
}

}  // namespace
}  // namespace rtct::core
