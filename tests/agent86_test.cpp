// agent86 core: assembler encodings/diagnostics, CPU semantics (flags,
// stack, control flow, memory-mapped IO), machine behaviour (input latch,
// faults, renderable surface), and the bundled games' basic health.
#include <gtest/gtest.h>

#include "src/cores/agent86/assembler.h"
#include "src/cores/agent86/games.h"
#include "src/cores/agent86/isa.h"
#include "src/cores/agent86/machine.h"

namespace rtct::a86 {
namespace {

Program must_assemble(const char* src) {
  auto r = assemble(src, "test");
  EXPECT_TRUE(r.ok()) << r.error_text();
  return std::move(r.program);
}

/// Assembles and runs one frame with the given input word.
Agent86Machine run1(const char* src, InputWord input = 0) {
  Agent86Machine m(must_assemble(src));
  m.step_frame(input);
  return m;
}

// ---- assembler -------------------------------------------------------------

TEST(Agent86Assembler, EncodesBasicForms) {
  const Program p = must_assemble(R"(
    ORG 0x0200
    MOV AX, 0x1234
    MOV BX, AX
    MOV CX, [SI+4]
    MOVB [DI], DX
    ADD AX, 7
    CMP AX, BX
    HLT
  )");
  EXPECT_EQ(p.org, 0x0200);
  EXPECT_EQ(p.entry, 0x0200);
  const std::vector<std::uint8_t> want = {
      kMovRI, AX, 0x34, 0x12,
      kMovRR, (BX << 4) | AX,
      kLdW,   (CX << 4) | SI, 4,
      kStB,   (DI << 4) | DX, 0,
      kAddRI, AX, 7, 0,
      kCmpRR, (AX << 4) | BX,
      kHlt,
  };
  EXPECT_EQ(p.image, want);
}

TEST(Agent86Assembler, LabelsEquExpressionsAndData) {
  const Program p = must_assemble(R"(
    BASE EQU 0x0100        ; trailing-h and 0x forms below must agree
    ORG BASE
    start:
      JMP start
      DB 1, 'A', "hi", 255
      DW start, 0BEEFh, -1
      RESB 3
    ENTRY start
  )");
  EXPECT_EQ(p.entry, 0x0100);
  const std::vector<std::uint8_t> want = {
      kJmp, 0x00, 0x01,
      1, 'A', 'h', 'i', 255,
      0x00, 0x01, 0xEF, 0xBE, 0xFF, 0xFF,
      0, 0, 0,
  };
  EXPECT_EQ(p.image, want);
}

TEST(Agent86Assembler, JumpAliasesEncodeIdentically) {
  const Program a = must_assemble("t: JE t\nJNE t\nJB t\nJAE t");
  const Program b = must_assemble("t: JZ t\nJNZ t\nJC t\nJNC t");
  EXPECT_EQ(a.image, b.image);
}

TEST(Agent86Assembler, ReportsErrorsWithLines) {
  const auto r = assemble("MOV AX, 1\nBOGUS AX\nMOV AX, undef_sym\n", "bad");
  ASSERT_EQ(r.errors.size(), 2u);
  EXPECT_EQ(r.errors[0].line, 2);
  EXPECT_NE(r.errors[0].message.find("BOGUS"), std::string::npos);
  EXPECT_EQ(r.errors[1].line, 3);
}

TEST(Agent86Assembler, RejectsBadShapes) {
  EXPECT_FALSE(assemble("MOV [SI], [DI]").ok());
  EXPECT_FALSE(assemble("MOVB AX, BX").ok());
  EXPECT_FALSE(assemble("PUSH 5").ok());
  EXPECT_FALSE(assemble("HLT AX").ok());
  EXPECT_FALSE(assemble("MOV AX, [SI+300]").ok());  // disp > 255
  EXPECT_FALSE(assemble("AX EQU 3").ok());          // reserved
  EXPECT_FALSE(assemble("x EQU 1\nx EQU 2").ok());  // duplicate
  EXPECT_FALSE(assemble("ORG 0x200\nORG 0x100\nHLT").ok());  // backwards
}

// ---- CPU semantics ---------------------------------------------------------

TEST(Agent86Cpu, ArithmeticFlagsDriveConditionalJumps) {
  // Each check writes a marker byte; a wrong flag leaves the marker 0.
  const auto m = run1(R"(
    OUT_BASE EQU 0x0600
    MOV SI, OUT_BASE
    MOV AX, 0xFFFF
    ADD AX, 1            ; -> 0, ZF and CF set
    JNZ fail1
    JNC fail1
    MOV BX, 1
    MOVB [SI+0], BX
  fail1:
    MOV AX, 2
    SUB AX, 3            ; borrow: CF set, result 0xFFFF (SF set)
    JNC fail2
    JNS fail2
    MOV BX, 1
    MOVB [SI+1], BX
  fail2:
    MOV AX, 1
    ADD AX, 1            ; clears CF
    INC AX               ; INC must preserve CF=0
    JC fail3
    MOV AX, 0xFFFF
    ADD AX, 1            ; sets CF
    DEC AX               ; DEC must preserve CF=1
    JNC fail3
    MOV BX, 1
    MOVB [SI+2], BX
  fail3:
    MOV AX, 3
    MUL AX, 0x5555       ; 0xFFFF: high word zero -> CF clear
    JC fail4
    MUL AX, 2            ; 0x1FFFE -> CF set
    JNC fail4
    MOV BX, 1
    MOVB [SI+3], BX
  fail4:
    MOV AX, 0x8000
    SHL AX, 1            ; CF = old bit 15
    JNC fail5
    MOV AX, 1
    SHR AX, 1            ; CF = old bit 0, result 0 (ZF)
    JNC fail5
    JNZ fail5
    MOV BX, 1
    MOVB [SI+4], BX
  fail5:
    HLT
  )");
  for (std::uint16_t i = 0; i < 5; ++i) {
    EXPECT_EQ(m.peek(0x0600 + i), 1) << "flag check " << i << " failed";
  }
  EXPECT_EQ(m.fault(), Fault::kNone);
}

TEST(Agent86Cpu, StackCallRetAndLoop) {
  const auto m = run1(R"(
    MOV AX, 0x1111
    PUSH AX
    MOV AX, 0x2222
    PUSH AX
    POP BX               ; 0x2222
    POP CX               ; 0x1111
    MOV DX, 0
    MOV CX, 5
  again:
    ADD DX, 2
    LOOP again           ; 5 iterations -> DX = 10
    CALL sub
    HLT
  sub:
    MOV AX, 0x7777
    RET
  )");
  EXPECT_EQ(m.reg(DX), 10);
  EXPECT_EQ(m.reg(AX), 0x7777);
  EXPECT_EQ(m.reg(SP), kInitialSp);  // balanced pushes/pops
  EXPECT_EQ(m.fault(), Fault::kNone);
}

TEST(Agent86Cpu, WordAndByteMemoryAccess) {
  const auto m = run1(R"(
    MOV SI, 0x0700
    MOV AX, 0xABCD
    MOV [SI], AX         ; little-endian word store
    MOVB BX, [SI]        ; zero-extended byte load -> 0xCD
    MOVB CX, [SI+1]      ; -> 0xAB
    MOV DX, [SI]         ; word load
    HLT
  )");
  EXPECT_EQ(m.peek(0x0700), 0xCD);
  EXPECT_EQ(m.peek(0x0701), 0xAB);
  EXPECT_EQ(m.reg(BX), 0xCD);
  EXPECT_EQ(m.reg(CX), 0xAB);
  EXPECT_EQ(m.reg(DX), 0xABCD);
}

TEST(Agent86Cpu, OutPortsToneAndDebug) {
  const auto m = run1(R"(
    MOV AX, 440
    OUT 1, AX            ; tone
    MOV BX, 0xBEEF
    OUT 0, BX            ; debug log
    HLT
  )");
  EXPECT_EQ(m.tone(), 440);
  ASSERT_EQ(m.debug_log().size(), 1u);
  EXPECT_EQ(m.debug_log()[0], 0xBEEF);
}

TEST(Agent86Cpu, HltResumesAtNextInstructionNextFrame) {
  Agent86Machine m(must_assemble(R"(
    MOV AX, 1
    HLT
    MOV AX, 2
    HLT
    MOV AX, 3
    HLT
  )"));
  m.step_frame(0);
  EXPECT_EQ(m.reg(AX), 1);
  m.step_frame(0);
  EXPECT_EQ(m.reg(AX), 2);
  m.step_frame(0);
  EXPECT_EQ(m.reg(AX), 3);
}

TEST(Agent86Cpu, FaultsAreDeterministicAndSticky) {
  auto trap = run1("INT3");
  EXPECT_EQ(trap.fault(), Fault::kTrap);

  auto bad = run1("DB 0xFE");
  EXPECT_EQ(bad.fault(), Fault::kBadOpcode);

  auto runaway = run1("spin: JMP spin");
  EXPECT_EQ(runaway.fault(), Fault::kBudgetExceeded);

  // A faulted machine stops: state is frozen from the sync layer's view.
  const auto h = runaway.state_hash();
  const auto frame = runaway.frame();
  runaway.step_frame(0xFFFF);
  EXPECT_EQ(runaway.state_hash(), h);
  EXPECT_EQ(runaway.frame(), frame);
  EXPECT_TRUE(runaway.faulted());
}

TEST(Agent86Machine, InputBlockAndFrameCounterAreMemoryMapped) {
  Agent86Machine m(must_assemble(R"(
    MOV SI, 0F800h
    MOVB AX, [SI]        ; p0
    MOVB BX, [SI+1]      ; p1
    MOV CX, [SI+2]       ; frame lo
    HLT
    JMP 0x0100
  )"));
  m.step_frame(make_input(kBtnUp | kBtnA, kBtnLeft));
  EXPECT_EQ(m.reg(AX), kBtnUp | kBtnA);
  EXPECT_EQ(m.reg(BX), kBtnLeft);
  EXPECT_EQ(m.reg(CX), 0);  // counter of the frame being executed
  m.step_frame(0);
  EXPECT_EQ(m.reg(CX), 1);
}

TEST(Agent86Machine, RenderableExposesVideoPage) {
  Agent86Machine m(must_assemble(R"(
    MOV SI, 0B800h
    MOV AX, 7
    MOVB [SI+5], AX
    HLT
  )"));
  const emu::IDeterministicGame& game = m;
  const emu::IRenderableGame* r = game.renderable();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->fb_cols(), 64);
  EXPECT_EQ(r->fb_rows(), 32);
  m.step_frame(0);
  EXPECT_EQ(r->framebuffer()[5], 7);
  EXPECT_EQ(r->framebuffer().size(), kFbSize);
}

// ---- bundled games ---------------------------------------------------------

TEST(Agent86Games, CatalogueIsConsistent) {
  for (const auto name : game_names()) {
    const Program* p = program_by_name(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name, name);
    auto m = make_machine(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->content_id(), p->checksum());
    EXPECT_EQ(m->content_name(), "agent86:" + std::string(name));
  }
  EXPECT_EQ(program_by_name("nope"), nullptr);
  EXPECT_EQ(make_machine("nope"), nullptr);
}

TEST(Agent86Games, ContentIdsAreDistinct) {
  EXPECT_NE(skirmish_program().checksum(), pong_program().checksum());
  EXPECT_NE(skirmish_program().checksum(), havoc_program().checksum());
  EXPECT_NE(pong_program().checksum(), havoc_program().checksum());
}

TEST(Agent86Games, RunWithoutFaultingAndDrawSomething) {
  for (const auto name : game_names()) {
    auto m = make_machine(name);
    ASSERT_NE(m, nullptr);
    std::uint32_t rng = 0xC0FFEE;
    for (int f = 0; f < 600; ++f) {
      rng = rng * 1664525u + 1013904223u;
      m->step_frame(static_cast<InputWord>(rng >> 16));
      ASSERT_EQ(m->fault(), Fault::kNone)
          << name << " faulted at frame " << f << ": " << fault_name(m->fault());
    }
    bool lit = false;
    for (const auto px : m->renderable()->framebuffer()) lit = lit || px != 0;
    EXPECT_TRUE(lit) << name << " drew nothing in 600 frames";
    EXPECT_LT(m->last_frame_cycles(), MachineConfig{}.cycles_per_frame / 2)
        << name << " leaves too little cycle headroom";
  }
}

}  // namespace
}  // namespace rtct::a86
