// RelayServer / relay wire / relay client tests: lobby lifecycle
// (create/join/list/leave and every refusal), connection-id framing, data
// forwarding with unknown-sender and unknown-session policing, and idle
// eviction — all over real loopback sockets against an in-process relay.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/bytes.h"
#include "src/common/telemetry.h"
#include "src/net/udp_socket.h"
#include "src/relay/relay_client.h"
#include "src/relay/relay_server.h"
#include "src/relay/relay_wire.h"

namespace rtct::relay {
namespace {

// ---- wire round-trips -------------------------------------------------------

template <typename T>
T roundtrip(const T& in) {
  const auto bytes = encode_relay_message(RelayMessage{in});
  const auto out = decode_relay_message(bytes);
  EXPECT_TRUE(out.has_value());
  const T* typed = std::get_if<T>(&*out);
  EXPECT_NE(typed, nullptr);
  return typed != nullptr ? *typed : T{};
}

TEST(RelayWireTest, AllMessagesRoundTrip) {
  CreateMsg create;
  create.content_id = 0xDEADBEEFCAFEull;
  create.max_members = 4;
  const auto c = roundtrip(create);
  EXPECT_EQ(c.content_id, create.content_id);
  EXPECT_EQ(c.max_members, 4);

  JoinMsg join;
  join.conn = 77;
  EXPECT_EQ(roundtrip(join).conn, 77u);

  ListMsg list;
  list.max_entries = 9;
  EXPECT_EQ(roundtrip(list).max_entries, 9);

  LeaveMsg leave;
  leave.conn = 5;
  EXPECT_EQ(roundtrip(leave).conn, 5u);

  LobbyOkMsg ok;
  ok.conn = 123;
  ok.slot = 1;
  ok.data_port = 4242;
  const auto o = roundtrip(ok);
  EXPECT_EQ(o.conn, 123u);
  EXPECT_EQ(o.slot, 1);
  EXPECT_EQ(o.data_port, 4242);

  LobbyErrMsg err;
  err.code = LobbyError::kSessionFull;
  err.conn = 9;
  const auto e = roundtrip(err);
  EXPECT_EQ(e.code, LobbyError::kSessionFull);
  EXPECT_EQ(e.conn, 9u);

  ListReplyMsg reply;
  reply.sessions.push_back(SessionInfo{3, 42, 1, 2});
  reply.sessions.push_back(SessionInfo{8, 43, 2, 2});
  const auto r = roundtrip(reply);
  ASSERT_EQ(r.sessions.size(), 2u);
  EXPECT_EQ(r.sessions[1].conn, 8u);
  EXPECT_EQ(r.sessions[1].content_id, 43u);

  EvictNoticeMsg evict;
  evict.conn = 31;
  EXPECT_EQ(roundtrip(evict).conn, 31u);
}

TEST(RelayWireTest, DataFramePeekMatchesFullDecode) {
  const std::vector<std::uint8_t> payload{9, 8, 7, 6, 5};
  std::vector<std::uint8_t> frame;
  encode_data_frame_into(0xA1B2C3D4u, payload, frame);

  ASSERT_TRUE(is_data_frame(frame));
  EXPECT_EQ(data_frame_conn(frame), 0xA1B2C3D4u);
  const auto view = data_frame_payload(frame);
  EXPECT_EQ(std::vector<std::uint8_t>(view.begin(), view.end()), payload);

  const auto full = decode_relay_message(frame);
  ASSERT_TRUE(full.has_value());
  const auto* data = std::get_if<DataMsg>(&*full);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->conn, 0xA1B2C3D4u);
  EXPECT_EQ(data->payload, payload);
}

TEST(RelayWireTest, EmptyPayloadDataFrameIsValid) {
  // A zero-payload DATA frame (an empty core-protocol flush) is exactly
  // the 5-byte header; the hot-path peek and the full decoder must agree
  // that it is well-formed.
  std::vector<std::uint8_t> frame;
  encode_data_frame_into(0x1234u, std::span<const std::uint8_t>{}, frame);
  ASSERT_EQ(frame.size(), 5u);
  EXPECT_TRUE(is_data_frame(frame));
  EXPECT_EQ(data_frame_conn(frame), 0x1234u);
  EXPECT_TRUE(data_frame_payload(frame).empty());
  const auto full = decode_relay_message(frame);
  ASSERT_TRUE(full.has_value());
  const auto* data = std::get_if<DataMsg>(&*full);
  ASSERT_NE(data, nullptr);
  EXPECT_TRUE(data->payload.empty());
}

TEST(RelayWireTest, ListRequestIsPaddedAgainstAmplification) {
  // The encoder grows a LIST request to the size of the reply it asks
  // for, and the decoder treats the padding as inert.
  ListMsg list;
  list.max_entries = 4;
  const auto bytes = encode_relay_message(RelayMessage{list});
  EXPECT_GE(bytes.size(), list_reply_size(4));
  const auto decoded = decode_relay_message(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get_if<ListMsg>(&*decoded)->max_entries, 4);
  // max_entries = 0 asks for the relay default, so it pads for the cap.
  const auto dflt = encode_relay_message(RelayMessage{ListMsg{}});
  EXPECT_GE(dflt.size(), list_reply_size(kMaxListEntries));
}

TEST(RelayWireTest, MalformedBytesAreRejected) {
  EXPECT_FALSE(decode_relay_message({}).has_value());
  // Core protocol type bytes (0x01..0x07) are not relay messages.
  const std::vector<std::uint8_t> core_like{0x01, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode_relay_message(core_like).has_value());
  EXPECT_FALSE(is_data_frame(core_like));
  // Truncated DATA header.
  const std::vector<std::uint8_t> short_data{0x47, 1, 2};
  EXPECT_FALSE(is_data_frame(short_data));
  EXPECT_FALSE(decode_relay_message(short_data).has_value());
  // DATA with conn id 0 (never assigned) is malformed.
  std::vector<std::uint8_t> zero_conn;
  encode_data_frame_into(kNoConn, std::vector<std::uint8_t>{1}, zero_conn);
  EXPECT_FALSE(decode_relay_message(zero_conn).has_value());
  // Trailing garbage on a fixed-size message.
  auto ok = encode_relay_message(RelayMessage{LobbyOkMsg{}});
  ok.push_back(0);
  EXPECT_FALSE(decode_relay_message(ok).has_value());
  // ListReply whose count field exceeds the bytes present.
  const std::vector<std::uint8_t> lying_list{0x46, 200, 0};
  EXPECT_FALSE(decode_relay_message(lying_list).has_value());
}

// ---- lobby + data-plane lifecycle -------------------------------------------

class RelayTest : public ::testing::Test {
 protected:
  void start(RelayConfig cfg = {}) {
    server_ = std::make_unique<RelayServer>(cfg);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }
  void TearDown() override {
    if (server_) server_->stop();
  }
  std::unique_ptr<RelayServer> server_;
};

TEST_F(RelayTest, CreateJoinListLeaveLifecycle) {
  start();
  RelayLobby creator("127.0.0.1", server_->lobby_port());
  RelayLobby joiner("127.0.0.1", server_->lobby_port());
  ASSERT_TRUE(creator.valid());

  const auto created = creator.create(/*content_id=*/42);
  ASSERT_TRUE(created.has_value());
  EXPECT_NE(created->conn, kNoConn);
  EXPECT_EQ(created->slot, 0);
  EXPECT_NE(created->data_port, 0);
  EXPECT_EQ(server_->session_count(), 1u);

  // LIST shows the open session with one member.
  const auto listed = joiner.list();
  ASSERT_TRUE(listed.has_value());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0].conn, created->conn);
  EXPECT_EQ((*listed)[0].content_id, 42u);
  EXPECT_EQ((*listed)[0].members, 1);
  EXPECT_EQ((*listed)[0].max_members, 2);

  const auto joined = joiner.join(created->conn);
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(joined->conn, created->conn);
  EXPECT_EQ(joined->slot, 1);
  EXPECT_EQ(joined->data_port, created->data_port);

  // Both members leave; the session closes.
  creator.leave(created->conn);
  joiner.leave(created->conn);
  for (int i = 0; i < 100 && server_->session_count() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->session_count(), 0u);
  EXPECT_EQ(server_->stats().sessions_closed, 1u);
}

TEST_F(RelayTest, JoinNonexistentSessionIsRefused) {
  start();
  RelayLobby lobby("127.0.0.1", server_->lobby_port());
  EXPECT_FALSE(lobby.join(999).has_value());
  ASSERT_TRUE(lobby.refusal().has_value());
  EXPECT_EQ(*lobby.refusal(), LobbyError::kNotFound);
}

TEST_F(RelayTest, DoubleJoinFromSameAddressIsIdempotent) {
  start();
  RelayLobby creator("127.0.0.1", server_->lobby_port());
  RelayLobby joiner("127.0.0.1", server_->lobby_port());
  const auto created = creator.create(1);
  ASSERT_TRUE(created.has_value());

  const auto first = joiner.join(created->conn);
  ASSERT_TRUE(first.has_value());
  // A re-JOIN (lost LOBBY_OK retransmit) answers with the same slot and
  // must not consume the second member slot.
  const auto second = joiner.join(created->conn);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->slot, first->slot);

  RelayLobby third("127.0.0.1", server_->lobby_port());
  EXPECT_FALSE(third.join(created->conn).has_value());
  EXPECT_EQ(*third.refusal(), LobbyError::kSessionFull);
}

TEST_F(RelayTest, CreateRetransmitIsIdempotent) {
  start();
  // Raw socket so we control the retransmit (RelayLobby returns on the
  // first reply). A CREATE retry after a lost LOBBY_OK must echo the
  // session already minted, not leak a second one against max_sessions.
  net::UdpSocket sock("127.0.0.1", 0);
  const auto lobby = net::make_udp_address("127.0.0.1", server_->lobby_port());
  CreateMsg create;
  create.content_id = 99;
  const auto bytes = encode_relay_message(RelayMessage{create});
  ConnId conns[2] = {kNoConn, kNoConn};
  for (auto& conn : conns) {
    sock.send_to(*lobby, bytes);
    ASSERT_TRUE(sock.wait_readable(seconds(2)));
    const auto got = sock.recv_from();
    ASSERT_TRUE(got.has_value());
    const auto reply = decode_relay_message(got->first);
    ASSERT_TRUE(reply.has_value());
    const auto* ok = std::get_if<LobbyOkMsg>(&*reply);
    ASSERT_NE(ok, nullptr);
    conn = ok->conn;
  }
  EXPECT_EQ(conns[0], conns[1]);
  EXPECT_EQ(server_->session_count(), 1u);
  EXPECT_EQ(server_->stats().sessions_created, 1u);
}

TEST_F(RelayTest, ConnIdsAreNotSequential) {
  start();
  RelayLobby lobby("127.0.0.1", server_->lobby_port());
  ConnId conns[4] = {};
  for (int i = 0; i < 4; ++i) {
    const auto created = lobby.create(static_cast<std::uint64_t>(i));
    ASSERT_TRUE(created.has_value());
    ASSERT_NE(created->conn, kNoConn);
    conns[i] = created->conn;
  }
  // A conn id is the only credential JOIN/DATA carry, so allocation must
  // not be a counter. Randomized ids make four consecutive increments
  // astronomically unlikely.
  bool consecutive = true;
  for (int i = 1; i < 4; ++i) {
    consecutive = consecutive && conns[i] == conns[i - 1] + 1;
  }
  EXPECT_FALSE(consecutive);
}

TEST_F(RelayTest, LobbyRequestSkipsDataAndEvictRacingTheReply) {
  // A fake relay answers a JOIN first with relayed DATA (the creator's
  // HELLO fan-out races the LOBBY_OK once the JOIN registers the member)
  // and a stray EVICT_NOTICE, then with the real reply. The handshake
  // must drain past both instead of aborting spuriously.
  net::UdpSocket fake_relay("127.0.0.1", 0);
  ASSERT_TRUE(fake_relay.valid());
  RelayLobby lobby("127.0.0.1", fake_relay.local_port());
  ASSERT_TRUE(lobby.valid());

  std::optional<LobbyResult> result;
  std::thread client([&] { result = lobby.join(7); });

  ASSERT_TRUE(fake_relay.wait_readable(seconds(2)));
  const auto req = fake_relay.recv_from();
  ASSERT_TRUE(req.has_value());
  const auto decoded_req = decode_relay_message(req->first);
  ASSERT_TRUE(decoded_req.has_value());
  ASSERT_TRUE(std::holds_alternative<JoinMsg>(*decoded_req));
  const net::UdpAddress client_addr = req->second;

  std::vector<std::uint8_t> frame;
  encode_data_frame_into(7, std::vector<std::uint8_t>{1, 2, 3}, frame);
  fake_relay.send_to(client_addr, frame);
  fake_relay.send_to(client_addr,
                     encode_relay_message(RelayMessage{EvictNoticeMsg{7}}));
  fake_relay.send_to(client_addr, encode_relay_message(RelayMessage{
                                      LobbyOkMsg{kRelayProtocolVersion, 7, 1, 4242}}));
  client.join();

  ASSERT_TRUE(result.has_value()) << lobby.last_error();
  EXPECT_EQ(result->conn, 7u);
  EXPECT_EQ(result->slot, 1);
  EXPECT_EQ(result->data_port, 4242);
}

TEST_F(RelayTest, EndpointDropsSpoofedNonRelayTraffic) {
  start();
  RelayLobby creator("127.0.0.1", server_->lobby_port());
  const auto created = creator.create(7);
  ASSERT_TRUE(created.has_value());
  auto ep = creator.into_endpoint(*created);
  ASSERT_NE(ep, nullptr);

  // An off-path host that learned the client's port injects a perfectly
  // well-formed DATA frame and a spoofed EVICT_NOTICE for our conn id.
  // Neither comes from the relay's address, so both must be dropped: the
  // payload never surfaces and the eviction latch stays clear.
  net::UdpSocket attacker("127.0.0.1", 0);
  const auto victim =
      net::make_udp_address("127.0.0.1", ep->socket().local_port());
  std::vector<std::uint8_t> frame;
  encode_data_frame_into(created->conn, std::vector<std::uint8_t>{0xEE}, frame);
  attacker.send_to(*victim, frame);
  attacker.send_to(*victim, encode_relay_message(
                                RelayMessage{EvictNoticeMsg{created->conn}}));

  // Two separate datagrams: wait until both have been seen and dropped.
  for (int i = 0; i < 100 && ep->dropped_non_relay() < 2; ++i) {
    ep->wait_readable(milliseconds(20));
    EXPECT_FALSE(ep->try_recv().has_value());
  }
  EXPECT_FALSE(ep->evicted());
  EXPECT_EQ(ep->evict_notices(), 0u);
  EXPECT_EQ(ep->dropped_non_relay(), 2u);

  MetricsRegistry reg;
  ep->export_metrics(reg);
  EXPECT_EQ(reg.value("net.relay.dropped_non_relay"), 2);
}

TEST_F(RelayTest, UnpaddedListCannotAmplify) {
  start();
  RelayLobby lobby("127.0.0.1", server_->lobby_port());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(lobby.create(static_cast<std::uint64_t>(i)).has_value());
  }
  // A hand-rolled minimal LIST (what a spoofing reflector would send)
  // must never elicit a reply larger than itself.
  net::UdpSocket probe("127.0.0.1", 0);
  const auto addr = net::make_udp_address("127.0.0.1", server_->lobby_port());
  ByteWriter w;
  w.u8(0x42);
  w.u16(kRelayProtocolVersion);
  w.u16(64);
  const auto request = w.take();
  probe.send_to(*addr, request);
  ASSERT_TRUE(probe.wait_readable(seconds(2)));
  const auto got = probe.recv_from();
  ASSERT_TRUE(got.has_value());
  EXPECT_LE(got->first.size(), request.size());
  const auto reply = decode_relay_message(got->first);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(std::get_if<ListReplyMsg>(&*reply)->sessions.empty());

  // Padding proportional to the ask buys exactly that many entries.
  std::vector<std::uint8_t> padded = request;
  padded.resize(list_reply_size(3), 0);
  probe.send_to(*addr, padded);
  ASSERT_TRUE(probe.wait_readable(seconds(2)));
  const auto got2 = probe.recv_from();
  ASSERT_TRUE(got2.has_value());
  EXPECT_LE(got2->first.size(), padded.size());
  const auto reply2 = decode_relay_message(got2->first);
  ASSERT_TRUE(reply2.has_value());
  EXPECT_EQ(std::get_if<ListReplyMsg>(&*reply2)->sessions.size(), 3u);

  // The padded client path still sees the full listing.
  const auto listed = lobby.list();
  ASSERT_TRUE(listed.has_value());
  EXPECT_EQ(listed->size(), 8u);
}

TEST_F(RelayTest, BadLobbyVersionIsRefused) {
  start();
  net::UdpSocket sock("127.0.0.1", 0);
  const auto lobby = net::make_udp_address("127.0.0.1", server_->lobby_port());
  CreateMsg create;
  create.version = kRelayProtocolVersion + 1;
  sock.send_to(*lobby, encode_relay_message(RelayMessage{create}));
  ASSERT_TRUE(sock.wait_readable(seconds(2)));
  const auto got = sock.recv_from();
  ASSERT_TRUE(got.has_value());
  const auto reply = decode_relay_message(got->first);
  ASSERT_TRUE(reply.has_value());
  const auto* err = std::get_if<LobbyErrMsg>(&*reply);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, LobbyError::kBadVersion);
  EXPECT_EQ(server_->session_count(), 0u);
}

TEST_F(RelayTest, ServerFullRefusesCreate) {
  RelayConfig cfg;
  cfg.max_sessions = 2;
  start(cfg);
  RelayLobby lobby("127.0.0.1", server_->lobby_port());
  ASSERT_TRUE(lobby.create(1).has_value());
  ASSERT_TRUE(lobby.create(2).has_value());
  EXPECT_FALSE(lobby.create(3).has_value());
  EXPECT_EQ(*lobby.refusal(), LobbyError::kServerFull);
}

TEST_F(RelayTest, DataIsForwardedBetweenMembersOnly) {
  start();
  RelayLobby creator("127.0.0.1", server_->lobby_port());
  RelayLobby joiner("127.0.0.1", server_->lobby_port());
  const auto created = creator.create(7);
  ASSERT_TRUE(created.has_value());
  const auto joined = joiner.join(created->conn);
  ASSERT_TRUE(joined.has_value());
  auto a = creator.into_endpoint(*created);
  auto b = joiner.into_endpoint(*joined);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  const std::vector<std::uint8_t> ping{1, 2, 3};
  a->send(ping);
  ASSERT_TRUE(b->wait_readable(seconds(2)));
  const auto got = b->try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, ping);  // unframed payload, conn id stripped

  // The sender must NOT get its own datagram echoed back.
  EXPECT_FALSE(a->wait_readable(milliseconds(100)));

  // An empty payload (zero-length core flush) is a legal DATA frame and
  // must survive the relay path, not vanish as malformed.
  a->send(std::span<const std::uint8_t>{});
  ASSERT_TRUE(b->wait_readable(seconds(2)));
  const auto empty = b->try_recv();
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());

  // A non-member blasting DATA at the session is counted and dropped —
  // and never forwarded to the members.
  net::UdpSocket rogue("127.0.0.1", 0);
  const auto data_addr = net::make_udp_address("127.0.0.1", created->data_port);
  std::vector<std::uint8_t> frame;
  encode_data_frame_into(created->conn, std::vector<std::uint8_t>{0xBA, 0xD0}, frame);
  rogue.send_to(*data_addr, frame);
  EXPECT_FALSE(b->wait_readable(milliseconds(200)));
  EXPECT_FALSE(a->wait_readable(milliseconds(50)));
  EXPECT_EQ(server_->stats().dropped_unknown_sender, 1u);

  // Malformed data-port traffic is counted separately.
  rogue.send_to(*data_addr, std::vector<std::uint8_t>{0xFF, 0xFF});
  for (int i = 0; i < 100 && server_->stats().dropped_malformed == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->stats().dropped_malformed, 1u);
}

TEST_F(RelayTest, DataForUnknownSessionGetsEvictNotice) {
  start();
  RelayLobby lobby("127.0.0.1", server_->lobby_port());
  const auto created = lobby.create(7);
  ASSERT_TRUE(created.has_value());
  auto ep = lobby.into_endpoint(*created);
  ASSERT_NE(ep, nullptr);

  // Forge traffic for a conn id that never existed but lands on the same
  // shard pinning (conn + shard_count keeps `conn % shards` distinct from
  // ours only if...). Use a definitely-unknown id on OUR endpoint's shard:
  // the endpoint sends to its own data port, so pick an id congruent to
  // ours modulo the shard count.
  const ConnId ghost = created->conn + static_cast<ConnId>(server_->shard_count()) * 7;
  std::vector<std::uint8_t> frame;
  encode_data_frame_into(ghost, std::vector<std::uint8_t>{1, 2, 3}, frame);
  const auto data_addr = net::make_udp_address("127.0.0.1", created->data_port);
  ep->socket().send_to(*data_addr, frame);

  // The relay answers with an EVICT_NOTICE for the ghost id; our endpoint
  // must classify it as foreign (different conn), not as an eviction of us.
  ASSERT_TRUE(ep->wait_readable(seconds(2)));
  EXPECT_FALSE(ep->try_recv().has_value());
  EXPECT_FALSE(ep->evicted());
  EXPECT_EQ(ep->dropped_foreign(), 1u);
  EXPECT_EQ(server_->stats().dropped_unknown_session, 1u);
}

TEST_F(RelayTest, IdleSessionsAreEvictedAndMembersNotified) {
  RelayConfig cfg;
  cfg.idle_timeout = milliseconds(100);
  cfg.sweep_interval = milliseconds(20);
  start(cfg);
  RelayLobby creator("127.0.0.1", server_->lobby_port());
  const auto created = creator.create(7);
  ASSERT_TRUE(created.has_value());
  auto ep = creator.into_endpoint(*created);

  // Mid-handshake abandonment: the creator never sends DATA and the peer
  // never joins. The sweep evicts the session and notifies the creator.
  ASSERT_TRUE(ep->wait_readable(seconds(2)));
  EXPECT_FALSE(ep->try_recv().has_value());
  EXPECT_TRUE(ep->evicted());
  EXPECT_EQ(ep->evict_notices(), 1u);
  EXPECT_EQ(server_->session_count(), 0u);
  EXPECT_EQ(server_->stats().sessions_evicted, 1u);

  // DATA sent after eviction is answered with another notice (not silence).
  ep->send(std::vector<std::uint8_t>{5});
  ASSERT_TRUE(ep->wait_readable(seconds(2)));
  EXPECT_FALSE(ep->try_recv().has_value());
  EXPECT_GE(ep->evict_notices(), 2u);
}

TEST_F(RelayTest, MetricsExportCoversSessionsAndDispatch) {
  start();
  RelayLobby creator("127.0.0.1", server_->lobby_port());
  RelayLobby joiner("127.0.0.1", server_->lobby_port());
  const auto created = creator.create(7);
  ASSERT_TRUE(created.has_value());
  const auto joined = joiner.join(created->conn);
  ASSERT_TRUE(joined.has_value());
  auto a = creator.into_endpoint(*created);
  auto b = joiner.into_endpoint(*joined);

  for (int i = 0; i < 10; ++i) {
    a->send(std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)});
  }
  int received = 0;
  while (received < 10 && b->wait_readable(seconds(1))) {
    while (b->try_recv().has_value()) ++received;
  }
  ASSERT_EQ(received, 10);

  MetricsRegistry reg;
  server_->export_metrics(reg);
  EXPECT_EQ(reg.value("relay.sessions"), 1);
  EXPECT_EQ(reg.value("relay.sessions_created"), 1);
  EXPECT_EQ(reg.value("relay.evicted"), 0);
  EXPECT_EQ(reg.value("relay.datagrams_forwarded"), 10);
  EXPECT_EQ(reg.value("relay.fanout_datagrams"), 10);
  EXPECT_EQ(reg.histogram("relay.dispatch_ns").count(), 10u);
  EXPECT_GT(reg.histogram("relay.dispatch_ns").max(), 0);
  // The registry serializes as the standard metrics schema.
  EXPECT_NE(reg.to_json().find("rtct.metrics.v1"), std::string::npos);
}

TEST_F(RelayTest, SessionsArePinnedAcrossShards) {
  RelayConfig cfg;
  cfg.shards = 4;
  start(cfg);
  ASSERT_EQ(server_->shard_count(), 4);
  RelayLobby lobby("127.0.0.1", server_->lobby_port());
  // Consecutive conn ids round-robin the shards; the announced data port
  // must match the pinned shard's socket.
  for (int i = 0; i < 8; ++i) {
    const auto created = lobby.create(static_cast<std::uint64_t>(i));
    ASSERT_TRUE(created.has_value());
    const int shard = static_cast<int>(created->conn % 4u);
    EXPECT_EQ(created->data_port, server_->shard_port(shard));
  }
  EXPECT_EQ(server_->session_count(), 8u);
}

}  // namespace
}  // namespace rtct::relay
