// Integration tests: the full two-site system on the simulated testbed —
// every layer at once (emulator, games, sync protocol, pacing, session,
// netem), checked against the paper's claims and against a single-machine
// reference execution.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/stats.h"
#include "src/core/input_source.h"
#include "src/emu/machine.h"
#include "src/games/roms.h"
#include "src/testbed/experiment.h"
#include "src/testbed/sweep.h"

namespace rtct::testbed {
namespace {

ExperimentConfig quick(int frames = 240) {
  ExperimentConfig cfg;
  cfg.frames = frames;
  return cfg;
}

// ---- end-to-end correctness ---------------------------------------------------

TEST(ExperimentTest, PerfectNetworkConverges) {
  const auto r = run_experiment(quick());
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(r.first_divergence(), -1);
  EXPECT_EQ(r.site[0].frames_completed, 240);
  EXPECT_EQ(r.site[1].frames_completed, 240);
  EXPECT_EQ(r.site[0].final_framebuffer, r.site[1].final_framebuffer);
}

TEST(ExperimentTest, MatchesSingleMachineReference) {
  // The distributed run must equal a single machine fed the two input
  // scripts merged with the local-lag shift — the strongest end-to-end
  // check of "collaboration transparency".
  ExperimentConfig cfg = quick(300);
  cfg.set_rtt(milliseconds(60));
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.converged());

  core::MasherInput p0(cfg.input_seed[0], cfg.input_hold_frames);
  core::MasherInput p1(cfg.input_seed[1], cfg.input_hold_frames);
  const auto s0 = core::materialize_script(p0, cfg.frames);
  const auto s1 = core::materialize_script(p1, cfg.frames);

  auto reference = games::make_machine(cfg.game);
  for (FrameNo f = 0; f < cfg.frames; ++f) {
    const InputWord input = f < cfg.sync.buf_frames
                                ? 0
                                : make_input(s0[f - cfg.sync.buf_frames],
                                             s1[f - cfg.sync.buf_frames]);
    reference->step_frame(input);
    // Timelines record the negotiated digest version (v2 for two
    // identically-configured sites) — compare apples to apples.
    ASSERT_EQ(reference->state_digest(cfg.sync.digest_version()),
              r.site[0].timeline.records()[f].state_hash)
        << "distributed run diverged from the single-machine reference at frame " << f;
  }
}

TEST(ExperimentTest, EveryBundledGameConverges) {
  for (const auto name : games::game_names()) {
    ExperimentConfig cfg = quick(180);
    cfg.game = std::string(name);
    cfg.set_rtt(milliseconds(80));
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.converged()) << name;
  }
}

TEST(ExperimentTest, UnknownGameFailsCleanly) {
  ExperimentConfig cfg = quick();
  cfg.game = "does-not-exist";
  const auto r = run_experiment(cfg);
  EXPECT_FALSE(r.converged());
  EXPECT_TRUE(r.site[0].session_failed);
  EXPECT_NE(r.site[0].failure_reason.find("unknown game"), std::string::npos);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  ExperimentConfig cfg = quick(200);
  cfg.set_rtt(milliseconds(70));
  cfg.net_a_to_b.jitter = milliseconds(5);
  cfg.net_b_to_a.loss = 0.02;
  const auto r1 = run_experiment(cfg);
  const auto r2 = run_experiment(cfg);
  ASSERT_EQ(r1.site[0].timeline.size(), r2.site[0].timeline.size());
  for (std::size_t i = 0; i < r1.site[0].timeline.size(); ++i) {
    ASSERT_EQ(r1.site[0].timeline.records()[i].begin_time,
              r2.site[0].timeline.records()[i].begin_time);
    ASSERT_EQ(r1.site[0].timeline.records()[i].state_hash,
              r2.site[0].timeline.records()[i].state_hash);
  }
}

// ---- paper-shape properties ----------------------------------------------------

TEST(ExperimentTest, FullSpeedAtLowRtt) {
  ExperimentConfig cfg = quick(600);
  cfg.set_rtt(milliseconds(40));
  const auto r = run_experiment(cfg);
  EXPECT_NEAR(r.avg_frame_time_ms(0), 16.667, 0.05);
  EXPECT_NEAR(r.avg_frame_time_ms(1), 16.667, 0.3);
  EXPECT_LT(r.frame_time_deviation_ms(0), 0.5);
  EXPECT_LT(r.frame_time_deviation_ms(1), 1.5);
  EXPECT_LT(r.synchrony_ms(), 12.0);
}

TEST(ExperimentTest, SlowdownBeyondThreshold) {
  ExperimentConfig cfg = quick(600);
  cfg.set_rtt(milliseconds(300));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.converged());  // logically consistent even when slow
  EXPECT_GT(r.avg_frame_time_ms(0), 18.0);
  EXPECT_GT(r.site[0].timeline.stalled_frames(), 100u);
}

TEST(ExperimentTest, ConsistencyUnderLossDupReorder) {
  ExperimentConfig cfg = quick(400);
  cfg.set_rtt(milliseconds(60));
  for (auto* dir : {&cfg.net_a_to_b, &cfg.net_b_to_a}) {
    dir->loss = 0.1;
    dir->duplicate = 0.05;
    dir->reorder = 0.1;
    dir->reorder_extra = milliseconds(8);
    dir->jitter = milliseconds(4);
  }
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.converged());
  EXPECT_GT(r.site[0].sync_stats.duplicate_inputs_rcvd, 0u);
}

TEST(ExperimentTest, AsymmetricPathsStillConverge) {
  ExperimentConfig cfg = quick(300);
  cfg.net_a_to_b.delay = milliseconds(10);
  cfg.net_b_to_a.delay = milliseconds(70);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.converged());
}

TEST(ExperimentTest, TotalNetworkFailureFreezesNotDiverges) {
  // §3.1: "In the event that the remote site or the network fails, the
  // local site will be stuck in the loop freezing the game."
  ExperimentConfig cfg = quick(120);
  cfg.net_a_to_b.loss = 1.0;  // site 0's packets all vanish
  cfg.net_b_to_a.loss = 1.0;
  cfg.watchdog = seconds(5);
  const auto r = run_experiment(cfg);
  EXPECT_FALSE(r.converged());
  EXPECT_TRUE(r.site[0].aborted);
  EXPECT_TRUE(r.site[1].aborted);
  // Neither site got past the handshake or the first real frame.
  EXPECT_LT(r.site[0].frames_completed, 10);
}

TEST(ExperimentTest, MidSessionBlackoutFreezesBothSites) {
  // One direction dies after the session is running: both sites must stop
  // making progress (no one "plays alone"), neither may diverge.
  ExperimentConfig cfg = quick(600);
  cfg.set_rtt(milliseconds(40));
  cfg.watchdog = seconds(30);
  // 90% loss on one direction: lockstep must hold both sites to the same
  // (degraded) pace — the slow direction throttles both, never just one.
  cfg.net_a_to_b.loss = 0.9;
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.converged());  // 10% of the redundant resends get through
  EXPECT_EQ(r.site[0].frames_completed, r.site[1].frames_completed);
}

TEST(ExperimentTest, StalledSiteReportsStallTime) {
  ExperimentConfig cfg = quick(400);
  cfg.set_rtt(milliseconds(260));
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  EXPECT_GT(r.site[0].timeline.stalls().summarize().max, 0.0);
}

// ---- configuration handling ------------------------------------------------------

TEST(ExperimentTest, BootDelayAbsorbedByHandshake) {
  ExperimentConfig cfg = quick(600);
  cfg.set_rtt(milliseconds(40));
  cfg.site_boot_delay[1] = milliseconds(400);  // slave boots much later
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.converged());
  // The startup skew is smoothed out "within only a few frames" (§3.2):
  // the back half of the run must be steady.
  Series tail;
  const auto& recs = r.site[1].timeline.records();
  for (std::size_t i = 301; i < recs.size(); ++i) {
    tail.add_dur(recs[i].begin_time - recs[i - 1].begin_time);
  }
  EXPECT_LT(tail.summarize().mean_abs_deviation, 1.0);
  EXPECT_NEAR(tail.summarize().mean, 16.667, 0.2);
}

TEST(ExperimentTest, SweepHelpersCoverPaperGrid) {
  const auto grid = paper_rtt_sweep();
  EXPECT_EQ(grid.size(), 25u);  // 0..200 step 10 (21) + 250..400 step 50 (4)
  EXPECT_EQ(grid.front(), 0);
  EXPECT_EQ(grid.back(), milliseconds(400));
  const auto points = sweep_rtt(quick(60), {milliseconds(0), milliseconds(20)});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_TRUE(points[0].result.converged());
}

TEST(ExperimentTest, SmallBufFrameWorksOnLan) {
  ExperimentConfig cfg = quick(300);
  cfg.sync.buf_frames = 2;  // ~33 ms local lag
  cfg.set_rtt(milliseconds(10));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.converged());
  EXPECT_NEAR(r.avg_frame_time_ms(0), 16.667, 0.4);
}

TEST(ExperimentTest, MidSessionDegradationSlowsThenRecovers) {
  // RTT 40 -> 300 between seconds 4 and 8 -> 40 again. The game must slow
  // during the outage-grade latency, stay logically consistent throughout,
  // and return to 60 FPS afterwards.
  ExperimentConfig cfg = quick(900);  // 15 seconds
  cfg.set_rtt(milliseconds(40));
  cfg.net_events.push_back({seconds(4), net::NetemConfig::for_rtt(milliseconds(300))});
  cfg.net_events.push_back({seconds(8), net::NetemConfig::for_rtt(milliseconds(40))});
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.converged());

  auto window_mean = [&](double from_s, double to_s) {
    Series s;
    const auto& recs = r.site[0].timeline.records();
    for (std::size_t i = 1; i < recs.size(); ++i) {
      const double t = to_ms(recs[i].begin_time) / 1000.0;
      if (t >= from_s && t < to_s) s.add_dur(recs[i].begin_time - recs[i - 1].begin_time);
    }
    return s.summarize().mean;
  };
  EXPECT_NEAR(window_mean(1, 4), 16.667, 0.2);   // healthy before
  EXPECT_GT(window_mean(5, 8), 18.0);            // degraded during
  EXPECT_NEAR(window_mean(11, 15), 16.667, 0.4); // recovered after
}

TEST(ExperimentTest, AsymmetricDegradationThrottlesBoth) {
  ExperimentConfig cfg = quick(600);
  cfg.set_rtt(milliseconds(40));
  net::NetemConfig bad = net::NetemConfig::for_rtt(milliseconds(400));
  cfg.net_events.push_back(
      {seconds(3), bad, ExperimentConfig::NetEvent::Dir::kAToB});
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  // Lockstep: even a one-directional outage slows *both* sites equally.
  EXPECT_GT(r.avg_frame_time_ms(0), 17.0);
  EXPECT_GT(r.avg_frame_time_ms(1), 17.0);
  EXPECT_EQ(r.site[0].frames_completed, r.site[1].frames_completed);
}

// ---- observers / late join (journal-version extension) -------------------------

TEST(ExperimentTest, LateObserverReplaysSessionExactly) {
  ExperimentConfig cfg = quick(600);
  cfg.set_rtt(milliseconds(60));
  cfg.observers = 1;
  cfg.observer_join_delay = seconds(3);  // joins ~frame 180 of 600
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  ASSERT_EQ(r.observers.size(), 1u);
  EXPECT_TRUE(r.observers[0].joined);
  EXPECT_GT(r.observers[0].snapshot_frame, 100);
  EXPECT_TRUE(r.observers_consistent());
}

TEST(ExperimentTest, MultipleObserversAtDifferentTimes) {
  ExperimentConfig cfg = quick(500);
  cfg.set_rtt(milliseconds(40));
  cfg.observers = 3;
  cfg.observer_join_delay = milliseconds(500);
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  ASSERT_EQ(r.observers.size(), 3u);
  EXPECT_TRUE(r.observers_consistent());
}

TEST(ExperimentTest, ObserverSurvivesLossyFeedPath) {
  ExperimentConfig cfg = quick(500);
  cfg.set_rtt(milliseconds(40));
  cfg.observers = 1;
  cfg.observer_join_delay = seconds(2);
  cfg.observer_net.loss = 0.15;
  cfg.observer_net.jitter = milliseconds(5);
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  EXPECT_TRUE(r.observers_consistent());
}

TEST(ExperimentTest, NoObserversMeansEmptyResults) {
  const auto r = run_experiment(quick(60));
  EXPECT_TRUE(r.observers.empty());
  EXPECT_TRUE(r.observers_consistent());  // vacuously
}

TEST(ExperimentTest, DesyncDetectorStaysQuietForDeterministicGames) {
  ExperimentConfig cfg = quick(400);
  cfg.set_rtt(milliseconds(80));
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  EXPECT_EQ(r.site[0].desync_frame, -1);
  EXPECT_EQ(r.site[1].desync_frame, -1);
}

TEST(ExperimentTest, TcpTransportConvergesToo) {
  ExperimentConfig cfg = quick(300);
  cfg.set_rtt(milliseconds(50));
  cfg.transport = ExperimentConfig::Transport::kTcpLike;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.converged());
}

}  // namespace
}  // namespace rtct::testbed
