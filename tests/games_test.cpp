// Tests for the bundled game ROMs: they assemble, run fault-free, behave as
// documented, and — crucially for the sync layer — are bit-deterministic
// across replicas and across save/load.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/emu/machine.h"
#include "src/games/roms.h"

namespace rtct {
namespace {

using games::make_machine;

InputWord random_input(Rng& rng) {
  return static_cast<InputWord>(rng.next_u64() & 0xFFFF);
}

// --- assembly + basic execution -------------------------------------------

class AllGames : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Roms, AllGames,
                         ::testing::Values("pong", "duel", "invaders", "tron", "tanks", "quadtron",
                                           "torture"));

TEST_P(AllGames, AssemblesAndHasEntry) {
  const emu::Rom* rom = games::rom_by_name(GetParam());
  ASSERT_NE(rom, nullptr);
  EXPECT_TRUE(rom->valid());
  EXPECT_GT(rom->image.size(), 100u);
  EXPECT_NE(rom->checksum(), 0u);
}

TEST_P(AllGames, RunsSixHundredFramesWithoutFault) {
  auto m = make_machine(GetParam());
  ASSERT_NE(m, nullptr);
  Rng rng(7);
  for (int f = 0; f < 600; ++f) {
    m->step_frame(random_input(rng));
    ASSERT_FALSE(m->faulted()) << GetParam() << " faulted at frame " << f << ": "
                               << emu::fault_name(m->fault());
  }
  EXPECT_EQ(m->frame(), 600);
}

TEST_P(AllGames, FrameCostFitsRealTimeBudget) {
  auto m = make_machine(GetParam());
  Rng rng(9);
  int max_cycles = 0;
  for (int f = 0; f < 120; ++f) {
    m->step_frame(random_input(rng));
    max_cycles = std::max(max_cycles, m->last_frame_cycles());
  }
  ASSERT_FALSE(m->faulted());
  EXPECT_LT(max_cycles, 100000) << "frame exceeds the machine cycle budget";
  EXPECT_GT(max_cycles, 1000) << "suspiciously idle frame; ROM probably broken";
}

TEST_P(AllGames, DeterministicAcrossReplicas) {
  auto a = make_machine(GetParam());
  auto b = make_machine(GetParam());
  Rng rng(42);
  for (int f = 0; f < 300; ++f) {
    const InputWord i = random_input(rng);
    a->step_frame(i);
    b->step_frame(i);
    ASSERT_EQ(a->state_hash(), b->state_hash()) << GetParam() << " diverged at frame " << f;
  }
}

TEST_P(AllGames, DivergesOnDifferentInput) {
  auto a = make_machine(GetParam());
  auto b = make_machine(GetParam());
  Rng rng(43);
  // Warm both up identically, then flip one button bit at one frame.
  for (int f = 0; f < 50; ++f) {
    const InputWord i = random_input(rng);
    a->step_frame(i);
    b->step_frame(i);
  }
  a->step_frame(make_input(kBtnUp, 0));
  b->step_frame(make_input(0, 0));
  // Keep running with identical inputs; states must not re-converge for a
  // game whose dynamics depend on input history.
  bool diverged = a->state_hash() != b->state_hash();
  for (int f = 0; f < 50 && !diverged; ++f) {
    a->step_frame(0);
    b->step_frame(0);
    diverged = a->state_hash() != b->state_hash();
  }
  EXPECT_TRUE(diverged) << GetParam() << " ignored player input entirely";
}

TEST_P(AllGames, SaveLoadRoundTripsMidGame) {
  auto a = make_machine(GetParam());
  Rng rng(44);
  std::vector<InputWord> script;
  for (int f = 0; f < 200; ++f) script.push_back(random_input(rng));

  for (int f = 0; f < 100; ++f) a->step_frame(script[f]);
  const auto snapshot = a->save_state();
  const auto hash_at_100 = a->state_hash();

  for (int f = 100; f < 200; ++f) a->step_frame(script[f]);
  const auto hash_at_200 = a->state_hash();

  // Restore and replay the same tail: identical end state.
  ASSERT_TRUE(a->load_state(snapshot));
  EXPECT_EQ(a->state_hash(), hash_at_100);
  for (int f = 100; f < 200; ++f) a->step_frame(script[f]);
  EXPECT_EQ(a->state_hash(), hash_at_200);
}

TEST_P(AllGames, ResetRestoresInitialState) {
  auto a = make_machine(GetParam());
  const auto h0 = a->state_hash();
  Rng rng(45);
  for (int f = 0; f < 50; ++f) a->step_frame(random_input(rng));
  EXPECT_NE(a->state_hash(), h0);
  a->reset();
  EXPECT_EQ(a->state_hash(), h0);
  EXPECT_EQ(a->frame(), 0);
}

TEST_P(AllGames, SnapshotRejectedByOtherGame) {
  auto a = make_machine(GetParam());
  a->step_frame(0);
  const auto snap = a->save_state();
  const std::string other = GetParam() == "pong" ? "duel" : "pong";
  auto b = make_machine(other);
  EXPECT_FALSE(b->load_state(snap)) << "snapshot crossed game boundaries";
}

// --- pong gameplay ---------------------------------------------------------

constexpr std::uint16_t kStateBase = 0x8000;

TEST(PongTest, PaddleRespondsToInput) {
  auto m = make_machine("pong");
  m->step_frame(0);  // init frame
  const auto y0 = m->peek16(kStateBase + 0);
  EXPECT_EQ(y0, 20);
  for (int i = 0; i < 5; ++i) m->step_frame(make_input(kBtnUp, 0));
  EXPECT_EQ(m->peek16(kStateBase + 0), y0 - 5);
  for (int i = 0; i < 8; ++i) m->step_frame(make_input(kBtnDown, kBtnDown));
  EXPECT_EQ(m->peek16(kStateBase + 0), y0 + 3);
  EXPECT_EQ(m->peek16(kStateBase + 2), 20 + 8);  // p1 moved down too
}

TEST(PongTest, PaddleClampsAtEdges) {
  auto m = make_machine("pong");
  for (int i = 0; i < 60; ++i) m->step_frame(make_input(kBtnUp, kBtnDown));
  EXPECT_EQ(m->peek16(kStateBase + 0), 0);   // p0 pinned at top
  EXPECT_EQ(m->peek16(kStateBase + 2), 40);  // p1 pinned at bottom
}

TEST(PongTest, UnattendedBallEventuallyScores) {
  auto m = make_machine("pong");
  // Leave paddles at start; the ball must eventually get past someone.
  int frames = 0;
  while (frames < 3600 && m->peek16(kStateBase + 12) == 0 && m->peek16(kStateBase + 14) == 0) {
    m->step_frame(make_input(kBtnUp, kBtnUp));  // park both paddles at top
    ++frames;
  }
  ASSERT_FALSE(m->faulted());
  EXPECT_LT(frames, 3600) << "no one ever scored";
  EXPECT_EQ(m->peek16(kStateBase + 4), 32) << "ball recentered after a score";
}

TEST(PongTest, BallStaysOnScreen) {
  auto m = make_machine("pong");
  Rng rng(46);
  for (int f = 0; f < 2000; ++f) {
    m->step_frame(random_input(rng));
    const auto bx = m->peek16(kStateBase + 4);
    const auto by = m->peek16(kStateBase + 6);
    ASSERT_LT(bx, 64u);
    ASSERT_LT(by, 48u);
  }
}

TEST(PongTest, FramebufferShowsPaddlesAndBall) {
  auto m = make_machine("pong");
  m->step_frame(0);
  const auto fb = m->framebuffer();
  int paddle0 = 0, paddle1 = 0, ball = 0;
  for (auto px : fb) {
    paddle0 += px == 2;
    paddle1 += px == 3;
    ball += px == 7;
  }
  EXPECT_EQ(paddle0, 8);
  EXPECT_EQ(paddle1, 8);
  EXPECT_EQ(ball, 1);
}

TEST(PongTest, ToneFollowsBall) {
  auto m = make_machine("pong");
  m->step_frame(0);
  EXPECT_EQ(m->tone(), m->peek16(kStateBase + 6));  // tone = ball y
}

// --- duel gameplay ---------------------------------------------------------

TEST(DuelTest, FightersStartApartAndCanWalk) {
  auto m = make_machine("duel");
  m->step_frame(0);
  EXPECT_EQ(m->peek16(kStateBase + 0), 15u);
  EXPECT_EQ(m->peek16(kStateBase + 2), 45u);
  for (int i = 0; i < 10; ++i) m->step_frame(make_input(kBtnRight, kBtnLeft));
  EXPECT_EQ(m->peek16(kStateBase + 0), 25u);
  EXPECT_EQ(m->peek16(kStateBase + 2), 35u);
}

TEST(DuelTest, PunchOutOfRangeMisses) {
  auto m = make_machine("duel");
  m->step_frame(0);
  for (int i = 0; i < 20; ++i) m->step_frame(make_input(kBtnA, 0));
  EXPECT_EQ(m->peek16(kStateBase + 6), 99u) << "hit landed from across the arena";
}

TEST(DuelTest, PunchInRangeDealsDamage) {
  auto m = make_machine("duel");
  m->step_frame(0);
  // Walk player 0 next to player 1 (distance 45-15=30; close 26 to reach 4).
  for (int i = 0; i < 26; ++i) m->step_frame(make_input(kBtnRight, 0));
  m->step_frame(make_input(kBtnA, 0));
  EXPECT_EQ(m->peek16(kStateBase + 6), 98u);
}

TEST(DuelTest, BlockPreventsDamage) {
  auto m = make_machine("duel");
  m->step_frame(0);
  for (int i = 0; i < 26; ++i) m->step_frame(make_input(kBtnRight, 0));
  m->step_frame(make_input(kBtnA, kBtnB));
  EXPECT_EQ(m->peek16(kStateBase + 6), 99u);
}

TEST(DuelTest, AttackCooldownLimitsDamageRate) {
  auto m = make_machine("duel");
  m->step_frame(0);
  for (int i = 0; i < 26; ++i) m->step_frame(make_input(kBtnRight, 0));
  for (int i = 0; i < 24; ++i) m->step_frame(make_input(kBtnA, 0));
  // 24 frames of mashing with a 12-frame cooldown => exactly 2 hits.
  EXPECT_EQ(m->peek16(kStateBase + 6), 97u);
}

TEST(DuelTest, KnockoutAwardsRoundAndResets) {
  auto m = make_machine("duel");
  m->step_frame(0);
  for (int i = 0; i < 26; ++i) m->step_frame(make_input(kBtnRight, 0));
  // 99 HP * 13 frames per landed hit (12 cooldown + 1) < 1320 frames.
  for (int i = 0; i < 1400 && m->peek16(kStateBase + 12) == 0; ++i) {
    m->step_frame(make_input(kBtnA, 0));
  }
  ASSERT_FALSE(m->faulted());
  EXPECT_EQ(m->peek16(kStateBase + 12), 1u);   // player 0 won a round
  EXPECT_EQ(m->peek16(kStateBase + 4), 99u);   // healths reset
  EXPECT_EQ(m->peek16(kStateBase + 6), 99u);
  EXPECT_EQ(m->peek16(kStateBase + 0), 15u);   // positions reset
}

// --- invaders gameplay -------------------------------------------------------

constexpr std::uint16_t kAliens = 0x8040;

TEST(InvadersTest, WaveStartsFull) {
  auto m = make_machine("invaders");
  m->step_frame(0);
  EXPECT_EQ(m->peek16(kStateBase + 30), 24u);  // ALIVE
  int alive = 0;
  for (int i = 0; i < 24; ++i) alive += m->peek(kAliens + i);
  EXPECT_EQ(alive, 24);
}

TEST(InvadersTest, ShipsMoveIndependently) {
  auto m = make_machine("invaders");
  m->step_frame(0);
  for (int i = 0; i < 5; ++i) m->step_frame(make_input(kBtnLeft, kBtnRight));
  EXPECT_EQ(m->peek16(kStateBase + 8), 15u);
  EXPECT_EQ(m->peek16(kStateBase + 10), 45u);
}

TEST(InvadersTest, FiringKillsAnAlienEventually) {
  auto m = make_machine("invaders");
  m->step_frame(0);
  for (int f = 0; f < 600 && m->peek16(kStateBase + 24) == 0; ++f) {
    m->step_frame(make_input(kBtnA, kBtnA));  // both mash fire
  }
  ASSERT_FALSE(m->faulted());
  EXPECT_GT(m->peek16(kStateBase + 24), 0u) << "no alien ever died";
  EXPECT_LT(m->peek16(kStateBase + 30), 24u);
}

TEST(InvadersTest, AliensMarchAndDescend) {
  auto m = make_machine("invaders");
  m->step_frame(0);
  const auto ax0 = m->peek16(kStateBase + 2);
  for (int f = 0; f < 16; ++f) m->step_frame(0);
  EXPECT_NE(m->peek16(kStateBase + 2), ax0) << "aliens never marched";
  const auto ay0 = m->peek16(kStateBase + 4);
  for (int f = 0; f < 400; ++f) m->step_frame(0);
  EXPECT_GT(m->peek16(kStateBase + 4), ay0) << "aliens never descended";
}

TEST(InvadersTest, UnopposedInvasionEndsTheGame) {
  auto m = make_machine("invaders");
  int f = 0;
  for (; f < 4000 && m->peek16(kStateBase + 26) == 0; ++f) m->step_frame(0);
  ASSERT_FALSE(m->faulted());
  EXPECT_GT(m->peek16(kStateBase + 26), 0u) << "game-over flag never set";
  // Frozen afterwards: the rendered screen stops changing (the machine's
  // frame counter still ticks, so the full state hash legitimately moves).
  m->step_frame(0);
  const std::vector<std::uint8_t> shot(m->framebuffer().begin(), m->framebuffer().end());
  m->step_frame(make_input(kBtnA | kBtnLeft, kBtnA | kBtnRight));
  const std::vector<std::uint8_t> shot2(m->framebuffer().begin(), m->framebuffer().end());
  EXPECT_EQ(shot, shot2);
}

// --- tron gameplay -----------------------------------------------------------

TEST(TronTest, CyclesAdvanceEveryOtherFrame) {
  auto m = make_machine("tron");
  m->step_frame(0);  // init (frame counter 0: moves)
  const auto x0 = m->peek16(kStateBase + 0);
  m->step_frame(0);  // odd frame: no move
  EXPECT_EQ(m->peek16(kStateBase + 0), x0);
  m->step_frame(0);  // even frame: moves (p0 heads right)
  EXPECT_EQ(m->peek16(kStateBase + 0), x0 + 1);
}

TEST(TronTest, SteeringChangesDirection) {
  auto m = make_machine("tron");
  m->step_frame(0);
  const auto y0 = m->peek16(kStateBase + 2);
  for (int i = 0; i < 8; ++i) m->step_frame(make_input(kBtnUp, 0));
  EXPECT_EQ(m->peek16(kStateBase + 4), 0u);  // direction = up
  EXPECT_LT(m->peek16(kStateBase + 2), y0);
}

TEST(TronTest, HeadOnRushCrashesAndScores) {
  auto m = make_machine("tron");
  // Both head toward each other by default; 43 columns apart, crash is
  // inevitable within ~50 moves (100 frames).
  int f = 0;
  for (; f < 300 && m->peek16(kStateBase + 12) == 0 && m->peek16(kStateBase + 14) == 0; ++f) {
    m->step_frame(0);
  }
  ASSERT_FALSE(m->faulted());
  const int total = m->peek16(kStateBase + 12) + m->peek16(kStateBase + 14);
  EXPECT_EQ(total, 1) << "exactly one crash scores per round";
  // Arena reset: cycles back at spawn columns.
  EXPECT_EQ(m->peek16(kStateBase + 0), 10u);
  EXPECT_EQ(m->peek16(kStateBase + 6), 53u);
}

TEST(TronTest, WallsExistAfterReset) {
  auto m = make_machine("tron");
  m->step_frame(0);
  const auto fb = m->framebuffer();
  EXPECT_EQ(fb[0], 1);                // top-left wall
  EXPECT_EQ(fb[63], 1);               // top-right
  EXPECT_EQ(fb[47 * 64], 1);          // bottom-left
  EXPECT_EQ(fb[24 * 64 + 10], 2);     // p0 trail seed
  EXPECT_EQ(fb[24 * 64 + 53], 3);     // p1 trail seed
}

TEST(TronTest, DrivingIntoWallScoresForOpponent) {
  auto m = make_machine("tron");
  m->step_frame(0);
  // Player 0 turns up and drives into the top wall (24 rows away) while
  // player 1 circles safely... player 1 also heads left toward p0's column;
  // give p1 an up-turn too so both vertical. p0 from y=24 hits wall first
  // only if p1 turns later; steer p1 down instead.
  for (int i = 0; i < 120 && m->peek16(kStateBase + 14) == 0; ++i) {
    m->step_frame(make_input(kBtnUp, i < 40 ? kBtnDown : kBtnUp));
  }
  EXPECT_EQ(m->peek16(kStateBase + 14), 1u) << "wall crash must score for player 1";
}

// --- tanks gameplay ----------------------------------------------------------

TEST(TanksTest, PowerAdjustsWithCooldown) {
  auto m = make_machine("tanks");
  EXPECT_EQ(m->peek16(kStateBase + 0), 0u);
  // Hold Up for 20 frames: 6-frame repeat => ~4 increments, capped at 7.
  for (int i = 0; i < 20; ++i) m->step_frame(make_input(kBtnUp, 0));
  const auto a = m->peek16(kStateBase + 0);
  EXPECT_GE(a, 3u);
  EXPECT_LE(a, 4u);
  for (int i = 0; i < 60; ++i) m->step_frame(make_input(kBtnUp, 0));
  EXPECT_EQ(m->peek16(kStateBase + 0), 7u);  // clamped at max
  for (int i = 0; i < 120; ++i) m->step_frame(make_input(kBtnDown, 0));
  EXPECT_EQ(m->peek16(kStateBase + 0), 0u);  // and at min
}

TEST(TanksTest, FiringLaunchesOneShell) {
  auto m = make_machine("tanks");
  m->step_frame(make_input(kBtnA, 0));
  EXPECT_EQ(m->peek16(kStateBase + 8), 1u);  // shell active
  const auto x0 = m->peek16(kStateBase + 10);
  m->step_frame(make_input(kBtnA, 0));  // mashing fire mid-flight: ignored
  EXPECT_GT(m->peek16(kStateBase + 10), x0) << "shell moves right";
}

TEST(TanksTest, ShellLandsAndDeactivates) {
  auto m = make_machine("tanks");
  m->step_frame(make_input(kBtnA, 0));
  int f = 0;
  for (; f < 60 && m->peek16(kStateBase + 8) != 0; ++f) m->step_frame(0);
  EXPECT_LT(f, 60) << "shell never landed";
  EXPECT_GT(f, 5) << "shell landed implausibly fast";
}

TEST(TanksTest, CorrectPowerScoresAHit) {
  auto m = make_machine("tanks");
  // Find the power setting that bridges the 47-column gap by trying each.
  bool hit = false;
  for (int power = 0; power <= 7 && !hit; ++power) {
    m->reset();
    for (int i = 0; i < power * 8; ++i) m->step_frame(make_input(kBtnUp, 0));
    m->step_frame(make_input(kBtnA, 0));
    for (int i = 0; i < 60; ++i) m->step_frame(0);
    hit = m->peek16(kStateBase + 4) > 0;
  }
  EXPECT_TRUE(hit) << "no power setting can hit the opponent";
}

TEST(TanksTest, WrongPowerMisses) {
  auto m = make_machine("tanks");
  m->step_frame(make_input(kBtnA, 0));  // minimum power: lands ~20 columns out
  for (int i = 0; i < 60; ++i) m->step_frame(0);
  EXPECT_EQ(m->peek16(kStateBase + 4), 0u);
  EXPECT_EQ(m->peek16(kStateBase + 6), 0u);
}

TEST(TanksTest, BothPlayersCanExchangeFire) {
  auto m = make_machine("tanks");
  for (int i = 0; i < 200; ++i) {
    m->step_frame(make_input(i % 3 == 0 ? kBtnA | kBtnUp : kBtnUp,
                             i % 5 == 0 ? kBtnA | kBtnUp : kBtnUp));
    ASSERT_FALSE(m->faulted());
  }
  // Power maxed on both sides; shells flew; machine healthy. Scores may or
  // may not have accrued depending on the max-power range — just require
  // both shells to have been used.
  EXPECT_GT(m->frame(), 0);
}

// --- torture ----------------------------------------------------------------

TEST(TortureTest, SeedEvolvesEveryFrame) {
  auto m = make_machine("torture");
  std::vector<std::uint16_t> seeds;
  for (int f = 0; f < 10; ++f) {
    m->step_frame(0);
    seeds.push_back(m->peek16(kStateBase + 0));
  }
  for (std::size_t i = 1; i < seeds.size(); ++i) EXPECT_NE(seeds[i], seeds[i - 1]);
}

TEST(TortureTest, SingleBitOfInputChangesEverything) {
  auto a = make_machine("torture");
  auto b = make_machine("torture");
  for (int f = 0; f < 10; ++f) {
    a->step_frame(0);
    b->step_frame(0);
  }
  a->step_frame(make_input(0, kBtnSelect));  // one remote bit differs
  b->step_frame(make_input(0, 0));
  EXPECT_NE(a->state_hash(), b->state_hash());
  // And the divergence is permanent.
  for (int f = 0; f < 5; ++f) {
    a->step_frame(0);
    b->step_frame(0);
  }
  EXPECT_NE(a->state_hash(), b->state_hash());
}

}  // namespace
}  // namespace rtct
