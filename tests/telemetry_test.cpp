// Unit tests for the metrics registry (counter/gauge/histogram) and its
// rtct.metrics.v1 JSON serialization, plus the JSON reader it feeds.
#include <gtest/gtest.h>

#include <string>

#include "src/common/json.h"
#include "src/common/telemetry.h"

namespace rtct {
namespace {

TEST(TelemetryTest, CounterAccumulatesAndSnapshots) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);  // snapshot-style export overwrites
  EXPECT_EQ(c.value(), 7u);
}

TEST(TelemetryTest, HistogramTracksExactMoments) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0);
  h.observe(1.0);
  h.observe(3.0);
  h.observe(17.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 21.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 17.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(TelemetryTest, HistogramBucketBoundsArePowerOfTwoQuarters) {
  // bucket i counts samples <= 0.25 * 2^i ms; last bucket is overflow.
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(0), 0.25);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(1), 0.5);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(6), 16.0);

  Histogram h;
  h.observe(0.2);    // bucket 0 (<= 0.25)
  h.observe(0.25);   // bucket 0 (inclusive upper bound)
  h.observe(0.3);    // bucket 1
  h.observe(16.0);   // bucket 6
  h.observe(1e9);    // overflow bucket
  const auto& b = h.buckets();
  EXPECT_EQ(b[0], 2u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[6], 1u);
  EXPECT_EQ(b[Histogram::kBuckets - 1], 1u);
  std::uint64_t total = 0;
  for (const auto n : b) total += n;
  EXPECT_EQ(total, h.count());  // every sample lands in exactly one bucket
}

TEST(TelemetryTest, RegistryValueLooksUpCountersAndGauges) {
  MetricsRegistry reg;
  reg.counter("sync.inputs_sent").add(3);
  reg.gauge("sync.rtt_ms").set(41.5);
  reg.histogram("timeline.frame_time_ms").observe(16.7);

  EXPECT_EQ(reg.value("sync.inputs_sent"), 3.0);
  EXPECT_EQ(reg.value("sync.rtt_ms"), 41.5);
  EXPECT_FALSE(reg.value("timeline.frame_time_ms").has_value());  // histogram
  EXPECT_FALSE(reg.value("no.such.metric").has_value());

  // Instrument references are stable across later insertions (std::map).
  Counter& c = reg.counter("a.first");
  reg.counter("z.later");
  c.add();
  EXPECT_EQ(reg.value("a.first"), 1.0);
}

TEST(TelemetryTest, RegistryJsonRoundTripsThroughTheReader) {
  MetricsRegistry reg;
  reg.counter("net.udp.datagrams_sent").add(120);
  reg.gauge("session.lag_negotiated").set(6);
  auto& h = reg.histogram("pacer.wait_ms");
  h.observe(9.5);
  h.observe(10.5);

  const auto doc = parse_json(reg.to_json());
  ASSERT_TRUE(doc.has_value()) << reg.to_json();
  const auto* schema = doc->find("schema");
  ASSERT_NE(schema, nullptr);
  ASSERT_NE(schema->string(), nullptr);
  EXPECT_EQ(*schema->string(), "rtct.metrics.v1");

  const auto* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* sent = counters->find("net.udp.datagrams_sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_DOUBLE_EQ(sent->number_or(-1), 120.0);

  const auto* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("session.lag_negotiated")->number_or(-1), 6.0);

  const auto* hists = doc->find("histograms");
  ASSERT_NE(hists, nullptr);
  const auto* wait = hists->find("pacer.wait_ms");
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(wait->find("count"), nullptr);
  EXPECT_DOUBLE_EQ(wait->find("count")->number_or(-1), 2.0);
  ASSERT_NE(wait->find("sum"), nullptr);
  EXPECT_DOUBLE_EQ(wait->find("sum")->number_or(-1), 20.0);
  const auto* buckets = wait->find("bucket_counts");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  EXPECT_EQ(buckets->array()->size(), static_cast<std::size_t>(Histogram::kBuckets));
  const auto* bounds = wait->find("bucket_bounds_ms");
  ASSERT_NE(bounds, nullptr);
  ASSERT_TRUE(bounds->is_array());
  EXPECT_EQ(bounds->array()->size(), static_cast<std::size_t>(Histogram::kBuckets - 1));
}

TEST(TelemetryTest, JsonReaderHandlesEscapesNestingAndRejectsGarbage) {
  const auto ok = parse_json(R"({"a":[1,2.5,-3e2,true,false,null],"s":"q\"\\\nA"})");
  ASSERT_TRUE(ok.has_value());
  const auto* arr = ok->find("a");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  EXPECT_EQ(arr->array()->size(), 6u);
  EXPECT_DOUBLE_EQ((*arr->array())[2].number_or(0), -300.0);
  const auto* s = ok->find("s");
  ASSERT_NE(s, nullptr);
  ASSERT_NE(s->string(), nullptr);
  EXPECT_EQ(*s->string(), "q\"\\\nA");

  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("[1,]").has_value());
  EXPECT_FALSE(parse_json("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(parse_json("nul").has_value());
}

}  // namespace
}  // namespace rtct
