// Fast tier-1 coverage of the chaos harness itself: script generation is
// deterministic and round-trips through JSON, a clean (fault-free) run of
// every topology satisfies every invariant, a full soak case produces
// byte-identical repro output on re-run, and the fuzzer machinery runs a
// smoke-sized batch. The deep soak (hundreds of seeds) and full-corpus
// fuzz live in chaos_soak_test / wire_fuzz_test under the `soak` and
// `fuzz` ctest labels.
#include <gtest/gtest.h>

#include "src/chaos/fault_script.h"
#include "src/chaos/fuzz.h"
#include "src/chaos/soak.h"
#include "src/common/json.h"

namespace rtct::chaos {
namespace {

TEST(FaultScriptTest, SameSeedSameScript) {
  const FaultScript a = generate_fault_script(42, Topology::kTwoSite);
  const FaultScript b = generate_fault_script(42, Topology::kTwoSite);
  EXPECT_EQ(script_to_json(a), script_to_json(b));
}

TEST(FaultScriptTest, TopologiesGetDistinctSchedules) {
  const FaultScript a = generate_fault_script(42, Topology::kTwoSite);
  const FaultScript b = generate_fault_script(42, Topology::kMesh);
  ASSERT_FALSE(a.faults.empty());
  ASSERT_FALSE(b.faults.empty());
  EXPECT_NE(a.faults[0].at, b.faults[0].at);
}

TEST(FaultScriptTest, FaultsStayInsideTheCleanMargins) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    for (const Topology t :
         {Topology::kTwoSite, Topology::kMesh, Topology::kSpectator}) {
      const FaultScript s = generate_fault_script(seed, t);
      for (const Fault& f : s.faults) {
        EXPECT_GE(f.at, milliseconds(500));
        EXPECT_LE(f.at + f.duration, s.session_length());
      }
    }
  }
}

TEST(FaultScriptTest, JsonRoundTrip) {
  const FaultScript s = generate_fault_script(7, Topology::kSpectator);
  const std::string json = script_to_json(s);
  const auto doc = parse_json(json);
  ASSERT_TRUE(doc.has_value());
  const auto back = script_from_json(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(script_to_json(*back), json);
}

TEST(FaultScriptTest, SeedSurvivesJsonAboveDoublePrecision) {
  // Seeds are serialized as strings: 2^63 + 1 is not representable as a
  // JSON double, and a repro that silently rounded the seed would replay
  // a different session.
  FaultScript s = generate_fault_script(3, Topology::kTwoSite);
  s.seed = 0x8000000000000001ull;
  const auto doc = parse_json(script_to_json(s));
  ASSERT_TRUE(doc.has_value());
  const auto back = script_from_json(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seed, 0x8000000000000001ull);
}

TEST(FaultScriptTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(script_from_json(*parse_json("{}")).has_value());
  EXPECT_FALSE(
      script_from_json(*parse_json(R"({"schema":"other","seed":"1"})"))
          .has_value());
  // Numeric seed (would round-trip through double) must be rejected.
  const std::string json = script_to_json(generate_fault_script(1, Topology::kTwoSite));
  std::string numeric = json;
  const auto pos = numeric.find("\"seed\":\"1\"");
  ASSERT_NE(pos, std::string::npos);
  numeric.replace(pos, 10, "\"seed\":1");
  EXPECT_FALSE(script_from_json(*parse_json(numeric)).has_value());
}

// One clean run per topology: every invariant must hold with no faults
// injected. This is the harness's own null test — if it fails, the
// invariants (not the sync stack) are miscalibrated.
TEST(ChaosSoakTest, CleanTwoSiteSatisfiesAllInvariants) {
  FaultScript s = generate_fault_script(1, Topology::kTwoSite);
  s.faults.clear();
  const SoakOutcome o = run_soak_case(s);
  EXPECT_TRUE(o.passed()) << outcome_to_json(o);
}

TEST(ChaosSoakTest, CleanMeshSatisfiesAllInvariants) {
  FaultScript s = generate_fault_script(1, Topology::kMesh);
  s.faults.clear();
  const SoakOutcome o = run_soak_case(s);
  EXPECT_TRUE(o.passed()) << outcome_to_json(o);
}

TEST(ChaosSoakTest, CleanSpectatorSatisfiesAllInvariants) {
  FaultScript s = generate_fault_script(1, Topology::kSpectator);
  s.faults.clear();
  const SoakOutcome o = run_soak_case(s);
  EXPECT_TRUE(o.passed()) << outcome_to_json(o);
}

TEST(ChaosSoakTest, FaultedCasePassesAndReproIsByteIdentical) {
  const SoakOutcome a = run_soak_case(5, Topology::kTwoSite);
  const SoakOutcome b = run_soak_case(5, Topology::kTwoSite);
  EXPECT_TRUE(a.passed()) << outcome_to_json(a);
  EXPECT_EQ(outcome_to_json(a), outcome_to_json(b));
}

TEST(ChaosSoakTest, ReplayFromParsedScriptMatchesGeneratedRun) {
  // The repro path: a script that went through JSON must drive the exact
  // same session as the generator's in-memory script.
  const FaultScript s = generate_fault_script(9, Topology::kMesh);
  const auto doc = parse_json(script_to_json(s));
  ASSERT_TRUE(doc.has_value());
  const auto back = script_from_json(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(outcome_to_json(run_soak_case(*back)),
            outcome_to_json(run_soak_case(s)));
}

TEST(ChaosSoakTest, CorruptedStateHashIsCaught) {
  // Flip one replica's hash at frame 100 in an otherwise-passing run: the
  // checker must flag it, proving the state-hash invariant has teeth.
  FaultScript s = generate_fault_script(2, Topology::kTwoSite);
  s.faults.clear();
  const testbed::ExperimentConfig cfg = lower_two_site(s);
  testbed::ExperimentResult r = run_experiment(cfg);
  ASSERT_TRUE(check_two_site(cfg, r).empty());
  core::FrameTimeline corrupted;
  for (core::FrameRecord rec : r.site[1].timeline.records()) {
    if (rec.frame == 100) rec.state_hash ^= 1;
    corrupted.add(rec);
  }
  r.site[1].timeline = corrupted;
  bool saw_desync = false;
  for (const Violation& v : check_two_site(cfg, r)) {
    if (v.invariant == "state-hash" && v.frame == 100) saw_desync = true;
  }
  EXPECT_TRUE(saw_desync);
}

// ---- rollback consistency mode under chaos --------------------------------
// The same seeded fault scripts, with both sites opted into rollback: the
// speculation/restore path must satisfy every surviving invariant (the
// frame-lead bound is replaced by the rollback-twin digest check — see
// src/chaos/invariants.h).

TEST(ChaosRollbackTest, CleanTwoSiteSatisfiesAllInvariants) {
  FaultScript s = generate_fault_script(1, Topology::kTwoSite);
  s.faults.clear();
  s.rollback = true;
  const testbed::ExperimentConfig cfg = lower_two_site(s);
  const testbed::ExperimentResult r = run_experiment(cfg);
  const auto violations = check_two_site(cfg, r);
  EXPECT_TRUE(violations.empty())
      << violations[0].invariant << ": " << violations[0].detail;
  // The mode must actually have negotiated — a silent fallback to
  // lockstep would make this whole suite vacuous.
  EXPECT_TRUE(r.site[0].rollback_mode);
  EXPECT_TRUE(r.site[1].rollback_mode);
  // And speculation must actually have speculated: remote inputs take
  // >= one-way delay to arrive, so a clean run still predicts plenty.
  EXPECT_GT(r.site[0].rollback_stats.predicted_frames, 0u);
  EXPECT_GT(r.site[0].rollback_stats.frames_executed,
            static_cast<std::uint64_t>(0));
}

TEST(ChaosRollbackTest, FaultedTwoSiteScriptsPass) {
  // A slice of the same seeds the lockstep soak runs, now with rollback:
  // identical adversity, different consistency engine.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    FaultScript s = generate_fault_script(seed, Topology::kTwoSite);
    s.rollback = true;
    const SoakOutcome o = run_soak_case(s);
    EXPECT_TRUE(o.passed()) << "seed " << seed << "\n" << outcome_to_json(o);
  }
}

TEST(ChaosRollbackTest, SpectatorChurnPassesUnderRollback) {
  // Observers must be seeded from *confirmed* state and fed only
  // confirmed inputs — their replica hashes replay against the
  // players' canonical (backfilled) timelines.
  FaultScript s = generate_fault_script(4, Topology::kSpectator);
  s.rollback = true;
  const SoakOutcome o = run_soak_case(s);
  EXPECT_TRUE(o.passed()) << outcome_to_json(o);
}

TEST(ChaosRollbackTest, RollbackFlagRoundTripsThroughJson) {
  FaultScript s = generate_fault_script(7, Topology::kTwoSite);
  s.rollback = true;
  const auto doc = parse_json(script_to_json(s));
  ASSERT_TRUE(doc.has_value());
  const auto back = script_from_json(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->rollback);
  EXPECT_EQ(script_to_json(*back), script_to_json(s));
  // Archived pre-rollback documents parse as lockstep.
  std::string legacy = script_to_json(s);
  const auto pos = legacy.find(",\"rollback\":true");
  ASSERT_NE(pos, std::string::npos);
  legacy.erase(pos, std::string(",\"rollback\":true").size());
  const auto old = script_from_json(*parse_json(legacy));
  ASSERT_TRUE(old.has_value());
  EXPECT_FALSE(old->rollback);
}

TEST(ChaosRollbackTest, TwinInvariantHasTeeth) {
  // Corrupt one confirmed digest in an otherwise-passing rollback run:
  // the straight-line-twin check must flag it.
  FaultScript s = generate_fault_script(2, Topology::kTwoSite);
  s.faults.clear();
  s.rollback = true;
  const testbed::ExperimentConfig cfg = lower_two_site(s);
  testbed::ExperimentResult r = run_experiment(cfg);
  ASSERT_TRUE(check_two_site(cfg, r).empty());
  core::FrameTimeline corrupted;
  for (core::FrameRecord rec : r.site[0].timeline.records()) {
    if (rec.frame == 50) rec.state_hash ^= 1;
    corrupted.add(rec);
  }
  r.site[0].timeline = corrupted;
  bool saw_twin = false;
  for (const Violation& v : check_two_site(cfg, r)) {
    if (v.invariant == "rollback-twin" && v.frame == 50) saw_twin = true;
  }
  EXPECT_TRUE(saw_twin);
}

TEST(ChaosRollbackTest, DeterministicRepro) {
  FaultScript s = generate_fault_script(5, Topology::kTwoSite);
  s.rollback = true;
  EXPECT_EQ(outcome_to_json(run_soak_case(s)), outcome_to_json(run_soak_case(s)));
}

TEST(FuzzTest, CorpusIsDeterministic) {
  const auto a = build_corpus();
  const auto b = build_corpus();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].expect_reject, b[i].expect_reject);
  }
}

TEST(FuzzTest, CorpusReplaysInProcess) {
  for (const CorpusEntry& e : build_corpus()) {
    const auto failure = check_decoder(e.bytes);
    EXPECT_FALSE(failure.has_value()) << e.name << ": " << *failure;
  }
}

TEST(FuzzTest, WireSmoke) {
  FuzzStats stats;
  const auto failure = fuzz_wire(/*seed=*/1, /*iterations=*/2000, &stats);
  EXPECT_FALSE(failure.has_value()) << *failure;
  // The generator must actually exercise both sides of the trust
  // boundary; a fuzzer that only ever rejects is testing nothing.
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

TEST(FuzzTest, IngestSmoke) {
  const auto failure = fuzz_ingest(/*seed=*/1, /*iterations=*/500);
  EXPECT_FALSE(failure.has_value()) << *failure;
}

}  // namespace
}  // namespace rtct::chaos
